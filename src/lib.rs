//! # mra — distributed multi-resource allocation
//!
//! A reproduction of *"Reducing synchronization cost in distributed
//! multi-resource allocation problem"* (Lejeune, Arantes, Sopena, Sens —
//! ICPP 2015 / INRIA RR-8689), packaged as a workspace of reusable crates.
//!
//! This facade crate re-exports the workspace so examples and downstream
//! users can depend on a single crate:
//!
//! * [`core`] — the paper's algorithm (**LASS**): per-resource counters, a
//!   pluggable total order over requests, prioritized token trees and the
//!   loan mechanism.
//! * [`baselines`] — incremental locking, Bouabdallah–Laforest, the
//!   shared-memory ("central") scheduler and the Maddi broadcast algorithm.
//! * [`mutex`] — Naimi-Trehel and Suzuki-Kasami single-resource substrates.
//! * [`net`] — the real TCP transport: wire framing, the full-socket mesh,
//!   the loopback cluster harness and the solo node runtime behind the
//!   `mra-node` binary.
//! * [`obs`] — the observability layer: causal event tracing (Lamport
//!   stamps, JSONL export, consistency checks), log2-bucketed live
//!   histograms and per-link network counters, shared by all substrates.
//! * [`protocol`] — the engine-independent `Allocator` interface, the
//!   binary wire codec and a randomized virtual network for testing.
//! * [`serve`] — the allocation-as-a-service front end: open-loop arrival
//!   generators, the bounded admission queue with batching and per-class
//!   quotas, and arrival-keyed end-to-end latency accounting.
//! * [`sim`] — the deterministic discrete-event simulator, workload driver,
//!   metrics, Gantt tracing and the threaded runtime.
//! * [`workloads`] — the paper's workload model and experiment harness.
//! * [`types`] — time, ids and bitsets.
//!
//! ## Quickstart
//!
//! ```
//! use mra::workloads::{Algorithm, Scenario};
//!
//! // A small version of the paper's experiment: nodes request random
//! // resource subsets, hold them for a critical section, release.
//! let scenario = Scenario::builder()
//!     .nodes(8)
//!     .resources(20)
//!     .max_request_size(4)
//!     .measure_secs(2.0)
//!     .seed(42)
//!     .build();
//! let result = mra::workloads::run(Algorithm::LassLoan, &scenario);
//! assert!(result.cs_completed > 0);
//! println!("use rate = {:.1}%", 100.0 * result.use_rate());
//! ```

pub use mra_baselines as baselines;
pub use mra_core as core;
pub use mra_mutex as mutex;
pub use mra_net as net;
pub use mra_obs as obs;
pub use mra_protocol as protocol;
pub use mra_serve as serve;
pub use mra_sim as sim;
pub use mra_types as types;
pub use mra_workloads as workloads;
