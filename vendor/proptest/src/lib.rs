//! Minimal stand-in for the [`proptest`](https://crates.io/crates/proptest)
//! crate, written because the build environment has no network access.
//!
//! Supported surface (exactly what this workspace's suites use):
//!
//! * the [`proptest!`] macro with an optional
//!   `#![proptest_config(ProptestConfig::with_cases(N))]` header;
//! * [`prop_assert!`] / [`prop_assert_eq!`] / [`prop_assert_ne!`];
//! * [`prop_oneof!`], [`strategy::Just`], [`arbitrary::any`],
//!   [`Strategy::prop_map`], tuple strategies, integer/float range
//!   strategies and [`collection::vec`].
//!
//! Differences from real proptest, on purpose:
//!
//! * **no shrinking** — a failing case reports its case index and seed, and
//!   the whole run is deterministic per test name, so failures reproduce
//!   exactly under `cargo test`;
//! * generation is driven by the workspace's deterministic `rand` stand-in.
//!
//! Honors `PROPTEST_CASES` (exact override) and `MRA_FAST=1` (quarter the
//! configured cases, floor 4) so CI can trade coverage for latency.

pub mod strategy {
    use rand::rngs::StdRng;
    use rand::{Rng, SampleRange};

    /// A generator of values of type [`Strategy::Value`].
    ///
    /// Unlike real proptest there is no value tree: `generate` draws a fresh
    /// value directly from the RNG.
    pub trait Strategy {
        type Value;

        fn generate(&self, rng: &mut StdRng) -> Self::Value;

        /// Map generated values through `f`.
        fn prop_map<O, F>(self, f: F) -> Map<Self, F>
        where
            Self: Sized,
            F: Fn(Self::Value) -> O,
        {
            Map { inner: self, f }
        }

        /// Type-erase the strategy so heterogeneous strategies can share a
        /// single `Value` type (used by `prop_oneof!`).
        fn boxed(self) -> BoxedStrategy<Self::Value>
        where
            Self: Sized + 'static,
        {
            Box::new(self)
        }
    }

    pub type BoxedStrategy<T> = Box<dyn Strategy<Value = T>>;

    impl<T: ?Sized + Strategy> Strategy for Box<T> {
        type Value = T::Value;
        fn generate(&self, rng: &mut StdRng) -> Self::Value {
            (**self).generate(rng)
        }
    }

    impl<T: ?Sized + Strategy> Strategy for &T {
        type Value = T::Value;
        fn generate(&self, rng: &mut StdRng) -> Self::Value {
            (**self).generate(rng)
        }
    }

    /// Always produces a clone of the wrapped value.
    #[derive(Clone, Copy, Debug)]
    pub struct Just<T: Clone>(pub T);

    impl<T: Clone> Strategy for Just<T> {
        type Value = T;
        fn generate(&self, _rng: &mut StdRng) -> T {
            self.0.clone()
        }
    }

    pub struct Map<S, F> {
        pub(crate) inner: S,
        pub(crate) f: F,
    }

    impl<S, O, F> Strategy for Map<S, F>
    where
        S: Strategy,
        F: Fn(S::Value) -> O,
    {
        type Value = O;
        fn generate(&self, rng: &mut StdRng) -> O {
            (self.f)(self.inner.generate(rng))
        }
    }

    /// Uniform choice among boxed strategies (the `prop_oneof!` backend).
    pub struct Union<T> {
        options: Vec<BoxedStrategy<T>>,
    }

    impl<T> Union<T> {
        pub fn new(options: Vec<BoxedStrategy<T>>) -> Self {
            assert!(!options.is_empty(), "prop_oneof! needs at least one arm");
            Union { options }
        }
    }

    impl<T> Strategy for Union<T> {
        type Value = T;
        fn generate(&self, rng: &mut StdRng) -> T {
            let ix = rng.gen_range(0..self.options.len());
            self.options[ix].generate(rng)
        }
    }

    macro_rules! impl_range_strategy {
        ($($t:ty),*) => {$(
            impl Strategy for core::ops::Range<$t> {
                type Value = $t;
                fn generate(&self, rng: &mut StdRng) -> $t {
                    self.clone().sample_single(rng)
                }
            }
            impl Strategy for core::ops::RangeInclusive<$t> {
                type Value = $t;
                fn generate(&self, rng: &mut StdRng) -> $t {
                    self.clone().sample_single(rng)
                }
            }
        )*};
    }

    impl_range_strategy!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize, f64);

    macro_rules! impl_tuple_strategy {
        ($(($($name:ident),+))*) => {$(
            impl<$($name: Strategy),+> Strategy for ($($name,)+) {
                type Value = ($($name::Value,)+);
                fn generate(&self, rng: &mut StdRng) -> Self::Value {
                    #[allow(non_snake_case)]
                    let ($($name,)+) = self;
                    ($($name.generate(rng),)+)
                }
            }
        )*};
    }

    impl_tuple_strategy! {
        (A)
        (A, B)
        (A, B, C)
        (A, B, C, D)
        (A, B, C, D, E)
    }
}

pub mod arbitrary {
    use super::strategy::Strategy;
    use rand::rngs::StdRng;
    use rand::{Rng, RngCore};
    use std::marker::PhantomData;

    /// Types with a canonical "any value" strategy.
    pub trait Arbitrary: Sized {
        fn arbitrary_value(rng: &mut StdRng) -> Self;
    }

    macro_rules! impl_arbitrary_int {
        ($($t:ty),*) => {$(
            impl Arbitrary for $t {
                fn arbitrary_value(rng: &mut StdRng) -> $t {
                    rng.next_u64() as $t
                }
            }
        )*};
    }

    impl_arbitrary_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

    impl Arbitrary for bool {
        fn arbitrary_value(rng: &mut StdRng) -> bool {
            rng.next_u64() & 1 == 1
        }
    }

    impl Arbitrary for f64 {
        fn arbitrary_value(rng: &mut StdRng) -> f64 {
            rng.gen_range(-1.0e9f64..1.0e9)
        }
    }

    pub struct AnyStrategy<T>(PhantomData<fn() -> T>);

    impl<T: Arbitrary> Strategy for AnyStrategy<T> {
        type Value = T;
        fn generate(&self, rng: &mut StdRng) -> T {
            T::arbitrary_value(rng)
        }
    }

    /// `any::<T>()` — the full range of `T`.
    pub fn any<T: Arbitrary>() -> AnyStrategy<T> {
        AnyStrategy(PhantomData)
    }
}

pub mod collection {
    use super::strategy::Strategy;
    use rand::rngs::StdRng;
    use rand::Rng;

    /// Half-open length range for [`vec`], converted from `usize` ranges.
    #[derive(Clone, Debug)]
    pub struct SizeRange {
        lo: usize,
        hi: usize, // exclusive
    }

    impl From<core::ops::Range<usize>> for SizeRange {
        fn from(r: core::ops::Range<usize>) -> Self {
            assert!(r.start < r.end, "empty size range");
            SizeRange { lo: r.start, hi: r.end }
        }
    }

    impl From<core::ops::RangeInclusive<usize>> for SizeRange {
        fn from(r: core::ops::RangeInclusive<usize>) -> Self {
            SizeRange { lo: *r.start(), hi: *r.end() + 1 }
        }
    }

    impl From<usize> for SizeRange {
        fn from(n: usize) -> Self {
            SizeRange { lo: n, hi: n + 1 }
        }
    }

    pub struct VecStrategy<S> {
        element: S,
        size: SizeRange,
    }

    /// Vectors whose length is drawn from `size` and whose elements come
    /// from `element`.
    pub fn vec<S: Strategy>(element: S, size: impl Into<SizeRange>) -> VecStrategy<S> {
        VecStrategy { element, size: size.into() }
    }

    impl<S: Strategy> Strategy for VecStrategy<S> {
        type Value = Vec<S::Value>;
        fn generate(&self, rng: &mut StdRng) -> Vec<S::Value> {
            let len = rng.gen_range(self.size.lo..self.size.hi);
            (0..len).map(|_| self.element.generate(rng)).collect()
        }
    }
}

pub mod test_runner {
    /// Per-suite configuration. Only `cases` is honored.
    #[derive(Clone, Debug)]
    pub struct ProptestConfig {
        pub cases: u32,
    }

    impl ProptestConfig {
        /// Run `cases` random cases per test, subject to the `PROPTEST_CASES`
        /// and `MRA_FAST` environment overrides.
        pub fn with_cases(cases: u32) -> Self {
            ProptestConfig { cases: effective_cases(cases) }
        }
    }

    impl Default for ProptestConfig {
        fn default() -> Self {
            ProptestConfig::with_cases(256)
        }
    }

    fn effective_cases(configured: u32) -> u32 {
        if let Ok(v) = std::env::var("PROPTEST_CASES") {
            if let Ok(n) = v.parse::<u32>() {
                return n.max(1);
            }
        }
        if std::env::var("MRA_FAST").is_ok_and(|v| !v.is_empty() && v != "0") {
            return (configured / 4).max(4);
        }
        configured
    }

    /// Failure raised by the `prop_assert*` macros; carries the formatted
    /// assertion message.
    #[derive(Debug)]
    pub struct TestCaseError(pub String);

    impl TestCaseError {
        pub fn fail(msg: impl Into<String>) -> Self {
            TestCaseError(msg.into())
        }
    }

    impl std::fmt::Display for TestCaseError {
        fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
            f.write_str(&self.0)
        }
    }

    /// Deterministic per-(test, case) seed so failures reproduce exactly.
    pub fn case_seed(test_name: &str, case: u32) -> u64 {
        // FNV-1a over the test name, mixed with the case index.
        let mut h: u64 = 0xcbf2_9ce4_8422_2325;
        for b in test_name.bytes() {
            h ^= b as u64;
            h = h.wrapping_mul(0x0000_0100_0000_01b3);
        }
        h ^ (case as u64).wrapping_mul(0x9E37_79B9_7F4A_7C15)
    }
}

#[doc(hidden)]
pub use rand as __rand;

pub mod prelude {
    pub use crate::arbitrary::any;
    pub use crate::strategy::{BoxedStrategy, Just, Strategy, Union};
    pub use crate::test_runner::{ProptestConfig, TestCaseError};
    pub use crate::{prop_assert, prop_assert_eq, prop_assert_ne, prop_oneof, proptest};
}

/// Declare property tests. Each `fn name(arg in strategy, ...) { body }`
/// becomes a `#[test]` that runs `cases` deterministic random cases.
#[macro_export]
macro_rules! proptest {
    (#![proptest_config($cfg:expr)] $($rest:tt)*) => {
        $crate::__proptest_impl! { @cfg($cfg) $($rest)* }
    };
    ($($rest:tt)*) => {
        $crate::__proptest_impl! {
            @cfg($crate::test_runner::ProptestConfig::default()) $($rest)*
        }
    };
}

#[doc(hidden)]
#[macro_export]
macro_rules! __proptest_impl {
    (@cfg($cfg:expr)) => {};
    (@cfg($cfg:expr)
     $(#[$meta:meta])*
     fn $name:ident($($arg:ident in $strat:expr),* $(,)?) $body:block
     $($rest:tt)*
    ) => {
        $(#[$meta])*
        fn $name() {
            let cfg = $cfg;
            for case in 0..cfg.cases {
                let seed = $crate::test_runner::case_seed(
                    concat!(module_path!(), "::", stringify!($name)),
                    case,
                );
                let mut __rng = <$crate::__rand::rngs::StdRng
                    as $crate::__rand::SeedableRng>::seed_from_u64(seed);
                $(let $arg = $crate::strategy::Strategy::generate(&($strat), &mut __rng);)*
                let outcome: ::std::result::Result<(), $crate::test_runner::TestCaseError> =
                    (|| { $body ::std::result::Result::Ok(()) })();
                if let ::std::result::Result::Err(e) = outcome {
                    panic!(
                        "proptest case {}/{} failed (seed {:#x}): {}",
                        case + 1, cfg.cases, seed, e
                    );
                }
            }
        }
        $crate::__proptest_impl! { @cfg($cfg) $($rest)* }
    };
}

/// Uniform choice among strategies producing the same value type.
#[macro_export]
macro_rules! prop_oneof {
    ($($strat:expr),+ $(,)?) => {
        $crate::strategy::Union::new(vec![
            $($crate::strategy::Strategy::boxed($strat)),+
        ])
    };
}

#[macro_export]
macro_rules! prop_assert {
    ($cond:expr) => {
        if !$cond {
            return ::std::result::Result::Err($crate::test_runner::TestCaseError::fail(
                format!("assertion failed: {} ({}:{})", stringify!($cond), file!(), line!()),
            ));
        }
    };
    ($cond:expr, $($fmt:tt)+) => {
        if !$cond {
            return ::std::result::Result::Err($crate::test_runner::TestCaseError::fail(
                format!("{} ({}:{})", format_args!($($fmt)+), file!(), line!()),
            ));
        }
    };
}

#[macro_export]
macro_rules! prop_assert_eq {
    ($left:expr, $right:expr $(,)?) => {{
        let (l, r) = (&$left, &$right);
        if !(*l == *r) {
            return ::std::result::Result::Err($crate::test_runner::TestCaseError::fail(
                format!(
                    "assertion failed: `{} == {}`\n  left: {:?}\n right: {:?} ({}:{})",
                    stringify!($left), stringify!($right), l, r, file!(), line!()
                ),
            ));
        }
    }};
    ($left:expr, $right:expr, $($fmt:tt)+) => {{
        let (l, r) = (&$left, &$right);
        if !(*l == *r) {
            return ::std::result::Result::Err($crate::test_runner::TestCaseError::fail(
                format!(
                    "{}\n  left: {:?}\n right: {:?} ({}:{})",
                    format_args!($($fmt)+), l, r, file!(), line!()
                ),
            ));
        }
    }};
}

#[macro_export]
macro_rules! prop_assert_ne {
    ($left:expr, $right:expr $(,)?) => {{
        let (l, r) = (&$left, &$right);
        if *l == *r {
            return ::std::result::Result::Err($crate::test_runner::TestCaseError::fail(
                format!(
                    "assertion failed: `{} != {}`\n  both: {:?} ({}:{})",
                    stringify!($left), stringify!($right), l, file!(), line!()
                ),
            ));
        }
    }};
}
