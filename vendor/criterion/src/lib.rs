//! Minimal stand-in for the [`criterion`](https://crates.io/crates/criterion)
//! benchmark harness, written because the build environment has no network
//! access.
//!
//! Supports the surface this workspace's five bench targets use:
//! [`Criterion::bench_function`], [`Criterion::benchmark_group`],
//! [`BenchmarkGroup::sample_size`], [`Bencher::iter`], [`criterion_group!`]
//! and [`criterion_main!`]. Each benchmark is warmed up briefly and then
//! timed for a fixed wall-clock budget; the mean ns/iter is printed.
//!
//! `MRA_FAST=1` shrinks the measurement budget so `cargo bench` completes in
//! seconds, and `--test` mode (what `cargo test --benches` passes) runs each
//! benchmark exactly once as a smoke test, matching real criterion.

use std::time::{Duration, Instant};

fn test_mode() -> bool {
    std::env::args().any(|a| a == "--test")
}

fn measure_budget() -> Duration {
    if std::env::var("MRA_FAST").is_ok_and(|v| !v.is_empty() && v != "0") {
        Duration::from_millis(50)
    } else {
        Duration::from_millis(300)
    }
}

/// Times closures passed to [`Bencher::iter`].
pub struct Bencher {
    iters_done: u64,
    elapsed: Duration,
    budget: Duration,
}

impl Bencher {
    /// Run `f` repeatedly until the measurement budget is spent (or exactly
    /// once in `--test` mode), accumulating wall-clock time.
    pub fn iter<O, F: FnMut() -> O>(&mut self, mut f: F) {
        if self.budget.is_zero() {
            let start = Instant::now();
            std::hint::black_box(f());
            self.elapsed += start.elapsed();
            self.iters_done += 1;
            return;
        }
        // Warmup: one untimed iteration.
        std::hint::black_box(f());
        let deadline = Instant::now() + self.budget;
        loop {
            let start = Instant::now();
            std::hint::black_box(f());
            self.elapsed += start.elapsed();
            self.iters_done += 1;
            if Instant::now() >= deadline {
                break;
            }
        }
    }
}

fn run_one(name: &str, f: impl FnOnce(&mut Bencher)) {
    let mut b = Bencher {
        iters_done: 0,
        elapsed: Duration::ZERO,
        budget: if test_mode() { Duration::ZERO } else { measure_budget() },
    };
    f(&mut b);
    if b.iters_done == 0 {
        println!("{name:<40} (no iterations)");
    } else {
        let per_iter = b.elapsed.as_nanos() / b.iters_done as u128;
        println!("{name:<40} {per_iter:>12} ns/iter ({} iters)", b.iters_done);
    }
}

/// Entry point handed to each `criterion_group!` function.
#[derive(Default)]
pub struct Criterion {}

impl Criterion {
    pub fn bench_function<F: FnMut(&mut Bencher)>(
        &mut self,
        name: impl std::fmt::Display,
        mut f: F,
    ) -> &mut Self {
        run_one(&name.to_string(), |b| f(b));
        self
    }

    pub fn benchmark_group(&mut self, name: impl std::fmt::Display) -> BenchmarkGroup {
        BenchmarkGroup { name: name.to_string() }
    }
}

/// Named group of related benchmarks; `sample_size` is accepted and ignored.
pub struct BenchmarkGroup {
    name: String,
}

impl BenchmarkGroup {
    pub fn sample_size(&mut self, _n: usize) -> &mut Self {
        self
    }

    pub fn bench_function<F: FnMut(&mut Bencher)>(
        &mut self,
        id: impl std::fmt::Display,
        mut f: F,
    ) -> &mut Self {
        run_one(&format!("{}/{}", self.name, id), |b| f(b));
        self
    }

    pub fn finish(self) {}
}

/// Bundle benchmark functions into a single group runner.
#[macro_export]
macro_rules! criterion_group {
    ($group:ident, $($target:path),+ $(,)?) => {
        pub fn $group() {
            let mut c = $crate::Criterion::default();
            $($target(&mut c);)+
        }
    };
}

/// Generate `main` running every group.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $($group();)+
        }
    };
}
