//! Minimal, dependency-free stand-in for the [`rand`](https://crates.io/crates/rand)
//! crate, written because the build environment has no network access.
//!
//! It implements exactly the surface this workspace uses:
//!
//! * [`rngs::StdRng`] — a deterministic xoshiro256** generator;
//! * [`SeedableRng`] with [`SeedableRng::seed_from_u64`] (SplitMix64 expansion,
//!   the same scheme the real `rand` uses, so seeding is well distributed);
//! * [`Rng::gen_range`] over half-open and inclusive integer/float ranges;
//! * [`Rng::gen_bool`].
//!
//! Determinism is a feature here: the simulator and the property tests both
//! seed explicitly via `seed_from_u64`, and reproducibility of whole-run
//! traces depends on the generator being stable across runs and platforms.

/// Low-level source of 64-bit random words.
pub trait RngCore {
    fn next_u64(&mut self) -> u64;

    fn next_u32(&mut self) -> u32 {
        (self.next_u64() >> 32) as u32
    }
}

/// A random number generator that can be explicitly seeded.
pub trait SeedableRng: Sized {
    /// Create a generator from a 64-bit seed, expanding it with SplitMix64.
    fn seed_from_u64(state: u64) -> Self;
}

/// User-facing sampling methods, blanket-implemented for every [`RngCore`].
pub trait Rng: RngCore {
    /// Sample uniformly from a range (`lo..hi` or `lo..=hi`).
    ///
    /// Panics if the range is empty, like the real `rand`.
    fn gen_range<T, R>(&mut self, range: R) -> T
    where
        R: SampleRange<T>,
        Self: Sized,
    {
        range.sample_single(self)
    }

    /// Return `true` with probability `p`.
    fn gen_bool(&mut self, p: f64) -> bool
    where
        Self: Sized,
    {
        debug_assert!((0.0..=1.0).contains(&p));
        unit_f64(self.next_u64()) < p
    }
}

impl<T: RngCore> Rng for T {}

/// Convert a random word into a uniform `f64` in `[0, 1)` (53-bit mantissa).
#[inline]
fn unit_f64(word: u64) -> f64 {
    (word >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
}

/// Ranges that can be sampled from. Implemented for `Range` and
/// `RangeInclusive` over the integer and float types the workspace uses.
pub trait SampleRange<T> {
    fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> T;
}

macro_rules! impl_int_range {
    ($($t:ty),*) => {$(
        impl SampleRange<$t> for core::ops::Range<$t> {
            #[inline]
            fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                assert!(self.start < self.end, "cannot sample empty range");
                let span = (self.end as u64).wrapping_sub(self.start as u64);
                self.start.wrapping_add((rng.next_u64() % span) as $t)
            }
        }
        impl SampleRange<$t> for core::ops::RangeInclusive<$t> {
            #[inline]
            fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                let (lo, hi) = (*self.start(), *self.end());
                assert!(lo <= hi, "cannot sample empty range");
                let span = (hi as u64).wrapping_sub(lo as u64).wrapping_add(1);
                if span == 0 {
                    // Full-width range: every word is a valid sample.
                    return rng.next_u64() as $t;
                }
                lo.wrapping_add((rng.next_u64() % span) as $t)
            }
        }
    )*};
}

impl_int_range!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

impl SampleRange<f64> for core::ops::Range<f64> {
    #[inline]
    fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> f64 {
        assert!(self.start < self.end, "cannot sample empty range");
        self.start + unit_f64(rng.next_u64()) * (self.end - self.start)
    }
}

impl SampleRange<f64> for core::ops::RangeInclusive<f64> {
    #[inline]
    fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> f64 {
        let (lo, hi) = (*self.start(), *self.end());
        assert!(lo <= hi, "cannot sample empty range");
        lo + unit_f64(rng.next_u64()) * (hi - lo)
    }
}

impl SampleRange<f32> for core::ops::Range<f32> {
    #[inline]
    fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> f32 {
        assert!(self.start < self.end, "cannot sample empty range");
        self.start + unit_f64(rng.next_u64()) as f32 * (self.end - self.start)
    }
}

pub mod rngs {
    use super::{RngCore, SeedableRng};

    /// Deterministic xoshiro256** generator seeded via SplitMix64.
    ///
    /// Not the same stream as the real `rand::rngs::StdRng` (which is
    /// ChaCha12), but the workspace only relies on determinism and uniform
    /// quality, never on a specific stream.
    #[derive(Clone, Debug)]
    pub struct StdRng {
        s: [u64; 4],
    }

    impl SeedableRng for StdRng {
        fn seed_from_u64(mut state: u64) -> Self {
            let mut next = || {
                state = state.wrapping_add(0x9E37_79B9_7F4A_7C15);
                let mut z = state;
                z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
                z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
                z ^ (z >> 31)
            };
            StdRng {
                s: [next(), next(), next(), next()],
            }
        }
    }

    impl RngCore for StdRng {
        #[inline]
        fn next_u64(&mut self) -> u64 {
            let result = self.s[1]
                .wrapping_mul(5)
                .rotate_left(7)
                .wrapping_mul(9);
            let t = self.s[1] << 17;
            self.s[2] ^= self.s[0];
            self.s[3] ^= self.s[1];
            self.s[1] ^= self.s[2];
            self.s[0] ^= self.s[3];
            self.s[2] ^= t;
            self.s[3] = self.s[3].rotate_left(45);
            result
        }
    }
}

#[cfg(test)]
mod tests {
    use super::rngs::StdRng;
    use super::{Rng, SeedableRng};

    #[test]
    fn deterministic_across_instances() {
        let mut a = StdRng::seed_from_u64(42);
        let mut b = StdRng::seed_from_u64(42);
        for _ in 0..100 {
            assert_eq!(a.gen_range(0u64..=u64::MAX), b.gen_range(0u64..=u64::MAX));
        }
    }

    #[test]
    fn ranges_stay_in_bounds() {
        let mut rng = StdRng::seed_from_u64(7);
        for _ in 0..10_000 {
            let v = rng.gen_range(3usize..17);
            assert!((3..17).contains(&v));
            let w = rng.gen_range(5i64..=5);
            assert_eq!(w, 5);
            let f = rng.gen_range(0.25f64..0.75);
            assert!((0.25..0.75).contains(&f));
            let g = rng.gen_range(0.9f64..=1.1);
            assert!((0.9..=1.1).contains(&g));
        }
    }

    #[test]
    fn gen_bool_respects_probability() {
        let mut rng = StdRng::seed_from_u64(1);
        let hits = (0..10_000).filter(|_| rng.gen_bool(0.3)).count();
        assert!((2_500..3_500).contains(&hits), "hits = {hits}");
        assert!(!(0..100).any(|_| rng.gen_bool(0.0)));
        assert!((0..100).all(|_| rng.gen_bool(1.0)));
    }
}
