//! Minimal, dependency-free stand-in for the
//! [`polling`](https://crates.io/crates/polling) crate, written because
//! the build environment has no network access.
//!
//! It implements exactly the surface `mra-net`'s reactor uses:
//!
//! * [`Poller::new`] — one readiness queue (epoll on Linux/Android,
//!   kqueue on the BSD family including macOS);
//! * [`Poller::add`] / [`Poller::modify`] / [`Poller::delete`] — register
//!   a socket under a `usize` key with readable and/or writable interest;
//! * [`Poller::wait`] — block until at least one registered source is
//!   ready or a timeout elapses, filling an [`Events`] buffer.
//!
//! Divergence from the real crate (documented, deliberate): interests are
//! **level-triggered and persistent**, not oneshot — a source stays armed
//! until `modify`/`delete` changes it.  The reactor's flush loop relies on
//! exactly this (writable interest stays armed while a write queue drains
//! across multiple `wait` rounds), and it spares one `epoll_ctl` syscall
//! per delivered event, which is the point of the whole exercise.
//!
//! Everything is raw-syscall FFI against the platform libc that `std`
//! already links — no `libc` crate, no new dependencies.  On platforms
//! with neither epoll nor kqueue the crate still compiles: [`Poller::new`]
//! returns [`io::ErrorKind::Unsupported`] and callers fall back to their
//! threaded transport.

use std::io;
use std::time::Duration;

#[cfg(unix)]
use std::os::unix::io::AsRawFd;

/// Interest in a single source: a key the caller chooses plus the
/// readiness directions to watch.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct Event {
    /// Caller-chosen identifier reported back by [`Poller::wait`].
    pub key: usize,
    /// Watch for (or, in a delivered event: has) read readiness.
    pub readable: bool,
    /// Watch for (or, in a delivered event: has) write readiness.
    pub writable: bool,
}

impl Event {
    /// Readable-only interest.
    pub fn readable(key: usize) -> Self {
        Event { key, readable: true, writable: false }
    }

    /// Writable-only interest.
    pub fn writable(key: usize) -> Self {
        Event { key, readable: false, writable: true }
    }

    /// Readable and writable interest.
    pub fn all(key: usize) -> Self {
        Event { key, readable: true, writable: true }
    }

    /// No interest (keeps the registration alive with nothing armed).
    pub fn none(key: usize) -> Self {
        Event { key, readable: false, writable: false }
    }
}

/// Reusable buffer of delivered events.
#[derive(Debug, Default)]
pub struct Events {
    buf: Vec<Event>,
}

impl Events {
    /// An empty buffer with the default capacity (grows on demand).
    pub fn new() -> Self {
        Events { buf: Vec::with_capacity(64) }
    }

    /// Delivered events of the last [`Poller::wait`].
    pub fn iter(&self) -> impl Iterator<Item = Event> + '_ {
        self.buf.iter().copied()
    }

    /// Number of delivered events.
    pub fn len(&self) -> usize {
        self.buf.len()
    }

    /// No events delivered?
    pub fn is_empty(&self) -> bool {
        self.buf.is_empty()
    }

    /// Drop all events (called by [`Poller::wait`] before refilling).
    pub fn clear(&mut self) {
        self.buf.clear();
    }
}

/// A readiness queue over the platform's native poller.
#[derive(Debug)]
pub struct Poller {
    inner: sys::Poller,
}

impl Poller {
    /// Open a fresh readiness queue.
    pub fn new() -> io::Result<Poller> {
        Ok(Poller { inner: sys::Poller::new()? })
    }

    /// Register `source` with the given interest.  The key must be unique
    /// among live registrations (the poller reports it verbatim).
    #[cfg(unix)]
    pub fn add(&self, source: &impl AsRawFd, ev: Event) -> io::Result<()> {
        self.inner.add(source.as_raw_fd(), ev)
    }

    /// Change the interest of a registered source.
    #[cfg(unix)]
    pub fn modify(&self, source: &impl AsRawFd, ev: Event) -> io::Result<()> {
        self.inner.modify(source.as_raw_fd(), ev)
    }

    /// Remove a source from the queue.  Must be called before the fd is
    /// closed (kqueue forgets closed fds on its own; epoll does too, but
    /// relying on that leaks registration slots in the shim's bookkeeping).
    #[cfg(unix)]
    pub fn delete(&self, source: &impl AsRawFd) -> io::Result<()> {
        self.inner.delete(source.as_raw_fd())
    }

    /// Block until at least one source is ready or `timeout` elapses
    /// (`None` = forever).  Returns the number of delivered events; zero
    /// means the timeout fired.
    pub fn wait(&self, events: &mut Events, timeout: Option<Duration>) -> io::Result<usize> {
        events.clear();
        self.inner.wait(&mut events.buf, timeout)
    }
}

/// Clamp a timeout to whole milliseconds, rounding **up** so a 100 µs
/// deadline does not spin at timeout-0 (both epoll's and the shim's
/// kqueue path work in ms granularity for simplicity).
#[allow(dead_code)] // the stub backend has no wait loop
fn timeout_ms(timeout: Option<Duration>) -> i32 {
    match timeout {
        None => -1,
        Some(d) => {
            let ms = d.as_millis();
            let ms = if d.subsec_nanos() % 1_000_000 != 0 || ms == 0 {
                // Round a fractional (or zero) duration up to the next ms
                // only when it is non-zero; an exact zero stays zero (a
                // pure poll).
                if d.is_zero() {
                    0
                } else {
                    d.as_millis().saturating_add(1).min(i32::MAX as u128)
                }
            } else {
                ms
            };
            ms.min(i32::MAX as u128) as i32
        }
    }
}

#[cfg(any(target_os = "linux", target_os = "android"))]
mod sys {
    //! epoll backend: `epoll_create1` / `epoll_ctl` / `epoll_wait`.

    use super::{timeout_ms, Event};
    use std::io;
    use std::os::raw::c_int;
    use std::time::Duration;

    const EPOLL_CLOEXEC: c_int = 0o2000000;
    const EPOLL_CTL_ADD: c_int = 1;
    const EPOLL_CTL_DEL: c_int = 2;
    const EPOLL_CTL_MOD: c_int = 3;
    const EPOLLIN: u32 = 0x001;
    const EPOLLOUT: u32 = 0x004;
    const EPOLLERR: u32 = 0x008;
    const EPOLLHUP: u32 = 0x010;
    const EPOLLRDHUP: u32 = 0x2000;

    /// `struct epoll_event` — packed on x86-64 (the kernel ABI), aligned
    /// elsewhere; `repr(C, packed)` matches both on the targets this
    /// workspace builds for.
    #[repr(C, packed)]
    #[derive(Clone, Copy)]
    struct EpollEvent {
        events: u32,
        data: u64,
    }

    extern "C" {
        fn epoll_create1(flags: c_int) -> c_int;
        fn epoll_ctl(epfd: c_int, op: c_int, fd: c_int, event: *mut EpollEvent) -> c_int;
        fn epoll_wait(
            epfd: c_int,
            events: *mut EpollEvent,
            maxevents: c_int,
            timeout: c_int,
        ) -> c_int;
        fn close(fd: c_int) -> c_int;
    }

    #[derive(Debug)]
    pub struct Poller {
        epfd: c_int,
    }

    // The epoll fd is used from one reactor thread but created on the
    // spawning thread; the kernel object itself is thread-safe.
    unsafe impl Send for Poller {}
    unsafe impl Sync for Poller {}

    fn interest(ev: Event) -> u32 {
        let mut e = EPOLLRDHUP; // always learn about peer half-close
        if ev.readable {
            e |= EPOLLIN;
        }
        if ev.writable {
            e |= EPOLLOUT;
        }
        e
    }

    impl Poller {
        pub fn new() -> io::Result<Poller> {
            let epfd = unsafe { epoll_create1(EPOLL_CLOEXEC) };
            if epfd < 0 {
                return Err(io::Error::last_os_error());
            }
            Ok(Poller { epfd })
        }

        fn ctl(&self, op: c_int, fd: c_int, ev: Option<Event>) -> io::Result<()> {
            let mut native = EpollEvent {
                events: ev.map_or(0, interest),
                data: ev.map_or(0, |e| e.key as u64),
            };
            let rc = unsafe { epoll_ctl(self.epfd, op, fd, &mut native) };
            if rc < 0 {
                return Err(io::Error::last_os_error());
            }
            Ok(())
        }

        pub fn add(&self, fd: c_int, ev: Event) -> io::Result<()> {
            self.ctl(EPOLL_CTL_ADD, fd, Some(ev))
        }

        pub fn modify(&self, fd: c_int, ev: Event) -> io::Result<()> {
            self.ctl(EPOLL_CTL_MOD, fd, Some(ev))
        }

        pub fn delete(&self, fd: c_int) -> io::Result<()> {
            self.ctl(EPOLL_CTL_DEL, fd, None)
        }

        pub fn wait(&self, out: &mut Vec<Event>, timeout: Option<Duration>) -> io::Result<usize> {
            const CAP: usize = 256;
            let mut buf = [EpollEvent { events: 0, data: 0 }; CAP];
            let n = loop {
                let rc = unsafe {
                    epoll_wait(self.epfd, buf.as_mut_ptr(), CAP as c_int, timeout_ms(timeout))
                };
                if rc >= 0 {
                    break rc as usize;
                }
                let err = io::Error::last_os_error();
                if err.kind() != io::ErrorKind::Interrupted {
                    return Err(err);
                }
                // EINTR: retry.  A signal may shorten the effective
                // timeout; the reactor re-derives its deadlines every
                // iteration, so early wakeups are harmless.
            };
            for e in &buf[..n] {
                let bits = e.events;
                out.push(Event {
                    key: e.data as usize,
                    // Error/hangup surface as readable *and* writable so
                    // whichever direction the caller services next
                    // observes the failure from the socket itself.
                    readable: bits & (EPOLLIN | EPOLLRDHUP | EPOLLERR | EPOLLHUP) != 0,
                    writable: bits & (EPOLLOUT | EPOLLERR | EPOLLHUP) != 0,
                });
            }
            Ok(n)
        }
    }

    impl Drop for Poller {
        fn drop(&mut self) {
            unsafe {
                close(self.epfd);
            }
        }
    }
}

#[cfg(any(
    target_os = "macos",
    target_os = "ios",
    target_os = "freebsd",
    target_os = "netbsd",
    target_os = "openbsd",
    target_os = "dragonfly"
))]
mod sys {
    //! kqueue backend: one `EVFILT_READ`/`EVFILT_WRITE` pair per source.

    use super::Event;
    use std::io;
    use std::os::raw::{c_int, c_long, c_void};
    use std::ptr;
    use std::time::Duration;

    const EVFILT_READ: i16 = -1;
    const EVFILT_WRITE: i16 = -2;
    const EV_ADD: u16 = 0x0001;
    const EV_DELETE: u16 = 0x0002;
    const EV_EOF: u16 = 0x8000;

    #[repr(C)]
    struct Timespec {
        tv_sec: c_long,
        tv_nsec: c_long,
    }

    #[repr(C)]
    struct KEvent {
        ident: usize,
        filter: i16,
        flags: u16,
        fflags: u32,
        data: isize,
        udata: *mut c_void,
    }

    extern "C" {
        fn kqueue() -> c_int;
        fn kevent(
            kq: c_int,
            changelist: *const KEvent,
            nchanges: c_int,
            eventlist: *mut KEvent,
            nevents: c_int,
            timeout: *const Timespec,
        ) -> c_int;
        fn close(fd: c_int) -> c_int;
    }

    #[derive(Debug)]
    pub struct Poller {
        kq: c_int,
    }

    unsafe impl Send for Poller {}
    unsafe impl Sync for Poller {}

    impl Poller {
        pub fn new() -> io::Result<Poller> {
            let kq = unsafe { kqueue() };
            if kq < 0 {
                return Err(io::Error::last_os_error());
            }
            Ok(Poller { kq })
        }

        fn change(&self, fd: c_int, filter: i16, flags: u16, key: usize) -> io::Result<()> {
            let ch = KEvent {
                ident: fd as usize,
                filter,
                flags,
                fflags: 0,
                data: 0,
                udata: key as *mut c_void,
            };
            let rc = unsafe { kevent(self.kq, &ch, 1, ptr::null_mut(), 0, ptr::null()) };
            if rc < 0 {
                let err = io::Error::last_os_error();
                // Deleting a filter that is not armed is a no-op for us.
                if flags & EV_DELETE != 0
                    && matches!(err.raw_os_error(), Some(2 /* ENOENT */))
                {
                    return Ok(());
                }
                return Err(err);
            }
            Ok(())
        }

        fn apply(&self, fd: c_int, ev: Event) -> io::Result<()> {
            if ev.readable {
                self.change(fd, EVFILT_READ, EV_ADD, ev.key)?;
            } else {
                self.change(fd, EVFILT_READ, EV_DELETE, ev.key)?;
            }
            if ev.writable {
                self.change(fd, EVFILT_WRITE, EV_ADD, ev.key)?;
            } else {
                self.change(fd, EVFILT_WRITE, EV_DELETE, ev.key)?;
            }
            Ok(())
        }

        pub fn add(&self, fd: c_int, ev: Event) -> io::Result<()> {
            self.apply(fd, ev)
        }

        pub fn modify(&self, fd: c_int, ev: Event) -> io::Result<()> {
            self.apply(fd, ev)
        }

        pub fn delete(&self, fd: c_int) -> io::Result<()> {
            self.change(fd, EVFILT_READ, EV_DELETE, 0)?;
            self.change(fd, EVFILT_WRITE, EV_DELETE, 0)?;
            Ok(())
        }

        pub fn wait(&self, out: &mut Vec<Event>, timeout: Option<Duration>) -> io::Result<usize> {
            const CAP: usize = 256;
            let mut buf: [KEvent; CAP] = unsafe { std::mem::zeroed() };
            let ts;
            let ts_ptr = match timeout {
                None => ptr::null(),
                Some(d) => {
                    ts = Timespec {
                        tv_sec: d.as_secs() as c_long,
                        tv_nsec: d.subsec_nanos() as c_long,
                    };
                    &ts as *const Timespec
                }
            };
            let n = loop {
                let rc = unsafe {
                    kevent(self.kq, ptr::null(), 0, buf.as_mut_ptr(), CAP as c_int, ts_ptr)
                };
                if rc >= 0 {
                    break rc as usize;
                }
                let err = io::Error::last_os_error();
                if err.kind() != io::ErrorKind::Interrupted {
                    return Err(err);
                }
            };
            for e in &buf[..n] {
                let eof = e.flags & EV_EOF != 0;
                out.push(Event {
                    key: e.udata as usize,
                    readable: e.filter == EVFILT_READ || eof,
                    writable: e.filter == EVFILT_WRITE || eof,
                });
            }
            Ok(n)
        }
    }

    impl Drop for Poller {
        fn drop(&mut self) {
            unsafe {
                close(self.kq);
            }
        }
    }
}

#[cfg(not(any(
    target_os = "linux",
    target_os = "android",
    target_os = "macos",
    target_os = "ios",
    target_os = "freebsd",
    target_os = "netbsd",
    target_os = "openbsd",
    target_os = "dragonfly"
)))]
mod sys {
    //! Stub backend: the crate compiles everywhere, but constructing a
    //! poller reports `Unsupported` and callers fall back to threads.

    use super::Event;
    use std::io;
    use std::time::Duration;

    #[derive(Debug)]
    pub struct Poller;

    impl Poller {
        pub fn new() -> io::Result<Poller> {
            Err(io::Error::new(
                io::ErrorKind::Unsupported,
                "no epoll/kqueue on this platform; use the threaded transport",
            ))
        }

        pub fn wait(&self, _out: &mut Vec<Event>, _t: Option<Duration>) -> io::Result<usize> {
            unreachable!("stub poller cannot be constructed")
        }
    }
}

#[cfg(all(test, unix))]
mod tests {
    use super::*;
    use std::io::{Read, Write};
    use std::net::{TcpListener, TcpStream};
    use std::time::Instant;

    #[test]
    fn timeout_rounds_up_not_down() {
        assert_eq!(timeout_ms(None), -1);
        assert_eq!(timeout_ms(Some(Duration::ZERO)), 0);
        assert_eq!(timeout_ms(Some(Duration::from_micros(100))), 1);
        assert_eq!(timeout_ms(Some(Duration::from_millis(5))), 5);
        assert_eq!(timeout_ms(Some(Duration::from_micros(5_500))), 6);
    }

    #[test]
    fn readable_event_fires_and_times_out() {
        let listener = TcpListener::bind("127.0.0.1:0").unwrap();
        let addr = listener.local_addr().unwrap();
        let mut client = TcpStream::connect(addr).unwrap();
        let (mut server, _) = listener.accept().unwrap();
        server.set_nonblocking(true).unwrap();

        let poller = Poller::new().unwrap();
        poller.add(&server, Event::readable(7)).unwrap();
        let mut events = Events::new();

        // Nothing to read yet: the wait times out.
        let n = poller
            .wait(&mut events, Some(Duration::from_millis(10)))
            .unwrap();
        assert_eq!(n, 0);
        assert!(events.is_empty());

        client.write_all(b"x").unwrap();
        let n = poller
            .wait(&mut events, Some(Duration::from_secs(5)))
            .unwrap();
        assert_eq!(n, 1);
        let ev = events.iter().next().unwrap();
        assert_eq!(ev.key, 7);
        assert!(ev.readable);
        let mut b = [0u8; 8];
        assert_eq!(server.read(&mut b).unwrap(), 1);

        // Level-triggered: with the byte consumed the source goes quiet.
        let n = poller
            .wait(&mut events, Some(Duration::from_millis(10)))
            .unwrap();
        assert_eq!(n, 0);
        poller.delete(&server).unwrap();
    }

    #[test]
    fn writable_interest_toggles_via_modify() {
        let listener = TcpListener::bind("127.0.0.1:0").unwrap();
        let addr = listener.local_addr().unwrap();
        let client = TcpStream::connect(addr).unwrap();
        let (_server, _) = listener.accept().unwrap();
        client.set_nonblocking(true).unwrap();

        let poller = Poller::new().unwrap();
        // Register with no interest, then arm writable: an idle socket is
        // immediately writable.
        poller.add(&client, Event::none(3)).unwrap();
        let mut events = Events::new();
        let n = poller
            .wait(&mut events, Some(Duration::from_millis(10)))
            .unwrap();
        assert_eq!(n, 0, "no interest armed");

        poller.modify(&client, Event::writable(3)).unwrap();
        let t0 = Instant::now();
        let n = poller
            .wait(&mut events, Some(Duration::from_secs(5)))
            .unwrap();
        assert_eq!(n, 1);
        assert!(t0.elapsed() < Duration::from_secs(1));
        let ev = events.iter().next().unwrap();
        assert_eq!(ev.key, 3);
        assert!(ev.writable);

        // Disarm again: quiet.
        poller.modify(&client, Event::none(3)).unwrap();
        let n = poller
            .wait(&mut events, Some(Duration::from_millis(10)))
            .unwrap();
        assert_eq!(n, 0);
        poller.delete(&client).unwrap();
    }
}
