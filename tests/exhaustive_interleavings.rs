//! Bounded model checking: explore **every** FIFO-consistent interleaving
//! of message deliveries and CS releases for small conflict scenarios, for
//! each algorithm.  Any safety violation panics inside the monitor; any
//! interleaving that strands a request panics at its leaf.
//!
//! This is the strongest correctness evidence in the suite: for these
//! scenario shapes the theorems of the paper's annex B (safety, deadlock
//! freedom) are verified *exhaustively*, not statistically.

use mra::baselines::{BouabdallahLaforest, Central, GrantPolicy, Incremental, Maddi};
use mra::core::LassConfig;
use mra::protocol::testkit::{explore_exhaustive, VirtualNet};
use mra::types::{NodeId, ResourceSet};

const BUDGET: u64 = 3_000_000;

fn pairwise_conflict() -> Vec<(NodeId, ResourceSet)> {
    // Three nodes, three resources, overlapping pairs: 0-1 conflict on r1,
    // 1-2 conflict on r2, plus r0 keeps node 0 and node 2 disjoint.
    vec![
        (0, [0, 1].into_iter().collect()),
        (1, [1, 2].into_iter().collect()),
        (2, [2].into_iter().collect()),
    ]
}

fn full_conflict() -> Vec<(NodeId, ResourceSet)> {
    // Everyone wants both resources: total serialization required.
    vec![
        (0, [0, 1].into_iter().collect()),
        (1, [0, 1].into_iter().collect()),
        (2, [0, 1].into_iter().collect()),
    ]
}

#[test]
fn lass_without_loan_pairwise() {
    let cfg = LassConfig::without_loan(3, 3);
    let net = VirtualNet::new(cfg.build_nodes(), 3);
    let rep = explore_exhaustive(&net, &pairwise_conflict(), BUDGET);
    assert!(!rep.truncated, "state budget too small: {} states", rep.states);
    assert!(rep.completions > 0);
}

#[test]
fn lass_with_loan_pairwise() {
    let cfg = LassConfig::with_loan(3, 3);
    let net = VirtualNet::new(cfg.build_nodes(), 3);
    let rep = explore_exhaustive(&net, &pairwise_conflict(), BUDGET);
    assert!(!rep.truncated, "state budget too small: {} states", rep.states);
    assert!(rep.completions > 0);
}

#[test]
fn lass_with_loan_full_conflict() {
    let cfg = LassConfig::with_loan(3, 2);
    let net = VirtualNet::new(cfg.build_nodes(), 2);
    let rep = explore_exhaustive(&net, &full_conflict(), BUDGET);
    assert!(!rep.truncated, "state budget too small: {} states", rep.states);
    assert!(rep.completions > 0);
}

#[test]
fn lass_without_optimizations_pairwise() {
    let mut cfg = LassConfig::with_loan(3, 3);
    cfg.opt_single_resource = false;
    cfg.opt_stop_forwarding = false;
    cfg.opt_shortcut_on_counter = false;
    let net = VirtualNet::new(cfg.build_nodes(), 3);
    let rep = explore_exhaustive(&net, &pairwise_conflict(), BUDGET);
    assert!(!rep.truncated);
    assert!(rep.completions > 0);
}

#[test]
fn bouabdallah_laforest_pairwise_and_full() {
    let net = VirtualNet::new(BouabdallahLaforest::build_nodes(3, 3), 3);
    let rep = explore_exhaustive(&net, &pairwise_conflict(), BUDGET);
    assert!(!rep.truncated);
    assert!(rep.completions > 0);

    let net = VirtualNet::new(BouabdallahLaforest::build_nodes(3, 2), 2);
    let rep = explore_exhaustive(&net, &full_conflict(), BUDGET);
    assert!(!rep.truncated);
    assert!(rep.completions > 0);
}

#[test]
fn incremental_pairwise_and_full() {
    let net = VirtualNet::new(Incremental::build_nodes(3, 3), 3);
    let rep = explore_exhaustive(&net, &pairwise_conflict(), BUDGET);
    assert!(!rep.truncated);
    assert!(rep.completions > 0);

    let net = VirtualNet::new(Incremental::build_nodes(3, 2), 2);
    let rep = explore_exhaustive(&net, &full_conflict(), BUDGET);
    assert!(!rep.truncated);
    assert!(rep.completions > 0);
}

#[test]
fn maddi_pairwise() {
    let net = VirtualNet::new(Maddi::build_nodes(3, 3), 3);
    let rep = explore_exhaustive(&net, &pairwise_conflict(), BUDGET);
    assert!(!rep.truncated, "state budget too small: {} states", rep.states);
    assert!(rep.completions > 0);
}

#[test]
fn central_pairwise() {
    // 3 clients + coordinator (node 3).
    let net = VirtualNet::new(Central::build_nodes(3, GrantPolicy::Conservative), 3);
    let rep = explore_exhaustive(&net, &pairwise_conflict(), BUDGET);
    assert!(!rep.truncated);
    assert!(rep.completions > 0);
}

#[test]
fn two_node_duel_every_algorithm() {
    // The minimal conflict: both nodes want the same two resources in
    // opposite "natural" orders — the classic deadlock shape.
    let duel: Vec<(NodeId, ResourceSet)> = vec![
        (0, [0, 1].into_iter().collect()),
        (1, [0, 1].into_iter().collect()),
    ];
    let cfg = LassConfig::with_loan(2, 2);
    let rep = explore_exhaustive(&VirtualNet::new(cfg.build_nodes(), 2), &duel, BUDGET);
    assert!(!rep.truncated);
    let rep_bl = explore_exhaustive(
        &VirtualNet::new(BouabdallahLaforest::build_nodes(2, 2), 2),
        &duel,
        BUDGET,
    );
    assert!(!rep_bl.truncated);
    let rep_inc = explore_exhaustive(
        &VirtualNet::new(Incremental::build_nodes(2, 2), 2),
        &duel,
        BUDGET,
    );
    assert!(!rep_inc.truncated);
    let rep_mad =
        explore_exhaustive(&VirtualNet::new(Maddi::build_nodes(2, 2), 2), &duel, BUDGET);
    assert!(!rep_mad.truncated);
}
