//! Fault property-test matrix: every algorithm of the evaluation runs
//! random workloads under random **lossy and duplicating** fault plans
//! (drops up to 20%, duplicates up to 20% — no permanent partitions), and
//! the imperfect-network invariants must hold:
//!
//! * **safety** — the `SafetyMonitor` never fires (Theorem 1 must survive
//!   message loss: a lost message may starve a node, never double-grant);
//! * **conservation** — after quiescence no granted resource leaks: every
//!   CS entry was matched by an exit and the holder table is empty
//!   (asserted inside [`run_faulty_workload`]);
//! * **fault-aware liveness** — starvation is tolerated *only* under a
//!   lossy plan; with drops disabled every request must complete.
//!
//! The fault decisions are counter-hashed from the plan seed
//! (`mra_protocol::faults`), so every failing case replays exactly.
//!
//! Every run additionally executes with **unbounded causal tracing armed**
//! (`mra::obs`), and the captured trace must pass every structural check in
//! [`mra::obs::check_events`] — no recv without a prior send, per-node
//! Lamport clocks strictly increasing, every recv's clock beyond its cause,
//! and per-link frame conservation — under any drop/dup plan, with or
//! without the reliable session layer.

use mra::baselines::{BouabdallahLaforest, Central, GrantPolicy, Incremental, Maddi};
use mra::core::LassConfig;
use mra::obs::{check_events, TraceMode};
use mra::protocol::faults::FaultPlan;
use mra::protocol::reliable::Reliability;
use mra::protocol::testkit::{run_faulty_workload, ExerciseCfg, FaultyReport, VirtualNet};
use mra::protocol::Allocator;
use proptest::prelude::*;
use rand::rngs::StdRng;
use rand::SeedableRng;

/// Run one protocol fleet under `plan`; safety, conservation and
/// fault-aware liveness are asserted inside the harness, and the armed
/// trace must come back causally consistent.
fn exercise<A: Allocator>(
    nodes: Vec<A>,
    m: usize,
    active: Option<usize>,
    phi: usize,
    plan: &FaultPlan,
    reliable: bool,
    seed: u64,
) -> FaultyReport {
    let mut net = VirtualNet::new(nodes, m);
    net.arm_tracing(TraceMode::Unbounded);
    net.install_faults(plan);
    if reliable {
        net.enable_reliability(Reliability::default());
    }
    let mut rng = StdRng::seed_from_u64(seed);
    let cfg = ExerciseCfg {
        rounds_per_node: 3,
        max_req_size: phi.min(m).max(1),
        m,
        hold_steps: 2,
        active_nodes: active,
        step_cap: 2_000_000,
    };
    let report = run_faulty_workload(&mut net, &cfg, &mut rng);
    let obs = net.take_obs();
    let trace = obs.trace.expect("tracing was armed");
    // Unbounded mode never overwrites, so the full positional checks run.
    assert_eq!(trace.dropped, 0);
    let check = check_events(&trace.to_owned_events(), trace.dropped);
    assert!(
        check.ok(),
        "CAUSAL VIOLATIONS: {} over {} events (reliable={reliable}): {:?}",
        check.violations,
        check.events,
        check.details
    );
    report
}

/// One full sweep of the six-algorithm matrix under one plan.  Returns the
/// per-algorithm completed counts (for the lossless cross-check).
fn matrix(n: usize, m: usize, phi: usize, plan: &FaultPlan, seed: u64) -> Vec<u64> {
    let mut lass_loan = LassConfig::with_loan(n, m);
    lass_loan.loan = Some(1);
    let reports = [
        exercise(Incremental::build_nodes(n, m), m, None, phi, plan, false, seed),
        exercise(BouabdallahLaforest::build_nodes(n, m), m, None, phi, plan, false, seed),
        exercise(
            LassConfig::without_loan(n, m).build_nodes(),
            m,
            None,
            phi,
            plan,
            false,
            seed,
        ),
        exercise(lass_loan.build_nodes(), m, None, phi, plan, false, seed),
        // `build_nodes(n)` appends one passive coordinator node.
        exercise(
            Central::build_nodes(n, GrantPolicy::Conservative),
            m,
            Some(n),
            phi,
            plan,
            false,
            seed,
        ),
        exercise(Maddi::build_nodes(n, m), m, None, phi, plan, false, seed),
    ];
    reports.iter().map(|r| r.cs_completed).collect()
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(16))]

    /// The headline matrix: arbitrary shapes, drops and duplicates up to
    /// 20% each — no safety violation, no post-quiesce resource leak, for
    /// all six algorithms.
    #[test]
    fn all_six_algorithms_safe_and_leak_free_under_drops_and_dups(
        seed in any::<u64>(),
        fault_seed in any::<u64>(),
        drop in 0.0f64..0.20,
        dup in 0.0f64..0.20,
        n in 3usize..6,
        m in 3usize..9,
        phi in 1usize..4,
    ) {
        let plan = FaultPlan::new(fault_seed).drop_rate(drop).dup_rate(dup);
        let _ = matrix(n, m, phi, &plan, seed);
    }

    /// Duplicates alone (no loss anywhere) must cost nothing: the dedup
    /// layer absorbs them and every request completes — for all six.
    #[test]
    fn dup_only_plans_complete_every_request(
        seed in any::<u64>(),
        fault_seed in any::<u64>(),
        dup in 0.0f64..0.20,
        n in 3usize..6,
        m in 3usize..9,
    ) {
        let plan = FaultPlan::new(fault_seed).dup_rate(dup);
        let completed = matrix(n, m, 3, &plan, seed);
        // 3 rounds per active node; Central runs n active clients too.
        for (i, &c) in completed.iter().enumerate() {
            prop_assert_eq!(c as usize, 3 * n, "algorithm #{} lost work", i);
        }
    }

    /// The hard-loss corner: drop rates beyond anything realistic must
    /// still never violate safety or leak a granted resource.
    #[test]
    fn heavy_loss_is_starvation_not_unsafety(
        seed in any::<u64>(),
        fault_seed in any::<u64>(),
        drop in 0.20f64..0.75,
        n in 3usize..5,
        m in 3usize..7,
    ) {
        let plan = FaultPlan::new(fault_seed).drop_rate(drop);
        let _ = matrix(n, m, 2, &plan, seed);
    }

    /// Causality under recovery: with the session layer on, retransmitted
    /// frames carry **fresh** Lamport stamps, and the trace — sends,
    /// retransmissions, fault verdicts and all — must still pass every
    /// structural check while liveness is fully restored (`exercise`
    /// asserts both).  LASS with loan and Bouabdallah–Laforest cover the
    /// counter-based and token-based protocol families.
    #[test]
    fn reliable_recovery_traces_stay_causally_consistent(
        seed in any::<u64>(),
        fault_seed in any::<u64>(),
        drop in 0.0f64..0.30,
        dup in 0.0f64..0.20,
        n in 3usize..6,
        m in 3usize..8,
    ) {
        let plan = FaultPlan::new(fault_seed).drop_rate(drop).dup_rate(dup);
        let mut lass_loan = LassConfig::with_loan(n, m);
        lass_loan.loan = Some(1);
        let a = exercise(lass_loan.build_nodes(), m, None, 3, &plan, true, seed);
        let b = exercise(BouabdallahLaforest::build_nodes(n, m), m, None, 3, &plan, true, seed);
        // Recoverable plan + session layer: liveness is owed again.
        prop_assert_eq!(a.cs_completed as usize, 3 * n);
        prop_assert_eq!(b.cs_completed as usize, 3 * n);
    }
}
