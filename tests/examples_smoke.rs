//! Workspace-wiring smoke test: every example must build and run through the
//! facade crate. Catches facade re-export regressions (e.g. a renamed
//! member crate) that unit tests cannot see.
//!
//! Each example is executed via `cargo run --example` with `MRA_FAST=1` and
//! a tiny measurement window so the whole sweep stays in the seconds range.

use std::process::Command;

/// Discovered from `examples/*.rs` so newly added examples are covered
/// without touching this test.
fn example_names() -> Vec<String> {
    let dir = std::path::Path::new(env!("CARGO_MANIFEST_DIR")).join("examples");
    let mut names: Vec<String> = std::fs::read_dir(&dir)
        .expect("examples/ directory")
        .filter_map(|e| {
            let path = e.ok()?.path();
            if path.extension()? == "rs" {
                Some(path.file_stem()?.to_string_lossy().into_owned())
            } else {
                None
            }
        })
        .collect();
    names.sort();
    assert!(names.len() >= 5, "examples went missing: {names:?}");
    names
}

#[test]
fn all_examples_run_to_completion() {
    // `cargo test` exports $CARGO for its children; fall back to PATH lookup
    // when the binary is launched by hand.
    let cargo = std::env::var("CARGO").unwrap_or_else(|_| "cargo".into());
    for name in example_names() {
        let out = Command::new(&cargo)
            .args(["run", "-q", "--example", &name])
            .env("MRA_FAST", "1")
            .env("MRA_MEASURE_SECS", "0.3")
            .output()
            .unwrap_or_else(|e| panic!("spawning cargo for example {name}: {e}"));
        assert!(
            out.status.success(),
            "example {name} failed with {}\n--- stdout ---\n{}\n--- stderr ---\n{}",
            out.status,
            String::from_utf8_lossy(&out.stdout),
            String::from_utf8_lossy(&out.stderr),
        );
        assert!(
            !out.stdout.is_empty(),
            "example {name} printed nothing on stdout"
        );
    }
}
