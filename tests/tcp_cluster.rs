//! Wire-level integration: an 8-node loopback cluster over **real TCP**
//! completes its round quota with zero safety violations, for LASS and for
//! a baseline.  A safety violation panics inside the shared
//! `SafetyMonitor` (same checker as every other substrate), so plain
//! completion is the assertion.
//!
//! Honors `MRA_FAST=1` by shrinking the per-node round quota.

use mra::baselines::BouabdallahLaforest;
use mra::core::LassConfig;
use mra::net::{run_tcp_cluster, NetBackend, TcpClusterConfig};
use mra::protocol::faults::FaultPlan;
use mra::protocol::reliable::Reliability;
use mra::sim::FixedWorkload;
use mra::types::Time;

const N: usize = 8;
const M: usize = 16;

/// Per-node round quota: `MRA_FAST` (the CI knob that shrinks every
/// workload in the workspace) quarters it.
fn rounds() -> usize {
    let fast = std::env::var("MRA_FAST").is_ok_and(|v| !v.is_empty() && v != "0");
    if fast {
        3
    } else {
        12
    }
}

fn workloads() -> Vec<FixedWorkload> {
    (0..N)
        .map(|_| FixedWorkload {
            think: Time::from_micros(300),
            cs: Time::from_micros(500),
            m: M,
            size: 3,
        })
        .collect()
}

#[test]
fn lass_8_node_cluster_over_tcp() {
    let rounds = rounds();
    let cfg = LassConfig::with_loan(N, M);
    let res = run_tcp_cluster(
        cfg.build_nodes(),
        workloads(),
        M,
        TcpClusterConfig::new(rounds, 0xC0FF_EE00),
    );
    assert_eq!(res.algo, "lass+loan");
    assert_eq!(res.cs_completed, (N * rounds) as u64);
    assert_eq!(res.censored, 0);
    assert_eq!(res.wait_stats().count, N * rounds);
    // Real traffic flowed: LASS needs counters and tokens for remote sets.
    assert!(res.msgs_total > 0, "no messages crossed the wire");
}

#[test]
fn bouabdallah_laforest_8_node_cluster_over_tcp() {
    let rounds = rounds();
    let res = run_tcp_cluster(
        BouabdallahLaforest::build_nodes(N, M),
        workloads(),
        M,
        TcpClusterConfig::new(rounds, 0xBEEF),
    );
    assert_eq!(res.cs_completed, (N * rounds) as u64);
    assert_eq!(res.censored, 0);
    // The control token alone costs messages every cycle.
    assert!(res.msgs_per_cs() >= 1.0);
}

/// One quota run per transport backend, explicitly pinned — the suite's
/// other tests take the backend from the environment, so without these
/// twins a CI machine pinned to one backend would never exercise the
/// other.
fn pinned_backend_run(backend: NetBackend) {
    let rounds = rounds();
    let cfg = LassConfig::with_loan(N, M);
    let res = run_tcp_cluster(
        cfg.build_nodes(),
        workloads(),
        M,
        TcpClusterConfig {
            backend,
            ..TcpClusterConfig::new(rounds, 0xC0FF_EE01)
        },
    );
    assert_eq!(res.cs_completed, (N * rounds) as u64);
    assert_eq!(res.censored, 0);
    // The harness folds every node's transport counters into the run
    // report; any quota run moves frames and costs write syscalls.
    assert!(res.obs.net.frames_out > 0, "no outbound frames tallied");
    assert!(res.obs.net.frames_in > 0, "no inbound frames tallied");
    assert!(res.obs.net.write_calls > 0, "no write syscalls tallied");
    assert!(res.obs.net.read_calls > 0, "no read syscalls tallied");
}

#[test]
fn lass_8_node_cluster_on_the_reactor_backend() {
    pinned_backend_run(NetBackend::Reactor);
}

#[test]
fn lass_8_node_cluster_on_the_threaded_backend() {
    pinned_backend_run(NetBackend::Threaded);
}

#[test]
fn reactor_backend_recovers_a_lossy_wire_with_the_session_layer() {
    // Reliability + a 10% drop shim on the reactor path: the session
    // layer runs *inside* the reactor here (RTOs on its timer wheel,
    // acks coalesced into the next flush), so the exact quota under loss
    // is the end-to-end proof that batching broke no session invariant.
    let rounds = rounds();
    let cfg = LassConfig::with_loan(N, M);
    let res = run_tcp_cluster(
        cfg.build_nodes(),
        workloads(),
        M,
        TcpClusterConfig {
            backend: NetBackend::Reactor,
            faults: Some(FaultPlan::new(0xFA17).drop_rate(0.1).dup_rate(0.05)),
            reliability: Some(Reliability::with_rto(Time::from_millis(2))),
            ..TcpClusterConfig::new(rounds, 0xC0FF_EE02)
        },
    );
    assert_eq!(res.cs_completed, (N * rounds) as u64);
    assert_eq!(res.censored, 0);
}

#[test]
fn lass_handles_emulated_wan_latency_over_tcp() {
    // A short run with 1 ms of artificial one-way latency stacked on the
    // loopback wire: still exact quota, still violation-free.
    let cfg = LassConfig::with_loan(4, 8);
    let res = run_tcp_cluster(
        cfg.build_nodes(),
        (0..4)
            .map(|_| FixedWorkload {
                think: Time::from_micros(200),
                cs: Time::from_micros(400),
                m: 8,
                size: 2,
            })
            .collect(),
        8,
        TcpClusterConfig {
            extra_latency: Time::from_millis(1),
            ..TcpClusterConfig::new(3, 42)
        },
    );
    assert_eq!(res.cs_completed, 12);
    assert_eq!(res.censored, 0);
}
