//! End-to-end coverage of the allocation-as-a-service serving layer.
//!
//! Open-loop arrival streams drive every algorithm family through the
//! simulator and through the real TCP reactor; the tests pin the three
//! properties the layer exists for:
//!
//! 1. **No coordinated omission** — latency keyed by *intended arrival*
//!    (`RunResult::serve_stats`) must grow with offered load when the
//!    server falls behind, while the old issue-keyed `wait_stats` stays
//!    nearly flat (that flatness is exactly the measurement bug the
//!    serving layer fixes).
//! 2. **Conservation** — every offered request is admitted or shed,
//!    everything admitted is served / queued / in flight, nothing is
//!    duplicated or resurrected — including under lossy fault plans with
//!    the reliable session layer on.
//! 3. **Determinism** — seeded arrival streams make whole serving runs
//!    reproducible on the simulator.

use mra::net::{run_tcp_cluster, NetBackend, TcpClusterConfig};
use mra::protocol::faults::FaultPlan;
use mra::protocol::reliable::Reliability;
use mra::serve::{ServeConfig, ServeWorkload, SharedServeStats};
use mra::types::Time;
use mra_workloads::{run_serve, Algorithm, Scenario, ServeScenario};

fn scenario(seed: u64, measure_secs: f64) -> Scenario {
    Scenario::builder()
        .nodes(5)
        .resources(10)
        .max_request_size(3)
        .seed(seed)
        .measure_secs(measure_secs)
        .build()
}

fn serve_cfg(rate_hz: f64) -> ServeConfig {
    ServeConfig {
        rate_hz,
        ..ServeConfig::default()
    }
}

/// Open-loop generators drive all six algorithm families on the
/// simulator, deterministically.
#[test]
fn six_algorithms_serve_open_loop_deterministically() {
    for algo in Algorithm::fault_set() {
        let ssc = ServeScenario::new(scenario(0xA110C, 0.6), serve_cfg(120.0));
        let a = run_serve(algo, &ssc, None, None);
        assert!(a.serve.served > 0, "{algo:?} served nothing");
        assert!(a.result.cs_completed > 0, "{algo:?} completed no CS");
        a.check().unwrap_or_else(|e| panic!("{algo:?}: {e}"));
        // Batching never inflates work: one engine CS per batch, at least
        // one member per batch.
        assert!(a.serve.batches <= a.serve.batched_reqs);
        assert!(a.serve.served <= a.serve.offered);
        let b = run_serve(algo, &ssc, None, None);
        assert_eq!(a.result.cs_completed, b.result.cs_completed, "{algo:?}");
        assert_eq!(a.result.msgs_total, b.result.msgs_total, "{algo:?}");
        assert_eq!(a.serve.offered, b.serve.offered, "{algo:?}");
        assert_eq!(a.serve.served, b.serve.served, "{algo:?}");
        assert_eq!(
            a.serve.grant_latency.p999(),
            b.serve.grant_latency.p999(),
            "{algo:?}"
        );
    }
}

/// **Regression test for the coordinated-omission bug** (the latency
/// accounting fix of this change).
///
/// A node is stalled by a pause fault while its open-loop arrivals keep
/// coming.  Requests that arrive during the stall only *issue* after it
/// ends, so issue-keyed waiting time barely notices the stall and barely
/// moves as offered load rises.  Arrival-keyed serving latency must show
/// the queueing delay — and show it growing with offered load.
///
/// Before the fix (`wait_stats` was the only latency metric) the first
/// assertion had nothing to measure and the reported p99 stayed flat:
/// re-keying this test to `wait_stats` makes it fail, which is the
/// "fails before the fix" witness.
#[test]
fn coordinated_omission_stalled_node_p99_grows_with_offered_load() {
    let stall = |seed| {
        // Node 0 freezes for 300 ms in the middle of the measurement
        // window; reliability keeps the protocols live through it.
        FaultPlan::new(seed).pause(0, Time::from_millis(400), Time::from_millis(700))
    };
    let run = |rate_hz: f64| {
        let ssc = ServeScenario::new(scenario(7, 1.2), serve_cfg(rate_hz));
        run_serve(
            Algorithm::LassLoan,
            &ssc,
            Some(&stall(1)),
            Some(Reliability::default()),
        )
    };
    let lo = run(40.0);
    let hi = run(400.0);
    lo.check().expect("low-load conservation");
    hi.check().expect("high-load conservation");

    let (lo_wait, lo_serve) = (lo.result.wait_stats(), lo.result.serve_stats());
    let (hi_wait, hi_serve) = (hi.result.wait_stats(), hi.result.serve_stats());

    // Per record, arrival precedes issue, so serving latency dominates.
    assert!(lo_serve.p99_ms >= lo_wait.p99_ms);
    assert!(hi_serve.p99_ms >= hi_wait.p99_ms);

    // The signal: arrival-keyed p99 grows with offered load on the
    // stalled system (measured ~2.9× here; require 2×)...
    assert!(
        hi_serve.p99_ms > 2.0 * lo_serve.p99_ms,
        "serve p99 should grow with load: lo {:.2} ms hi {:.2} ms",
        lo_serve.p99_ms,
        hi_serve.p99_ms
    );
    // ...and the issue-keyed metric hides much of the tail: the gap
    // between the two p99s *is* the coordinated-omission bias.  At low
    // load the stall dominates and the bias is enormous (~20× here); at
    // high load queueing leaks into issue-keyed waits too, but the bias
    // stays well over 1.5× (~2.1× here).
    assert!(
        lo_serve.p99_ms > 5.0 * lo_wait.p99_ms,
        "omission bias missing at low load: serve p99 {:.2} ms vs wait p99 {:.2} ms",
        lo_serve.p99_ms,
        lo_wait.p99_ms
    );
    assert!(
        hi_serve.p99_ms > 1.5 * hi_wait.p99_ms,
        "omission bias missing at high load: serve p99 {:.2} ms vs wait p99 {:.2} ms",
        hi_serve.p99_ms,
        hi_wait.p99_ms
    );
}

/// Serving accounting survives lossy links + pauses when the reliable
/// session layer is on: requests may be slow, but none are lost,
/// duplicated, or served after being shed.
#[test]
fn serve_conserves_under_faults_with_reliability() {
    for (seed, drop, pause_ms) in [(1u64, 0.05, 0u64), (2, 0.15, 200), (3, 0.0, 350)] {
        let mut plan = FaultPlan::new(seed).drop_rate(drop);
        if pause_ms > 0 {
            plan = plan.pause(
                1,
                Time::from_millis(300),
                Time::from_millis(300 + pause_ms),
            );
        }
        let ssc = ServeScenario::new(scenario(seed ^ 0xF00D, 0.8), serve_cfg(150.0));
        let out = run_serve(
            Algorithm::LassLoan,
            &ssc,
            Some(&plan),
            Some(Reliability::default()),
        );
        out.check()
            .unwrap_or_else(|e| panic!("plan {seed}: conservation broken: {e}"));
        assert!(out.serve.served > 0, "plan {seed}: nothing served");
        assert_eq!(
            out.serve.offered,
            out.serve.admitted + out.serve.shed(),
            "plan {seed}"
        );
        // Arrival-keyed latency can only dominate issue-keyed latency.
        let (w, s) = (out.result.wait_stats(), out.result.serve_stats());
        assert_eq!(w.count, s.count, "plan {seed}");
        assert!(s.mean_ms >= w.mean_ms, "plan {seed}");
    }
}

/// The open-loop serving front end also drives the real TCP reactor
/// transport: a 4-node loopback cluster serves batched open-loop arrivals
/// to completion with conserved accounting.
#[test]
fn serve_workload_over_tcp_reactor_cluster() {
    const N: usize = 4;
    const M: usize = 12;
    let rounds = {
        let fast = std::env::var("MRA_FAST").is_ok_and(|v| !v.is_empty() && v != "0");
        if fast {
            4
        } else {
            10
        }
    };
    let cfg = ServeConfig {
        // Wall-clock run: keep arrivals brisk so the quota fills fast.
        rate_hz: 2000.0,
        seed: 0x7C9,
        ..ServeConfig::default()
    };
    let mut shaped = cfg.clone();
    shaped.shape.m = M;
    let (workloads, handles): (Vec<ServeWorkload>, Vec<SharedServeStats>) =
        ServeWorkload::fleet(&shaped, N);
    let lass = mra::core::LassConfig::with_loan(N, M);
    let mut ccfg = TcpClusterConfig::new(rounds, 0x5EED);
    ccfg.backend = NetBackend::Reactor;
    let res = run_tcp_cluster(lass.build_nodes(), workloads, M, ccfg);
    assert_eq!(res.cs_completed, (N * rounds) as u64);
    assert_eq!(res.censored, 0);
    assert!(res.msgs_total > 0, "no traffic crossed the wire");

    let total = SharedServeStats::merge_all(&handles);
    assert_eq!(total.batches, (N * rounds) as u64);
    assert!(total.batched_reqs >= total.batches);
    assert!(total.served > 0);
    assert_eq!(total.offered, total.admitted + total.shed());
    // Arrival precedes issue, so end-to-end grant latency dominates the
    // engine's issue-keyed waits even on a wall clock.
    let (w, s) = (res.wait_stats(), res.serve_stats());
    assert_eq!(w.count, s.count);
    assert!(s.mean_ms >= w.mean_ms);
}
