//! Reactor-transport scale smoke: big loopback clusters that the
//! thread-per-connection baseline cannot reasonably host.
//!
//! * [`all_algorithms_complete_a_64_node_reactor_cluster`] runs in the
//!   regular suite: every protocol in the repertoire to quota at 64
//!   nodes — ~2 000 real TCP connections in one process, one reactor
//!   thread per node (the threaded baseline would need ~4 000 reader
//!   threads and twice the sockets for the same mesh).
//! * [`lass_and_bl_complete_a_256_node_lossy_reactor_cluster`] is
//!   `#[ignore]`-gated: 256 nodes need ~66 k file descriptors in one
//!   process (the harness raises `RLIMIT_NOFILE`, but containers often
//!   cap the *hard* limit below that) and real CPU.  CI runs it in
//!   release with the ulimit raised; locally:
//!   `cargo test --release --test net_scale -- --ignored`
//!   (`MRA_NET_SCALE_N` overrides the node count if 256 exceeds the
//!   machine's hard fd limit).
//!
//! Safety is asserted the usual way — the shared `SafetyMonitor` panics
//! on violation and the harness checks post-run conservation — so exact
//! quota completion is the test.

use mra::baselines::{BouabdallahLaforest, Central, GrantPolicy, Incremental, Maddi};
use mra::core::LassConfig;
use mra::net::{run_tcp_cluster, NetBackend, TcpClusterConfig};
use mra::protocol::faults::FaultPlan;
use mra::protocol::reliable::Reliability;
use mra::protocol::{Allocator, WireCodec};
use mra::sim::FixedWorkload;
use mra::types::Time;

/// Per-node round quota; `MRA_FAST` (the CI knob) shrinks it.
fn rounds() -> usize {
    let fast = std::env::var("MRA_FAST").is_ok_and(|v| !v.is_empty() && v != "0");
    if fast {
        2
    } else {
        4
    }
}

fn workloads(count: usize, m: usize) -> Vec<FixedWorkload> {
    (0..count)
        .map(|_| FixedWorkload {
            think: Time::from_micros(100),
            cs: Time::from_micros(200),
            m,
            size: 2,
        })
        .collect()
}

/// Run `protos` to quota on the pinned reactor backend and assert exact
/// completion.  `active` may be smaller than `protos.len()` (central's
/// passive coordinator).
fn quota_run<A>(
    protos: Vec<A>,
    active: usize,
    m: usize,
    rounds: usize,
    cfg: TcpClusterConfig,
) -> mra::sim::RunResult
where
    A: Allocator + Send + 'static,
    A::Msg: WireCodec,
{
    let n = protos.len();
    let res = run_tcp_cluster(protos, workloads(n, m), m, cfg);
    assert_eq!(res.cs_completed, (active * rounds) as u64, "{}", res.algo);
    assert_eq!(res.censored, 0, "{}", res.algo);
    res
}

#[test]
fn all_algorithms_complete_a_64_node_reactor_cluster() {
    const N: usize = 64;
    const M: usize = 16;
    let rounds = rounds();
    let cfg = |seed: u64, active: Option<usize>| TcpClusterConfig {
        backend: NetBackend::Reactor,
        active_nodes: active,
        ..TcpClusterConfig::new(rounds, seed)
    };
    quota_run(
        LassConfig::with_loan(N, M).build_nodes(),
        N,
        M,
        rounds,
        cfg(0x64_01, None),
    );
    quota_run(
        LassConfig::without_loan(N, M).build_nodes(),
        N,
        M,
        rounds,
        cfg(0x64_02, None),
    );
    quota_run(
        BouabdallahLaforest::build_nodes(N, M),
        N,
        M,
        rounds,
        cfg(0x64_03, None),
    );
    quota_run(
        Incremental::build_nodes(N, M),
        N,
        M,
        rounds,
        cfg(0x64_04, None),
    );
    quota_run(Maddi::build_nodes(N, M), N, M, rounds, cfg(0x64_05, None));
    // Central appends one passive coordinator: N+1 nodes, N active.
    quota_run(
        Central::build_nodes(N, GrantPolicy::Conservative),
        N,
        M,
        rounds,
        cfg(0x64_06, Some(N)),
    );
}

/// The tentpole's scale acceptance: LASS and Bouabdallah–Laforest to
/// quota at 256 nodes on the reactor path, with the reliable session
/// layer recovering a 5% frame-drop shim.  `#[ignore]` because one
/// process needs ~66 k fds — see the module docs.
#[test]
#[ignore = "needs ~66k fds and release-build CPU; run explicitly / in CI"]
fn lass_and_bl_complete_a_256_node_lossy_reactor_cluster() {
    let n: usize = std::env::var("MRA_NET_SCALE_N")
        .ok()
        .and_then(|v| v.parse().ok())
        .unwrap_or(256);
    const M: usize = 16;
    let rounds = rounds();
    let cfg = |seed: u64| TcpClusterConfig {
        backend: NetBackend::Reactor,
        faults: Some(FaultPlan::new(0xFA17).drop_rate(0.05)),
        reliability: Some(Reliability::with_rto(Time::from_millis(10))),
        ..TcpClusterConfig::new(rounds, seed)
    };
    let lass = quota_run(
        LassConfig::with_loan(n, M).build_nodes(),
        n,
        M,
        rounds,
        cfg(0x0256_0001),
    );
    // The wire saw real loss and the sessions recovered it.
    assert!(lass.obs.net.retransmit_frames > 0, "shim never dropped a frame");
    quota_run(BouabdallahLaforest::build_nodes(n, M), n, M, rounds, cfg(0x0256_0002));
}
