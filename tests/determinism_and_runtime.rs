//! Determinism guarantees and threaded-runtime validation.

use mra::core::LassConfig;
use mra::sim::{run_threaded, FixedWorkload, ThreadedConfig};
use mra::types::Time;
use mra::workloads::{run, Algorithm, Load, Scenario};

fn sc(seed: u64) -> Scenario {
    Scenario::builder()
        .load(Load::High)
        .max_request_size(6)
        .nodes(12)
        .resources(24)
        .seed(seed)
        .measure_secs(2.0)
        .build()
}

#[test]
fn identical_seeds_identical_runs() {
    for algo in [
        Algorithm::Incremental,
        Algorithm::BouabdallahLaforest,
        Algorithm::LassLoan,
        Algorithm::Maddi,
    ] {
        let a = run(algo, &sc(77));
        let b = run(algo, &sc(77));
        assert_eq!(a.cs_completed, b.cs_completed, "{}", algo.label());
        assert_eq!(a.msgs_total, b.msgs_total, "{}", algo.label());
        assert_eq!(
            a.wait_stats().mean_ms,
            b.wait_stats().mean_ms,
            "{}",
            algo.label()
        );
    }
}

#[test]
fn different_seeds_differ() {
    let a = run(Algorithm::LassLoan, &sc(1));
    let b = run(Algorithm::LassLoan, &sc(2));
    // Message totals virtually never coincide across seeds.
    assert_ne!(
        (a.cs_completed, a.msgs_total),
        (b.cs_completed, b.msgs_total)
    );
}

#[test]
fn threaded_runtime_agrees_with_simulator_on_safety_and_quota() {
    // Small but real: 6 threads, 12 resources, everyone completes its
    // quota under genuine parallelism (safety checked by the monitor).
    let cfg = LassConfig::with_loan(6, 12);
    let workloads: Vec<FixedWorkload> = (0..6)
        .map(|_| FixedWorkload {
            think: Time::from_micros(300),
            cs: Time::from_micros(500),
            m: 12,
            size: 3,
        })
        .collect();
    let res = run_threaded(
        cfg.build_nodes(),
        workloads,
        12,
        ThreadedConfig {
            rounds: 8,
            latency: Time::from_micros(100),
            seed: 5,
            active_nodes: None,
        },
    );
    assert_eq!(res.cs_completed, 48);
    assert_eq!(res.censored, 0);
    assert!(res.use_rate() > 0.0);
    assert!(res.msgs_total > 0);
}

#[test]
fn threaded_runtime_runs_every_algorithm() {
    use mra::baselines::{BouabdallahLaforest, Incremental, Maddi};
    let workloads = |n: usize| -> Vec<FixedWorkload> {
        (0..n)
            .map(|_| FixedWorkload {
                think: Time::from_micros(200),
                cs: Time::from_micros(400),
                m: 8,
                size: 2,
            })
            .collect()
    };
    let tc = |seed| ThreadedConfig {
        rounds: 5,
        latency: Time::from_micros(50),
        seed,
        active_nodes: None,
    };
    let r = run_threaded(Incremental::build_nodes(4, 8), workloads(4), 8, tc(1));
    assert_eq!(r.cs_completed, 20);
    let r = run_threaded(
        BouabdallahLaforest::build_nodes(4, 8),
        workloads(4),
        8,
        tc(2),
    );
    assert_eq!(r.cs_completed, 20);
    let r = run_threaded(Maddi::build_nodes(4, 8), workloads(4), 8, tc(3));
    assert_eq!(r.cs_completed, 20);
}

#[test]
fn gantt_rendering_of_a_real_run() {
    let res = run(Algorithm::LassLoan, &sc(3));
    let gantt = mra::sim::render_gantt(&res, 72);
    // One row per resource plus header/footer.
    assert_eq!(gantt.lines().count(), 24 + 2);
    assert!(gantt.contains("use rate"));
}
