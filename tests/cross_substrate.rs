//! Cross-substrate conformance: one fixed scenario — 8 nodes, 16
//! resources, paper LAN latency (γ = 0.6 ms where the substrate has a
//! clock), seed 42, fault-free plan — runs on the three in-process
//! substrates (`VirtualNet`, the discrete-event `Sim`, the mpsc threaded
//! runtime) and they must agree on `cs_entered` **per node**.
//!
//! The substrates cannot share a message schedule (one has no clock, one
//! has a virtual clock, one real threads), so agreement is made exact by
//! running a *quota* workload: every node performs exactly `ROUNDS`
//! request/CS/release cycles.  Safety + liveness on each substrate then
//! force the identical per-node count — any double grant, lost grant or
//! phantom CS on any substrate breaks the equality (and the shared
//! `SafetyMonitor` panics long before).

use mra::core::LassConfig;
use mra::baselines::BouabdallahLaforest;
use mra::protocol::faults::FaultPlan;
use mra::protocol::testkit::{run_random_workload, ExerciseCfg, VirtualNet};
use mra::protocol::Allocator;
use mra::sim::{
    run_threaded, FixedWorkload, LatencyModel, RunResult, Sim, SimConfig, ThreadedConfig,
    Workload,
};
use mra::types::{ResourceSet, Time};
use rand::rngs::StdRng;
use rand::SeedableRng;

const N: usize = 8;
const M: usize = 16;
const SEED: u64 = 42;
const ROUNDS: usize = 4;

/// [`FixedWorkload`] with a request quota: after `left` draws the node
/// thinks forever, so a window-based engine (the simulator) runs exactly
/// the quota-based scenario the other substrates run natively.
struct QuotaWorkload {
    left: usize,
    inner: FixedWorkload,
}

impl Workload for QuotaWorkload {
    fn think_time(&mut self, rng: &mut StdRng) -> Time {
        if self.left == 0 {
            // Past the simulation horizon: this node is done.
            Time::from_secs(10_000)
        } else {
            self.inner.think_time(rng)
        }
    }
    fn next_request(&mut self, rng: &mut StdRng) -> (ResourceSet, Time) {
        self.left -= 1;
        self.inner.next_request(rng)
    }
}

fn fixed() -> FixedWorkload {
    FixedWorkload {
        think: Time::from_millis(5),
        cs: Time::from_millis(3),
        m: M,
        size: 3,
    }
}

/// Completed critical sections per node, from the run's request records.
fn per_node(res: &RunResult) -> Vec<usize> {
    (0..N)
        .map(|i| {
            res.records
                .iter()
                .filter(|r| r.node == i && r.granted.is_some())
                .count()
        })
        .collect()
}

fn conformance<A, F>(build: F)
where
    A: Allocator + Send + 'static,
    F: Fn() -> Vec<A>,
{
    // Substrate 1: the synchronous virtual network (no clock — the quota
    // lives in the exercise config).  `run_random_workload` asserts full
    // completion, and the per-node quota caps each node at ROUNDS, so
    // completing N × ROUNDS total *is* the per-node vector [ROUNDS; N].
    let mut net = VirtualNet::new(build(), M);
    net.install_faults(&FaultPlan::new(SEED)); // the fault-free plan
    let mut rng = StdRng::seed_from_u64(SEED);
    let vnet_rep = run_random_workload(
        &mut net,
        &ExerciseCfg {
            rounds_per_node: ROUNDS,
            max_req_size: 3,
            m: M,
            hold_steps: 2,
            active_nodes: None,
            step_cap: 2_000_000,
        },
        &mut rng,
    );
    assert_eq!(vnet_rep.cs_completed as usize, N * ROUNDS);
    net.monitor.assert_conservation();
    let vnet_counts = vec![ROUNDS; N];

    // Substrate 2: the discrete-event simulator, paper LAN latency,
    // fault-free plan installed (it must change nothing).
    let sim_counts = {
        let workloads: Vec<QuotaWorkload> = (0..N)
            .map(|_| QuotaWorkload {
                left: ROUNDS,
                inner: fixed(),
            })
            .collect();
        let cfg = SimConfig {
            latency: LatencyModel::paper_lan(),
            seed: SEED,
            warmup: Time::ZERO,
            measure: Time::from_secs(60),
            drain: Time::from_secs(60),
            active_nodes: None,
            max_events: 200_000_000,
        };
        let mut sim = Sim::new(build(), workloads, M, cfg);
        sim.set_fault_plan(FaultPlan::new(SEED));
        let res = sim.run();
        assert_eq!(res.censored, 0, "simulator starved a quota request");
        per_node(&res)
    };

    // Substrate 3: the mpsc threaded runtime (real concurrency, emulated
    // γ = 0.6 ms links), natively quota-based.
    let mpsc_counts = {
        let res = run_threaded(
            build(),
            (0..N).map(|_| fixed()).collect::<Vec<_>>(),
            M,
            ThreadedConfig {
                rounds: ROUNDS,
                latency: Time::from_micros(600),
                seed: SEED,
                active_nodes: None,
            },
        );
        assert_eq!(res.censored, 0);
        per_node(&res)
    };

    assert_eq!(
        sim_counts, vnet_counts,
        "Sim disagrees with VirtualNet on cs_entered per node"
    );
    assert_eq!(
        mpsc_counts, vnet_counts,
        "mpsc runtime disagrees with VirtualNet on cs_entered per node"
    );
}

#[test]
fn lass_cs_entered_per_node_agrees_across_substrates() {
    conformance(|| LassConfig::with_loan(N, M).build_nodes());
}

#[test]
fn bouabdallah_laforest_cs_entered_per_node_agrees_across_substrates() {
    conformance(|| BouabdallahLaforest::build_nodes(N, M));
}
