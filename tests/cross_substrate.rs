//! Cross-substrate conformance: one fixed scenario — 8 active nodes, 16
//! resources, paper LAN latency (γ = 0.6 ms where the substrate has a
//! clock), seed 42, fault-free plan — runs on the three in-process
//! substrates (`VirtualNet`, the discrete-event `Sim`, the mpsc threaded
//! runtime) and they must agree on `cs_entered` **per node**, for **all
//! six protocol families** of the evaluation.
//!
//! The substrates cannot share a message schedule (one has no clock, one
//! has a virtual clock, one real threads), so agreement is made exact by
//! running a *quota* workload: every node performs exactly `ROUNDS`
//! request/CS/release cycles.  Safety + liveness on each substrate then
//! force the identical per-node count — any double grant, lost grant or
//! phantom CS on any substrate breaks the equality (and the shared
//! `SafetyMonitor` panics long before).
//!
//! The second half of this file is the PR 5 liveness-under-loss matrix:
//! with the reliable session layer on, a 20% drop plan must cost **zero**
//! critical sections — the harness asserts full completion, conservation
//! at quiescence and re-arms the deadlock panic (see
//! `mra::protocol::reliable`).

use mra::baselines::{BouabdallahLaforest, Central, GrantPolicy, Incremental, Maddi};
use mra::core::LassConfig;
use mra::protocol::faults::FaultPlan;
use mra::protocol::reliable::Reliability;
use mra::protocol::testkit::{
    run_faulty_workload, run_random_workload, ExerciseCfg, VirtualNet,
};
use mra::protocol::Allocator;
use mra::sim::{
    run_threaded, FixedWorkload, LatencyModel, RunResult, Sim, SimConfig, ThreadedConfig,
    Workload,
};
use mra::types::{ResourceSet, Time};
use proptest::prelude::*;
use rand::rngs::StdRng;
use rand::SeedableRng;

const N: usize = 8;
const M: usize = 16;
const SEED: u64 = 42;
const ROUNDS: usize = 4;

/// [`FixedWorkload`] with a request quota: after `left` draws the node
/// thinks forever, so a window-based engine (the simulator) runs exactly
/// the quota-based scenario the other substrates run natively.
struct QuotaWorkload {
    left: usize,
    inner: FixedWorkload,
}

impl Workload for QuotaWorkload {
    fn think_time(&mut self, rng: &mut StdRng) -> Time {
        if self.left == 0 {
            // Past the simulation horizon: this node is done.
            Time::from_secs(10_000)
        } else {
            self.inner.think_time(rng)
        }
    }
    fn next_request(&mut self, rng: &mut StdRng) -> (ResourceSet, Time) {
        self.left -= 1;
        self.inner.next_request(rng)
    }
}

fn fixed() -> FixedWorkload {
    FixedWorkload {
        think: Time::from_millis(5),
        cs: Time::from_millis(3),
        m: M,
        size: 3,
    }
}

/// Completed critical sections for nodes `0..active`, from the run's
/// request records.
fn per_node(res: &RunResult, active: usize) -> Vec<usize> {
    (0..active)
        .map(|i| {
            res.records
                .iter()
                .filter(|r| r.node == i && r.granted.is_some())
                .count()
        })
        .collect()
}

/// Quota-parity conformance for one protocol family.  `active` restricts
/// the request-issuing nodes (coordinator-based algorithms keep their
/// coordinator passive); the fleet may be larger.
fn conformance<A, F>(build: F, active: Option<usize>)
where
    A: Allocator + Send + 'static,
    F: Fn() -> Vec<A>,
{
    let n_total = build().len();
    let n_active = active.unwrap_or(n_total);

    // Substrate 1: the synchronous virtual network (no clock — the quota
    // lives in the exercise config).  `run_random_workload` asserts full
    // completion, and the per-node quota caps each node at ROUNDS, so
    // completing n_active × ROUNDS total *is* the per-node vector
    // [ROUNDS; n_active].
    let mut net = VirtualNet::new(build(), M);
    net.install_faults(&FaultPlan::new(SEED)); // the fault-free plan
    let mut rng = StdRng::seed_from_u64(SEED);
    let vnet_rep = run_random_workload(
        &mut net,
        &ExerciseCfg {
            rounds_per_node: ROUNDS,
            max_req_size: 3,
            m: M,
            hold_steps: 2,
            active_nodes: active,
            step_cap: 2_000_000,
        },
        &mut rng,
    );
    assert_eq!(vnet_rep.cs_completed as usize, n_active * ROUNDS);
    net.monitor.assert_conservation();
    let vnet_counts = vec![ROUNDS; n_active];

    // Substrate 2: the discrete-event simulator, paper LAN latency,
    // fault-free plan installed (it must change nothing).
    let sim_counts = {
        let workloads: Vec<QuotaWorkload> = (0..n_total)
            .map(|_| QuotaWorkload {
                left: ROUNDS,
                inner: fixed(),
            })
            .collect();
        let cfg = SimConfig {
            latency: LatencyModel::paper_lan(),
            seed: SEED,
            warmup: Time::ZERO,
            measure: Time::from_secs(60),
            drain: Time::from_secs(60),
            active_nodes: active,
            max_events: 200_000_000,
            shards: 1,
        };
        let mut sim = Sim::new(build(), workloads, M, cfg);
        sim.set_fault_plan(FaultPlan::new(SEED));
        let res = sim.run();
        assert_eq!(res.censored, 0, "simulator starved a quota request");
        per_node(&res, n_active)
    };

    // Substrate 3: the mpsc threaded runtime (real concurrency, emulated
    // γ = 0.6 ms links), natively quota-based.
    let mpsc_counts = {
        let res = run_threaded(
            build(),
            (0..n_total).map(|_| fixed()).collect::<Vec<_>>(),
            M,
            ThreadedConfig {
                rounds: ROUNDS,
                latency: Time::from_micros(600),
                seed: SEED,
                active_nodes: active,
            },
        );
        assert_eq!(res.censored, 0);
        per_node(&res, n_active)
    };

    assert_eq!(
        sim_counts, vnet_counts,
        "Sim disagrees with VirtualNet on cs_entered per node"
    );
    assert_eq!(
        mpsc_counts, vnet_counts,
        "mpsc runtime disagrees with VirtualNet on cs_entered per node"
    );
}

#[test]
fn lass_cs_entered_per_node_agrees_across_substrates() {
    conformance(|| LassConfig::with_loan(N, M).build_nodes(), None);
}

#[test]
fn lass_noloan_cs_entered_per_node_agrees_across_substrates() {
    conformance(|| LassConfig::without_loan(N, M).build_nodes(), None);
}

#[test]
fn bouabdallah_laforest_cs_entered_per_node_agrees_across_substrates() {
    conformance(|| BouabdallahLaforest::build_nodes(N, M), None);
}

#[test]
fn incremental_cs_entered_per_node_agrees_across_substrates() {
    conformance(|| Incremental::build_nodes(N, M), None);
}

#[test]
fn maddi_cs_entered_per_node_agrees_across_substrates() {
    conformance(|| Maddi::build_nodes(N, M), None);
}

#[test]
fn central_cs_entered_per_node_agrees_across_substrates() {
    // `build_nodes(N)` appends one passive coordinator node (id N).
    conformance(
        || Central::build_nodes(N, GrantPolicy::Conservative),
        Some(N),
    );
}

/// One liveness-under-loss run of one protocol family: 20% seeded drop,
/// reliable session layer on.  The harness itself asserts full completion
/// (the plan is recoverable, so liveness is owed), zero post-quiesce
/// resource leaks via `SafetyMonitor::assert_conservation`, and the
/// re-armed deadlock panic.
fn survives_loss<A: Allocator>(nodes: Vec<A>, active: Option<usize>, seed: u64, fault_seed: u64) {
    eprintln!("survives_loss: algo={} seed={seed} fault_seed={fault_seed}", nodes[0].name());
    let n_active = active.unwrap_or(nodes.len());
    let mut net = VirtualNet::new(nodes, M);
    net.install_faults(&FaultPlan::new(fault_seed).drop_rate(0.20));
    net.enable_reliability(Reliability::default());
    let mut rng = StdRng::seed_from_u64(seed);
    let rep = run_faulty_workload(
        &mut net,
        &ExerciseCfg {
            rounds_per_node: 3,
            max_req_size: 3,
            m: M,
            hold_steps: 2,
            active_nodes: active,
            step_cap: 2_000_000,
        },
        &mut rng,
    );
    assert_eq!(rep.cs_completed as usize, 3 * n_active);
    assert!(rep.starved.is_empty(), "starved under reliability: {:?}", rep.starved);
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(6))]

    /// The PR 5 headline invariant: all six algorithms complete the
    /// standard workload at 20% sustained drop rate once the reliable
    /// session layer restores the paper's channel model — liveness under
    /// any plan with drop rate < 1.0, not just under non-lossy plans.
    #[test]
    fn all_six_algorithms_survive_20pct_loss_with_reliability(
        seed in any::<u64>(),
        fault_seed in any::<u64>(),
    ) {
        survives_loss(Incremental::build_nodes(N, M), None, seed, fault_seed);
        survives_loss(BouabdallahLaforest::build_nodes(N, M), None, seed, fault_seed);
        survives_loss(LassConfig::without_loan(N, M).build_nodes(), None, seed, fault_seed);
        survives_loss(LassConfig::with_loan(N, M).build_nodes(), None, seed, fault_seed);
        survives_loss(
            Central::build_nodes(N, GrantPolicy::Conservative),
            Some(N),
            seed,
            fault_seed,
        );
        survives_loss(Maddi::build_nodes(N, M), None, seed, fault_seed);
    }
}
