//! Reproduction of the paper's **Figure 3** execution example (§4.4):
//! three processes (s1, s2, s3 — our nodes 0, 1, 2) and two resources
//! (r_red = 0, r_blue = 1).
//!
//! * Initially s1 holds the red token and s3 the blue token, each in CS on
//!   its resource (Fig. 3(a));
//! * s2 requests *both*: it sends a `ReqCnt` per resource to its fathers,
//!   receives the two counter values, then sends `ReqRes` messages along
//!   the trees (Fig. 3(b));
//! * when s1 and s3 release, the tokens travel to s2, which enters its
//!   critical section and becomes the root of both trees (Fig. 3(c)).

use mra::core::{LassConfig, LassMsg};
use mra::protocol::testkit::VirtualNet;
use mra::protocol::ProcState;
use mra::types::ResourceSet;
use rand::rngs::StdRng;
use rand::SeedableRng;

const RED: usize = 0;
const BLUE: usize = 1;

/// Build the Fig. 3(a) initial state: s1 (node 0) in CS on red, s3
/// (node 2) in CS on blue, s3 holding the blue token.
fn fig3_initial() -> VirtualNet<mra::core::Lass> {
    let cfg = LassConfig::with_loan(3, 2);
    let mut net = VirtualNet::new(cfg.build_nodes(), 2);
    let mut rng = StdRng::seed_from_u64(1);

    // s3 acquires blue (token migrates from the elected node 0).
    net.request(2, ResourceSet::singleton(BLUE));
    net.run_until_quiet(&mut rng, 100);
    assert!(net.in_cs(2), "s3 in CS on blue");
    assert!(net.node(2).owned().contains(BLUE));

    // s1 acquires red locally.
    net.request(0, ResourceSet::singleton(RED));
    assert!(net.in_cs(0), "s1 in CS on red");
    assert!(net.node(0).owned().contains(RED));
    net
}

#[test]
fn fig3_walkthrough() {
    let mut net = fig3_initial();
    let mut rng = StdRng::seed_from_u64(2);

    // Fig. 3(b): s2 asks for both resources.
    let both: ResourceSet = [RED, BLUE].into_iter().collect();
    net.request(1, both);
    assert_eq!(net.state(1), ProcState::WaitS, "s2 first collects counters");

    // The ReqCnt for red reaches s1 directly; for blue the father pointer
    // still names the elected node 0, which forwards to s3 — deliver
    // everything and let the counters come back.
    net.run_until_quiet(&mut rng, 200);
    assert_eq!(
        net.state(1),
        ProcState::WaitCS,
        "both counters received, ReqRes sent"
    );
    // The requests are queued at the two holders.
    assert_eq!(net.node(0).token(RED).w_queue.len(), 1);
    assert_eq!(net.node(0).token(RED).w_queue[0].sinit, 1);
    assert_eq!(net.node(2).token(BLUE).w_queue.len(), 1);
    assert_eq!(net.node(2).token(BLUE).w_queue[0].sinit, 1);
    // Path shortcut: after the blue counter reply, s2's blue father is s3.
    assert_eq!(net.node(1).father(BLUE), Some(2));
    assert_eq!(net.node(1).father(RED), Some(0));

    // s1 exits its critical section: the red token goes to s2.
    net.release(0);
    net.run_until_quiet(&mut rng, 100);
    assert!(net.node(1).owned().contains(RED));
    assert_eq!(net.state(1), ProcState::WaitCS, "still missing blue");

    // s3 exits: the blue token completes s2's request (Fig. 3(c)).
    net.release(2);
    net.run_until_quiet(&mut rng, 100);
    assert!(net.in_cs(1), "s2 enters CS with both resources");
    assert!(net.node(1).owned().contains(RED) && net.node(1).owned().contains(BLUE));

    // Final topology: s2 is the root of both trees; the old holders point
    // to it.
    assert_eq!(net.node(1).father(RED), None);
    assert_eq!(net.node(1).father(BLUE), None);
    assert_eq!(net.node(0).father(RED), Some(1));
    assert_eq!(net.node(2).father(BLUE), Some(1));

    net.release(1);
    net.run_until_quiet(&mut rng, 100);
}

#[test]
fn fig3_message_sequence_kinds() {
    // Check the wire-level narrative of §4.4: s2 emits ReqCnt first, then
    // Counter replies come back, then ReqRes go out.
    let cfg = LassConfig::with_loan(3, 2);
    let nodes = cfg.build_nodes();
    let mut ctxs: Vec<mra::protocol::Ctx<LassMsg>> =
        (0..3).map(|i| mra::protocol::Ctx::new(i, 3)).collect();
    let mut nodes = nodes;
    use mra::protocol::Allocator;

    // s3 takes blue via a scripted exchange.
    nodes[2].request(&mut ctxs[2], ResourceSet::singleton(BLUE));
    let (to, m) = ctxs[2].take_outbox().pop().unwrap();
    assert_eq!(to, 0);
    nodes[0].on_message(&mut ctxs[0], 2, m);
    let (to, m) = ctxs[0].take_outbox().pop().unwrap();
    assert_eq!(to, 2);
    nodes[2].on_message(&mut ctxs[2], 0, m);
    assert!(ctxs[2].take_granted());

    // s1 takes red locally.
    nodes[0].request(&mut ctxs[0], ResourceSet::singleton(RED));
    assert!(ctxs[0].take_granted());

    // s2 requests both: one aggregated Requests message to node 0 with two
    // ReqCnt entries.
    nodes[1].request(&mut ctxs[1], [RED, BLUE].into_iter().collect());
    let out = ctxs[1].take_outbox();
    assert_eq!(out.len(), 1);
    let (to, m) = out.into_iter().next().unwrap();
    assert_eq!(to, 0);
    match &m {
        LassMsg::Requests { reqs, .. } => {
            assert_eq!(reqs.len(), 2);
            assert!(reqs.iter().all(|r| r.kind() == "ReqCnt"));
        }
        other => panic!("expected ReqCnt batch, got {other:?}"),
    }
    // Node 0 answers the red counter and forwards the blue ReqCnt to s3.
    nodes[0].on_message(&mut ctxs[0], 1, m);
    let out = ctxs[0].take_outbox();
    assert_eq!(out.len(), 2, "one Counter reply + one forward");
    let kinds: Vec<(usize, &'static str)> = out
        .iter()
        .map(|(to, m)| {
            use mra::protocol::WireMsg;
            (*to, m.kind())
        })
        .collect();
    assert!(kinds.contains(&(1, "Counter")));
    assert!(kinds.contains(&(2, "ReqCnt")));
}
