//! Scripted tests of the loan mechanism (§3.4, §4.5): the dynamic
//! scheduling feature that distinguishes "With loan" from "Without loan".

use mra::core::{Lass, LassConfig};
use mra::protocol::testkit::VirtualNet;
use mra::protocol::ProcState;
use rand::rngs::StdRng;
use rand::SeedableRng;

/// Build a 3-node, 3-resource system where node 1 waits for exactly one
/// missing resource held by node 0 — the textbook loan setup.
///
/// Node 0 ends in CS holding {0}, also *owning* token 2 without using it;
/// node 1 in `waitCS` owns {1} and misses {2}.
fn loan_setup() -> (VirtualNet<Lass>, StdRng) {
    let cfg = LassConfig::with_loan(3, 3);
    let mut net = VirtualNet::new(cfg.build_nodes(), 3);
    let mut rng = StdRng::seed_from_u64(9);

    // Node 0 (elected) requests {0, 2}: purely local, straight to CS.
    net.request(0, [0, 2].into_iter().collect());
    assert!(net.in_cs(0));

    // Node 1 requests {1, 2}: token 1 comes over freely (node 0 does not
    // require it... it owns it but r=1 is unrequired so the ReqCnt pulls
    // the token), token 2 is in use.
    net.request(1, [1, 2].into_iter().collect());
    net.run_until_quiet(&mut rng, 200);
    assert_eq!(net.state(1), ProcState::WaitCS);
    assert!(net.node(1).owned().contains(1));
    assert!(!net.node(1).owned().contains(2));
    (net, rng)
}

#[test]
fn loan_requested_when_one_resource_missing() {
    let (net, _) = loan_setup();
    // Node 1 misses exactly one resource = the paper's threshold: a
    // ReqLoan must have been issued.
    assert_eq!(net.node(1).stats.loans_requested, 1);
    // Node 0 is in CS: it cannot lend; the loan waits in wLoan of token 2.
    assert_eq!(net.node(0).token(2).w_loan.len(), 1);
}

#[test]
fn loan_denied_while_lender_in_cs_served_at_release() {
    let (mut net, mut rng) = loan_setup();
    // When node 0 releases, the pending loan (or the queued ReqRes) hands
    // token 2 to node 1.
    net.release(0);
    net.run_until_quiet(&mut rng, 200);
    assert!(net.in_cs(1), "node 1 completed via release path");
    net.release(1);
    net.run_until_quiet(&mut rng, 100);
}

#[test]
fn loan_granted_by_idle_owner() {
    // Variant: the lender is *idle* but owns the missing token — the loan
    // (or direct grant) must be served without any release happening.
    let cfg = LassConfig::with_loan(3, 3);
    let mut net = VirtualNet::new(cfg.build_nodes(), 3);
    let mut rng = StdRng::seed_from_u64(11);

    // Node 0 cycles through a request so it ends idle but still owning
    // all tokens.
    net.request(0, [0, 1, 2].into_iter().collect());
    assert!(net.in_cs(0));
    net.release(0);
    net.run_until_quiet(&mut rng, 50);
    assert_eq!(net.state(0), ProcState::Idle);

    // Node 1 requests two resources; everything must flow from the idle
    // owner with no extra CS activity.
    net.request(1, [0, 2].into_iter().collect());
    net.run_until_quiet(&mut rng, 200);
    assert!(net.in_cs(1));
}

#[test]
fn without_loan_config_never_requests_loans() {
    let cfg = LassConfig::without_loan(4, 6);
    let mut net = VirtualNet::new(cfg.build_nodes(), 6);
    let mut rng = StdRng::seed_from_u64(13);
    let ex = mra::protocol::testkit::ExerciseCfg {
        rounds_per_node: 6,
        max_req_size: 4,
        m: 6,
        hold_steps: 3,
        active_nodes: None,
        step_cap: 2_000_000,
    };
    mra::protocol::testkit::run_random_workload(&mut net, &ex, &mut rng);
    for i in 0..4 {
        assert_eq!(net.node(i).stats.loans_requested, 0);
        assert_eq!(net.node(i).stats.loans_granted, 0);
    }
}

#[test]
fn loans_do_happen_under_random_load() {
    // With threshold 2 and tight resources, loans must actually fire across
    // seeds — the mechanism is not dead code.
    let mut total_granted = 0;
    for seed in 0..12 {
        let mut cfg = LassConfig::with_loan(4, 5);
        cfg.loan = Some(2);
        let mut net = VirtualNet::new(cfg.build_nodes(), 5);
        let mut rng = StdRng::seed_from_u64(1000 + seed);
        let ex = mra::protocol::testkit::ExerciseCfg {
            rounds_per_node: 8,
            max_req_size: 4,
            m: 5,
            hold_steps: 4,
            active_nodes: None,
            step_cap: 3_000_000,
        };
        mra::protocol::testkit::run_random_workload(&mut net, &ex, &mut rng);
        total_granted += (0..4).map(|i| net.node(i).stats.loans_granted).sum::<u64>();
    }
    assert!(
        total_granted > 0,
        "no loan was ever granted across 12 random runs"
    );
}

#[test]
fn failed_loans_return_tokens_and_preserve_liveness() {
    // Scan seeds and count failed loans; whenever one occurs, the run
    // still completes (liveness) and no borrowed token is stranded.
    // Failed loans are rare, so keep scanning until one is seen (runs are
    // fast); the cap only bounds a pathological regression where the path
    // went dead.
    let mut total_failed = 0;
    for seed in 0..200 {
        let mut cfg = LassConfig::with_loan(5, 6);
        cfg.loan = Some(3);
        let mut net = VirtualNet::new(cfg.build_nodes(), 6);
        let mut rng = StdRng::seed_from_u64(5000 + seed);
        let ex = mra::protocol::testkit::ExerciseCfg {
            rounds_per_node: 6,
            max_req_size: 5,
            m: 6,
            hold_steps: 3,
            active_nodes: None,
            step_cap: 3_000_000,
        };
        mra::protocol::testkit::run_random_workload(&mut net, &ex, &mut rng);
        for i in 0..5 {
            total_failed += net.node(i).stats.loans_failed;
            assert!(net.node(i).lent().is_empty(), "stranded loan at node {i}");
            for r in net.node(i).owned().iter() {
                assert_eq!(net.node(i).token(r).lender, None);
            }
        }
        if total_failed > 0 {
            break;
        }
    }
    assert!(total_failed > 0, "failed-loan path never exercised");
}
