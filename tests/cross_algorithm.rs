//! Cross-algorithm integration tests: every algorithm runs the same
//! simulated scenario; the qualitative relations of the paper's evaluation
//! must hold (with fixed seeds and generous margins — these are simulation
//! facts, not statistical flakes).

use mra::workloads::{run, Algorithm, Load, Scenario};

fn scenario(load: Load, phi: usize, seed: u64) -> Scenario {
    // Paper shape at reduced duration: 32 nodes, 80 resources.
    Scenario::builder()
        .load(load)
        .max_request_size(phi)
        .seed(seed)
        .measure_secs(3.0)
        .build()
}

#[test]
fn all_algorithms_complete_work_at_paper_scale() {
    let sc = scenario(Load::Medium, 4, 5);
    for algo in [
        Algorithm::Incremental,
        Algorithm::BouabdallahLaforest,
        Algorithm::LassNoLoan,
        Algorithm::LassLoan,
        Algorithm::Central,
        Algorithm::Maddi,
    ] {
        let res = run(algo, &sc);
        assert!(
            res.cs_completed > 100,
            "{}: only {} CS completed",
            algo.label(),
            res.cs_completed
        );
    }
}

#[test]
fn lass_beats_bouabdallah_laforest_on_waits_at_small_phi() {
    // §5.3: at φ = 4 the paper's algorithm waits far less than BL.
    for load in [Load::Medium, Load::High] {
        let sc = scenario(load, 4, 7);
        let bl = run(Algorithm::BouabdallahLaforest, &sc).wait_stats().mean_ms;
        let lass = run(Algorithm::LassLoan, &sc).wait_stats().mean_ms;
        assert!(
            lass < bl,
            "{} load: LASS wait {lass:.1}ms not below BL {bl:.1}ms",
            load.label()
        );
    }
}

#[test]
fn lass_use_rate_at_least_bouabdallah_laforest() {
    // §5.2: "independently of the request size, [LASS presents] a higher
    // resource use rate" — allow 5% simulation noise.
    for phi in [4usize, 8, 16] {
        let sc = scenario(Load::High, phi, 11);
        let bl = run(Algorithm::BouabdallahLaforest, &sc).use_rate();
        let lass = run(Algorithm::LassLoan, &sc).use_rate();
        assert!(
            lass > 0.95 * bl,
            "phi={phi}: LASS {:.3} well below BL {:.3}",
            lass,
            bl
        );
    }
}

#[test]
fn incremental_suffers_domino_effect_at_large_phi() {
    // Fig. 5: the incremental curve flattens while everyone else climbs.
    let sc = scenario(Load::High, 80, 13);
    let inc = run(Algorithm::Incremental, &sc).use_rate();
    let lass = run(Algorithm::LassLoan, &sc).use_rate();
    let bl = run(Algorithm::BouabdallahLaforest, &sc).use_rate();
    assert!(
        lass > 2.0 * inc,
        "LASS {lass:.3} should dwarf incremental {inc:.3} at phi=80"
    );
    assert!(
        bl > 2.0 * inc,
        "even BL {bl:.3} should dwarf incremental {inc:.3} at phi=80"
    );
}

#[test]
fn loan_improves_mid_size_high_load() {
    // §5.2: loan improves the use rate for medium request sizes under high
    // load (paper: up to +15%); it must at least not hurt.
    let sc = scenario(Load::High, 4, 17);
    let without = run(Algorithm::LassNoLoan, &sc);
    let with = run(Algorithm::LassLoan, &sc);
    assert!(
        with.use_rate() > 1.02 * without.use_rate(),
        "loan: {:.3} vs {:.3} (expected a visible gain)",
        with.use_rate(),
        without.use_rate()
    );
    assert!(
        with.wait_stats().mean_ms < without.wait_stats().mean_ms,
        "loan should reduce waiting time at high load"
    );
}

#[test]
fn shared_memory_scheduler_tops_or_ties_everyone_at_large_phi() {
    // The zero-cost scheduler upper-bounds the distributed algorithms when
    // conflicts dominate.
    let sc = scenario(Load::High, 80, 19);
    let shm = run(Algorithm::Central, &sc).use_rate();
    for algo in [Algorithm::BouabdallahLaforest, Algorithm::LassLoan] {
        let r = run(algo, &sc).use_rate();
        assert!(
            shm > 0.97 * r,
            "{}: {r:.3} above shared-memory {shm:.3}",
            algo.label()
        );
    }
}

#[test]
fn bl_waits_flat_across_sizes_lass_varies_more() {
    // Fig. 7: BL's waiting time barely varies with the request size.
    let sc = scenario(Load::High, 80, 23);
    let bl = run(Algorithm::BouabdallahLaforest, &sc);
    let buckets = bl.wait_buckets(80, 6);
    let means: Vec<f64> = buckets
        .iter()
        .filter(|(_, _, w)| w.count >= 5)
        .map(|(_, _, w)| w.mean_ms)
        .collect();
    assert!(means.len() >= 4, "need enough populated buckets");
    let lo = means.iter().cloned().fold(f64::INFINITY, f64::min);
    let hi = means.iter().cloned().fold(0.0, f64::max);
    assert!(
        hi / lo < 1.5,
        "BL wait should be flat across sizes: {lo:.0}..{hi:.0} ms"
    );
}

#[test]
fn maddi_pays_broadcast_message_complexity() {
    // Related-work claim: broadcast algorithms are "not scalable in terms
    // of message complexity" — Maddi must send far more messages per CS
    // than LASS at small φ.
    let sc = scenario(Load::Medium, 4, 29);
    let maddi = run(Algorithm::Maddi, &sc);
    let lass = run(Algorithm::LassLoan, &sc);
    assert!(
        maddi.msgs_per_cs() > 1.5 * lass.msgs_per_cs(),
        "Maddi {:.1} msgs/cs vs LASS {:.1}",
        maddi.msgs_per_cs(),
        lass.msgs_per_cs()
    );
}

#[test]
fn censoring_stays_marginal_in_reported_windows() {
    // The metrics must not silently hide unserved requests.
    for algo in [Algorithm::BouabdallahLaforest, Algorithm::LassLoan] {
        let sc = scenario(Load::High, 16, 31);
        let res = run(algo, &sc);
        let total = res.records.len() as u64 + res.censored;
        assert!(
            res.censored * 20 <= total,
            "{}: {} of {} requests censored",
            algo.label(),
            res.censored,
            total
        );
    }
}
