//! The "in shared memory" scheduler (paper §5.2, fifth curve of Fig. 5).
//!
//! The paper compares its distributed algorithms against "a distributed
//! scheduling algorithm executed on a single shared-memory machine with a
//! global waiting queue and no network communication", i.e. a scheduler
//! whose synchronization cost is zero.  We reproduce it as a
//! coordinator-based [`Allocator`] run over a zero-latency network: the
//! client/coordinator messages then cost nothing, and the measured curves
//! reflect pure scheduling capacity.
//!
//! [`CentralSched`] is the pure scheduling core (directly unit- and
//! property-testable).  Two grant policies are provided:
//!
//! * [`GrantPolicy::Conservative`] — a request may not overtake an *earlier,
//!   conflicting* pending request (the resources of blocked requests are
//!   reserved while scanning).  Starvation-free; this is the paper's
//!   global-waiting-queue scheduler and the default.
//! * [`GrantPolicy::Greedy`] — pure first-fit over the arrival queue; higher
//!   instantaneous use rate, but large requests can starve.  Used by the
//!   ablation benchmarks.

use mra_protocol::{Allocator, Ctx, ProcState, WireMsg};
use mra_types::{NodeId, ResourceSet};
use std::collections::VecDeque;
use std::fmt;

/// How the central scheduler picks grantable requests from its queue.
#[derive(Clone, Copy, PartialEq, Eq, Debug, Default)]
pub enum GrantPolicy {
    /// No overtaking of earlier conflicting requests (fair, starvation-free).
    #[default]
    Conservative,
    /// First-fit: grant anything that fits right now.
    Greedy,
}

/// Pure global scheduler: one arrival-ordered waiting queue, a busy set,
/// and a grant policy.
#[derive(Clone, Debug)]
pub struct CentralSched {
    in_use: ResourceSet,
    holders: Vec<(NodeId, ResourceSet)>,
    pending: VecDeque<(NodeId, ResourceSet)>,
    policy: GrantPolicy,
}

impl CentralSched {
    /// Empty scheduler with the given policy.
    pub fn new(policy: GrantPolicy) -> Self {
        CentralSched {
            in_use: ResourceSet::new(),
            holders: Vec::new(),
            pending: VecDeque::new(),
            policy,
        }
    }

    /// Register a request; returns the nodes granted as a consequence
    /// (possibly including `node` itself).
    ///
    /// A request from a node still marked *holding* is an implicit release
    /// of that hold.  Links are FIFO per ordered pair, so the node's
    /// `Release` can never overtake its next `Request`: seeing the request
    /// first proves the release was lost on the wire (the fault-injection
    /// regime) — and by hypothesis 4 (one outstanding request per process)
    /// the node is provably out of its previous critical section.
    pub fn request(&mut self, node: NodeId, set: ResourceSet) -> Vec<NodeId> {
        assert!(!set.is_empty(), "empty request");
        debug_assert!(
            !self.pending.iter().any(|(s, _)| *s == node),
            "node {node} already queued"
        );
        if let Some(idx) = self.holders.iter().position(|(s, _)| *s == node) {
            let (_, held) = self.holders.swap_remove(idx);
            self.in_use.difference_with(&held);
        }
        self.pending.push_back((node, set));
        self.try_grant()
    }

    /// Release `node`'s resources; returns newly granted nodes.
    pub fn release(&mut self, node: NodeId) -> Vec<NodeId> {
        let idx = self
            .holders
            .iter()
            .position(|(s, _)| *s == node)
            .unwrap_or_else(|| panic!("node {node} released without holding"));
        let (_, set) = self.holders.swap_remove(idx);
        self.in_use.difference_with(&set);
        self.try_grant()
    }

    /// Scan the queue in arrival order and grant whatever the policy allows.
    fn try_grant(&mut self) -> Vec<NodeId> {
        let mut granted: Vec<NodeId> = Vec::new();
        let mut claimed = self.in_use.clone();
        let mut remaining: VecDeque<(NodeId, ResourceSet)> = VecDeque::new();
        while let Some((node, set)) = self.pending.pop_front() {
            let blocker = match self.policy {
                GrantPolicy::Conservative => claimed.clone(),
                GrantPolicy::Greedy => self.in_use.clone(),
            };
            if set.is_disjoint(&blocker) {
                self.in_use.union_with(&set);
                claimed.union_with(&set);
                self.holders.push((node, set));
                granted.push(node);
            } else {
                claimed.union_with(&set); // conservative: reserve for it
                remaining.push_back((node, set));
            }
        }
        self.pending = remaining;
        granted
    }

    /// Resources currently allocated.
    pub fn in_use(&self) -> ResourceSet {
        self.in_use.clone()
    }

    /// Number of waiting requests.
    pub fn queue_len(&self) -> usize {
        self.pending.len()
    }

    /// Number of concurrent holders.
    pub fn holder_count(&self) -> usize {
        self.holders.len()
    }
}

/// Wire messages between clients and the coordinator.
#[derive(Clone)]
pub enum CentralMsg {
    /// Client → coordinator: request this resource set.
    Request {
        /// The requested resources.
        set: ResourceSet,
    },
    /// Coordinator → client: all resources granted, enter the CS.
    Grant,
    /// Client → coordinator: critical section finished.
    Release,
}

impl fmt::Debug for CentralMsg {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            CentralMsg::Request { set } => write!(f, "C::Request({:?})", set.to_vec()),
            CentralMsg::Grant => write!(f, "C::Grant"),
            CentralMsg::Release => write!(f, "C::Release"),
        }
    }
}

impl WireMsg for CentralMsg {
    fn kind(&self) -> &'static str {
        match self {
            CentralMsg::Request { .. } => "C::Request",
            CentralMsg::Grant => "C::Grant",
            CentralMsg::Release => "C::Release",
        }
    }
}

/// Coordinator-based allocator.  In a system of `n` nodes, node `n - 1` is
/// the coordinator (it never requests); nodes `0..n-1` are clients.
#[derive(Clone)]
pub struct Central {
    coordinator: NodeId,
    state: ProcState,
    /// Scheduler state (used on the coordinator only).
    sched: Option<CentralSched>,
}

impl Central {
    /// Create node `me` of `n` total nodes (coordinator = `n - 1`).
    pub fn new(me: NodeId, n: usize, policy: GrantPolicy) -> Self {
        let coordinator = n - 1;
        Central {
            coordinator,
            state: ProcState::Idle,
            sched: (me == coordinator).then(|| CentralSched::new(policy)),
        }
    }

    /// Build a system with `clients` client nodes plus one coordinator
    /// (total `clients + 1` nodes; drive only the first `clients`).
    pub fn build_nodes(clients: usize, policy: GrantPolicy) -> Vec<Central> {
        (0..clients + 1)
            .map(|i| Central::new(i, clients + 1, policy))
            .collect()
    }

    fn dispatch_grants(&mut self, ctx: &mut Ctx<CentralMsg>, granted: Vec<NodeId>) {
        for g in granted {
            ctx.send(g, CentralMsg::Grant);
        }
    }
}

impl Allocator for Central {
    type Msg = CentralMsg;

    fn on_init(&mut self, _ctx: &mut Ctx<CentralMsg>) {}

    fn on_message(&mut self, ctx: &mut Ctx<CentralMsg>, from: NodeId, msg: CentralMsg) {
        match msg {
            CentralMsg::Request { set } => {
                let sched = self.sched.as_mut().expect("request sent to non-coordinator");
                let granted = sched.request(from, set);
                self.dispatch_grants(ctx, granted);
            }
            CentralMsg::Release => {
                let sched = self.sched.as_mut().expect("release sent to non-coordinator");
                let granted = sched.release(from);
                self.dispatch_grants(ctx, granted);
            }
            CentralMsg::Grant => {
                debug_assert_eq!(self.state, ProcState::WaitCS);
                self.state = ProcState::InCS;
                ctx.grant();
            }
        }
    }

    fn request(&mut self, ctx: &mut Ctx<CentralMsg>, resources: ResourceSet) {
        assert_eq!(self.state, ProcState::Idle, "request while busy");
        assert!(self.sched.is_none(), "coordinator cannot request");
        self.state = ProcState::WaitCS;
        ctx.send(self.coordinator, CentralMsg::Request { set: resources });
    }

    fn release(&mut self, ctx: &mut Ctx<CentralMsg>) {
        assert_eq!(self.state, ProcState::InCS, "release outside CS");
        self.state = ProcState::Idle;
        ctx.send(self.coordinator, CentralMsg::Release);
    }

    fn state(&self) -> ProcState {
        self.state
    }

    fn name(&self) -> &'static str {
        match self.sched.as_ref().map(|s| s.policy) {
            Some(GrantPolicy::Greedy) => "central-greedy",
            _ => "central",
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use mra_protocol::testkit::{run_random_workload, ExerciseCfg, VirtualNet};
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn set(rs: &[usize]) -> ResourceSet {
        rs.iter().copied().collect()
    }

    #[test]
    fn grants_disjoint_requests_immediately() {
        let mut s = CentralSched::new(GrantPolicy::Conservative);
        assert_eq!(s.request(0, set(&[0, 1])), vec![0]);
        assert_eq!(s.request(1, set(&[2, 3])), vec![1]);
        assert_eq!(s.holder_count(), 2);
        assert_eq!(s.in_use(), set(&[0, 1, 2, 3]));
    }

    #[test]
    fn conflicting_request_waits_until_release() {
        let mut s = CentralSched::new(GrantPolicy::Conservative);
        assert_eq!(s.request(0, set(&[0])), vec![0]);
        assert_eq!(s.request(1, set(&[0, 1])), Vec::<NodeId>::new());
        assert_eq!(s.queue_len(), 1);
        assert_eq!(s.release(0), vec![1]);
        assert_eq!(s.in_use(), set(&[0, 1]));
    }

    #[test]
    fn conservative_blocks_overtaking_of_conflicting_earlier_request() {
        let mut s = CentralSched::new(GrantPolicy::Conservative);
        s.request(0, set(&[0]));
        // 1 waits on 0; 2 conflicts with 1 (resource 1) but not with 0.
        assert!(s.request(1, set(&[0, 1])).is_empty());
        assert!(s.request(2, set(&[1])).is_empty(), "must not overtake node 1");
        // 3 is disjoint from everything pending: sails through.
        assert_eq!(s.request(3, set(&[2])), vec![3]);
        let granted = s.release(0);
        assert_eq!(granted, vec![1]);
    }

    #[test]
    fn greedy_overtakes() {
        let mut s = CentralSched::new(GrantPolicy::Greedy);
        s.request(0, set(&[0]));
        assert!(s.request(1, set(&[0, 1])).is_empty());
        // Greedy: node 2 takes resource 1 although node 1 queued first.
        assert_eq!(s.request(2, set(&[1])), vec![2]);
    }

    #[test]
    fn no_double_allocation_ever() {
        let mut s = CentralSched::new(GrantPolicy::Conservative);
        s.request(0, set(&[0, 1]));
        s.request(1, set(&[1, 2]));
        s.request(2, set(&[2, 3]));
        // Only node 0 runs; its resources are allocated once.
        assert_eq!(s.holder_count(), 1);
        s.release(0);
        assert_eq!(s.holder_count(), 1); // node 1 got in
        assert_eq!(s.in_use(), set(&[1, 2]));
    }

    #[test]
    fn allocator_roundtrip_over_virtualnet() {
        for seed in 0..8 {
            let mut net = VirtualNet::new(
                Central::build_nodes(4, GrantPolicy::Conservative),
                6,
            );
            let mut rng = StdRng::seed_from_u64(seed);
            let cfg = ExerciseCfg {
                rounds_per_node: 6,
                max_req_size: 3,
                m: 6,
                hold_steps: 3,
                active_nodes: Some(4), // coordinator stays passive
                step_cap: 2_000_000,
            };
            let rep = run_random_workload(&mut net, &cfg, &mut rng);
            assert_eq!(rep.cs_completed, 24, "seed {seed}");
        }
    }

    #[test]
    fn greedy_allocator_roundtrip() {
        let mut net = VirtualNet::new(Central::build_nodes(3, GrantPolicy::Greedy), 4);
        let mut rng = StdRng::seed_from_u64(99);
        let cfg = ExerciseCfg {
            rounds_per_node: 5,
            max_req_size: 2,
            m: 4,
            hold_steps: 2,
            active_nodes: Some(3),
            step_cap: 1_000_000,
        };
        let rep = run_random_workload(&mut net, &cfg, &mut rng);
        assert_eq!(rep.cs_completed, 15);
    }
}
