//! Binary wire codecs for the baseline-algorithm messages.
//!
//! ```text
//! CtEntry    := 0 (Token) | 1 last:u32 seq:u64 (Last)
//! ControlTok := entries:vec<CtEntry>
//! BlMsg      := 0 NtMsg<ControlToken> | 1 r:u32 from:u32 pred:u64 | 2 r:u32
//! IncMsg     := r:u32 NtMsg<()>
//! MadToken   := served:vec<u64>
//! MadMsg     := 0 origin:u32 ts:u64 set | 1 r:u32 MadToken
//! CentralMsg := 0 set (Request) | 1 (Grant) | 2 (Release)
//! ```

use crate::bouabdallah_laforest::{BlMsg, ControlToken, CtEntry};
use crate::central::CentralMsg;
use crate::incremental::IncMsg;
use crate::maddi::{MadMsg, MadToken};
use mra_protocol::wire::{put_u64, put_usize, DecodeError, WireReader};
use mra_protocol::WireCodec;

impl WireCodec for CtEntry {
    fn encode(&self, out: &mut Vec<u8>) {
        match self {
            CtEntry::Token => out.push(0),
            CtEntry::Last(s, seq) => {
                out.push(1);
                put_usize(out, *s);
                put_u64(out, *seq);
            }
        }
    }

    fn decode(r: &mut WireReader<'_>) -> Result<Self, DecodeError> {
        match r.get_u8("CtEntry tag")? {
            0 => Ok(CtEntry::Token),
            1 => Ok(CtEntry::Last(
                r.get_usize("CtEntry.last")?,
                r.get_u64("CtEntry.seq")?,
            )),
            tag => Err(DecodeError::BadTag { what: "CtEntry", tag }),
        }
    }
}

impl WireCodec for ControlToken {
    fn encode(&self, out: &mut Vec<u8>) {
        self.entries.encode(out);
    }

    fn decode(r: &mut WireReader<'_>) -> Result<Self, DecodeError> {
        Ok(ControlToken { entries: WireCodec::decode(r)? })
    }
}

impl WireCodec for BlMsg {
    fn encode(&self, out: &mut Vec<u8>) {
        match self {
            BlMsg::Nt(m) => {
                out.push(0);
                m.encode(out);
            }
            BlMsg::Inquire { r, from, pred } => {
                out.push(1);
                put_usize(out, *r);
                put_usize(out, *from);
                put_u64(out, *pred);
            }
            BlMsg::ResTok { r } => {
                out.push(2);
                put_usize(out, *r);
            }
        }
    }

    fn decode(r: &mut WireReader<'_>) -> Result<Self, DecodeError> {
        match r.get_u8("BlMsg tag")? {
            0 => Ok(BlMsg::Nt(WireCodec::decode(r)?)),
            1 => Ok(BlMsg::Inquire {
                r: r.get_usize("BlMsg::Inquire.r")?,
                from: r.get_usize("BlMsg::Inquire.from")?,
                pred: r.get_u64("BlMsg::Inquire.pred")?,
            }),
            2 => Ok(BlMsg::ResTok { r: r.get_usize("BlMsg::ResTok.r")? }),
            tag => Err(DecodeError::BadTag { what: "BlMsg", tag }),
        }
    }
}

impl WireCodec for IncMsg {
    fn encode(&self, out: &mut Vec<u8>) {
        put_usize(out, self.r);
        self.inner.encode(out);
    }

    fn decode(r: &mut WireReader<'_>) -> Result<Self, DecodeError> {
        Ok(IncMsg {
            r: r.get_usize("IncMsg.r")?,
            inner: WireCodec::decode(r)?,
        })
    }
}

impl WireCodec for MadToken {
    fn encode(&self, out: &mut Vec<u8>) {
        self.served.encode(out);
    }

    fn decode(r: &mut WireReader<'_>) -> Result<Self, DecodeError> {
        Ok(MadToken { served: WireCodec::decode(r)? })
    }
}

impl WireCodec for MadMsg {
    fn encode(&self, out: &mut Vec<u8>) {
        match self {
            MadMsg::Request { origin, ts, set } => {
                out.push(0);
                put_usize(out, *origin);
                put_u64(out, *ts);
                set.encode(out);
            }
            MadMsg::Token { r, tok } => {
                out.push(1);
                put_usize(out, *r);
                tok.encode(out);
            }
        }
    }

    fn decode(r: &mut WireReader<'_>) -> Result<Self, DecodeError> {
        match r.get_u8("MadMsg tag")? {
            0 => Ok(MadMsg::Request {
                origin: r.get_usize("MadMsg.origin")?,
                ts: r.get_u64("MadMsg.ts")?,
                set: WireCodec::decode(r)?,
            }),
            1 => Ok(MadMsg::Token {
                r: r.get_usize("MadMsg.r")?,
                tok: MadToken::decode(r)?,
            }),
            tag => Err(DecodeError::BadTag { what: "MadMsg", tag }),
        }
    }
}

impl WireCodec for CentralMsg {
    fn encode(&self, out: &mut Vec<u8>) {
        match self {
            CentralMsg::Request { set } => {
                out.push(0);
                set.encode(out);
            }
            CentralMsg::Grant => out.push(1),
            CentralMsg::Release => out.push(2),
        }
    }

    fn decode(r: &mut WireReader<'_>) -> Result<Self, DecodeError> {
        match r.get_u8("CentralMsg tag")? {
            0 => Ok(CentralMsg::Request { set: WireCodec::decode(r)? }),
            1 => Ok(CentralMsg::Grant),
            2 => Ok(CentralMsg::Release),
            tag => Err(DecodeError::BadTag { what: "CentralMsg", tag }),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use mra_mutex::NtMsg;
    use mra_types::ResourceSet;
    use std::fmt;

    fn roundtrip_bytes<T: WireCodec + fmt::Debug>(v: &T) {
        let bytes = v.to_bytes();
        let back = T::from_bytes(&bytes).unwrap();
        assert_eq!(back.to_bytes(), bytes);
        assert_eq!(format!("{back:?}"), format!("{v:?}"));
    }

    #[test]
    fn bl_roundtrips() {
        let ct = ControlToken {
            entries: vec![CtEntry::Token, CtEntry::Last(3, 7), CtEntry::Token],
        };
        roundtrip_bytes(&BlMsg::Nt(NtMsg::Token(ct)));
        roundtrip_bytes(&BlMsg::Nt(NtMsg::Request { origin: 7 }));
        roundtrip_bytes(&BlMsg::Inquire { r: 4, from: 1, pred: 9 });
        roundtrip_bytes(&BlMsg::ResTok { r: 255 });
    }

    #[test]
    fn inc_roundtrips() {
        roundtrip_bytes(&IncMsg { r: 12, inner: NtMsg::Request { origin: 0 } });
        roundtrip_bytes(&IncMsg { r: 0, inner: NtMsg::Token(()) });
    }

    #[test]
    fn maddi_roundtrips() {
        roundtrip_bytes(&MadMsg::Request {
            origin: 2,
            ts: u64::MAX,
            set: ResourceSet::full(256),
        });
        roundtrip_bytes(&MadMsg::Token {
            r: 1,
            tok: MadToken { served: vec![0, 9, u64::MAX] },
        });
    }

    #[test]
    fn central_roundtrips() {
        roundtrip_bytes(&CentralMsg::Request { set: ResourceSet::singleton(0) });
        roundtrip_bytes(&CentralMsg::Grant);
        roundtrip_bytes(&CentralMsg::Release);
        assert!(CentralMsg::from_bytes(&[7]).is_err());
    }
}
