//! The Bouabdallah–Laforest algorithm (paper §2.2; citation \[5\]).
//!
//! Reference: A. Bouabdallah, C. Laforest, *A distributed token-based
//! algorithm for the dynamic resource allocation problem*, Operating
//! Systems Review 34(3), 2000.
//!
//! A unique **control token** holds, for every resource, either the
//! resource token itself or the identity of its *last requester*.  Before
//! requesting anything, a process must acquire the control token (here
//! circulated by a Naimi-Trehel instance — the "global lock" the paper sets
//! out to eliminate).  While holding it, the process atomically:
//!
//! * grabs the resource tokens present in the control token, and
//! * sends an `INQUIRE` to the last requester of each absent one, recording
//!   itself as the new last requester,
//!
//! then passes the control token on.  Because registration is serialized by
//! the control token, the per-resource waiting chains are prefixes of one
//! global order and can never form a cycle: deadlock-free.
//!
//! The cost is exactly what the paper attacks: two *non-conflicting*
//! processes still synchronize on the control token, and the schedule is
//! frozen at control-token acquisition time (no overtaking, no loans).

use mra_mutex::{NaimiTrehel, NtMsg};
use mra_protocol::{Allocator, Ctx, ProcState, WireMsg};
use mra_types::{NodeId, ResourceId, ResourceSet};
use std::fmt;

/// One entry of the control token.
///
/// A `Last` entry carries the **registration epoch**: the sequence number
/// of the registration that wrote it (strictly increasing per resource,
/// serialized by the control token).  Every `INQUIRE` cites the epoch it
/// chases, and a holder only surrenders a kept token to the inquirer of
/// the epoch the token was held under.  Without the epoch, a node that
/// kept a token, re-registered, and then received a *later* registrant's
/// inquire before the overdue inquire of an *earlier* registrant would
/// hand the token out of chain order — corrupting the per-resource waiting
/// chain into a cycle (a real deadlock, first reproduced by the reliable
/// session layer's maximally-late retransmission of a dropped inquire).
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum CtEntry {
    /// The resource token itself is stored in the control token.
    Token,
    /// The resource token is (or will be) held by this last requester,
    /// registered at this epoch.
    Last(NodeId, u64),
}

/// The control token: one entry per resource.
#[derive(Clone, Debug)]
pub struct ControlToken {
    /// `entries[r]` describes where resource `r`'s token is.
    pub entries: Vec<CtEntry>,
}

impl ControlToken {
    /// Initial control token: every resource token inside.
    pub fn new(m: usize) -> Self {
        ControlToken {
            entries: vec![CtEntry::Token; m],
        }
    }
}

/// Wire messages of Bouabdallah–Laforest.
#[derive(Clone)]
pub enum BlMsg {
    /// Naimi-Trehel traffic circulating the control token.
    Nt(NtMsg<ControlToken>),
    /// "Send me resource `r`'s token once you are done with it."
    Inquire {
        /// The inquired resource.
        r: ResourceId,
        /// The requester (new last requester).
        from: NodeId,
        /// The registration epoch this inquire chases (the `CtEntry::Last`
        /// seq read at registration time): the receiver hands its kept
        /// token over only if it holds it *under this epoch*.
        pred: u64,
    },
    /// The resource token of `r`, travelling along the inquire chain.
    ResTok {
        /// The resource whose token this is.
        r: ResourceId,
    },
}

impl fmt::Debug for BlMsg {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            BlMsg::Nt(m) => write!(f, "BL::{m:?}"),
            BlMsg::Inquire { r, from, pred } => {
                write!(f, "BL::Inquire(r{r} for {from} chasing #{pred})")
            }
            BlMsg::ResTok { r } => write!(f, "BL::ResTok(r{r})"),
        }
    }
}

impl WireMsg for BlMsg {
    fn kind(&self) -> &'static str {
        match self {
            BlMsg::Nt(NtMsg::Request { .. }) => "BL::CtRequest",
            BlMsg::Nt(NtMsg::Token(_)) => "BL::CtToken",
            BlMsg::Inquire { .. } => "BL::Inquire",
            BlMsg::ResTok { .. } => "BL::ResTok",
        }
    }

    fn weight(&self) -> usize {
        match self {
            BlMsg::Nt(NtMsg::Token(ct)) => 1 + ct.entries.len(),
            _ => 2,
        }
    }
}

/// One node of the Bouabdallah–Laforest algorithm.
#[derive(Clone)]
pub struct BouabdallahLaforest {
    me: NodeId,
    m: usize,
    state: ProcState,
    /// Naimi-Trehel instance circulating the control token.
    nt: NaimiTrehel<ControlToken>,
    /// Current request.
    required: ResourceSet,
    /// Resource tokens obtained for the current request.
    acquired: ResourceSet,
    /// Resource tokens physically held (kept after release until inquired).
    held: ResourceSet,
    /// Resources this node is *entitled* to use next, per the control-token
    /// order.  Holding a token without the claim means our own registration
    /// is queued behind another requester: an inquire must be served
    /// immediately even though we "need" the resource.
    claim: ResourceSet,
    /// Successor per resource (at most one thanks to CT serialization).
    next_r: Vec<Option<NodeId>>,
    /// Epoch of our latest registration per resource (the seq we wrote
    /// into the control token).
    reg_seq: Vec<u64>,
    /// Epoch under which each *physically held* token was obtained.  When
    /// we keep a token past its epoch and re-register, the held token is
    /// owed to the overdue inquire chasing `token_epoch[r]` — inquires
    /// chasing our newer registration must queue instead (see
    /// [`CtEntry`]).
    token_epoch: Vec<u64>,
}

impl BouabdallahLaforest {
    /// Create node `me`; `elected` starts with the control token (which
    /// contains every resource token).
    pub fn new(me: NodeId, _n: usize, m: usize, elected: NodeId) -> Self {
        let mut nt = NaimiTrehel::new(me, elected);
        if me == elected {
            nt.give_initial_token(ControlToken::new(m));
        }
        BouabdallahLaforest {
            me,
            m,
            state: ProcState::Idle,
            nt,
            required: ResourceSet::new(),
            acquired: ResourceSet::new(),
            held: ResourceSet::new(),
            claim: ResourceSet::new(),
            next_r: vec![None; m],
            reg_seq: vec![0; m],
            token_epoch: vec![0; m],
        }
    }

    /// Build all nodes of a system.
    pub fn build_nodes(n: usize, m: usize) -> Vec<BouabdallahLaforest> {
        (0..n)
            .map(|i| BouabdallahLaforest::new(i, n, m, 0))
            .collect()
    }

    /// Resource tokens currently held (diagnostics).
    pub fn held(&self) -> ResourceSet {
        self.held.clone()
    }

    fn nt_send(ctx: &mut Ctx<BlMsg>, out: Vec<(NodeId, NtMsg<ControlToken>)>) {
        for (to, m) in out {
            ctx.send(to, BlMsg::Nt(m));
        }
    }

    /// With the control token in hand: register the request, grab present
    /// tokens, inquire absent ones, pass the control token on.
    fn use_control_token(&mut self, ctx: &mut Ctx<BlMsg>) {
        debug_assert!(self.nt.holds_token());
        let me = self.me;
        let mut inquiries: Vec<(NodeId, ResourceId, u64)> = Vec::new();
        let mut claimed = ResourceSet::new();
        {
            let ct = self.nt.token_mut().expect("holds control token");
            for r in self.required.iter() {
                match ct.entries[r] {
                    CtEntry::Token => {
                        // First registration ever for `r`: epoch 1.
                        ct.entries[r] = CtEntry::Last(me, 1);
                        self.reg_seq[r] = 1;
                        self.token_epoch[r] = 1;
                        self.held.insert(r);
                        claimed.insert(r);
                        self.acquired.insert(r);
                    }
                    CtEntry::Last(s, e) if s == me => {
                        // We kept the token after an earlier CS and nobody
                        // registered since: it is rightfully ours again,
                        // under the same epoch.
                        debug_assert!(self.held.contains(r));
                        debug_assert_eq!(self.token_epoch[r], e);
                        self.reg_seq[r] = e;
                        claimed.insert(r);
                        self.acquired.insert(r);
                    }
                    CtEntry::Last(s, e) => {
                        // Queued behind `s` — even if we physically hold
                        // the token (possible when `s` overtook our own
                        // re-registration), the claim is not ours yet: the
                        // held token stays pledged to the overdue inquire
                        // chasing its own (older) epoch.
                        inquiries.push((s, r, e));
                        ct.entries[r] = CtEntry::Last(me, e + 1);
                        self.reg_seq[r] = e + 1;
                    }
                }
            }
        }
        self.claim.union_with(&claimed);
        for (s, r, pred) in inquiries {
            ctx.send(s, BlMsg::Inquire { r, from: me, pred });
        }
        // Surrendering held-but-unclaimed tokens cannot be needed here: an
        // inquire for them either already arrived (handled there) or will
        // arrive later.
        // Control-token critical section over: pass it on.
        let mut out = Vec::new();
        self.nt.release(&mut |to, m| out.push((to, m)));
        Self::nt_send(ctx, out);
        self.maybe_enter(ctx);
    }

    fn maybe_enter(&mut self, ctx: &mut Ctx<BlMsg>) {
        if self.state == ProcState::WaitCS && self.required.is_subset(&self.acquired) {
            self.state = ProcState::InCS;
            ctx.grant();
        }
    }
}

impl Allocator for BouabdallahLaforest {
    type Msg = BlMsg;

    fn on_init(&mut self, _ctx: &mut Ctx<BlMsg>) {}

    fn on_message(&mut self, ctx: &mut Ctx<BlMsg>, _from: NodeId, msg: BlMsg) {
        match msg {
            BlMsg::Nt(inner) => {
                let mut out = Vec::new();
                let got_ct = self.nt.on_message(inner, &mut |to, m| out.push((to, m)));
                Self::nt_send(ctx, out);
                if got_ct {
                    self.use_control_token(ctx);
                }
            }
            BlMsg::Inquire { r, from, pred } => {
                debug_assert_ne!(from, self.me);
                if self.held.contains(r)
                    && self.token_epoch[r] == pred
                    && !self.claim.contains(r)
                {
                    // The inquirer chases exactly the epoch our kept token
                    // is held under, and we are done with it: hand it
                    // over.  An inquire chasing a *newer* registration of
                    // ours (epoch mismatch) must queue below instead, even
                    // though we physically hold a token — that token is
                    // pledged to the overdue inquire of its own epoch.
                    self.held.remove(r);
                    ctx.send(from, BlMsg::ResTok { r });
                } else {
                    // We are using it, entitled to use it next, still
                    // awaiting it, or holding it for an older epoch:
                    // `from` becomes our unique successor.
                    debug_assert!(
                        self.next_r[r].is_none(),
                        "CT serialization guarantees one successor (node {}, r{r})",
                        self.me
                    );
                    self.next_r[r] = Some(from);
                }
            }
            BlMsg::ResTok { r } => {
                debug_assert!(!self.held.contains(r));
                // The inquire chain delivers the token exactly when it is
                // our turn — for our current registration's epoch.
                self.token_epoch[r] = self.reg_seq[r];
                self.held.insert(r);
                self.claim.insert(r);
                debug_assert!(
                    self.state == ProcState::WaitCS && self.required.contains(r),
                    "resource token {r} arrived unawaited at node {}",
                    self.me
                );
                self.acquired.insert(r);
                self.maybe_enter(ctx);
            }
        }
    }

    fn request(&mut self, ctx: &mut Ctx<BlMsg>, resources: ResourceSet) {
        assert_eq!(self.state, ProcState::Idle, "request while busy");
        assert!(!resources.is_empty());
        debug_assert!(resources.iter().all(|r| r < self.m));
        self.required = resources;
        self.acquired.clear();
        self.state = ProcState::WaitCS;
        let mut out = Vec::new();
        let got_ct = self.nt.request(&mut |to, m| out.push((to, m)));
        Self::nt_send(ctx, out);
        if got_ct {
            self.use_control_token(ctx);
        }
    }

    fn release(&mut self, ctx: &mut Ctx<BlMsg>) {
        assert_eq!(self.state, ProcState::InCS, "release outside CS");
        self.state = ProcState::Idle;
        for r in self.required.iter() {
            debug_assert!(self.held.contains(r));
            // Our claim over the used resources ends with the CS.
            self.claim.remove(r);
            if let Some(next) = self.next_r[r].take() {
                self.held.remove(r);
                ctx.send(next, BlMsg::ResTok { r });
            }
            // else: keep the token until someone inquires.
        }
        self.required.clear();
        self.acquired.clear();
    }

    fn state(&self) -> ProcState {
        self.state
    }

    fn name(&self) -> &'static str {
        "bouabdallah-laforest"
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use mra_protocol::testkit::{run_random_workload, ExerciseCfg, VirtualNet};
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    #[test]
    fn elected_node_acquires_from_control_token() {
        let mut nodes = BouabdallahLaforest::build_nodes(3, 4);
        let mut ctx = Ctx::new(0, 3);
        nodes[0].request(&mut ctx, [0, 2].into_iter().collect());
        assert!(ctx.take_granted());
        assert_eq!(nodes[0].held(), [0, 2].into_iter().collect());
        nodes[0].release(&mut ctx);
        // Tokens stay until inquired.
        assert_eq!(nodes[0].held(), [0, 2].into_iter().collect());
        assert!(!ctx.has_output());
    }

    #[test]
    fn re_request_of_kept_tokens_is_local_after_ct() {
        let mut nodes = BouabdallahLaforest::build_nodes(2, 3);
        let mut ctx = Ctx::new(0, 2);
        let set: ResourceSet = [1].into_iter().collect();
        nodes[0].request(&mut ctx, set.clone());
        assert!(ctx.take_granted());
        nodes[0].release(&mut ctx);
        // Second request: entry says Last(0) and we still hold the token.
        nodes[0].request(&mut ctx, set);
        assert!(ctx.take_granted());
    }

    #[test]
    fn inquire_chain_moves_resource_token() {
        let mut nodes = BouabdallahLaforest::build_nodes(2, 2);
        let mut c0 = Ctx::new(0, 2);
        let mut c1 = Ctx::new(1, 2);
        let set: ResourceSet = [0].into_iter().collect();
        // Node 0 takes resource 0 and stays in CS.
        nodes[0].request(&mut c0, set.clone());
        assert!(c0.take_granted());
        // Node 1 requests: needs the CT first.
        nodes[1].request(&mut c1, set);
        let msgs = c1.take_outbox();
        assert_eq!(msgs.len(), 1); // CT request to node 0
        nodes[0].on_message(&mut c0, 1, msgs.into_iter().next().unwrap().1);
        // Node 0 passes the CT (it is not using it).
        let msgs = c0.take_outbox();
        assert_eq!(msgs.len(), 1);
        nodes[1].on_message(&mut c1, 0, msgs.into_iter().next().unwrap().1);
        // Node 1 read Last(0) and inquires node 0.
        let msgs = c1.take_outbox();
        assert_eq!(msgs.len(), 1);
        assert!(matches!(msgs[0].1, BlMsg::Inquire { r: 0, from: 1, .. }));
        nodes[0].on_message(&mut c0, 1, msgs.into_iter().next().unwrap().1);
        // Node 0 is still in CS: records the successor, sends nothing.
        assert!(c0.take_outbox().is_empty());
        // Release: resource token flows to node 1, which enters CS.
        nodes[0].release(&mut c0);
        let msgs = c0.take_outbox();
        assert_eq!(msgs.len(), 1);
        nodes[1].on_message(&mut c1, 0, msgs.into_iter().next().unwrap().1);
        assert!(c1.take_granted());
    }

    #[test]
    fn random_runs_safe_and_live() {
        for seed in 0..12 {
            let mut net = VirtualNet::new(BouabdallahLaforest::build_nodes(5, 8), 8);
            let mut rng = StdRng::seed_from_u64(seed);
            let cfg = ExerciseCfg {
                rounds_per_node: 6,
                max_req_size: 4,
                m: 8,
                hold_steps: 3,
                active_nodes: None,
                step_cap: 3_000_000,
            };
            let rep = run_random_workload(&mut net, &cfg, &mut rng);
            assert_eq!(rep.cs_completed, 30, "seed {seed}");
        }
    }

    #[test]
    fn exactly_one_resource_token_each_when_quiet() {
        let mut net = VirtualNet::new(BouabdallahLaforest::build_nodes(4, 6), 6);
        let mut rng = StdRng::seed_from_u64(5);
        let cfg = ExerciseCfg {
            rounds_per_node: 5,
            max_req_size: 3,
            m: 6,
            hold_steps: 2,
            active_nodes: None,
            step_cap: 3_000_000,
        };
        run_random_workload(&mut net, &cfg, &mut rng);
        // Every resource token is held by at most one node; tokens still in
        // the control token account for the rest.
        let mut held_by_nodes = ResourceSet::new();
        for i in 0..4 {
            let h = net.node(i).held();
            assert!(held_by_nodes.is_disjoint(&h), "resource token duplicated");
            held_by_nodes.union_with(&h);
        }
    }
}

#[cfg(test)]
mod chain_epoch_regression {
    use super::*;
    use mra_protocol::faults::FaultPlan;
    use mra_protocol::reliable::Reliability;
    use mra_protocol::testkit::{run_faulty_workload, ExerciseCfg, VirtualNet};
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    /// Replays the schedule that exposed the epoch-less chain corruption
    /// (PR 5): a dropped `INQUIRE` retransmitted maximally late arrived
    /// *after* a later registrant's inquire, the holder handed its kept
    /// token out of chain order, and the r11 waiting chain collapsed into
    /// the cycle `n1 ↔ n6` — a permanent deadlock.  With epochs on
    /// `CtEntry::Last`/`Inquire::pred` the harness (which re-arms the
    /// deadlock panic under reliability) completes every request.
    #[test]
    fn delayed_inquire_cannot_corrupt_the_waiting_chain() {
        let mut net = VirtualNet::new(BouabdallahLaforest::build_nodes(8, 16), 16);
        net.install_faults(&FaultPlan::new(7896035992339410799).drop_rate(0.20));
        net.enable_reliability(Reliability::default());
        let mut rng = StdRng::seed_from_u64(5932657913863570347);
        let rep = run_faulty_workload(
            &mut net,
            &ExerciseCfg {
                rounds_per_node: 3,
                max_req_size: 3,
                m: 16,
                hold_steps: 2,
                active_nodes: None,
                step_cap: 2_000_000,
            },
            &mut rng,
        );
        assert_eq!(rep.cs_completed, 24);
        assert!(rep.starved.is_empty());
        assert!(rep.stats.dropped_link > 0, "the plan did drop frames");
    }
}
