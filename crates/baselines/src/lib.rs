//! # mra-baselines — comparison algorithms from the paper's evaluation
//!
//! The paper (§5) compares its algorithm against representatives of both
//! families of multi-resource solutions plus an ideal scheduler:
//!
//! * [`incremental`] — the **incremental family** (§2.1): one
//!   Naimi-Trehel mutual-exclusion instance per resource, acquired in
//!   ascending resource order.  Correct and simple, but suffers the *domino
//!   effect*: a process holds resources while blocked on later ones,
//!   freezing whole chains of waiters.
//! * [`bouabdallah_laforest`] — the strongest member of the **simultaneous
//!   family** (§2.2): a unique *control token* (circulated by Naimi-Trehel)
//!   serializes request registration; per-resource tokens then travel along
//!   INQUIRE chains.  Message-efficient, but the control token is a global
//!   lock: non-conflicting processes still synchronize on it, and the
//!   schedule is fixed by control-token acquisition order.
//! * [`central`] — the paper's *"in shared memory"* curve: a zero-cost
//!   global scheduler with one waiting queue, run with zero network latency.
//!   It upper-bounds what any distributed algorithm could achieve.
//! * [`maddi`] — the broadcast family (Maddi, SAC'97), described by the
//!   paper as multiple Suzuki-Kasami instances with Lamport-timestamped
//!   requests; O(N) messages per request.
//!
//! All four implement [`mra_protocol::Allocator`] and run unchanged under
//! the virtual test network, the discrete-event simulator, the threaded
//! runtime and the `mra-net` TCP transport ([`wire`] holds the codecs).

pub mod bouabdallah_laforest;
pub mod central;
pub mod incremental;
pub mod maddi;
pub mod wire;

pub use bouabdallah_laforest::{BlMsg, BouabdallahLaforest, ControlToken, CtEntry};
pub use central::{Central, CentralMsg, CentralSched, GrantPolicy};
pub use incremental::{IncMsg, Incremental};
pub use maddi::{MadMsg, Maddi};
