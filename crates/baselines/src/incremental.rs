//! The incremental baseline (paper §2.1 and §5).
//!
//! One Naimi-Trehel mutual-exclusion instance per resource; a process locks
//! the resources of its request one at a time **in ascending resource
//! order**.  The global order makes cycles — hence deadlocks — impossible
//! (this is Lynch's classical observation, citation \[13\]), but while a
//! process waits for resource `r_k` it already holds `r_1..r_{k-1}`,
//! blocking everyone queued behind it: the *domino effect* that devastates
//! the resource use rate in the paper's Figure 5.

use mra_mutex::{NaimiTrehel, NtMsg};
use mra_protocol::{Allocator, Ctx, ProcState, WireMsg};
use mra_types::{NodeId, ResTable, ResourceId, ResourceSet};
use std::fmt;

/// Wire message: a Naimi-Trehel message tagged with its resource instance.
#[derive(Clone)]
pub struct IncMsg {
    /// Which per-resource Naimi-Trehel instance this belongs to.
    pub r: ResourceId,
    /// The embedded Naimi-Trehel message.
    pub inner: NtMsg<()>,
}

impl fmt::Debug for IncMsg {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "Inc[r{}]{:?}", self.r, self.inner)
    }
}

impl WireMsg for IncMsg {
    fn kind(&self) -> &'static str {
        match self.inner {
            NtMsg::Request { .. } => "Inc::Request",
            NtMsg::Token(_) => "Inc::Token",
        }
    }

    fn weight(&self) -> usize {
        2
    }
}

/// One node of the incremental algorithm.
///
/// The per-resource Naimi-Trehel instances live in a [`ResTable`]: dense at
/// paper scale, lazily materialized above [`mra_types::DENSE_TABLE_MAX`]
/// resources so a node only pays for instances it actually locks.
#[derive(Clone)]
pub struct Incremental {
    me: NodeId,
    elected: NodeId,
    state: ProcState,
    insts: ResTable<NaimiTrehel<()>>,
    required: ResourceSet,
    acquired: ResourceSet,
    /// The resource currently being waited for (always the smallest
    /// not-yet-acquired required resource).
    awaiting: Option<ResourceId>,
}

impl Incremental {
    /// Create node `me` of an `n`-node, `m`-resource system; `elected`
    /// initially holds every token.
    pub fn new(me: NodeId, _n: usize, m: usize, elected: NodeId) -> Self {
        Incremental {
            me,
            elected,
            state: ProcState::Idle,
            insts: ResTable::new_with(m, |_| Self::mk_inst(me, elected)),
            required: ResourceSet::new(),
            acquired: ResourceSet::new(),
            awaiting: None,
        }
    }

    fn mk_inst(me: NodeId, elected: NodeId) -> NaimiTrehel<()> {
        let mut inst = NaimiTrehel::new(me, elected);
        if me == elected {
            inst.give_initial_token(());
        }
        inst
    }

    /// The instance for `r`, materialized in its initial state on first
    /// touch.
    fn inst_mut(&mut self, r: ResourceId) -> &mut NaimiTrehel<()> {
        let (me, elected) = (self.me, self.elected);
        self.insts.get_or(r, |_| Self::mk_inst(me, elected))
    }

    /// Build all nodes of a system.
    pub fn build_nodes(n: usize, m: usize) -> Vec<Incremental> {
        (0..n).map(|i| Incremental::new(i, n, m, 0)).collect()
    }

    /// Resources currently locked by this node (diagnostics).
    pub fn acquired(&self) -> ResourceSet {
        self.acquired.clone()
    }

    /// Keep acquiring in ascending order until blocked or done.
    fn acquire_forward(&mut self, ctx: &mut Ctx<IncMsg>) {
        while let Some(r) = self.required.difference(&self.acquired).first() {
            self.awaiting = Some(r);
            let mut out: Vec<(NodeId, IncMsg)> = Vec::new();
            let got = self.inst_mut(r).request(&mut |to, inner| {
                out.push((to, IncMsg { r, inner }));
            });
            for (to, m) in out {
                ctx.send(to, m);
            }
            if got {
                self.acquired.insert(r);
                self.awaiting = None;
            } else {
                return; // blocked: wait for the token message
            }
        }
        // All resources acquired.
        self.state = ProcState::InCS;
        ctx.grant();
    }
}

impl Allocator for Incremental {
    type Msg = IncMsg;

    fn on_init(&mut self, _ctx: &mut Ctx<IncMsg>) {}

    fn on_message(&mut self, ctx: &mut Ctx<IncMsg>, _from: NodeId, msg: IncMsg) {
        let r = msg.r;
        let mut out: Vec<(NodeId, IncMsg)> = Vec::new();
        let got = self.inst_mut(r).on_message(msg.inner, &mut |to, inner| {
            out.push((to, IncMsg { r, inner }));
        });
        for (to, m) in out {
            ctx.send(to, m);
        }
        if got {
            debug_assert_eq!(self.awaiting, Some(r), "token for unexpected resource");
            self.acquired.insert(r);
            self.awaiting = None;
            self.acquire_forward(ctx);
        }
    }

    fn request(&mut self, ctx: &mut Ctx<IncMsg>, resources: ResourceSet) {
        assert_eq!(self.state, ProcState::Idle, "request while busy");
        assert!(!resources.is_empty());
        self.required = resources;
        self.acquired.clear();
        self.state = ProcState::WaitCS;
        self.acquire_forward(ctx);
    }

    fn release(&mut self, ctx: &mut Ctx<IncMsg>) {
        assert_eq!(self.state, ProcState::InCS, "release outside CS");
        for r in self.required.iter() {
            let mut out: Vec<(NodeId, IncMsg)> = Vec::new();
            self.inst_mut(r).release(&mut |to, inner| {
                out.push((to, IncMsg { r, inner }));
            });
            for (to, m) in out {
                ctx.send(to, m);
            }
        }
        self.required.clear();
        self.acquired.clear();
        self.state = ProcState::Idle;
    }

    fn state(&self) -> ProcState {
        self.state
    }

    fn name(&self) -> &'static str {
        "incremental"
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use mra_protocol::testkit::{run_random_workload, ExerciseCfg, VirtualNet};
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    #[test]
    fn elected_acquires_locally() {
        let mut nodes = Incremental::build_nodes(2, 4);
        let mut ctx = Ctx::new(0, 2);
        nodes[0].request(&mut ctx, [1, 3].into_iter().collect());
        assert!(ctx.take_granted());
        assert_eq!(nodes[0].state(), ProcState::InCS);
        nodes[0].release(&mut ctx);
        assert!(!ctx.has_output());
    }

    #[test]
    fn acquisition_is_in_ascending_order() {
        let mut nodes = Incremental::build_nodes(2, 4);
        let mut ctx1 = Ctx::new(1, 2);
        nodes[1].request(&mut ctx1, [2, 0].into_iter().collect());
        // Only resource 0 requested so far (ascending order).
        let out = ctx1.take_outbox();
        assert_eq!(out.len(), 1);
        assert_eq!(out[0].1.r, 0);
        assert_eq!(nodes[1].acquired(), ResourceSet::new());
    }

    #[test]
    fn random_runs_safe_and_live() {
        for seed in 0..10 {
            let mut net = VirtualNet::new(Incremental::build_nodes(5, 8), 8);
            let mut rng = StdRng::seed_from_u64(seed);
            let cfg = ExerciseCfg {
                rounds_per_node: 6,
                max_req_size: 4,
                m: 8,
                hold_steps: 3,
                active_nodes: None,
                step_cap: 3_000_000,
            };
            let rep = run_random_workload(&mut net, &cfg, &mut rng);
            assert_eq!(rep.cs_completed, 30, "seed {seed}");
        }
    }
}
