//! The Maddi broadcast baseline (paper §2.2; citation \[14\]).
//!
//! Reference: A. Maddi, *Token based solutions to m resources allocation
//! problem* (SAC 1997).  The paper describes it as "multiple instances of
//! the Suzuki-Kasami mutual exclusion algorithm": each resource has a unique
//! token; each request is stamped with the requester's Lamport clock and
//! **broadcast to all nodes**, which store it in per-resource queues ordered
//! by `(timestamp, node)` — one shared total order.
//!
//! Tokens are granted strictly in that order: a token holder that is not in
//! its critical section yields the token to the head of the local queue.
//! Because every queue is a view of the same total order, the globally
//! minimal pending request can always gather all of its tokens — no
//! deadlock, and timestamps grow, so no starvation.
//!
//! The price is message complexity: `N − 1` broadcast messages per request
//! plus token moves — the "not scalable" family of the paper's related
//! work.  Implemented here as the broadcast representative for the
//! benchmark extensions.

use mra_protocol::{Allocator, Ctx, ProcState, WireMsg};
use mra_types::{NodeId, ResourceId, ResourceSet};
use std::fmt;

/// Per-resource token: carries the timestamp of the last served request of
/// every node (à la Suzuki-Kasami's `LN` array) so queues can be purged.
#[derive(Clone, Debug)]
pub struct MadToken {
    /// `served[i]`: Lamport timestamp of node `i`'s last completed request.
    pub served: Vec<u64>,
}

/// Wire messages of the Maddi algorithm.
#[derive(Clone)]
pub enum MadMsg {
    /// Broadcast to every node on request.
    Request {
        /// Requesting node.
        origin: NodeId,
        /// Lamport timestamp of the request.
        ts: u64,
        /// The full resource set requested.
        set: ResourceSet,
    },
    /// A resource token moving to its next holder.
    Token {
        /// The resource.
        r: ResourceId,
        /// The token payload.
        tok: MadToken,
    },
}

impl fmt::Debug for MadMsg {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            MadMsg::Request { origin, ts, set } => {
                write!(f, "Mad::Request({origin}@{ts} {:?})", set.to_vec())
            }
            MadMsg::Token { r, .. } => write!(f, "Mad::Token(r{r})"),
        }
    }
}

impl WireMsg for MadMsg {
    fn kind(&self) -> &'static str {
        match self {
            MadMsg::Request { .. } => "Mad::Request",
            MadMsg::Token { .. } => "Mad::Token",
        }
    }

    fn weight(&self) -> usize {
        match self {
            MadMsg::Request { .. } => 6,
            MadMsg::Token { tok, .. } => 1 + tok.served.len(),
        }
    }
}

/// One pending request as seen in a local per-resource queue.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
struct QEntry {
    ts: u64,
    origin: NodeId,
}

impl QEntry {
    fn key(&self) -> (u64, NodeId) {
        (self.ts, self.origin)
    }
}

/// One node of the Maddi algorithm.
#[derive(Clone)]
pub struct Maddi {
    me: NodeId,
    m: usize,
    state: ProcState,
    clock: u64,
    /// Timestamp of the current request.
    my_ts: u64,
    required: ResourceSet,
    /// Tokens currently held (authoritative `served` arrays).
    tokens: Vec<Option<MadToken>>,
    /// Local per-resource queues of known pending requests, sorted by
    /// `(ts, origin)`.
    queues: Vec<Vec<QEntry>>,
}

impl Maddi {
    /// Create node `me` of `n`; `elected` initially holds every token.
    pub fn new(me: NodeId, n: usize, m: usize, elected: NodeId) -> Self {
        Maddi {
            me,
            m,
            state: ProcState::Idle,
            clock: 0,
            my_ts: 0,
            required: ResourceSet::new(),
            tokens: (0..m)
                .map(|_| (me == elected).then(|| MadToken { served: vec![0; n] }))
                .collect(),
            queues: (0..m).map(|_| Vec::new()).collect(),
        }
    }

    /// Build all nodes of a system.
    pub fn build_nodes(n: usize, m: usize) -> Vec<Maddi> {
        (0..n).map(|i| Maddi::new(i, n, m, 0)).collect()
    }

    /// Tokens held (diagnostics).
    pub fn held(&self) -> ResourceSet {
        (0..self.m).filter(|&r| self.tokens[r].is_some()).collect()
    }

    fn insert_queue(&mut self, r: ResourceId, e: QEntry) {
        // A node has one outstanding request: an entry with a newer ts
        // supersedes older ones from the same origin.
        self.queues[r].retain(|q| q.origin != e.origin || q.ts >= e.ts);
        if self.queues[r].iter().any(|q| q.origin == e.origin) {
            return;
        }
        let pos = self.queues[r].partition_point(|q| q.key() <= e.key());
        self.queues[r].insert(pos, e);
    }

    /// Drop queue entries already served according to the held token.
    fn purge(&mut self, r: ResourceId) {
        if let Some(tok) = &self.tokens[r] {
            let served = tok.served.clone();
            self.queues[r].retain(|q| q.ts > served[q.origin]);
        }
    }

    /// Core scheduling step: for every held token, serve the queue head —
    /// ourselves (claim) or another node (yield) — unless we are using the
    /// resource in our CS.
    fn schedule(&mut self, ctx: &mut Ctx<MadMsg>) {
        for r in 0..self.m {
            if self.tokens[r].is_none() {
                continue;
            }
            self.purge(r);
            let Some(&head) = self.queues[r].first() else {
                continue;
            };
            if head.origin == self.me {
                continue; // our claim: hold on to it
            }
            if self.state == ProcState::InCS && self.required.contains(r) {
                continue; // in use; the head waits for our release
            }
            // Yield to the globally older request.
            let tok = self.tokens[r].take().expect("held");
            ctx.send(head.origin, MadMsg::Token { r, tok });
        }
        self.try_enter(ctx);
    }

    /// Enter the CS iff we hold every required token and head every queue.
    fn try_enter(&mut self, ctx: &mut Ctx<MadMsg>) {
        if self.state != ProcState::WaitCS {
            return;
        }
        for r in self.required.iter() {
            if self.tokens[r].is_none() {
                return;
            }
            match self.queues[r].first() {
                Some(head) if head.origin == self.me => {}
                _ => return, // purge keeps our own entry while pending
            }
        }
        self.state = ProcState::InCS;
        ctx.grant();
    }
}

impl Allocator for Maddi {
    type Msg = MadMsg;

    fn on_init(&mut self, _ctx: &mut Ctx<MadMsg>) {}

    fn on_message(&mut self, ctx: &mut Ctx<MadMsg>, _from: NodeId, msg: MadMsg) {
        match msg {
            MadMsg::Request { origin, ts, set } => {
                self.clock = self.clock.max(ts);
                for r in set.iter() {
                    self.insert_queue(r, QEntry { ts, origin });
                }
                self.schedule(ctx);
            }
            MadMsg::Token { r, tok } => {
                debug_assert!(self.tokens[r].is_none(), "duplicate token {r}");
                self.tokens[r] = Some(tok);
                self.schedule(ctx);
            }
        }
    }

    fn request(&mut self, ctx: &mut Ctx<MadMsg>, resources: ResourceSet) {
        assert_eq!(self.state, ProcState::Idle, "request while busy");
        assert!(!resources.is_empty());
        self.clock += 1;
        self.my_ts = self.clock;
        self.required = resources.clone();
        self.state = ProcState::WaitCS;
        let me = self.me;
        let ts = self.my_ts;
        for r in resources.iter() {
            self.insert_queue(r, QEntry { ts, origin: me });
        }
        ctx.broadcast(MadMsg::Request {
            origin: me,
            ts,
            set: resources,
        });
        self.schedule(ctx);
    }

    fn release(&mut self, ctx: &mut Ctx<MadMsg>) {
        assert_eq!(self.state, ProcState::InCS, "release outside CS");
        self.state = ProcState::Idle;
        let me = self.me;
        let ts = self.my_ts;
        for r in self.required.iter() {
            let tok = self.tokens[r].as_mut().expect("used token is held");
            tok.served[me] = ts;
        }
        self.required.clear();
        self.schedule(ctx);
    }

    fn state(&self) -> ProcState {
        self.state
    }

    fn name(&self) -> &'static str {
        "maddi"
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use mra_protocol::testkit::{run_random_workload, ExerciseCfg, VirtualNet};
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    #[test]
    fn elected_holder_enters_immediately() {
        let mut nodes = Maddi::build_nodes(3, 4);
        let mut ctx = Ctx::new(0, 3);
        nodes[0].request(&mut ctx, [0, 2].into_iter().collect());
        assert!(ctx.take_granted());
        // Broadcast still goes out (2 messages).
        assert_eq!(ctx.take_outbox().len(), 2);
    }

    #[test]
    fn token_yields_to_older_timestamp() {
        let mut nodes = Maddi::build_nodes(3, 1);
        let mut c0 = Ctx::new(0, 3);
        let mut c1 = Ctx::new(1, 3);
        let mut c2 = Ctx::new(2, 3);
        let set = ResourceSet::singleton(0);
        // Node 1 and node 2 request concurrently, same clock values: the
        // node id breaks the tie, so node 1 must win.
        nodes[1].request(&mut c1, set.clone());
        nodes[2].request(&mut c2, set);
        // Deliver both broadcasts to node 0 (the idle holder).
        for (to, m) in c1.take_outbox() {
            if to == 0 {
                nodes[0].on_message(&mut c0, 1, m);
            }
        }
        let first = c0.take_outbox();
        assert_eq!(first.len(), 1);
        assert_eq!(first[0].0, 1, "token goes to node 1");
        for (to, m) in c2.take_outbox() {
            if to == 0 {
                nodes[0].on_message(&mut c0, 2, m);
            }
        }
        assert!(c0.take_outbox().is_empty(), "token already gone");
    }

    #[test]
    fn random_runs_safe_and_live() {
        for seed in 0..12 {
            let mut net = VirtualNet::new(Maddi::build_nodes(5, 8), 8);
            let mut rng = StdRng::seed_from_u64(seed);
            let cfg = ExerciseCfg {
                rounds_per_node: 6,
                max_req_size: 4,
                m: 8,
                hold_steps: 3,
                active_nodes: None,
                step_cap: 3_000_000,
            };
            let rep = run_random_workload(&mut net, &cfg, &mut rng);
            assert_eq!(rep.cs_completed, 30, "seed {seed}");
        }
    }

    #[test]
    fn tokens_unique_when_quiet() {
        let mut net = VirtualNet::new(Maddi::build_nodes(4, 6), 6);
        let mut rng = StdRng::seed_from_u64(3);
        let cfg = ExerciseCfg {
            rounds_per_node: 5,
            max_req_size: 3,
            m: 6,
            hold_steps: 2,
            active_nodes: None,
            step_cap: 3_000_000,
        };
        run_random_workload(&mut net, &cfg, &mut rng);
        let mut seen = ResourceSet::new();
        let mut total = 0;
        for i in 0..4 {
            let h = net.node(i).held();
            assert!(seen.is_disjoint(&h));
            seen.union_with(&h);
            total += h.len();
        }
        assert_eq!(total, 6, "every token exists exactly once");
    }
}
