//! Property-based tests for the baseline algorithms: arbitrary system
//! shapes and interleavings, same guarantees as the core algorithm —
//! safety (monitored), liveness (completion), token conservation.

use mra_baselines::{BouabdallahLaforest, Central, GrantPolicy, Incremental, Maddi};
use mra_protocol::testkit::{run_random_workload, ExerciseCfg, VirtualNet};
use mra_protocol::Allocator;
use mra_types::ResourceSet;
use proptest::prelude::*;
use rand::rngs::StdRng;
use rand::SeedableRng;

fn exercise<A: Allocator>(
    net: &mut VirtualNet<A>,
    n_active: usize,
    m: usize,
    phi: usize,
    rounds: usize,
    seed: u64,
) -> u64 {
    let mut rng = StdRng::seed_from_u64(seed);
    let cfg = ExerciseCfg {
        rounds_per_node: rounds,
        max_req_size: phi.min(m),
        m,
        hold_steps: 2,
        active_nodes: Some(n_active),
        step_cap: 2_000_000,
    };
    run_random_workload(net, &cfg, &mut rng).cs_completed
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(32))]

    #[test]
    fn incremental_safe_live(seed in any::<u64>(), n in 2usize..6, m in 2usize..9, phi in 1usize..5) {
        let mut net = VirtualNet::new(Incremental::build_nodes(n, m), m);
        let done = exercise(&mut net, n, m, phi, 4, seed);
        prop_assert_eq!(done as usize, 4 * n);
        // After quiescence no node still claims resources.
        for i in 0..n {
            prop_assert!(net.node(i).acquired().is_empty(), "acquired set not cleared");
        }
    }

    #[test]
    fn bouabdallah_laforest_safe_live(seed in any::<u64>(), n in 2usize..6, m in 2usize..9, phi in 1usize..5) {
        let mut net = VirtualNet::new(BouabdallahLaforest::build_nodes(n, m), m);
        let done = exercise(&mut net, n, m, phi, 4, seed);
        prop_assert_eq!(done as usize, 4 * n);
        // Resource tokens never duplicated across holders.
        let mut seen = ResourceSet::new();
        for i in 0..n {
            let h = net.node(i).held();
            prop_assert!(seen.is_disjoint(&h), "duplicated resource token");
            seen.union_with(&h);
        }
    }

    #[test]
    fn maddi_safe_live(seed in any::<u64>(), n in 2usize..6, m in 2usize..8, phi in 1usize..5) {
        let mut net = VirtualNet::new(Maddi::build_nodes(n, m), m);
        let done = exercise(&mut net, n, m, phi, 4, seed);
        prop_assert_eq!(done as usize, 4 * n);
        let mut seen = ResourceSet::new();
        let mut total = 0usize;
        for i in 0..n {
            let h = net.node(i).held();
            prop_assert!(seen.is_disjoint(&h));
            seen.union_with(&h);
            total += h.len();
        }
        prop_assert_eq!(total, m, "every Maddi token exists exactly once");
    }

    #[test]
    fn central_safe_live(seed in any::<u64>(), clients in 2usize..6, m in 2usize..9, phi in 1usize..5,
                         greedy in any::<bool>()) {
        let policy = if greedy { GrantPolicy::Greedy } else { GrantPolicy::Conservative };
        let mut net = VirtualNet::new(Central::build_nodes(clients, policy), m);
        let done = exercise(&mut net, clients, m, phi, 4, seed);
        prop_assert_eq!(done as usize, 4 * clients);
    }

    /// The central scheduler's core invariant under an arbitrary
    /// request/release trace: never over-allocates, conservative never
    /// lets a request overtake an earlier conflicting one.
    #[test]
    fn central_sched_never_overbooks(ops in proptest::collection::vec((0usize..6, proptest::collection::vec(0usize..8, 1..4)), 1..60)) {
        use mra_baselines::CentralSched;
        let mut sched = CentralSched::new(GrantPolicy::Conservative);
        let mut busy: Vec<Option<ResourceSet>> = vec![None; 6];
        let mut queued = [false; 6];
        let mut in_use = ResourceSet::new();
        let apply_grants = |grants: Vec<usize>,
                                busy: &mut Vec<Option<ResourceSet>>,
                                queued: &mut [bool; 6],
                                in_use: &mut ResourceSet,
                                requests: &std::collections::HashMap<usize, ResourceSet>| {
            for g in grants {
                let set = requests[&g].clone();
                //

                assert!(in_use.is_disjoint(&set), "over-allocation");
                in_use.union_with(&set);
                busy[g] = Some(set);
                queued[g] = false;
            }
        };
        let mut requests: std::collections::HashMap<usize, ResourceSet> = Default::default();
        for (node, rs) in ops {
            if busy[node].is_some() {
                // release
                let set = busy[node].take().expect("held");
                in_use.difference_with(&set);
                let grants = sched.release(node);
                apply_grants(grants, &mut busy, &mut queued, &mut in_use, &requests);
            } else if !queued[node] {
                let set: ResourceSet = rs.into_iter().collect();
                requests.insert(node, set.clone());
                queued[node] = true;
                let grants = sched.request(node, set);
                apply_grants(grants, &mut busy, &mut queued, &mut in_use, &requests);
            }
        }
        prop_assert_eq!(sched.in_use(), in_use);
    }
}
