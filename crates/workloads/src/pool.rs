//! A std-only scoped-thread work pool for experiment sweeps.
//!
//! Every figure of the paper's evaluation is a grid of **independent,
//! deterministic** simulations (Fig. 5 alone is 3 loads × 11 φ × 5
//! algorithms = 165 runs).  [`sweep`] fans such a grid across cores:
//! workers claim grid points from an atomic cursor (dynamic load balancing
//! — simulation cost varies wildly across φ and algorithm) and write each
//! result into the slot matching its input index, so the output order is
//! **always input order** regardless of scheduling.  Combined with each
//! run's own seeded RNGs, a parallel sweep is byte-for-byte identical to a
//! sequential one (see `tests/sweep_determinism.rs`).
//!
//! Thread count comes from the `MRA_THREADS` environment variable; unset
//! (or unparsable) means all available parallelism, and `1` takes exactly
//! the pre-pool sequential path — no threads spawned, items mapped in
//! place.  The pool is std-only (`std::thread::scope`) because the build
//! environment is offline; no rayon, no crossbeam.

// Poison-tolerant lock shared with the node runtime: a worker panic (e.g.
// a safety violation inside a simulation) must surface as that panic when
// the scope joins, not as a `PoisonError` cascade from a sibling.
use mra_sim::runtime::lock;
use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::Mutex;

/// The thread count a sweep will use: `MRA_THREADS` if set to an integer
/// ≥ 1 (`1` forces the sequential path), otherwise the machine's available
/// parallelism.
pub fn configured_threads() -> usize {
    match std::env::var("MRA_THREADS")
        .ok()
        .and_then(|v| v.trim().parse::<usize>().ok())
    {
        Some(n) if n >= 1 => n,
        _ => std::thread::available_parallelism().map_or(1, |n| n.get()),
    }
}

/// Map `f` over `items` on [`configured_threads`] workers, returning the
/// results **in input order**.
///
/// # Panics
/// Propagates the first worker panic after all threads have joined
/// (`std::thread::scope` semantics), so simulation safety/liveness panics
/// still fail the sweep.
pub fn sweep<I, T, F>(items: Vec<I>, f: F) -> Vec<T>
where
    I: Send,
    T: Send,
    F: Fn(I) -> T + Sync,
{
    sweep_with_threads(configured_threads(), items, f)
}

/// [`sweep`] with an explicit thread count, bypassing `MRA_THREADS`.
/// Determinism tests compare `threads = 1` against `threads = N` directly.
pub fn sweep_with_threads<I, T, F>(threads: usize, items: Vec<I>, f: F) -> Vec<T>
where
    I: Send,
    T: Send,
    F: Fn(I) -> T + Sync,
{
    let n = items.len();
    if threads <= 1 || n <= 1 {
        // The sequential path: identical to the pre-pool code.
        return items.into_iter().map(f).collect();
    }

    // Jobs are claimed via `cursor`, each exactly once, so the Mutexes are
    // never contended — they only carry ownership across the thread
    // boundary in safe code.
    let jobs: Vec<Mutex<Option<I>>> = items.into_iter().map(|it| Mutex::new(Some(it))).collect();
    let slots: Vec<Mutex<Option<T>>> = (0..n).map(|_| Mutex::new(None)).collect();
    let cursor = AtomicUsize::new(0);

    std::thread::scope(|scope| {
        for _ in 0..threads.min(n) {
            scope.spawn(|| loop {
                let k = cursor.fetch_add(1, Ordering::Relaxed);
                if k >= n {
                    break;
                }
                let item = lock(&jobs[k]).take().expect("job claimed twice");
                let result = f(item);
                *lock(&slots[k]) = Some(result);
            });
        }
    });

    slots
        .into_iter()
        .map(|slot| {
            slot.into_inner()
                .unwrap_or_else(|e| e.into_inner())
                .expect("worker exited without filling its result slot")
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn results_come_back_in_input_order() {
        let items: Vec<usize> = (0..100).collect();
        let out = sweep_with_threads(4, items, |i| i * 2);
        assert_eq!(out, (0..100).map(|i| i * 2).collect::<Vec<_>>());
    }

    #[test]
    fn parallel_equals_sequential() {
        let work = |i: u64| -> u64 {
            // A small deterministic computation with per-item state.
            (0..1_000).fold(i, |acc, k| acc.wrapping_mul(6364136223846793005).wrapping_add(k))
        };
        let a = sweep_with_threads(1, (0..64).collect(), work);
        let b = sweep_with_threads(8, (0..64).collect(), work);
        assert_eq!(a, b);
    }

    #[test]
    fn single_item_takes_sequential_path() {
        assert_eq!(sweep_with_threads(8, vec![41], |i| i + 1), vec![42]);
    }

    #[test]
    fn empty_input_is_fine() {
        let out: Vec<usize> = sweep_with_threads(4, Vec::<usize>::new(), |i| i);
        assert!(out.is_empty());
    }

    #[test]
    fn worker_panic_propagates() {
        let boom = std::panic::catch_unwind(|| {
            sweep_with_threads(2, (0..8).collect::<Vec<usize>>(), |i| {
                assert!(i != 5, "synthetic safety violation");
                i
            })
        });
        assert!(boom.is_err(), "a worker panic must fail the whole sweep");
    }

    #[test]
    fn configured_threads_is_at_least_one() {
        assert!(configured_threads() >= 1);
    }
}
