//! # mra-workloads — the paper's experimental setup as a library
//!
//! Implements §5.1 of the paper: the workload model (parameters α, β, γ, ρ
//! and φ), scenario presets for the *medium load* and *high load*
//! configurations, one-call experiment runners for every algorithm, text
//! table / CSV rendering, and the per-figure experiment definitions used by
//! `mra-bench` to regenerate each figure of the evaluation.
//!
//! ## The workload model
//!
//! Each of the `N` processes loops: think for β (exponential), draw a
//! request size `x ~ Uniform{1..φ}` and `x` distinct resources (uniform,
//! no repetition), request, wait for the grant, hold the resources for
//! α(x), release.  The paper specifies α ∈ [5 ms, 35 ms] growing with `x`
//! and controls load through `ρ = β / (ᾱ + γ)` — *low ρ means high load*.
//!
//! ```
//! use mra_workloads::{run, Algorithm, Scenario};
//!
//! let sc = Scenario::builder()
//!     .nodes(8)
//!     .resources(20)
//!     .max_request_size(4)
//!     .measure_secs(1.0)
//!     .seed(7)
//!     .build();
//! let res = run(Algorithm::LassLoan, &sc);
//! assert!(res.cs_completed > 0);
//! println!("use rate {:.1}%", 100.0 * res.use_rate());
//! ```

pub mod experiments;
pub mod pool;
pub mod runner;
pub mod scenario;
pub mod serve_runner;
pub mod table;
pub mod workload;

pub use pool::{configured_threads, sweep};
pub use runner::{run, Algorithm};
pub use serve_runner::{run_serve, ServeOutcome, ServeScenario};
pub use scenario::{Load, Scenario, ScenarioBuilder};
pub use table::Table;
pub use workload::PaperWorkload;
