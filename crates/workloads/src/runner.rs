//! One-call experiment runners: build the protocol fleet for an algorithm,
//! wire it to the paper workload and the simulator, run, return metrics.

use crate::scenario::Scenario;
use crate::workload::PaperWorkload;
use mra_baselines::{BouabdallahLaforest, Central, GrantPolicy, Incremental, Maddi};
use mra_core::LassConfig;
use mra_protocol::Allocator;
use mra_sim::faults::FaultPlan;
use mra_sim::reliable::Reliability;
use mra_sim::{RunResult, Sim, SimConfig};

/// The algorithms of the evaluation (paper §5) plus the extensions.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub enum Algorithm {
    /// M Naimi-Trehel locks, ascending acquisition (§2.1).
    Incremental,
    /// Bouabdallah–Laforest control token (§2.2).
    BouabdallahLaforest,
    /// The paper's algorithm, loan disabled ("Without loan").
    LassNoLoan,
    /// The paper's algorithm with the loan mechanism ("With loan",
    /// threshold from the scenario; paper uses 1).
    LassLoan,
    /// Global queue, zero network cost ("in shared memory").
    Central,
    /// First-fit variant of the central scheduler (extension).
    CentralGreedy,
    /// Broadcast baseline (extension; Maddi / multi-Suzuki-Kasami).
    Maddi,
}

impl Algorithm {
    /// Label used in tables (matches the paper's legends).
    pub fn label(&self) -> &'static str {
        match self {
            Algorithm::Incremental => "Incremental",
            Algorithm::BouabdallahLaforest => "Bouabdallah Laforest",
            Algorithm::LassNoLoan => "Without loan",
            Algorithm::LassLoan => "With loan",
            Algorithm::Central => "in shared memory",
            Algorithm::CentralGreedy => "in shared memory (greedy)",
            Algorithm::Maddi => "Maddi (broadcast)",
        }
    }

    /// The five curves of Fig. 5, in the paper's legend order.
    pub fn fig5_set() -> [Algorithm; 5] {
        [
            Algorithm::Incremental,
            Algorithm::BouabdallahLaforest,
            Algorithm::LassNoLoan,
            Algorithm::LassLoan,
            Algorithm::Central,
        ]
    }

    /// The six algorithms of the fault-robustness matrix (`fig_faults`
    /// and the fault property tests): every distinct protocol family.
    pub fn fault_set() -> [Algorithm; 6] {
        [
            Algorithm::Incremental,
            Algorithm::BouabdallahLaforest,
            Algorithm::LassNoLoan,
            Algorithm::LassLoan,
            Algorithm::Central,
            Algorithm::Maddi,
        ]
    }

    /// The three bars of Fig. 6 / Fig. 7.
    pub fn fig6_set() -> [Algorithm; 3] {
        [
            Algorithm::BouabdallahLaforest,
            Algorithm::LassNoLoan,
            Algorithm::LassLoan,
        ]
    }
}

/// Run one scenario under one algorithm.
///
/// Distributed algorithms use the scenario's LAN latency γ; the central
/// scheduler runs with zero latency and a passive coordinator node,
/// matching the paper's "no network communication" framing.
pub fn run(algo: Algorithm, sc: &Scenario) -> RunResult {
    run_with_faults(algo, sc, None)
}

/// Build the fleet, optionally install the fault plan and the reliable
/// session layer, run, collect.
///
/// Tracing arms from the environment (`MRA_TRACE` / `MRA_TRACE_FILE`, see
/// [`mra_sim::obs`]); when `MRA_TRACE_FILE` is set the merged trace is
/// written there as JSONL after the run (each run overwrites it, so point
/// it at a per-run path when sweeping).
fn launch<A: Allocator + Send>(
    nodes: Vec<A>,
    workload_slots: usize,
    sc: &Scenario,
    cfg: SimConfig,
    faults: Option<&FaultPlan>,
    reliability: Option<Reliability>,
) -> RunResult {
    let mut sim = Sim::new(nodes, PaperWorkload::per_node(sc, workload_slots), sc.m, cfg);
    if let Some(plan) = faults {
        sim.set_fault_plan(plan.clone());
    }
    if let Some(rel) = reliability {
        sim.set_reliability(rel);
    }
    sim.set_tracing(mra_sim::obs::trace_mode_from_env());
    let res = sim.run();
    if let (Some(path), Some(trace)) =
        (mra_sim::obs::trace_file_from_env(), res.obs.trace.as_ref())
    {
        if let Err(e) = mra_sim::obs::write_jsonl_file(&path, trace, &res.algo, res.n, res.m) {
            eprintln!("mra-workloads: writing trace to {path} failed: {e}");
        }
    }
    res
}

/// [`run`] with an optional [`FaultPlan`] threaded into the simulator —
/// the entry point of the fault-robustness experiments (`fig_faults`).
/// Under a lossy plan requests may starve; the degradation shows up as
/// fewer completed critical sections and a non-zero `censored` count.
pub fn run_with_faults(
    algo: Algorithm,
    sc: &Scenario,
    faults: Option<&FaultPlan>,
) -> RunResult {
    run_configured(algo, sc, faults, None)
}

/// [`run_with_faults`] plus an optional reliable-delivery session layer
/// (`mra_sim::reliable`): the entry point of the reliability ablation.
/// With reliability on, a recoverable lossy plan costs retransmission
/// overhead instead of liveness, and the simulator's deadlock check stays
/// armed.
pub fn run_configured(
    algo: Algorithm,
    sc: &Scenario,
    faults: Option<&FaultPlan>,
    reliability: Option<Reliability>,
) -> RunResult {
    match algo {
        Algorithm::Incremental => {
            let nodes = Incremental::build_nodes(sc.n, sc.m);
            launch(nodes, sc.n, sc, sc.sim_config(), faults, reliability)
        }
        Algorithm::BouabdallahLaforest => {
            let nodes = BouabdallahLaforest::build_nodes(sc.n, sc.m);
            launch(nodes, sc.n, sc, sc.sim_config(), faults, reliability)
        }
        Algorithm::LassNoLoan => {
            let mut cfg = LassConfig::without_loan(sc.n, sc.m);
            cfg.policy = sc.policy;
            launch(cfg.build_nodes(), sc.n, sc, sc.sim_config(), faults, reliability)
        }
        Algorithm::LassLoan => {
            let mut cfg = LassConfig::with_loan(sc.n, sc.m);
            cfg.policy = sc.policy;
            cfg.loan = Some(sc.loan_threshold);
            launch(cfg.build_nodes(), sc.n, sc, sc.sim_config(), faults, reliability)
        }
        Algorithm::Central | Algorithm::CentralGreedy => {
            let policy = if algo == Algorithm::Central {
                GrantPolicy::Conservative
            } else {
                GrantPolicy::Greedy
            };
            let nodes = Central::build_nodes(sc.n, policy);
            let mut cfg = sc.sim_config_zero_latency();
            cfg.active_nodes = Some(sc.n);
            // One extra (passive) workload slot for the coordinator.
            launch(nodes, sc.n + 1, sc, cfg, faults, reliability)
        }
        Algorithm::Maddi => {
            let nodes = Maddi::build_nodes(sc.n, sc.m);
            launch(nodes, sc.n, sc, sc.sim_config(), faults, reliability)
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::scenario::Load;

    fn small(phi: usize, load: Load, seed: u64) -> Scenario {
        Scenario::builder()
            .nodes(6)
            .resources(12)
            .max_request_size(phi)
            .load(load)
            .seed(seed)
            .measure_secs(1.0)
            .build()
    }

    #[test]
    fn every_algorithm_runs_the_same_scenario() {
        let sc = small(3, Load::Medium, 5);
        for algo in [
            Algorithm::Incremental,
            Algorithm::BouabdallahLaforest,
            Algorithm::LassNoLoan,
            Algorithm::LassLoan,
            Algorithm::Central,
            Algorithm::CentralGreedy,
            Algorithm::Maddi,
        ] {
            let res = run(algo, &sc);
            assert!(
                res.cs_completed > 0,
                "{:?} completed no critical sections",
                algo
            );
            let u = res.use_rate();
            assert!((0.0..=1.0).contains(&u), "{algo:?} use rate {u}");
        }
    }

    #[test]
    fn central_beats_or_matches_distributed_on_use_rate() {
        // The shared-memory scheduler has no synchronization cost: with the
        // same seed it should serve at least as well as BL at high load.
        let sc = small(4, Load::High, 11);
        let central = run(Algorithm::Central, &sc).use_rate();
        let bl = run(Algorithm::BouabdallahLaforest, &sc).use_rate();
        assert!(
            central > 0.8 * bl,
            "central {central:.3} unexpectedly far below BL {bl:.3}"
        );
    }

    #[test]
    fn faulty_run_degrades_and_clean_plan_matches_no_plan() {
        let sc = small(3, Load::High, 8);
        let bare = run(Algorithm::LassLoan, &sc);
        let clean = run_with_faults(Algorithm::LassLoan, &sc, Some(&FaultPlan::new(1)));
        assert_eq!(bare.cs_completed, clean.cs_completed);
        assert_eq!(bare.msgs_total, clean.msgs_total);
        let lossy = run_with_faults(
            Algorithm::LassLoan,
            &sc,
            Some(&FaultPlan::new(1).drop_rate(0.2)),
        );
        assert!(lossy.faults.dropped_link > 0);
        assert!(lossy.cs_completed < bare.cs_completed);
    }

    #[test]
    fn deterministic_per_algorithm() {
        let sc = small(3, Load::High, 21);
        let a = run(Algorithm::LassLoan, &sc);
        let b = run(Algorithm::LassLoan, &sc);
        assert_eq!(a.cs_completed, b.cs_completed);
        assert_eq!(a.msgs_total, b.msgs_total);
    }
}
