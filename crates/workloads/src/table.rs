//! Minimal text-table and CSV rendering for experiment output.

use std::fmt::Write as _;
use std::path::Path;

/// A simple column-aligned table that can also be written as CSV.
#[derive(Clone, Debug)]
pub struct Table {
    headers: Vec<String>,
    rows: Vec<Vec<String>>,
    title: String,
}

impl Table {
    /// New table with a title and column headers.
    pub fn new(title: &str, headers: &[&str]) -> Self {
        Table {
            headers: headers.iter().map(|s| s.to_string()).collect(),
            rows: Vec::new(),
            title: title.to_string(),
        }
    }

    /// Append a row (must match the header count).
    pub fn row(&mut self, cells: Vec<String>) {
        assert_eq!(cells.len(), self.headers.len(), "row width mismatch");
        self.rows.push(cells);
    }

    /// Number of data rows.
    pub fn len(&self) -> usize {
        self.rows.len()
    }

    /// True if no rows were added.
    pub fn is_empty(&self) -> bool {
        self.rows.is_empty()
    }

    /// Render as an aligned text table.
    pub fn render(&self) -> String {
        let mut widths: Vec<usize> = self.headers.iter().map(|h| h.len()).collect();
        for row in &self.rows {
            for (i, c) in row.iter().enumerate() {
                widths[i] = widths[i].max(c.len());
            }
        }
        let mut out = String::new();
        let _ = writeln!(out, "== {} ==", self.title);
        let line: Vec<String> = self
            .headers
            .iter()
            .enumerate()
            .map(|(i, h)| format!("{:>w$}", h, w = widths[i]))
            .collect();
        let _ = writeln!(out, "{}", line.join("  "));
        let total: usize = widths.iter().sum::<usize>() + 2 * (widths.len() - 1);
        let _ = writeln!(out, "{}", "-".repeat(total));
        for row in &self.rows {
            let line: Vec<String> = row
                .iter()
                .enumerate()
                .map(|(i, c)| format!("{:>w$}", c, w = widths[i]))
                .collect();
            let _ = writeln!(out, "{}", line.join("  "));
        }
        out
    }

    /// Render as CSV (RFC-4180-ish; quotes cells containing separators).
    pub fn to_csv(&self) -> String {
        let esc = |s: &str| {
            if s.contains(',') || s.contains('"') || s.contains('\n') {
                format!("\"{}\"", s.replace('"', "\"\""))
            } else {
                s.to_string()
            }
        };
        let mut out = String::new();
        let _ = writeln!(
            out,
            "{}",
            self.headers.iter().map(|h| esc(h)).collect::<Vec<_>>().join(",")
        );
        for row in &self.rows {
            let _ = writeln!(
                out,
                "{}",
                row.iter().map(|c| esc(c)).collect::<Vec<_>>().join(",")
            );
        }
        out
    }

    /// Write the CSV next to other experiment artifacts, creating parent
    /// directories as needed.  Returns the path written.
    pub fn write_csv(&self, path: &Path) -> std::io::Result<()> {
        if let Some(parent) = path.parent() {
            std::fs::create_dir_all(parent)?;
        }
        std::fs::write(path, self.to_csv())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample() -> Table {
        let mut t = Table::new("demo", &["phi", "algo", "use%"]);
        t.row(vec!["4".into(), "With loan".into(), "12.5".into()]);
        t.row(vec!["80".into(), "Incremental".into(), "3.1".into()]);
        t
    }

    #[test]
    fn renders_aligned() {
        let s = sample().render();
        assert!(s.contains("== demo =="));
        assert!(s.contains("phi"));
        let lines: Vec<&str> = s.lines().collect();
        // All data lines equally wide (right-aligned columns).
        assert_eq!(lines[3].len(), lines[4].len());
    }

    #[test]
    fn csv_escapes() {
        let mut t = Table::new("x", &["a", "b"]);
        t.row(vec!["with,comma".into(), "with\"quote".into()]);
        let csv = t.to_csv();
        assert!(csv.contains("\"with,comma\""));
        assert!(csv.contains("\"with\"\"quote\""));
    }

    #[test]
    #[should_panic(expected = "row width mismatch")]
    fn width_checked() {
        let mut t = Table::new("x", &["a"]);
        t.row(vec!["1".into(), "2".into()]);
    }

    #[test]
    fn csv_writes_to_disk() {
        let dir = std::env::temp_dir().join("mra_table_test");
        let path = dir.join("t.csv");
        sample().write_csv(&path).unwrap();
        let s = std::fs::read_to_string(&path).unwrap();
        assert!(s.starts_with("phi,algo,use%"));
        let _ = std::fs::remove_dir_all(&dir);
    }
}
