//! Experiment scenarios: the paper's parameter space (§5.1).

use mra_core::SchedulingPolicy;
use mra_sim::{LatencyModel, SimConfig};
use mra_types::Time;

/// The paper's two load levels.  Load is controlled by
/// `ρ = β / (ᾱ + γ)`: the *lower* ρ, the *higher* the request load.  The
/// paper does not publish its exact ρ values; these were calibrated so the
/// curve shapes of Fig. 5 are reproduced (see DESIGN.md §4).
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub enum Load {
    /// Medium load (larger think times).
    Medium,
    /// High load (requests nearly back-to-back).
    High,
}

impl Load {
    /// The calibrated ρ for this load level.
    pub fn rho(&self) -> f64 {
        match self {
            Load::Medium => 1.0,
            Load::High => 0.1,
        }
    }

    /// Label used in tables.
    pub fn label(&self) -> &'static str {
        match self {
            Load::Medium => "medium",
            Load::High => "high",
        }
    }
}

/// A full experiment configuration.
#[derive(Clone, Debug)]
pub struct Scenario {
    /// Number of (active) processes — the paper's `N` (32).
    pub n: usize,
    /// Number of resources — the paper's `M` (80).
    pub m: usize,
    /// Maximum request size — the paper's φ (1..=M).
    pub phi: usize,
    /// Minimum critical-section time (α lower bound, ms).
    pub alpha_min_ms: f64,
    /// Maximum critical-section time (α upper bound, ms).
    pub alpha_max_ms: f64,
    /// Load factor ρ = β/(ᾱ+γ); β is derived from it.
    pub rho: f64,
    /// Network latency (the paper's γ ≈ 0.6 ms).
    pub gamma: Time,
    /// Master seed.
    pub seed: u64,
    /// Simulation warmup (excluded from measurement).
    pub warmup: Time,
    /// Measurement window length.
    pub measure: Time,
    /// Drain time after the window.
    pub drain: Time,
    /// Scheduling function `A` for the LASS variants.
    pub policy: SchedulingPolicy,
    /// Loan threshold for the "with loan" variant (paper: 1).
    pub loan_threshold: usize,
    /// Resource-popularity skew: 0 = uniform (the paper's workload);
    /// `s > 0` draws resources with Zipf-like weight `1/(rank+1)^s`.
    /// Extension knob — §5.3 attributes the small-request waiting-time
    /// penalty to unevenly requested resources.
    pub skew: f64,
    /// Simulator shard count: `None` defers to the `MRA_SIM_SHARDS`
    /// environment variable at [`Scenario::sim_config`] time, `Some(k)`
    /// pins it.  The results are bit-identical either way — shards only
    /// change wall-clock time.
    pub shards: Option<usize>,
}

impl Scenario {
    /// Builder with paper defaults.
    pub fn builder() -> ScenarioBuilder {
        ScenarioBuilder::default()
    }

    /// The paper's testbed shape: N = 32, M = 80, γ = 0.6 ms,
    /// α ∈ [5, 35] ms, at the given load and φ.
    pub fn paper(load: Load, phi: usize, seed: u64) -> Scenario {
        Scenario::builder()
            .nodes(32)
            .resources(80)
            .max_request_size(phi)
            .rho(load.rho())
            .seed(seed)
            .build()
    }

    /// A scale-out shape far past the paper's testbed: the paper's
    /// workload parameters (φ = 4, medium load, γ = 0.6 ms LAN) on `n`
    /// nodes and `m` resources — the sharded-engine scenarios run this at
    /// 10 000 × 100 000.  The simulated window is deliberately short
    /// (20 ms warmup, 10 ms measurement, 0.5 s drain): at this node count
    /// a few simulated milliseconds are already millions of engine events,
    /// and the short window bounds the per-request record memory.
    pub fn large(n: usize, m: usize, seed: u64) -> Scenario {
        Scenario::builder()
            .nodes(n)
            .resources(m)
            .max_request_size(4)
            .load(Load::Medium)
            .seed(seed)
            .window(
                Time::from_millis(20),
                Time::from_millis(10),
                Time::from_millis(500),
            )
            .build()
    }

    /// Mean critical-section time ᾱ (ms): sizes are uniform on `1..=φ` and
    /// α(x) is linear from α_min to α_max, so ᾱ = (α_min + α_max)/2.
    pub fn alpha_mean_ms(&self) -> f64 {
        0.5 * (self.alpha_min_ms + self.alpha_max_ms)
    }

    /// Mean think time β = ρ·(ᾱ + γ).
    pub fn beta(&self) -> Time {
        Time::from_millis_f64(self.rho * (self.alpha_mean_ms() + self.gamma.as_millis_f64()))
    }

    /// The simulator configuration for this scenario (LAN latency).
    pub fn sim_config(&self) -> SimConfig {
        SimConfig {
            latency: LatencyModel::Constant(self.gamma),
            seed: self.seed,
            warmup: self.warmup,
            measure: self.measure,
            drain: self.drain,
            active_nodes: None,
            max_events: 400_000_000,
            shards: self.shards.unwrap_or_else(SimConfig::env_shards),
        }
    }

    /// Same but with zero-latency links (the "in shared memory" runs).
    pub fn sim_config_zero_latency(&self) -> SimConfig {
        let mut cfg = self.sim_config();
        cfg.latency = LatencyModel::Zero;
        cfg
    }
}

/// Builder for [`Scenario`] (paper defaults pre-filled).
#[derive(Clone, Debug)]
pub struct ScenarioBuilder {
    sc: Scenario,
}

impl Default for ScenarioBuilder {
    fn default() -> Self {
        ScenarioBuilder {
            sc: Scenario {
                n: 32,
                m: 80,
                phi: 4,
                alpha_min_ms: 5.0,
                alpha_max_ms: 35.0,
                rho: Load::Medium.rho(),
                gamma: Time::from_micros(600),
                seed: 1,
                warmup: Time::from_secs(2),
                measure: Time::from_secs(10),
                drain: Time::from_secs(3),
                policy: SchedulingPolicy::AvgNonZero,
                loan_threshold: 1,
                skew: 0.0,
                shards: None,
            },
        }
    }
}

impl ScenarioBuilder {
    /// Set `N`.
    pub fn nodes(mut self, n: usize) -> Self {
        self.sc.n = n;
        self
    }

    /// Set `M`.
    pub fn resources(mut self, m: usize) -> Self {
        self.sc.m = m;
        self
    }

    /// Set φ.
    pub fn max_request_size(mut self, phi: usize) -> Self {
        self.sc.phi = phi;
        self
    }

    /// Set ρ directly.
    pub fn rho(mut self, rho: f64) -> Self {
        self.sc.rho = rho;
        self
    }

    /// Set the load level (sets ρ).
    pub fn load(mut self, load: Load) -> Self {
        self.sc.rho = load.rho();
        self
    }

    /// Set the CS-time range in milliseconds.
    pub fn alpha_ms(mut self, min: f64, max: f64) -> Self {
        self.sc.alpha_min_ms = min;
        self.sc.alpha_max_ms = max;
        self
    }

    /// Set γ.
    pub fn gamma(mut self, gamma: Time) -> Self {
        self.sc.gamma = gamma;
        self
    }

    /// Set the seed.
    pub fn seed(mut self, seed: u64) -> Self {
        self.sc.seed = seed;
        self
    }

    /// Set the measurement window in (fractional) seconds.
    pub fn measure_secs(mut self, s: f64) -> Self {
        self.sc.measure = Time::from_secs_f64(s);
        self.sc.warmup = Time::from_secs_f64(s * 0.2);
        self.sc.drain = Time::from_secs_f64((s * 0.3).max(0.5));
        self
    }

    /// Set the scheduling policy.
    pub fn policy(mut self, p: SchedulingPolicy) -> Self {
        self.sc.policy = p;
        self
    }

    /// Set the loan threshold.
    pub fn loan_threshold(mut self, t: usize) -> Self {
        self.sc.loan_threshold = t;
        self
    }

    /// Set the resource-popularity skew (0 = uniform).
    pub fn skew(mut self, s: f64) -> Self {
        self.sc.skew = s;
        self
    }

    /// Pin the simulator shard count (default: the `MRA_SIM_SHARDS`
    /// environment variable, falling back to 1).
    pub fn shards(mut self, k: usize) -> Self {
        self.sc.shards = Some(k);
        self
    }

    /// Set the warmup / measurement / drain window explicitly (the
    /// large-scale scenarios use short windows — at 10 000 nodes even a
    /// few simulated milliseconds are millions of events).
    pub fn window(mut self, warmup: Time, measure: Time, drain: Time) -> Self {
        self.sc.warmup = warmup;
        self.sc.measure = measure;
        self.sc.drain = drain;
        self
    }

    /// Finalize.
    pub fn build(self) -> Scenario {
        let sc = self.sc;
        assert!(sc.n >= 1 && sc.m >= 1);
        assert!(sc.phi >= 1 && sc.phi <= sc.m, "φ must be in 1..=M");
        assert!(sc.alpha_min_ms > 0.0 && sc.alpha_max_ms >= sc.alpha_min_ms);
        assert!(sc.rho > 0.0);
        sc
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn paper_defaults() {
        let sc = Scenario::paper(Load::High, 4, 9);
        assert_eq!(sc.n, 32);
        assert_eq!(sc.m, 80);
        assert_eq!(sc.phi, 4);
        assert_eq!(sc.gamma, Time::from_micros(600));
        assert!((sc.alpha_mean_ms() - 20.0).abs() < 1e-9);
        // β = 0.1 × (20 + 0.6) ms = 2.06 ms
        assert_eq!(sc.beta(), Time::from_micros(2060));
    }

    #[test]
    fn load_levels_order() {
        assert!(Load::High.rho() < Load::Medium.rho());
    }

    #[test]
    #[should_panic(expected = "φ must be in 1..=M")]
    fn phi_bounds_checked() {
        Scenario::builder().resources(10).max_request_size(11).build();
    }

    #[test]
    fn builder_round_trip() {
        let sc = Scenario::builder()
            .nodes(8)
            .resources(20)
            .max_request_size(5)
            .rho(1.5)
            .seed(3)
            .measure_secs(2.0)
            .build();
        assert_eq!(sc.n, 8);
        assert_eq!(sc.m, 20);
        assert_eq!(sc.phi, 5);
        assert_eq!(sc.measure, Time::from_secs(2));
        assert!(sc.warmup > Time::ZERO);
    }
}
