//! Per-figure experiment definitions (the reproduction index of DESIGN.md).
//!
//! Each `figN` function runs the corresponding sweep of the paper's
//! evaluation and returns both structured rows and a rendered [`Table`]
//! whose series match what the figure plots.  The `mra-bench` binaries and
//! bench targets are thin wrappers around these functions.
//!
//! Runtime scaling: the full paper grid at 32×80 takes minutes; set
//! `MRA_FAST=1` (or `MRA_MEASURE_SECS=<s>`) to shrink the measurement
//! window for smoke runs.  Every sweep fans its grid points across cores
//! via [`pool::sweep`] (all runs are independent and individually seeded;
//! results come back in input order, so output is byte-identical to a
//! sequential run) — control the worker count with `MRA_THREADS`.

use crate::pool;
use crate::runner::{run, run_configured, Algorithm};
use crate::scenario::{Load, Scenario};
use crate::table::Table;
use mra_sim::faults::FaultPlan;
use mra_sim::reliable::Reliability;
use mra_sim::WaitStats;
use mra_types::Time;

/// Measurement window (seconds) honoring `MRA_MEASURE_SECS` / `MRA_FAST`,
/// for the figure sweeps (10 s full, 2 s fast).
pub fn measure_secs_default() -> f64 {
    env_measure_secs().unwrap_or_else(|| if mra_fast() { 2.0 } else { 10.0 })
}

/// Measurement window for callers with their own default: `MRA_MEASURE_SECS`
/// wins outright, `MRA_FAST=1` quarters the default (floor 0.2 s), otherwise
/// the default stands. Examples and smoke tests route through this so CI can
/// shrink every simulation window with one environment variable.
pub fn measure_secs_or(default: f64) -> f64 {
    env_measure_secs().unwrap_or_else(|| {
        if mra_fast() {
            (default / 4.0).max(0.2)
        } else {
            default
        }
    })
}

/// `MRA_FAST` is on when set to anything but `""`/`"0"` — the same rule the
/// vendored proptest and criterion stand-ins apply, so one variable means
/// one thing across the workspace.
fn mra_fast() -> bool {
    std::env::var("MRA_FAST").is_ok_and(|v| !v.is_empty() && v != "0")
}

/// `MRA_MEASURE_SECS` if set and numeric, clamped to a 0.1 s floor.
fn env_measure_secs() -> Option<f64> {
    std::env::var("MRA_MEASURE_SECS")
        .ok()
        .and_then(|s| s.parse::<f64>().ok())
        .map(|v| v.max(0.1))
}

/// The φ grid used for Fig. 5 (the paper sweeps 1..80; this grid samples
/// it with extra density at small sizes where the curves cross).
pub const FIG5_PHIS: [usize; 11] = [1, 2, 4, 8, 12, 16, 20, 28, 40, 56, 80];

/// One point of Fig. 5.
#[derive(Clone, Debug)]
pub struct Fig5Row {
    /// Load level.
    pub load: Load,
    /// Maximum request size φ.
    pub phi: usize,
    /// Algorithm.
    pub algo: Algorithm,
    /// Resource use rate in percent (the figure's y axis).
    pub use_rate_pct: f64,
    /// Messages per critical section (extra column, §2's complexity talk).
    pub msgs_per_cs: f64,
    /// Critical sections completed in the window.
    pub cs_completed: u64,
}

/// Fig. 5: resource use rate vs maximum request size, for each load level
/// and each of the five algorithms.  Grid points run in parallel
/// (`MRA_THREADS` workers); row order matches the sequential nested loop.
pub fn fig5(loads: &[Load], phis: &[usize], seed: u64, measure_secs: f64) -> Vec<Fig5Row> {
    let mut grid = Vec::new();
    for &load in loads {
        for &phi in phis {
            for algo in Algorithm::fig5_set() {
                grid.push((load, phi, algo));
            }
        }
    }
    pool::sweep(grid, |(load, phi, algo)| {
        let sc = Scenario::builder()
            .load(load)
            .max_request_size(phi)
            .seed(seed)
            .measure_secs(measure_secs)
            .build();
        let res = run(algo, &sc);
        Fig5Row {
            load,
            phi,
            algo,
            use_rate_pct: 100.0 * res.use_rate(),
            msgs_per_cs: res.msgs_per_cs(),
            cs_completed: res.cs_completed,
        }
    })
}

/// Render Fig. 5 rows in the paper's layout: one row per φ, one column per
/// algorithm, one table per load level.
pub fn fig5_tables(rows: &[Fig5Row]) -> Vec<Table> {
    let mut tables = Vec::new();
    for load in [Load::Medium, Load::High] {
        let sub: Vec<&Fig5Row> = rows.iter().filter(|r| r.load == load).collect();
        if sub.is_empty() {
            continue;
        }
        let mut t = Table::new(
            &format!("Fig.5({}) resource use rate [%] vs max request size", load.label()),
            &[
                "phi",
                "Incremental",
                "Bouabdallah Laforest",
                "Without loan",
                "With loan",
                "in shared memory",
                "lass/BL ratio",
            ],
        );
        let mut phis: Vec<usize> = sub.iter().map(|r| r.phi).collect();
        phis.sort_unstable();
        phis.dedup();
        for phi in phis {
            let get = |a: Algorithm| {
                sub.iter()
                    .find(|r| r.phi == phi && r.algo == a)
                    .map(|r| r.use_rate_pct)
                    .unwrap_or(f64::NAN)
            };
            let bl = get(Algorithm::BouabdallahLaforest);
            let lass = get(Algorithm::LassLoan);
            t.row(vec![
                phi.to_string(),
                format!("{:.1}", get(Algorithm::Incremental)),
                format!("{:.1}", bl),
                format!("{:.1}", get(Algorithm::LassNoLoan)),
                format!("{:.1}", lass),
                format!("{:.1}", get(Algorithm::Central)),
                if bl > 0.0 {
                    format!("{:.2}x", lass / bl)
                } else {
                    "-".into()
                },
            ]);
        }
        tables.push(t);
    }
    tables
}

/// One bar of Fig. 6 (average waiting time at φ = 4).
#[derive(Clone, Debug)]
pub struct Fig6Row {
    /// Load level.
    pub load: Load,
    /// Algorithm.
    pub algo: Algorithm,
    /// Waiting-time statistics (mean is the bar, std the error bar).
    pub wait: WaitStats,
    /// Requests never granted before the horizon (honesty column).
    pub censored: u64,
}

/// Fig. 6: average waiting time, φ = 4, for BL and both LASS variants.
/// Runs the (load, algorithm) grid in parallel, input order preserved.
pub fn fig6(loads: &[Load], seed: u64, measure_secs: f64) -> Vec<Fig6Row> {
    let mut grid = Vec::new();
    for &load in loads {
        for algo in Algorithm::fig6_set() {
            grid.push((load, algo));
        }
    }
    pool::sweep(grid, |(load, algo)| {
        let sc = Scenario::builder()
            .load(load)
            .max_request_size(4)
            .seed(seed)
            .measure_secs(measure_secs)
            .build();
        let res = run(algo, &sc);
        Fig6Row {
            load,
            algo,
            wait: res.wait_stats(),
            censored: res.censored,
        }
    })
}

/// Render Fig. 6 rows.
pub fn fig6_table(rows: &[Fig6Row]) -> Table {
    let mut t = Table::new(
        "Fig.6 average waiting time (phi = 4)",
        &[
            "load", "algorithm", "mean [ms]", "std [ms]", "median", "p95", "p99", "p999", "n",
            "censored",
        ],
    );
    for r in rows {
        t.row(vec![
            r.load.label().into(),
            r.algo.label().into(),
            WaitStats::cell(r.wait.mean_ms, 1),
            WaitStats::cell(r.wait.std_ms, 1),
            WaitStats::cell(r.wait.median_ms, 1),
            WaitStats::cell(r.wait.p95_ms, 1),
            WaitStats::cell(r.wait.p99_ms, 1),
            WaitStats::cell(r.wait.p999_ms, 1),
            r.wait.count.to_string(),
            r.censored.to_string(),
        ]);
    }
    t
}

/// One bar group of Fig. 7 (waiting time by request-size bucket, φ = 80).
#[derive(Clone, Debug)]
pub struct Fig7Row {
    /// Load level.
    pub load: Load,
    /// Algorithm.
    pub algo: Algorithm,
    /// Bucket lower bound (the figure labels 1res, 17res, ..).
    pub size_lo: usize,
    /// Bucket upper bound.
    pub size_hi: usize,
    /// Waiting-time statistics for requests of that size range.
    pub wait: WaitStats,
}

/// Fig. 7: average waiting time split into 6 request-size buckets
/// (1,17,33,49,65,80 — the paper's labels are our bucket lower bounds
/// rounded to its grid), φ = 80.
pub fn fig7(loads: &[Load], seed: u64, measure_secs: f64) -> Vec<Fig7Row> {
    let mut grid = Vec::new();
    for &load in loads {
        for algo in Algorithm::fig6_set() {
            grid.push((load, algo));
        }
    }
    let per_point = pool::sweep(grid, |(load, algo)| {
        let sc = Scenario::builder()
            .load(load)
            .max_request_size(80)
            .seed(seed)
            .measure_secs(measure_secs)
            .build();
        let res = run(algo, &sc);
        res.wait_buckets(80, 6)
            .into_iter()
            .map(|(lo, hi, wait)| Fig7Row {
                load,
                algo,
                size_lo: lo,
                size_hi: hi,
                wait,
            })
            .collect::<Vec<_>>()
    });
    per_point.into_iter().flatten().collect()
}

/// Render Fig. 7 rows: one table per load level.
pub fn fig7_tables(rows: &[Fig7Row]) -> Vec<Table> {
    let mut tables = Vec::new();
    for load in [Load::Medium, Load::High] {
        let sub: Vec<&Fig7Row> = rows.iter().filter(|r| r.load == load).collect();
        if sub.is_empty() {
            continue;
        }
        let mut t = Table::new(
            &format!("Fig.7({}) waiting time by request size (phi = 80)", load.label()),
            &["algorithm", "sizes", "mean [ms]", "std [ms]", "n"],
        );
        for r in &sub {
            t.row(vec![
                r.algo.label().into(),
                format!("{}-{}", r.size_lo, r.size_hi),
                WaitStats::cell(r.wait.mean_ms, 1),
                WaitStats::cell(r.wait.std_ms, 1),
                r.wait.count.to_string(),
            ]);
        }
        tables.push(t);
    }
    tables
}

/// The loss-rate grid of the fault-robustness ablation (`fig_faults`).
/// With the session layer **off** the protocols have no retransmission
/// (the paper assumes reliable links), so under *sustained* loss every
/// node eventually hits a fatal drop on its request path and starves: the
/// per-mille points show partial degradation before the collapse cliff.
/// With the session layer **on**, losses are recovered at retransmission
/// cost, so the grid extends into the percent range where the overhead
/// curve becomes visible.  0 anchors the degradation baselines.  (The
/// fault *property tests* separately push drops to 20% on short quota
/// workloads.)
pub const FIG_FAULTS_LOSSES: [f64; 8] =
    [0.0, 1e-4, 5e-4, 2e-3, 1e-2, 5e-2, 1e-1, 2e-1];

/// One point of the fault sweep: one algorithm at one loss rate, with the
/// reliable session layer on or off.
#[derive(Clone, Debug)]
pub struct FaultRow {
    /// Per-link frame drop probability.
    pub loss: f64,
    /// Was the reliable-delivery session layer enabled?
    pub reliable: bool,
    /// Algorithm.
    pub algo: Algorithm,
    /// Critical sections completed in the window.
    pub cs_completed: u64,
    /// Completed CS per simulated second (the throughput the degradation
    /// column is computed from).
    pub cs_per_sec: f64,
    /// Requests issued in the window but never granted (starved by loss).
    pub censored: u64,
    /// Frames the fault layer dropped.
    pub dropped: u64,
    /// Data frames re-sent by retransmit timers (0 with reliability off).
    pub retransmits: u64,
    /// Ack frames: standalone + piggybacked (0 with reliability off).
    pub acks: u64,
    /// Session-layer wire overhead: `(retransmits + standalone acks) /
    /// data frames`, in percent (0 with reliability off).
    pub overhead_pct: f64,
    /// Throughput lost vs the same algorithm-and-mode's zero-loss
    /// baseline, in percent (0 at the baseline itself; `NaN` if the
    /// baseline is empty).
    pub degradation_pct: f64,
    /// Waiting-time statistics of the granted requests; loss fattens the
    /// tail (p99/p999) long before it moves the mean.  All-`NaN`
    /// percentiles when every request starved (rendered `"n/a"`).
    pub wait: WaitStats,
}

/// The [`Reliability`] used by the sweep's reliability-on mode: default
/// 10 ms RTO, overridable through `MRA_RTO_MS` (fractional milliseconds).
pub fn sweep_reliability() -> Reliability {
    Reliability::with_rto(Reliability::env_rto_or(Time::from_millis(10)))
}

/// Fault-robustness ablation: loss rate × reliability mode × algorithm
/// (all six protocol families) on an 8-node paper-LAN scenario, measuring
/// CS-throughput degradation as the network loses frames — and how much of
/// it the reliable session layer (`mra_sim::reliable`) buys back, at what
/// retransmission overhead.  `fault_seed` seeds the deterministic drop
/// decisions (`MRA_FAULT_SEED` in the binary); the workload seed stays
/// separate so loss is the *only* difference between grid columns.  Grid
/// points run in parallel (`MRA_THREADS`), output in input order.
pub fn fig_faults(
    losses: &[f64],
    modes: &[bool],
    seed: u64,
    fault_seed: u64,
    measure_secs: f64,
) -> Vec<FaultRow> {
    let mut grid = Vec::new();
    for &loss in losses {
        for &reliable in modes {
            for algo in Algorithm::fault_set() {
                grid.push((loss, reliable, algo));
            }
        }
    }
    let mut rows = pool::sweep(grid, |(loss, reliable, algo)| {
        let sc = Scenario::builder()
            .nodes(8)
            .resources(16)
            .max_request_size(3)
            .load(Load::High)
            .seed(seed)
            .measure_secs(measure_secs)
            .build();
        let plan = FaultPlan::new(fault_seed).drop_rate(loss);
        let rel = reliable.then(sweep_reliability);
        let res = run_configured(algo, &sc, Some(&plan), rel);
        FaultRow {
            loss,
            reliable,
            algo,
            cs_completed: res.cs_completed,
            // Normalized by the *nominal* window, not `res.window`: when
            // every node starves early the collector clamps the window to
            // the death instant, which would inflate the rate of a run
            // that did almost no work.
            cs_per_sec: res.cs_completed as f64 / measure_secs,
            censored: res.censored,
            dropped: res.faults.dropped_total(),
            retransmits: res.reliability.retransmits,
            acks: res.reliability.acks_sent + res.reliability.acks_piggybacked,
            overhead_pct: res.reliability.overhead_pct(),
            degradation_pct: f64::NAN, // filled below against the baseline
            wait: res.wait_stats(),
        }
    });
    // Baseline per (algorithm, mode): the row at the smallest swept loss
    // rate (conventionally 0).
    let base_loss = losses.iter().copied().fold(f64::INFINITY, f64::min);
    for algo in Algorithm::fault_set() {
        for &reliable in modes {
            let base = rows
                .iter()
                .find(|r| r.algo == algo && r.reliable == reliable && r.loss == base_loss)
                .map(|r| r.cs_per_sec)
                .unwrap_or(0.0);
            for r in rows
                .iter_mut()
                .filter(|r| r.algo == algo && r.reliable == reliable)
            {
                r.degradation_pct = if base > 0.0 {
                    100.0 * (1.0 - r.cs_per_sec / base)
                } else {
                    f64::NAN
                };
            }
        }
    }
    rows
}

/// The long-format CSV of the fault ablation: one row per (loss, mode,
/// algorithm) point.  The `fig_faults` binary writes exactly this table
/// and the sweep-determinism test compares exactly this table, so the
/// bytes the test certifies are the bytes that ship.
pub fn fig_faults_csv(rows: &[FaultRow]) -> Table {
    let mut csv = Table::new(
        "fig_faults",
        &[
            "loss",
            "reliable",
            "algorithm",
            "cs_completed",
            "cs_per_sec",
            "degradation_pct",
            "censored",
            "dropped_frames",
            "retransmits",
            "acks",
            "overhead_pct",
            "wait_mean_ms",
            "wait_p99_ms",
            "wait_p999_ms",
        ],
    );
    for r in rows {
        csv.row(vec![
            // 5 decimals: the interesting grid is per-mille and below.
            format!("{:.5}", r.loss),
            if r.reliable { "on".into() } else { "off".into() },
            r.algo.label().into(),
            r.cs_completed.to_string(),
            format!("{:.2}", r.cs_per_sec),
            format!("{:.2}", r.degradation_pct),
            r.censored.to_string(),
            r.dropped.to_string(),
            r.retransmits.to_string(),
            r.acks.to_string(),
            format!("{:.2}", r.overhead_pct),
            WaitStats::cell(r.wait.mean_ms, 2),
            WaitStats::cell(r.wait.p99_ms, 2),
            WaitStats::cell(r.wait.p999_ms, 2),
        ]);
    }
    csv
}

/// Render the fault ablation in matrix layout: one row per (loss rate,
/// reliability mode), one column per algorithm showing
/// `cs_completed (degradation%)`.
pub fn fig_faults_table(rows: &[FaultRow]) -> Table {
    let mut header: Vec<String> = vec!["loss".into(), "reliable".into()];
    header.extend(Algorithm::fault_set().iter().map(|a| a.label().to_string()));
    let header_refs: Vec<&str> = header.iter().map(|s| s.as_str()).collect();
    let mut t = Table::new(
        "fig_faults: CS throughput degradation vs frame loss (reliability ablation)",
        &header_refs,
    );
    let mut keys: Vec<(u64, bool)> = rows
        .iter()
        .map(|r| (r.loss.to_bits(), r.reliable))
        .collect();
    keys.sort_by(|a, b| {
        f64::from_bits(a.0)
            .total_cmp(&f64::from_bits(b.0))
            .then(a.1.cmp(&b.1))
    });
    keys.dedup();
    for (loss_bits, reliable) in keys {
        let loss = f64::from_bits(loss_bits);
        let mut cells = vec![
            format!("{:.3}%", 100.0 * loss),
            if reliable { "on".into() } else { "off".into() },
        ];
        for algo in Algorithm::fault_set() {
            let cell = rows
                .iter()
                .find(|r| r.loss == loss && r.reliable == reliable && r.algo == algo)
                .map(|r| {
                    if r.degradation_pct.is_nan() {
                        format!("{} (-)", r.cs_completed)
                    } else {
                        format!("{} (-{:.0}%)", r.cs_completed, r.degradation_pct.max(0.0))
                    }
                })
                .unwrap_or_else(|| "-".into());
            cells.push(cell);
        }
        t.row(cells);
    }
    t
}

/// Loan-threshold ablation (the paper's §6 future work): use rate and mean
/// wait as the threshold grows, at a given φ and load.
pub fn ablation_loan(
    thresholds: &[usize],
    phi: usize,
    load: Load,
    seed: u64,
    measure_secs: f64,
) -> Table {
    let mut t = Table::new(
        &format!(
            "Loan threshold ablation (phi = {phi}, {} load)",
            load.label()
        ),
        &["threshold", "use rate [%]", "mean wait [ms]", "loan msgs/cs"],
    );
    let rows = pool::sweep(thresholds.to_vec(), |th| {
        let sc = Scenario::builder()
            .load(load)
            .max_request_size(phi)
            .seed(seed)
            .loan_threshold(th.max(1))
            .measure_secs(measure_secs)
            .build();
        let algo = if th == 0 {
            Algorithm::LassNoLoan
        } else {
            Algorithm::LassLoan
        };
        let res = run(algo, &sc);
        let loan_msgs = res
            .msg_by_kind
            .iter()
            .find(|(k, _)| *k == "ReqLoan")
            .map(|(_, c)| *c)
            .unwrap_or(0);
        let per_cs = if res.cs_completed > 0 {
            loan_msgs as f64 / res.cs_completed as f64
        } else {
            0.0
        };
        vec![
            if th == 0 { "off".into() } else { th.to_string() },
            format!("{:.1}", 100.0 * res.use_rate()),
            format!("{:.1}", res.wait_stats().mean_ms),
            format!("{:.3}", per_cs),
        ]
    });
    for row in rows {
        t.row(row);
    }
    t
}

/// Scheduling-policy (`A` function) ablation: use rate across policies.
pub fn ablation_policy(phi: usize, load: Load, seed: u64, measure_secs: f64) -> Table {
    use mra_core::SchedulingPolicy;
    let mut t = Table::new(
        &format!("Policy A ablation (phi = {phi}, {} load)", load.label()),
        &["policy", "use rate [%]", "mean wait [ms]", "p95 wait [ms]", "p99 wait [ms]"],
    );
    let rows = pool::sweep(SchedulingPolicy::all().to_vec(), |policy| {
        let sc = Scenario::builder()
            .load(load)
            .max_request_size(phi)
            .seed(seed)
            .policy(policy)
            .measure_secs(measure_secs)
            .build();
        let res = run(Algorithm::LassLoan, &sc);
        let w = res.wait_stats();
        vec![
            policy.name().into(),
            format!("{:.1}", 100.0 * res.use_rate()),
            WaitStats::cell(w.mean_ms, 1),
            WaitStats::cell(w.p95_ms, 1),
            WaitStats::cell(w.p99_ms, 1),
        ]
    });
    for row in rows {
        t.row(row);
    }
    t
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Tiny smoke versions of every figure (scaled-down N/M via env would
    /// complicate determinism; instead we run the real shape very briefly).
    #[test]
    fn fig5_smoke() {
        let rows = fig5(&[Load::High], &[2], 3, 0.3);
        assert_eq!(rows.len(), 5);
        let tables = fig5_tables(&rows);
        assert_eq!(tables.len(), 1);
        assert!(tables[0].render().contains("Fig.5(high)"));
    }

    #[test]
    fn fig6_smoke() {
        let rows = fig6(&[Load::Medium], 3, 0.3);
        assert_eq!(rows.len(), 3);
        let t = fig6_table(&rows);
        assert_eq!(t.len(), 3);
    }

    #[test]
    fn fig7_smoke() {
        let rows = fig7(&[Load::Medium], 3, 0.3);
        // 3 algorithms × 6 buckets
        assert_eq!(rows.len(), 18);
        let ts = fig7_tables(&rows);
        assert_eq!(ts.len(), 1);
    }

    #[test]
    fn measure_default_is_positive() {
        assert!(measure_secs_default() > 0.0);
    }

    #[test]
    fn fig_faults_smoke() {
        let rows = fig_faults(&[0.0, 0.01], &[false, true], 3, 0xFA17, 0.4);
        // 2 loss rates × 2 modes × 6 algorithms.
        assert_eq!(rows.len(), 24);
        for r in rows.iter().filter(|r| r.loss == 0.0) {
            assert_eq!(r.dropped, 0);
            assert!((r.degradation_pct - 0.0).abs() < 1e-9, "baseline degrades");
        }
        for r in rows.iter().filter(|r| r.loss > 0.0) {
            assert!(r.dropped > 0, "{:?} saw no drops at 1% loss", r.algo);
        }
        for r in rows.iter().filter(|r| !r.reliable) {
            assert_eq!(r.retransmits, 0);
            assert_eq!(r.overhead_pct, 0.0);
        }
        let cs = |loss: f64, reliable: bool, algo: Algorithm| {
            rows.iter()
                .find(|r| r.loss == loss && r.reliable == reliable && r.algo == algo)
                .unwrap()
                .cs_completed
        };
        // Sustained 1% loss is far past the collapse cliff of the
        // retransmission-free protocols: throughput must suffer...
        assert!(cs(0.01, false, Algorithm::LassLoan) < cs(0.0, false, Algorithm::LassLoan));
        // ...and the session layer must buy a large part of it back.
        assert!(
            cs(0.01, true, Algorithm::LassLoan) > cs(0.01, false, Algorithm::LassLoan),
            "reliability recovered nothing"
        );
        let lossy_reliable = rows
            .iter()
            .find(|r| r.loss > 0.0 && r.reliable && r.algo == Algorithm::LassLoan)
            .unwrap();
        assert!(lossy_reliable.retransmits > 0);
        assert!(lossy_reliable.overhead_pct > 0.0);
        let table = fig_faults_table(&rows).render();
        assert!(table.contains("fig_faults"), "{table}");
        assert!(table.contains("1.000%"), "{table}");
        assert!(table.contains("reliable"), "{table}");
    }
}
