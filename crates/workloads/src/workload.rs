//! The paper's request generator (§5.1) as a [`Workload`] implementation.

use crate::scenario::Scenario;
use mra_sim::Workload;
use mra_types::{ResourceSet, Time};
use rand::rngs::StdRng;
use rand::Rng;

/// Per-node workload with the paper's parameters.
///
/// * think time β: exponential with mean `ρ·(ᾱ+γ)`;
/// * request size `x`: uniform on `1..=φ`;
/// * resource set: `x` distinct resources, uniform over `M`;
/// * CS time α(x): linear from α_min (x = 1) to α_max (x = φ), with ±10 %
///   multiplicative jitter — the paper states only that α ∈ [5, 35] ms and
///   grows stochastically with `x`; the linear law preserves both while
///   keeping ᾱ = (α_min+α_max)/2 independent of φ (so ρ keeps its meaning
///   across the φ sweep of Fig. 5).
#[derive(Clone, Debug)]
pub struct PaperWorkload {
    m: usize,
    phi: usize,
    alpha_min: Time,
    alpha_max: Time,
    beta: Time,
    /// Cumulative popularity weights (empty = uniform).
    cum_weights: Vec<f64>,
}

impl PaperWorkload {
    /// Build from a scenario.
    pub fn new(sc: &Scenario) -> Self {
        let cum_weights = if sc.skew > 0.0 {
            let mut acc = 0.0;
            (0..sc.m)
                .map(|r| {
                    acc += 1.0 / ((r + 1) as f64).powf(sc.skew);
                    acc
                })
                .collect()
        } else {
            Vec::new()
        };
        PaperWorkload {
            m: sc.m,
            phi: sc.phi,
            alpha_min: Time::from_millis_f64(sc.alpha_min_ms),
            alpha_max: Time::from_millis_f64(sc.alpha_max_ms),
            beta: sc.beta(),
            cum_weights,
        }
    }

    /// Draw one resource id according to the popularity weights.
    fn draw_resource(&self, rng: &mut StdRng) -> usize {
        if self.cum_weights.is_empty() {
            return rng.gen_range(0..self.m);
        }
        let total = *self.cum_weights.last().expect("non-empty");
        let u: f64 = rng.gen_range(0.0..total);
        self.cum_weights.partition_point(|&c| c <= u).min(self.m - 1)
    }

    /// One workload instance per node.
    pub fn per_node(sc: &Scenario, n: usize) -> Vec<PaperWorkload> {
        (0..n).map(|_| PaperWorkload::new(sc)).collect()
    }

    /// α(x): linear interpolation over the size range, before jitter.
    fn alpha_base(&self, x: usize) -> Time {
        if self.phi <= 1 {
            return self.alpha_min;
        }
        let f = (x - 1) as f64 / (self.phi - 1) as f64;
        let lo = self.alpha_min.as_secs_f64();
        let hi = self.alpha_max.as_secs_f64();
        Time::from_secs_f64(lo + (hi - lo) * f)
    }
}

impl Workload for PaperWorkload {
    fn think_time(&mut self, rng: &mut StdRng) -> Time {
        // Exponential(mean β) via inverse CDF; clamp u away from 1.
        let u: f64 = rng.gen_range(0.0..1.0f64);
        let t = -self.beta.as_secs_f64() * (1.0 - u).max(1e-12).ln();
        Time::from_secs_f64(t)
    }

    fn next_request(&mut self, rng: &mut StdRng) -> (ResourceSet, Time) {
        let x = rng.gen_range(1..=self.phi);
        let mut set = ResourceSet::new();
        while set.len() < x {
            set.insert(self.draw_resource(rng));
        }
        let jitter = rng.gen_range(0.9..=1.1f64);
        (set, self.alpha_base(x).mul_f64(jitter))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::scenario::{Load, Scenario};
    use rand::SeedableRng;

    fn wl(phi: usize) -> PaperWorkload {
        PaperWorkload::new(&Scenario::paper(Load::Medium, phi, 1))
    }

    #[test]
    fn request_sizes_uniform_in_range() {
        let mut w = wl(8);
        let mut rng = StdRng::seed_from_u64(5);
        let mut counts = vec![0usize; 9];
        for _ in 0..8000 {
            let (set, _) = w.next_request(&mut rng);
            assert!((1..=8).contains(&set.len()));
            counts[set.len()] += 1;
        }
        // Roughly uniform: every size appears a healthy number of times.
        for c in &counts[1..=8] {
            assert!(*c > 700, "size distribution skewed: {counts:?}");
        }
    }

    #[test]
    fn alpha_scales_with_size() {
        let mut w = wl(80);
        let mut rng = StdRng::seed_from_u64(6);
        let mut small = Vec::new();
        let mut large = Vec::new();
        for _ in 0..4000 {
            let (set, cs) = w.next_request(&mut rng);
            if set.len() <= 8 {
                small.push(cs.as_millis_f64());
            } else if set.len() >= 72 {
                large.push(cs.as_millis_f64());
            }
        }
        let avg = |v: &[f64]| v.iter().sum::<f64>() / v.len() as f64;
        assert!(avg(&large) > 3.0 * avg(&small));
        // Bounds with jitter: [0.9·5, 1.1·35] ms.
        for &ms in small.iter().chain(large.iter()) {
            assert!((4.4..=38.6).contains(&ms), "α out of range: {ms}");
        }
    }

    #[test]
    fn think_time_mean_matches_beta() {
        let sc = Scenario::paper(Load::High, 4, 1);
        let mut w = PaperWorkload::new(&sc);
        let mut rng = StdRng::seed_from_u64(7);
        let n = 20_000;
        let total: f64 = (0..n)
            .map(|_| w.think_time(&mut rng).as_secs_f64())
            .sum();
        let mean = total / n as f64;
        let beta = sc.beta().as_secs_f64();
        assert!(
            (mean - beta).abs() < 0.05 * beta,
            "mean think {mean} vs β {beta}"
        );
    }

    #[test]
    fn single_resource_phi() {
        let mut w = wl(1);
        let mut rng = StdRng::seed_from_u64(8);
        for _ in 0..100 {
            let (set, cs) = w.next_request(&mut rng);
            assert_eq!(set.len(), 1);
            // α(1) = α_min ± 10 %
            let ms = cs.as_millis_f64();
            assert!((4.4..=5.6).contains(&ms));
        }
    }
}
