//! One-call serving experiments: an open-loop [`ServeWorkload`] fleet
//! driving any of the evaluation's algorithms through the simulator.
//!
//! This mirrors [`runner`](crate::runner) — same fleet construction per
//! algorithm, same fault/reliability plumbing — but swaps the closed-loop
//! [`PaperWorkload`](crate::workload::PaperWorkload) for the serving
//! layer's admission front end, and returns the serving-side accounting
//! (offered/admitted/shed, arrival-keyed latency histograms) next to the
//! engine's [`RunResult`].

use crate::runner::Algorithm;
use crate::scenario::Scenario;
use mra_baselines::{BouabdallahLaforest, Central, GrantPolicy, Incremental, Maddi};
use mra_core::LassConfig;
use mra_protocol::Allocator;
use mra_serve::{check_conservation, ServeConfig, ServeStats, ServeWorkload, SharedServeStats};
use mra_sim::faults::FaultPlan;
use mra_sim::reliable::Reliability;
use mra_sim::{RunResult, Sim, SimConfig};
use mra_types::Time;

/// A serving experiment: engine topology and timing from the [`Scenario`],
/// arrival process and admission policy from the [`ServeConfig`].
///
/// The serve config's request shape is overridden with the scenario's
/// `m`/`phi` so both layers agree on the resource universe.
#[derive(Clone, Debug)]
pub struct ServeScenario {
    pub sc: Scenario,
    pub serve: ServeConfig,
}

impl ServeScenario {
    pub fn new(sc: Scenario, mut serve: ServeConfig) -> Self {
        serve.shape.m = sc.m;
        serve.shape.phi = sc.phi.max(1);
        serve.seed ^= sc.seed.rotate_left(17);
        ServeScenario { sc, serve }
    }
}

/// Result of a serving run: engine metrics plus fleet-merged serving
/// accounting, with the end-of-run queue/in-flight split derivable from
/// the counters.
#[derive(Debug)]
pub struct ServeOutcome {
    /// Engine-side metrics (issue-keyed `wait_stats`, arrival-keyed
    /// `serve_stats`, message counts, …).
    pub result: RunResult,
    /// Fleet-merged serving-layer accounting.
    pub serve: ServeStats,
    /// Virtual time during which nodes issue (warmup + measurement
    /// window) — the denominator of the offered/goodput rates, so the two
    /// share a span and `goodput ≤ offered` follows from conservation.
    pub span: Time,
}

impl ServeOutcome {
    /// Requests still waiting in admission queues when the run ended.
    pub fn queued_end(&self) -> u64 {
        self.serve.admitted - self.serve.batched_reqs
    }

    /// Requests issued to the allocator but not yet released at run end.
    pub fn inflight_end(&self) -> u64 {
        self.serve.batched_reqs - self.serve.served
    }

    /// Fleet-wide *measured* offered load in requests/second over the
    /// issuing span.
    pub fn offered_hz(&self) -> f64 {
        let span = self.span.as_secs_f64();
        if span <= 0.0 {
            return 0.0;
        }
        self.serve.offered as f64 / span
    }

    /// Goodput: fully served requests per second of the issuing span.
    /// Never exceeds [`offered_hz`](Self::offered_hz): both rates share a
    /// denominator and `served ≤ offered` by conservation.
    pub fn goodput_hz(&self) -> f64 {
        let span = self.span.as_secs_f64();
        if span <= 0.0 {
            return 0.0;
        }
        self.serve.served as f64 / span
    }

    /// Serving-layer conservation check (see
    /// [`check_conservation`](mra_serve::check_conservation)).
    pub fn check(&self) -> Result<(), String> {
        check_conservation(&self.serve, self.queued_end(), self.inflight_end())
    }
}

fn launch<A: Allocator + Send>(
    nodes: Vec<A>,
    active: usize,
    slots: usize,
    ssc: &ServeScenario,
    cfg: SimConfig,
    faults: Option<&FaultPlan>,
    reliability: Option<Reliability>,
) -> ServeOutcome {
    let (workloads, handles): (Vec<ServeWorkload>, Vec<SharedServeStats>) = {
        let (w, h) = ServeWorkload::fleet(&ssc.serve, slots);
        (w, h)
    };
    let span = cfg.warmup + cfg.measure;
    let mut sim = Sim::new(nodes, workloads, ssc.sc.m, cfg);
    if let Some(plan) = faults {
        sim.set_fault_plan(plan.clone());
    }
    if let Some(rel) = reliability {
        sim.set_reliability(rel);
    }
    sim.set_tracing(mra_sim::obs::trace_mode_from_env());
    let result = sim.run();
    // Passive slots (a central coordinator) never issue; merging their
    // untouched stats is harmless, but restricting to active nodes keeps
    // `offered` a function of the arrival processes that actually ran.
    let serve = SharedServeStats::merge_all(&handles[..active]);
    ServeOutcome {
        result,
        serve,
        span,
    }
}

/// Run one serving scenario under one algorithm — the serving-layer
/// counterpart of [`runner::run_configured`](crate::runner::run_configured).
pub fn run_serve(
    algo: Algorithm,
    ssc: &ServeScenario,
    faults: Option<&FaultPlan>,
    reliability: Option<Reliability>,
) -> ServeOutcome {
    let sc = &ssc.sc;
    match algo {
        Algorithm::Incremental => {
            let nodes = Incremental::build_nodes(sc.n, sc.m);
            launch(nodes, sc.n, sc.n, ssc, sc.sim_config(), faults, reliability)
        }
        Algorithm::BouabdallahLaforest => {
            let nodes = BouabdallahLaforest::build_nodes(sc.n, sc.m);
            launch(nodes, sc.n, sc.n, ssc, sc.sim_config(), faults, reliability)
        }
        Algorithm::LassNoLoan => {
            let mut cfg = LassConfig::without_loan(sc.n, sc.m);
            cfg.policy = sc.policy;
            let nodes = cfg.build_nodes();
            launch(nodes, sc.n, sc.n, ssc, sc.sim_config(), faults, reliability)
        }
        Algorithm::LassLoan => {
            let mut cfg = LassConfig::with_loan(sc.n, sc.m);
            cfg.policy = sc.policy;
            cfg.loan = Some(sc.loan_threshold);
            let nodes = cfg.build_nodes();
            launch(nodes, sc.n, sc.n, ssc, sc.sim_config(), faults, reliability)
        }
        Algorithm::Central | Algorithm::CentralGreedy => {
            let policy = if algo == Algorithm::Central {
                GrantPolicy::Conservative
            } else {
                GrantPolicy::Greedy
            };
            let nodes = Central::build_nodes(sc.n, policy);
            let mut cfg = sc.sim_config_zero_latency();
            cfg.active_nodes = Some(sc.n);
            // One extra (passive) workload slot for the coordinator.
            launch(nodes, sc.n, sc.n + 1, ssc, cfg, faults, reliability)
        }
        Algorithm::Maddi => {
            let nodes = Maddi::build_nodes(sc.n, sc.m);
            launch(nodes, sc.n, sc.n, ssc, sc.sim_config(), faults, reliability)
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::scenario::Load;

    fn ssc(rate_hz: f64, seed: u64) -> ServeScenario {
        let sc = Scenario::builder()
            .nodes(6)
            .resources(12)
            .max_request_size(3)
            .load(Load::Medium)
            .seed(seed)
            .measure_secs(1.0)
            .build();
        let serve = ServeConfig {
            rate_hz,
            ..ServeConfig::default()
        };
        ServeScenario::new(sc, serve)
    }

    #[test]
    fn serve_run_conserves_and_completes() {
        let out = run_serve(Algorithm::LassLoan, &ssc(150.0, 3), None, None);
        assert!(out.serve.served > 0, "no requests served");
        assert!(out.result.cs_completed > 0);
        out.check().expect("conservation");
        // Goodput can never exceed what was offered.
        assert!(out.serve.served <= out.serve.offered);
        // Arrival-keyed latency dominates issue-keyed latency.
        let serve = out.result.serve_stats();
        let wait = out.result.wait_stats();
        assert!(serve.count == wait.count);
        assert!(serve.mean_ms >= wait.mean_ms);
    }

    #[test]
    fn deterministic_for_a_seed() {
        let a = run_serve(Algorithm::LassNoLoan, &ssc(200.0, 9), None, None);
        let b = run_serve(Algorithm::LassNoLoan, &ssc(200.0, 9), None, None);
        assert_eq!(a.result.cs_completed, b.result.cs_completed);
        assert_eq!(a.result.msgs_total, b.result.msgs_total);
        assert_eq!(a.serve.offered, b.serve.offered);
        assert_eq!(a.serve.served, b.serve.served);
        assert_eq!(a.serve.grant_latency.p99(), b.serve.grant_latency.p99());
    }
}
