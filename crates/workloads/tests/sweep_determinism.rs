//! Determinism is the repo's core invariant (see `deterministic_given_seed`
//! in `mra-sim`): neither layer of parallelism may bend it.  A sweep run
//! with `MRA_THREADS=4` must produce **byte-identical** table and CSV
//! output to `MRA_THREADS=1`, and so must a sweep whose *simulator engine*
//! runs sharded (`MRA_SIM_SHARDS=2`) — the conservative windowed engine is
//! bit-identical to the sequential one, so even the rendered artifacts
//! cannot tell the layouts apart.
//!
//! Everything lives in one function so the environment mutations cannot
//! race another test in this binary.

use mra_workloads::experiments::{
    fig5, fig5_tables, fig6, fig6_table, fig_faults, fig_faults_csv, fig_faults_table,
};
use mra_workloads::{pool, Load, Table};

/// Render the exact artifacts the fig5 binary emits for a small grid: the
/// paper-layout tables plus the long-format CSV.
fn fig5_artifacts(seed: u64) -> (String, String) {
    let rows = fig5(&[Load::Medium, Load::High], &[1, 4, 8], seed, 0.3);
    let tables: String = fig5_tables(&rows).iter().map(|t| t.render()).collect();
    let mut csv = Table::new(
        "fig5",
        &["load", "phi", "algorithm", "use_rate_pct", "msgs_per_cs", "cs_completed"],
    );
    for r in &rows {
        csv.row(vec![
            r.load.label().into(),
            r.phi.to_string(),
            r.algo.label().into(),
            format!("{:.3}", r.use_rate_pct),
            format!("{:.2}", r.msgs_per_cs),
            r.cs_completed.to_string(),
        ]);
    }
    (tables, csv.to_csv())
}

/// Render the exact artifacts the fig_faults binary emits for a small
/// loss grid — both reliability modes, like the real ablation: the matrix
/// table plus the long-format CSV (via the shared `fig_faults_csv`, so
/// the bytes certified here are the bytes the binary ships).
fn fig_faults_artifacts(seed: u64) -> (String, String) {
    let rows = fig_faults(&[0.0, 0.05, 0.2], &[false, true], seed, 0xFA17, 0.3);
    let table = fig_faults_table(&rows).render();
    (table, fig_faults_csv(&rows).to_csv())
}

#[test]
fn mra_threads_4_is_byte_identical_to_mra_threads_1() {
    // Through the real `MRA_THREADS` plumbing (what CI and users set).
    std::env::set_var("MRA_THREADS", "1");
    assert_eq!(pool::configured_threads(), 1);
    let (tables_seq, csv_seq) = fig5_artifacts(42);
    let fig6_seq = fig6_table(&fig6(&[Load::Medium, Load::High], 42, 0.3)).render();
    let (faults_tbl_seq, faults_csv_seq) = fig_faults_artifacts(42);

    std::env::set_var("MRA_THREADS", "4");
    assert_eq!(pool::configured_threads(), 4);
    let (tables_par, csv_par) = fig5_artifacts(42);
    let fig6_par = fig6_table(&fig6(&[Load::Medium, Load::High], 42, 0.3)).render();
    let (faults_tbl_par, faults_csv_par) = fig_faults_artifacts(42);
    std::env::remove_var("MRA_THREADS");

    // Through the real `MRA_SIM_SHARDS` plumbing: scenarios without a
    // pinned shard count read the variable at sim-config time, so this
    // sweep runs every simulation on the two-shard windowed engine.
    std::env::set_var("MRA_SIM_SHARDS", "2");
    let (tables_sharded, csv_sharded) = fig5_artifacts(42);
    let (faults_tbl_sharded, faults_csv_sharded) = fig_faults_artifacts(42);
    std::env::remove_var("MRA_SIM_SHARDS");
    assert_eq!(
        tables_seq, tables_sharded,
        "fig5 tables diverged on the sharded engine"
    );
    assert_eq!(csv_seq, csv_sharded, "fig5 CSV diverged on the sharded engine");
    assert_eq!(
        faults_tbl_seq, faults_tbl_sharded,
        "fig_faults table diverged on the sharded engine"
    );
    assert_eq!(
        faults_csv_seq, faults_csv_sharded,
        "fig_faults CSV diverged on the sharded engine"
    );

    assert_eq!(tables_seq, tables_par, "fig5 tables diverged across thread counts");
    assert_eq!(csv_seq, csv_par, "fig5 CSV diverged across thread counts");
    assert_eq!(fig6_seq, fig6_par, "fig6 table diverged across thread counts");
    assert_eq!(
        faults_tbl_seq, faults_tbl_par,
        "fig_faults table diverged across thread counts"
    );
    assert_eq!(
        faults_csv_seq, faults_csv_par,
        "fig_faults CSV diverged across thread counts"
    );
    // Sanity: this is real output, not two empty strings agreeing.
    assert!(csv_seq.lines().count() > 30);
    assert!(tables_seq.contains("Fig.5(high)"));
    assert!(faults_csv_seq.lines().count() > 12);
    assert!(faults_tbl_seq.contains("fig_faults"));
}
