//! Trace determinism: the observability layer must not weaken the engine's
//! core invariant.  A traced run on the sharded engine (`MRA_SIM_SHARDS=4`)
//! must produce a JSONL trace **byte-identical** to the sequential engine
//! (k = 1) — per-shard tracers are merged in global `(time, ord, seq)` key
//! order, so the rendered artifact cannot tell the layouts apart.
//!
//! One test function, like `sweep_determinism`: the environment mutations
//! (`MRA_TRACE`, `MRA_SIM_SHARDS`) must not race another test in this
//! binary.

use mra_sim::obs::render_jsonl;
use mra_workloads::{run, Algorithm, Load, Scenario};

fn traced_jsonl(seed: u64) -> String {
    let sc = Scenario::builder()
        .nodes(6)
        .resources(12)
        .max_request_size(3)
        .load(Load::High)
        .seed(seed)
        .measure_secs(0.3)
        .build();
    let res = run(Algorithm::LassLoan, &sc);
    let trace = res
        .obs
        .trace
        .as_ref()
        .expect("MRA_TRACE armed but no trace captured");
    assert!(trace.len() > 100, "suspiciously short trace: {}", trace.len());
    render_jsonl(trace, &res.algo, res.n, res.m)
}

#[test]
fn traced_run_is_byte_identical_across_shard_counts() {
    std::env::set_var("MRA_TRACE", "on");

    std::env::set_var("MRA_SIM_SHARDS", "1");
    let seq = traced_jsonl(42);

    std::env::set_var("MRA_SIM_SHARDS", "4");
    let sharded = traced_jsonl(42);

    std::env::remove_var("MRA_SIM_SHARDS");
    std::env::remove_var("MRA_TRACE");

    // Compare line counts first for a readable failure, then the bytes.
    assert_eq!(
        seq.lines().count(),
        sharded.lines().count(),
        "trace length diverged between k=1 and k=4"
    );
    assert_eq!(seq, sharded, "JSONL trace diverged between k=1 and k=4");

    // Sanity: this is a real trace with the full event vocabulary, not two
    // empty strings agreeing.
    for kind in ["\"k\":\"send\"", "\"k\":\"recv\"", "\"k\":\"cs-enter\""] {
        assert!(seq.contains(kind), "trace missing {kind}");
    }
}
