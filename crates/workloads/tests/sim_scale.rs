//! Scale smoke for the sharded conservative engine: the paper's workload
//! at shapes far past its 32 × 80 testbed.
//!
//! The headline test (`#[ignore]`, run by the CI `sim-scale` job and by
//! hand via `cargo test -p mra-workloads --release --test sim_scale --
//! --ignored`) drives 10 000 nodes × 100 000 resources through LASS with
//! loan, LASS without loan and Incremental, sequentially and on 4 shards,
//! and requires the run digests to match **exactly**: the parallel engine
//! is bit-identical to the sequential one, not merely statistically alike.
//!
//! No speedup is asserted anywhere here — CI runners have ~2 cores and
//! shared tenancy, so a wall-clock assertion would flake.  Throughput
//! scaling is tracked by `bench_engine` (`MRA_BENCH_BIG=1`) instead.

use mra_sim::RunResult;
use mra_workloads::{run, Algorithm, Scenario};

/// An order-sensitive digest of everything the simulation produced:
/// aggregate counters plus an FNV-1a fold over the canonical per-request
/// records.  Two runs with equal digests made the same requests at the
/// same nanoseconds and saw the same grants.
fn digest(r: &RunResult) -> u64 {
    const FNV_OFFSET: u64 = 0xcbf2_9ce4_8422_2325;
    const FNV_PRIME: u64 = 0x0000_0100_0000_01b3;
    let mut h = FNV_OFFSET;
    let mut fold = |v: u64| {
        h ^= v;
        h = h.wrapping_mul(FNV_PRIME);
    };
    fold(r.cs_completed);
    fold(r.censored);
    fold(r.events_processed);
    fold(r.msgs_total);
    fold(r.msg_weight);
    for rec in &r.records {
        fold(rec.node as u64);
        fold(rec.size as u64);
        fold(rec.issued.as_nanos());
        fold(rec.granted.map_or(u64::MAX, |t| t.as_nanos()));
        fold(rec.released.map_or(u64::MAX, |t| t.as_nanos()));
    }
    h
}

fn run_at(algo: Algorithm, n: usize, m: usize, shards: usize) -> RunResult {
    let mut sc = Scenario::large(n, m, 7);
    sc.shards = Some(shards);
    run(algo, &sc)
}

/// Mid-scale parity in the ordinary suite: big enough that shards matter
/// (hundreds of nodes per shard), small enough for a debug-build test run.
#[test]
fn mid_scale_digest_parity_1_vs_3_shards() {
    let seq = run_at(Algorithm::LassLoan, 300, 3_000, 1);
    assert!(seq.cs_completed > 0, "mid-scale run did no work");
    let par = run_at(Algorithm::LassLoan, 300, 3_000, 3);
    assert_eq!(par.shards, 3);
    assert_eq!(
        digest(&seq),
        digest(&par),
        "sharded run diverged from sequential at 300 nodes"
    );
}

/// The acceptance shape: 10 000 nodes, 100 000 resources, φ = 4, medium
/// load, on the three algorithms that scale (the broadcast and
/// control-token baselines are O(n) or O(m) per message and are not part
/// of the scale story).  Digests must match between 1 and 4 shards.
#[test]
#[ignore = "large: ~10^7-10^8 events per run; CI runs it in the release-mode sim-scale job"]
fn ten_thousand_nodes_digest_parity_1_vs_4_shards() {
    for algo in [
        Algorithm::LassLoan,
        Algorithm::LassNoLoan,
        Algorithm::Incremental,
    ] {
        let started = std::time::Instant::now();
        let seq = run_at(algo, 10_000, 100_000, 1);
        assert!(
            seq.cs_completed > 1_000,
            "{algo:?} did almost no work at 10k nodes: {} cs",
            seq.cs_completed
        );
        let par = run_at(algo, 10_000, 100_000, 4);
        assert_eq!(par.shards, 4);
        assert_eq!(par.shard_events.len(), 4);
        assert_eq!(par.shard_events.iter().sum::<u64>(), par.events_processed);
        assert_eq!(
            digest(&seq),
            digest(&par),
            "sharded run diverged from sequential for {algo:?}"
        );
        println!(
            "{algo:?}: {} events, {} cs, digest {:#018x}, {:.1}s for both runs",
            seq.events_processed,
            seq.cs_completed,
            digest(&seq),
            started.elapsed().as_secs_f64()
        );
    }
}
