//! Trace analysis: causal-consistency checks and the message-cost
//! breakdown behind the `mra-trace` binary.
//!
//! The checks are deliberately structural — they hold for *any* correct
//! run of *any* of the six algorithms, under any fault plan:
//!
//! 1. **No recv before send** — every `recv` of stamp `s` on link
//!    `peer → node` must appear after a `send` or `retransmit` that
//!    minted `s` on that link, in canonical trace order.  Stamp `0`
//!    recvs are exempt: minted stamps start at 1, so a zero cause marks
//!    a substrate that does not stamp the wire (real TCP, see
//!    DESIGN.md §11.2) — there is no send to match against.
//! 2. **Lamport monotonicity** — each node's clock is strictly
//!    increasing over its own events.  `fault-verdict` records are
//!    excluded: a dropped delivery is a network observation, not an
//!    event at the node, so it does not tick the clock.
//! 3. **Causal recv** — a recv's clock strictly exceeds the stamp it
//!    joined (`lam > cause`).
//! 4. **Frame conservation** — per `(link, tag)`, deliveries never
//!    exceed transmissions: `recvs ≤ sends + retransmits`.  (Equality is
//!    not required: frames may be dropped by faults or still in flight
//!    at the horizon.)  This is the trace-level form of the paper's
//!    token-conservation argument: a token can only arrive somewhere it
//!    was sent.
//!
//! A ring-truncated trace (`dropped > 0`) only gets checks 2 and 3 — the
//! overwritten prefix would make 1 and 4 spuriously fail.

use crate::event::{EventKind, OwnedEvent};
use std::collections::{HashMap, HashSet};

pub use crate::jsonl::RunTrace;

/// Cap on per-violation detail strings kept in a [`CheckReport`]
/// (the total count is always exact).
const MAX_DETAILS: usize = 20;

/// Outcome of [`check_events`].
#[derive(Clone, Debug, Default)]
pub struct CheckReport {
    /// Total events examined.
    pub events: usize,
    /// Total violations found (details capped at [`MAX_DETAILS`]).
    pub violations: u64,
    /// Human-readable descriptions of the first violations.
    pub details: Vec<String>,
    /// Whether the positional checks (1 and 4) ran — false for
    /// ring-truncated traces.
    pub full: bool,
}

impl CheckReport {
    pub fn ok(&self) -> bool {
        self.violations == 0
    }

    fn flag(&mut self, msg: String) {
        self.violations += 1;
        if self.details.len() < MAX_DETAILS {
            self.details.push(msg);
        }
    }
}

/// Run the causal-consistency checks over a canonically ordered event
/// sequence.  `dropped` is the ring-overwrite count from the trace
/// header; when nonzero the positional checks are skipped (see module
/// docs).
pub fn check_events(events: &[OwnedEvent], dropped: u64) -> CheckReport {
    let mut rep = CheckReport { events: events.len(), full: dropped == 0, ..Default::default() };
    // (from, to, stamp) of every transmission seen so far.  Presence, not
    // consumption: duplicated deliveries of one frame are legal at the
    // network level (the session layer absorbs them before the protocol).
    let mut sent: HashSet<(u32, u32, u64)> = HashSet::new();
    // Per-node last Lamport value (clock-ticking events only).
    let mut last_lam: HashMap<u32, u64> = HashMap::new();
    // Per-(from, to, tag) transmission and delivery counts.
    let mut tx: HashMap<(u32, u32, String), u64> = HashMap::new();
    let mut rx: HashMap<(u32, u32, String), u64> = HashMap::new();

    for (i, e) in events.iter().enumerate() {
        match e.kind {
            EventKind::Send | EventKind::Retransmit => {
                sent.insert((e.node, e.peer, e.lamport));
                *tx.entry((e.node, e.peer, e.tag.clone())).or_insert(0) += 1;
            }
            EventKind::Recv => {
                if rep.full && e.cause != 0 && !sent.contains(&(e.peer, e.node, e.cause)) {
                    rep.flag(format!(
                        "event {i}: recv of {} stamp {} on {}->{} with no prior send",
                        e.tag, e.cause, e.peer, e.node
                    ));
                }
                if e.lamport <= e.cause {
                    rep.flag(format!(
                        "event {i}: recv lamport {} does not exceed its cause {}",
                        e.lamport, e.cause
                    ));
                }
                *rx.entry((e.peer, e.node, e.tag.clone())).or_insert(0) += 1;
            }
            EventKind::CsRequest | EventKind::CsEnter | EventKind::CsExit => {}
            EventKind::FaultVerdict => continue, // does not tick the clock
        }
        let last = last_lam.entry(e.node).or_insert(0);
        if e.lamport <= *last {
            rep.flag(format!(
                "event {i}: node {} lamport not strictly increasing ({} after {})",
                e.node, e.lamport, last
            ));
        }
        *last = e.lamport;
    }

    if rep.full {
        let mut links: Vec<_> = rx.iter().collect();
        links.sort();
        for ((from, to, tag), &delivered) in links {
            let transmitted = tx.get(&(*from, *to, tag.clone())).copied().unwrap_or(0);
            if delivered > transmitted {
                rep.flag(format!(
                    "link {from}->{to} {tag}: {delivered} deliveries exceed {transmitted} transmissions"
                ));
            }
        }
    }
    rep
}

/// Per-message-type cost totals extracted from a trace.
#[derive(Clone, Debug, Default, PartialEq, Eq)]
pub struct Breakdown {
    /// `(tag, deliveries, delivered bytes)` sorted by tag.  Deliveries —
    /// not transmissions — so the counts reconcile with the engine's
    /// aggregate `msg_by_kind` collector, which also counts at delivery.
    pub by_tag: Vec<(String, u64, u64)>,
    pub sends: u64,
    pub recvs: u64,
    pub retransmits: u64,
    pub faults: u64,
    pub cs_requests: u64,
    pub cs_enters: u64,
    pub cs_exits: u64,
}

impl Breakdown {
    /// Total delivered messages across all tags (== `recvs`).
    pub fn delivered(&self) -> u64 {
        self.by_tag.iter().map(|(_, c, _)| c).sum()
    }

    /// Render a small human-readable table.
    pub fn render(&self) -> String {
        let mut out = String::new();
        out.push_str("message-type        deliveries       bytes\n");
        for (tag, count, bytes) in &self.by_tag {
            out.push_str(&format!("{tag:<18} {count:>11} {bytes:>11}\n"));
        }
        out.push_str(&format!(
            "totals: {} sends, {} deliveries, {} retransmits, {} fault drops\n",
            self.sends, self.recvs, self.retransmits, self.faults
        ));
        out.push_str(&format!(
            "cs: {} requests, {} enters, {} exits\n",
            self.cs_requests, self.cs_enters, self.cs_exits
        ));
        out
    }
}

/// Compute the per-message-type cost breakdown of a trace.
pub fn message_breakdown(events: &[OwnedEvent]) -> Breakdown {
    let mut b = Breakdown::default();
    let mut by_tag: HashMap<&str, (u64, u64)> = HashMap::new();
    for e in events {
        match e.kind {
            EventKind::Send => b.sends += 1,
            EventKind::Recv => {
                b.recvs += 1;
                let ent = by_tag.entry(e.tag.as_str()).or_insert((0, 0));
                ent.0 += 1;
                ent.1 += e.weight as u64;
            }
            EventKind::Retransmit => b.retransmits += 1,
            EventKind::FaultVerdict => b.faults += 1,
            EventKind::CsRequest => b.cs_requests += 1,
            EventKind::CsEnter => b.cs_enters += 1,
            EventKind::CsExit => b.cs_exits += 1,
        }
    }
    b.by_tag =
        by_tag.into_iter().map(|(t, (c, w))| (t.to_string(), c, w)).collect::<Vec<_>>();
    b.by_tag.sort();
    b
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::event::NO_PEER;

    fn ev(
        kind: EventKind,
        node: u32,
        peer: u32,
        tag: &str,
        lamport: u64,
        cause: u64,
        w: u32,
    ) -> OwnedEvent {
        OwnedEvent {
            kind,
            at_nanos: 0,
            ord: 0,
            seq: 0,
            node,
            peer,
            tag: tag.to_string(),
            lamport,
            cause,
            weight: w,
        }
    }

    fn good_run() -> Vec<OwnedEvent> {
        vec![
            ev(EventKind::CsRequest, 0, NO_PEER, "", 1, 0, 2),
            ev(EventKind::Send, 0, 1, "Req", 2, 2, 24),
            ev(EventKind::Recv, 1, 0, "Req", 3, 2, 24),
            ev(EventKind::Send, 1, 0, "Grant", 4, 4, 16),
            ev(EventKind::Recv, 0, 1, "Grant", 5, 4, 16),
            ev(EventKind::CsEnter, 0, NO_PEER, "", 6, 0, 2),
            ev(EventKind::CsExit, 0, NO_PEER, "", 7, 0, 2),
        ]
    }

    #[test]
    fn clean_run_passes() {
        let rep = check_events(&good_run(), 0);
        assert!(rep.ok(), "{:?}", rep.details);
        assert!(rep.full);
        assert_eq!(rep.events, 7);
    }

    #[test]
    fn recv_without_send_flagged() {
        let run = vec![ev(EventKind::Recv, 1, 0, "Req", 3, 2, 24)];
        let rep = check_events(&run, 0);
        // Two findings: the positional check and link conservation.
        assert_eq!(rep.violations, 2);
        assert!(rep.details[0].contains("no prior send"));
        assert!(rep.details[1].contains("exceed"));
        // ...but a ring-truncated trace skips the positional check.
        let rep = check_events(&run, 5);
        assert!(rep.ok());
        assert!(!rep.full);
    }

    /// The TCP substrate stamps sends from its local clocks but delivers
    /// recvs with cause 0 (the wire carries no stamp, DESIGN.md §11.2):
    /// the positional send-match is exempt for stamp-0 recvs while
    /// monotonicity and conservation still apply.
    #[test]
    fn stamp_zero_recvs_are_exempt_from_send_matching() {
        let run = vec![
            ev(EventKind::Send, 0, 1, "Req", 1, 1, 24),
            ev(EventKind::Recv, 1, 0, "Req", 1, 0, 24),
            ev(EventKind::Send, 1, 0, "Grant", 2, 2, 16),
            ev(EventKind::Recv, 0, 1, "Grant", 2, 0, 16),
        ];
        let rep = check_events(&run, 0);
        assert!(rep.ok(), "{:?}", rep.details);
        // Conservation is NOT exempt: an over-delivered stamp-0 frame
        // still counts against the link's transmissions.
        let mut over = run.clone();
        over.push(ev(EventKind::Recv, 0, 1, "Grant", 3, 0, 16));
        let rep = check_events(&over, 0);
        assert!(rep.details.iter().any(|d| d.contains("exceed")), "{:?}", rep.details);
    }

    #[test]
    fn lamport_regression_flagged() {
        let mut run = good_run();
        run[3].lamport = 3; // node 1 repeats its clock
        let rep = check_events(&run, 0);
        assert!(!rep.ok());
        assert!(rep.details.iter().any(|d| d.contains("strictly increasing")));
    }

    #[test]
    fn recv_not_after_cause_flagged() {
        let mut run = good_run();
        run[2].lamport = 2; // equals its cause
        let rep = check_events(&run, 0);
        assert!(rep.details.iter().any(|d| d.contains("does not exceed")));
    }

    #[test]
    fn over_delivery_flagged() {
        let mut run = good_run();
        // Duplicate the Grant recv (same stamp): presence check passes,
        // conservation catches the extra delivery.
        let dup = run[4].clone();
        run.push(dup);
        // Keep node 0's clock monotone so only conservation fires.
        run.last_mut().unwrap().lamport = 8;
        let mut run2 = run.clone();
        run2.last_mut().unwrap().kind = EventKind::Recv;
        let rep = check_events(&run2, 0);
        assert!(rep.details.iter().any(|d| d.contains("exceed")), "{:?}", rep.details);
    }

    #[test]
    fn fault_verdicts_do_not_tick() {
        let mut run = good_run();
        // Two drops at node 1 with its current clock: legal.
        run.push(ev(EventKind::FaultVerdict, 1, 0, "Req", 4, 9, 0));
        run.push(ev(EventKind::FaultVerdict, 1, 0, "Req", 4, 10, 0));
        let rep = check_events(&run, 0);
        assert!(rep.ok(), "{:?}", rep.details);
    }

    #[test]
    fn breakdown_counts_deliveries() {
        let b = message_breakdown(&good_run());
        assert_eq!(b.sends, 2);
        assert_eq!(b.recvs, 2);
        assert_eq!(b.delivered(), 2);
        assert_eq!(b.cs_requests, 1);
        assert_eq!(b.cs_enters, 1);
        assert_eq!(b.cs_exits, 1);
        assert_eq!(
            b.by_tag,
            vec![("Grant".to_string(), 1, 16), ("Req".to_string(), 1, 24)]
        );
        let table = b.render();
        assert!(table.contains("Grant"));
        assert!(table.contains("2 deliveries"));
    }
}
