//! Transport-level counters: the live-metrics registry the TCP port (and
//! anything else that moves frames) reports through.
//!
//! [`NetCounters`] is plain mergeable state — no atomics, no locks; each
//! owner keeps its own instance and either merges at the end or snapshots
//! on demand.  [`KindCounts`] is the same move-to-front small-vec pattern
//! the simulator's `Collector::on_message` uses: per-message-type tags
//! are a handful of `&'static str`s, so a linear probe with ptr-compare
//! beats hashing.

/// Per-message-type counters keyed by the protocol's static tag strings.
#[derive(Clone, Debug, Default)]
pub struct KindCounts(Vec<(&'static str, u64)>);

impl KindCounts {
    /// Add `n` to the counter for `tag`.
    #[inline]
    pub fn bump(&mut self, tag: &'static str, n: u64) {
        // Tags come from a fixed set of statics; ptr equality is the
        // fast path, string equality the correctness backstop.
        for ent in self.0.iter_mut() {
            if std::ptr::eq(ent.0, tag) || ent.0 == tag {
                ent.1 += n;
                return;
            }
        }
        self.0.push((tag, n));
    }

    pub fn get(&self, tag: &str) -> u64 {
        self.0.iter().find(|(t, _)| *t == tag).map_or(0, |(_, n)| *n)
    }

    pub fn is_empty(&self) -> bool {
        self.0.is_empty()
    }

    /// Canonically sorted `(tag, count)` pairs.
    pub fn sorted(&self) -> Vec<(&'static str, u64)> {
        let mut v = self.0.clone();
        v.sort();
        v
    }

    pub fn merge(&mut self, other: &KindCounts) {
        for (tag, n) in &other.0 {
            self.bump(tag, *n);
        }
    }
}

/// Frame-level transport counters for one endpoint.
#[derive(Clone, Debug, Default)]
pub struct NetCounters {
    /// Protocol frames written (first transmissions).
    pub frames_out: u64,
    /// Bytes written, including framing overhead.
    pub bytes_out: u64,
    /// Protocol frames received and decoded.
    pub frames_in: u64,
    /// Bytes received, including framing overhead.
    pub bytes_in: u64,
    /// Frames re-sent by the reliable session layer.
    pub retransmit_frames: u64,
    /// Retransmission-timer expiries serviced.
    pub rto_fires: u64,
    /// `write(2)` calls issued for frame traffic.  Under the coalescing
    /// reactor many frames share one call; the threaded transport issues
    /// one per frame.  `frames_out + retransmit_frames + standalone acks`
    /// divided by this is the coalescing ratio.
    pub write_calls: u64,
    /// `read(2)` calls issued for frame traffic (the blocking transport
    /// counts each `read_exact` servicing as one).
    pub read_calls: u64,
    /// Standalone ack frames sent (not piggybacked on data).
    pub ack_frames: u64,
    /// Outbound frames by protocol message type.
    pub by_kind: KindCounts,
}

impl NetCounters {
    pub fn merge(&mut self, other: &NetCounters) {
        self.frames_out += other.frames_out;
        self.bytes_out += other.bytes_out;
        self.frames_in += other.frames_in;
        self.bytes_in += other.bytes_in;
        self.retransmit_frames += other.retransmit_frames;
        self.rto_fires += other.rto_fires;
        self.write_calls += other.write_calls;
        self.read_calls += other.read_calls;
        self.ack_frames += other.ack_frames;
        self.by_kind.merge(&other.by_kind);
    }

    /// Every frame that hit the wire outbound: first transmissions,
    /// retransmissions and standalone acks.
    pub fn wire_frames_out(&self) -> u64 {
        self.frames_out + self.retransmit_frames + self.ack_frames
    }

    /// Outbound frames per `write(2)` call — the coalescing ratio.
    /// 1.0 for the threaded transport by construction; > 1.0 when the
    /// reactor batches.  `None` before any write happened.
    pub fn frames_per_write(&self) -> Option<f64> {
        (self.write_calls > 0).then(|| self.wire_frames_out() as f64 / self.write_calls as f64)
    }

    /// I/O syscalls (reads + writes) per frame moved in either direction.
    /// The tentpole acceptance metric: < 1.0 means coalescing amortizes
    /// syscall cost below one per frame.  `None` before any frame moved.
    pub fn syscalls_per_frame(&self) -> Option<f64> {
        let frames = self.wire_frames_out() + self.frames_in;
        (frames > 0).then(|| (self.write_calls + self.read_calls) as f64 / frames as f64)
    }

    /// One-line-per-field snapshot for `--metrics` / `MRA_METRICS=1`
    /// stderr dumps: `metrics[node]: frames_out=… bytes_out=… …` then a
    /// `by_kind` line when any frame went out.
    pub fn render(&self, node: usize) -> String {
        let mut out = format!(
            "metrics[{}]: frames_out={} bytes_out={} frames_in={} bytes_in={} retransmits={} rto_fires={}\n",
            node,
            self.frames_out,
            self.bytes_out,
            self.frames_in,
            self.bytes_in,
            self.retransmit_frames,
            self.rto_fires
        );
        if self.write_calls > 0 || self.read_calls > 0 {
            out.push_str(&format!(
                "metrics[{}]: write_calls={} read_calls={} ack_frames={} frames_per_write={:.2} syscalls_per_frame={:.2}\n",
                node,
                self.write_calls,
                self.read_calls,
                self.ack_frames,
                self.frames_per_write().unwrap_or(0.0),
                self.syscalls_per_frame().unwrap_or(0.0),
            ));
        }
        if !self.by_kind.is_empty() {
            out.push_str(&format!("metrics[{node}]: by_kind"));
            for (tag, n) in self.by_kind.sorted() {
                out.push_str(&format!(" {tag}={n}"));
            }
            out.push('\n');
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn kind_counts_bump_and_merge() {
        let mut a = KindCounts::default();
        a.bump("Req", 2);
        a.bump("Grant", 1);
        a.bump("Req", 3);
        assert_eq!(a.get("Req"), 5);
        assert_eq!(a.get("Grant"), 1);
        assert_eq!(a.get("Nope"), 0);
        let mut b = KindCounts::default();
        b.bump("Req", 10);
        b.bump("Release", 4);
        a.merge(&b);
        assert_eq!(
            a.sorted(),
            vec![("Grant", 1), ("Release", 4), ("Req", 15)]
        );
    }

    #[test]
    fn net_counters_merge_and_render() {
        let mut a = NetCounters {
            frames_out: 3,
            bytes_out: 120,
            ..Default::default()
        };
        a.by_kind.bump("Req", 3);
        let b = NetCounters {
            frames_in: 2,
            bytes_in: 64,
            retransmit_frames: 1,
            rto_fires: 1,
            ..Default::default()
        };
        a.merge(&b);
        let s = a.render(7);
        assert!(s.contains("metrics[7]: frames_out=3 bytes_out=120 frames_in=2 bytes_in=64 retransmits=1 rto_fires=1"));
        assert!(s.contains("by_kind Req=3"));
        // No syscall line until a transport reports calls.
        assert!(!s.contains("write_calls"));
    }

    #[test]
    fn syscall_ratios_expose_coalescing() {
        let mut c = NetCounters::default();
        assert_eq!(c.frames_per_write(), None);
        assert_eq!(c.syscalls_per_frame(), None);
        // 6 data frames + 1 retransmit + 1 standalone ack over 2 writes,
        // 8 inbound frames over 2 reads: reactor-style batching.
        c.frames_out = 6;
        c.retransmit_frames = 1;
        c.ack_frames = 1;
        c.write_calls = 2;
        c.frames_in = 8;
        c.read_calls = 2;
        assert_eq!(c.wire_frames_out(), 8);
        assert_eq!(c.frames_per_write(), Some(4.0));
        assert_eq!(c.syscalls_per_frame(), Some(0.25));
        let s = c.render(0);
        assert!(s.contains(
            "write_calls=2 read_calls=2 ack_frames=1 frames_per_write=4.00 syscalls_per_frame=0.25"
        ));
    }
}
