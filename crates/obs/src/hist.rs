//! Log2-bucketed histogram: fixed-size, mergeable, allocation-free.
//!
//! Where `WaitStats::from_ms` keeps the full sample vector and computes
//! exact percentiles, [`LogHist`] keeps 64 counters — one per power of
//! two — and answers quantiles with at most one bucket (~2×) of relative
//! error.  That trade is what lets live metrics survive millions of
//! requests: recording is two array ops, merging is 64 additions, and the
//! struct never allocates after construction (it is embedded in the
//! tracer that the zero-alloc guard covers).

/// Number of buckets: bucket `b` (b ≥ 1) holds values in `[2^(b-1), 2^b)`,
/// bucket 0 holds exactly 0.  64 buckets cover the full `u64` range.
pub const BUCKETS: usize = 64;

/// A log2-bucketed histogram over `u64` samples (nanoseconds, bytes,
/// queue depths — unit-agnostic).
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct LogHist {
    counts: [u64; BUCKETS],
    total: u64,
    sum: u128,
    max: u64,
}

impl Default for LogHist {
    fn default() -> Self {
        LogHist { counts: [0; BUCKETS], total: 0, sum: 0, max: 0 }
    }
}

impl LogHist {
    pub fn new() -> Self {
        Self::default()
    }

    #[inline]
    fn bucket(v: u64) -> usize {
        if v == 0 {
            0
        } else {
            (64 - v.leading_zeros() as usize).min(BUCKETS - 1)
        }
    }

    /// Record one sample.  O(1), allocation-free.
    #[inline]
    pub fn record(&mut self, v: u64) {
        self.counts[Self::bucket(v)] += 1;
        self.total += 1;
        self.sum += v as u128;
        if v > self.max {
            self.max = v;
        }
    }

    pub fn count(&self) -> u64 {
        self.total
    }

    pub fn is_empty(&self) -> bool {
        self.total == 0
    }

    pub fn max(&self) -> u64 {
        self.max
    }

    /// Mean of all recorded samples; `NaN` when empty (same contract as
    /// `stats::mean`).
    pub fn mean(&self) -> f64 {
        if self.total == 0 {
            f64::NAN
        } else {
            self.sum as f64 / self.total as f64
        }
    }

    /// Approximate `q`-th percentile (`q` in 0..=100).
    ///
    /// Finds the bucket holding the rank-`⌈q/100·total⌉` sample and
    /// interpolates linearly inside its `[2^(b-1), 2^b)` span, clamped to
    /// the observed maximum.  Relative error is bounded by one bucket
    /// width (a factor of 2); in exchange the state is 64 counters
    /// instead of the full sample vector.
    ///
    /// Returns `NaN` for an empty histogram — the same contract as
    /// `stats::percentile`, and rendered as `n/a` by `WaitStats::cell`.
    /// Callers must use `is_nan()`, not `== NAN`.
    pub fn quantile(&self, q: f64) -> f64 {
        if self.total == 0 {
            return f64::NAN;
        }
        let rank = ((q / 100.0) * self.total as f64).ceil().clamp(1.0, self.total as f64) as u64;
        let mut seen = 0u64;
        for (b, &c) in self.counts.iter().enumerate() {
            if c == 0 {
                continue;
            }
            seen += c;
            if seen >= rank {
                if b == 0 {
                    return 0.0;
                }
                let lo = 1u64 << (b - 1);
                let hi = if b >= 63 { u64::MAX } else { (1u64 << b) - 1 };
                // Interpolate by the sample's position within this bucket.
                let into = (rank - (seen - c)) as f64 / c as f64;
                let est = lo as f64 + into * (hi - lo) as f64;
                return est.min(self.max as f64);
            }
        }
        self.max as f64
    }

    pub fn p50(&self) -> f64 {
        self.quantile(50.0)
    }

    pub fn p99(&self) -> f64 {
        self.quantile(99.0)
    }

    pub fn p999(&self) -> f64 {
        self.quantile(99.9)
    }

    /// Fold `other` into `self`.  Merging per-shard histograms is exact:
    /// bucket counts add, so the merged quantiles equal what a single
    /// histogram over the union would report.
    pub fn merge(&mut self, other: &LogHist) {
        for (a, b) in self.counts.iter_mut().zip(other.counts.iter()) {
            *a += b;
        }
        self.total += other.total;
        self.sum += other.sum;
        self.max = self.max.max(other.max);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn empty_is_nan() {
        let h = LogHist::new();
        assert!(h.quantile(50.0).is_nan());
        assert!(h.mean().is_nan());
        assert_eq!(h.count(), 0);
    }

    #[test]
    fn zero_and_small_values() {
        let mut h = LogHist::new();
        h.record(0);
        h.record(0);
        assert_eq!(h.quantile(50.0), 0.0);
        h.record(1);
        assert_eq!(h.max(), 1);
        assert_eq!(h.count(), 3);
    }

    #[test]
    fn quantile_within_bucket_error() {
        let mut h = LogHist::new();
        for v in 1..=1000u64 {
            h.record(v);
        }
        // Exact p50 = 500; a log2 histogram must land within its bucket
        // [256, 512) after interpolation+clamp — assert a 2x error bound.
        let p50 = h.p50();
        assert!((250.0..=1000.0).contains(&p50), "p50={p50}");
        // p999 of 1..=1000 is 1000 exactly; clamped to max.
        assert!(h.p999() <= 1000.0);
        assert!(h.p999() >= 500.0);
        // Mean is exact regardless of bucketing.
        assert!((h.mean() - 500.5).abs() < 1e-9);
    }

    #[test]
    fn quantiles_monotone_in_q() {
        let mut h = LogHist::new();
        let mut x = 1u64;
        for _ in 0..200 {
            h.record(x % 100_000);
            x = x.wrapping_mul(6364136223846793005).wrapping_add(1);
        }
        let mut prev = f64::NEG_INFINITY;
        for q in [0.0, 10.0, 50.0, 90.0, 99.0, 99.9, 100.0] {
            let v = h.quantile(q);
            assert!(v >= prev, "quantile not monotone at q={q}: {v} < {prev}");
            prev = v;
        }
        assert!(h.quantile(100.0) <= h.max() as f64);
    }

    #[test]
    fn merge_equals_union() {
        let mut a = LogHist::new();
        let mut b = LogHist::new();
        let mut u = LogHist::new();
        for v in [0u64, 1, 5, 17, 1000, 65_536, 3] {
            if v % 2 == 0 {
                a.record(v);
            } else {
                b.record(v);
            }
            u.record(v);
        }
        a.merge(&b);
        assert_eq!(a, u);
    }

    #[test]
    fn huge_values_do_not_overflow_buckets() {
        let mut h = LogHist::new();
        h.record(u64::MAX);
        h.record(u64::MAX / 2);
        assert_eq!(h.count(), 2);
        assert_eq!(h.max(), u64::MAX);
        assert!(h.quantile(100.0) > 0.0);
    }
}
