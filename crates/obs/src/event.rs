//! Trace event model: the compact per-event record every substrate emits.
//!
//! Events are `Copy` and fixed-size — a [`TraceEvent`] is what sits in the
//! pre-sized ring sink, so it must not own heap memory.  Message-type tags
//! are `&'static str` (protocol `kind()` names are static already); the
//! owned variant [`OwnedEvent`] exists only on the analysis side, after
//! parsing JSONL back in.

/// Peer field value for events that have no peer (cs-request/enter/exit).
pub const NO_PEER: u32 = u32::MAX;

/// What happened.  The wire labels (JSONL `"k"` field) are the kebab-case
/// strings from [`EventKind::label`]; [`EventKind::parse`] is the inverse.
#[derive(Clone, Copy, Debug, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub enum EventKind {
    /// A protocol message left `node` for `peer` (first transmission only).
    Send,
    /// A protocol message from `peer` was delivered to `node`.
    Recv,
    /// `node` issued a request for a resource set (`weight` = set size).
    CsRequest,
    /// `node` entered its critical section (`weight` = set size).
    CsEnter,
    /// `node` left its critical section.
    CsExit,
    /// The reliable session layer re-sent a frame from `node` to `peer`.
    Retransmit,
    /// The fault plan dropped a delivery from `peer` to `node`.
    FaultVerdict,
}

impl EventKind {
    /// Stable wire label, used in JSONL and human output.
    pub fn label(self) -> &'static str {
        match self {
            EventKind::Send => "send",
            EventKind::Recv => "recv",
            EventKind::CsRequest => "cs-request",
            EventKind::CsEnter => "cs-enter",
            EventKind::CsExit => "cs-exit",
            EventKind::Retransmit => "retransmit",
            EventKind::FaultVerdict => "fault-verdict",
        }
    }

    /// Inverse of [`label`](Self::label); `None` for unknown strings.
    pub fn parse(s: &str) -> Option<EventKind> {
        Some(match s {
            "send" => EventKind::Send,
            "recv" => EventKind::Recv,
            "cs-request" => EventKind::CsRequest,
            "cs-enter" => EventKind::CsEnter,
            "cs-exit" => EventKind::CsExit,
            "retransmit" => EventKind::Retransmit,
            "fault-verdict" => EventKind::FaultVerdict,
            _ => return None,
        })
    }
}

/// One trace event.  `node` is where the event happened; `peer` is the
/// other endpoint for message events ([`NO_PEER`] otherwise).
///
/// * `lamport` — the emitting node's Lamport clock *after* this event
///   (every traced event ticks the clock; recv joins with `cause` first).
/// * `cause` — for `Recv`/`FaultVerdict`: the Lamport stamp the message
///   carried from its send; for `Send`/`Retransmit`: equal to `lamport`
///   (the stamp the frame carries on the wire); 0 elsewhere.
/// * `weight` — message weight in bytes for message events, resource-set
///   size for cs events, 0 otherwise.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct TraceEvent {
    pub kind: EventKind,
    pub node: u32,
    pub peer: u32,
    /// Message-type tag (`Msg::kind()`), `""` for non-message events.
    pub tag: &'static str,
    pub lamport: u64,
    pub cause: u64,
    pub weight: u32,
}

/// A parsed-back event: same shape as [`TraceEvent`] plus the engine
/// ordering key it was recorded under, with the tag owned (the analyzer
/// reads JSONL produced by another process, so no `&'static` tags there).
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct OwnedEvent {
    pub kind: EventKind,
    /// Engine time in nanoseconds (sim time, or ns since run epoch).
    pub at_nanos: u64,
    /// Engine dispatch ordinal (lane ord in the sim; 0 elsewhere).
    pub ord: u64,
    /// Emission sequence within one (at, ord) dispatch.
    pub seq: u32,
    pub node: u32,
    pub peer: u32,
    pub tag: String,
    pub lamport: u64,
    pub cause: u64,
    pub weight: u32,
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn labels_round_trip() {
        let all = [
            EventKind::Send,
            EventKind::Recv,
            EventKind::CsRequest,
            EventKind::CsEnter,
            EventKind::CsExit,
            EventKind::Retransmit,
            EventKind::FaultVerdict,
        ];
        for k in all {
            assert_eq!(EventKind::parse(k.label()), Some(k));
        }
        assert_eq!(EventKind::parse("bogus"), None);
    }
}
