//! # mra-obs — unified causal tracing and live metrics
//!
//! The paper's whole argument is an observability claim: synchronization
//! *cost*, measured as messages and waiting time per critical section.
//! This crate turns that cost from a post-hoc aggregate into a measured,
//! per-message-type, per-link, causally ordered quantity — on every
//! substrate (simulator, virtual test network, threaded runtime, TCP).
//!
//! Three pieces:
//!
//! * **Structured event tracing** ([`tracer`]) — a compact, fixed-size
//!   [`TraceEvent`] (send / recv / cs-request / cs-enter / cs-exit /
//!   retransmit / fault-verdict) with node, peer, message-type tag,
//!   Lamport stamp and event time, emitted through an [`EngineTracer`]
//!   that is a no-op unless armed: every hook is one inline flag check,
//!   so the simulator's zero-alloc guard passes with tracing compiled in
//!   and disarmed.
//! * **Low-overhead live metrics** ([`hist`], [`registry`]) — log2-bucketed
//!   [`LogHist`] histograms (waiting time, message latency, queue depth)
//!   and per-message-type counters: mergeable fixed-size state that scales
//!   to millions of requests where full sample vectors cannot.
//! * **Sinks + analysis** ([`jsonl`], [`analyze`]) — an in-memory ring or
//!   unbounded sink, a hand-rolled JSONL export/import (this workspace has
//!   no serde), and the causal-consistency checks behind the `mra-trace`
//!   binary: no recv without a matching send, per-node Lamport
//!   monotonicity, and per-link frame conservation.
//!
//! The environment knobs (`MRA_TRACE`, `MRA_TRACE_FILE`) are parsed here
//! ([`trace_mode_from_env`], [`trace_file_from_env`]) so every substrate
//! agrees on their meaning.

pub mod analyze;
pub mod event;
pub mod hist;
pub mod jsonl;
pub mod registry;
pub mod tracer;

pub use analyze::{check_events, message_breakdown, Breakdown, CheckReport, RunTrace};
pub use event::{EventKind, OwnedEvent, TraceEvent, NO_PEER};
pub use hist::LogHist;
pub use jsonl::{parse_jsonl, render_jsonl, write_jsonl_file};
pub use registry::{KindCounts, NetCounters};
pub use tracer::{EngineTracer, ObsReport, TraceLog, TraceMode, TraceRec};

/// Tracing mode from the `MRA_TRACE` environment variable.
///
/// * `"0"` — [`TraceMode::Off`], unconditionally;
/// * unset or empty — [`TraceMode::Off`], unless `MRA_TRACE_FILE` is set
///   (a file path implies the unbounded sink, so
///   `MRA_TRACE_FILE=t.jsonl` alone records and exports a run);
/// * `"ring"` or `"ring:<cap>"` — a pre-sized in-memory ring holding the
///   last `cap` events (default 65 536): fixed memory, oldest events
///   overwritten, the mode benchmarks and always-on capture use;
/// * anything else (conventionally `"1"`) — an unbounded in-memory sink,
///   the mode JSONL export and the determinism tests use.
pub fn trace_mode_from_env() -> TraceMode {
    match std::env::var("MRA_TRACE") {
        Ok(v) if v == "0" => TraceMode::Off,
        Ok(v) if v == "ring" => TraceMode::Ring(tracer::DEFAULT_RING_CAP),
        Ok(v) if !v.is_empty() => {
            match v.strip_prefix("ring:").and_then(|c| c.parse::<usize>().ok()) {
                Some(cap) => TraceMode::Ring(cap.max(1)),
                None => TraceMode::Unbounded,
            }
        }
        _ => {
            if trace_file_from_env().is_some() {
                TraceMode::Unbounded
            } else {
                TraceMode::Off
            }
        }
    }
}

/// Trace export path from `MRA_TRACE_FILE` (unset or empty = no export).
/// Each traced run overwrites the file — the knob is meant for single
/// runs (`mra-trace --record` passes an explicit path instead); under a
/// parallel sweep the last finishing run wins.
pub fn trace_file_from_env() -> Option<String> {
    std::env::var("MRA_TRACE_FILE").ok().filter(|v| !v.is_empty())
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Env-knob parsing matrix.  One test body: env mutation must not race
    /// another test in this binary.
    #[test]
    fn trace_mode_env_matrix() {
        std::env::remove_var("MRA_TRACE");
        std::env::remove_var("MRA_TRACE_FILE");
        assert_eq!(trace_mode_from_env(), TraceMode::Off);

        std::env::set_var("MRA_TRACE", "0");
        assert_eq!(trace_mode_from_env(), TraceMode::Off);

        std::env::set_var("MRA_TRACE", "1");
        assert_eq!(trace_mode_from_env(), TraceMode::Unbounded);

        std::env::set_var("MRA_TRACE", "ring");
        assert_eq!(trace_mode_from_env(), TraceMode::Ring(tracer::DEFAULT_RING_CAP));

        std::env::set_var("MRA_TRACE", "ring:128");
        assert_eq!(trace_mode_from_env(), TraceMode::Ring(128));

        // A file path alone implies the unbounded sink.
        std::env::remove_var("MRA_TRACE");
        std::env::set_var("MRA_TRACE_FILE", "t.jsonl");
        assert_eq!(trace_mode_from_env(), TraceMode::Unbounded);
        assert_eq!(trace_file_from_env().as_deref(), Some("t.jsonl"));

        // But an explicit "0" wins over the file path.
        std::env::set_var("MRA_TRACE", "0");
        assert_eq!(trace_mode_from_env(), TraceMode::Off);

        std::env::remove_var("MRA_TRACE");
        std::env::remove_var("MRA_TRACE_FILE");
    }
}
