//! The engine-side tracer: armed/disarmed event capture + live histograms.
//!
//! One [`EngineTracer`] lives per execution domain — per shard in the
//! simulator, one shared (mutex-guarded) instance in the threaded and TCP
//! runtimes, one per `VirtualNet`.  Every hook starts with a single
//! `if !self.armed { return }` check and is `#[inline]`, so a disarmed
//! tracer costs one predictable branch per call site and touches no
//! memory: the simulator's zero-alloc steady-state guard runs with these
//! hooks compiled in.
//!
//! ## Ordering and determinism
//!
//! Events are recorded under the engine's canonical dispatch key
//! `(at, ord)` — the same `(time, lane<<32|ctr)` key the sharded
//! simulator already uses to make its schedule bit-identical for any
//! shard count — plus a per-dispatch emission sequence `seq`.  Merging
//! per-shard buffers and sorting by `(at, ord, seq)` therefore
//! reconstructs the exact sequential-run order: byte-identical JSONL for
//! k=1 and k=4 (certified by `sweep_determinism`).
//!
//! ## Lamport stamping
//!
//! The tracer owns the per-node Lamport clocks.  A send ticks the
//! sender's clock and returns the stamp; the engine carries that stamp
//! *inside the delivery event / wire frame* (so it survives cross-shard
//! mailboxes, loss, duplication and retransmission without any side
//! channel), and the recv hook joins it: `C[to] = max(C[to], cause) + 1`.
//! Retransmissions mint fresh stamps — a retransmitted frame is a later
//! event than the original send, which keeps the order legitimately
//! Lamport even under go-back-N.  Arming or disarming tracing never
//! touches engine RNGs, lane counters or schedules: a traced run and an
//! untraced run execute the identical event sequence.

use crate::event::{EventKind, OwnedEvent, TraceEvent, NO_PEER};
use crate::hist::LogHist;
use crate::jsonl;
use mra_types::Time;

/// Default ring capacity for `MRA_TRACE=ring` (events, not bytes).
pub const DEFAULT_RING_CAP: usize = 65_536;

/// How (and whether) events are captured.  See `trace_mode_from_env`.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum TraceMode {
    /// Disarmed: hooks are single-branch no-ops, no memory is allocated.
    Off,
    /// Keep the most recent `cap` events in a pre-sized ring: recording
    /// never allocates after construction (old events are overwritten).
    Ring(usize),
    /// Keep every event (the buffer grows): for export and analysis.
    Unbounded,
}

/// One recorded event with its engine ordering key.
///
/// `seq` disambiguates multiple emissions within one dispatch (e.g. a
/// recv followed by the sends it triggers all share `(at, ord)`); it
/// restarts at 0 whenever the key changes, so it is deterministic too.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct TraceRec {
    pub at: Time,
    pub ord: u64,
    pub seq: u32,
    pub ev: TraceEvent,
}

/// A captured event log (merged across shards, sorted canonically).
#[derive(Clone, Debug, Default, PartialEq, Eq)]
pub struct TraceLog {
    /// Events in canonical `(at, ord, seq)` order.
    pub recs: Vec<TraceRec>,
    /// Events lost to ring overwrite (0 in unbounded mode).
    pub dropped: u64,
}

impl TraceLog {
    /// Merge per-shard buffers into one canonically ordered log.
    ///
    /// The engine guarantees every dispatch key `(at, ord)` is unique
    /// across shards (single-writer lanes), and `seq` orders emissions
    /// within a dispatch, so the sort has no ties: the merged order is
    /// the sequential-run order, independent of shard count.
    pub fn merge(parts: Vec<Vec<TraceRec>>, dropped: u64) -> TraceLog {
        let mut recs: Vec<TraceRec> = Vec::with_capacity(parts.iter().map(Vec::len).sum());
        for p in parts {
            recs.extend(p);
        }
        recs.sort_unstable_by_key(|r| (r.at, r.ord, r.seq));
        TraceLog { recs, dropped }
    }

    pub fn len(&self) -> usize {
        self.recs.len()
    }

    pub fn is_empty(&self) -> bool {
        self.recs.is_empty()
    }

    /// Render as JSONL (see [`crate::jsonl`] for the schema).
    pub fn to_jsonl(&self, algo: &str, n: usize, m: usize) -> String {
        jsonl::render_jsonl(self, algo, n, m)
    }

    /// Owned copies of the events, in canonical order, for the analyzer.
    pub fn to_owned_events(&self) -> Vec<OwnedEvent> {
        self.recs
            .iter()
            .map(|r| OwnedEvent {
                kind: r.ev.kind,
                at_nanos: r.at.as_nanos(),
                ord: r.ord,
                seq: r.seq,
                node: r.ev.node,
                peer: r.ev.peer,
                tag: r.ev.tag.to_string(),
                lamport: r.ev.lamport,
                cause: r.ev.cause,
                weight: r.ev.weight,
            })
            .collect()
    }
}

/// Per-run observability summary attached to `RunResult`.
#[derive(Clone, Debug, Default)]
pub struct ObsReport {
    /// Whether tracing was armed for this run.
    pub armed: bool,
    /// Request-issue → grant waiting time, nanoseconds.
    pub wait: LogHist,
    /// Intended-arrival → grant serving latency, nanoseconds: the
    /// open-loop client's end-to-end view, queueing delay before issue
    /// included.  Mirrors `wait` exactly for closed-loop workloads
    /// (arrival = issue); the gap between the two under an open-loop
    /// generator is the coordinated-omission bias.
    pub serve: LogHist,
    /// Send → delivery latency of protocol messages, nanoseconds.
    pub msg_latency: LogHist,
    /// Event-queue depth sampled at each dispatch (per-shard in sharded
    /// runs — depth is a property of each shard's queue, so unlike the
    /// trace it is not k-invariant; it is excluded from JSONL).
    pub queue_depth: LogHist,
    /// The captured event log, if a capturing mode was armed.
    pub trace: Option<TraceLog>,
    /// Aggregate transport counters (all-zero for substrates with no real
    /// wire: the TCP harnesses fill this in after the run).
    pub net: crate::NetCounters,
}

/// The capture engine.  See the module docs for the ordering and
/// Lamport-stamping contracts.
#[derive(Clone, Debug)]
pub struct EngineTracer {
    armed: bool,
    /// Ring capacity; 0 = unbounded.
    ring: usize,
    /// Next overwrite position in ring mode.
    head: usize,
    dropped: u64,
    buf: Vec<TraceRec>,
    /// Per-node Lamport clocks (indexed by global node id).
    clocks: Vec<u64>,
    cur_at: Time,
    cur_ord: u64,
    next_seq: u32,
    wait: LogHist,
    serve: LogHist,
    msg_latency: LogHist,
    queue_depth: LogHist,
}

impl Default for EngineTracer {
    fn default() -> Self {
        Self::disarmed()
    }
}

impl EngineTracer {
    /// A disarmed tracer: every hook is a single-branch no-op and no
    /// buffers are allocated.  This is the default state everywhere.
    pub fn disarmed() -> Self {
        EngineTracer {
            armed: false,
            ring: 0,
            head: 0,
            dropped: 0,
            buf: Vec::new(),
            clocks: Vec::new(),
            cur_at: Time::ZERO,
            cur_ord: 0,
            next_seq: 0,
            wait: LogHist::new(),
            serve: LogHist::new(),
            msg_latency: LogHist::new(),
            queue_depth: LogHist::new(),
        }
    }

    /// Arm for `n` nodes in the given mode.  All memory the armed hot
    /// path will touch is allocated here: the ring buffer is pre-sized to
    /// capacity, so recording in ring mode performs zero allocations.
    pub fn armed(n: usize, mode: TraceMode) -> Self {
        let mut t = Self::disarmed();
        match mode {
            TraceMode::Off => return t,
            TraceMode::Ring(cap) => {
                t.ring = cap.max(1);
                t.buf = Vec::with_capacity(t.ring);
            }
            TraceMode::Unbounded => {
                t.buf = Vec::with_capacity(1024);
            }
        }
        t.armed = true;
        t.clocks = vec![0; n];
        t
    }

    #[inline]
    pub fn is_armed(&self) -> bool {
        self.armed
    }

    /// Events lost to ring overwrite so far.
    pub fn dropped(&self) -> u64 {
        self.dropped
    }

    /// Set the engine dispatch key subsequent emissions record under.
    /// Resets the intra-dispatch sequence counter.
    #[inline]
    pub fn set_key(&mut self, at: Time, ord: u64) {
        if !self.armed {
            return;
        }
        self.cur_at = at;
        self.cur_ord = ord;
        self.next_seq = 0;
    }

    /// Dispatch-start hook: sets the key and samples queue depth.
    #[inline]
    pub fn on_dispatch(&mut self, at: Time, ord: u64, queue_depth: usize) {
        if !self.armed {
            return;
        }
        self.set_key(at, ord);
        self.queue_depth.record(queue_depth as u64);
    }

    #[inline]
    fn push(&mut self, ev: TraceEvent) {
        let rec = TraceRec { at: self.cur_at, ord: self.cur_ord, seq: self.next_seq, ev };
        self.next_seq += 1;
        if self.ring == 0 || self.buf.len() < self.ring {
            self.buf.push(rec);
        } else {
            // Overwrite the oldest slot: fixed memory, no allocation.
            self.buf[self.head] = rec;
            self.head = (self.head + 1) % self.ring;
            self.dropped += 1;
        }
    }

    #[inline]
    fn tick(&mut self, node: usize) -> u64 {
        let c = &mut self.clocks[node];
        *c += 1;
        *c
    }

    /// First transmission of a protocol message.  Returns the Lamport
    /// stamp the frame must carry; disarmed, returns 0 (a stamp the recv
    /// side joins as a no-op).  `latency` is the sampled network delay
    /// when the sender knows it (the simulator does; wall-clock runtimes
    /// pass `None` and the latency histogram stays empty there).
    #[inline]
    pub fn on_send(
        &mut self,
        from: usize,
        to: usize,
        tag: &'static str,
        weight: u32,
        latency: Option<Time>,
    ) -> u64 {
        if !self.armed {
            return 0;
        }
        let stamp = self.tick(from);
        if let Some(l) = latency {
            self.msg_latency.record(l.as_nanos());
        }
        self.push(TraceEvent {
            kind: EventKind::Send,
            node: from as u32,
            peer: to as u32,
            tag,
            lamport: stamp,
            cause: stamp,
            weight,
        });
        stamp
    }

    /// Delivery of a protocol message carrying stamp `cause`.
    /// Joins the receiver's clock: `C[to] = max(C[to], cause) + 1`.
    #[inline]
    pub fn on_recv(&mut self, from: usize, to: usize, tag: &'static str, weight: u32, cause: u64) {
        if !self.armed {
            return;
        }
        let c = &mut self.clocks[to];
        *c = (*c).max(cause) + 1;
        let lamport = *c;
        self.push(TraceEvent {
            kind: EventKind::Recv,
            node: to as u32,
            peer: from as u32,
            tag,
            lamport,
            cause,
            weight,
        });
    }

    /// The session layer re-sent a frame.  Mints a fresh stamp (the
    /// retransmission is a later event than the original send).
    #[inline]
    pub fn on_retransmit(&mut self, from: usize, to: usize, tag: &'static str, weight: u32) -> u64 {
        if !self.armed {
            return 0;
        }
        let stamp = self.tick(from);
        self.push(TraceEvent {
            kind: EventKind::Retransmit,
            node: from as u32,
            peer: to as u32,
            tag,
            lamport: stamp,
            cause: stamp,
            weight,
        });
        stamp
    }

    /// The fault plan dropped a delivery to `node` from `peer`.
    #[inline]
    pub fn on_fault(&mut self, node: usize, peer: usize, tag: &'static str, cause: u64) {
        if !self.armed {
            return;
        }
        let lamport = self.clocks[node];
        self.push(TraceEvent {
            kind: EventKind::FaultVerdict,
            node: node as u32,
            peer: peer as u32,
            tag,
            lamport,
            cause,
            weight: 0,
        });
    }

    /// A critical-section lifecycle event (request / enter / exit);
    /// `set_size` is the requested resource-set size.  Ticks the node's
    /// clock: local events order after anything the node has seen.
    #[inline]
    pub fn on_cs(&mut self, kind: EventKind, node: usize, set_size: u32) {
        if !self.armed {
            return;
        }
        debug_assert!(matches!(
            kind,
            EventKind::CsRequest | EventKind::CsEnter | EventKind::CsExit
        ));
        let lamport = self.tick(node);
        self.push(TraceEvent {
            kind,
            node: node as u32,
            peer: NO_PEER,
            tag: "",
            lamport,
            cause: 0,
            weight: set_size,
        });
    }

    /// Record one issue→grant waiting time into the live histogram.
    #[inline]
    pub fn record_wait(&mut self, wait: Time) {
        if !self.armed {
            return;
        }
        self.wait.record(wait.as_nanos());
    }

    /// Record one intended-arrival→grant serving latency into the live
    /// histogram (see [`ObsReport::serve`]).
    #[inline]
    pub fn record_serve(&mut self, latency: Time) {
        if !self.armed {
            return;
        }
        self.serve.record(latency.as_nanos());
    }

    /// Drain this tracer's buffer in canonical emission order (ring mode
    /// rotates so the oldest surviving event comes first).  Leaves the
    /// tracer disarmed and empty.
    pub fn take_buf(&mut self) -> Vec<TraceRec> {
        let head = self.head;
        let mut buf = std::mem::take(&mut self.buf);
        if head > 0 {
            buf.rotate_left(head);
        }
        self.armed = false;
        self.head = 0;
        buf
    }

    /// Finish this tracer into an [`ObsReport`] (single-domain runs;
    /// sharded runs merge via [`absorb_into`](Self::absorb_into) +
    /// [`TraceLog::merge`]).
    pub fn finish(mut self) -> ObsReport {
        let armed = self.armed;
        let dropped = self.dropped;
        let wait = std::mem::take(&mut self.wait);
        let serve = std::mem::take(&mut self.serve);
        let msg_latency = std::mem::take(&mut self.msg_latency);
        let queue_depth = std::mem::take(&mut self.queue_depth);
        let trace = if armed {
            let mut recs = self.take_buf();
            recs.sort_unstable_by_key(|r| (r.at, r.ord, r.seq));
            Some(TraceLog { recs, dropped })
        } else {
            None
        };
        ObsReport { armed, wait, serve, msg_latency, queue_depth, trace, net: Default::default() }
    }

    /// Merge this tracer's histograms into `report` and append its raw
    /// buffer to `parts` (the caller finishes with [`TraceLog::merge`]).
    /// Returns the number of ring-dropped events.
    pub fn absorb_into(mut self, report: &mut ObsReport, parts: &mut Vec<Vec<TraceRec>>) -> u64 {
        if !self.armed {
            return 0;
        }
        report.armed = true;
        report.wait.merge(&self.wait);
        report.serve.merge(&self.serve);
        report.msg_latency.merge(&self.msg_latency);
        report.queue_depth.merge(&self.queue_depth);
        let dropped = self.dropped;
        parts.push(self.take_buf());
        dropped
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn disarmed_hooks_are_noops() {
        let mut t = EngineTracer::disarmed();
        assert!(!t.is_armed());
        t.on_dispatch(Time::from_millis(1), 7, 3);
        assert_eq!(t.on_send(0, 1, "Req", 24, Some(Time::from_micros(40))), 0);
        t.on_recv(0, 1, "Req", 24, 0);
        assert_eq!(t.on_retransmit(0, 1, "Req", 24), 0);
        t.on_fault(1, 0, "Req", 0);
        t.on_cs(EventKind::CsEnter, 0, 2);
        t.record_wait(Time::from_millis(5));
        t.record_serve(Time::from_millis(9));
        let rep = t.finish();
        assert!(!rep.armed);
        assert!(rep.trace.is_none());
        assert!(rep.wait.is_empty());
        assert!(rep.serve.is_empty());
    }

    #[test]
    fn lamport_send_recv_join() {
        let mut t = EngineTracer::armed(3, TraceMode::Unbounded);
        t.set_key(Time::from_millis(1), 1);
        let s1 = t.on_send(0, 1, "Req", 10, None);
        assert_eq!(s1, 1);
        let s2 = t.on_send(0, 2, "Req", 10, None);
        assert_eq!(s2, 2);
        t.set_key(Time::from_millis(2), 2);
        t.on_recv(0, 1, "Req", 10, s1);
        t.set_key(Time::from_millis(3), 3);
        t.on_recv(0, 2, "Req", 10, s2);
        let rep = t.finish();
        let log = rep.trace.unwrap();
        assert_eq!(log.len(), 4);
        // recv lamport strictly exceeds its cause.
        for r in &log.recs {
            if r.ev.kind == EventKind::Recv {
                assert!(r.ev.lamport > r.ev.cause);
            }
        }
        // node 1 joined stamp 1 -> clock 2; node 2 joined stamp 2 -> 3.
        assert_eq!(log.recs[2].ev.lamport, 2);
        assert_eq!(log.recs[3].ev.lamport, 3);
    }

    #[test]
    fn seq_resets_per_dispatch_key() {
        let mut t = EngineTracer::armed(2, TraceMode::Unbounded);
        t.set_key(Time::from_millis(1), 5);
        t.on_recv(1, 0, "Req", 8, 1);
        t.on_send(0, 1, "Grant", 8, None);
        t.set_key(Time::from_millis(2), 6);
        t.on_recv(0, 1, "Grant", 8, 2);
        let log = t.finish().trace.unwrap();
        assert_eq!(log.recs.iter().map(|r| r.seq).collect::<Vec<_>>(), vec![0, 1, 0]);
    }

    #[test]
    fn ring_overwrites_oldest_without_growing() {
        let mut t = EngineTracer::armed(2, TraceMode::Ring(4));
        for i in 0..10u64 {
            t.set_key(Time::from_nanos(i), i);
            t.on_send(0, 1, "Req", 1, None);
        }
        assert_eq!(t.dropped(), 6);
        let buf = t.take_buf();
        assert_eq!(buf.len(), 4);
        assert_eq!(buf.capacity(), 4);
        // Oldest surviving first, and only the last 4 survive.
        let ords: Vec<u64> = buf.iter().map(|r| r.ord).collect();
        assert_eq!(ords, vec![6, 7, 8, 9]);
    }

    #[test]
    fn merge_reconstructs_canonical_order() {
        // Interleave two "shards" and check the merge sorts by (at, ord, seq).
        let mut a = EngineTracer::armed(4, TraceMode::Unbounded);
        let mut b = EngineTracer::armed(4, TraceMode::Unbounded);
        a.set_key(Time::from_nanos(10), 2);
        a.on_send(0, 1, "Req", 1, None);
        b.set_key(Time::from_nanos(10), 1);
        b.on_send(2, 3, "Req", 1, None);
        a.set_key(Time::from_nanos(5), 9);
        a.on_cs(EventKind::CsRequest, 0, 2);
        let mut rep = ObsReport::default();
        let mut parts = Vec::new();
        let d = a.absorb_into(&mut rep, &mut parts) + b.absorb_into(&mut rep, &mut parts);
        let log = TraceLog::merge(parts, d);
        let keys: Vec<(u64, u64)> = log.recs.iter().map(|r| (r.at.as_nanos(), r.ord)).collect();
        assert_eq!(keys, vec![(5, 9), (10, 1), (10, 2)]);
        assert!(rep.armed);
    }

    #[test]
    fn retransmit_mints_fresh_stamp() {
        let mut t = EngineTracer::armed(2, TraceMode::Unbounded);
        t.set_key(Time::from_millis(1), 1);
        let s = t.on_send(0, 1, "Req", 4, None);
        t.set_key(Time::from_millis(4), 2);
        let r = t.on_retransmit(0, 1, "Req", 4);
        assert!(r > s);
    }
}
