//! JSONL trace export/import — hand-rolled, like the rest of the
//! workspace's JSON (no serde offline; same approach as
//! `write_bench_engine_json`).
//!
//! ## Schema
//!
//! Line 1 is a run header:
//!
//! ```json
//! {"k":"run","algo":"lass","n":8,"m":16,"events":1234,"dropped":0}
//! ```
//!
//! Every following line is one event in canonical `(at, ord, seq)` order:
//!
//! ```json
//! {"k":"recv","at":1200000,"ord":4294967297,"seq":0,"node":2,"peer":1,"tag":"Req","lam":7,"cause":6,"w":24}
//! ```
//!
//! * `k` — event kind label (`EventKind::label`); `at` — engine time in
//!   nanoseconds; `ord`/`seq` — the engine dispatch key (see
//!   `tracer::TraceRec`); `lam` — the node's Lamport clock after the
//!   event; `cause` — the stamp the message carried (message events);
//!   `w` — weight (bytes, or set size for cs events).
//! * `peer` and `tag` are omitted for non-message events.
//!
//! Integers are plain decimal `u64`; the only escapes the writer emits
//! are `\"`, `\\` and `\u00XX` for control characters, and the parser
//! accepts exactly JSON's escape repertoire.  The determinism test
//! compares these bytes across shard counts, so the rendering must stay
//! canonical: fixed key order, no whitespace.

use crate::event::{EventKind, OwnedEvent, NO_PEER};
use crate::tracer::TraceLog;
use std::fmt::Write as _;

/// A parsed trace file: the header plus every event, in file order.
#[derive(Clone, Debug, Default)]
pub struct RunTrace {
    pub algo: String,
    pub n: usize,
    pub m: usize,
    /// Event count the header declared (checked against `events.len()`).
    pub declared_events: u64,
    /// Ring-overwritten events the header declared.
    pub dropped: u64,
    pub events: Vec<OwnedEvent>,
}

fn esc(out: &mut String, s: &str) {
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            c if (c as u32) < 0x20 => {
                let _ = write!(out, "\\u{:04x}", c as u32);
            }
            c => out.push(c),
        }
    }
}

/// Render a merged log as JSONL (header + one line per event).
pub fn render_jsonl(log: &TraceLog, algo: &str, n: usize, m: usize) -> String {
    // ~96 bytes/line is a comfortable overestimate; avoids regrowth.
    let mut out = String::with_capacity(64 + log.recs.len() * 96);
    out.push_str("{\"k\":\"run\",\"algo\":\"");
    esc(&mut out, algo);
    let _ = writeln!(
        out,
        "\",\"n\":{},\"m\":{},\"events\":{},\"dropped\":{}}}",
        n,
        m,
        log.recs.len(),
        log.dropped
    );
    for r in &log.recs {
        let e = &r.ev;
        let _ = write!(
            out,
            "{{\"k\":\"{}\",\"at\":{},\"ord\":{},\"seq\":{}",
            e.kind.label(),
            r.at.as_nanos(),
            r.ord,
            r.seq
        );
        let _ = write!(out, ",\"node\":{}", e.node);
        if e.peer != NO_PEER {
            let _ = write!(out, ",\"peer\":{}", e.peer);
        }
        if !e.tag.is_empty() {
            out.push_str(",\"tag\":\"");
            esc(&mut out, e.tag);
            out.push('"');
        }
        let _ = writeln!(out, ",\"lam\":{},\"cause\":{},\"w\":{}}}", e.lamport, e.cause, e.weight);
    }
    out
}

/// Render and write a log to `path` in one call.
pub fn write_jsonl_file(
    path: &str,
    log: &TraceLog,
    algo: &str,
    n: usize,
    m: usize,
) -> std::io::Result<()> {
    std::fs::write(path, render_jsonl(log, algo, n, m))
}

#[derive(Clone, Debug, PartialEq)]
enum JVal {
    S(String),
    N(u64),
}

impl JVal {
    fn as_u64(&self) -> Option<u64> {
        match self {
            JVal::N(v) => Some(*v),
            JVal::S(_) => None,
        }
    }
    fn as_str(&self) -> Option<&str> {
        match self {
            JVal::S(s) => Some(s),
            JVal::N(_) => None,
        }
    }
}

/// Parse one flat JSON object of string/u64 values.  Strict: anything the
/// writer would not emit (nesting, floats, negatives, trailing garbage)
/// is an error — a trace file is machine-written, so leniency only hides
/// corruption.
fn parse_line(line: &str) -> Result<Vec<(String, JVal)>, String> {
    let b = line.as_bytes();
    let mut i = 0usize;
    let mut pairs = Vec::new();
    let take_string = |i: &mut usize| -> Result<String, String> {
        if b.get(*i) != Some(&b'"') {
            return Err(format!("expected '\"' at byte {}", *i));
        }
        *i += 1;
        let mut s = String::new();
        loop {
            match b.get(*i) {
                None => return Err("unterminated string".into()),
                Some(b'"') => {
                    *i += 1;
                    return Ok(s);
                }
                Some(b'\\') => {
                    *i += 1;
                    match b.get(*i) {
                        Some(b'"') => s.push('"'),
                        Some(b'\\') => s.push('\\'),
                        Some(b'/') => s.push('/'),
                        Some(b'n') => s.push('\n'),
                        Some(b't') => s.push('\t'),
                        Some(b'r') => s.push('\r'),
                        Some(b'u') => {
                            let hex = line
                                .get(*i + 1..*i + 5)
                                .ok_or_else(|| "truncated \\u escape".to_string())?;
                            let cp = u32::from_str_radix(hex, 16)
                                .map_err(|_| format!("bad \\u escape {hex:?}"))?;
                            s.push(
                                char::from_u32(cp)
                                    .ok_or_else(|| format!("invalid codepoint {cp:#x}"))?,
                            );
                            *i += 4;
                        }
                        other => return Err(format!("bad escape {other:?}")),
                    }
                    *i += 1;
                }
                Some(_) => {
                    // Consume one full UTF-8 char.
                    let rest = &line[*i..];
                    let c = rest.chars().next().unwrap();
                    s.push(c);
                    *i += c.len_utf8();
                }
            }
        }
    };
    if b.first() != Some(&b'{') {
        return Err("expected '{'".into());
    }
    i += 1;
    loop {
        let key = take_string(&mut i)?;
        if b.get(i) != Some(&b':') {
            return Err(format!("expected ':' after key {key:?}"));
        }
        i += 1;
        let val = if b.get(i) == Some(&b'"') {
            JVal::S(take_string(&mut i)?)
        } else {
            let start = i;
            while b.get(i).is_some_and(|c| c.is_ascii_digit()) {
                i += 1;
            }
            if i == start {
                return Err(format!("expected value for key {key:?}"));
            }
            JVal::N(
                line[start..i]
                    .parse::<u64>()
                    .map_err(|e| format!("bad number for {key:?}: {e}"))?,
            )
        };
        pairs.push((key, val));
        match b.get(i) {
            Some(b',') => i += 1,
            Some(b'}') => {
                i += 1;
                break;
            }
            other => return Err(format!("expected ',' or '}}', got {other:?}")),
        }
    }
    if i != b.len() {
        return Err(format!("trailing garbage at byte {i}"));
    }
    Ok(pairs)
}

fn get<'a>(pairs: &'a [(String, JVal)], key: &str) -> Option<&'a JVal> {
    pairs.iter().find(|(k, _)| k == key).map(|(_, v)| v)
}

fn req_u64(pairs: &[(String, JVal)], key: &str) -> Result<u64, String> {
    get(pairs, key)
        .and_then(JVal::as_u64)
        .ok_or_else(|| format!("missing integer field {key:?}"))
}

/// Parse a trace file produced by [`render_jsonl`].
///
/// Checks the header's declared event count against the number of event
/// lines, so a truncated file fails loudly rather than passing a causal
/// check on half a trace.
pub fn parse_jsonl(text: &str) -> Result<RunTrace, String> {
    let mut run = RunTrace::default();
    let mut saw_header = false;
    for (lineno, line) in text.lines().enumerate() {
        if line.is_empty() {
            continue;
        }
        let pairs = parse_line(line).map_err(|e| format!("line {}: {}", lineno + 1, e))?;
        let kind = get(&pairs, "k")
            .and_then(JVal::as_str)
            .ok_or_else(|| format!("line {}: missing \"k\"", lineno + 1))?;
        if kind == "run" {
            if saw_header {
                return Err(format!("line {}: duplicate run header", lineno + 1));
            }
            saw_header = true;
            run.algo = get(&pairs, "algo")
                .and_then(JVal::as_str)
                .ok_or_else(|| format!("line {}: header missing \"algo\"", lineno + 1))?
                .to_string();
            run.n = req_u64(&pairs, "n").map_err(|e| format!("line {}: {e}", lineno + 1))? as usize;
            run.m = req_u64(&pairs, "m").map_err(|e| format!("line {}: {e}", lineno + 1))? as usize;
            run.declared_events =
                req_u64(&pairs, "events").map_err(|e| format!("line {}: {e}", lineno + 1))?;
            run.dropped =
                req_u64(&pairs, "dropped").map_err(|e| format!("line {}: {e}", lineno + 1))?;
            continue;
        }
        if !saw_header {
            return Err(format!("line {}: event before run header", lineno + 1));
        }
        let ek = EventKind::parse(kind)
            .ok_or_else(|| format!("line {}: unknown event kind {kind:?}", lineno + 1))?;
        let u = |key: &str| req_u64(&pairs, key).map_err(|e| format!("line {}: {e}", lineno + 1));
        run.events.push(OwnedEvent {
            kind: ek,
            at_nanos: u("at")?,
            ord: u("ord")?,
            seq: u("seq")? as u32,
            node: u("node")? as u32,
            peer: get(&pairs, "peer").and_then(JVal::as_u64).map_or(NO_PEER, |v| v as u32),
            tag: get(&pairs, "tag").and_then(JVal::as_str).unwrap_or("").to_string(),
            lamport: u("lam")?,
            cause: u("cause")?,
            weight: u("w")? as u32,
        });
    }
    if !saw_header {
        return Err("empty trace: no run header".into());
    }
    if run.declared_events != run.events.len() as u64 {
        return Err(format!(
            "truncated trace: header declares {} events, file has {}",
            run.declared_events,
            run.events.len()
        ));
    }
    Ok(run)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::event::TraceEvent;
    use crate::tracer::TraceRec;
    use mra_types::Time;

    fn sample_log() -> TraceLog {
        let mk = |kind, at: u64, ord, seq, node, peer, tag, lam, cause, w| TraceRec {
            at: Time::from_nanos(at),
            ord,
            seq,
            ev: TraceEvent { kind, node, peer, tag, lamport: lam, cause, weight: w },
        };
        TraceLog {
            recs: vec![
                mk(EventKind::CsRequest, 0, 3, 0, 1, NO_PEER, "", 1, 0, 2),
                mk(EventKind::Send, 0, 3, 1, 1, 0, "Req", 2, 2, 24),
                mk(EventKind::Recv, 1_000_000, 1 << 32, 0, 0, 1, "Req", 3, 2, 24),
                mk(EventKind::FaultVerdict, 2_000_000, 7, 0, 0, 1, "Req", 3, 2, 0),
            ],
            dropped: 0,
        }
    }

    #[test]
    fn round_trip() {
        let log = sample_log();
        let text = render_jsonl(&log, "lass", 2, 4);
        let run = parse_jsonl(&text).expect("parse");
        assert_eq!(run.algo, "lass");
        assert_eq!(run.n, 2);
        assert_eq!(run.m, 4);
        assert_eq!(run.events.len(), log.recs.len());
        assert_eq!(run.events, log.to_owned_events());
    }

    #[test]
    fn truncation_detected() {
        let log = sample_log();
        let text = render_jsonl(&log, "lass", 2, 4);
        let cut: String = text.lines().take(3).map(|l| format!("{l}\n")).collect();
        let err = parse_jsonl(&cut).unwrap_err();
        assert!(err.contains("truncated"), "{err}");
    }

    #[test]
    fn malformed_lines_rejected() {
        assert!(parse_jsonl("").is_err());
        assert!(parse_jsonl("{\"k\":\"run\",\"algo\":\"x\"}\n").is_err()); // missing fields
        let log = sample_log();
        let mut text = render_jsonl(&log, "a", 2, 4);
        text.push_str("not json\n");
        assert!(parse_jsonl(&text).is_err());
    }

    #[test]
    fn tag_escaping_round_trips() {
        let log = TraceLog {
            recs: vec![TraceRec {
                at: Time::ZERO,
                ord: 1,
                seq: 0,
                ev: TraceEvent {
                    kind: EventKind::Send,
                    node: 0,
                    peer: 1,
                    tag: "we\"ird\\tag",
                    lamport: 1,
                    cause: 1,
                    weight: 0,
                },
            }],
            dropped: 0,
        };
        let run = parse_jsonl(&render_jsonl(&log, "x\"y", 2, 1)).expect("parse");
        assert_eq!(run.algo, "x\"y");
        assert_eq!(run.events[0].tag, "we\"ird\\tag");
    }
}
