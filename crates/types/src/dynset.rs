//! Dynamic-capacity bitsets.
//!
//! [`DynSet`] replaces the fixed 256-element [`crate::BitSet256`] behind
//! the [`ResourceSet`]/[`NodeSet`] aliases so scenarios can scale past the
//! paper's N = 32 / M = 80 shape to 10k+ nodes and 100k+ resources.  The
//! representation is a word vector with an **inline small-set fast path**:
//! sets whose largest element is below 256 live in four inline words
//! (exactly the old `BitSet256` footprint) and never touch the heap, so
//! the protocol hot paths of paper-scale runs stay allocation-free.
//! Inserting an element ≥ 256 promotes the set to a heap word vector of
//! whatever length the largest element needs.
//!
//! Unlike `BitSet256`, `DynSet` is `Clone` but not `Copy`; call sites that
//! used to copy sets implicitly now clone explicitly.  Equality and
//! hashing are representation-independent: trailing zero words are
//! ignored, so an inline `{3}` equals a heap `{3}` that once held 10_000.

use std::fmt;
use std::hash::{Hash, Hasher};

/// Number of inline words: 4 × 64 = 256 elements before heap promotion,
/// matching the old fixed capacity (the paper's shape plus headroom).
const INLINE_WORDS: usize = 4;
const INLINE_BITS: usize = INLINE_WORDS * 64;

#[derive(Clone)]
enum Repr {
    Inline([u64; INLINE_WORDS]),
    Heap(Vec<u64>),
}

/// A set of `usize` elements stored as a dynamic bit vector.
///
/// All operations are O(words).  Elements below 256 never allocate.
#[derive(Clone)]
pub struct DynSet {
    repr: Repr,
}

impl DynSet {
    /// The empty set (inline, allocation-free).
    pub const EMPTY: DynSet = DynSet {
        repr: Repr::Inline([0; INLINE_WORDS]),
    };

    /// Create an empty set.
    #[inline]
    pub const fn new() -> Self {
        Self::EMPTY
    }

    /// Create the full set `{0, .., n-1}` for any `n`.
    pub fn full(n: usize) -> Self {
        let mut s = Self::new();
        if n > INLINE_BITS {
            s.repr = Repr::Heap(vec![0; n.div_ceil(64)]);
        }
        let words = s.words_mut();
        for (wi, w) in words.iter_mut().enumerate() {
            let lo = wi * 64;
            if lo + 64 <= n {
                *w = u64::MAX;
            } else if lo < n {
                *w = (1u64 << (n - lo)) - 1;
            }
        }
        s
    }

    /// Create a singleton set `{i}`.
    #[inline]
    pub fn singleton(i: usize) -> Self {
        let mut s = Self::new();
        s.insert(i);
        s
    }

    #[inline]
    fn words(&self) -> &[u64] {
        match &self.repr {
            Repr::Inline(w) => w,
            Repr::Heap(v) => v,
        }
    }

    #[inline]
    fn words_mut(&mut self) -> &mut [u64] {
        match &mut self.repr {
            Repr::Inline(w) => w,
            Repr::Heap(v) => v,
        }
    }

    /// Grow (promoting to heap if needed) so element `i` is addressable.
    fn grow_for(&mut self, i: usize) {
        let need = i / 64 + 1;
        match &mut self.repr {
            Repr::Inline(w) if need > INLINE_WORDS => {
                let mut v = vec![0u64; need];
                v[..INLINE_WORDS].copy_from_slice(w);
                self.repr = Repr::Heap(v);
            }
            Repr::Inline(_) => {}
            Repr::Heap(v) => {
                if v.len() < need {
                    v.resize(need, 0);
                }
            }
        }
    }

    /// Number of elements.
    #[inline]
    pub fn len(&self) -> usize {
        self.words().iter().map(|w| w.count_ones() as usize).sum()
    }

    /// True if the set has no elements.
    #[inline]
    pub fn is_empty(&self) -> bool {
        self.words().iter().all(|&w| w == 0)
    }

    /// Add element `i`. Returns true if it was newly inserted.
    #[inline]
    pub fn insert(&mut self, i: usize) -> bool {
        if i / 64 >= self.words().len() {
            self.grow_for(i);
        }
        let (w, b) = (i / 64, i % 64);
        let words = self.words_mut();
        let newly = words[w] & (1 << b) == 0;
        words[w] |= 1 << b;
        newly
    }

    /// Remove element `i`. Returns true if it was present.
    #[inline]
    pub fn remove(&mut self, i: usize) -> bool {
        let (w, b) = (i / 64, i % 64);
        let words = self.words_mut();
        if w >= words.len() {
            return false;
        }
        let present = words[w] & (1 << b) != 0;
        words[w] &= !(1 << b);
        present
    }

    /// Membership test (false for any element past the allocated range).
    #[inline]
    pub fn contains(&self, i: usize) -> bool {
        let words = self.words();
        let w = i / 64;
        w < words.len() && words[w] & (1 << (i % 64)) != 0
    }

    /// Remove all elements.  Keeps the current representation (and heap
    /// capacity), so steady-state reuse stays allocation-free.
    #[inline]
    pub fn clear(&mut self) {
        for w in self.words_mut() {
            *w = 0;
        }
    }

    /// `self ∪ other`.
    #[inline]
    pub fn union(&self, other: &Self) -> Self {
        let mut out = if self.words().len() >= other.words().len() {
            self.clone()
        } else {
            other.clone()
        };
        let short = if self.words().len() >= other.words().len() {
            other.words()
        } else {
            self.words()
        };
        for (a, b) in out.words_mut().iter_mut().zip(short.iter()) {
            *a |= b;
        }
        out
    }

    /// `self ∩ other`.
    #[inline]
    pub fn intersection(&self, other: &Self) -> Self {
        let mut out = self.clone();
        let ow = other.words();
        for (wi, a) in out.words_mut().iter_mut().enumerate() {
            *a &= ow.get(wi).copied().unwrap_or(0);
        }
        out
    }

    /// `self \ other`.
    #[inline]
    pub fn difference(&self, other: &Self) -> Self {
        let mut out = self.clone();
        out.difference_with(other);
        out
    }

    /// In-place union.
    #[inline]
    pub fn union_with(&mut self, other: &Self) {
        if other.words().len() > self.words().len() {
            if let Some(hi) = other.last() {
                self.grow_for(hi);
            }
        }
        let ow = other.words();
        for (a, b) in self.words_mut().iter_mut().zip(ow.iter()) {
            *a |= b;
        }
    }

    /// In-place difference.
    #[inline]
    pub fn difference_with(&mut self, other: &Self) {
        let ow = other.words();
        for (wi, a) in self.words_mut().iter_mut().enumerate() {
            *a &= !ow.get(wi).copied().unwrap_or(0);
        }
    }

    /// True if every element of `self` is in `other` (`self ⊆ other`).
    #[inline]
    pub fn is_subset(&self, other: &Self) -> bool {
        let ow = other.words();
        self.words()
            .iter()
            .enumerate()
            .all(|(wi, a)| a & !ow.get(wi).copied().unwrap_or(0) == 0)
    }

    /// True if the sets share no element.
    #[inline]
    pub fn is_disjoint(&self, other: &Self) -> bool {
        self.words()
            .iter()
            .zip(other.words().iter())
            .all(|(a, b)| a & b == 0)
    }

    /// Smallest element, if any.
    #[inline]
    pub fn first(&self) -> Option<usize> {
        for (wi, &w) in self.words().iter().enumerate() {
            if w != 0 {
                return Some(wi * 64 + w.trailing_zeros() as usize);
            }
        }
        None
    }

    /// Largest element, if any.
    #[inline]
    pub fn last(&self) -> Option<usize> {
        for (wi, &w) in self.words().iter().enumerate().rev() {
            if w != 0 {
                return Some(wi * 64 + 63 - w.leading_zeros() as usize);
            }
        }
        None
    }

    /// Iterate over elements in increasing order.
    ///
    /// The iterator owns its words (inline sets copy four words; heap sets
    /// clone the vector), so call sites may mutate unrelated fields of the
    /// owner mid-loop — the pattern the protocol handlers rely on.
    #[inline]
    pub fn iter(&self) -> SetIter {
        match &self.repr {
            Repr::Inline(w) => SetIter {
                words: Words::Inline(*w),
                word_idx: 0,
            },
            Repr::Heap(v) => SetIter {
                words: Words::Heap(v.clone()),
                word_idx: 0,
            },
        }
    }

    /// Collect into a `Vec<usize>` (convenience for tests and display).
    pub fn to_vec(&self) -> Vec<usize> {
        self.iter().collect()
    }

    /// The canonical word representation with trailing zero words trimmed
    /// (little-endian word order: word 0 holds elements `0..64`).  Used by
    /// the length-prefixed wire codecs; every word slice is a valid set, so
    /// [`DynSet::from_words`] is total.
    pub fn to_words(&self) -> Vec<u64> {
        let words = self.words();
        let used = words.iter().rposition(|&w| w != 0).map_or(0, |i| i + 1);
        words[..used].to_vec()
    }

    /// Rebuild a set from a word representation of any length.
    pub fn from_words(words: &[u64]) -> Self {
        let used = words.iter().rposition(|&w| w != 0).map_or(0, |i| i + 1);
        if used <= INLINE_WORDS {
            let mut w = [0u64; INLINE_WORDS];
            w[..used].copy_from_slice(&words[..used]);
            DynSet {
                repr: Repr::Inline(w),
            }
        } else {
            DynSet {
                repr: Repr::Heap(words[..used].to_vec()),
            }
        }
    }

    /// True if the set currently lives in the inline representation
    /// (diagnostics; the parity proptest exercises the boundary).
    pub fn is_inline(&self) -> bool {
        matches!(self.repr, Repr::Inline(_))
    }
}

impl Default for DynSet {
    #[inline]
    fn default() -> Self {
        Self::EMPTY
    }
}

impl PartialEq for DynSet {
    fn eq(&self, other: &Self) -> bool {
        let (a, b) = (self.words(), other.words());
        let common = a.len().min(b.len());
        a[..common] == b[..common]
            && a[common..].iter().all(|&w| w == 0)
            && b[common..].iter().all(|&w| w == 0)
    }
}

impl Eq for DynSet {}

impl Hash for DynSet {
    fn hash<H: Hasher>(&self, state: &mut H) {
        let words = self.words();
        let used = words.iter().rposition(|&w| w != 0).map_or(0, |i| i + 1);
        words[..used].hash(state);
    }
}

impl FromIterator<usize> for DynSet {
    fn from_iter<I: IntoIterator<Item = usize>>(iter: I) -> Self {
        let mut s = Self::new();
        for i in iter {
            s.insert(i);
        }
        s
    }
}

impl IntoIterator for &DynSet {
    type Item = usize;
    type IntoIter = SetIter;
    fn into_iter(self) -> SetIter {
        self.iter()
    }
}

impl fmt::Debug for DynSet {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_set().entries(self.iter()).finish()
    }
}

enum Words {
    Inline([u64; INLINE_WORDS]),
    Heap(Vec<u64>),
}

impl Words {
    #[inline]
    fn slice(&self) -> &[u64] {
        match self {
            Words::Inline(w) => w,
            Words::Heap(v) => v,
        }
    }

    #[inline]
    fn slice_mut(&mut self) -> &mut [u64] {
        match self {
            Words::Inline(w) => w,
            Words::Heap(v) => v,
        }
    }
}

/// Iterator over the elements of a [`DynSet`] in increasing order.
///
/// Owns its words (clearing bits as they are yielded), so it needs no
/// lifetime — protocol loops iterate a set while mutating their owner.
pub struct SetIter {
    words: Words,
    word_idx: usize,
}

impl Iterator for SetIter {
    type Item = usize;

    #[inline]
    fn next(&mut self) -> Option<usize> {
        let n = self.words.slice().len();
        while self.word_idx < n {
            let w = self.words.slice()[self.word_idx];
            if w != 0 {
                let b = w.trailing_zeros() as usize;
                self.words.slice_mut()[self.word_idx] = w & (w - 1);
                return Some(self.word_idx * 64 + b);
            }
            self.word_idx += 1;
        }
        None
    }

    fn size_hint(&self) -> (usize, Option<usize>) {
        let n: usize = self.words.slice()[self.word_idx.min(self.words.slice().len())..]
            .iter()
            .map(|w| w.count_ones() as usize)
            .sum();
        (n, Some(n))
    }
}

impl ExactSizeIterator for SetIter {}

#[cfg(test)]
mod tests {
    use super::*;
    use std::collections::hash_map::DefaultHasher;
    use std::collections::HashSet;

    #[test]
    fn insert_remove_contains_small() {
        let mut s = DynSet::new();
        assert!(s.is_empty());
        assert!(s.insert(5));
        assert!(!s.insert(5));
        assert!(s.contains(5));
        assert!(!s.contains(6));
        assert_eq!(s.len(), 1);
        assert!(s.remove(5));
        assert!(!s.remove(5));
        assert!(s.is_empty());
        assert!(s.is_inline());
    }

    #[test]
    fn promotion_at_256() {
        let mut s = DynSet::new();
        s.insert(255);
        assert!(s.is_inline());
        s.insert(256);
        assert!(!s.is_inline());
        assert!(s.contains(255) && s.contains(256));
        assert_eq!(s.to_vec(), vec![255, 256]);
        s.insert(99_999);
        assert!(s.contains(99_999));
        assert_eq!(s.len(), 3);
    }

    #[test]
    fn eq_and_hash_ignore_representation() {
        let mut a = DynSet::singleton(3);
        let mut b = DynSet::singleton(3);
        b.insert(10_000);
        b.remove(10_000);
        assert!(!b.is_inline());
        assert_eq!(a, b);
        let h = |s: &DynSet| {
            let mut h = DefaultHasher::new();
            s.hash(&mut h);
            h.finish()
        };
        assert_eq!(h(&a), h(&b));
        a.insert(4);
        assert_ne!(a, b);
    }

    #[test]
    fn full_of_any_size() {
        for n in [0usize, 1, 63, 64, 80, 256, 257, 1000] {
            let s = DynSet::full(n);
            assert_eq!(s.len(), n, "full({n})");
            assert!(s.iter().eq(0..n));
        }
    }

    #[test]
    fn set_algebra_across_the_boundary() {
        let a: DynSet = [1usize, 2, 300].into_iter().collect();
        let b: DynSet = [2usize, 4].into_iter().collect();
        assert_eq!(a.union(&b).to_vec(), vec![1, 2, 4, 300]);
        assert_eq!(b.union(&a).to_vec(), vec![1, 2, 4, 300]);
        assert_eq!(a.intersection(&b).to_vec(), vec![2]);
        assert_eq!(b.intersection(&a).to_vec(), vec![2]);
        assert_eq!(a.difference(&b).to_vec(), vec![1, 300]);
        assert_eq!(b.difference(&a).to_vec(), vec![4]);
        assert!(!a.is_disjoint(&b));
        assert!(a.difference(&b).is_disjoint(&b));
        assert!(a.intersection(&b).is_subset(&a));
        assert!(b.is_subset(&a.union(&b)));
        assert!(DynSet::EMPTY.is_subset(&a));
        let mut u = a.clone();
        u.union_with(&b);
        assert_eq!(u, a.union(&b));
        let mut c = b.clone();
        c.union_with(&a);
        assert_eq!(c, a.union(&b));
        let mut d = a.clone();
        d.difference_with(&b);
        assert_eq!(d, a.difference(&b));
    }

    #[test]
    fn first_last_and_clear() {
        let mut s: DynSet = [7usize, 500].into_iter().collect();
        assert_eq!(s.first(), Some(7));
        assert_eq!(s.last(), Some(500));
        s.clear();
        assert!(s.is_empty());
        assert_eq!(s.first(), None);
        assert_eq!(s.last(), None);
        // clear keeps the heap representation (capacity reuse).
        assert!(!s.is_inline());
        assert_eq!(s, DynSet::EMPTY);
    }

    #[test]
    fn words_roundtrip_trims() {
        let s: DynSet = [0usize, 63, 64, 200, 255, 700].into_iter().collect();
        assert_eq!(DynSet::from_words(&s.to_words()), s);
        assert_eq!(DynSet::from_words(&[]), DynSet::EMPTY);
        assert_eq!(DynSet::from_words(&[0, 0, 0]), DynSet::EMPTY);
        let small: DynSet = [3usize].into_iter().collect();
        assert_eq!(small.to_words(), vec![8u64]);
        // from_words of a padded slice lands inline when it fits.
        assert!(DynSet::from_words(&[8, 0, 0, 0, 0, 0]).is_inline());
    }

    #[test]
    fn model_based_random_ops_large_universe() {
        let mut seed = 0x9E3779B97F4A7C15u64;
        let mut next = || {
            seed ^= seed << 13;
            seed ^= seed >> 7;
            seed ^= seed << 17;
            seed
        };
        let mut s = DynSet::new();
        let mut model: HashSet<usize> = HashSet::new();
        for _ in 0..4000 {
            let v = (next() % 1024) as usize;
            match next() % 3 {
                0 => assert_eq!(s.insert(v), model.insert(v)),
                1 => assert_eq!(s.remove(v), model.remove(&v)),
                _ => assert_eq!(s.contains(v), model.contains(&v)),
            }
            assert_eq!(s.len(), model.len());
        }
        let mut got = s.to_vec();
        let mut want: Vec<usize> = model.into_iter().collect();
        got.sort_unstable();
        want.sort_unstable();
        assert_eq!(got, want);
    }
}
