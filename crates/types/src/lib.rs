//! Core value types shared by every crate in the `mra` workspace.
//!
//! This crate is dependency-free on purpose: protocol crates, the simulator
//! and the workload harness all build on these primitives, so keeping them
//! small and `Copy` keeps the hot paths allocation-free.
//!
//! * [`Time`] — a nanosecond-resolution instant/duration used as virtual time
//!   by the discrete-event simulator and as real time by the threaded
//!   runtime.
//! * [`BitSet256`] — a fixed-capacity (256 element) bitset that is `Copy`
//!   (4 machine words).  [`ResourceSet`] and [`NodeSet`] are typed wrappers.
//! * [`NodeId`] / [`ResourceId`] / [`RequestId`] — plain index aliases.

pub mod bitset;
pub mod time;

pub use bitset::{BitSet256, NodeSet, ResourceSet, SetIter};
pub use time::Time;

/// Identifier of a node (process/site).  Nodes are numbered `0..N`.
///
/// The paper orders sites totally by their identifier (`s_i ≺ s_j ⇔ i < j`);
/// the natural `usize` order is that order.
pub type NodeId = usize;

/// Identifier of a resource.  Resources are numbered `0..M`.
pub type ResourceId = usize;

/// Per-site critical-section request identifier (the paper's `id`).
///
/// Each site increments its own counter at every new request, so the pair
/// `(NodeId, RequestId)` uniquely identifies a critical-section request.
pub type RequestId = u64;

/// Maximum number of nodes and resources supported by the fixed-capacity
/// bitsets.  The paper evaluates N = 32 processes and M = 80 resources;
/// 256 leaves ample headroom while keeping [`BitSet256`] `Copy`.
pub const MAX_UNIVERSE: usize = 256;
