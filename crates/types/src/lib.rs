//! Core value types shared by every crate in the `mra` workspace.
//!
//! This crate is dependency-free on purpose: protocol crates, the simulator
//! and the workload harness all build on these primitives, so keeping them
//! small and `Copy` keeps the hot paths allocation-free.
//!
//! * [`Time`] — a nanosecond-resolution instant/duration used as virtual time
//!   by the discrete-event simulator and as real time by the threaded
//!   runtime.
//! * [`DynSet`] — a dynamic word-vector bitset with an inline ≤256-element
//!   fast path.  [`ResourceSet`] and [`NodeSet`] are typed aliases.
//! * [`BitSet256`] — the historical fixed-capacity (256 element) `Copy`
//!   bitset, retained as the reference model for `DynSet` parity tests.
//! * [`ResTable`] — per-resource state storage, dense for small universes
//!   and lazily materialized at 100k-resource scale.
//! * [`NodeId`] / [`ResourceId`] / [`RequestId`] — plain index aliases.

pub mod bitset;
pub mod dynset;
pub mod restable;
pub mod time;

pub use bitset::BitSet256;
pub use dynset::{DynSet, SetIter};
pub use restable::{ResTable, DENSE_TABLE_MAX};
pub use time::Time;

/// A set of resources (`ResourceId`s).  The paper's `D`, `TOwned`,
/// `TRequired`, `CntNeeded`, `TLent` and `missingRes` are all `ResourceSet`s.
pub type ResourceSet = DynSet;

/// A set of nodes (`NodeId`s).  Used for the visited-node sets carried by
/// forwarded request messages (paper §4.2.1).
pub type NodeSet = DynSet;

/// Identifier of a node (process/site).  Nodes are numbered `0..N`.
///
/// The paper orders sites totally by their identifier (`s_i ≺ s_j ⇔ i < j`);
/// the natural `usize` order is that order.
pub type NodeId = usize;

/// Identifier of a resource.  Resources are numbered `0..M`.
pub type ResourceId = usize;

/// Per-site critical-section request identifier (the paper's `id`).
///
/// Each site increments its own counter at every new request, so the pair
/// `(NodeId, RequestId)` uniquely identifies a critical-section request.
pub type RequestId = u64;

/// Capacity of the fixed [`BitSet256`] and the inline fast path of
/// [`DynSet`].  The paper evaluates N = 32 processes and M = 80 resources;
/// sets whose elements stay below this bound never touch the heap.
pub const MAX_UNIVERSE: usize = 256;
