//! Nanosecond-resolution time.
//!
//! A single type doubles as *instant* and *duration*: the discrete-event
//! simulator only ever needs a totally ordered monotone axis with addition
//! and saturating subtraction, and using one representation avoids a zoo of
//! conversions on hot paths.

use std::fmt;
use std::iter::Sum;
use std::ops::{Add, AddAssign, Div, Mul, Sub, SubAssign};

/// A point on (or a distance along) the virtual time axis, in nanoseconds.
///
/// `Time` is `Copy`, totally ordered and wraps a `u64`, giving a range of
/// roughly 584 years — far beyond any simulation horizon used here.
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default)]
pub struct Time(u64);

impl Time {
    /// The origin of the time axis.
    pub const ZERO: Time = Time(0);
    /// The largest representable time; used as an "infinitely far" sentinel.
    pub const MAX: Time = Time(u64::MAX);

    /// Construct from raw nanoseconds.
    #[inline]
    pub const fn from_nanos(ns: u64) -> Self {
        Time(ns)
    }

    /// Construct from microseconds.
    #[inline]
    pub const fn from_micros(us: u64) -> Self {
        Time(us * 1_000)
    }

    /// Construct from milliseconds.
    #[inline]
    pub const fn from_millis(ms: u64) -> Self {
        Time(ms * 1_000_000)
    }

    /// Construct from seconds.
    #[inline]
    pub const fn from_secs(s: u64) -> Self {
        Time(s * 1_000_000_000)
    }

    /// Construct from a floating-point number of seconds (saturating at 0).
    ///
    /// Used when scaling durations by workload factors (e.g. CS time
    /// jitter); negative and NaN inputs map to zero.
    #[inline]
    pub fn from_secs_f64(s: f64) -> Self {
        if s.is_nan() || s <= 0.0 {
            return Time::ZERO;
        }
        Time((s * 1e9).round().min(u64::MAX as f64) as u64)
    }

    /// Construct from a floating-point number of milliseconds.
    #[inline]
    pub fn from_millis_f64(ms: f64) -> Self {
        Self::from_secs_f64(ms / 1e3)
    }

    /// Raw nanosecond count.
    #[inline]
    pub const fn as_nanos(self) -> u64 {
        self.0
    }

    /// Value in seconds as `f64` (lossy beyond 2^53 ns, irrelevant here).
    #[inline]
    pub fn as_secs_f64(self) -> f64 {
        self.0 as f64 / 1e9
    }

    /// Value in milliseconds as `f64`.
    #[inline]
    pub fn as_millis_f64(self) -> f64 {
        self.0 as f64 / 1e6
    }

    /// Saturating subtraction: `a.saturating_sub(b) == max(a - b, 0)`.
    #[inline]
    pub fn saturating_sub(self, rhs: Time) -> Time {
        Time(self.0.saturating_sub(rhs.0))
    }

    /// Checked addition, `None` on overflow.
    #[inline]
    pub fn checked_add(self, rhs: Time) -> Option<Time> {
        self.0.checked_add(rhs.0).map(Time)
    }

    /// The larger of two times.
    #[inline]
    pub fn max(self, rhs: Time) -> Time {
        if self >= rhs {
            self
        } else {
            rhs
        }
    }

    /// The smaller of two times.
    #[inline]
    pub fn min(self, rhs: Time) -> Time {
        if self <= rhs {
            self
        } else {
            rhs
        }
    }

    /// Scale a duration by a dimensionless factor (saturating, NaN ⇒ 0).
    #[inline]
    pub fn mul_f64(self, k: f64) -> Time {
        Time::from_secs_f64(self.as_secs_f64() * k)
    }

    /// Convert to `std::time::Duration` (for the threaded runtime).
    #[inline]
    pub fn to_std(self) -> std::time::Duration {
        std::time::Duration::from_nanos(self.0)
    }
}

impl Add for Time {
    type Output = Time;
    #[inline]
    fn add(self, rhs: Time) -> Time {
        Time(self.0 + rhs.0)
    }
}

impl AddAssign for Time {
    #[inline]
    fn add_assign(&mut self, rhs: Time) {
        self.0 += rhs.0;
    }
}

impl Sub for Time {
    type Output = Time;
    /// Panics on underflow in debug builds; use [`Time::saturating_sub`]
    /// when the ordering of the operands is not guaranteed.
    #[inline]
    fn sub(self, rhs: Time) -> Time {
        Time(self.0 - rhs.0)
    }
}

impl SubAssign for Time {
    #[inline]
    fn sub_assign(&mut self, rhs: Time) {
        self.0 -= rhs.0;
    }
}

impl Mul<u64> for Time {
    type Output = Time;
    #[inline]
    fn mul(self, rhs: u64) -> Time {
        Time(self.0 * rhs)
    }
}

impl Div<u64> for Time {
    type Output = Time;
    #[inline]
    fn div(self, rhs: u64) -> Time {
        Time(self.0 / rhs)
    }
}

impl Sum for Time {
    fn sum<I: Iterator<Item = Time>>(iter: I) -> Time {
        iter.fold(Time::ZERO, |a, b| a + b)
    }
}

impl fmt::Debug for Time {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}", self)
    }
}

impl fmt::Display for Time {
    /// Human scale: picks the widest unit that keeps 3+ significant digits.
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let ns = self.0;
        if ns == 0 {
            write!(f, "0s")
        } else if ns < 1_000 {
            write!(f, "{}ns", ns)
        } else if ns < 1_000_000 {
            write!(f, "{:.2}us", ns as f64 / 1e3)
        } else if ns < 1_000_000_000 {
            write!(f, "{:.2}ms", ns as f64 / 1e6)
        } else {
            write!(f, "{:.3}s", ns as f64 / 1e9)
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn construction_units_agree() {
        assert_eq!(Time::from_secs(1), Time::from_millis(1_000));
        assert_eq!(Time::from_millis(1), Time::from_micros(1_000));
        assert_eq!(Time::from_micros(1), Time::from_nanos(1_000));
    }

    #[test]
    fn float_roundtrip() {
        let t = Time::from_millis(35);
        assert!((t.as_millis_f64() - 35.0).abs() < 1e-9);
        assert_eq!(Time::from_millis_f64(0.6), Time::from_micros(600));
        assert_eq!(Time::from_secs_f64(-1.0), Time::ZERO);
        assert_eq!(Time::from_secs_f64(f64::NAN), Time::ZERO);
    }

    #[test]
    fn arithmetic() {
        let a = Time::from_millis(5);
        let b = Time::from_millis(3);
        assert_eq!(a + b, Time::from_millis(8));
        assert_eq!(a - b, Time::from_millis(2));
        assert_eq!(b.saturating_sub(a), Time::ZERO);
        assert_eq!(a * 3, Time::from_millis(15));
        assert_eq!(a / 5, Time::from_millis(1));
        assert_eq!(a.max(b), a);
        assert_eq!(a.min(b), b);
    }

    #[test]
    fn mul_f64_scales() {
        let a = Time::from_millis(10);
        assert_eq!(a.mul_f64(1.5), Time::from_millis(15));
        assert_eq!(a.mul_f64(0.0), Time::ZERO);
        assert_eq!(a.mul_f64(f64::NAN), Time::ZERO);
    }

    #[test]
    fn sum_iterates() {
        let total: Time = (1..=4u64).map(Time::from_millis).sum();
        assert_eq!(total, Time::from_millis(10));
    }

    #[test]
    fn display_units() {
        assert_eq!(format!("{}", Time::from_nanos(12)), "12ns");
        assert_eq!(format!("{}", Time::from_micros(1)), "1.00us");
        assert_eq!(format!("{}", Time::from_millis(2)), "2.00ms");
        assert_eq!(format!("{}", Time::from_secs(3)), "3.000s");
        assert_eq!(format!("{}", Time::ZERO), "0s");
    }

    #[test]
    fn ordering_is_numeric() {
        assert!(Time::from_millis(1) < Time::from_millis(2));
        assert!(Time::MAX > Time::from_secs(1_000_000));
    }
}
