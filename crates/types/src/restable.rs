//! Per-resource state tables that scale to 100k+ resources.
//!
//! The protocol crates keep per-resource state (token directories, request
//! counters, lazily created token instances).  At the paper's M = 80 a
//! dense `Vec` indexed by `ResourceId` is ideal; at M = 100_000 a dense
//! vector **per node** multiplies out to gigabytes.  [`ResTable`] picks the
//! representation by universe size: dense `Vec<T>` up to
//! [`DENSE_TABLE_MAX`] resources (every entry materialized eagerly),
//! hash-mapped entries above it (entries materialized on first touch).
//!
//! The table deliberately exposes **no iteration** over its entries: a
//! `HashMap` iterates in nondeterministic order, and determinism is the
//! repo's core invariant.  Protocol logic must address entries by id.

use crate::ResourceId;
use std::collections::HashMap;

/// Largest universe for which [`ResTable`] materializes a dense vector.
/// 4096 × a few machine words per entry keeps paper-scale tables flat and
/// allocation-free after construction while capping eager memory at big M.
pub const DENSE_TABLE_MAX: usize = 4096;

#[derive(Clone)]
enum Repr<T> {
    Dense(Vec<T>),
    Sparse(HashMap<ResourceId, T>),
}

/// A map from `ResourceId` in `0..m` to `T`, dense for small `m` and
/// lazily materialized above [`DENSE_TABLE_MAX`].
#[derive(Clone)]
pub struct ResTable<T> {
    repr: Repr<T>,
}

impl<T> ResTable<T> {
    /// Build a table for universe `0..m`, constructing dense entries with
    /// `mk`.  For sparse tables `mk` is not called here; absent entries are
    /// built on first [`ResTable::get_or`] touch.
    pub fn new_with(m: usize, mk: impl FnMut(ResourceId) -> T) -> Self {
        if m <= DENSE_TABLE_MAX {
            ResTable {
                repr: Repr::Dense((0..m).map(mk).collect()),
            }
        } else {
            ResTable {
                repr: Repr::Sparse(HashMap::new()),
            }
        }
    }

    /// The entry for `r`, if it has been materialized (dense tables always
    /// have it).  Callers interpret `None` as the entry's default value.
    #[inline]
    pub fn get(&self, r: ResourceId) -> Option<&T> {
        match &self.repr {
            Repr::Dense(v) => v.get(r),
            Repr::Sparse(map) => map.get(&r),
        }
    }

    /// Mutable access to a materialized entry.
    #[inline]
    pub fn get_mut(&mut self, r: ResourceId) -> Option<&mut T> {
        match &mut self.repr {
            Repr::Dense(v) => v.get_mut(r),
            Repr::Sparse(map) => map.get_mut(&r),
        }
    }

    /// Mutable access, materializing the entry with `mk` if absent.
    #[inline]
    pub fn get_or(&mut self, r: ResourceId, mk: impl FnOnce(ResourceId) -> T) -> &mut T {
        match &mut self.repr {
            Repr::Dense(v) => &mut v[r],
            Repr::Sparse(map) => map.entry(r).or_insert_with(|| mk(r)),
        }
    }

    /// Overwrite the entry for `r`, materializing it if absent.
    #[inline]
    pub fn set(&mut self, r: ResourceId, val: T) {
        match &mut self.repr {
            Repr::Dense(v) => v[r] = val,
            Repr::Sparse(map) => {
                map.insert(r, val);
            }
        }
    }

    /// Number of materialized entries (dense: the universe size).
    pub fn materialized(&self) -> usize {
        match &self.repr {
            Repr::Dense(v) => v.len(),
            Repr::Sparse(map) => map.len(),
        }
    }

    /// True if the table uses the dense representation.
    pub fn is_dense(&self) -> bool {
        matches!(self.repr, Repr::Dense(_))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn dense_small_universe() {
        let mut t: ResTable<u64> = ResTable::new_with(80, |r| r as u64 * 10);
        assert!(t.is_dense());
        assert_eq!(t.materialized(), 80);
        assert_eq!(t.get(7), Some(&70));
        *t.get_or(7, |_| unreachable!()) += 1;
        assert_eq!(t.get(7), Some(&71));
    }

    #[test]
    fn sparse_big_universe_lazy() {
        let mut t: ResTable<u64> = ResTable::new_with(100_000, |_| panic!("eager mk in sparse"));
        assert!(!t.is_dense());
        assert_eq!(t.materialized(), 0);
        assert_eq!(t.get(99_999), None);
        *t.get_or(99_999, |r| r as u64) += 1;
        assert_eq!(t.get(99_999), Some(&100_000));
        assert_eq!(t.materialized(), 1);
        assert_eq!(t.get_mut(5), None);
    }

    #[test]
    fn boundary_is_dense() {
        let t: ResTable<u8> = ResTable::new_with(DENSE_TABLE_MAX, |_| 0);
        assert!(t.is_dense());
        let t: ResTable<u8> = ResTable::new_with(DENSE_TABLE_MAX + 1, |_| 0);
        assert!(!t.is_dense());
    }
}
