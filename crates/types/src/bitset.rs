//! Fixed-capacity bitsets.
//!
//! Historically [`BitSet256`] sat behind the `ResourceSet`/`NodeSet`
//! aliases; those now point at the dynamic [`crate::DynSet`].  The fixed
//! 4-word set is kept as the **reference model** for the dynamic
//! representation: `tests/prop_dynset.rs` checks that random op sequences
//! agree between the two on the shared `0..256` universe.

use crate::MAX_UNIVERSE;
use std::fmt;

const WORDS: usize = MAX_UNIVERSE / 64;

/// A set of integers in `0..256`, stored as four `u64` words.
///
/// All operations are O(words) = O(1).  The type is `Copy`, so protocol
/// messages can embed sets freely.
#[derive(Clone, Copy, PartialEq, Eq, Hash, Default)]
pub struct BitSet256 {
    words: [u64; WORDS],
}

impl BitSet256 {
    /// The empty set.
    pub const EMPTY: BitSet256 = BitSet256 { words: [0; WORDS] };

    /// Create an empty set.
    #[inline]
    pub const fn new() -> Self {
        Self::EMPTY
    }

    /// Create the full set `{0, .., n-1}`.
    ///
    /// # Panics
    /// If `n > 256`.
    pub fn full(n: usize) -> Self {
        assert!(n <= MAX_UNIVERSE, "BitSet256 supports at most {MAX_UNIVERSE} elements");
        let mut s = Self::new();
        for i in 0..n {
            s.insert(i);
        }
        s
    }

    /// Create a singleton set `{i}`.
    #[inline]
    pub fn singleton(i: usize) -> Self {
        let mut s = Self::new();
        s.insert(i);
        s
    }

    /// Number of elements.
    #[inline]
    pub fn len(&self) -> usize {
        self.words.iter().map(|w| w.count_ones() as usize).sum()
    }

    /// True if the set has no elements.
    #[inline]
    pub fn is_empty(&self) -> bool {
        self.words.iter().all(|&w| w == 0)
    }

    /// Add element `i`. Returns true if it was newly inserted.
    ///
    /// # Panics
    /// If `i >= 256` (debug and release: the index math would be UB-adjacent
    /// otherwise, so the bound is always checked).
    #[inline]
    pub fn insert(&mut self, i: usize) -> bool {
        assert!(i < MAX_UNIVERSE, "BitSet256 index {i} out of range");
        let (w, b) = (i / 64, i % 64);
        let newly = self.words[w] & (1 << b) == 0;
        self.words[w] |= 1 << b;
        newly
    }

    /// Remove element `i`. Returns true if it was present.
    #[inline]
    pub fn remove(&mut self, i: usize) -> bool {
        assert!(i < MAX_UNIVERSE, "BitSet256 index {i} out of range");
        let (w, b) = (i / 64, i % 64);
        let present = self.words[w] & (1 << b) != 0;
        self.words[w] &= !(1 << b);
        present
    }

    /// Membership test.
    #[inline]
    pub fn contains(&self, i: usize) -> bool {
        if i >= MAX_UNIVERSE {
            return false;
        }
        self.words[i / 64] & (1 << (i % 64)) != 0
    }

    /// Remove all elements.
    #[inline]
    pub fn clear(&mut self) {
        self.words = [0; WORDS];
    }

    /// `self ∪ other`.
    #[inline]
    pub fn union(&self, other: &Self) -> Self {
        let mut out = *self;
        for (a, b) in out.words.iter_mut().zip(other.words.iter()) {
            *a |= b;
        }
        out
    }

    /// `self ∩ other`.
    #[inline]
    pub fn intersection(&self, other: &Self) -> Self {
        let mut out = *self;
        for (a, b) in out.words.iter_mut().zip(other.words.iter()) {
            *a &= b;
        }
        out
    }

    /// `self \ other`.
    #[inline]
    pub fn difference(&self, other: &Self) -> Self {
        let mut out = *self;
        for (a, b) in out.words.iter_mut().zip(other.words.iter()) {
            *a &= !b;
        }
        out
    }

    /// In-place union.
    #[inline]
    pub fn union_with(&mut self, other: &Self) {
        for (a, b) in self.words.iter_mut().zip(other.words.iter()) {
            *a |= b;
        }
    }

    /// In-place difference.
    #[inline]
    pub fn difference_with(&mut self, other: &Self) {
        for (a, b) in self.words.iter_mut().zip(other.words.iter()) {
            *a &= !b;
        }
    }

    /// True if every element of `self` is in `other` (`self ⊆ other`).
    #[inline]
    pub fn is_subset(&self, other: &Self) -> bool {
        self.words
            .iter()
            .zip(other.words.iter())
            .all(|(a, b)| a & !b == 0)
    }

    /// True if the sets share no element.
    #[inline]
    pub fn is_disjoint(&self, other: &Self) -> bool {
        self.words
            .iter()
            .zip(other.words.iter())
            .all(|(a, b)| a & b == 0)
    }

    /// Smallest element, if any.
    #[inline]
    pub fn first(&self) -> Option<usize> {
        for (wi, &w) in self.words.iter().enumerate() {
            if w != 0 {
                return Some(wi * 64 + w.trailing_zeros() as usize);
            }
        }
        None
    }

    /// Iterate over elements in increasing order.
    #[inline]
    pub fn iter(&self) -> SetIter {
        SetIter {
            words: self.words,
            word_idx: 0,
        }
    }

    /// Collect into a `Vec<usize>` (convenience for tests and display).
    pub fn to_vec(&self) -> Vec<usize> {
        self.iter().collect()
    }

    /// The raw 4-word representation (little-endian word order: word 0
    /// holds elements `0..64`).  Used by wire codecs; every `[u64; 4]` is a
    /// valid set, so [`BitSet256::from_words`] is total.
    #[inline]
    pub const fn to_words(self) -> [u64; WORDS] {
        self.words
    }

    /// Rebuild a set from its raw word representation.
    #[inline]
    pub const fn from_words(words: [u64; WORDS]) -> Self {
        BitSet256 { words }
    }
}

impl FromIterator<usize> for BitSet256 {
    fn from_iter<I: IntoIterator<Item = usize>>(iter: I) -> Self {
        let mut s = Self::new();
        for i in iter {
            s.insert(i);
        }
        s
    }
}

impl IntoIterator for &BitSet256 {
    type Item = usize;
    type IntoIter = SetIter;
    fn into_iter(self) -> SetIter {
        self.iter()
    }
}

impl fmt::Debug for BitSet256 {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_set().entries(self.iter()).finish()
    }
}

/// Iterator over the elements of a [`BitSet256`] in increasing order.
///
/// Consumes a copy of the words, clearing bits as they are yielded; this is
/// branch-light and needs no lifetime on the hot path.
pub struct SetIter {
    words: [u64; WORDS],
    word_idx: usize,
}

impl Iterator for SetIter {
    type Item = usize;

    #[inline]
    fn next(&mut self) -> Option<usize> {
        while self.word_idx < WORDS {
            let w = self.words[self.word_idx];
            if w != 0 {
                let b = w.trailing_zeros() as usize;
                self.words[self.word_idx] = w & (w - 1); // clear lowest set bit
                return Some(self.word_idx * 64 + b);
            }
            self.word_idx += 1;
        }
        None
    }

    fn size_hint(&self) -> (usize, Option<usize>) {
        let n: usize = self.words[self.word_idx..]
            .iter()
            .map(|w| w.count_ones() as usize)
            .sum();
        (n, Some(n))
    }
}

impl ExactSizeIterator for SetIter {}

#[cfg(test)]
mod tests {
    use super::*;
    use std::collections::HashSet;

    #[test]
    fn insert_remove_contains() {
        let mut s = BitSet256::new();
        assert!(s.is_empty());
        assert!(s.insert(5));
        assert!(!s.insert(5));
        assert!(s.contains(5));
        assert!(!s.contains(6));
        assert_eq!(s.len(), 1);
        assert!(s.remove(5));
        assert!(!s.remove(5));
        assert!(s.is_empty());
    }

    #[test]
    fn word_boundaries() {
        let mut s = BitSet256::new();
        for i in [0usize, 63, 64, 127, 128, 191, 192, 255] {
            assert!(s.insert(i));
            assert!(s.contains(i));
        }
        assert_eq!(s.len(), 8);
        assert_eq!(s.to_vec(), vec![0, 63, 64, 127, 128, 191, 192, 255]);
    }

    #[test]
    #[should_panic]
    fn insert_out_of_range_panics() {
        BitSet256::new().insert(256);
    }

    #[test]
    fn contains_out_of_range_is_false() {
        assert!(!BitSet256::full(256).contains(1000));
    }

    #[test]
    fn set_algebra() {
        let a: BitSet256 = [1, 2, 3].into_iter().collect();
        let b: BitSet256 = [3, 4].into_iter().collect();
        assert_eq!(a.union(&b).to_vec(), vec![1, 2, 3, 4]);
        assert_eq!(a.intersection(&b).to_vec(), vec![3]);
        assert_eq!(a.difference(&b).to_vec(), vec![1, 2]);
        assert!(!a.is_disjoint(&b));
        assert!(a.difference(&b).is_disjoint(&b));
        assert!(a.intersection(&b).is_subset(&a));
        assert!(a.intersection(&b).is_subset(&b));
        assert!(BitSet256::EMPTY.is_subset(&a));
    }

    #[test]
    fn full_and_first() {
        let s = BitSet256::full(80);
        assert_eq!(s.len(), 80);
        assert_eq!(s.first(), Some(0));
        assert_eq!(BitSet256::EMPTY.first(), None);
        assert_eq!(BitSet256::singleton(79).first(), Some(79));
    }

    #[test]
    fn iterator_matches_model() {
        let elems = [0usize, 7, 64, 65, 130, 255];
        let s: BitSet256 = elems.iter().copied().collect();
        let collected: Vec<usize> = s.iter().collect();
        assert_eq!(collected, elems);
        assert_eq!(s.iter().len(), elems.len());
    }

    #[test]
    fn words_roundtrip() {
        let s: BitSet256 = [0usize, 63, 64, 200, 255].into_iter().collect();
        assert_eq!(BitSet256::from_words(s.to_words()), s);
        assert_eq!(BitSet256::from_words([0; 4]), BitSet256::EMPTY);
        assert_eq!(BitSet256::from_words([u64::MAX; 4]), BitSet256::full(256));
    }

    #[test]
    fn in_place_ops_match_pure_ops() {
        let a: BitSet256 = [1, 5, 9].into_iter().collect();
        let b: BitSet256 = [5, 6].into_iter().collect();
        let mut u = a;
        u.union_with(&b);
        assert_eq!(u, a.union(&b));
        let mut d = a;
        d.difference_with(&b);
        assert_eq!(d, a.difference(&b));
    }

    #[test]
    fn model_based_random_ops() {
        // Deterministic pseudo-random sequence; compares against HashSet.
        let mut seed = 0x9E3779B97F4A7C15u64;
        let mut next = || {
            seed ^= seed << 13;
            seed ^= seed >> 7;
            seed ^= seed << 17;
            seed
        };
        let mut s = BitSet256::new();
        let mut model: HashSet<usize> = HashSet::new();
        for _ in 0..4000 {
            let v = (next() % 256) as usize;
            match next() % 3 {
                0 => {
                    assert_eq!(s.insert(v), model.insert(v));
                }
                1 => {
                    assert_eq!(s.remove(v), model.remove(&v));
                }
                _ => {
                    assert_eq!(s.contains(v), model.contains(&v));
                }
            }
            assert_eq!(s.len(), model.len());
        }
        let mut got = s.to_vec();
        let mut want: Vec<usize> = model.into_iter().collect();
        got.sort_unstable();
        want.sort_unstable();
        assert_eq!(got, want);
    }
}
