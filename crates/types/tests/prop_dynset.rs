//! Parity proptest: the dynamic `ResourceSet` ([`DynSet`]) agrees with the
//! old fixed-width semantics.  Random op sequences — insert, remove,
//! union, intersect, difference, iteration, words round-trip — are run
//! against a [`BitSet256`] reference model on the shared `0..256`
//! universe, and the big-universe behaviour (including sets that cross the
//! inline→heap boundary and come back) is modeled with `HashSet`.

use mra_types::{BitSet256, DynSet};
use proptest::prelude::*;
use std::collections::HashSet;

#[derive(Clone, Debug)]
enum Op {
    Insert(usize),
    Remove(usize),
    UnionWith(Vec<usize>),
    DifferenceWith(Vec<usize>),
    IntersectWith(Vec<usize>),
    Clear,
    WordsRoundTrip,
}

fn op(universe: usize) -> impl Strategy<Value = Op> {
    let elems = || proptest::collection::vec(0..universe, 0..16);
    // The vendored proptest's `prop_oneof!` is unweighted; repeating the
    // insert/remove arms biases sequences toward populated sets.
    prop_oneof![
        (0..universe).prop_map(Op::Insert),
        (0..universe).prop_map(Op::Insert),
        (0..universe).prop_map(Op::Insert),
        (0..universe).prop_map(Op::Remove),
        (0..universe).prop_map(Op::Remove),
        elems().prop_map(Op::UnionWith),
        elems().prop_map(Op::DifferenceWith),
        elems().prop_map(Op::IntersectWith),
        Just(Op::Clear),
        Just(Op::WordsRoundTrip),
    ]
}

fn ops(universe: usize) -> impl Strategy<Value = Vec<Op>> {
    proptest::collection::vec(op(universe), 0..80)
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(256))]

    /// On the 256-element universe both representations exist; every op
    /// sequence must leave them in agreement (contains, len, first, iter,
    /// and the words round-trip).
    #[test]
    fn dynset_matches_bitset256_reference(ops in ops(256)) {
        let mut d = DynSet::new();
        let mut r = BitSet256::new();
        for o in &ops {
            match o {
                Op::Insert(i) => prop_assert_eq!(d.insert(*i), r.insert(*i)),
                Op::Remove(i) => prop_assert_eq!(d.remove(*i), r.remove(*i)),
                Op::UnionWith(es) => {
                    let od: DynSet = es.iter().copied().collect();
                    let or: BitSet256 = es.iter().copied().collect();
                    d.union_with(&od);
                    r.union_with(&or);
                }
                Op::DifferenceWith(es) => {
                    let od: DynSet = es.iter().copied().collect();
                    let or: BitSet256 = es.iter().copied().collect();
                    d.difference_with(&od);
                    r.difference_with(&or);
                }
                Op::IntersectWith(es) => {
                    let od: DynSet = es.iter().copied().collect();
                    let or: BitSet256 = es.iter().copied().collect();
                    d = d.intersection(&od);
                    r = r.intersection(&or);
                }
                Op::Clear => {
                    d.clear();
                    r.clear();
                }
                Op::WordsRoundTrip => {
                    d = DynSet::from_words(&d.to_words());
                    r = BitSet256::from_words(r.to_words());
                }
            }
            prop_assert_eq!(d.len(), r.len());
            prop_assert_eq!(d.first(), r.first());
            prop_assert_eq!(d.is_empty(), r.is_empty());
        }
        prop_assert_eq!(d.to_vec(), r.to_vec());
        for e in 0..256 {
            prop_assert_eq!(d.contains(e), r.contains(e));
        }
        // Words agree up to trailing-zero trimming.
        let dw = d.to_words();
        let rw = r.to_words();
        prop_assert!(dw.len() <= rw.len());
        prop_assert_eq!(&dw[..], &rw[..dw.len()]);
        prop_assert!(rw[dw.len()..].iter().all(|&w| w == 0));
    }

    /// On a big universe the reference is `HashSet`; sequences freely cross
    /// the inline→heap boundary (universe 1024 ≫ 256).
    #[test]
    fn dynset_matches_hashset_big_universe(ops in ops(1024)) {
        let mut d = DynSet::new();
        let mut model: HashSet<usize> = HashSet::new();
        for o in &ops {
            match o {
                Op::Insert(i) => prop_assert_eq!(d.insert(*i), model.insert(*i)),
                Op::Remove(i) => prop_assert_eq!(d.remove(*i), model.remove(i)),
                Op::UnionWith(es) => {
                    let od: DynSet = es.iter().copied().collect();
                    d.union_with(&od);
                    model.extend(es.iter().copied());
                }
                Op::DifferenceWith(es) => {
                    let od: DynSet = es.iter().copied().collect();
                    d.difference_with(&od);
                    for e in es {
                        model.remove(e);
                    }
                }
                Op::IntersectWith(es) => {
                    let keep: HashSet<usize> = es.iter().copied().collect();
                    let od: DynSet = es.iter().copied().collect();
                    d = d.intersection(&od);
                    model.retain(|e| keep.contains(e));
                }
                Op::Clear => {
                    d.clear();
                    model.clear();
                }
                Op::WordsRoundTrip => {
                    d = DynSet::from_words(&d.to_words());
                }
            }
            prop_assert_eq!(d.len(), model.len());
        }
        let mut want: Vec<usize> = model.into_iter().collect();
        want.sort_unstable();
        prop_assert_eq!(d.to_vec(), want);
    }

    /// Equality and hashing are representation-independent: a set pushed
    /// across the heap boundary and shrunk back equals its inline twin.
    #[test]
    fn eq_hash_survive_boundary_crossing(elems in proptest::collection::vec(0usize..256, 0..32)) {
        use std::collections::hash_map::DefaultHasher;
        use std::hash::{Hash, Hasher};
        let inline: DynSet = elems.iter().copied().collect();
        let mut heap: DynSet = elems.iter().copied().collect();
        heap.insert(100_000);
        heap.remove(100_000);
        prop_assert!(!heap.is_inline());
        prop_assert_eq!(&inline, &heap);
        let h = |s: &DynSet| {
            let mut h = DefaultHasher::new();
            s.hash(&mut h);
            h.finish()
        };
        prop_assert_eq!(h(&inline), h(&heap));
        prop_assert_eq!(inline.to_words(), heap.to_words());
        prop_assert!(heap.is_subset(&inline) && inline.is_subset(&heap));
    }
}
