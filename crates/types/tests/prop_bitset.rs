//! Property-based tests: `BitSet256` behaves exactly like a `HashSet<usize>`
//! restricted to `0..256`, and the set-algebra identities hold.

use mra_types::BitSet256;
use proptest::prelude::*;
use std::collections::HashSet;

fn small_elems() -> impl Strategy<Value = Vec<usize>> {
    proptest::collection::vec(0usize..256, 0..64)
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(256))]

    #[test]
    fn from_iter_matches_hashset(elems in small_elems()) {
        let s: BitSet256 = elems.iter().copied().collect();
        let model: HashSet<usize> = elems.iter().copied().collect();
        prop_assert_eq!(s.len(), model.len());
        for e in 0..256 {
            prop_assert_eq!(s.contains(e), model.contains(&e));
        }
        let mut sorted: Vec<usize> = model.into_iter().collect();
        sorted.sort_unstable();
        prop_assert_eq!(s.to_vec(), sorted);
    }

    #[test]
    fn union_intersection_difference_laws(a in small_elems(), b in small_elems()) {
        let sa: BitSet256 = a.iter().copied().collect();
        let sb: BitSet256 = b.iter().copied().collect();
        let ha: HashSet<usize> = a.into_iter().collect();
        let hb: HashSet<usize> = b.into_iter().collect();

        let mut u: Vec<usize> = ha.union(&hb).copied().collect();
        u.sort_unstable();
        prop_assert_eq!(sa.union(&sb).to_vec(), u);

        let mut i: Vec<usize> = ha.intersection(&hb).copied().collect();
        i.sort_unstable();
        prop_assert_eq!(sa.intersection(&sb).to_vec(), i);

        let mut d: Vec<usize> = ha.difference(&hb).copied().collect();
        d.sort_unstable();
        prop_assert_eq!(sa.difference(&sb).to_vec(), d);

        // De Morgan-ish sanity: (a ∪ b) \ b ⊆ a, and a ∩ b ⊆ a ⊆ a ∪ b.
        prop_assert!(sa.union(&sb).difference(&sb).is_subset(&sa));
        prop_assert!(sa.intersection(&sb).is_subset(&sa));
        prop_assert!(sa.is_subset(&sa.union(&sb)));
        prop_assert_eq!(sa.is_disjoint(&sb), sa.intersection(&sb).is_empty());
    }

    #[test]
    fn subset_is_reflexive_and_antisymmetric(a in small_elems(), b in small_elems()) {
        let sa: BitSet256 = a.iter().copied().collect();
        let sb: BitSet256 = b.iter().copied().collect();
        prop_assert!(sa.is_subset(&sa));
        if sa.is_subset(&sb) && sb.is_subset(&sa) {
            prop_assert_eq!(sa, sb);
        }
    }

    #[test]
    fn insert_remove_roundtrip(elems in small_elems(), v in 0usize..256) {
        let mut s: BitSet256 = elems.iter().copied().collect();
        let before = s.contains(v);
        s.insert(v);
        prop_assert!(s.contains(v));
        s.remove(v);
        prop_assert!(!s.contains(v));
        if before {
            s.insert(v);
        }
        let back: BitSet256 = elems.iter().copied().collect();
        prop_assert_eq!(s, back);
    }

    #[test]
    fn first_is_minimum(elems in small_elems()) {
        let s: BitSet256 = elems.iter().copied().collect();
        prop_assert_eq!(s.first(), elems.iter().copied().min());
    }
}
