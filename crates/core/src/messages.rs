//! Wire messages of the LASS algorithm (paper §4.2, annex A figure 8).
//!
//! The five logical message types of the paper map onto three wire messages
//! because of the aggregation mechanism (§4.2.2): request messages travelling
//! to the same destination are batched and share one visited-node set, and
//! response messages (counters, tokens) are batched per destination.

use crate::token::Token;
use mra_protocol::WireMsg;
use mra_types::{NodeId, NodeSet, RequestId, ResourceId, ResourceSet};

/// A resource request (`ReqRes`): "give me the token of `r` for my request
/// `id`, whose scheduling mark is `mark`".
#[derive(Clone, Debug, PartialEq)]
pub struct ResReq {
    /// Requested resource.
    pub r: ResourceId,
    /// Requesting site.
    pub sinit: NodeId,
    /// The requester's critical-section request id.
    pub id: RequestId,
    /// `A(MyVector)` of the requester, fixed at send time.
    pub mark: f64,
}

/// A loan request (`ReqLoan`): "I wait in `waitCS` for exactly the resources
/// in `missing`; if you own them all, lend them to me".
#[derive(Clone, Debug, PartialEq)]
pub struct LoanReq {
    /// The resource whose token tree carries this request.
    pub r: ResourceId,
    /// Requesting (borrower) site.
    pub sinit: NodeId,
    /// The borrower's critical-section request id.
    pub id: RequestId,
    /// The borrower's scheduling mark.
    pub mark: f64,
    /// The full set of resources the borrower is missing.
    pub missing: ResourceSet,
}

/// A request message, forwarded hop by hop along the token tree of its
/// resource until it reaches the token holder (or is cut off and replayed
/// from a forwarder's pending history).
#[derive(Clone, Debug, PartialEq)]
pub enum Request {
    /// `ReqCnt`: ask the holder for the current counter value of `r`.
    ///
    /// With `single == true` this is a whole single-resource request
    /// (optimization §4.6.1): the holder computes the mark itself and treats
    /// the message as a `ReqRes`.
    Cnt {
        /// Requested resource.
        r: ResourceId,
        /// Requesting site.
        sinit: NodeId,
        /// Critical-section request id.
        id: RequestId,
        /// Single-resource-request optimization flag.
        single: bool,
    },
    /// `ReqRes`: ask for the token itself.
    Res(ResReq),
    /// `ReqLoan`: ask for a loan of all missing resources.
    Loan(LoanReq),
}

impl Request {
    /// The resource this request concerns.
    pub fn r(&self) -> ResourceId {
        match self {
            Request::Cnt { r, .. } => *r,
            Request::Res(q) => q.r,
            Request::Loan(q) => q.r,
        }
    }

    /// The requesting site.
    pub fn sinit(&self) -> NodeId {
        match self {
            Request::Cnt { sinit, .. } => *sinit,
            Request::Res(q) => q.sinit,
            Request::Loan(q) => q.sinit,
        }
    }

    /// The critical-section request id.
    pub fn id(&self) -> RequestId {
        match self {
            Request::Cnt { id, .. } => *id,
            Request::Res(q) => q.id,
            Request::Loan(q) => q.id,
        }
    }

    /// Short kind tag (metrics, debugging).
    pub fn kind(&self) -> &'static str {
        match self {
            Request::Cnt { single: false, .. } => "ReqCnt",
            Request::Cnt { single: true, .. } => "ReqCnt1",
            Request::Res(_) => "ReqRes",
            Request::Loan(_) => "ReqLoan",
        }
    }
}

/// A counter value returned to a requester (`Counter` message).
///
/// `[deviation]` The paper's `Counter` carries only `(r, val)`; we add the
/// request `id` so stale replies (left over after the requester obtained the
/// token, and its counter value, directly) can be discarded instead of
/// corrupting `MyVector`.  See DESIGN.md §6.1.
#[derive(Clone, Debug, PartialEq)]
pub struct CounterVal {
    /// Resource whose counter was read.
    pub r: ResourceId,
    /// The value reserved for this request.
    pub val: u64,
    /// The request id the value was assigned to.
    pub id: RequestId,
}

/// The three wire messages (after aggregation).
#[derive(Clone, Debug)]
pub enum LassMsg {
    /// A batch of request messages sharing a visited-node set (§4.2.1-2).
    Requests {
        /// Nodes already visited by these requests; forwarding stops when
        /// the next hop is already in the set.
        visited: NodeSet,
        /// The batched requests.
        reqs: Vec<Request>,
    },
    /// A batch of counter replies, sent directly to the requester.
    Counters(Vec<CounterVal>),
    /// A batch of resource tokens, sent directly to their next holder.
    Tokens(Vec<Token>),
}

impl WireMsg for LassMsg {
    fn kind(&self) -> &'static str {
        match self {
            LassMsg::Requests { reqs, .. } => {
                // Dominant kind of the batch (batches are homogeneous in
                // practice: they are flushed per handler invocation).
                reqs.first().map(|r| r.kind()).unwrap_or("Requests")
            }
            LassMsg::Counters(_) => "Counter",
            LassMsg::Tokens(_) => "Token",
        }
    }

    fn weight(&self) -> usize {
        match self {
            LassMsg::Requests { reqs, .. } => {
                4 + reqs
                    .iter()
                    .map(|q| match q {
                        Request::Cnt { .. } => 4,
                        Request::Res(_) => 5,
                        Request::Loan(_) => 9,
                    })
                    .sum::<usize>()
            }
            LassMsg::Counters(cs) => 3 * cs.len(),
            LassMsg::Tokens(ts) => ts.iter().map(Token::weight).sum(),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample_res() -> ResReq {
        ResReq {
            r: 3,
            sinit: 1,
            id: 7,
            mark: 2.5,
        }
    }

    #[test]
    fn request_accessors() {
        let c = Request::Cnt {
            r: 2,
            sinit: 4,
            id: 9,
            single: false,
        };
        assert_eq!((c.r(), c.sinit(), c.id(), c.kind()), (2, 4, 9, "ReqCnt"));
        let r = Request::Res(sample_res());
        assert_eq!((r.r(), r.sinit(), r.id(), r.kind()), (3, 1, 7, "ReqRes"));
        let l = Request::Loan(LoanReq {
            r: 0,
            sinit: 2,
            id: 1,
            mark: 0.0,
            missing: ResourceSet::singleton(0),
        });
        assert_eq!((l.r(), l.sinit(), l.id(), l.kind()), (0, 2, 1, "ReqLoan"));
        let s = Request::Cnt {
            r: 2,
            sinit: 4,
            id: 9,
            single: true,
        };
        assert_eq!(s.kind(), "ReqCnt1");
    }

    #[test]
    fn message_kinds_and_weights() {
        let m = LassMsg::Requests {
            visited: NodeSet::singleton(0),
            reqs: vec![Request::Res(sample_res())],
        };
        assert_eq!(m.kind(), "ReqRes");
        assert_eq!(m.weight(), 9);
        let c = LassMsg::Counters(vec![CounterVal { r: 0, val: 1, id: 1 }]);
        assert_eq!(c.kind(), "Counter");
        assert_eq!(c.weight(), 3);
    }
}
