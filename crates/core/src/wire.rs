//! Binary wire codecs for the LASS messages (see `mra_protocol::wire`).
//!
//! Layouts (all integers little-endian, ids as `u32`, counters as `u64`,
//! marks as `f64` bit patterns, sets as raw [`mra_types::BitSet256`] words):
//!
//! ```text
//! ResReq     := r:u32 sinit:u32 id:u64 mark:f64
//! LoanReq    := r:u32 sinit:u32 id:u64 mark:f64 missing:set
//! Request    := 0 r:u32 sinit:u32 id:u64 single:u8   (Cnt)
//!             | 1 ResReq                              (Res)
//!             | 2 LoanReq                             (Loan)
//! CounterVal := r:u32 val:u64 id:u64
//! stamps     := len:u32 (site:u32 id:u64)*          (sparse, sorted by site)
//! Token      := r:u32 counter:u64 lastReqC:stamps lastCS:stamps
//!               wQueue:vec<ResReq> wLoan:vec<LoanReq> lender:opt<u32>
//! LassMsg    := 0 visited:set reqs:vec<Request>       (Requests)
//!             | 1 vec<CounterVal>                     (Counters)
//!             | 2 vec<Token>                          (Tokens)
//! ```

use crate::messages::{CounterVal, LassMsg, LoanReq, Request, ResReq};
use crate::token::Token;
use mra_protocol::wire::{put_bool, put_f64, put_u64, put_usize, DecodeError, WireReader};
use mra_protocol::WireCodec;

impl WireCodec for ResReq {
    fn encode(&self, out: &mut Vec<u8>) {
        put_usize(out, self.r);
        put_usize(out, self.sinit);
        put_u64(out, self.id);
        put_f64(out, self.mark);
    }

    fn decode(r: &mut WireReader<'_>) -> Result<Self, DecodeError> {
        Ok(ResReq {
            r: r.get_usize("ResReq.r")?,
            sinit: r.get_usize("ResReq.sinit")?,
            id: r.get_u64("ResReq.id")?,
            mark: r.get_f64("ResReq.mark")?,
        })
    }
}

impl WireCodec for LoanReq {
    fn encode(&self, out: &mut Vec<u8>) {
        put_usize(out, self.r);
        put_usize(out, self.sinit);
        put_u64(out, self.id);
        put_f64(out, self.mark);
        self.missing.encode(out);
    }

    fn decode(r: &mut WireReader<'_>) -> Result<Self, DecodeError> {
        Ok(LoanReq {
            r: r.get_usize("LoanReq.r")?,
            sinit: r.get_usize("LoanReq.sinit")?,
            id: r.get_u64("LoanReq.id")?,
            mark: r.get_f64("LoanReq.mark")?,
            missing: WireCodec::decode(r)?,
        })
    }
}

impl WireCodec for Request {
    fn encode(&self, out: &mut Vec<u8>) {
        match self {
            Request::Cnt { r, sinit, id, single } => {
                out.push(0);
                put_usize(out, *r);
                put_usize(out, *sinit);
                put_u64(out, *id);
                put_bool(out, *single);
            }
            Request::Res(q) => {
                out.push(1);
                q.encode(out);
            }
            Request::Loan(q) => {
                out.push(2);
                q.encode(out);
            }
        }
    }

    fn decode(r: &mut WireReader<'_>) -> Result<Self, DecodeError> {
        match r.get_u8("Request tag")? {
            0 => Ok(Request::Cnt {
                r: r.get_usize("Request::Cnt.r")?,
                sinit: r.get_usize("Request::Cnt.sinit")?,
                id: r.get_u64("Request::Cnt.id")?,
                single: r.get_bool("Request::Cnt.single")?,
            }),
            1 => Ok(Request::Res(ResReq::decode(r)?)),
            2 => Ok(Request::Loan(LoanReq::decode(r)?)),
            tag => Err(DecodeError::BadTag { what: "Request", tag }),
        }
    }
}

impl WireCodec for CounterVal {
    fn encode(&self, out: &mut Vec<u8>) {
        put_usize(out, self.r);
        put_u64(out, self.val);
        put_u64(out, self.id);
    }

    fn decode(r: &mut WireReader<'_>) -> Result<Self, DecodeError> {
        Ok(CounterVal {
            r: r.get_usize("CounterVal.r")?,
            val: r.get_u64("CounterVal.val")?,
            id: r.get_u64("CounterVal.id")?,
        })
    }
}

fn put_stamps(out: &mut Vec<u8>, stamps: &[(usize, u64)]) {
    put_usize(out, stamps.len());
    for &(site, id) in stamps {
        put_usize(out, site);
        put_u64(out, id);
    }
}

fn get_stamps(r: &mut WireReader<'_>) -> Result<Vec<(usize, u64)>, DecodeError> {
    let len = r.get_len(12, "Token.stamps")?;
    let mut v = Vec::with_capacity(len);
    for _ in 0..len {
        let site = r.get_usize("Token.stamps.site")?;
        let id = r.get_u64("Token.stamps.id")?;
        v.push((site, id));
    }
    Ok(v)
}

impl WireCodec for Token {
    fn encode(&self, out: &mut Vec<u8>) {
        put_usize(out, self.r);
        put_u64(out, self.counter);
        put_stamps(out, &self.last_req_c);
        put_stamps(out, &self.last_cs);
        self.w_queue.encode(out);
        self.w_loan.encode(out);
        self.lender.encode(out);
    }

    fn decode(r: &mut WireReader<'_>) -> Result<Self, DecodeError> {
        Ok(Token {
            r: r.get_usize("Token.r")?,
            counter: r.get_u64("Token.counter")?,
            last_req_c: get_stamps(r)?,
            last_cs: get_stamps(r)?,
            w_queue: WireCodec::decode(r)?,
            w_loan: WireCodec::decode(r)?,
            lender: WireCodec::decode(r)?,
        })
    }
}

impl WireCodec for LassMsg {
    fn encode(&self, out: &mut Vec<u8>) {
        match self {
            LassMsg::Requests { visited, reqs } => {
                out.push(0);
                visited.encode(out);
                reqs.encode(out);
            }
            LassMsg::Counters(cs) => {
                out.push(1);
                cs.encode(out);
            }
            LassMsg::Tokens(ts) => {
                out.push(2);
                ts.encode(out);
            }
        }
    }

    fn decode(r: &mut WireReader<'_>) -> Result<Self, DecodeError> {
        match r.get_u8("LassMsg tag")? {
            0 => Ok(LassMsg::Requests {
                visited: WireCodec::decode(r)?,
                reqs: WireCodec::decode(r)?,
            }),
            1 => Ok(LassMsg::Counters(WireCodec::decode(r)?)),
            2 => Ok(LassMsg::Tokens(WireCodec::decode(r)?)),
            tag => Err(DecodeError::BadTag { what: "LassMsg", tag }),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use mra_types::{NodeSet, ResourceSet};

    #[test]
    fn lass_msg_roundtrips() {
        let tok = {
            let mut t = Token::new(3);
            t.counter = u64::MAX;
            t.set_last_req_c(1, 7);
            t.set_last_cs(2, 9);
            t.enqueue_res(ResReq { r: 3, sinit: 0, id: 2, mark: 1.25 });
            t.enqueue_loan(LoanReq {
                r: 3,
                sinit: 1,
                id: 4,
                mark: 0.5,
                missing: ResourceSet::full(256),
            });
            t.lender = Some(2);
            t
        };
        let msgs = [
            LassMsg::Requests {
                visited: NodeSet::singleton(255),
                reqs: vec![
                    Request::Cnt { r: 1, sinit: 2, id: 3, single: true },
                    Request::Res(ResReq { r: 0, sinit: 1, id: u64::MAX, mark: -2.5 }),
                    Request::Loan(LoanReq {
                        r: 2,
                        sinit: 3,
                        id: 1,
                        mark: 8.0,
                        missing: ResourceSet::singleton(2),
                    }),
                ],
            },
            LassMsg::Counters(vec![CounterVal { r: 9, val: u64::MAX, id: 1 }]),
            LassMsg::Tokens(vec![tok]),
        ];
        for m in &msgs {
            let bytes = m.to_bytes();
            let back = LassMsg::from_bytes(&bytes).unwrap();
            // LassMsg has no PartialEq (Token is stateful); byte and Debug
            // equality together pin the roundtrip.
            assert_eq!(back.to_bytes(), bytes);
            assert_eq!(format!("{back:?}"), format!("{m:?}"));
        }
    }

    #[test]
    fn corrupt_tag_rejected() {
        assert!(matches!(
            LassMsg::from_bytes(&[9]),
            Err(DecodeError::BadTag { what: "LassMsg", tag: 9 })
        ));
    }
}
