//! # mra-core — the LASS multi-resource allocation algorithm
//!
//! Faithful implementation of the algorithm of **Lejeune, Arantes, Sopena
//! and Sens**, *"Reducing synchronization cost in distributed multi-resource
//! allocation problem"* (ICPP 2015 / INRIA RR-8689).
//!
//! The algorithm grants processes exclusive access to arbitrary subsets of
//! `M` shared resources (the generalized mutual exclusion / drinking
//! philosophers problem) while guaranteeing:
//!
//! * **safety** — each resource is used by at most one process at a time;
//! * **liveness** — every request is eventually satisfied (no deadlock, no
//!   starvation);
//! * **concurrency** — non-conflicting processes proceed in parallel and,
//!   crucially, *never exchange messages*, unlike global-lock designs such
//!   as Bouabdallah–Laforest.
//!
//! See the module docs of [`lass`] for the protocol walk-through, and
//! [`policy`] for the scheduling function `A`.
//!
//! ## Example
//!
//! ```
//! use mra_core::{Lass, LassConfig};
//! use mra_protocol::{Allocator, Ctx};
//! use mra_types::ResourceSet;
//!
//! let cfg = LassConfig::with_loan(3, 2);
//! let mut nodes = cfg.build_nodes();
//! let mut ctx0 = Ctx::new(0, 3);
//!
//! // Site 0 initially owns every token: a local request grants at once.
//! nodes[0].request(&mut ctx0, ResourceSet::singleton(0));
//! assert!(ctx0.take_granted());
//! ```

pub mod lass;
pub mod messages;
pub mod policy;
pub mod token;
pub mod wire;

pub use lass::{Lass, LassConfig, LassStats};
pub use messages::{CounterVal, LassMsg, LoanReq, Request, ResReq};
pub use policy::{precedes, SchedulingPolicy};
pub use token::Token;
