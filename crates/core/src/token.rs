//! The per-resource token (paper §4.2, annex A figure 8, `Type Token`).
//!
//! Exactly one token exists per resource (lemmas 1–3 of the proof annex).
//! It carries:
//!
//! * the resource **counter** — the only mutable copy; holders reserve
//!   values for requests by reading and incrementing it;
//! * `lastReqC` / `lastCS` — per-site timestamps used to discard obsolete
//!   request messages (a request can reach the holder multiple times via
//!   the pending-history replay mechanism);
//! * `wQueue` — the waiting queue of `ReqRes`, kept sorted by the total
//!   order `/` (this is what makes the scheduling *dynamic*: a
//!   higher-priority request overtakes);
//! * `wLoan` — pending loan requests, same order;
//! * `lender` — when the token travels as a loan, the owner it must return
//!   to.

use crate::messages::{LoanReq, Request, ResReq};
use crate::policy::order_key;
use mra_types::{NodeId, RequestId, ResourceId};

/// The unique token of one resource.
///
/// The `lastReqC`/`lastCS` timestamp maps are stored sparsely: only sites
/// with a nonzero stamp appear, sorted by site id.  A fresh stamp is 0 for
/// every site, so a fresh token costs O(1) memory regardless of `n` — the
/// property that lets a 10k-node system hold 100k tokens.
#[derive(Clone, Debug)]
pub struct Token {
    /// The resource this token controls.
    pub r: ResourceId,
    /// Next counter value to hand out (starts at 1; 0 means "not required"
    /// in request vectors).
    pub counter: u64,
    /// `lastReqC[s]`: id of the last counter request from site `s` answered
    /// by a holder.  Sparse `(site, id)` pairs, sorted by site, nonzero ids
    /// only.
    pub(crate) last_req_c: Vec<(NodeId, RequestId)>,
    /// `lastCS[s]`: id of the last critical-section request of site `s`
    /// that has been satisfied (updated by `s` itself at release time).
    /// Same sparse representation as `last_req_c`.
    pub(crate) last_cs: Vec<(NodeId, RequestId)>,
    /// Pending resource requests, sorted by `/` (mark, then site id).
    pub w_queue: Vec<ResReq>,
    /// Pending loan requests, sorted by `/`.
    pub w_loan: Vec<LoanReq>,
    /// When the token is lent, the owner to return it to.
    pub lender: Option<NodeId>,
}

impl Token {
    /// Fresh token for resource `r`.  All timestamps start at 0, so the
    /// sparse maps start empty whatever the system size.
    pub fn new(r: ResourceId) -> Self {
        Token {
            r,
            counter: 1,
            last_req_c: Vec::new(),
            last_cs: Vec::new(),
            w_queue: Vec::new(),
            w_loan: Vec::new(),
            lender: None,
        }
    }

    fn stamp(stamps: &[(NodeId, RequestId)], s: NodeId) -> RequestId {
        match stamps.binary_search_by_key(&s, |&(site, _)| site) {
            Ok(i) => stamps[i].1,
            Err(_) => 0,
        }
    }

    fn set_stamp(stamps: &mut Vec<(NodeId, RequestId)>, s: NodeId, id: RequestId) {
        match stamps.binary_search_by_key(&s, |&(site, _)| site) {
            Ok(i) => {
                if id == 0 {
                    stamps.remove(i);
                } else {
                    stamps[i].1 = id;
                }
            }
            Err(i) => {
                if id != 0 {
                    stamps.insert(i, (s, id));
                }
            }
        }
    }

    /// `lastReqC[s]` (0 if never answered).
    #[inline]
    pub fn last_req_c(&self, s: NodeId) -> RequestId {
        Self::stamp(&self.last_req_c, s)
    }

    /// Record `lastReqC[s] = id`.
    pub fn set_last_req_c(&mut self, s: NodeId, id: RequestId) {
        Self::set_stamp(&mut self.last_req_c, s, id);
    }

    /// `lastCS[s]` (0 if site `s` has never completed a CS on `r`).
    #[inline]
    pub fn last_cs(&self, s: NodeId) -> RequestId {
        Self::stamp(&self.last_cs, s)
    }

    /// Record `lastCS[s] = id`.
    pub fn set_last_cs(&mut self, s: NodeId, id: RequestId) {
        Self::set_stamp(&mut self.last_cs, s, id);
    }

    /// Reserve the current counter value (and advance the counter).  Only
    /// the token holder may call this — exclusivity of the counter is
    /// exactly what the token guarantees.
    #[inline]
    pub fn take_counter(&mut self) -> u64 {
        let v = self.counter;
        self.counter += 1;
        v
    }

    /// Is `req` obsolete with respect to this token's timestamps?
    ///
    /// * A counter request is obsolete once a holder has answered a counter
    ///   request with the same or a later id (`id ≤ lastReqC[sinit]`).
    /// * A resource/loan request is obsolete once the requester's CS with
    ///   the same or a later id has completed (`id ≤ lastCS[sinit]`).
    /// * A single-resource `ReqCnt` acts as both, so either condition
    ///   retires it.
    pub fn obsolete(&self, req: &Request) -> bool {
        let s = req.sinit();
        let id = req.id();
        match req {
            Request::Cnt { single: false, .. } => id <= self.last_req_c(s),
            Request::Cnt { single: true, .. } => {
                id <= self.last_req_c(s) || id <= self.last_cs(s)
            }
            Request::Res(_) | Request::Loan(_) => id <= self.last_cs(s),
        }
    }

    /// Does the queue already contain this exact request?
    pub fn queue_contains(&self, sinit: NodeId, id: RequestId) -> bool {
        self.w_queue.iter().any(|q| q.sinit == sinit && q.id == id)
    }

    /// Insert a resource request in `/` order; duplicates (same site & id)
    /// are ignored.  Returns true if inserted.
    pub fn enqueue_res(&mut self, req: ResReq) -> bool {
        if self.queue_contains(req.sinit, req.id) {
            return false;
        }
        let key = order_key(req.mark, req.sinit);
        let pos = self
            .w_queue
            .partition_point(|q| order_key(q.mark, q.sinit) <= key);
        self.w_queue.insert(pos, req);
        true
    }

    /// Highest-priority pending resource request, if any.
    pub fn head(&self) -> Option<&ResReq> {
        self.w_queue.first()
    }

    /// Pop the highest-priority pending resource request.
    pub fn dequeue(&mut self) -> Option<ResReq> {
        if self.w_queue.is_empty() {
            None
        } else {
            Some(self.w_queue.remove(0))
        }
    }

    /// Remove every queued resource request from site `s` (used when a loan
    /// or a release satisfies that site out of band).
    pub fn remove_site(&mut self, s: NodeId) {
        self.w_queue.retain(|q| q.sinit != s);
    }

    /// Insert a loan request in `/` order; duplicates ignored.  Returns true
    /// if inserted.
    pub fn enqueue_loan(&mut self, req: LoanReq) -> bool {
        if self
            .w_loan
            .iter()
            .any(|q| q.sinit == req.sinit && q.id == req.id)
        {
            return false;
        }
        let key = order_key(req.mark, req.sinit);
        let pos = self
            .w_loan
            .partition_point(|q| order_key(q.mark, q.sinit) <= key);
        self.w_loan.insert(pos, req);
        true
    }

    /// Approximate message size in integer units (metrics only).  Counts
    /// the stamps actually carried on the wire: the sparse maps only ship
    /// nonzero entries.
    pub fn weight(&self) -> usize {
        2 + 2 * (self.last_req_c.len() + self.last_cs.len())
            + 5 * self.w_queue.len()
            + 9 * self.w_loan.len()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use mra_types::ResourceSet;

    fn res(r: ResourceId, s: NodeId, id: RequestId, mark: f64) -> ResReq {
        ResReq { r, sinit: s, id, mark }
    }

    #[test]
    fn counter_hands_out_unique_increasing_values() {
        let mut t = Token::new(0);
        assert_eq!(t.take_counter(), 1);
        assert_eq!(t.take_counter(), 2);
        assert_eq!(t.take_counter(), 3);
        assert_eq!(t.counter, 4);
    }

    #[test]
    fn queue_is_priority_ordered() {
        let mut t = Token::new(0);
        assert!(t.enqueue_res(res(0, 2, 1, 5.0)));
        assert!(t.enqueue_res(res(0, 1, 1, 3.0)));
        assert!(t.enqueue_res(res(0, 3, 1, 5.0))); // tie on mark: site order
        assert!(t.enqueue_res(res(0, 0, 1, 9.0)));
        let order: Vec<NodeId> = t.w_queue.iter().map(|q| q.sinit).collect();
        assert_eq!(order, vec![1, 2, 3, 0]);
        assert_eq!(t.head().unwrap().sinit, 1);
        assert_eq!(t.dequeue().unwrap().sinit, 1);
        assert_eq!(t.head().unwrap().sinit, 2);
    }

    #[test]
    fn queue_deduplicates_by_site_and_id() {
        let mut t = Token::new(0);
        assert!(t.enqueue_res(res(0, 2, 1, 5.0)));
        assert!(!t.enqueue_res(res(0, 2, 1, 5.0)));
        assert!(t.enqueue_res(res(0, 2, 2, 6.0))); // new request id: distinct
        assert_eq!(t.w_queue.len(), 2);
        t.remove_site(2);
        assert!(t.w_queue.is_empty());
    }

    #[test]
    fn obsolete_rules() {
        let mut t = Token::new(0);
        t.set_last_req_c(1, 5);
        t.set_last_cs(1, 3);
        let cnt_old = Request::Cnt { r: 0, sinit: 1, id: 5, single: false };
        let cnt_new = Request::Cnt { r: 0, sinit: 1, id: 6, single: false };
        assert!(t.obsolete(&cnt_old));
        assert!(!t.obsolete(&cnt_new));
        let res_old = Request::Res(res(0, 1, 3, 1.0));
        let res_new = Request::Res(res(0, 1, 4, 1.0));
        assert!(t.obsolete(&res_old));
        assert!(!t.obsolete(&res_new));
        // single-resource Cnt retires on either timestamp
        let single_by_cnt = Request::Cnt { r: 0, sinit: 1, id: 5, single: true };
        let single_by_cs = Request::Cnt { r: 0, sinit: 1, id: 2, single: true };
        let single_live = Request::Cnt { r: 0, sinit: 1, id: 6, single: true };
        assert!(t.obsolete(&single_by_cnt));
        assert!(t.obsolete(&single_by_cs));
        assert!(!t.obsolete(&single_live));
    }

    #[test]
    fn loan_queue_ordered_and_deduplicated() {
        let mut t = Token::new(1);
        let l = |s: NodeId, id: RequestId, mark: f64| LoanReq {
            r: 1,
            sinit: s,
            id,
            mark,
            missing: ResourceSet::singleton(1),
        };
        assert!(t.enqueue_loan(l(3, 1, 2.0)));
        assert!(t.enqueue_loan(l(1, 1, 1.0)));
        assert!(!t.enqueue_loan(l(3, 1, 2.0)));
        assert_eq!(t.w_loan[0].sinit, 1);
        assert_eq!(t.w_loan[1].sinit, 3);
    }

    #[test]
    fn weight_grows_with_queue() {
        let mut t = Token::new(0);
        let w0 = t.weight();
        t.enqueue_res(res(0, 1, 1, 1.0));
        assert!(t.weight() > w0);
    }

    #[test]
    fn sparse_stamps_default_to_zero_and_drop_zero_writes() {
        let mut t = Token::new(0);
        assert_eq!(t.last_req_c(12_345), 0);
        assert_eq!(t.last_cs(0), 0);
        assert_eq!(t.weight(), 2, "fresh token carries no stamps");
        t.set_last_req_c(7, 4);
        t.set_last_req_c(3, 9);
        t.set_last_cs(7, 2);
        assert_eq!(t.last_req_c(7), 4);
        assert_eq!(t.last_req_c(3), 9);
        assert_eq!(t.last_cs(7), 2);
        assert_eq!(t.weight(), 2 + 2 * 3);
        // Overwrite keeps one entry; a zero write removes it.
        t.set_last_req_c(7, 5);
        assert_eq!(t.last_req_c(7), 5);
        t.set_last_req_c(7, 0);
        assert_eq!(t.last_req_c(7), 0);
        assert_eq!(t.weight(), 2 + 2 * 2);
        // Pairs stay sorted by site whatever the insertion order.
        assert_eq!(t.last_req_c, vec![(3, 9)]);
        assert_eq!(t.last_cs, vec![(7, 2)]);
    }
}
