//! The LASS algorithm (paper §3–4, annex A).
//!
//! Named after its authors (Lejeune, Arantes, Sopena, Sens), LASS allocates
//! sets of resources with neither a priori knowledge of the conflict graph
//! nor a global lock:
//!
//! 1. **Counter phase** (`Idle → waitS`): the requester obtains, for every
//!    required resource, the current value of the resource's counter — read
//!    and incremented exclusively by the token holder.  The resulting vector
//!    identifies the request and, reduced by the scheduling function `A`,
//!    totally orders all requests (with site ids as tie-break), which rules
//!    out deadlock (annex B, theorem 2).
//! 2. **Collection phase** (`waitS → waitCS`): the requester sends a
//!    `ReqRes` per missing resource along the corresponding token tree.
//!    Holders yield tokens to higher-priority requests and queue the rest in
//!    the token's priority queue.
//! 3. **Loan phase** (optional): a process missing at most `threshold`
//!    resources may borrow them from a *single* process owning them all,
//!    provided the lender is not in CS, is not itself borrowing and has not
//!    lent already — restrictions that preserve both deadlock- and
//!    starvation-freedom (§3.4).
//!
//! Each resource's token tree is a simplified Mueller-style prioritized
//! structure: `tokDir` father pointers are rewired as requests and tokens
//! travel, forwarded requests carry a visited-node set to cut cycles, and
//! every forwarder keeps the request in a local pending history that is
//! replayed when the token reaches it (§4.2.1).
//!
//! Deviations from the paper's pseudo-code are marked `[deviation N]` and
//! catalogued in DESIGN.md §6.

use crate::messages::{CounterVal, LassMsg, LoanReq, Request, ResReq};
use crate::policy::{precedes, SchedulingPolicy};
use crate::token::Token;
use mra_protocol::{Allocator, Ctx, ProcState};
use mra_types::{NodeId, NodeSet, RequestId, ResTable, ResourceId, ResourceSet};

/// Static configuration of a LASS system (identical on every node).
#[derive(Clone, Copy, Debug)]
pub struct LassConfig {
    /// Number of sites.
    pub n: usize,
    /// Number of resources.
    pub m: usize,
    /// The site that initially holds every token.
    pub elected: NodeId,
    /// The scheduling function `A`.
    pub policy: SchedulingPolicy,
    /// Loan mechanism: `Some(threshold)` sends a loan request when at most
    /// `threshold` resources are missing (§4.5; the paper evaluates
    /// threshold = 1).  `None` disables loans ("without loan").
    pub loan: Option<usize>,
    /// §4.6.1: serve single-resource requests without the counter
    /// round-trip.
    pub opt_single_resource: bool,
    /// §4.6.2: stop forwarding a `ReqRes` that this node will overtake
    /// anyway (keeping it in the pending history).
    pub opt_stop_forwarding: bool,
    /// §4.6.2: re-point the father at the counter's sender (path
    /// shortcutting; annex A line 260).
    pub opt_shortcut_on_counter: bool,
}

impl LassConfig {
    /// Paper-default configuration: avg-of-non-null policy, all
    /// optimizations on, loan disabled ("without loan" variant).
    pub fn without_loan(n: usize, m: usize) -> Self {
        LassConfig {
            n,
            m,
            elected: 0,
            policy: SchedulingPolicy::AvgNonZero,
            loan: None,
            opt_single_resource: true,
            opt_stop_forwarding: true,
            opt_shortcut_on_counter: true,
        }
    }

    /// Paper-default "with loan" variant (threshold 1).
    pub fn with_loan(n: usize, m: usize) -> Self {
        LassConfig {
            loan: Some(1),
            ..Self::without_loan(n, m)
        }
    }

    /// Build the protocol instances for all `n` nodes.
    pub fn build_nodes(&self) -> Vec<Lass> {
        (0..self.n).map(|i| Lass::new(i, *self)).collect()
    }
}

/// Internal event counters exposed for tests and diagnostics.
#[derive(Clone, Copy, Debug, Default)]
pub struct LassStats {
    /// Loan requests this node issued.
    pub loans_requested: u64,
    /// Loans this node granted (as lender).
    pub loans_granted: u64,
    /// Loans received that completed the request (entered CS borrowed).
    pub loans_used: u64,
    /// Borrowed tokens returned unused (failed loan, §4.5).
    pub loans_failed: u64,
    /// Tokens yielded to higher-priority requests while waiting.
    pub yields: u64,
}

/// One site's LASS state (annex A figure 9).
///
/// All per-resource tables are [`ResTable`]s: dense vectors at paper scale
/// (M ≤ 4096), lazily materialized maps above — a node only pays for the
/// resources it actually touches, which is what lets 10k nodes each face
/// 100k resources.  Absent entries mean "initial value": the father pointer
/// is the elected site, the token snapshot is fresh, the pending history is
/// empty.
#[derive(Clone)]
pub struct Lass {
    cfg: LassConfig,
    me: NodeId,
    state: ProcState,
    /// Father pointer per resource tree; `None` iff this site holds the
    /// token (is the tree root).  Absent entry = initial pointer (elected
    /// site, or root for the elected site itself).
    tok_dir: ResTable<Option<NodeId>>,
    /// Counter vector of the current request: sparse `(resource, value)`
    /// pairs sorted by resource, nonzero values only (zero = not required).
    my_vector: Vec<(ResourceId, u64)>,
    /// Last known snapshot of each token; authoritative only for owned
    /// tokens.  Absent entry = fresh token (`Token::new`).
    last_tok: ResTable<Token>,
    /// Resources of the current request.
    t_required: ResourceSet,
    /// Owned tokens.
    t_owned: ResourceSet,
    /// Required resources whose counter value is still missing.
    cnt_needed: ResourceSet,
    /// Current request id (incremented per request).
    cur_id: RequestId,
    /// Per-resource history of forwarded requests, replayed on token
    /// receipt (§4.2.1).
    pending: ResTable<Vec<Request>>,
    /// Resources currently lent out (as lender).
    t_lent: ResourceSet,
    /// Has a loan been requested for the current request?
    loan_asked: bool,
    /// Whether the current CS was entered thanks to borrowed tokens.
    borrowed_in_cs: bool,
    // --- aggregation buffers (§4.2.2) ---
    buf_req: Vec<(NodeId, Request)>,
    buf_cnt: Vec<(NodeId, CounterVal)>,
    buf_tok: Vec<(NodeId, Token)>,
    /// Event counters.
    pub stats: LassStats,
}

impl Lass {
    /// Create the instance of site `me`.
    pub fn new(me: NodeId, cfg: LassConfig) -> Self {
        assert!(me < cfg.n);
        assert!(cfg.m >= 1);
        let is_elected = me == cfg.elected;
        let initial_father = if is_elected { None } else { Some(cfg.elected) };
        Lass {
            me,
            state: ProcState::Idle,
            tok_dir: ResTable::new_with(cfg.m, |_| initial_father),
            my_vector: Vec::new(),
            last_tok: ResTable::new_with(cfg.m, Token::new),
            t_required: ResourceSet::new(),
            t_owned: if is_elected {
                ResourceSet::full(cfg.m)
            } else {
                ResourceSet::new()
            },
            cnt_needed: ResourceSet::new(),
            cur_id: 0,
            pending: ResTable::new_with(cfg.m, |_| Vec::new()),
            t_lent: ResourceSet::new(),
            loan_asked: false,
            borrowed_in_cs: false,
            buf_req: Vec::new(),
            buf_cnt: Vec::new(),
            buf_tok: Vec::new(),
            stats: LassStats::default(),
            cfg,
        }
    }

    // ------------------------------------------------------------------
    // Introspection (tests, invariant checks, diagnostics)
    // ------------------------------------------------------------------

    /// Set of tokens currently owned.
    pub fn owned(&self) -> ResourceSet {
        self.t_owned.clone()
    }

    /// Set of resources currently lent out.
    pub fn lent(&self) -> ResourceSet {
        self.t_lent.clone()
    }

    /// Resources of the outstanding request.
    pub fn required(&self) -> ResourceSet {
        self.t_required.clone()
    }

    /// Father pointer of resource `r`'s tree (`None` = this site is root).
    pub fn father(&self, r: ResourceId) -> Option<NodeId> {
        match self.tok_dir.get(r) {
            Some(f) => *f,
            None => self.initial_father(),
        }
    }

    /// The token snapshot for `r` (authoritative iff owned).  Untouched
    /// resources yield a fresh token; diagnostics only — clones.
    pub fn token(&self, r: ResourceId) -> Token {
        match self.last_tok.get(r) {
            Some(t) => t.clone(),
            None => Token::new(r),
        }
    }

    /// Current request id.
    pub fn current_id(&self) -> RequestId {
        self.cur_id
    }

    /// The counter vector of the current request, densified (diagnostics
    /// only — allocates `m` entries).
    pub fn vector(&self) -> Vec<u64> {
        let mut v = vec![0; self.cfg.m];
        for &(r, val) in &self.my_vector {
            v[r] = val;
        }
        v
    }

    /// The scheduling mark `A(MyVector)` of the current request.
    pub fn mark(&self) -> f64 {
        self.cfg.policy.mark_sparse(self.my_vector.iter().map(|&(_, v)| v))
    }

    // ------------------------------------------------------------------
    // Sparse-table plumbing
    // ------------------------------------------------------------------

    fn initial_father(&self) -> Option<NodeId> {
        if self.me == self.cfg.elected {
            None
        } else {
            Some(self.cfg.elected)
        }
    }

    fn set_father(&mut self, r: ResourceId, f: Option<NodeId>) {
        self.tok_dir.set(r, f);
    }

    /// Mutable token snapshot, materializing a fresh token on first touch.
    fn tok_mut(&mut self, r: ResourceId) -> &mut Token {
        self.last_tok.get_or(r, Token::new)
    }

    /// Is `req` obsolete w.r.t. the snapshot of `r`?  An untouched token
    /// has all-zero stamps, so nothing is obsolete against it.
    fn tok_obsolete(&self, r: ResourceId, req: &Request) -> bool {
        self.last_tok.get(r).is_some_and(|t| t.obsolete(req))
    }

    /// `MyVector[r] = v` on the sparse pair vector.
    fn set_vector(&mut self, r: ResourceId, v: u64) {
        match self.my_vector.binary_search_by_key(&r, |&(rr, _)| rr) {
            Ok(i) => self.my_vector[i].1 = v,
            Err(i) => self.my_vector.insert(i, (r, v)),
        }
    }

    // ------------------------------------------------------------------
    // Aggregation buffers (§4.2.2)
    // ------------------------------------------------------------------

    fn buffer_request(&mut self, dest: NodeId, req: Request) {
        self.buf_req.push((dest, req));
    }

    /// Flush buffered request messages, one batch per destination, all
    /// tagged with the same visited set (`SendBufReq`).
    fn flush_requests<F: FnMut(NodeId, LassMsg)>(&mut self, visited: NodeSet, send: &mut F) {
        if self.buf_req.is_empty() {
            return;
        }
        let items = std::mem::take(&mut self.buf_req);
        let mut dests: Vec<NodeId> = Vec::new();
        for (d, _) in &items {
            if !dests.contains(d) {
                dests.push(*d);
            }
        }
        for d in dests {
            let reqs: Vec<Request> = items
                .iter()
                .filter(|(dd, _)| *dd == d)
                .map(|(_, q)| q.clone())
                .collect();
            send(d, LassMsg::Requests { visited: visited.clone(), reqs });
        }
    }

    /// Flush buffered response messages (`SendBuf`): counters then tokens,
    /// batched per destination.
    fn flush_responses<F: FnMut(NodeId, LassMsg)>(&mut self, send: &mut F) {
        if !self.buf_cnt.is_empty() {
            let items = std::mem::take(&mut self.buf_cnt);
            let mut dests: Vec<NodeId> = Vec::new();
            for (d, _) in &items {
                if !dests.contains(d) {
                    dests.push(*d);
                }
            }
            for d in dests {
                let vals: Vec<CounterVal> = items
                    .iter()
                    .filter(|(dd, _)| *dd == d)
                    .map(|(_, c)| c.clone())
                    .collect();
                send(d, LassMsg::Counters(vals));
            }
        }
        if !self.buf_tok.is_empty() {
            let items = std::mem::take(&mut self.buf_tok);
            let mut dests: Vec<NodeId> = Vec::new();
            for (d, _) in &items {
                if !dests.contains(d) {
                    dests.push(*d);
                }
            }
            for d in dests {
                let toks: Vec<Token> = items
                    .iter()
                    .filter(|(dd, _)| *dd == d)
                    .map(|(_, t)| t.clone())
                    .collect();
                send(d, LassMsg::Tokens(toks));
            }
        }
    }

    fn flush_all(&mut self, ctx: &mut Ctx<LassMsg>, visited: NodeSet) {
        let mut send = |to: NodeId, m: LassMsg| ctx.send(to, m);
        self.flush_responses(&mut send);
        self.flush_requests(visited, &mut send);
    }

    // ------------------------------------------------------------------
    // Token plumbing
    // ------------------------------------------------------------------

    /// `SendToken` (annex A line 102): snapshot the token to `dest`, rewire
    /// the father pointer and drop ownership.
    fn send_token(&mut self, r: ResourceId, dest: NodeId) {
        debug_assert!(self.t_owned.contains(r), "sending unowned token {r}");
        debug_assert_ne!(dest, self.me, "token self-send");
        let snapshot = self.tok_mut(r).clone();
        self.buf_tok.push((dest, snapshot));
        self.set_father(r, Some(dest));
        self.t_owned.remove(r);
    }

    fn enter_cs(&mut self, ctx: &mut Ctx<LassMsg>) {
        debug_assert_ne!(self.state, ProcState::InCS);
        debug_assert!(self.t_required.is_subset(&self.t_owned));
        self.borrowed_in_cs = self
            .t_required
            .iter()
            .any(|r| self.last_tok.get(r).is_some_and(|t| t.lender.is_some()));
        if self.borrowed_in_cs {
            self.stats.loans_used += 1;
        }
        self.state = ProcState::InCS;
        ctx.grant();
    }

    /// Reserve the counter of an owned token for the current request.
    fn take_counter_locally(&mut self, r: ResourceId) {
        debug_assert!(self.t_owned.contains(r));
        let v = self.tok_mut(r).take_counter();
        self.set_vector(r, v);
        // [deviation 2] record the served counter request so a wandering
        // duplicate ReqCnt of ours becomes obsolete.
        let me = self.me;
        let id = self.cur_id;
        self.tok_mut(r).set_last_req_c(me, id);
    }

    // ------------------------------------------------------------------
    // processCntNeededEmpty (annex A line 108)
    // ------------------------------------------------------------------

    /// `waitS → waitCS`: all counter values are known; send a `ReqRes` for
    /// every required resource not yet owned.  Buffers only — callers flush.
    fn on_counters_complete(&mut self) {
        debug_assert_eq!(self.state, ProcState::WaitS);
        debug_assert!(self.cnt_needed.is_empty());
        self.state = ProcState::WaitCS;
        let mark = self.mark();
        for r in self.t_required.iter() {
            if !self.t_owned.contains(r) {
                let father = self.father(r).expect("non-owner has a father");
                self.buffer_request(
                    father,
                    Request::Res(ResReq {
                        r,
                        sinit: self.me,
                        id: self.cur_id,
                        mark,
                    }),
                );
            }
        }
    }

    // ------------------------------------------------------------------
    // canLend (annex A line 117)
    // ------------------------------------------------------------------

    fn can_lend(&self, req: &LoanReq) -> bool {
        if !req.missing.is_subset(&self.t_owned) {
            return false;
        }
        // None of our owned tokens may itself be borrowed...
        if self
            .t_owned
            .iter()
            .any(|r| self.last_tok.get(r).is_some_and(|t| t.lender.is_some()))
        {
            return false;
        }
        // ...we must not have lent already, and must not be in CS.
        if !self.t_lent.is_empty() || self.state == ProcState::InCS {
            return false;
        }
        if self.state == ProcState::WaitCS {
            if !self.loan_asked {
                return true;
            }
            // Both of us want a loan: the borrower wins only with strictly
            // higher priority.
            return precedes(req.mark, req.sinit, self.mark(), self.me);
        }
        true // Idle or waitS: lend freely
    }

    // ------------------------------------------------------------------
    // processReqLoan (annex A line 190)
    // ------------------------------------------------------------------

    fn process_req_loan(&mut self, req: LoanReq) {
        debug_assert!(self.t_owned.contains(req.r));
        if self.tok_obsolete(req.r, &Request::Loan(req.clone())) {
            return;
        }
        if req.sinit == self.me {
            // [guard] our own wandering loan request: our need is tracked
            // locally; a self-loan is meaningless.
            return;
        }
        if self.can_lend(&req) {
            self.t_lent = req.missing.clone();
            self.stats.loans_granted += 1;
            let me = self.me;
            for r2 in req.missing.iter() {
                debug_assert!(self.t_owned.contains(r2));
                self.tok_mut(r2).lender = Some(me);
                // The borrower's queued ReqRes is satisfied by the loan
                // (annex A line 201).
                self.tok_mut(r2).remove_site(req.sinit);
                self.send_token(r2, req.sinit);
            }
        } else {
            let r = req.r;
            if !self.t_required.contains(r) || self.state == ProcState::WaitS {
                // Not a possible loan, but the token itself is free to go.
                self.tok_mut(r).remove_site(req.sinit);
                self.send_token(r, req.sinit);
            } else {
                self.tok_mut(r).enqueue_loan(req);
            }
        }
    }

    // ------------------------------------------------------------------
    // processUpdate (annex A line 133)
    // ------------------------------------------------------------------

    fn process_update(&mut self, mut t: Token) {
        let r = t.r;
        debug_assert!(!self.t_owned.contains(r), "duplicate token {r}");
        if t.lender == Some(self.me) {
            // [deviation 3] a token we lent came home; it is ours again,
            // not "borrowed from ourselves".
            t.lender = None;
        }
        self.last_tok.set(r, t);
        self.t_owned.insert(r);
        self.set_father(r, None);
        self.t_lent.remove(r);
        // [guard] our own queued request (left behind when we yielded this
        // token earlier) is satisfied by ownership; purge it so it can never
        // be "granted" back to ourselves.
        let me = self.me;
        self.tok_mut(r).remove_site(me);
        if self.cnt_needed.contains(r) {
            self.cnt_needed.remove(r);
            self.take_counter_locally(r);
        }
        // Replay the pending history for r (§4.2.1): requests we forwarded
        // may never have reached the holder; now that the token is here, we
        // are the holder.
        let history = self.pending.get_mut(r).map(std::mem::take).unwrap_or_default();
        let mut keep: Vec<Request> = Vec::new();
        for req in history {
            if self.tok_obsolete(r, &req) {
                continue; // retired for good
            }
            if req.sinit() == self.me {
                // [guard] our own request: ownership of the token satisfies
                // it (counter taken above; CS entry checked by the caller).
                continue;
            }
            match req {
                Request::Cnt {
                    single: false,
                    sinit,
                    id,
                    ..
                } => {
                    self.tok_mut(r).set_last_req_c(sinit, id);
                    let val = self.tok_mut(r).take_counter();
                    self.buf_cnt.push((sinit, CounterVal { r, val, id }));
                }
                Request::Cnt {
                    single: true,
                    sinit,
                    id,
                    ..
                } => {
                    let rr = self.convert_single(r, sinit, id);
                    self.tok_mut(r).enqueue_res(rr);
                }
                Request::Res(rr) => {
                    self.tok_mut(r).enqueue_res(rr.clone());
                    keep.push(Request::Res(rr));
                }
                Request::Loan(lr) => {
                    self.tok_mut(r).enqueue_loan(lr.clone());
                    keep.push(Request::Loan(lr));
                }
            }
        }
        if !keep.is_empty() {
            self.pending.set(r, keep);
        }
    }

    /// §4.6.1: the holder turns a single-resource `ReqCnt` into a `ReqRes`,
    /// computing the mark itself from the counter value it assigns.
    fn convert_single(&mut self, r: ResourceId, sinit: NodeId, id: RequestId) -> ResReq {
        let val = self.tok_mut(r).take_counter();
        self.tok_mut(r).set_last_req_c(sinit, id);
        ResReq {
            r,
            sinit,
            id,
            mark: self.cfg.policy.mark_single(val),
        }
    }

    // ------------------------------------------------------------------
    // Receive Request (annex A line 159)
    // ------------------------------------------------------------------

    fn on_requests(&mut self, ctx: &mut Ctx<LassMsg>, visited: NodeSet, reqs: Vec<Request>) {
        for req in reqs {
            let r = req.r();
            let sinit = req.sinit();
            if self.tok_obsolete(r, &req) {
                continue;
            }
            if self.t_owned.contains(r) {
                if sinit == self.me {
                    continue; // [guard] own request met by ownership
                }
                match req {
                    Request::Loan(lr) => self.process_req_loan(lr),
                    ref q => {
                        // Single-resource counter requests behave as
                        // resource requests everywhere below (§4.6.1).
                        let acts_as_res = !matches!(
                            q,
                            Request::Cnt { single: false, .. }
                        );
                        if !self.t_required.contains(r)
                            || (self.state == ProcState::WaitS && acts_as_res)
                        {
                            // Holder does not need r (or is still counting
                            // and yields): hand the token over.
                            self.send_token(r, sinit);
                        } else if let Request::Cnt {
                            single: false, id, ..
                        } = *q
                        {
                            // Plain counter request: reply with the value.
                            self.tok_mut(r).set_last_req_c(sinit, id);
                            let val = self.tok_mut(r).take_counter();
                            self.buf_cnt.push((sinit, CounterVal { r, val, id }));
                        } else {
                            // ReqRes (or converted single): conflict.
                            let rr = match q.clone() {
                                Request::Res(rr) => rr,
                                Request::Cnt { sinit, id, .. } => {
                                    self.convert_single(r, sinit, id)
                                }
                                Request::Loan(_) => unreachable!(),
                            };
                            self.resolve_conflict(rr);
                        }
                    }
                }
            } else {
                let father = self.father(r).expect("non-owner has a father");
                // §4.6.2 stop-forwarding: we are certain to receive the
                // token before the requester, so park the request here.
                if self.cfg.opt_stop_forwarding {
                    if let Request::Res(ref rr) = req {
                        let lent = self.t_lent.contains(r);
                        let overtaking = self.state == ProcState::WaitCS
                            && self.cnt_needed.is_empty()
                            && self.t_required.contains(r)
                            && precedes(self.mark(), self.me, rr.mark, rr.sinit);
                        if lent || overtaking {
                            self.push_pending(r, req);
                            continue;
                        }
                    }
                }
                if !visited.contains(father) {
                    self.push_pending(r, req.clone());
                    self.buffer_request(father, req);
                }
                // else: a site on the visited path keeps it in its pending
                // history; the token must cross that path (lemma 6).
            }
        }
        let mut fwd_visited = visited;
        fwd_visited.insert(self.me);
        self.flush_all(ctx, fwd_visited);
    }

    fn push_pending(&mut self, r: ResourceId, req: Request) {
        // One live entry per (site, kind) is enough: ids only grow.
        let key = (req.sinit(), std::mem::discriminant(&req));
        let hist = self.pending.get_or(r, |_| Vec::new());
        hist.retain(|q| (q.sinit(), std::mem::discriminant(q)) != key || q.id() >= req.id());
        if !hist
            .iter()
            .any(|q| (q.sinit(), std::mem::discriminant(q)) == key && q.id() >= req.id())
        {
            hist.push(req);
        }
    }

    /// Owner in `waitCS`/`inCS` receives a conflicting `ReqRes` (annex A
    /// lines 176–184): yield to strictly higher priority, queue otherwise.
    fn resolve_conflict(&mut self, rr: ResReq) {
        let r = rr.r;
        if self
            .last_tok
            .get(r)
            .is_some_and(|t| t.queue_contains(rr.sinit, rr.id))
        {
            return;
        }
        let my_mark = self.mark();
        if self.state == ProcState::WaitCS
            && precedes(rr.mark, rr.sinit, my_mark, self.me)
        {
            // The newcomer overtakes us: queue ourselves, hand the token
            // over directly.
            let mine = ResReq {
                r,
                sinit: self.me,
                id: self.cur_id,
                mark: my_mark,
            };
            self.tok_mut(r).enqueue_res(mine);
            self.stats.yields += 1;
            self.send_token(r, rr.sinit);
        } else {
            // (waitCS ∧ we precede) ∨ inCS: the request waits.
            self.tok_mut(r).enqueue_res(rr);
        }
    }

    // ------------------------------------------------------------------
    // Receive Counter (annex A line 255)
    // ------------------------------------------------------------------

    fn on_counters(&mut self, ctx: &mut Ctx<LassMsg>, from: NodeId, vals: Vec<CounterVal>) {
        for c in vals {
            // [deviation 1] only accept values for the current request and
            // still-missing resources; stale replies are dropped.
            if c.id != self.cur_id || !self.cnt_needed.contains(c.r) {
                continue;
            }
            self.set_vector(c.r, c.val);
            self.cnt_needed.remove(c.r);
            if self.cfg.opt_shortcut_on_counter {
                // Path shortcut: the replier held the token just now.
                debug_assert!(!self.t_owned.contains(c.r));
                self.set_father(c.r, Some(from));
            }
        }
        if self.state == ProcState::WaitS && self.cnt_needed.is_empty() {
            self.on_counters_complete();
        }
        self.flush_all(ctx, NodeSet::singleton(self.me));
    }

    // ------------------------------------------------------------------
    // Receive Token (annex A line 208)
    // ------------------------------------------------------------------

    fn on_tokens(&mut self, ctx: &mut Ctx<LassMsg>, toks: Vec<Token>) {
        for t in toks {
            self.process_update(t);
        }
        let requesting = matches!(self.state, ProcState::WaitS | ProcState::WaitCS);
        if requesting && self.t_required.is_subset(&self.t_owned) {
            self.enter_cs(ctx);
        } else if self.state != ProcState::InCS {
            // The loan failed (or the token is a stale grant): return every
            // borrowed token to its legitimate owner (annex A lines
            // 217-223).
            let mut returned = false;
            for r in self.t_owned.iter().collect::<Vec<_>>() {
                if let Some(lender) = self.last_tok.get(r).and_then(|t| t.lender) {
                    debug_assert_ne!(lender, self.me);
                    // [deviation 3] clear the loan marker on return.
                    self.tok_mut(r).lender = None;
                    // [deviation 8] the lender removed our ReqRes from the
                    // queue when it granted the loan (annex A line 201); as
                    // the loan failed, our request must be re-queued or it
                    // would be lost forever (liveness hole in the paper's
                    // pseudo-code — see DESIGN.md §6).
                    if self.state == ProcState::WaitCS && self.t_required.contains(r) {
                        let mine = ResReq {
                            r,
                            sinit: self.me,
                            id: self.cur_id,
                            mark: self.mark(),
                        };
                        self.tok_mut(r).enqueue_res(mine);
                    }
                    self.send_token(r, lender);
                    returned = true;
                }
            }
            if returned {
                self.stats.loans_failed += 1;
                self.loan_asked = false;
            }
            if self.state == ProcState::WaitS && self.cnt_needed.is_empty() {
                self.on_counters_complete();
            }
            self.reschedule_owned();
            self.retry_pending_loans();
            self.maybe_request_loan();
        }
        // Even when entering CS, counter replies buffered by processUpdate
        // must go out.
        self.flush_all(ctx, NodeSet::singleton(self.me));
    }

    /// Annex A lines 226–238: after a token arrives, re-examine every owned
    /// token's queue; yield whenever the head has priority over us (or
    /// unconditionally if we are still in `waitS`, idle, or do not require
    /// the resource).
    fn reschedule_owned(&mut self) {
        let my_mark = self.mark();
        for r in self.t_owned.iter().collect::<Vec<_>>() {
            if !self.t_owned.contains(r) {
                continue; // handed away by a previous iteration's loan
            }
            let Some(head) = self.last_tok.get(r).and_then(|t| t.head().cloned()) else {
                continue;
            };
            debug_assert_ne!(head.sinit, self.me, "own request queued in own token");
            let yield_now = match self.state {
                // Still gathering counters: always yield (we will re-request
                // via ReqRes once counters are complete).
                ProcState::WaitS => true,
                // [deviation 7] a queued request on a token we do not even
                // require must be served, or it could wait forever.
                ProcState::Idle => true,
                ProcState::WaitCS => {
                    if !self.t_required.contains(r) {
                        true // [deviation 7]
                    } else {
                        precedes(head.mark, head.sinit, my_mark, self.me)
                    }
                }
                ProcState::InCS => unreachable!("rescheduling while in CS"),
            };
            if yield_now {
                self.tok_mut(r).dequeue();
                if self.state == ProcState::WaitCS && self.t_required.contains(r) {
                    let mine = ResReq {
                        r,
                        sinit: self.me,
                        id: self.cur_id,
                        mark: my_mark,
                    };
                    self.tok_mut(r).enqueue_res(mine);
                    self.stats.yields += 1;
                }
                self.send_token(r, head.sinit);
            }
        }
    }

    /// Annex A lines 241–247: retry queued loan requests of owned tokens.
    fn retry_pending_loans(&mut self) {
        for r in self.t_owned.iter().collect::<Vec<_>>() {
            if !self.t_owned.contains(r) {
                continue;
            }
            let Some(tok) = self.last_tok.get_mut(r) else {
                continue; // untouched token: nothing queued
            };
            if tok.w_loan.is_empty() {
                continue;
            }
            let queued = std::mem::take(&mut tok.w_loan);
            for lr in queued {
                if self.t_owned.contains(lr.r) {
                    self.process_req_loan(lr);
                }
            }
        }
    }

    /// Annex A lines 248–252: initiate a loan request when few enough
    /// resources are missing.
    fn maybe_request_loan(&mut self) {
        let Some(threshold) = self.cfg.loan else {
            return;
        };
        if self.state != ProcState::WaitCS || self.loan_asked {
            return;
        }
        let missing = self.t_required.difference(&self.t_owned);
        // [deviation 5] the paper's text says "smaller or equal to a given
        // threshold" (§4.5); the pseudo-code uses equality.  `≤` dominates
        // and coincides at the paper's threshold of 1.
        if missing.is_empty() || missing.len() > threshold {
            return;
        }
        self.loan_asked = true;
        self.stats.loans_requested += 1;
        let mark = self.mark();
        for r in missing.iter() {
            let father = self.father(r).expect("missing resource has a father");
            self.buffer_request(
                father,
                Request::Loan(LoanReq {
                    r,
                    sinit: self.me,
                    id: self.cur_id,
                    mark,
                    missing: missing.clone(),
                }),
            );
        }
    }
}

impl Allocator for Lass {
    type Msg = LassMsg;

    fn on_init(&mut self, _ctx: &mut Ctx<LassMsg>) {}

    fn on_message(&mut self, ctx: &mut Ctx<LassMsg>, from: NodeId, msg: LassMsg) {
        match msg {
            LassMsg::Requests { visited, reqs } => self.on_requests(ctx, visited, reqs),
            LassMsg::Counters(vals) => self.on_counters(ctx, from, vals),
            LassMsg::Tokens(toks) => self.on_tokens(ctx, toks),
        }
    }

    /// `Request_CS` (annex A line 68).
    fn request(&mut self, ctx: &mut Ctx<LassMsg>, resources: ResourceSet) {
        assert_eq!(self.state, ProcState::Idle, "request while busy");
        assert!(!resources.is_empty(), "empty request");
        debug_assert!(resources.iter().all(|r| r < self.cfg.m));
        self.cur_id += 1;
        self.t_required = resources.clone();
        self.cnt_needed.clear();
        self.loan_asked = false;

        // §4.6.1: single-resource requests skip the counter phase; the
        // holder computes the mark.  (Only when the token is remote —
        // locally we just take the counter.)
        if self.cfg.opt_single_resource && resources.len() == 1 {
            let r = resources.first().expect("non-empty");
            if !self.t_owned.contains(r) {
                self.state = ProcState::WaitCS;
                // processUpdate reserves the counter on token arrival.
                self.cnt_needed.insert(r);
                let father = self.father(r).expect("non-owner has a father");
                self.buffer_request(
                    father,
                    Request::Cnt {
                        r,
                        sinit: self.me,
                        id: self.cur_id,
                        single: true,
                    },
                );
                self.flush_all(ctx, NodeSet::singleton(self.me));
                return;
            }
        }

        self.state = ProcState::WaitS;
        for r in resources.iter() {
            if self.t_owned.contains(r) {
                self.take_counter_locally(r);
            } else {
                self.cnt_needed.insert(r);
                let father = self.father(r).expect("non-owner has a father");
                self.buffer_request(
                    father,
                    Request::Cnt {
                        r,
                        sinit: self.me,
                        id: self.cur_id,
                        single: false,
                    },
                );
            }
        }
        self.flush_all(ctx, NodeSet::singleton(self.me));
        if self.cnt_needed.is_empty() {
            // Every required token is already here: counters were taken
            // locally and the CS can start at once.
            debug_assert!(self.t_required.is_subset(&self.t_owned));
            self.enter_cs(ctx);
        }
    }

    /// `Release_CS` (annex A line 85).
    fn release(&mut self, ctx: &mut Ctx<LassMsg>) {
        assert_eq!(self.state, ProcState::InCS, "release outside CS");
        self.state = ProcState::Idle;
        self.loan_asked = false;
        self.borrowed_in_cs = false;
        let me = self.me;
        let id = self.cur_id;
        for r in self.t_required.iter().collect::<Vec<_>>() {
            debug_assert!(self.t_owned.contains(r));
            self.tok_mut(r).set_last_cs(me, id);
            match self.tok_mut(r).lender {
                None => {
                    if let Some(next) = self.tok_mut(r).dequeue() {
                        self.send_token(r, next.sinit);
                    }
                }
                Some(lender) => {
                    // Borrowed token: straight back to the lender, dropping
                    // any queued request of the lender itself (annex A
                    // line 96).
                    debug_assert_ne!(lender, me);
                    self.tok_mut(r).remove_site(lender);
                    self.tok_mut(r).lender = None;
                    self.send_token(r, lender);
                }
            }
        }
        // [deviation 7] tokens we own but did not use can carry queued
        // requests (e.g. they returned from a borrower mid-CS); serve them
        // now — release() never visits them otherwise.
        for r in self.t_owned.iter().collect::<Vec<_>>() {
            if self.t_required.contains(r) {
                continue;
            }
            let next = self.last_tok.get_mut(r).and_then(|t| t.dequeue());
            if let Some(next) = next {
                self.send_token(r, next.sinit);
            }
        }
        self.t_required.clear();
        self.my_vector.clear();
        // [deviation 9] pending loan requests parked in the wLoan of tokens
        // we keep would otherwise only be retried on a future token receipt
        // — which may never come once we are idle.  Retrying them here (we
        // are now an idle owner, so canLend generally succeeds) closes the
        // liveness hole.
        self.retry_pending_loans();
        self.flush_all(ctx, NodeSet::singleton(self.me));
    }

    fn state(&self) -> ProcState {
        self.state
    }

    fn name(&self) -> &'static str {
        if self.cfg.loan.is_some() {
            "lass+loan"
        } else {
            "lass"
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn two_nodes() -> (Vec<Lass>, Vec<Ctx<LassMsg>>) {
        let cfg = LassConfig::without_loan(2, 3);
        let nodes = cfg.build_nodes();
        let ctxs = (0..2).map(|i| Ctx::new(i, 2)).collect();
        (nodes, ctxs)
    }

    #[test]
    fn elected_owns_everything_initially() {
        let (nodes, _) = two_nodes();
        assert_eq!(nodes[0].owned().len(), 3);
        assert!(nodes[1].owned().is_empty());
        assert_eq!(nodes[1].father(0), Some(0));
        assert_eq!(nodes[0].father(0), None);
    }

    #[test]
    fn local_request_grants_immediately() {
        let (mut nodes, mut ctxs) = two_nodes();
        let set: ResourceSet = [0, 2].into_iter().collect();
        nodes[0].request(&mut ctxs[0], set);
        assert!(ctxs[0].take_granted());
        assert_eq!(nodes[0].state(), ProcState::InCS);
        // Counters were reserved for the request.
        assert_eq!(nodes[0].vector()[0], 1);
        assert_eq!(nodes[0].vector()[2], 1);
        assert_eq!(nodes[0].vector()[1], 0);
        assert_eq!(nodes[0].mark(), 1.0);
        nodes[0].release(&mut ctxs[0]);
        assert_eq!(nodes[0].state(), ProcState::Idle);
        assert!(!ctxs[0].has_output(), "no messages for a purely local cycle");
    }

    #[test]
    fn remote_multi_resource_request_uses_counter_phase() {
        let (mut nodes, mut ctxs) = two_nodes();
        let set: ResourceSet = [0, 1].into_iter().collect();
        nodes[1].request(&mut ctxs[1], set);
        assert_eq!(nodes[1].state(), ProcState::WaitS);
        let out = ctxs[1].take_outbox();
        assert_eq!(out.len(), 1, "both ReqCnt aggregate to one message");
        let (to, msg) = &out[0];
        assert_eq!(*to, 0);
        match msg {
            LassMsg::Requests { reqs, visited } => {
                assert_eq!(reqs.len(), 2);
                assert!(visited.contains(1));
                assert!(reqs.iter().all(|q| q.kind() == "ReqCnt"));
            }
            other => panic!("unexpected {other:?}"),
        }
    }

    #[test]
    fn single_resource_request_is_one_message() {
        let (mut nodes, mut ctxs) = two_nodes();
        nodes[1].request(&mut ctxs[1], ResourceSet::singleton(2));
        assert_eq!(nodes[1].state(), ProcState::WaitCS, "skips waitS");
        let out = ctxs[1].take_outbox();
        assert_eq!(out.len(), 1);
        match &out[0].1 {
            LassMsg::Requests { reqs, .. } => {
                assert_eq!(reqs.len(), 1);
                assert_eq!(reqs[0].kind(), "ReqCnt1");
            }
            other => panic!("unexpected {other:?}"),
        }
    }

    #[test]
    fn idle_holder_answers_counter_and_keeps_token() {
        let (mut nodes, mut ctxs) = two_nodes();
        // Make node 0 require resources 0,1 so it answers with a counter
        // value instead of shipping the token.
        let set01: ResourceSet = [0, 1].into_iter().collect();
        nodes[0].request(&mut ctxs[0], set01.clone());
        assert!(ctxs[0].take_granted());

        nodes[1].request(&mut ctxs[1], set01);
        let out = ctxs[1].take_outbox();
        let (_, msg) = out.into_iter().next().unwrap();
        nodes[0].on_message(&mut ctxs[0], 1, msg);
        let reply = ctxs[0].take_outbox();
        assert_eq!(reply.len(), 1);
        match &reply[0].1 {
            LassMsg::Counters(vals) => {
                assert_eq!(vals.len(), 2);
                // Node 0 took value 1 for itself; node 1 gets value 2.
                assert!(vals.iter().all(|c| c.val == 2));
            }
            other => panic!("expected counters, got {other:?}"),
        }
        assert_eq!(nodes[0].owned().len(), 3, "token stays with the user");
    }

    #[test]
    fn holder_ships_token_for_unrequired_resource() {
        let (mut nodes, mut ctxs) = two_nodes();
        // Node 0 idle; node 1 asks counters for {0,1}: tokens come straight
        // over because node 0 does not require them.
        let set: ResourceSet = [0, 1].into_iter().collect();
        nodes[1].request(&mut ctxs[1], set);
        let (_, msg) = ctxs[1].take_outbox().into_iter().next().unwrap();
        nodes[0].on_message(&mut ctxs[0], 1, msg);
        let reply = ctxs[0].take_outbox();
        assert_eq!(reply.len(), 1);
        match &reply[0].1 {
            LassMsg::Tokens(toks) => assert_eq!(toks.len(), 2),
            other => panic!("expected tokens, got {other:?}"),
        }
        assert_eq!(nodes[0].owned().len(), 1);
        // Deliver the tokens: node 1 enters CS.
        let (_, msg) = reply.into_iter().next().unwrap();
        nodes[1].on_message(&mut ctxs[1], 0, msg);
        assert!(ctxs[1].take_granted());
        assert_eq!(nodes[1].state(), ProcState::InCS);
        // Counters were reserved by processUpdate on arrival.
        assert_eq!(nodes[1].vector()[0], 1);
        assert_eq!(nodes[1].vector()[1], 1);
    }

    #[test]
    fn release_passes_token_to_queue_head() {
        let (mut nodes, mut ctxs) = two_nodes();
        let set: ResourceSet = ResourceSet::singleton(0);
        // Node 0 enters CS on resource 0.
        nodes[0].request(&mut ctxs[0], set.clone());
        assert!(ctxs[0].take_granted());
        // Node 1 requests the same resource (single-resource fast path).
        nodes[1].request(&mut ctxs[1], set);
        let (_, msg) = ctxs[1].take_outbox().into_iter().next().unwrap();
        nodes[0].on_message(&mut ctxs[0], 1, msg);
        assert!(ctxs[0].take_outbox().is_empty(), "request queued, not answered");
        assert_eq!(nodes[0].token(0).w_queue.len(), 1);
        // Release: token goes to node 1.
        nodes[0].release(&mut ctxs[0]);
        let out = ctxs[0].take_outbox();
        assert_eq!(out.len(), 1);
        nodes[1].on_message(&mut ctxs[1], 0, out.into_iter().next().unwrap().1);
        assert!(ctxs[1].take_granted());
    }

    #[test]
    fn obsolete_requests_are_dropped() {
        let (mut nodes, mut ctxs) = two_nodes();
        // Simulate a stale wandering request: id 0 is always obsolete after
        // any CS of node 1... here last_cs starts at 0 so id must be ≤ 0.
        let stale = LassMsg::Requests {
            visited: NodeSet::singleton(1),
            reqs: vec![Request::Res(ResReq {
                r: 0,
                sinit: 1,
                id: 0,
                mark: 0.5,
            })],
        };
        nodes[0].on_message(&mut ctxs[0], 1, stale);
        assert!(ctxs[0].take_outbox().is_empty());
        assert!(nodes[0].token(0).w_queue.is_empty());
    }

    #[test]
    fn waits_yields_token_to_res_request() {
        let cfg = LassConfig::without_loan(3, 3);
        let mut nodes = cfg.build_nodes();
        let mut ctxs: Vec<Ctx<LassMsg>> = (0..3).map(|i| Ctx::new(i, 3)).collect();
        // Node 0 starts a request for {0,1,2}: takes counters locally,
        // enters CS immediately... avoid that: give node 0 a request for
        // {0,1} and let it be in waitS? It owns everything, so it can't
        // wait.  Instead: ship token 0 to node 1 first.
        nodes[2].request(&mut ctxs[2], ResourceSet::singleton(0));
        let (_, m) = ctxs[2].take_outbox().into_iter().next().unwrap();
        nodes[0].on_message(&mut ctxs[0], 2, m);
        let (_, m) = ctxs[0].take_outbox().into_iter().next().unwrap();
        nodes[2].on_message(&mut ctxs[2], 0, m);
        assert!(ctxs[2].take_granted());
        // Now node 0 requests {0,1}: it owns 1 (takes counter locally) and
        // needs the counter of 0 from node 2 → waitS.
        nodes[0].request(&mut ctxs[0], [0, 1].into_iter().collect());
        assert_eq!(nodes[0].state(), ProcState::WaitS);
        let out = ctxs[0].take_outbox(); // ReqCnt for 0 to node 2
        assert_eq!(out[0].0, 2);
        // While node 0 is in waitS, node 1 sends it a ReqRes for resource 1.
        let rr = LassMsg::Requests {
            visited: NodeSet::singleton(1),
            reqs: vec![Request::Res(ResReq {
                r: 1,
                sinit: 1,
                id: 1,
                mark: 3.0,
            })],
        };
        nodes[0].on_message(&mut ctxs[0], 1, rr);
        let sent = ctxs[0].take_outbox();
        assert_eq!(sent.len(), 1);
        assert_eq!(sent[0].0, 1, "token 1 yielded to node 1 despite waitS");
        assert!(!nodes[0].owned().contains(1));
    }
}
