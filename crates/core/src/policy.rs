//! The scheduling function `A` and the total order `/` over requests.
//!
//! The paper (§3.3.2) identifies each request with a vector of counter
//! values (one per required resource, zero elsewhere) and orders requests by
//! `req_i / req_j  ⇔  A(v_i) < A(v_j) ∨ (A(v_i) = A(v_j) ∧ s_i ≺ s_j)`.
//! `A : ℕ^M → ℝ` is a *parameter of the algorithm*: it defines the
//! scheduling policy, and liveness requires that every pending request
//! eventually has the smallest value (hypothesis 6 of the proof annex).
//!
//! The paper's evaluation uses the **average of the non-null values**; since
//! counters only grow, the minimum of `A` over new requests grows without
//! bound, so no request can be overtaken forever.  The alternative policies
//! here share that property (they are monotone in the counter values) and
//! are used by the ablation benchmarks.

use mra_types::NodeId;

/// The reduction `A` applied to a request's counter vector.
///
/// All variants ignore zero entries (zero means "resource not required";
/// real counter values start at 1).
#[derive(Clone, Copy, PartialEq, Eq, Debug, Default)]
pub enum SchedulingPolicy {
    /// Average of non-null counter values — the paper's choice.
    #[default]
    AvgNonZero,
    /// Maximum of non-null counter values: prioritizes requests whose most
    /// contended resource was reserved earliest.
    MaxNonZero,
    /// Sum of non-null counter values: biases towards small requests.
    SumNonZero,
    /// Minimum of non-null counter values: a request is as old as its
    /// earliest reservation.
    MinNonZero,
}

impl SchedulingPolicy {
    /// Apply `A` to a counter vector.  `A(0⃗) = 0` by convention (only
    /// reachable under the single-resource optimization, where the mark is
    /// computed by the token holder instead).
    pub fn mark(&self, vector: &[u64]) -> f64 {
        self.mark_sparse(vector.iter().copied())
    }

    /// Apply `A` to the counter values of a sparse vector: `vals` yields
    /// the stored entries (zeros may be omitted — they are ignored either
    /// way).  Equivalent to [`SchedulingPolicy::mark`] on the dense form.
    pub fn mark_sparse(&self, vals: impl Iterator<Item = u64>) -> f64 {
        let nz = vals.filter(|&v| v != 0);
        match self {
            SchedulingPolicy::AvgNonZero => {
                let (sum, count) = nz.fold((0u64, 0u64), |(s, c), v| (s + v, c + 1));
                if count == 0 {
                    0.0
                } else {
                    sum as f64 / count as f64
                }
            }
            SchedulingPolicy::MaxNonZero => nz.max().unwrap_or(0) as f64,
            SchedulingPolicy::SumNonZero => nz.sum::<u64>() as f64,
            SchedulingPolicy::MinNonZero => nz.min().unwrap_or(0) as f64,
        }
    }

    /// `A` of a vector with a single non-null entry `v` — used by the token
    /// holder for the single-resource request optimization (§4.6.1).
    pub fn mark_single(&self, v: u64) -> f64 {
        self.mark(&[v])
    }

    /// Short name for reports.
    pub fn name(&self) -> &'static str {
        match self {
            SchedulingPolicy::AvgNonZero => "avg",
            SchedulingPolicy::MaxNonZero => "max",
            SchedulingPolicy::SumNonZero => "sum",
            SchedulingPolicy::MinNonZero => "min",
        }
    }

    /// All policies, for ablation sweeps.
    pub fn all() -> [SchedulingPolicy; 4] {
        [
            SchedulingPolicy::AvgNonZero,
            SchedulingPolicy::MaxNonZero,
            SchedulingPolicy::SumNonZero,
            SchedulingPolicy::MinNonZero,
        ]
    }
}

/// The strict total order `/` over requests (definition 1 of the proof
/// annex): smaller mark first, site id breaking ties.
///
/// Returns true iff `(mark_a, a)` strictly precedes `(mark_b, b)`.
#[inline]
pub fn precedes(mark_a: f64, a: NodeId, mark_b: f64, b: NodeId) -> bool {
    match mark_a.total_cmp(&mark_b) {
        std::cmp::Ordering::Less => true,
        std::cmp::Ordering::Greater => false,
        std::cmp::Ordering::Equal => a < b,
    }
}

/// Total-order comparison used to keep token wait queues sorted.
#[inline]
pub fn order_key(mark: f64, site: NodeId) -> (u64, NodeId) {
    // `total_cmp`-compatible bit trick: for non-negative finite floats the
    // IEEE-754 bit pattern orders identically to the value.  Marks are
    // always ≥ 0 (averages/sums of non-negative counters), asserted in
    // debug builds.
    debug_assert!(mark >= 0.0 && mark.is_finite(), "invalid mark {mark}");
    (mark.to_bits(), site)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn avg_ignores_zeros() {
        let p = SchedulingPolicy::AvgNonZero;
        assert_eq!(p.mark(&[0, 4, 0, 8]), 6.0);
        assert_eq!(p.mark(&[5]), 5.0);
        assert_eq!(p.mark(&[0, 0]), 0.0);
        assert_eq!(p.mark(&[]), 0.0);
    }

    #[test]
    fn other_policies() {
        assert_eq!(SchedulingPolicy::MaxNonZero.mark(&[0, 4, 9, 1]), 9.0);
        assert_eq!(SchedulingPolicy::SumNonZero.mark(&[0, 4, 9, 1]), 14.0);
        assert_eq!(SchedulingPolicy::MinNonZero.mark(&[0, 4, 9, 1]), 1.0);
        assert_eq!(SchedulingPolicy::MaxNonZero.mark(&[0]), 0.0);
    }

    #[test]
    fn mark_single_matches_vector() {
        for p in SchedulingPolicy::all() {
            assert_eq!(p.mark_single(7), p.mark(&[0, 7, 0]));
        }
    }

    #[test]
    fn precedes_is_strict_total_order_on_samples() {
        let samples = [(1.0, 0), (1.0, 1), (2.0, 0), (0.5, 3), (2.0, 2)];
        // Irreflexive.
        for &(m, s) in &samples {
            assert!(!precedes(m, s, m, s));
        }
        // Trichotomy.
        for &(ma, a) in &samples {
            for &(mb, b) in &samples {
                if (ma, a) == (mb, b) {
                    continue;
                }
                assert_ne!(precedes(ma, a, mb, b), precedes(mb, b, ma, a));
            }
        }
        // Transitivity on a sorted chain.
        assert!(precedes(0.5, 3, 1.0, 0));
        assert!(precedes(1.0, 0, 1.0, 1));
        assert!(precedes(0.5, 3, 1.0, 1));
    }

    #[test]
    fn order_key_agrees_with_precedes() {
        let samples = [(1.0, 0), (1.5, 4), (1.5, 2), (0.0, 9), (3.25, 1)];
        for &(ma, a) in &samples {
            for &(mb, b) in &samples {
                assert_eq!(
                    precedes(ma, a, mb, b),
                    order_key(ma, a) < order_key(mb, b),
                    "({ma},{a}) vs ({mb},{b})"
                );
            }
        }
    }

    #[test]
    fn policy_names_unique() {
        let names: Vec<_> = SchedulingPolicy::all().iter().map(|p| p.name()).collect();
        let mut dedup = names.clone();
        dedup.dedup();
        assert_eq!(names, dedup);
    }
}
