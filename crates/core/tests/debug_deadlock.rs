//! Diagnostic (ignored by default): reproduce a loan deadlock seed and dump
//! internal protocol state.  Kept as a debugging tool for future protocol
//! changes.

use mra_core::{Lass, LassConfig};
use mra_protocol::testkit::{run_random_workload, ExerciseCfg, VirtualNet};
use rand::rngs::StdRng;
use rand::SeedableRng;

fn dump(net: &VirtualNet<Lass>, n: usize, m: usize) {
    for i in 0..n {
        let node = net.node(i);
        eprintln!(
            "node {i}: state={:?} required={:?} owned={:?} lent={:?} id={} loans(req={},granted={},used={},failed={})",
            net.state(i),
            node.required().to_vec(),
            node.owned().to_vec(),
            node.lent().to_vec(),
            node.current_id(),
            node.stats.loans_requested,
            node.stats.loans_granted,
            node.stats.loans_used,
            node.stats.loans_failed,
        );
        for r in 0..m {
            let t = node.token(r);
            if node.owned().contains(r) {
                eprintln!(
                    "   owns r{r}: counter={} lender={:?} wq={:?} wl={:?}",
                    t.counter,
                    t.lender,
                    t.w_queue
                        .iter()
                        .map(|q| (q.sinit, q.id, q.mark))
                        .collect::<Vec<_>>(),
                    t.w_loan
                        .iter()
                        .map(|q| (q.sinit, q.id))
                        .collect::<Vec<_>>(),
                );
            }
        }
        for r in 0..m {
            eprintln!("   father[r{r}]={:?}", node.father(r));
        }
    }
}

#[test]
#[ignore = "diagnostic tool: run manually with --ignored"]
fn repro_seed() {
    let seed: u64 = std::env::var("SEED")
        .ok()
        .and_then(|s| s.parse().ok())
        .unwrap_or(1000);
    let cfg = LassConfig::with_loan(5, 8);
    let mut net = VirtualNet::new(cfg.build_nodes(), cfg.m);
    let mut rng = StdRng::seed_from_u64(seed);
    let ex = ExerciseCfg {
        rounds_per_node: 6,
        max_req_size: 4,
        m: 8,
        hold_steps: 3,
        active_nodes: None,
        step_cap: 3_000_000,
    };
    let result = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
        run_random_workload(&mut net, &ex, &mut rng)
    }));
    if let Err(e) = result {
        dump(&net, 5, 8);
        std::panic::resume_unwind(e);
    }
}
