//! Property-based tests: LASS is safe and live for *arbitrary* system
//! shapes, configurations and interleavings, and the `/` relation is a
//! strict total order for arbitrary marks.

use mra_core::{precedes, Lass, LassConfig, SchedulingPolicy};
use mra_protocol::testkit::{run_random_workload, ExerciseCfg, VirtualNet};
use mra_types::ResourceSet;
use proptest::prelude::*;
use rand::rngs::StdRng;
use rand::SeedableRng;

fn policy_strategy() -> impl Strategy<Value = SchedulingPolicy> {
    prop_oneof![
        Just(SchedulingPolicy::AvgNonZero),
        Just(SchedulingPolicy::MaxNonZero),
        Just(SchedulingPolicy::SumNonZero),
        Just(SchedulingPolicy::MinNonZero),
    ]
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    /// The headline property: any configuration, any interleaving — every
    /// request completes, exclusivity always holds, and at quiescence each
    /// token exists exactly once.
    #[test]
    fn lass_safe_live_any_config(
        seed in any::<u64>(),
        n in 2usize..6,
        m in 1usize..9,
        loan in prop_oneof![Just(None), Just(Some(1)), Just(Some(2))],
        policy in policy_strategy(),
        single in any::<bool>(),
        stop_fwd in any::<bool>(),
        shortcut in any::<bool>(),
        elected in 0usize..4,
    ) {
        let cfg = LassConfig {
            n,
            m,
            elected: elected % n,
            policy,
            loan,
            opt_single_resource: single,
            opt_stop_forwarding: stop_fwd,
            opt_shortcut_on_counter: shortcut,
        };
        let mut net = VirtualNet::new(cfg.build_nodes(), m);
        let mut rng = StdRng::seed_from_u64(seed);
        let rounds = 4;
        let ex = ExerciseCfg {
            rounds_per_node: rounds,
            max_req_size: m.min(4),
            m,
            hold_steps: 2,
            active_nodes: None,
            step_cap: 2_000_000,
        };
        let rep = run_random_workload(&mut net, &ex, &mut rng);
        prop_assert_eq!(rep.cs_completed as usize, rounds * n);

        // Token uniqueness at quiescence (lemmas 1-3 of the proof annex).
        prop_assert_eq!(net.in_flight(), 0);
        let mut union = ResourceSet::new();
        let mut total = 0usize;
        for i in 0..n {
            let owned = net.node(i).owned();
            prop_assert!(union.is_disjoint(&owned));
            union.union_with(&owned);
            total += owned.len();
        }
        prop_assert_eq!(total, m);

        // Nobody is left lending or borrowing.
        for i in 0..n {
            prop_assert!(net.node(i).lent().is_empty());
            let node: &Lass = net.node(i);
            for r in node.owned().iter() {
                prop_assert_eq!(node.token(r).lender, None);
            }
        }
    }

    /// `/` (definition 1) is a strict total order for any marks ≥ 0.
    #[test]
    fn precedes_total_order(
        marks in proptest::collection::vec((0.0f64..1e12, 0usize..64), 3..12)
    ) {
        // Irreflexivity.
        for &(m, s) in &marks {
            prop_assert!(!precedes(m, s, m, s));
        }
        // Trichotomy: exactly one of a/b, b/a, a==b.
        for &(ma, a) in &marks {
            for &(mb, b) in &marks {
                let eq = ma == mb && a == b;
                let ab = precedes(ma, a, mb, b);
                let ba = precedes(mb, b, ma, a);
                prop_assert_eq!(1, eq as u8 + ab as u8 + ba as u8);
            }
        }
        // Transitivity.
        for &(ma, a) in &marks {
            for &(mb, b) in &marks {
                for &(mc, c) in &marks {
                    if precedes(ma, a, mb, b) && precedes(mb, b, mc, c) {
                        prop_assert!(precedes(ma, a, mc, c));
                    }
                }
            }
        }
    }

    /// Counter values handed out for one resource are unique across the
    /// whole run: requests are never confused (the heart of §3.3.1).
    #[test]
    fn counter_values_grow_monotonically(seed in any::<u64>()) {
        let cfg = LassConfig::without_loan(4, 3);
        let mut net = VirtualNet::new(cfg.build_nodes(), 3);
        let mut rng = StdRng::seed_from_u64(seed);
        let ex = ExerciseCfg {
            rounds_per_node: 5,
            max_req_size: 3,
            m: 3,
            hold_steps: 2,
            active_nodes: None,
            step_cap: 2_000_000,
        };
        run_random_workload(&mut net, &ex, &mut rng);
        // At quiescence the owner's counter is authoritative: it equals
        // 1 + (number of values handed out), and every handed-out value was
        // unique by construction (only the holder increments).  We verify
        // the owner's counter is strictly the max over all snapshots.
        for r in 0..3 {
            let owner_counter = (0..4)
                .find(|&i| net.node(i).owned().contains(r))
                .map(|i| net.node(i).token(r).counter)
                .expect("token exists");
            for i in 0..4 {
                prop_assert!(net.node(i).token(r).counter <= owner_counter);
            }
        }
    }
}
