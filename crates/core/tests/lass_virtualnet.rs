//! Randomized-interleaving safety and liveness tests for LASS.
//!
//! These run the full protocol over `VirtualNet`, which delivers messages in
//! a seeded random order (per-link FIFO), panics on any mutual-exclusion
//! violation and detects deadlocks.  Together with the step cap they check
//! the paper's three properties: safety (theorem 1), liveness (theorem 3)
//! and the concurrency property (non-conflicting requests overlap).

use mra_core::{Lass, LassConfig, SchedulingPolicy};
use mra_protocol::testkit::{run_random_workload, ExerciseCfg, VirtualNet};
use mra_types::ResourceSet;
use rand::rngs::StdRng;
use rand::SeedableRng;

fn net_for(cfg: LassConfig) -> VirtualNet<Lass> {
    VirtualNet::new(cfg.build_nodes(), cfg.m)
}

fn exercise(cfg: LassConfig, seed: u64, rounds: usize, phi: usize) -> VirtualNet<Lass> {
    let mut net = net_for(cfg);
    let mut rng = StdRng::seed_from_u64(seed);
    let ex = ExerciseCfg {
        rounds_per_node: rounds,
        max_req_size: phi,
        m: cfg.m,
        hold_steps: 3,
        active_nodes: None,
        step_cap: 3_000_000,
    };
    let rep = run_random_workload(&mut net, &ex, &mut rng);
    assert_eq!(rep.cs_completed as usize, rounds * cfg.n, "seed {seed}");
    net
}

/// After quiescence every token must exist exactly once (lemmas 1–3).
fn assert_token_uniqueness(net: &VirtualNet<Lass>, n: usize, m: usize) {
    assert_eq!(net.in_flight(), 0);
    let mut union = ResourceSet::new();
    let mut total = 0;
    for i in 0..n {
        let owned = net.node(i).owned();
        assert!(
            union.is_disjoint(&owned),
            "resource owned twice: {:?} vs node {i} {:?}",
            union,
            owned
        );
        union.union_with(&owned);
        total += owned.len();
    }
    assert_eq!(total, m, "token lost or duplicated");
    assert_eq!(union, ResourceSet::full(m));
}

#[test]
fn without_loan_random_runs_are_safe_and_live() {
    for seed in 0..15 {
        let cfg = LassConfig::without_loan(5, 8);
        let net = exercise(cfg, seed, 6, 4);
        assert_token_uniqueness(&net, 5, 8);
    }
}

#[test]
fn with_loan_random_runs_are_safe_and_live() {
    for seed in 0..15 {
        let cfg = LassConfig::with_loan(5, 8);
        let net = exercise(cfg, 1000 + seed, 6, 4);
        assert_token_uniqueness(&net, 5, 8);
    }
}

#[test]
fn large_loan_threshold_is_safe() {
    for seed in 0..6 {
        let mut cfg = LassConfig::with_loan(4, 6);
        cfg.loan = Some(3);
        let net = exercise(cfg, 2000 + seed, 5, 4);
        assert_token_uniqueness(&net, 4, 6);
    }
}

#[test]
fn optimizations_off_still_correct() {
    for seed in 0..6 {
        let mut cfg = LassConfig::without_loan(4, 6);
        cfg.opt_single_resource = false;
        cfg.opt_stop_forwarding = false;
        cfg.opt_shortcut_on_counter = false;
        let net = exercise(cfg, 3000 + seed, 5, 3);
        assert_token_uniqueness(&net, 4, 6);
    }
}

#[test]
fn each_optimization_alone_is_correct() {
    for (bit, seed0) in [(0, 4000u64), (1, 5000), (2, 6000)] {
        for seed in 0..4 {
            let mut cfg = LassConfig::with_loan(4, 6);
            cfg.opt_single_resource = bit == 0;
            cfg.opt_stop_forwarding = bit == 1;
            cfg.opt_shortcut_on_counter = bit == 2;
            let net = exercise(cfg, seed0 + seed, 4, 3);
            assert_token_uniqueness(&net, 4, 6);
        }
    }
}

#[test]
fn all_policies_are_safe_and_live() {
    for (pi, policy) in SchedulingPolicy::all().into_iter().enumerate() {
        for seed in 0..4 {
            let mut cfg = LassConfig::with_loan(4, 6);
            cfg.policy = policy;
            let net = exercise(cfg, 7000 + 10 * pi as u64 + seed, 4, 3);
            assert_token_uniqueness(&net, 4, 6);
        }
    }
}

#[test]
fn full_contention_single_resource() {
    // Everyone fights for the same resource: degenerates to mutual
    // exclusion; exercises the single-resource optimization heavily.
    for seed in 0..8 {
        let cfg = LassConfig::with_loan(6, 1);
        let net = exercise(cfg, 8000 + seed, 6, 1);
        assert_token_uniqueness(&net, 6, 1);
    }
}

#[test]
fn whole_set_requests_serialize() {
    // Every request asks for all resources: zero concurrency possible,
    // heavy queue churn.
    for seed in 0..6 {
        let cfg = LassConfig::with_loan(4, 5);
        let mut net = net_for(cfg);
        let mut rng = StdRng::seed_from_u64(9000 + seed);
        let ex = ExerciseCfg {
            rounds_per_node: 5,
            max_req_size: 5,
            m: 5,
            hold_steps: 2,
            active_nodes: None,
            step_cap: 3_000_000,
        };
        let rep = run_random_workload(&mut net, &ex, &mut rng);
        assert_eq!(rep.cs_completed, 20);
        assert_token_uniqueness(&net, 4, 5);
    }
}

#[test]
fn concurrency_property_is_exploited() {
    // Plenty of resources, small requests: disjoint requests must overlap
    // at least sometimes across seeds.
    let mut saw_overlap = false;
    for seed in 0..10 {
        let cfg = LassConfig::without_loan(6, 24);
        let mut net = net_for(cfg);
        let mut rng = StdRng::seed_from_u64(10_000 + seed);
        let ex = ExerciseCfg {
            rounds_per_node: 5,
            max_req_size: 2,
            m: 24,
            hold_steps: 6,
            active_nodes: None,
            step_cap: 3_000_000,
        };
        let rep = run_random_workload(&mut net, &ex, &mut rng);
        if rep.max_concurrency >= 2 {
            saw_overlap = true;
        }
    }
    assert!(
        saw_overlap,
        "non-conflicting requests never overlapped — concurrency property broken"
    );
}

#[test]
fn bigger_system_stress() {
    // One heavier configuration closer to the paper's shape (scaled down).
    let cfg = LassConfig::with_loan(8, 16);
    let net = exercise(cfg, 424242, 8, 6);
    assert_token_uniqueness(&net, 8, 16);
}

#[test]
fn deterministic_given_seed() {
    let run = |seed: u64| -> (u64, u64) {
        let cfg = LassConfig::with_loan(5, 8);
        let mut net = net_for(cfg);
        let mut rng = StdRng::seed_from_u64(seed);
        let ex = ExerciseCfg {
            rounds_per_node: 5,
            max_req_size: 4,
            m: 8,
            hold_steps: 3,
            active_nodes: None,
            step_cap: 3_000_000,
        };
        let rep = run_random_workload(&mut net, &ex, &mut rng);
        (rep.actions, rep.delivered)
    };
    assert_eq!(run(77), run(77), "same seed must give identical runs");
}
