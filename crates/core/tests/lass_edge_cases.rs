//! Scripted message-level edge cases of the LASS protocol: behaviors that
//! randomized runs hit rarely but that the paper's §4.2.1 (message
//! problems), §4.6 (optimizations) and the deviation fixes rely on.

use mra_core::{Lass, LassConfig, LassMsg, LoanReq, Request, ResReq};
use mra_protocol::{Allocator, Ctx, ProcState, WireMsg};
use mra_types::{NodeSet, ResourceSet};

fn ctxs(n: usize) -> Vec<Ctx<LassMsg>> {
    (0..n).map(|i| Ctx::new(i, n)).collect()
}

/// Deliver every outgoing message of `from`'s context, returning how many
/// were dispatched.
fn pump(nodes: &mut [Lass], ctxs: &mut [Ctx<LassMsg>], from: usize) -> usize {
    let total = ctxs.len();
    let out = ctxs[from].take_outbox();
    let n = out.len();
    for (to, msg) in out {
        let mut ctx = std::mem::replace(&mut ctxs[to], Ctx::new(to, total));
        nodes[to].on_message(&mut ctx, from, msg);
        ctxs[to] = ctx;
    }
    n
}

#[test]
fn duplicate_res_request_is_queued_once() {
    let cfg = LassConfig::without_loan(3, 2);
    let mut nodes = cfg.build_nodes();
    let mut c = ctxs(3);
    // Node 0 holds everything and uses resource 0.
    nodes[0].request(&mut c[0], ResourceSet::singleton(0));
    assert!(c[0].take_granted());
    // The same ReqRes arrives twice (e.g. once forwarded, once replayed
    // from a pending history).
    let rr = Request::Res(ResReq {
        r: 0,
        sinit: 1,
        id: 1,
        mark: 4.0,
    });
    for _ in 0..2 {
        nodes[0].on_message(
            &mut c[0],
            1,
            LassMsg::Requests {
                visited: NodeSet::singleton(1),
                reqs: vec![rr.clone()],
            },
        );
    }
    assert_eq!(nodes[0].token(0).w_queue.len(), 1, "deduplicated");
}

#[test]
fn obsolete_loan_request_is_dropped() {
    let cfg = LassConfig::with_loan(3, 2);
    let mut nodes = cfg.build_nodes();
    let mut c = ctxs(3);
    // Mark node 1's request id 3 as already satisfied in token 0.
    nodes[0].request(&mut c[0], ResourceSet::singleton(0));
    assert!(c[0].take_granted());
    nodes[0].release(&mut c[0]);
    // Inject: pretend node 1 finished CS id 3 (future ids must still work).
    let stale = Request::Loan(LoanReq {
        r: 0,
        sinit: 1,
        id: 0, // ids start at 1, so 0 is trivially obsolete (≤ lastCS = 0)
        mark: 1.0,
        missing: ResourceSet::singleton(0),
    });
    nodes[0].on_message(
        &mut c[0],
        1,
        LassMsg::Requests {
            visited: NodeSet::singleton(1),
            reqs: vec![stale],
        },
    );
    assert!(c[0].take_outbox().is_empty(), "no token leaves for a stale loan");
    assert!(nodes[0].owned().contains(0));
}

#[test]
fn counter_for_stale_request_id_is_ignored() {
    // [deviation 1] regression: a Counter that does not match the current
    // request id must not touch MyVector.
    let cfg = LassConfig::without_loan(2, 2);
    let mut nodes = cfg.build_nodes();
    let mut c = ctxs(2);
    nodes[1].request(&mut c[1], [0, 1].into_iter().collect());
    let _ = c[1].take_outbox(); // drop the ReqCnt batch: we inject manually
    // A stale counter (id 0 ≠ current id 1):
    nodes[1].on_message(
        &mut c[1],
        0,
        LassMsg::Counters(vec![mra_core::CounterVal { r: 0, val: 9, id: 0 }]),
    );
    assert_eq!(nodes[1].vector()[0], 0, "stale counter ignored");
    assert_eq!(nodes[1].state(), ProcState::WaitS);
    // The genuine counters (id 1) complete the phase.
    nodes[1].on_message(
        &mut c[1],
        0,
        LassMsg::Counters(vec![
            mra_core::CounterVal { r: 0, val: 3, id: 1 },
            mra_core::CounterVal { r: 1, val: 4, id: 1 },
        ]),
    );
    assert_eq!(nodes[1].vector(), &[3, 4]);
    assert_eq!(nodes[1].state(), ProcState::WaitCS);
    assert_eq!(nodes[1].mark(), 3.5, "avg of non-null counters");
}

#[test]
fn forwarding_stops_at_visited_nodes() {
    // §4.2.1: a request whose next hop is already in the visited set is
    // not forwarded (it survives in pending histories instead).
    let cfg = LassConfig::without_loan(3, 1);
    let mut nodes = cfg.build_nodes();
    let mut c = ctxs(3);
    // Move the token 0 → 2 so node 0 has tok_dir = 2... easiest: node 2
    // requests it.
    nodes[2].request(&mut c[2], ResourceSet::singleton(0));
    pump(&mut nodes, &mut c, 2);
    pump(&mut nodes, &mut c, 0); // token to 2
    assert!(c[2].take_granted());
    // Now node 1 sends node 0 a ReqRes whose visited set already contains
    // node 2 (node 0's father): node 0 must park it, not forward.
    let rr = Request::Res(ResReq {
        r: 0,
        sinit: 1,
        id: 1,
        mark: 2.0,
    });
    let visited: NodeSet = [1usize, 2usize].into_iter().collect();
    nodes[0].on_message(
        &mut c[0],
        1,
        LassMsg::Requests {
            visited,
            reqs: vec![rr],
        },
    );
    assert!(
        c[0].take_outbox().is_empty(),
        "request must not be forwarded into its own visited set"
    );
}

#[test]
fn yield_to_higher_priority_then_win_back() {
    // Dynamic scheduling in action: node 0 (waitCS, mark from average
    // counters) receives a ReqRes with a *smaller* mark and must yield,
    // queueing itself in the departing token.
    let cfg = LassConfig::without_loan(3, 3);
    let mut nodes = cfg.build_nodes();
    let mut c = ctxs(3);
    // Ship token 2 to node 2 so node 0's request for {0, 2} must wait.
    nodes[2].request(&mut c[2], ResourceSet::singleton(2));
    pump(&mut nodes, &mut c, 2);
    pump(&mut nodes, &mut c, 0);
    assert!(c[2].take_granted());
    // Node 0: requests {0, 2}; takes counter of 0 locally, asks 2's.
    nodes[0].request(&mut c[0], [0, 2].into_iter().collect());
    pump(&mut nodes, &mut c, 0); // ReqCnt to node 2
    pump(&mut nodes, &mut c, 2); // Counter back
    assert_eq!(nodes[0].state(), ProcState::WaitCS);
    pump(&mut nodes, &mut c, 0); // deliver node 0's ReqRes for r2 to node 2
    assert!(nodes[0].owned().contains(0));
    let my_mark = nodes[0].mark();
    // A strictly higher-priority request for resource 0 arrives.
    let urgent = Request::Res(ResReq {
        r: 0,
        sinit: 1,
        id: 1,
        mark: my_mark - 1.0,
    });
    nodes[0].on_message(
        &mut c[0],
        1,
        LassMsg::Requests {
            visited: NodeSet::singleton(1),
            reqs: vec![urgent],
        },
    );
    // Node 0 yielded token 0 and left its own request in the queue.
    assert!(!nodes[0].owned().contains(0));
    let out = c[0].take_outbox();
    assert_eq!(out.len(), 1);
    match &out[0].1 {
        LassMsg::Tokens(toks) => {
            assert_eq!(toks.len(), 1);
            assert_eq!(toks[0].w_queue.len(), 1);
            assert_eq!(toks[0].w_queue[0].sinit, 0, "yielder queued itself");
        }
        other => panic!("expected token, got {other:?}"),
    }
    assert_eq!(nodes[0].stats.yields, 1);
}

#[test]
fn aggregation_batches_same_destination() {
    // §4.2.2: both ReqCnt of one request travel in a single wire message.
    let cfg = LassConfig::without_loan(2, 4);
    let mut nodes = cfg.build_nodes();
    let mut c = ctxs(2);
    nodes[1].request(&mut c[1], [0, 1, 2, 3].into_iter().collect());
    let out = c[1].take_outbox();
    assert_eq!(out.len(), 1, "four ReqCnt → one message");
    match &out[0].1 {
        LassMsg::Requests { reqs, .. } => assert_eq!(reqs.len(), 4),
        other => panic!("unexpected {other:?}"),
    }
    assert!(out[0].1.weight() > 4);
}

#[test]
fn idle_token_arrival_does_not_grant() {
    // [deviation 4] regression: a token arriving while Idle must never
    // trigger a critical-section entry.
    let cfg = LassConfig::with_loan(2, 2);
    let mut nodes = cfg.build_nodes();
    let mut c = ctxs(2);
    // Construct a bare token for resource 0 and deliver it to the idle
    // node 1 (as a stale grant would).
    let token = nodes[0].token(0).clone();
    // Make node 0 lose ownership so the system stays consistent.
    nodes[1].on_message(&mut c[1], 0, LassMsg::Tokens(vec![token]));
    assert!(!c[1].take_granted(), "no CS entry while idle");
    assert_eq!(nodes[1].state(), ProcState::Idle);
    assert!(nodes[1].owned().contains(0), "token absorbed for later");
}
