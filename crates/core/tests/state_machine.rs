//! The process state machine of the paper's **Figure 2**:
//!
//! ```text
//!          Request_CS                 CntNeeded = ∅
//!   Idle ─────────────► waitS ──────────────────────► waitCS
//!     ▲                   │  (all required owned)        │
//!     │                   └──────────────► inCS ◄────────┘
//!     └────────────────── Release_CS ───────┘   TRequired ⊆ TOwned
//! ```
//!
//! Each transition is exercised explicitly, including the two shortcuts:
//! `Idle → inCS` via a fully local request (waitS is crossed
//! instantaneously) and `Idle → waitCS` via the single-resource
//! optimization (§4.6.1, which skips the counter phase).

use mra_core::{LassConfig, LassMsg};
use mra_protocol::{Allocator, Ctx, ProcState};
use mra_types::ResourceSet;

#[test]
fn idle_to_waits_to_waitcs_to_incs_to_idle() {
    let cfg = LassConfig::without_loan(2, 2);
    let mut nodes = cfg.build_nodes();
    let mut c0: Ctx<LassMsg> = Ctx::new(0, 2);
    let mut c1: Ctx<LassMsg> = Ctx::new(1, 2);

    assert_eq!(nodes[1].state(), ProcState::Idle);

    // Request_CS: Idle → waitS (counters must come from node 0).
    nodes[1].request(&mut c1, [0, 1].into_iter().collect());
    assert_eq!(nodes[1].state(), ProcState::WaitS);

    // Make node 0 require both resources so it answers with counters
    // instead of shipping tokens outright.
    nodes[0].request(&mut c0, [0, 1].into_iter().collect());
    assert_eq!(nodes[0].state(), ProcState::InCS, "local request: Idle → inCS");

    // Deliver node 1's ReqCnt batch; counters come back: waitS → waitCS.
    for (to, m) in c1.take_outbox() {
        assert_eq!(to, 0);
        nodes[0].on_message(&mut c0, 1, m);
    }
    for (to, m) in c0.take_outbox() {
        assert_eq!(to, 1);
        nodes[1].on_message(&mut c1, 0, m);
    }
    assert_eq!(nodes[1].state(), ProcState::WaitCS);

    // Node 0 releases: inCS → Idle; tokens flow and node 1 enters CS.
    nodes[0].release(&mut c0);
    assert_eq!(nodes[0].state(), ProcState::Idle);
    // Deliver node 1's ReqRes batch first (queued at node 0 before release
    // they were already sent — the release sent tokens directly).
    for (to, m) in c1.take_outbox() {
        if to == 0 {
            nodes[0].on_message(&mut c0, 1, m);
        }
    }
    for (to, m) in c0.take_outbox() {
        if to == 1 {
            nodes[1].on_message(&mut c1, 0, m);
        }
    }
    assert_eq!(nodes[1].state(), ProcState::InCS, "waitCS → inCS");
    assert!(c1.take_granted());

    nodes[1].release(&mut c1);
    assert_eq!(nodes[1].state(), ProcState::Idle, "inCS → Idle");
}

#[test]
fn single_resource_shortcut_skips_waits() {
    let cfg = LassConfig::with_loan(2, 2);
    let mut nodes = cfg.build_nodes();
    let mut c1: Ctx<LassMsg> = Ctx::new(1, 2);
    nodes[1].request(&mut c1, ResourceSet::singleton(0));
    assert_eq!(
        nodes[1].state(),
        ProcState::WaitCS,
        "§4.6.1: Idle → waitCS directly"
    );
}

#[test]
fn requesting_outside_idle_panics() {
    let cfg = LassConfig::without_loan(2, 2);
    let mut nodes = cfg.build_nodes();
    let mut c0: Ctx<LassMsg> = Ctx::new(0, 2);
    nodes[0].request(&mut c0, ResourceSet::singleton(0));
    assert!(c0.take_granted());
    let boom = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
        nodes[0].request(&mut c0, ResourceSet::singleton(1));
    }));
    assert!(boom.is_err(), "hypothesis 4: one outstanding request");
}

#[test]
fn releasing_outside_incs_panics() {
    let cfg = LassConfig::without_loan(2, 2);
    let mut nodes = cfg.build_nodes();
    let mut c0: Ctx<LassMsg> = Ctx::new(0, 2);
    let boom = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
        nodes[0].release(&mut c0);
    }));
    assert!(boom.is_err());
}
