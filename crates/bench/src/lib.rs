//! Shared helpers for the benchmark harnesses.
//!
//! Every figure of the paper has two entry points:
//!
//! * a **binary** (`cargo run -p mra-bench --release --bin figN`) that runs
//!   the full sweep, prints the paper-style table and writes CSV to
//!   `target/experiments/`;
//! * a **bench target** (`cargo bench -p mra-bench --bench ...`) that
//!   prints the same table once and then lets Criterion measure a
//!   representative configuration (so `cargo bench` regenerates every
//!   figure and reports stable timings).
//!
//! Set `MRA_FAST=1` or `MRA_MEASURE_SECS=<s>` to shrink simulation windows.

use std::path::PathBuf;

/// Directory where experiment CSVs are written.
pub fn experiments_dir() -> PathBuf {
    // target/ relative to the workspace root regardless of cwd.
    let target = std::env::var("CARGO_TARGET_DIR").unwrap_or_else(|_| "target".into());
    PathBuf::from(target).join("experiments")
}

/// Write a table as CSV under [`experiments_dir`], reporting the path.
pub fn save_csv(table: &mra_workloads::Table, name: &str) {
    let path = experiments_dir().join(name);
    match table.write_csv(&path) {
        Ok(()) => println!("[csv] wrote {}", path.display()),
        Err(e) => eprintln!("[csv] FAILED to write {}: {e}", path.display()),
    }
}
