//! Shared helpers for the benchmark harnesses.
//!
//! Every figure of the paper has two entry points:
//!
//! * a **binary** (`cargo run -p mra-bench --release --bin figN`) that runs
//!   the full sweep, prints the paper-style table and writes CSV to
//!   `target/experiments/`;
//! * a **bench target** (`cargo bench -p mra-bench --bench ...`) that
//!   prints the same table once and then lets Criterion measure a
//!   representative configuration (so `cargo bench` regenerates every
//!   figure and reports stable timings).
//!
//! Set `MRA_FAST=1` or `MRA_MEASURE_SECS=<s>` to shrink simulation windows.

use std::path::PathBuf;

/// Directory where experiment CSVs are written.
pub fn experiments_dir() -> PathBuf {
    // target/ relative to the workspace root regardless of cwd.
    let target = std::env::var("CARGO_TARGET_DIR").unwrap_or_else(|_| "target".into());
    PathBuf::from(target).join("experiments")
}

/// Write a table as CSV under [`experiments_dir`], reporting the path.
pub fn save_csv(table: &mra_workloads::Table, name: &str) {
    let path = experiments_dir().join(name);
    match table.write_csv(&path) {
        Ok(()) => println!("[csv] wrote {}", path.display()),
        Err(e) => eprintln!("[csv] FAILED to write {}: {e}", path.display()),
    }
}

/// The workspace root (two levels above this crate's manifest) — where the
/// tracked `BENCH_*.json` perf-trajectory files live.
pub fn repo_root() -> PathBuf {
    PathBuf::from(env!("CARGO_MANIFEST_DIR")).join("..").join("..")
}

/// One engine-throughput measurement of the `bench_engine` target.
#[derive(Clone, Debug)]
pub struct EngineBenchEntry {
    /// Scenario label (shape + φ + load), e.g. `lass_loan_32n80m_phi16_high`.
    pub scenario: String,
    /// Algorithm name as reported by the run.
    pub algo: String,
    /// Simulator events processed.
    pub events: u64,
    /// Wall-clock nanoseconds of the run — the exact number the rate is
    /// derived from (`events_per_sec = events / wall_ns × 1e9`), so the
    /// tracked file is self-consistent to the nanosecond.
    pub wall_ns: u64,
    /// Wall-clock seconds of the run (redundant with `wall_ns`; kept for
    /// human eyes).
    pub wall_secs: f64,
    /// The tracked metric: events per wall-clock second.
    pub events_per_sec: f64,
    /// Critical sections completed (sanity that the run did real work).
    pub cs_completed: u64,
    /// Engine shards the run executed on (1 = sequential path).
    pub shards: usize,
    /// Events processed per shard; sums to `events`.
    pub shard_events: Vec<u64>,
    /// Wall-clock cost of armed ring tracing (`MRA_TRACE=ring`) relative
    /// to the disarmed run, in percent: `100 × (armed − disarmed) /
    /// disarmed`.  Negative values are measurement noise.  `NaN` (written
    /// as `0.0`, like every non-finite value in this file) on entries
    /// where the overhead pass was skipped — the scale-out grid runs are
    /// minutes each and are not re-run armed.
    pub trace_overhead_pct: f64,
}

/// One transport-throughput measurement of the `bench_net` target: a
/// whole loopback cluster run on one backend, with the counters every
/// node's transport folded into the run report.
#[derive(Clone, Debug)]
pub struct NetBenchEntry {
    /// Measurement label, e.g. `lass_loan_8n_reactor`.
    pub scenario: String,
    /// Transport backend (`reactor` or `threaded`).
    pub backend: String,
    /// Algorithm name as reported by the run.
    pub algo: String,
    /// Cluster size (nodes).
    pub nodes: usize,
    /// First-transmission frames sent across the cluster.
    pub frames_out: u64,
    /// Everything that hit the wire: first transmissions + retransmits +
    /// standalone acks.
    pub wire_frames: u64,
    /// `write(2)` calls across the cluster.
    pub write_calls: u64,
    /// `read(2)` calls across the cluster.
    pub read_calls: u64,
    /// Wall-clock nanoseconds of the cluster run.
    pub wall_ns: u64,
    /// Process CPU nanoseconds (user + system) consumed by the run — the
    /// denominator of the headline rate, so "per core" means per core
    /// actually burned, not per core present.
    pub cpu_ns: u64,
    /// The headline metric: wire frames moved per CPU-second.
    pub frames_per_sec_per_core: f64,
    /// The coalescing metric: read+write syscalls per wire frame.  Below
    /// 1.0 means batching beats one-syscall-per-frame.
    pub syscalls_per_frame: f64,
    /// Wire frames per `write(2)` call (write-side coalescing factor).
    pub frames_per_write: f64,
    /// Critical sections completed (sanity that the run did real work).
    pub cs_completed: u64,
}

/// One serving-layer measurement of the `bench_serve` target: one offered
/// load level on one algorithm, with goodput and arrival-keyed tail
/// latency.
#[derive(Clone, Debug)]
pub struct ServeBenchEntry {
    /// Measurement label, e.g. `lass_loan_400hz`.
    pub scenario: String,
    /// Algorithm name as reported by the run.
    pub algo: String,
    /// Nodes issuing open-loop arrivals.
    pub nodes: usize,
    /// Fleet-wide offered load, requests/second.
    pub offered_hz: f64,
    /// Fleet-wide goodput (fully served requests / measurement window).
    pub goodput_hz: f64,
    /// Arrivals generated / admitted / shed (conservation check inputs).
    pub offered: u64,
    pub admitted: u64,
    pub shed: u64,
    /// Engine CS batches issued and requests folded into them — their
    /// ratio is the batching factor.
    pub batches: u64,
    pub batched_reqs: u64,
    /// Arrival→grant latency percentiles, milliseconds (the
    /// coordinated-omission-free serving metric).
    pub p50_ms: f64,
    pub p95_ms: f64,
    pub p99_ms: f64,
    pub p999_ms: f64,
    /// Issue-keyed p99 for the same run: the gap to `p99_ms` is the
    /// coordinated-omission bias the serving metrics remove.
    pub wait_p99_ms: f64,
    /// Wall-clock nanoseconds of the run.
    pub wall_ns: u64,
}

/// Serialize `entries` as `BENCH_serve.json` at the repo root (the
/// tracked serving-layer perf-trajectory data point) and return the path
/// written.  Same hand-rolled flat JSON as [`write_bench_engine_json`].
pub fn write_bench_serve_json(
    entries: &[ServeBenchEntry],
    mode: &str,
) -> std::io::Result<PathBuf> {
    fn esc(s: &str) -> String {
        s.replace('\\', "\\\\").replace('"', "\\\"")
    }
    fn num(v: f64, decimals: usize) -> String {
        if v.is_finite() {
            format!("{v:.decimals$}")
        } else {
            "0.0".into()
        }
    }
    let mut out = String::new();
    out.push_str("{\n");
    out.push_str("  \"bench\": \"bench_serve\",\n");
    out.push_str("  \"unit\": \"goodput_hz\",\n");
    out.push_str(&format!("  \"mode\": \"{}\",\n", esc(mode)));
    out.push_str("  \"results\": [\n");
    for (i, e) in entries.iter().enumerate() {
        out.push_str(&format!(
            "    {{\"scenario\": \"{}\", \"algo\": \"{}\", \"nodes\": {}, \
             \"offered_hz\": {}, \"goodput_hz\": {}, \"offered\": {}, \
             \"admitted\": {}, \"shed\": {}, \"batches\": {}, \
             \"batched_reqs\": {}, \"p50_ms\": {}, \"p95_ms\": {}, \
             \"p99_ms\": {}, \"p999_ms\": {}, \"wait_p99_ms\": {}, \
             \"wall_ns\": {}}}{}\n",
            esc(&e.scenario),
            esc(&e.algo),
            e.nodes,
            num(e.offered_hz, 1),
            num(e.goodput_hz, 1),
            e.offered,
            e.admitted,
            e.shed,
            e.batches,
            e.batched_reqs,
            num(e.p50_ms, 3),
            num(e.p95_ms, 3),
            num(e.p99_ms, 3),
            num(e.p999_ms, 3),
            num(e.wait_p99_ms, 3),
            e.wall_ns,
            if i + 1 < entries.len() { "," } else { "" },
        ));
    }
    out.push_str("  ]\n}\n");
    let path = repo_root().join("BENCH_serve.json");
    std::fs::write(&path, out)?;
    Ok(path)
}

/// Serialize `entries` as `BENCH_net.json` at the repo root (the tracked
/// transport perf-trajectory data point) and return the path written.
/// Same hand-rolled flat JSON as [`write_bench_engine_json`].
pub fn write_bench_net_json(entries: &[NetBenchEntry], mode: &str) -> std::io::Result<PathBuf> {
    fn esc(s: &str) -> String {
        s.replace('\\', "\\\\").replace('"', "\\\"")
    }
    fn num(v: f64, decimals: usize) -> String {
        if v.is_finite() {
            format!("{v:.decimals$}")
        } else {
            "0.0".into()
        }
    }
    let mut out = String::new();
    out.push_str("{\n");
    out.push_str("  \"bench\": \"bench_net\",\n");
    out.push_str("  \"unit\": \"frames_per_sec_per_core\",\n");
    out.push_str(&format!("  \"mode\": \"{}\",\n", esc(mode)));
    out.push_str("  \"results\": [\n");
    for (i, e) in entries.iter().enumerate() {
        out.push_str(&format!(
            "    {{\"scenario\": \"{}\", \"backend\": \"{}\", \"algo\": \"{}\", \
             \"nodes\": {}, \"frames_out\": {}, \"wire_frames\": {}, \
             \"write_calls\": {}, \"read_calls\": {}, \"wall_ns\": {}, \
             \"cpu_ns\": {}, \"frames_per_sec_per_core\": {}, \
             \"syscalls_per_frame\": {}, \"frames_per_write\": {}, \
             \"cs_completed\": {}}}{}\n",
            esc(&e.scenario),
            esc(&e.backend),
            esc(&e.algo),
            e.nodes,
            e.frames_out,
            e.wire_frames,
            e.write_calls,
            e.read_calls,
            e.wall_ns,
            e.cpu_ns,
            num(e.frames_per_sec_per_core, 1),
            num(e.syscalls_per_frame, 4),
            num(e.frames_per_write, 4),
            e.cs_completed,
            if i + 1 < entries.len() { "," } else { "" },
        ));
    }
    out.push_str("  ]\n}\n");
    let path = repo_root().join("BENCH_net.json");
    std::fs::write(&path, out)?;
    Ok(path)
}

/// Serialize `entries` as `BENCH_engine.json` at the repo root (the
/// tracked perf-trajectory data point) and return the path written.
///
/// Hand-rolled JSON: the offline build environment has no serde, and the
/// schema is flat.  Labels are ASCII identifiers, so escaping only needs
/// quotes and backslashes.
pub fn write_bench_engine_json(
    entries: &[EngineBenchEntry],
    mode: &str,
) -> std::io::Result<PathBuf> {
    fn esc(s: &str) -> String {
        s.replace('\\', "\\\\").replace('"', "\\\"")
    }
    fn num(v: f64, decimals: usize) -> String {
        // JSON has no NaN/Infinity; clamp degenerate measurements to 0.
        if v.is_finite() {
            format!("{v:.decimals$}")
        } else {
            "0.0".into()
        }
    }
    let mut out = String::new();
    out.push_str("{\n");
    out.push_str("  \"bench\": \"bench_engine\",\n");
    out.push_str("  \"unit\": \"events_per_sec\",\n");
    out.push_str(&format!("  \"mode\": \"{}\",\n", esc(mode)));
    out.push_str("  \"results\": [\n");
    for (i, e) in entries.iter().enumerate() {
        let shard_events = e
            .shard_events
            .iter()
            .map(|v| v.to_string())
            .collect::<Vec<_>>()
            .join(", ");
        out.push_str(&format!(
            "    {{\"scenario\": \"{}\", \"algo\": \"{}\", \"events\": {}, \
             \"wall_ns\": {}, \"wall_secs\": {}, \"events_per_sec\": {}, \
             \"cs_completed\": {}, \"shards\": {}, \"shard_events\": [{}], \
             \"trace_overhead_pct\": {}}}{}\n",
            esc(&e.scenario),
            esc(&e.algo),
            e.events,
            e.wall_ns,
            num(e.wall_secs, 4),
            num(e.events_per_sec, 1),
            e.cs_completed,
            e.shards,
            shard_events,
            num(e.trace_overhead_pct, 2),
            if i + 1 < entries.len() { "," } else { "" },
        ));
    }
    out.push_str("  ]\n}\n");
    let path = repo_root().join("BENCH_engine.json");
    std::fs::write(&path, out)?;
    Ok(path)
}
