//! `mra-trace` — offline trace analyzer for the observability layer.
//!
//! Three modes:
//!
//! * `mra-trace FILE.jsonl` — parse a JSONL trace (written via
//!   `MRA_TRACE_FILE`), run the causal-consistency checks and print the
//!   per-message-type cost breakdown.
//! * `mra-trace --check FILE.jsonl` — same checks, CI-friendly: exit 1 on
//!   any causal violation (the breakdown still prints).
//! * `mra-trace --reconcile` — run a small traced workload in-process for
//!   every algorithm of the fault matrix on perfect links and verify that
//!   the trace's per-tag delivery counts reconcile **exactly** with the
//!   engine's aggregate `msg_by_kind` collector (both count at delivery).
//!   Exit 1 on any mismatch.  This is the end-to-end proof that the trace
//!   is a faithful account of the run, not a parallel bookkeeping system
//!   that can drift.
//!
//! Checks on ring-truncated traces (`dropped > 0` in the header) skip the
//! positional send-before-recv and conservation passes — the overwritten
//! prefix would make them spuriously fail; Lamport monotonicity and
//! causal-recv still run.

use mra_sim::obs::{check_events, message_breakdown, parse_jsonl};
use mra_workloads::{run, Algorithm, Load, Scenario};
use std::process::ExitCode;

const USAGE: &str = "\
mra-trace: causal-consistency checker and message-cost breakdown

USAGE:
    mra-trace [--check] FILE.jsonl    analyze a trace written via MRA_TRACE_FILE
    mra-trace --reconcile             traced in-process runs, per algorithm:
                                      trace breakdown must equal engine counters

EXIT STATUS:
    0   trace consistent (and reconciled, in --reconcile mode)
    1   causal violations or counter mismatch
    2   usage / parse error
";

fn analyze_file(path: &str, strict: bool) -> ExitCode {
    let text = match std::fs::read_to_string(path) {
        Ok(t) => t,
        Err(e) => {
            eprintln!("mra-trace: cannot read {path}: {e}");
            return ExitCode::from(2);
        }
    };
    let trace = match parse_jsonl(&text) {
        Ok(t) => t,
        Err(e) => {
            eprintln!("mra-trace: {path}: {e}");
            return ExitCode::from(2);
        }
    };
    println!(
        "{path}: algo={} n={} m={} events={} dropped={}",
        trace.algo,
        trace.n,
        trace.m,
        trace.events.len(),
        trace.dropped
    );
    let rep = check_events(&trace.events, trace.dropped);
    if rep.full {
        println!("checks: full (send-before-recv, lamport, causal-recv, conservation)");
    } else {
        println!("checks: partial (ring-truncated trace: lamport + causal-recv only)");
    }
    println!("{}", message_breakdown(&trace.events).render());
    if rep.ok() {
        println!("causal consistency: OK ({} events)", rep.events);
        ExitCode::SUCCESS
    } else {
        println!("causal consistency: {} violation(s)", rep.violations);
        for d in &rep.details {
            println!("  {d}");
        }
        if strict {
            ExitCode::FAILURE
        } else {
            ExitCode::SUCCESS
        }
    }
}

/// Run one traced perfect-link scenario per algorithm and diff the trace's
/// per-tag delivery counts against the engine's `msg_by_kind` aggregate.
fn reconcile() -> ExitCode {
    // Arm unbounded tracing for the child runs of this process; perfect
    // links (no fault plan) so nothing is dropped or retransmitted and the
    // two counters must agree to the message.
    std::env::set_var("MRA_TRACE", "on");
    let mut failures = 0u32;
    for algo in Algorithm::fault_set() {
        let sc = Scenario::builder()
            .nodes(6)
            .resources(12)
            .max_request_size(3)
            .load(Load::High)
            .seed(7)
            .measure_secs(0.3)
            .build();
        let res = run(algo, &sc);
        let trace = match &res.obs.trace {
            Some(t) => t,
            None => {
                println!("{:<28} FAIL: no trace captured", algo.label());
                failures += 1;
                continue;
            }
        };
        let events = trace.to_owned_events();
        let rep = check_events(&events, trace.dropped);
        let b = message_breakdown(&events);
        // The engine counts at delivery, alongside the recv trace hook:
        // equal multisets of (tag, count) — and equal totals — or bust.
        let mut engine: Vec<(String, u64)> =
            res.msg_by_kind.iter().map(|(k, c)| (k.to_string(), *c)).collect();
        engine.sort();
        let traced: Vec<(String, u64)> =
            b.by_tag.iter().map(|(t, c, _)| (t.clone(), *c)).collect();
        let counts_ok = engine == traced && b.recvs == res.msgs_total;
        if counts_ok && rep.ok() {
            println!(
                "{:<28} OK: {} deliveries over {} tags reconcile; {} events causally consistent",
                algo.label(),
                b.recvs,
                b.by_tag.len(),
                rep.events
            );
        } else {
            failures += 1;
            println!("{:<28} FAIL", algo.label());
            if !rep.ok() {
                println!("  {} causal violation(s): {:?}", rep.violations, rep.details);
            }
            if !counts_ok {
                println!("  engine msg_by_kind: {engine:?} (total {})", res.msgs_total);
                println!("  trace  deliveries:  {traced:?} (total {})", b.recvs);
            }
        }
    }
    std::env::remove_var("MRA_TRACE");
    if failures == 0 {
        println!("reconcile: all algorithms consistent");
        ExitCode::SUCCESS
    } else {
        println!("reconcile: {failures} algorithm(s) FAILED");
        ExitCode::FAILURE
    }
}

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let strict = args.iter().any(|a| a == "--check");
    if args.iter().any(|a| a == "--help" || a == "-h") {
        print!("{USAGE}");
        return ExitCode::SUCCESS;
    }
    if args.iter().any(|a| a == "--reconcile") {
        return reconcile();
    }
    let files: Vec<&String> = args.iter().filter(|a| !a.starts_with("--")).collect();
    match files.as_slice() {
        [path] => analyze_file(path, strict),
        _ => {
            eprint!("{USAGE}");
            ExitCode::from(2)
        }
    }
}
