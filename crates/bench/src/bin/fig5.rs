//! Regenerate **Figure 5**: resource use rate vs maximum request size φ,
//! for medium (a) and high (b) load, across the five algorithms of the
//! paper's evaluation.
//!
//! ```text
//! cargo run -p mra-bench --release --bin fig5
//! ```

use mra_bench::save_csv;
use mra_workloads::experiments::{fig5, fig5_tables, measure_secs_default, FIG5_PHIS};
use mra_workloads::{Load, Table};

fn main() {
    let secs = measure_secs_default();
    let seed = 42;
    eprintln!("fig5: sweeping phi over {FIG5_PHIS:?} at {secs}s per run (seed {seed})");
    let t0 = std::time::Instant::now();
    let rows = fig5(&[Load::Medium, Load::High], &FIG5_PHIS, seed, secs);
    for table in fig5_tables(&rows) {
        println!("{}", table.render());
    }

    // CSV: long format, one row per point.
    let mut csv = Table::new(
        "fig5",
        &["load", "phi", "algorithm", "use_rate_pct", "msgs_per_cs", "cs_completed"],
    );
    for r in &rows {
        csv.row(vec![
            r.load.label().into(),
            r.phi.to_string(),
            r.algo.label().into(),
            format!("{:.3}", r.use_rate_pct),
            format!("{:.2}", r.msgs_per_cs),
            r.cs_completed.to_string(),
        ]);
    }
    save_csv(&csv, "fig5_use_rate.csv");

    // Headline of §5.2: the LASS/BL improvement factor range.
    let mut ratios: Vec<f64> = Vec::new();
    for load in [Load::Medium, Load::High] {
        for phi in FIG5_PHIS {
            let get = |algo| {
                rows.iter()
                    .find(|r| r.load == load && r.phi == phi && r.algo == algo)
                    .map(|r| r.use_rate_pct)
            };
            if let (Some(lass), Some(bl)) = (
                get(mra_workloads::Algorithm::LassLoan),
                get(mra_workloads::Algorithm::BouabdallahLaforest),
            ) {
                if bl > 0.0 {
                    ratios.push(lass / bl);
                }
            }
        }
    }
    ratios.sort_by(|a, b| a.total_cmp(b));
    if let (Some(min), Some(max)) = (ratios.first(), ratios.last()) {
        println!(
            "LASS-with-loan vs Bouabdallah-Laforest use-rate ratio: {min:.2}x .. {max:.2}x \
             (paper: up to 20x on its testbed)"
        );
    }
    eprintln!("fig5 done in {:?}", t0.elapsed());
}
