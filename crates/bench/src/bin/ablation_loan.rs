//! Loan-threshold ablation — the experiment the paper's conclusion calls
//! for: *"it would be interesting to evaluate the impact of this threshold
//! on other metrics"*.
//!
//! Sweeps the threshold from `off` to 4 at several request sizes under both
//! loads.
//!
//! ```text
//! cargo run -p mra-bench --release --bin ablation_loan
//! ```

use mra_bench::save_csv;
use mra_workloads::experiments::{ablation_loan, measure_secs_default};
use mra_workloads::Load;

fn main() {
    let secs = measure_secs_default();
    let thresholds = [0usize, 1, 2, 3, 4];
    for load in [Load::Medium, Load::High] {
        for phi in [4usize, 8, 16] {
            let t = ablation_loan(&thresholds, phi, load, 42, secs);
            println!("{}", t.render());
            save_csv(&t, &format!("ablation_loan_{}_phi{}.csv", load.label(), phi));
        }
    }
}
