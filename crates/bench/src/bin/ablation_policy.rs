//! Scheduling-function (`A`) ablation: the paper makes `A` a parameter of
//! the algorithm (§3.3.2) and evaluates only the average of non-null
//! counter values; this harness compares all implemented policies.
//!
//! ```text
//! cargo run -p mra-bench --release --bin ablation_policy
//! ```

use mra_bench::save_csv;
use mra_workloads::experiments::{ablation_policy, measure_secs_default};
use mra_workloads::Load;

fn main() {
    let secs = measure_secs_default();
    for load in [Load::Medium, Load::High] {
        for phi in [4usize, 16, 80] {
            let t = ablation_policy(phi, load, 42, secs);
            println!("{}", t.render());
            save_csv(&t, &format!("ablation_policy_{}_phi{}.csv", load.label(), phi));
        }
    }
}
