//! Regenerate **Figure 7**: average waiting time by request-size bucket at
//! φ = 80 (labels 1res, 17res, …, 80res), medium (a) and high (b) load.
//!
//! Also runs the skewed-popularity extension: the paper attributes the
//! small-request penalty of its scheduling function `A` to unevenly
//! requested resources; with a Zipf-like resource popularity the effect is
//! directly visible.
//!
//! ```text
//! cargo run -p mra-bench --release --bin fig7
//! ```

use mra_bench::save_csv;
use mra_workloads::experiments::{fig7, fig7_tables, measure_secs_default};
use mra_workloads::{run, Algorithm, Load, Scenario, Table};

fn main() {
    let secs = measure_secs_default();
    let seed = 42;
    eprintln!("fig7: phi=80, 6 size buckets, {secs}s per run (seed {seed})");
    let rows = fig7(&[Load::Medium, Load::High], seed, secs);
    for t in fig7_tables(&rows) {
        println!("{}", t.render());
    }

    let mut csv = Table::new(
        "fig7",
        &["load", "algorithm", "size_lo", "size_hi", "mean_ms", "std_ms", "count"],
    );
    for r in &rows {
        csv.row(vec![
            r.load.label().into(),
            r.algo.label().into(),
            r.size_lo.to_string(),
            r.size_hi.to_string(),
            format!("{:.3}", r.wait.mean_ms),
            format!("{:.3}", r.wait.std_ms),
            r.wait.count.to_string(),
        ]);
    }
    save_csv(&csv, "fig7_wait_by_size.csv");

    // Extension: skewed resource popularity exposes the small-request
    // penalty the paper discusses (§5.3 last paragraph).
    let mut skew_table = Table::new(
        "Fig.7 extension: request-size penalty under Zipf(1.0) popularity (high load)",
        &["algorithm", "sizes", "mean [ms]", "std [ms]", "n"],
    );
    for algo in [Algorithm::BouabdallahLaforest, Algorithm::LassLoan] {
        let sc = Scenario::builder()
            .load(Load::High)
            .max_request_size(80)
            .seed(seed)
            .skew(1.0)
            .measure_secs(secs)
            .build();
        let res = run(algo, &sc);
        for (lo, hi, w) in res.wait_buckets(80, 6) {
            skew_table.row(vec![
                algo.label().into(),
                format!("{lo}-{hi}"),
                format!("{:.1}", w.mean_ms),
                format!("{:.1}", w.std_ms),
                w.count.to_string(),
            ]);
        }
    }
    println!("{}", skew_table.render());
    save_csv(&skew_table, "fig7_skew_extension.csv");
}
