//! Fault-robustness ablation: CS throughput degradation vs frame-loss
//! rate, for all six protocol families, with the reliable-delivery
//! session layer off (the paper's bare protocols) and on (exactly-once
//! FIFO restored by retransmission) — on a deterministic [`FaultPlan`].
//!
//! ```text
//! cargo run -p mra-bench --release --bin fig_faults            # full grid
//! cargo run -p mra-bench --release --bin fig_faults -- --smoke # CI grid
//! ```
//!
//! Environment: `MRA_FAULT_SEED` seeds the drop decisions, `MRA_LOSS`
//! restricts the sweep to `{0, loss}` (a quick single-point comparison),
//! `MRA_RELIABLE` pins the ablation to one mode (default: both),
//! `MRA_RTO_MS` tunes the reliability-on retransmission timeout, and
//! `MRA_MEASURE_SECS` / `MRA_FAST` scale the simulated window as usual.

use mra_bench::save_csv;
use mra_sim::faults::FaultPlan;
use mra_sim::reliable::Reliability;
use mra_workloads::experiments::{
    fig_faults, fig_faults_csv, fig_faults_table, measure_secs_or, sweep_reliability,
    FIG_FAULTS_LOSSES,
};

fn main() {
    let smoke = std::env::args().any(|a| a == "--smoke");
    let secs = measure_secs_or(if smoke { 2.0 } else { 8.0 });
    let seed = 42;
    let fault_seed = FaultPlan::env_seed(0xFA17);
    let losses: Vec<f64> = if let Some(loss) = FaultPlan::env_loss() {
        vec![0.0, loss]
    } else if smoke {
        vec![0.0, 5e-4, 2e-2]
    } else {
        FIG_FAULTS_LOSSES.to_vec()
    };
    // The ablation runs both modes unless MRA_RELIABLE pins one.
    let modes: Vec<bool> = if std::env::var("MRA_RELIABLE").is_ok() {
        vec![Reliability::env_enabled()]
    } else {
        vec![false, true]
    };
    eprintln!(
        "fig_faults: sweeping loss over {losses:?} × reliability {modes:?} at {secs}s \
         per run (seed {seed}, fault seed {fault_seed}, rto {:.1}ms)",
        sweep_reliability().rto.as_millis_f64()
    );
    let t0 = std::time::Instant::now();
    let rows = fig_faults(&losses, &modes, seed, fault_seed, secs);
    println!("{}", fig_faults_table(&rows).render());
    save_csv(&fig_faults_csv(&rows), "fig_faults.csv");
    eprintln!("fig_faults done in {:?}", t0.elapsed());
}
