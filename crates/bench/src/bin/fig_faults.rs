//! Fault-robustness sweep: CS throughput degradation vs frame-loss rate,
//! for all six protocol families, on a deterministic [`FaultPlan`].
//!
//! ```text
//! cargo run -p mra-bench --release --bin fig_faults            # full grid
//! cargo run -p mra-bench --release --bin fig_faults -- --smoke # CI grid
//! ```
//!
//! Environment: `MRA_FAULT_SEED` seeds the drop decisions, `MRA_LOSS`
//! restricts the sweep to `{0, loss}` (a quick single-point comparison),
//! `MRA_MEASURE_SECS` / `MRA_FAST` scale the simulated window as usual.

use mra_bench::save_csv;
use mra_sim::faults::FaultPlan;
use mra_workloads::experiments::{
    fig_faults, fig_faults_table, measure_secs_or, FIG_FAULTS_LOSSES,
};
use mra_workloads::Table;

fn main() {
    let smoke = std::env::args().any(|a| a == "--smoke");
    let secs = measure_secs_or(if smoke { 2.0 } else { 8.0 });
    let seed = 42;
    let fault_seed = FaultPlan::env_seed(0xFA17);
    let losses: Vec<f64> = if let Some(loss) = FaultPlan::env_loss() {
        vec![0.0, loss]
    } else if smoke {
        vec![0.0, 5e-4, 2e-3]
    } else {
        FIG_FAULTS_LOSSES.to_vec()
    };
    eprintln!(
        "fig_faults: sweeping loss over {losses:?} at {secs}s per run \
         (seed {seed}, fault seed {fault_seed})"
    );
    let t0 = std::time::Instant::now();
    let rows = fig_faults(&losses, seed, fault_seed, secs);
    println!("{}", fig_faults_table(&rows).render());

    // CSV: long format, one row per (loss, algorithm) point.
    let mut csv = Table::new(
        "fig_faults",
        &[
            "loss",
            "algorithm",
            "cs_completed",
            "cs_per_sec",
            "degradation_pct",
            "censored",
            "dropped_frames",
        ],
    );
    for r in &rows {
        csv.row(vec![
            // 5 decimals: the interesting grid is per-mille and below.
            format!("{:.5}", r.loss),
            r.algo.label().into(),
            r.cs_completed.to_string(),
            format!("{:.2}", r.cs_per_sec),
            format!("{:.2}", r.degradation_pct),
            r.censored.to_string(),
            r.dropped.to_string(),
        ]);
    }
    save_csv(&csv, "fig_faults.csv");
    eprintln!("fig_faults done in {:?}", t0.elapsed());
}
