//! Scaling extension: how the algorithms behave as the system grows
//! (N ∈ {8, 16, 32, 64}, M scaled as 2.5·N like the paper's 32/80 ratio).
//! Reports use rate, mean wait and messages per critical section — the
//! dimension along which the broadcast baseline degrades and the
//! counter-based design keeps its per-conflict communication profile.
//!
//! ```text
//! cargo run -p mra-bench --release --bin scaling
//! ```

use mra_bench::save_csv;
use mra_workloads::experiments::measure_secs_default;
use mra_workloads::{pool, run, Algorithm, Load, Scenario, Table};

fn main() {
    let secs = measure_secs_default();
    let mut t = Table::new(
        "Scaling sweep (phi = 4, high load, M = 2.5N)",
        &["N", "M", "algorithm", "use rate [%]", "mean wait [ms]", "msgs/cs"],
    );
    let mut grid = Vec::new();
    for n in [8usize, 16, 32, 64] {
        let m = n * 5 / 2;
        for algo in [
            Algorithm::BouabdallahLaforest,
            Algorithm::LassLoan,
            Algorithm::Maddi,
        ] {
            grid.push((n, m, algo));
        }
    }
    // The grid points are independent seeded simulations: fan them across
    // MRA_THREADS workers, rows come back in input order.
    let rows = pool::sweep(grid, |(n, m, algo)| {
        let sc = Scenario::builder()
            .nodes(n)
            .resources(m)
            .max_request_size(4)
            .load(Load::High)
            .seed(42)
            .measure_secs(secs)
            .build();
        let res = run(algo, &sc);
        vec![
            n.to_string(),
            m.to_string(),
            algo.label().into(),
            format!("{:.1}", 100.0 * res.use_rate()),
            format!("{:.1}", res.wait_stats().mean_ms),
            format!("{:.1}", res.msgs_per_cs()),
        ]
    });
    for row in rows {
        t.row(row);
    }
    println!("{}", t.render());
    save_csv(&t, "scaling.csv");
}
