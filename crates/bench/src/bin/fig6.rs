//! Regenerate **Figure 6**: average waiting time (with standard deviation)
//! at φ = 4 for Bouabdallah–Laforest and the two LASS variants, medium (a)
//! and high (b) load.
//!
//! ```text
//! cargo run -p mra-bench --release --bin fig6
//! ```

use mra_bench::save_csv;
use mra_sim::WaitStats;
use mra_workloads::experiments::{fig6, fig6_table, measure_secs_default};
use mra_workloads::{Algorithm, Load, Table};

fn main() {
    let secs = measure_secs_default();
    let seed = 42;
    eprintln!("fig6: phi=4, both loads, {secs}s per run (seed {seed})");
    let rows = fig6(&[Load::Medium, Load::High], seed, secs);
    println!("{}", fig6_table(&rows).render());

    let mut csv = Table::new(
        "fig6",
        &["load", "algorithm", "mean_ms", "std_ms", "median_ms", "p95_ms", "count", "censored"],
    );
    for r in &rows {
        csv.row(vec![
            r.load.label().into(),
            r.algo.label().into(),
            WaitStats::cell(r.wait.mean_ms, 3),
            WaitStats::cell(r.wait.std_ms, 3),
            WaitStats::cell(r.wait.median_ms, 3),
            WaitStats::cell(r.wait.p95_ms, 3),
            r.wait.count.to_string(),
            r.censored.to_string(),
        ]);
    }
    save_csv(&csv, "fig6_waiting_time.csv");

    // Headline of §5.3: BL-vs-LASS waiting-time factor per load.
    for load in [Load::Medium, Load::High] {
        let get = |a: Algorithm| {
            rows.iter()
                .find(|r| r.load == load && r.algo == a)
                .map(|r| r.wait.mean_ms)
        };
        let get_median = |a: Algorithm| {
            rows.iter()
                .find(|r| r.load == load && r.algo == a)
                .map(|r| r.wait.median_ms)
        };
        if let (Some(bl), Some(noloan), Some(loan)) = (
            get(Algorithm::BouabdallahLaforest),
            get(Algorithm::LassNoLoan),
            get(Algorithm::LassLoan),
        ) {
            let med_ratio = match (get_median(Algorithm::BouabdallahLaforest), get_median(Algorithm::LassNoLoan)) {
                (Some(a), Some(b)) if b > 0.0 => a / b,
                _ => f64::NAN,
            };
            println!(
                "{} load: BL/without-loan wait ratio = {:.1}x mean, {:.1}x median; \
                 loan effect {:+.0}% on the mean \
                 (paper: ~{}x lower mean, loan ~-20% at high load)",
                load.label(),
                bl / noloan,
                med_ratio,
                100.0 * (loan / noloan - 1.0),
                if load == Load::Medium { 8 } else { 11 },
            );
        }
    }
}
