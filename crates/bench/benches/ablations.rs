//! Ablation bench target: prints the loan-threshold sweep (the paper's
//! future-work experiment), the scheduling-policy comparison, the
//! optimization on/off comparison and the hierarchical ("cloud") topology
//! experiment from the paper's conclusion; Criterion then times the loan
//! variants.

use criterion::{criterion_group, criterion_main, Criterion};
use mra_core::LassConfig;
use mra_sim::{LatencyModel, Sim};
use mra_workloads::experiments::{ablation_loan, ablation_policy};
use mra_workloads::{run, Algorithm, Load, PaperWorkload, Scenario, Table};
use mra_types::Time;

fn print_ablations() {
    let secs = std::env::var("MRA_MEASURE_SECS")
        .ok()
        .and_then(|s| s.parse().ok())
        .unwrap_or(2.0);
    println!("{}", ablation_loan(&[0, 1, 2, 3, 4], 8, Load::High, 42, secs).render());
    println!("{}", ablation_policy(16, Load::High, 42, secs).render());

    // Optimization toggles (§4.6): messages per CS with each optimization
    // disabled in turn.
    let mut t = Table::new(
        "Optimization ablation (phi = 4, high load)",
        &["variant", "msgs/cs", "use rate [%]", "mean wait [ms]"],
    );
    type Tweak = fn(&mut LassConfig);
    let variants: [(&str, Tweak); 4] = [
        ("all on", |_| {}),
        ("no single-resource opt", |c| c.opt_single_resource = false),
        ("no stop-forwarding", |c| c.opt_stop_forwarding = false),
        ("no father shortcut", |c| c.opt_shortcut_on_counter = false),
    ];
    for (label, tweak) in variants {
        let sc = Scenario::builder()
            .load(Load::High)
            .max_request_size(4)
            .seed(42)
            .measure_secs(secs)
            .build();
        let mut cfg = LassConfig::with_loan(sc.n, sc.m);
        tweak(&mut cfg);
        let res = Sim::new(
            cfg.build_nodes(),
            PaperWorkload::per_node(&sc, sc.n),
            sc.m,
            sc.sim_config(),
        )
        .run();
        t.row(vec![
            label.into(),
            format!("{:.1}", res.msgs_per_cs()),
            format!("{:.1}", 100.0 * res.use_rate()),
            format!("{:.1}", res.wait_stats().mean_ms),
        ]);
    }
    println!("{}", t.render());

    // Cloud topology (paper §6 future work): two clusters, expensive
    // inter-cluster links; LASS's lack of a global lock should keep
    // non-conflicting traffic local.
    let mut t = Table::new(
        "Hierarchical topology (2 clusters, intra 0.1ms, inter 5ms, phi = 4, high load)",
        &["algorithm", "use rate [%]", "mean wait [ms]", "msgs/cs"],
    );
    for algo_cfg in [("Bouabdallah Laforest", None), ("With loan", Some(1usize))] {
        let sc = Scenario::builder()
            .load(Load::High)
            .max_request_size(4)
            .seed(42)
            .measure_secs(secs)
            .build();
        let latency = LatencyModel::two_clusters(
            sc.n,
            sc.n / 2,
            Time::from_micros(100),
            Time::from_millis(5),
        );
        let mut sim_cfg = sc.sim_config();
        sim_cfg.latency = latency;
        let res = match algo_cfg.1 {
            None => {
                let nodes = mra_baselines::BouabdallahLaforest::build_nodes(sc.n, sc.m);
                Sim::new(nodes, PaperWorkload::per_node(&sc, sc.n), sc.m, sim_cfg).run()
            }
            Some(th) => {
                let mut cfg = LassConfig::with_loan(sc.n, sc.m);
                cfg.loan = Some(th);
                Sim::new(
                    cfg.build_nodes(),
                    PaperWorkload::per_node(&sc, sc.n),
                    sc.m,
                    sim_cfg,
                )
                .run()
            }
        };
        t.row(vec![
            algo_cfg.0.into(),
            format!("{:.1}", 100.0 * res.use_rate()),
            format!("{:.1}", res.wait_stats().mean_ms),
            format!("{:.1}", res.msgs_per_cs()),
        ]);
    }
    println!("{}", t.render());
}

fn bench_ablations(c: &mut Criterion) {
    print_ablations();
    let mut group = c.benchmark_group("loan");
    group.sample_size(10);
    for (label, algo) in [
        ("without", Algorithm::LassNoLoan),
        ("with", Algorithm::LassLoan),
    ] {
        group.bench_function(label, |b| {
            b.iter(|| {
                let sc = Scenario::builder()
                    .load(Load::High)
                    .max_request_size(8)
                    .seed(17)
                    .measure_secs(0.5)
                    .build();
                std::hint::black_box(run(algo, &sc).cs_completed)
            })
        });
    }
    group.finish();
}

criterion_group!(benches, bench_ablations);
criterion_main!(benches);
