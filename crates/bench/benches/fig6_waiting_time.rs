//! Bench target for **Figure 6**: prints the waiting-time table (φ = 4,
//! both loads), then times the φ = 4 high-load scenario per algorithm.

use criterion::{criterion_group, criterion_main, Criterion};
use mra_workloads::experiments::{fig6, fig6_table};
use mra_workloads::{run, Algorithm, Load, Scenario};

fn bench_fig6(c: &mut Criterion) {
    let secs = std::env::var("MRA_MEASURE_SECS")
        .ok()
        .and_then(|s| s.parse().ok())
        .unwrap_or(3.0);
    let rows = fig6(&[Load::Medium, Load::High], 42, secs);
    println!("{}", fig6_table(&rows).render());

    let mut group = c.benchmark_group("fig6_point");
    group.sample_size(10);
    for algo in Algorithm::fig6_set() {
        group.bench_function(algo.label(), |b| {
            b.iter(|| {
                let sc = Scenario::builder()
                    .load(Load::High)
                    .max_request_size(4)
                    .seed(11)
                    .measure_secs(0.5)
                    .build();
                std::hint::black_box(run(algo, &sc).wait_stats().mean_ms)
            })
        });
    }
    group.finish();
}

criterion_group!(benches, bench_fig6);
criterion_main!(benches);
