//! Bench target for **Figure 5**: prints the full use-rate tables once
//! (scaled-down sweep unless `MRA_MEASURE_SECS` overrides), then lets
//! Criterion time one representative point per algorithm so regressions in
//! simulation throughput are visible.

use criterion::{criterion_group, criterion_main, Criterion};
use mra_workloads::experiments::{fig5, fig5_tables};
use mra_workloads::{run, Algorithm, Load, Scenario};

fn print_figure_once() {
    // Short windows keep `cargo bench` snappy; the dedicated binary runs
    // the full-length version.
    let secs = std::env::var("MRA_MEASURE_SECS")
        .ok()
        .and_then(|s| s.parse().ok())
        .unwrap_or(2.0);
    let phis = [1usize, 4, 16, 40, 80];
    let rows = fig5(&[Load::Medium, Load::High], &phis, 42, secs);
    for t in fig5_tables(&rows) {
        println!("{}", t.render());
    }
}

fn bench_fig5(c: &mut Criterion) {
    print_figure_once();
    let mut group = c.benchmark_group("fig5_point");
    group.sample_size(10);
    for algo in Algorithm::fig5_set() {
        group.bench_function(algo.label(), |b| {
            b.iter(|| {
                let sc = Scenario::builder()
                    .load(Load::High)
                    .max_request_size(16)
                    .seed(7)
                    .measure_secs(0.5)
                    .build();
                let res = run(algo, &sc);
                std::hint::black_box(res.cs_completed)
            })
        });
    }
    group.finish();
}

criterion_group!(benches, bench_fig5);
criterion_main!(benches);
