//! Pure-engine throughput: [`EchoProbe`] has near-zero handler cost, so
//! the measurement is the event loop itself (queue, outbox drain, latency
//! sampling, metrics accounting).  This is the engine *ceiling*; compare
//! against `engine_micro`'s `sim/…` case (protocol-bound floor) to decide
//! whether an optimization should target the engine or the algorithm.

use criterion::{criterion_group, criterion_main, Criterion};
use mra_protocol::testkit::EchoProbe;
use mra_sim::{FixedWorkload, LatencyModel, Sim, SimConfig};
use mra_types::Time;

fn bench_floor(c: &mut Criterion) {
    c.bench_function("engine_floor/echo_16n_5ms", |b| {
        b.iter(|| {
            let protos: Vec<EchoProbe> = (0..16).map(|me| EchoProbe::new(me, 4)).collect();
            let workloads: Vec<FixedWorkload> = (0..16)
                .map(|_| FixedWorkload {
                    think: Time::from_millis(1),
                    cs: Time::from_millis(1),
                    m: 4,
                    size: 1,
                })
                .collect();
            let mut cfg = SimConfig::quick(3);
            cfg.latency = LatencyModel::Constant(Time::from_micros(1));
            cfg.warmup = Time::ZERO;
            cfg.measure = Time::from_millis(5);
            cfg.drain = Time::ZERO;
            cfg.active_nodes = Some(0);
            let res = Sim::new(protos, workloads, 4, cfg).run();
            std::hint::black_box(res.msgs_total)
        })
    });
}

criterion_group!(benches, bench_floor);
criterion_main!(benches);
