//! Engine and data-structure microbenchmarks: bitset algebra, token queue
//! operations, protocol handler throughput (via `VirtualNet`) and raw
//! simulator event throughput.

use criterion::{criterion_group, criterion_main, Criterion};
use mra_core::{LassConfig, ResReq, Token};
use mra_protocol::testkit::{run_random_workload, ExerciseCfg, VirtualNet};
use mra_sim::{FixedWorkload, Sim, SimConfig};
use mra_types::{ResourceSet, Time};
use rand::rngs::StdRng;
use rand::SeedableRng;

fn bench_bitset(c: &mut Criterion) {
    let a: ResourceSet = (0..80).step_by(2).collect();
    let b: ResourceSet = (0..80).step_by(3).collect();
    c.bench_function("bitset/union+count", |bch| {
        bch.iter(|| std::hint::black_box(a.union(&b).len()))
    });
    c.bench_function("bitset/subset+disjoint", |bch| {
        bch.iter(|| std::hint::black_box(a.is_subset(&b) ^ a.is_disjoint(&b)))
    });
    c.bench_function("bitset/iterate80", |bch| {
        bch.iter(|| std::hint::black_box(a.iter().sum::<usize>()))
    });
    // The heap representation past the 256-element inline boundary.
    let big_a: ResourceSet = (0..100_000).step_by(17).collect();
    let big_b: ResourceSet = (0..100_000).step_by(23).collect();
    c.bench_function("bitset/union+count_100k", |bch| {
        bch.iter(|| std::hint::black_box(big_a.union(&big_b).len()))
    });
}

fn bench_token_queue(c: &mut Criterion) {
    c.bench_function("token/enqueue32_dequeue32", |b| {
        b.iter(|| {
            let mut t = Token::new(0);
            for s in 0..32 {
                t.enqueue_res(ResReq {
                    r: 0,
                    sinit: s,
                    id: 1,
                    mark: ((s * 7) % 13) as f64,
                });
            }
            let mut sum = 0usize;
            while let Some(q) = t.dequeue() {
                sum += q.sinit;
            }
            std::hint::black_box(sum)
        })
    });
}

fn bench_protocol_cycle(c: &mut Criterion) {
    c.bench_function("virtualnet/lass_5n8m_30cs", |b| {
        b.iter(|| {
            let cfg = LassConfig::with_loan(5, 8);
            let mut net = VirtualNet::new(cfg.build_nodes(), 8);
            let mut rng = StdRng::seed_from_u64(3);
            let ex = ExerciseCfg {
                rounds_per_node: 6,
                max_req_size: 4,
                m: 8,
                hold_steps: 2,
                active_nodes: None,
                step_cap: 2_000_000,
            };
            std::hint::black_box(run_random_workload(&mut net, &ex, &mut rng).cs_completed)
        })
    });
}

fn bench_sim_engine(c: &mut Criterion) {
    c.bench_function("sim/lass_32n80m_1s_virtual", |b| {
        b.iter(|| {
            let cfg = LassConfig::with_loan(32, 80);
            let wl: Vec<FixedWorkload> = (0..32)
                .map(|_| FixedWorkload {
                    think: Time::from_millis(5),
                    cs: Time::from_millis(10),
                    m: 80,
                    size: 4,
                })
                .collect();
            let mut sim_cfg = SimConfig::quick(5);
            sim_cfg.measure = Time::from_millis(500);
            sim_cfg.drain = Time::from_millis(500);
            let res = Sim::new(cfg.build_nodes(), wl, 80, sim_cfg).run();
            std::hint::black_box(res.cs_completed)
        })
    });
}

criterion_group!(
    benches,
    bench_bitset,
    bench_token_queue,
    bench_protocol_cycle,
    bench_sim_engine
);
criterion_main!(benches);
