//! Bench target for **Figure 7**: prints the waiting-time-by-size tables
//! (φ = 80), then times the φ = 80 scenario per algorithm.

use criterion::{criterion_group, criterion_main, Criterion};
use mra_workloads::experiments::{fig7, fig7_tables};
use mra_workloads::{run, Algorithm, Load, Scenario};

fn bench_fig7(c: &mut Criterion) {
    let secs = std::env::var("MRA_MEASURE_SECS")
        .ok()
        .and_then(|s| s.parse().ok())
        .unwrap_or(3.0);
    let rows = fig7(&[Load::Medium, Load::High], 42, secs);
    for t in fig7_tables(&rows) {
        println!("{}", t.render());
    }

    let mut group = c.benchmark_group("fig7_point");
    group.sample_size(10);
    for algo in Algorithm::fig6_set() {
        group.bench_function(algo.label(), |b| {
            b.iter(|| {
                let sc = Scenario::builder()
                    .load(Load::High)
                    .max_request_size(80)
                    .seed(13)
                    .measure_secs(0.5)
                    .build();
                std::hint::black_box(run(algo, &sc).cs_completed)
            })
        });
    }
    group.finish();
}

criterion_group!(benches, bench_fig7);
criterion_main!(benches);
