//! `bench_serve` — the tracked serving-layer benchmark.
//!
//! Sweeps offered load (open-loop Poisson arrivals per node) across the
//! main algorithm families on the simulator and records, per point:
//!
//! * **goodput** (fully served requests per second of measurement window)
//!   against **offered load** — the saturation curve of each algorithm as
//!   an allocation service;
//! * **arrival-keyed tail latency** (p50/p95/p99/p999 of intended-arrival
//!   → grant) — the coordinated-omission-free serving metric, next to the
//!   issue-keyed p99 whose gap to it *is* the omission bias.
//!
//! Runs on the deterministic simulator, so the numbers track algorithmic
//! cost (queueing + synchronization), not host scheduling noise.  Results
//! land in `BENCH_serve.json` at the repo root (same pattern as
//! `BENCH_net.json`).  `MRA_FAST=1` (CI) shrinks the measurement window.
//!
//! ```text
//! cargo bench -p mra-bench --bench bench_serve
//! ```

use criterion::{criterion_group, criterion_main, Criterion};
use mra_bench::{write_bench_serve_json, ServeBenchEntry};
use mra_serve::ServeConfig;
use mra_workloads::{run_serve, Algorithm, Scenario, ServeScenario};

fn fast() -> bool {
    std::env::var("MRA_FAST").is_ok_and(|v| !v.is_empty() && v != "0")
}

const NODES: usize = 8;
const RESOURCES: usize = 16;

struct Point {
    label: &'static str,
    algo: Algorithm,
    /// Offered arrival rate per node, requests/second.
    rate_hz: f64,
}

fn scenario() -> Scenario {
    let measure = if fast() { 0.5 } else { 2.0 };
    Scenario::builder()
        .nodes(NODES)
        .resources(RESOURCES)
        .max_request_size(3)
        .seed(0x5E21)
        .measure_secs(measure)
        .build()
}

fn run_point(p: &Point) -> ServeBenchEntry {
    let serve = ServeConfig {
        rate_hz: p.rate_hz,
        ..ServeConfig::default()
    }
    .from_env();
    let ssc = ServeScenario::new(scenario(), serve);
    let t0 = std::time::Instant::now();
    let out = run_serve(p.algo, &ssc, None, None);
    let wall_ns = t0.elapsed().as_nanos() as u64;
    out.check()
        .unwrap_or_else(|e| panic!("{}: conservation broken: {e}", p.label));

    // `LogHist::quantile` takes a percentile (0–100) and returns the same
    // unit it recorded — nanoseconds here.
    let ms = |q: f64| out.serve.grant_latency.quantile(q) / 1e6;
    ServeBenchEntry {
        scenario: p.label.to_string(),
        algo: out.result.algo.clone(),
        nodes: NODES,
        offered_hz: out.offered_hz(),
        goodput_hz: out.goodput_hz(),
        offered: out.serve.offered,
        admitted: out.serve.admitted,
        shed: out.serve.shed(),
        batches: out.serve.batches,
        batched_reqs: out.serve.batched_reqs,
        p50_ms: ms(50.0),
        p95_ms: ms(95.0),
        p99_ms: ms(99.0),
        p999_ms: ms(99.9),
        wait_p99_ms: out.result.wait_stats().p99_ms,
        wall_ns,
    }
}

fn bench_serve(c: &mut Criterion) {
    // Three load levels per algorithm: comfortably under, near, and past
    // the fleet's service capacity for this topology.
    #[rustfmt::skip]
    let points = [
        Point { label: "lass_loan_50hz",   algo: Algorithm::LassLoan,           rate_hz: 50.0 },
        Point { label: "lass_loan_200hz",  algo: Algorithm::LassLoan,           rate_hz: 200.0 },
        Point { label: "lass_loan_800hz",  algo: Algorithm::LassLoan,           rate_hz: 800.0 },
        Point { label: "lass_noloan_200hz", algo: Algorithm::LassNoLoan,        rate_hz: 200.0 },
        Point { label: "bl_200hz",         algo: Algorithm::BouabdallahLaforest, rate_hz: 200.0 },
        Point { label: "incremental_200hz", algo: Algorithm::Incremental,       rate_hz: 200.0 },
        Point { label: "central_200hz",    algo: Algorithm::Central,            rate_hz: 200.0 },
        Point { label: "maddi_200hz",      algo: Algorithm::Maddi,              rate_hz: 200.0 },
    ];
    let entries: Vec<ServeBenchEntry> = points.iter().map(run_point).collect();

    println!("serving layer (offered vs goodput, arrival-keyed latency):");
    for e in &entries {
        println!(
            "  {:<20} offered {:>7.0}/s  goodput {:>7.0}/s  shed {:>5}  \
             p50 {:>8.2} ms  p99 {:>9.2} ms  p999 {:>9.2} ms  (wait p99 {:>8.2} ms)",
            e.scenario,
            e.offered_hz,
            e.goodput_hz,
            e.shed,
            e.p50_ms,
            e.p99_ms,
            e.p999_ms,
            e.wait_p99_ms,
        );
    }

    // Criterion's `--test` smoke mode must not clobber the tracked file.
    if std::env::args().any(|a| a == "--test") {
        println!("[json] --test smoke mode: BENCH_serve.json left untouched");
    } else {
        let mode = if fast() { "fast" } else { "full" };
        match write_bench_serve_json(&entries, mode) {
            Ok(path) => println!("[json] wrote {}", path.display()),
            Err(e) => panic!("[json] FAILED to write BENCH_serve.json: {e}"),
        }
    }

    // Criterion timing of one mid-load serving run for local comparisons.
    let mut group = c.benchmark_group("serve");
    group.sample_size(10);
    group.bench_function("lass_loan_200hz", |b| {
        b.iter(|| {
            let serve = ServeConfig {
                rate_hz: 200.0,
                ..ServeConfig::default()
            };
            let ssc = ServeScenario::new(scenario(), serve);
            let out = run_serve(Algorithm::LassLoan, &ssc, None, None);
            std::hint::black_box(out.serve.served)
        })
    });
    group.finish();
}

criterion_group!(benches, bench_serve);
criterion_main!(benches);
