//! `bench_engine` — the tracked simulator-throughput benchmark.
//!
//! Measures raw engine **events per wall-clock second** for representative
//! scenarios of the paper's evaluation (LASS with loan, LASS without loan,
//! Bouabdallah–Laforest, Incremental at the paper's 32×80 shape) and
//! writes the numbers to `BENCH_engine.json` at the repo root, so the
//! ROADMAP's perf trajectory has a recorded data point per commit that
//! touches the hot path.
//!
//! Each paper-shape measurement is a single-threaded `Sim::run` —
//! `MRA_THREADS` is irrelevant here by construction, which is exactly what
//! makes the number comparable across machines with different core counts.
//! `MRA_FAST=1` (CI) shrinks the simulated window; the metric is a *rate*,
//! so shorter windows shift it only by warmup amortization.
//!
//! `MRA_BENCH_BIG=1` additionally measures the scale-out shape (10 000
//! nodes × 100 000 resources, [`Scenario::large`]) on 1 and 4 engine
//! shards — the sharded conservative engine's headline numbers, with
//! per-shard event counts in the JSON.  Off by default: each big run is
//! several orders of magnitude more events than a paper-shape run.
//!
//! ```text
//! cargo bench -p mra-bench --bench bench_engine
//! MRA_BENCH_BIG=1 cargo bench -p mra-bench --bench bench_engine
//! ```

use criterion::{criterion_group, criterion_main, Criterion};
use mra_bench::{write_bench_engine_json, EngineBenchEntry};
use mra_workloads::experiments::measure_secs_or;
use mra_workloads::{run, Algorithm, Load, Scenario};

/// The measured grid: paper shape (N = 32, M = 80), high load, φ = 16 —
/// mid-grid, where Fig. 5's curves separate — plus a φ = 4 BL point
/// matching Fig. 6's configuration.
fn points() -> Vec<(Algorithm, usize, &'static str)> {
    vec![
        (Algorithm::LassLoan, 16, "lass_loan_32n80m_phi16_high"),
        (Algorithm::LassNoLoan, 16, "lass_noloan_32n80m_phi16_high"),
        (Algorithm::BouabdallahLaforest, 16, "bl_32n80m_phi16_high"),
        (Algorithm::BouabdallahLaforest, 4, "bl_32n80m_phi4_high"),
        (Algorithm::Incremental, 16, "incremental_32n80m_phi16_high"),
    ]
}

fn scenario(phi: usize, secs: f64) -> Scenario {
    Scenario::builder()
        .load(Load::High)
        .max_request_size(phi)
        .seed(42)
        .measure_secs(secs)
        .build()
}

/// Measurement policy for the tracked file: the simulation is
/// deterministic (identical events every repeat), so the *minimum* wall
/// time across repeats is the least-noise estimate of engine cost —
/// single samples of sub-millisecond runs swing by 50%+ under scheduler
/// jitter.  Repeat until at least [`MIN_REPEATS`] runs *and*
/// [`MIN_TOTAL_WALL_NS`] of accumulated measurement, whichever takes
/// longer, capped at [`MAX_REPEATS`].
const MIN_REPEATS: usize = 5;
const MAX_REPEATS: usize = 200;
const MIN_TOTAL_WALL_NS: u64 = 50_000_000; // 50 ms

fn entry_from(label: &str, res: mra_sim::RunResult) -> EngineBenchEntry {
    EngineBenchEntry {
        scenario: label.to_string(),
        algo: res.algo.clone(),
        events: res.events_processed,
        wall_ns: res.wall_ns,
        wall_secs: res.wall_ns as f64 / 1e9,
        events_per_sec: res.events_per_sec(),
        cs_completed: res.cs_completed,
        shards: res.shards,
        shard_events: res.shard_events.clone(),
        trace_overhead_pct: f64::NAN, // filled by `measure` where sampled
    }
}

/// Min wall time across the repeat policy for one scenario, optionally
/// with ring tracing armed through the real `MRA_TRACE` plumbing.
fn min_wall(algo: Algorithm, phi: usize, secs: f64, traced: bool) -> mra_sim::RunResult {
    if traced {
        std::env::set_var("MRA_TRACE", "ring");
    } else {
        std::env::remove_var("MRA_TRACE");
    }
    let mut best: Option<mra_sim::RunResult> = None;
    let mut total_wall_ns = 0u64;
    for rep in 0..MAX_REPEATS {
        let res = run(algo, &scenario(phi, secs));
        total_wall_ns += res.wall_ns;
        let better = match &best {
            None => true,
            Some(b) => res.wall_ns < b.wall_ns,
        };
        if better {
            best = Some(res);
        }
        if rep + 1 >= MIN_REPEATS && total_wall_ns >= MIN_TOTAL_WALL_NS {
            break;
        }
    }
    std::env::remove_var("MRA_TRACE");
    best.expect("at least one repeat")
}

fn measure(algo: Algorithm, phi: usize, label: &str, secs: f64) -> EngineBenchEntry {
    let res = min_wall(algo, phi, secs, false);
    // The tracked overhead metric: same scenario and repeat policy with a
    // ring tracer armed (fixed memory, the always-on production mode).
    // Min-of-repeats on both sides cancels most scheduler noise; small
    // negative values can still occur and mean "indistinguishable".
    let armed = min_wall(algo, phi, secs, true);
    let mut e = entry_from(label, res);
    if e.wall_ns > 0 {
        e.trace_overhead_pct =
            100.0 * (armed.wall_ns as f64 - e.wall_ns as f64) / e.wall_ns as f64;
    }
    e
}

/// The scale-out grid (`MRA_BENCH_BIG=1`): [`Scenario::large`] at the
/// acceptance shape, LASS ± loan and Incremental, sequential vs 4 shards.
/// The sharded entries' per-shard event counts land in the JSON, so the
/// trajectory records both the aggregate rate and the load balance.
const BIG_N: usize = 10_000;
const BIG_M: usize = 100_000;

fn big_points() -> Vec<(Algorithm, usize, &'static str)> {
    vec![
        (Algorithm::LassLoan, 1, "lass_loan_10kn100km_phi4_med_k1"),
        (Algorithm::LassLoan, 4, "lass_loan_10kn100km_phi4_med_k4"),
        (Algorithm::LassNoLoan, 1, "lass_noloan_10kn100km_phi4_med_k1"),
        (Algorithm::LassNoLoan, 4, "lass_noloan_10kn100km_phi4_med_k4"),
        (Algorithm::Incremental, 1, "incremental_10kn100km_phi4_med_k1"),
        (Algorithm::Incremental, 4, "incremental_10kn100km_phi4_med_k4"),
    ]
}

/// One recorded repeat per big point: a single run is already tens of
/// millions of events — min-of-two is enough to shed a cold-cache outlier
/// without doubling a multi-minute pass.
fn measure_big(algo: Algorithm, shards: usize, label: &str) -> EngineBenchEntry {
    let mut sc = Scenario::large(BIG_N, BIG_M, 42);
    sc.shards = Some(shards);
    let a = run(algo, &sc);
    let b = run(algo, &sc);
    let res = if b.wall_ns < a.wall_ns { b } else { a };
    entry_from(label, res)
}

fn bench_engine(c: &mut Criterion) {
    let secs = measure_secs_or(2.0);

    // One recorded pass per point for the tracked JSON (sequential, so
    // measurements never contend for cores), then Criterion timings of the
    // same scenarios for local ns/iter comparisons.
    let mut entries: Vec<EngineBenchEntry> = points()
        .iter()
        .map(|&(algo, phi, label)| measure(algo, phi, label, secs))
        .collect();

    let big = std::env::var("MRA_BENCH_BIG").is_ok_and(|v| !v.is_empty() && v != "0");
    if big {
        println!("scale-out grid ({BIG_N} nodes, {BIG_M} resources) — this takes a while:");
        for (algo, shards, label) in big_points() {
            let e = measure_big(algo, shards, label);
            println!(
                "  {:<36} {:>12.0} events/s on {} shard(s)",
                e.scenario, e.events_per_sec, e.shards
            );
            entries.push(e);
        }
    }

    println!("engine throughput ({secs}s simulated window per paper-shape run):");
    for e in &entries {
        let overhead = if e.trace_overhead_pct.is_finite() {
            format!(", trace +{:.1}%", e.trace_overhead_pct)
        } else {
            String::new()
        };
        println!(
            "  {:<36} {:>12.0} events/s  ({} events, {} cs, {:.3}s wall, k={}{overhead})",
            e.scenario, e.events_per_sec, e.events, e.cs_completed, e.wall_secs, e.shards
        );
    }
    // Criterion's `--test` smoke mode (what `cargo test --benches` passes)
    // must not clobber the tracked file with throwaway numbers.
    if std::env::args().any(|a| a == "--test") {
        println!("[json] --test smoke mode: BENCH_engine.json left untouched");
    } else {
        let mode = if secs < 2.0 { "fast" } else { "full" };
        match write_bench_engine_json(&entries, mode) {
            Ok(path) => println!("[json] wrote {}", path.display()),
            // Fail the process: a swallowed error would let CI validate a
            // stale committed copy instead of the fresh file.
            Err(e) => panic!("[json] FAILED to write BENCH_engine.json: {e}"),
        }
    }

    let mut group = c.benchmark_group("engine");
    group.sample_size(10);
    for (algo, phi, label) in points() {
        group.bench_function(label, |b| {
            b.iter(|| {
                let res = run(algo, &scenario(phi, 0.5));
                std::hint::black_box(res.events_processed)
            })
        });
    }
    group.finish();
}

criterion_group!(benches, bench_engine);
criterion_main!(benches);
