//! `bench_net` — the tracked transport-throughput benchmark.
//!
//! Runs identical loopback clusters on both TCP backends (the
//! readiness-polled reactor and the thread-per-connection baseline) —
//! token-serialized LASS at 8 nodes and broadcast-heavy Maddi at 16 —
//! and records, per backend, the two numbers the reactor work is judged
//! by:
//!
//! * **frames per CPU-second** (`wire_frames / process_cpu_time`) — the
//!   per-core throughput claim.  CPU time, not wall time: an 8-node
//!   cluster in one process overlaps its nodes on however many cores the
//!   machine has, so wall-based rates would mostly measure core count.
//! * **syscalls per frame** (`(read_calls + write_calls) / wire_frames`)
//!   — the coalescing claim.  One-frame-per-write transports sit at ≥ 2
//!   (one read + one write per frame); batched flushes push it below 1.
//!
//! A third measurement runs the reactor with the reliable session layer
//! and a 10% drop shim, so ack piggybacking/coalescing under loss has a
//! tracked data point too.
//!
//! Results land in `BENCH_net.json` at the repo root (same pattern as
//! `BENCH_engine.json`).  `MRA_FAST=1` (CI) shrinks the round quota; the
//! metrics are rates, so the mode only shifts warmup amortization.
//!
//! ```text
//! cargo bench -p mra-bench --bench bench_net
//! ```

use criterion::{criterion_group, criterion_main, Criterion};
use mra_baselines::Maddi;
use mra_bench::{write_bench_net_json, NetBenchEntry};
use mra_core::LassConfig;
use mra_net::sys::process_cpu_time;
use mra_net::{run_tcp_cluster, NetBackend, TcpClusterConfig};
use mra_protocol::faults::FaultPlan;
use mra_protocol::reliable::Reliability;
use mra_sim::FixedWorkload;
use mra_types::Time;

const M: usize = 16;

fn fast() -> bool {
    std::env::var("MRA_FAST").is_ok_and(|v| !v.is_empty() && v != "0")
}

fn workloads(n: usize) -> Vec<FixedWorkload> {
    // Near-zero think/CS: nodes re-request as fast as the transport can
    // carry tokens, so the measurement saturates the wire instead of
    // timing sleeps.  This is the "under load" regime the coalescing
    // claims are about — at idle rates the wakeup path dominates and both
    // backends pay roughly one syscall per frame.
    (0..n)
        .map(|_| FixedWorkload {
            think: Time::from_micros(5),
            cs: Time::from_micros(10),
            m: M,
            size: 3,
        })
        .collect()
}

#[derive(Clone, Copy)]
enum Algo {
    /// Token-passing: traffic is mostly serialized round-trips — the
    /// wakeup-dominated regime, the reactor's worst case.
    LassLoan,
    /// Broadcast-per-request: every node talks to every peer each cycle —
    /// concurrent traffic where coalescing and the thread-count gap show.
    Maddi,
}

struct Point {
    label: &'static str,
    algo: Algo,
    nodes: usize,
    rounds: usize,
    backend: NetBackend,
    lossy: bool,
}

fn backend_name(b: NetBackend) -> &'static str {
    match b {
        NetBackend::Reactor => "reactor",
        NetBackend::Threaded => "threaded",
    }
}

/// One measured cluster run: CPU-time delta around the whole run (the
/// cluster's threads all live in this process, and measurements are
/// sequential, so the delta is attributable).
fn run_once(p: &Point, seed: u64) -> NetBenchEntry {
    let rounds = if fast() { p.rounds / 4 } else { p.rounds };
    let cfg = TcpClusterConfig {
        backend: p.backend,
        faults: p.lossy.then(|| FaultPlan::new(0xFA17).drop_rate(0.1)),
        reliability: p.lossy.then(|| Reliability::with_rto(Time::from_millis(2))),
        ..TcpClusterConfig::new(rounds, seed)
    };
    let n = p.nodes;
    let cpu0 = process_cpu_time();
    let t0 = std::time::Instant::now();
    let res = match p.algo {
        Algo::LassLoan => {
            run_tcp_cluster(LassConfig::with_loan(n, M).build_nodes(), workloads(n), M, cfg)
        }
        Algo::Maddi => run_tcp_cluster(Maddi::build_nodes(n, M), workloads(n), M, cfg),
    };
    let wall_ns = t0.elapsed().as_nanos() as u64;
    let cpu_ns = process_cpu_time().saturating_sub(cpu0).as_nanos() as u64;
    assert_eq!(res.cs_completed, (n * rounds) as u64, "{}", p.label);

    let net = &res.obs.net;
    let wire = net.wire_frames_out();
    NetBenchEntry {
        scenario: p.label.to_string(),
        backend: backend_name(p.backend).to_string(),
        algo: res.algo.clone(),
        nodes: n,
        frames_out: net.frames_out,
        wire_frames: wire,
        write_calls: net.write_calls,
        read_calls: net.read_calls,
        wall_ns,
        cpu_ns,
        frames_per_sec_per_core: wire as f64 / (cpu_ns as f64 / 1e9),
        syscalls_per_frame: net.syscalls_per_frame().unwrap_or(f64::NAN),
        frames_per_write: net.frames_per_write().unwrap_or(f64::NAN),
        cs_completed: res.cs_completed,
    }
}

/// Best-of-repeats on the headline rate: the runs are short, so a single
/// sample swings with scheduler jitter; the best repeat is the
/// least-interference estimate of what the transport costs.
fn measure(p: &Point) -> NetBenchEntry {
    let reps = if fast() { 2 } else { 4 };
    (0..reps)
        .map(|i| run_once(p, 0xBE7_0000 + i as u64))
        .max_by(|a, b| {
            a.frames_per_sec_per_core
                .total_cmp(&b.frames_per_sec_per_core)
        })
        .expect("at least one repeat")
}

fn bench_net(c: &mut Criterion) {
    #[rustfmt::skip]
    let points = [
        Point { label: "lass_loan_8n_reactor", algo: Algo::LassLoan, nodes: 8, rounds: 80,
                backend: NetBackend::Reactor, lossy: false },
        Point { label: "lass_loan_8n_threaded", algo: Algo::LassLoan, nodes: 8, rounds: 80,
                backend: NetBackend::Threaded, lossy: false },
        Point { label: "maddi_16n_reactor", algo: Algo::Maddi, nodes: 16, rounds: 40,
                backend: NetBackend::Reactor, lossy: false },
        Point { label: "maddi_16n_threaded", algo: Algo::Maddi, nodes: 16, rounds: 40,
                backend: NetBackend::Threaded, lossy: false },
        Point { label: "lass_loan_8n_reactor_reliable_loss10", algo: Algo::LassLoan, nodes: 8,
                rounds: 80, backend: NetBackend::Reactor, lossy: true },
    ];
    let entries: Vec<NetBenchEntry> = points.iter().map(measure).collect();

    println!("transport throughput:");
    for e in &entries {
        println!(
            "  {:<40} {:>10.0} frames/s/core  {:>6.3} syscalls/frame  \
             {:>6.3} frames/write  ({} wire frames, {:.3}s wall)",
            e.scenario,
            e.frames_per_sec_per_core,
            e.syscalls_per_frame,
            e.frames_per_write,
            e.wire_frames,
            e.wall_ns as f64 / 1e9,
        );
    }

    // Criterion's `--test` smoke mode must not clobber the tracked file.
    if std::env::args().any(|a| a == "--test") {
        println!("[json] --test smoke mode: BENCH_net.json left untouched");
    } else {
        let mode = if fast() { "fast" } else { "full" };
        match write_bench_net_json(&entries, mode) {
            Ok(path) => println!("[json] wrote {}", path.display()),
            Err(e) => panic!("[json] FAILED to write BENCH_net.json: {e}"),
        }
    }

    // Criterion timings of a short run per backend for local comparisons.
    let mut group = c.benchmark_group("net");
    group.sample_size(10);
    for backend in [NetBackend::Reactor, NetBackend::Threaded] {
        group.bench_function(format!("lass_8n_{}", backend_name(backend)), |b| {
            b.iter(|| {
                let res = run_tcp_cluster(
                    LassConfig::with_loan(8, M).build_nodes(),
                    workloads(8),
                    M,
                    TcpClusterConfig { backend, ..TcpClusterConfig::new(3, 7) },
                );
                std::hint::black_box(res.cs_completed)
            })
        });
    }
    group.finish();
}

criterion_group!(benches, bench_net);
criterion_main!(benches);
