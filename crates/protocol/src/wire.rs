//! Hand-rolled binary wire codec for protocol messages.
//!
//! The build environment is offline, so there is no serde: every protocol
//! message type implements [`WireCodec`] by hand over a flat little-endian
//! byte format.  The format is deliberately boring:
//!
//! * fixed-width little-endian integers (`u8`/`u32`/`u64`);
//! * `f64` as its IEEE-754 bit pattern (NaN-preserving);
//! * ids (`NodeId`, `ResourceId`, lengths) as `u32` — the workspace caps
//!   both universes at 256, so 32 bits leave ample headroom;
//! * enums as a leading `u8` variant tag;
//! * sequences as a `u32` element count followed by the elements;
//! * sets ([`DynSet`], i.e. `ResourceSet`/`NodeSet`) as a `u32` word count
//!   followed by that many raw words, trailing zero words trimmed (see
//!   [`DynSet::to_words`]).  **Wire-format change note:** before the
//!   dynamic-set refactor, sets were `BitSet256` and encoded as exactly
//!   four raw words with no length prefix; the two formats are not
//!   interoperable.  The legacy fixed-width codec is retained on
//!   [`BitSet256`] itself for the parity tests.
//!
//! Codecs are *total on the encode side* and *validating on the decode
//! side*: [`WireCodec::decode`] returns [`DecodeError`] instead of
//! panicking on truncated or corrupt input, so a malformed frame can never
//! take a node down.  The law every implementation upholds (and the codec
//! proptests in `mra-net` check) is
//!
//! ```text
//! decode(encode(m)) == m      (and consumes exactly encode(m).len() bytes)
//! ```
//!
//! Framing (length prefixes on the wire, peer handshakes) is the
//! transport's job — see the `mra-net` crate.

use mra_types::{BitSet256, DynSet, Time};
use std::collections::VecDeque;
use std::fmt;

/// Decoding failure: the input was truncated or structurally invalid.
///
/// Carries enough context to debug a corrupt frame without dragging the
/// payload around.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum DecodeError {
    /// The input ended before the value was complete.
    Eof {
        /// What was being decoded when the input ran out.
        what: &'static str,
    },
    /// An enum tag byte had no matching variant.
    BadTag {
        /// The enum being decoded.
        what: &'static str,
        /// The offending tag value.
        tag: u8,
    },
    /// A length prefix exceeded the bytes remaining in the input.
    BadLen {
        /// The sequence being decoded.
        what: &'static str,
        /// The claimed element count.
        len: usize,
    },
}

impl fmt::Display for DecodeError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            DecodeError::Eof { what } => write!(f, "input truncated while decoding {what}"),
            DecodeError::BadTag { what, tag } => write!(f, "unknown {what} variant tag {tag}"),
            DecodeError::BadLen { what, len } => {
                write!(f, "{what} length {len} exceeds remaining input")
            }
        }
    }
}

impl std::error::Error for DecodeError {}

/// Cursor over an encoded byte slice.
///
/// All `get_*` methods advance the cursor and fail with
/// [`DecodeError::Eof`] on truncation.
pub struct WireReader<'a> {
    buf: &'a [u8],
    pos: usize,
}

impl<'a> WireReader<'a> {
    /// Start reading at the beginning of `buf`.
    pub fn new(buf: &'a [u8]) -> Self {
        WireReader { buf, pos: 0 }
    }

    /// Bytes not yet consumed.
    #[inline]
    pub fn remaining(&self) -> usize {
        self.buf.len() - self.pos
    }

    /// True when every input byte has been consumed (decoders of framed
    /// messages should check this: trailing garbage means a framing bug).
    #[inline]
    pub fn is_empty(&self) -> bool {
        self.remaining() == 0
    }

    fn take(&mut self, n: usize, what: &'static str) -> Result<&'a [u8], DecodeError> {
        if self.remaining() < n {
            return Err(DecodeError::Eof { what });
        }
        let s = &self.buf[self.pos..self.pos + n];
        self.pos += n;
        Ok(s)
    }

    /// Read one byte.
    pub fn get_u8(&mut self, what: &'static str) -> Result<u8, DecodeError> {
        Ok(self.take(1, what)?[0])
    }

    /// Read a little-endian `u32`.
    pub fn get_u32(&mut self, what: &'static str) -> Result<u32, DecodeError> {
        let b = self.take(4, what)?;
        Ok(u32::from_le_bytes([b[0], b[1], b[2], b[3]]))
    }

    /// Read a little-endian `u64`.
    pub fn get_u64(&mut self, what: &'static str) -> Result<u64, DecodeError> {
        let b = self.take(8, what)?;
        let mut a = [0u8; 8];
        a.copy_from_slice(b);
        Ok(u64::from_le_bytes(a))
    }

    /// Read an `f64` from its bit pattern.
    pub fn get_f64(&mut self, what: &'static str) -> Result<f64, DecodeError> {
        Ok(f64::from_bits(self.get_u64(what)?))
    }

    /// Read an id or count stored as `u32` (the format for `usize` values).
    pub fn get_usize(&mut self, what: &'static str) -> Result<usize, DecodeError> {
        Ok(self.get_u32(what)? as usize)
    }

    /// Read a bool stored as one byte (0 or 1; anything else is a bad tag).
    pub fn get_bool(&mut self, what: &'static str) -> Result<bool, DecodeError> {
        match self.get_u8(what)? {
            0 => Ok(false),
            1 => Ok(true),
            tag => Err(DecodeError::BadTag { what, tag }),
        }
    }

    /// Read a `u32` element count and validate it against the remaining
    /// input, assuming each element costs at least `min_elem_bytes` bytes.
    /// Prevents a corrupt length prefix from triggering a huge allocation.
    pub fn get_len(
        &mut self,
        min_elem_bytes: usize,
        what: &'static str,
    ) -> Result<usize, DecodeError> {
        let len = self.get_usize(what)?;
        if len.saturating_mul(min_elem_bytes.max(1)) > self.remaining() {
            return Err(DecodeError::BadLen { what, len });
        }
        Ok(len)
    }
}

/// Append a little-endian `u32` to `out`.
#[inline]
pub fn put_u32(out: &mut Vec<u8>, v: u32) {
    out.extend_from_slice(&v.to_le_bytes());
}

/// Append a little-endian `u64` to `out`.
#[inline]
pub fn put_u64(out: &mut Vec<u8>, v: u64) {
    out.extend_from_slice(&v.to_le_bytes());
}

/// Append an `f64` bit pattern to `out`.
#[inline]
pub fn put_f64(out: &mut Vec<u8>, v: f64) {
    put_u64(out, v.to_bits());
}

/// Append a `usize` as `u32` (ids and counts; the workspace universe is
/// capped at 256 so this never truncates in practice — asserted anyway).
#[inline]
pub fn put_usize(out: &mut Vec<u8>, v: usize) {
    debug_assert!(v <= u32::MAX as usize, "usize {v} exceeds wire width");
    put_u32(out, v as u32);
}

/// Append a bool as one byte.
#[inline]
pub fn put_bool(out: &mut Vec<u8>, v: bool) {
    out.push(v as u8);
}

/// A type with a self-describing binary wire encoding.
///
/// Implemented for every protocol message in `mra-core`, `mra-mutex` and
/// `mra-baselines`, plus the primitives and containers they are built
/// from.  `encode ∘ decode` must be the identity, and `decode` must
/// consume exactly the bytes `encode` produced.
pub trait WireCodec: Sized {
    /// Append this value's encoding to `out`.
    fn encode(&self, out: &mut Vec<u8>);

    /// Decode one value, advancing the reader past its bytes.
    fn decode(r: &mut WireReader<'_>) -> Result<Self, DecodeError>;

    /// Encode into a fresh buffer (convenience).
    fn to_bytes(&self) -> Vec<u8> {
        let mut out = Vec::new();
        self.encode(&mut out);
        out
    }

    /// Decode from a complete buffer, rejecting trailing bytes.
    fn from_bytes(buf: &[u8]) -> Result<Self, DecodeError> {
        let mut r = WireReader::new(buf);
        let v = Self::decode(&mut r)?;
        if !r.is_empty() {
            return Err(DecodeError::BadLen {
                what: "trailing bytes after message",
                len: r.remaining(),
            });
        }
        Ok(v)
    }
}

impl WireCodec for () {
    fn encode(&self, _out: &mut Vec<u8>) {}

    fn decode(_r: &mut WireReader<'_>) -> Result<Self, DecodeError> {
        Ok(())
    }
}

impl WireCodec for u64 {
    fn encode(&self, out: &mut Vec<u8>) {
        put_u64(out, *self);
    }

    fn decode(r: &mut WireReader<'_>) -> Result<Self, DecodeError> {
        r.get_u64("u64")
    }
}

impl WireCodec for usize {
    fn encode(&self, out: &mut Vec<u8>) {
        put_usize(out, *self);
    }

    fn decode(r: &mut WireReader<'_>) -> Result<Self, DecodeError> {
        r.get_usize("usize")
    }
}

impl WireCodec for f64 {
    fn encode(&self, out: &mut Vec<u8>) {
        put_f64(out, *self);
    }

    fn decode(r: &mut WireReader<'_>) -> Result<Self, DecodeError> {
        r.get_f64("f64")
    }
}

impl WireCodec for Time {
    fn encode(&self, out: &mut Vec<u8>) {
        put_u64(out, self.as_nanos());
    }

    fn decode(r: &mut WireReader<'_>) -> Result<Self, DecodeError> {
        Ok(Time::from_nanos(r.get_u64("Time")?))
    }
}

impl WireCodec for BitSet256 {
    fn encode(&self, out: &mut Vec<u8>) {
        for w in self.to_words() {
            put_u64(out, w);
        }
    }

    fn decode(r: &mut WireReader<'_>) -> Result<Self, DecodeError> {
        let mut words = [0u64; 4];
        for w in &mut words {
            *w = r.get_u64("BitSet256")?;
        }
        Ok(BitSet256::from_words(words))
    }
}

impl WireCodec for DynSet {
    fn encode(&self, out: &mut Vec<u8>) {
        let words = self.to_words();
        put_usize(out, words.len());
        for w in words {
            put_u64(out, w);
        }
    }

    fn decode(r: &mut WireReader<'_>) -> Result<Self, DecodeError> {
        let len = r.get_len(8, "DynSet")?;
        let mut words = vec![0u64; len];
        for w in &mut words {
            *w = r.get_u64("DynSet")?;
        }
        Ok(DynSet::from_words(&words))
    }
}

impl<T: WireCodec> WireCodec for Vec<T> {
    fn encode(&self, out: &mut Vec<u8>) {
        put_usize(out, self.len());
        for x in self {
            x.encode(out);
        }
    }

    fn decode(r: &mut WireReader<'_>) -> Result<Self, DecodeError> {
        let len = r.get_len(1, "Vec")?;
        let mut v = Vec::with_capacity(len);
        for _ in 0..len {
            v.push(T::decode(r)?);
        }
        Ok(v)
    }
}

impl<T: WireCodec> WireCodec for VecDeque<T> {
    fn encode(&self, out: &mut Vec<u8>) {
        put_usize(out, self.len());
        for x in self {
            x.encode(out);
        }
    }

    fn decode(r: &mut WireReader<'_>) -> Result<Self, DecodeError> {
        let len = r.get_len(1, "VecDeque")?;
        let mut v = VecDeque::with_capacity(len);
        for _ in 0..len {
            v.push_back(T::decode(r)?);
        }
        Ok(v)
    }
}

impl<T: WireCodec> WireCodec for Option<T> {
    fn encode(&self, out: &mut Vec<u8>) {
        match self {
            None => out.push(0),
            Some(x) => {
                out.push(1);
                x.encode(out);
            }
        }
    }

    fn decode(r: &mut WireReader<'_>) -> Result<Self, DecodeError> {
        match r.get_u8("Option")? {
            0 => Ok(None),
            1 => Ok(Some(T::decode(r)?)),
            tag => Err(DecodeError::BadTag { what: "Option", tag }),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn roundtrip<T: WireCodec + PartialEq + fmt::Debug>(v: T) {
        let bytes = v.to_bytes();
        assert_eq!(T::from_bytes(&bytes).unwrap(), v);
    }

    #[test]
    fn primitives_roundtrip() {
        roundtrip(0u64);
        roundtrip(u64::MAX);
        roundtrip(42usize);
        roundtrip(1.5f64);
        roundtrip(Time::from_millis(7));
        roundtrip(());
        // NaN survives via the bit pattern (compare bits, not values).
        let nan_bytes = f64::NAN.to_bytes();
        assert!(f64::from_bytes(&nan_bytes).unwrap().is_nan());
    }

    #[test]
    fn containers_roundtrip() {
        roundtrip(vec![1u64, 2, 3]);
        roundtrip(Vec::<u64>::new());
        roundtrip(VecDeque::from([4usize, 5]));
        roundtrip(Some(9u64));
        roundtrip(Option::<u64>::None);
        roundtrip(BitSet256::full(256));
        roundtrip(BitSet256::EMPTY);
        roundtrip([0usize, 63, 64, 255].into_iter().collect::<BitSet256>());
    }

    #[test]
    fn dynset_roundtrip_is_length_prefixed() {
        roundtrip(DynSet::EMPTY);
        roundtrip(DynSet::full(80));
        roundtrip(DynSet::full(1000));
        roundtrip([0usize, 63, 64, 255, 256, 99_999].into_iter().collect::<DynSet>());
        // The empty set costs exactly the 4-byte length prefix; a small set
        // costs prefix + one word — not the fixed 32 bytes of BitSet256.
        assert_eq!(DynSet::EMPTY.to_bytes().len(), 4);
        assert_eq!(DynSet::singleton(3).to_bytes().len(), 4 + 8);
        assert_eq!(BitSet256::EMPTY.to_bytes().len(), 32);
    }

    #[test]
    fn dynset_corrupt_word_count_rejected() {
        let mut bytes = Vec::new();
        put_u32(&mut bytes, 1000); // claims 1000 words, provides none
        assert!(matches!(
            DynSet::from_bytes(&bytes),
            Err(DecodeError::BadLen { .. })
        ));
    }

    #[test]
    fn truncated_input_is_an_error() {
        let bytes = 7u64.to_bytes();
        assert_eq!(
            u64::from_bytes(&bytes[..5]),
            Err(DecodeError::Eof { what: "u64" })
        );
    }

    #[test]
    fn trailing_bytes_rejected() {
        let mut bytes = 7u64.to_bytes();
        bytes.push(0);
        assert!(matches!(
            u64::from_bytes(&bytes),
            Err(DecodeError::BadLen { .. })
        ));
    }

    #[test]
    fn corrupt_length_prefix_rejected() {
        // Claims 2^31 elements with 4 bytes of payload.
        let mut bytes = Vec::new();
        put_u32(&mut bytes, u32::MAX / 2);
        put_u32(&mut bytes, 0);
        assert!(matches!(
            Vec::<u64>::from_bytes(&bytes),
            Err(DecodeError::BadLen { .. })
        ));
    }

    #[test]
    fn bad_option_tag_rejected() {
        assert_eq!(
            Option::<u64>::from_bytes(&[3]),
            Err(DecodeError::BadTag { what: "Option", tag: 3 })
        );
    }

    #[test]
    fn bool_roundtrip_and_validation() {
        let mut out = Vec::new();
        put_bool(&mut out, true);
        put_bool(&mut out, false);
        let mut r = WireReader::new(&out);
        assert!(r.get_bool("b").unwrap());
        assert!(!r.get_bool("b").unwrap());
        assert!(r.is_empty());
        let mut r = WireReader::new(&[7]);
        assert!(matches!(r.get_bool("b"), Err(DecodeError::BadTag { .. })));
    }
}
