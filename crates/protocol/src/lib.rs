//! Engine-independent protocol API.
//!
//! Every allocation algorithm in this workspace (the paper's LASS algorithm
//! and all baselines) is written as a *pure message-driven state machine*
//! implementing [`Allocator`].  Handlers never talk to a network or a clock
//! directly: they receive a [`Ctx`] that buffers outgoing messages and
//! records a "granted" signal.  This makes the same protocol code runnable
//! under four substrates without modification:
//!
//! 1. [`testkit::VirtualNet`] — a synchronous, randomized-interleaving
//!    network used for unit tests and property-based safety/liveness tests;
//! 2. `mra-sim`'s discrete-event simulator — adds virtual time, link
//!    latencies and the paper's workload model (the substrate used for all
//!    figure reproductions);
//! 3. `mra-sim`'s threaded runtime — real OS threads and `std::sync::mpsc` channels;
//! 4. `mra-net`'s TCP transport — real sockets, one process or many, using
//!    the [`wire`] codecs to put messages on an actual wire.

pub mod faults;
pub mod reliable;
pub mod testkit;
pub mod wire;

pub use faults::{FaultPlan, FaultStats, LinkFaults};
pub use reliable::{Reliability, ReliabilityStats};
pub use wire::{DecodeError, WireCodec, WireReader};

use mra_types::{NodeId, ResourceSet, Time};
use std::fmt;

/// The four states of a process (paper Fig. 2).
///
/// * `Idle` — not requesting.
/// * `WaitS` — waiting for the requested counter values (LASS only; other
///   algorithms go straight to `WaitCS`).
/// * `WaitCS` — waiting for the right to access all requested resources.
/// * `InCS` — executing the critical section.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub enum ProcState {
    Idle,
    WaitS,
    WaitCS,
    InCS,
}

impl fmt::Display for ProcState {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let s = match self {
            ProcState::Idle => "idle",
            ProcState::WaitS => "waitS",
            ProcState::WaitCS => "waitCS",
            ProcState::InCS => "inCS",
        };
        f.write_str(s)
    }
}

/// Metadata every wire message must expose so that engines can account for
/// message complexity without knowing concrete protocol types.
pub trait WireMsg: Clone + fmt::Debug + Send + 'static {
    /// Stable short name of the message kind (e.g. `"ReqCnt"`, `"Token"`),
    /// used to aggregate per-kind message counts.
    fn kind(&self) -> &'static str;

    /// Approximate payload size in integer-sized units.  Only used for the
    /// message-volume metric; the default of 1 suits fixed-size messages.
    fn weight(&self) -> usize {
        1
    }
}

/// Execution context handed to every protocol handler invocation.
///
/// Collects outgoing messages (the engine drains them after the handler
/// returns, preserving send order on each link) and the `granted` edge
/// signal raised when the process enters its critical section.
#[derive(Clone)]
pub struct Ctx<M> {
    now: Time,
    me: NodeId,
    n_nodes: usize,
    granted: bool,
    outbox: Vec<(NodeId, M)>,
}

impl<M> Ctx<M> {
    /// Create a context for node `me` in a system of `n_nodes` nodes.
    pub fn new(me: NodeId, n_nodes: usize) -> Self {
        assert!(me < n_nodes, "node id {me} out of range 0..{n_nodes}");
        Ctx {
            now: Time::ZERO,
            me,
            n_nodes,
            granted: false,
            outbox: Vec::new(),
        }
    }

    /// Current time.  Under `VirtualNet` this is a step counter; under the
    /// simulator it is virtual time; under the threaded runtime, wall time.
    #[inline]
    pub fn now(&self) -> Time {
        self.now
    }

    /// Set the current time (engine-side; protocols only read it).
    #[inline]
    pub fn set_now(&mut self, t: Time) {
        self.now = t;
    }

    /// This node's identifier.
    #[inline]
    pub fn me(&self) -> NodeId {
        self.me
    }

    /// Total number of nodes.
    #[inline]
    pub fn n_nodes(&self) -> usize {
        self.n_nodes
    }

    /// Queue `msg` for delivery to `to`.
    ///
    /// Self-sends are a protocol bug (every algorithm here short-circuits
    /// local decisions), so they panic in all builds.
    #[inline]
    pub fn send(&mut self, to: NodeId, msg: M) {
        assert!(to < self.n_nodes, "send to unknown node {to}");
        assert!(to != self.me, "protocol bug: node {} sent a message to itself", self.me);
        self.outbox.push((to, msg));
    }

    /// Queue `msg` for every node except `me` (used by broadcast-based
    /// algorithms such as the Maddi baseline).
    pub fn broadcast(&mut self, msg: M)
    where
        M: Clone,
    {
        for to in 0..self.n_nodes {
            if to != self.me {
                self.outbox.push((to, msg.clone()));
            }
        }
    }

    /// Signal that this process has just entered its critical section.
    ///
    /// Raised at most once per request; engines turn the edge into workload
    /// bookkeeping (start of CS hold timer, waiting-time metric).
    #[inline]
    pub fn grant(&mut self) {
        self.granted = true;
    }

    /// Engine-side: consume the granted edge, resetting it.
    #[inline]
    pub fn take_granted(&mut self) -> bool {
        std::mem::replace(&mut self.granted, false)
    }

    /// Engine-side: drain the queued outgoing messages in send order.
    ///
    /// Allocates a fresh `Vec` per call; engine hot loops should prefer
    /// [`Ctx::drain_outbox_into`], which reuses a caller-owned buffer.
    #[inline]
    pub fn take_outbox(&mut self) -> Vec<(NodeId, M)> {
        std::mem::take(&mut self.outbox)
    }

    /// Engine-side: move the queued outgoing messages into `buf` in send
    /// order, leaving the internal outbox empty but with its capacity
    /// intact.  Steady-state dispatch thus performs no heap allocation
    /// once both buffers are warm.  For engines whose send path does not
    /// need the `Ctx` borrow released, [`Ctx::drain_outbox`] avoids even
    /// the buffer hand-off.
    #[inline]
    pub fn drain_outbox_into(&mut self, buf: &mut Vec<(NodeId, M)>) {
        buf.append(&mut self.outbox);
    }

    /// Engine-side: drain the queued outgoing messages in place, in send
    /// order.  The outbox itself is the reused buffer — its capacity
    /// survives the drain — so this is the cheapest dispatch path: no
    /// allocation, no copy into a side buffer.
    #[inline]
    pub fn drain_outbox(&mut self) -> std::vec::Drain<'_, (NodeId, M)> {
        self.outbox.drain(..)
    }

    /// True if there are buffered outgoing messages (test helper).
    #[inline]
    pub fn has_output(&self) -> bool {
        !self.outbox.is_empty()
    }
}

/// A distributed multi-resource allocation protocol instance (one per node).
///
/// # Contract
///
/// * `request` may only be called in state `Idle`; `release` only in `InCS`
///   (the paper's hypothesis 4: one outstanding request per process).
/// * The protocol signals CS entry by calling [`Ctx::grant`] — either
///   synchronously inside `request` (everything locally available) or later
///   inside `on_message`.
/// * Handlers must not block; all waiting is encoded in protocol state.
pub trait Allocator {
    /// The protocol's wire message type.
    type Msg: WireMsg;

    /// Called once before any message flows (e.g. initial token placement).
    fn on_init(&mut self, ctx: &mut Ctx<Self::Msg>);

    /// Deliver one message from `from`.
    fn on_message(&mut self, ctx: &mut Ctx<Self::Msg>, from: NodeId, msg: Self::Msg);

    /// Ask for exclusive access to `resources` (the paper's `Request_CS`).
    fn request(&mut self, ctx: &mut Ctx<Self::Msg>, resources: ResourceSet);

    /// Leave the critical section and release all resources
    /// (the paper's `Release_CS`).
    fn release(&mut self, ctx: &mut Ctx<Self::Msg>);

    /// Current process state.
    fn state(&self) -> ProcState;

    /// Short algorithm name for reports (e.g. `"lass+loan"`).
    fn name(&self) -> &'static str;
}

#[cfg(test)]
mod tests {
    use super::*;

    #[derive(Clone, Debug)]
    struct Ping;
    impl WireMsg for Ping {
        fn kind(&self) -> &'static str {
            "Ping"
        }
    }

    #[test]
    fn ctx_buffers_sends_in_order() {
        let mut ctx: Ctx<Ping> = Ctx::new(0, 3);
        ctx.send(1, Ping);
        ctx.send(2, Ping);
        ctx.send(1, Ping);
        let out = ctx.take_outbox();
        assert_eq!(out.iter().map(|(to, _)| *to).collect::<Vec<_>>(), vec![1, 2, 1]);
        assert!(!ctx.has_output());
    }

    #[test]
    fn drain_into_reuses_buffer_and_keeps_capacity() {
        let mut ctx: Ctx<Ping> = Ctx::new(0, 3);
        let mut buf: Vec<(usize, Ping)> = Vec::new();
        ctx.send(1, Ping);
        ctx.send(2, Ping);
        ctx.drain_outbox_into(&mut buf);
        assert_eq!(buf.iter().map(|(to, _)| *to).collect::<Vec<_>>(), vec![1, 2]);
        assert!(!ctx.has_output());
        let outbox_cap = ctx.outbox.capacity();
        assert!(outbox_cap >= 2, "drained outbox must keep its capacity");
        buf.clear();
        // Second round: neither side needs to grow again.
        ctx.send(2, Ping);
        ctx.drain_outbox_into(&mut buf);
        assert_eq!(ctx.outbox.capacity(), outbox_cap);
        assert_eq!(buf.len(), 1);
        assert!(buf.capacity() >= 2);
    }

    #[test]
    fn drain_outbox_iterates_in_send_order_and_keeps_capacity() {
        let mut ctx: Ctx<Ping> = Ctx::new(0, 4);
        ctx.send(1, Ping);
        ctx.send(3, Ping);
        ctx.send(2, Ping);
        let cap = ctx.outbox.capacity();
        let to: Vec<usize> = ctx.drain_outbox().map(|(t, _)| t).collect();
        assert_eq!(to, vec![1, 3, 2]);
        assert!(!ctx.has_output());
        assert_eq!(ctx.outbox.capacity(), cap);
    }

    #[test]
    #[should_panic(expected = "itself")]
    fn ctx_rejects_self_send() {
        let mut ctx: Ctx<Ping> = Ctx::new(1, 3);
        ctx.send(1, Ping);
    }

    #[test]
    fn granted_is_an_edge() {
        let mut ctx: Ctx<Ping> = Ctx::new(0, 2);
        assert!(!ctx.take_granted());
        ctx.grant();
        assert!(ctx.take_granted());
        assert!(!ctx.take_granted());
    }

    #[test]
    fn broadcast_reaches_everyone_but_self() {
        let mut ctx: Ctx<Ping> = Ctx::new(1, 4);
        ctx.broadcast(Ping);
        let to: Vec<_> = ctx.take_outbox().into_iter().map(|(t, _)| t).collect();
        assert_eq!(to, vec![0, 2, 3]);
    }
}
