//! A synchronous virtual network with randomized message interleaving.
//!
//! `VirtualNet` is the workhorse for protocol unit tests and property-based
//! tests: it delivers messages one at a time in a (seeded) random order while
//! preserving per-link FIFO, checks the *safety* property on every critical
//! section entry (no two processes ever hold the same resource), and detects
//! deadlocks (*liveness* failures) as stalls with pending requests.
//!
//! There is no notion of time here — only causality and interleaving — which
//! makes it ideal for exploring protocol corner cases that a timed simulator
//! would rarely hit.

use crate::faults::{FaultPlan, FaultState, FaultStats, FrameFate};
use crate::reliable::{Packet, Reliability, ReliabilityStats, ReliableState};
use crate::{Allocator, Ctx, ProcState, WireMsg};
use mra_obs::{EngineTracer, EventKind, ObsReport, TraceMode};
use mra_types::{NodeId, ResourceSet, Time};
use rand::rngs::StdRng;
use rand::Rng;
use std::collections::VecDeque;

/// Records who is inside a critical section with which resources and panics
/// on any exclusivity violation.  Shared by the test network and reusable by
/// other engines.
#[derive(Clone, Debug)]
pub struct SafetyMonitor {
    holder: Vec<Option<NodeId>>,
    in_cs: Vec<Option<ResourceSet>>,
    /// Total number of critical sections entered so far.
    pub cs_entered: u64,
}

impl SafetyMonitor {
    /// Monitor for `n` nodes and `m` resources.
    pub fn new(n: usize, m: usize) -> Self {
        SafetyMonitor {
            holder: vec![None; m],
            in_cs: vec![None; n],
            cs_entered: 0,
        }
    }

    /// Register node `who` entering its CS holding `set`.
    ///
    /// # Panics
    /// If any resource in `set` is already held: that is a violation of the
    /// paper's safety property (Theorem 1).
    pub fn enter(&mut self, who: NodeId, set: ResourceSet) {
        assert!(
            self.in_cs[who].is_none(),
            "node {who} entered CS twice without releasing"
        );
        for r in set.iter() {
            if let Some(other) = self.holder[r] {
                panic!(
                    "SAFETY VIOLATION: resource {r} granted to node {who} \
                     while still held by node {other}"
                );
            }
            self.holder[r] = Some(who);
        }
        self.in_cs[who] = Some(set);
        self.cs_entered += 1;
    }

    /// Register node `who` leaving its CS.
    ///
    /// # Panics
    /// If `who` was not in CS, or if the holder table disagrees about any
    /// released resource.  The holder check is a *real* assert (not
    /// `debug_assert`): release-mode runs — the TCP cluster tests build in
    /// release — must not silently pass through a corrupted holder table.
    pub fn exit(&mut self, who: NodeId) {
        let set = self.in_cs[who]
            .take()
            .unwrap_or_else(|| panic!("node {who} released without being in CS"));
        for r in set.iter() {
            assert_eq!(
                self.holder[r],
                Some(who),
                "HOLDER CORRUPTION: node {who} releasing resource {r} it does not hold"
            );
            self.holder[r] = None;
        }
    }

    /// Is `who` currently inside its CS?
    pub fn is_in_cs(&self, who: NodeId) -> bool {
        self.in_cs[who].is_some()
    }

    /// The set held by `who`, if it is in CS.
    pub fn held_by(&self, who: NodeId) -> Option<ResourceSet> {
        self.in_cs[who].clone()
    }

    /// Number of nodes currently in CS.
    pub fn concurrency(&self) -> usize {
        self.in_cs.iter().filter(|s| s.is_some()).count()
    }

    /// Number of resources currently marked held.
    pub fn held_resources(&self) -> usize {
        self.holder.iter().filter(|h| h.is_some()).count()
    }

    /// Assert the conservation invariant of granted resources: every held
    /// resource belongs to exactly the node the CS table says is inside
    /// with it, and vice versa.  At quiescence (nobody in CS) this proves
    /// no granted resource leaked.
    ///
    /// # Panics
    /// On any holder/CS-table disagreement.
    pub fn assert_conservation(&self) {
        for (r, h) in self.holder.iter().enumerate() {
            if let Some(w) = h {
                let ok = self.in_cs[*w].as_ref().is_some_and(|set| set.contains(r));
                assert!(
                    ok,
                    "RESOURCE LEAK: resource {r} marked held by node {w}, \
                     which is not in CS with it"
                );
            }
        }
        for (w, s) in self.in_cs.iter().enumerate() {
            if let Some(set) = s {
                for r in set.iter() {
                    assert_eq!(
                        self.holder[r],
                        Some(w),
                        "RESOURCE LEAK: node {w} in CS with resource {r} \
                         not attributed to it in the holder table"
                    );
                }
            }
        }
    }
}

/// Fixed-size message of the [`EchoProbe`] pseudo-protocol.
#[derive(Clone, Copy, Debug)]
pub struct EchoPing(pub u64);

impl crate::WireMsg for EchoPing {
    fn kind(&self) -> &'static str {
        "Ping"
    }
}

/// A minimal message-driven state machine for engine probes: node 0 seeds
/// `fan` pings per peer on init, and every node echoes whatever it
/// receives back to the sender.  It never requests and never grants, so
/// an engine driving it with no active workload processes a pure stream
/// of message deliveries — the measurement surface for the engine-floor
/// benchmark and the zero-allocation dispatch guard.
pub struct EchoProbe {
    me: NodeId,
    fan: u64,
}

impl EchoProbe {
    /// One probe node; node 0 starts `fan` balls per peer.
    pub fn new(me: NodeId, fan: u64) -> Self {
        EchoProbe { me, fan }
    }
}

impl Allocator for EchoProbe {
    type Msg = EchoPing;

    fn on_init(&mut self, ctx: &mut Ctx<EchoPing>) {
        if self.me == 0 {
            for peer in 1..ctx.n_nodes() {
                for k in 0..self.fan {
                    ctx.send(peer, EchoPing(k));
                }
            }
        }
    }

    fn on_message(&mut self, ctx: &mut Ctx<EchoPing>, from: NodeId, msg: EchoPing) {
        ctx.send(from, EchoPing(msg.0 + 1));
    }

    fn request(&mut self, _ctx: &mut Ctx<EchoPing>, _resources: ResourceSet) {
        unreachable!("probe nodes never request");
    }

    fn release(&mut self, _ctx: &mut Ctx<EchoPing>) {
        unreachable!("probe nodes never release");
    }

    fn state(&self) -> ProcState {
        ProcState::Idle
    }

    fn name(&self) -> &'static str {
        "echo-probe"
    }
}

/// Per-node bookkeeping inside the virtual network.
struct Slot<A: Allocator> {
    proto: A,
    ctx: Ctx<A::Msg>,
    /// The resource set of the outstanding request, if any.
    pending: Option<ResourceSet>,
}

/// A synchronous network of `Allocator` nodes with per-link FIFO queues and
/// externally driven, randomized delivery.
pub struct VirtualNet<A: Allocator> {
    slots: Vec<Slot<A>>,
    /// `links[src * n + dst]`: FIFO queue of in-flight session frames
    /// ([`Packet::Plain`] when reliability is off), each carrying the
    /// Lamport stamp its sender's tracer minted (0 when tracing is
    /// disarmed, and on standalone ack frames, which are untraced).
    links: Vec<VecDeque<(u64, Packet<A::Msg>)>>,
    n: usize,
    steps: u64,
    delivered: u64,
    /// Installed fault layer, if any (queue-pop injection).
    faults: Option<FaultState>,
    /// Installed reliable-delivery session layer, if any.
    reliable: Option<ReliableState<A::Msg>>,
    /// Causal tracer; a disarmed no-op unless [`VirtualNet::arm_tracing`]
    /// was called.  Keys events by the step counter (the network's only
    /// clock).
    tracer: EngineTracer,
    /// Safety monitor; public so tests can inspect concurrency.
    pub monitor: SafetyMonitor,
}

impl<A: Allocator> VirtualNet<A> {
    /// Build a network from one protocol instance per node and run
    /// `on_init` on each.
    pub fn new(nodes: Vec<A>, m: usize) -> Self {
        let n = nodes.len();
        let mut slots: Vec<Slot<A>> = nodes
            .into_iter()
            .enumerate()
            .map(|(i, proto)| Slot {
                proto,
                ctx: Ctx::new(i, n),
                pending: None,
            })
            .collect();
        let mut net = VirtualNet {
            links: (0..n * n).map(|_| VecDeque::new()).collect(),
            n,
            steps: 0,
            delivered: 0,
            faults: None,
            reliable: None,
            tracer: EngineTracer::disarmed(),
            monitor: SafetyMonitor::new(n, m),
            slots: Vec::new(),
        };
        for (i, slot) in slots.iter_mut().enumerate() {
            slot.ctx.set_now(Time::ZERO);
            slot.proto.on_init(&mut slot.ctx);
            assert!(
                !slot.ctx.take_granted(),
                "node {i} granted during on_init"
            );
        }
        net.slots = slots;
        // Drain any initialization messages.
        for i in 0..n {
            net.flush_outbox(i);
        }
        net
    }

    /// Number of nodes.
    pub fn len(&self) -> usize {
        self.n
    }

    /// True if the network has no nodes.
    pub fn is_empty(&self) -> bool {
        self.n == 0
    }

    /// Immutable access to a node's protocol state (for invariant checks).
    pub fn node(&self, i: NodeId) -> &A {
        &self.slots[i].proto
    }

    /// Current protocol state of node `i`.
    pub fn state(&self, i: NodeId) -> ProcState {
        self.slots[i].proto.state()
    }

    /// Is node `i` in its critical section (as observed by the monitor)?
    pub fn in_cs(&self, i: NodeId) -> bool {
        self.monitor.is_in_cs(i)
    }

    /// Number of messages currently in flight.
    pub fn in_flight(&self) -> usize {
        self.links.iter().map(|q| q.len()).sum()
    }

    /// Total messages delivered so far.
    pub fn delivered(&self) -> u64 {
        self.delivered
    }

    /// Install a fault plan: from now on every queue-pop runs through its
    /// per-link drop/duplicate filter (time-based faults — partitions,
    /// outages — do not apply here: the virtual network has no clock).
    pub fn install_faults(&mut self, plan: &FaultPlan) {
        self.faults = Some(FaultState::new(plan.clone(), self.n));
    }

    /// Arm causal tracing.  Events are keyed by the step counter — the
    /// network's only clock — so equal seeds give byte-identical traces.
    /// Messages already in flight (`on_init` token placement ran inside
    /// [`VirtualNet::new`], before arming was possible) are retroactively
    /// stamped with synthetic send events, so the causal checker sees a
    /// complete log.
    pub fn arm_tracing(&mut self, mode: TraceMode) {
        if mode == TraceMode::Off {
            return;
        }
        self.tracer = EngineTracer::armed(self.n, mode);
        self.tracer.set_key(Time::ZERO, 0);
        let tracer = &mut self.tracer;
        for (l, queue) in self.links.iter_mut().enumerate() {
            let (src, dst) = (l / self.n, l % self.n);
            for (stamp, packet) in queue.iter_mut() {
                let msg = match packet {
                    Packet::Plain(msg) => msg,
                    Packet::Data { msg, .. } => msg,
                    Packet::Ack { .. } => continue, // acks stay untraced
                };
                *stamp = tracer.on_send(src, dst, msg.kind(), msg.weight() as u32, None);
            }
        }
    }

    /// Take the tracer out and fold it into an [`ObsReport`] (disarmed
    /// default when tracing was never armed).  The net keeps running, but
    /// untraced from here on.
    pub fn take_obs(&mut self) -> ObsReport {
        std::mem::take(&mut self.tracer).finish()
    }

    /// The installed fault plan, if any.
    pub fn fault_plan(&self) -> Option<&FaultPlan> {
        self.faults.as_ref().map(|f| f.plan())
    }

    /// Fault counters accumulated so far (zero when no plan is installed).
    pub fn fault_stats(&self) -> FaultStats {
        self.faults.as_ref().map(|f| f.stats).unwrap_or_default()
    }

    /// Enable the reliable-delivery session layer: every subsequent send is
    /// sequenced into a per-link session ([`crate::reliable`]), receivers
    /// dedup and ack, and [`VirtualNet::retransmit_all`] re-emits unacked
    /// frames — together upgrading a lossy fault plan back to exactly-once
    /// FIFO delivery.  Messages already in flight (e.g. `on_init` token
    /// placement) are retroactively sequenced so they are protected too.
    pub fn enable_reliability(&mut self, cfg: Reliability) {
        assert!(self.reliable.is_none(), "reliability enabled twice");
        let mut st = ReliableState::new(cfg, self.n);
        for (l, queue) in self.links.iter_mut().enumerate() {
            let (src, dst) = (l / self.n, l % self.n);
            for (_, packet) in queue.iter_mut() {
                if let Packet::Plain(msg) = packet {
                    let (seq, ack) = st.on_send(src, dst, msg, Time::ZERO);
                    let msg = msg.clone();
                    *packet = Packet::Data { seq, ack, msg };
                }
            }
        }
        self.reliable = Some(st);
    }

    /// Is the session layer installed?
    pub fn reliability_on(&self) -> bool {
        self.reliable.is_some()
    }

    /// Session-layer counters accumulated so far (zero when disabled).
    pub fn reliability_stats(&self) -> ReliabilityStats {
        self.reliable.as_ref().map(|r| r.stats).unwrap_or_default()
    }

    /// Re-enqueue every unacknowledged session frame on its link — the
    /// clockless analogue of all retransmit timers expiring at once.  The
    /// scheduler calls this when the network is otherwise stuck; the
    /// re-emitted frames run through the fault filter again on delivery,
    /// so under any drop rate `< 1.0` repeated calls eventually get every
    /// frame through.  Returns the number of frames re-enqueued (0 when
    /// reliability is off or everything is acked).
    pub fn retransmit_all(&mut self) -> usize {
        let Some(st) = self.reliable.as_mut() else {
            return 0;
        };
        let links = &mut self.links;
        let tracer = &mut self.tracer;
        let n = self.n;
        st.retransmit_all(|from, to, packet| {
            // Each re-emitted copy is a distinct wire event: it gets a
            // fresh stamp (matching the simulator's RTO path).
            let stamp = match &packet {
                Packet::Data { msg, .. } => {
                    tracer.on_retransmit(from, to, msg.kind(), msg.weight() as u32)
                }
                _ => 0,
            };
            links[from * n + to].push_back((stamp, packet));
        })
    }

    /// Issue a request for `set` from node `i`.
    ///
    /// # Panics
    /// If `i` already has an outstanding request, or on a safety violation
    /// (when the grant happens synchronously).
    pub fn request(&mut self, i: NodeId, set: ResourceSet) {
        assert!(
            self.slots[i].pending.is_none() && !self.monitor.is_in_cs(i),
            "node {i} requested while busy"
        );
        assert!(!set.is_empty(), "empty request");
        self.slots[i].pending = Some(set.clone());
        self.tick();
        self.tracer.set_key(Time::from_nanos(self.steps), 0);
        self.tracer.on_cs(EventKind::CsRequest, i, set.len() as u32);
        let slot = &mut self.slots[i];
        slot.ctx.set_now(Time::from_nanos(self.steps));
        slot.proto.request(&mut slot.ctx, set);
        self.after_dispatch(i);
    }

    /// Release the critical section of node `i`.
    pub fn release(&mut self, i: NodeId) {
        assert!(self.monitor.is_in_cs(i), "node {i} released outside CS");
        self.monitor.exit(i);
        self.tick();
        self.tracer.set_key(Time::from_nanos(self.steps), 0);
        self.tracer.on_cs(EventKind::CsExit, i, 0);
        let slot = &mut self.slots[i];
        slot.ctx.set_now(Time::from_nanos(self.steps));
        slot.proto.release(&mut slot.ctx);
        self.after_dispatch(i);
    }

    /// Deliver one randomly chosen in-flight message (FIFO per link).
    /// Returns `false` if nothing was in flight.
    pub fn deliver_one(&mut self, rng: &mut StdRng) -> bool {
        let nonempty: Vec<usize> = (0..self.links.len())
            .filter(|&l| !self.links[l].is_empty())
            .collect();
        if nonempty.is_empty() {
            return false;
        }
        let link = nonempty[rng.gen_range(0..nonempty.len())];
        self.deliver_from_link(link);
        true
    }

    /// Deliver the head message of a specific `(src, dst)` link, if any.
    /// Lets tests script exact interleavings (e.g. the paper's Fig. 3).
    pub fn deliver_link(&mut self, src: NodeId, dst: NodeId) -> bool {
        let link = src * self.n + dst;
        if self.links[link].is_empty() {
            return false;
        }
        self.deliver_from_link(link);
        true
    }

    fn deliver_from_link(&mut self, link: usize) {
        let (stamp, packet) = self.links[link].pop_front().expect("link not empty");
        let (src, dst) = (link / self.n, link % self.n);
        // A wire duplicate is a one-off copy arriving right behind the
        // original; it does not re-enter the fault filter (a copy of a
        // copy would otherwise cascade at high dup rates).  In session
        // mode it reaches the receiver and the dedup window absorbs it —
        // processed inline after the original below.
        let mut dup_copy = false;
        if let Some(fs) = self.faults.as_mut() {
            match fs.fate(src, dst) {
                // Lost on the wire: the pop consumed it, nobody sees it.
                FrameFate::Drop => {
                    let tag = match &packet {
                        Packet::Plain(msg) | Packet::Data { msg, .. } => msg.kind(),
                        Packet::Ack { .. } => "RAck",
                    };
                    self.tracer.on_fault(dst, src, tag, stamp);
                    return;
                }
                FrameFate::Duplicate => {
                    if self.reliable.is_some() {
                        dup_copy = true;
                    } else {
                        // Perfect-link mode: absorbed here, delivered once.
                        fs.note_dedup();
                    }
                }
                FrameFate::Deliver => {}
            }
        }
        let msg = match packet {
            Packet::Plain(msg) => msg,
            Packet::Data { seq, ack, msg } => {
                let st = self
                    .reliable
                    .as_mut()
                    .expect("Data frame without a session layer");
                let deliver = st.on_data(src, dst, seq, ack);
                if dup_copy {
                    // The copy is stale by construction (the original just
                    // advanced — or failed to advance — the window).
                    st.on_data(src, dst, seq, ack);
                }
                // Standalone ack unless the handler's own reply (flushed
                // inside `after_dispatch` below) piggybacks it first — the
                // dispatch order makes the piggyback win, so only check
                // afterwards.
                if !deliver {
                    self.queue_pending_ack(src, dst);
                    return;
                }
                msg
            }
            Packet::Ack { ack } => {
                // Duplicated acks are idempotent; apply once.
                self.reliable
                    .as_mut()
                    .expect("Ack frame without a session layer")
                    .on_ack(src, dst, ack);
                return;
            }
        };
        self.tick();
        self.delivered += 1;
        // One dispatch key per delivery; the in-flight count doubles as
        // the queue-depth sample (the net has no event queue).
        self.tracer
            .on_dispatch(Time::from_nanos(self.steps), 0, self.in_flight());
        self.tracer
            .on_recv(src, dst, msg.kind(), msg.weight() as u32, stamp);
        let slot = &mut self.slots[dst];
        slot.ctx.set_now(Time::from_nanos(self.steps));
        slot.proto.on_message(&mut slot.ctx, src, msg);
        self.after_dispatch(dst);
        self.queue_pending_ack(src, dst);
    }

    /// If `dst` still owes `src` an ack for the data link `src → dst`
    /// (nothing piggybacked it), enqueue the standalone ack frame on the
    /// reverse link.  No-op with reliability off.
    fn queue_pending_ack(&mut self, src: NodeId, dst: NodeId) {
        if let Some(st) = self.reliable.as_mut() {
            if let Some(ack) = st.pending_ack(src, dst) {
                // Stamp 0: standalone acks are session plumbing, untraced.
                self.links[dst * self.n + src].push_back((0, Packet::Ack { ack }));
            }
        }
    }

    /// Deliver messages in random order until the network is quiet.
    ///
    /// # Panics
    /// If more than `cap` deliveries happen (runaway message loop).
    pub fn run_until_quiet(&mut self, rng: &mut StdRng, cap: u64) {
        let mut count = 0u64;
        while self.deliver_one(rng) {
            count += 1;
            assert!(count <= cap, "network did not quiesce within {cap} deliveries");
        }
    }

    fn tick(&mut self) {
        self.steps += 1;
    }

    fn after_dispatch(&mut self, i: NodeId) {
        self.flush_outbox(i);
        let granted = self.slots[i].ctx.take_granted();
        if granted {
            let set = self.slots[i]
                .pending
                .take()
                .unwrap_or_else(|| panic!("node {i} granted without a pending request"));
            self.tracer.on_cs(EventKind::CsEnter, i, set.len() as u32);
            self.monitor.enter(i, set);
        }
    }

    fn flush_outbox(&mut self, i: NodeId) {
        // Disjoint field borrows: the outbox drains in place while the
        // link queues are appended — no per-dispatch allocation.
        let slot = &mut self.slots[i];
        let links = &mut self.links;
        let tracer = &mut self.tracer;
        match self.reliable.as_mut() {
            None => {
                for (to, msg) in slot.ctx.drain_outbox() {
                    let stamp = tracer.on_send(i, to, msg.kind(), msg.weight() as u32, None);
                    links[i * self.n + to].push_back((stamp, Packet::Plain(msg)));
                }
            }
            Some(st) => {
                for (to, msg) in slot.ctx.drain_outbox() {
                    let stamp = tracer.on_send(i, to, msg.kind(), msg.weight() as u32, None);
                    let (seq, ack) = st.on_send(i, to, &msg, Time::ZERO);
                    links[i * self.n + to].push_back((stamp, Packet::Data { seq, ack, msg }));
                }
            }
        }
    }
}

impl<A: Allocator + Clone> Clone for Slot<A>
where
    A::Msg: Clone,
{
    fn clone(&self) -> Self {
        Slot {
            proto: self.proto.clone(),
            ctx: self.ctx.clone(),
            pending: self.pending.clone(),
        }
    }
}

impl<A: Allocator + Clone> Clone for VirtualNet<A>
where
    A::Msg: Clone,
{
    fn clone(&self) -> Self {
        VirtualNet {
            slots: self.slots.clone(),
            links: self.links.clone(),
            n: self.n,
            steps: self.steps,
            delivered: self.delivered,
            faults: self.faults.clone(),
            reliable: self.reliable.clone(),
            tracer: self.tracer.clone(),
            monitor: self.monitor.clone(),
        }
    }
}

/// Outcome of [`explore_exhaustive`].
#[derive(Clone, Copy, Debug)]
pub struct ExploreReport {
    /// Interleavings fully explored (leaves reached).
    pub completions: u64,
    /// Scheduler states visited.
    pub states: u64,
    /// True if the state budget was exhausted before full coverage.
    pub truncated: bool,
}

/// Exhaustively explore **every** FIFO-consistent interleaving of message
/// deliveries and critical-section releases for a fixed set of requests —
/// bounded model checking in the small.
///
/// All `requests` are issued up-front (in slice order).  The explorer then
/// branches on every enabled action: deliver the head of any non-empty
/// link, or release any node currently in CS.  Each node performs exactly
/// one request.  At every quiescent leaf it asserts that **all** requests
/// were granted and released (liveness for that interleaving); safety is
/// asserted continuously by the [`SafetyMonitor`].
///
/// # Panics
/// On any safety violation, and on any leaf where a request was never
/// served (a real deadlock for that interleaving).
pub fn explore_exhaustive<A>(
    net: &VirtualNet<A>,
    requests: &[(NodeId, ResourceSet)],
    budget: u64,
) -> ExploreReport
where
    A: Allocator + Clone,
    A::Msg: Clone,
{
    let mut root = net.clone();
    let mut done = vec![false; root.len()];
    for (node, set) in requests {
        root.request(*node, set.clone());
    }
    let mut report = ExploreReport {
        completions: 0,
        states: 0,
        truncated: false,
    };
    dfs(root, &mut done, &mut report, budget);
    report
}

fn dfs<A>(net: VirtualNet<A>, done: &mut [bool], report: &mut ExploreReport, budget: u64)
where
    A: Allocator + Clone,
    A::Msg: Clone,
{
    report.states += 1;
    if report.states >= budget {
        report.truncated = true;
        return;
    }
    // Enabled actions: one per non-empty link, plus Release per node in CS.
    let mut acted = false;
    for link in 0..net.links.len() {
        if net.links[link].is_empty() {
            continue;
        }
        acted = true;
        let mut next = net.clone();
        next.deliver_from_link(link);
        dfs(next, done, report, budget);
        if report.truncated {
            return;
        }
    }
    for i in 0..net.len() {
        if net.in_cs(i) && !done[i] {
            acted = true;
            let mut next = net.clone();
            next.release(i);
            done[i] = true;
            dfs(next, done, report, budget);
            done[i] = false;
            if report.truncated {
                return;
            }
        }
    }
    if !acted {
        // Quiescent leaf: every request must have been granted *and*
        // released — i.e. every node is idle again.
        let unserved: Vec<NodeId> = (0..net.len())
            .filter(|&i| net.state(i) != ProcState::Idle)
            .collect();
        assert!(
            unserved.is_empty(),
            "DEADLOCK in exhaustive exploration: nodes {unserved:?} never served"
        );
        report.completions += 1;
    }
}

/// Configuration for [`run_random_workload`].
#[derive(Clone, Debug)]
pub struct ExerciseCfg {
    /// Requests each active node must complete.
    pub rounds_per_node: usize,
    /// Maximum request size (the paper's φ); actual sizes are uniform in
    /// `1..=max_req_size`.
    pub max_req_size: usize,
    /// Number of resources (the paper's M).
    pub m: usize,
    /// Scheduler steps a node stays in CS before releasing (models CS
    /// duration as a number of interleaving opportunities).
    pub hold_steps: usize,
    /// Only nodes `0..active_nodes` issue requests (coordinator-style
    /// algorithms keep their coordinator passive).  `None` = all nodes.
    pub active_nodes: Option<usize>,
    /// Abort (liveness failure) after this many scheduler actions.
    pub step_cap: u64,
}

impl Default for ExerciseCfg {
    fn default() -> Self {
        ExerciseCfg {
            rounds_per_node: 5,
            max_req_size: 3,
            m: 6,
            hold_steps: 3,
            active_nodes: None,
            step_cap: 2_000_000,
        }
    }
}

/// Outcome of a randomized workload run.
#[derive(Clone, Debug)]
pub struct ExerciseReport {
    /// Critical sections completed (== rounds_per_node × active nodes).
    pub cs_completed: u64,
    /// Scheduler actions executed.
    pub actions: u64,
    /// Messages delivered.
    pub delivered: u64,
    /// Maximum CS concurrency observed (≥ 2 proves the concurrency property
    /// is exploited on non-conflicting requests).
    pub max_concurrency: usize,
}

/// Drive a network with a random workload under a random interleaving and
/// check safety + liveness throughout.
///
/// Every active node performs `rounds_per_node` request/CS/release cycles
/// with uniformly random resource sets.  Actions (deliver a message, issue a
/// request, progress a CS) are chosen uniformly at random, so every
/// interleaving has positive probability.
///
/// # Panics
/// * on any safety violation (via [`SafetyMonitor`]);
/// * on deadlock: requests pending but no action possible;
/// * on liveness failure: `step_cap` exceeded.
pub fn run_random_workload<A: Allocator>(
    net: &mut VirtualNet<A>,
    cfg: &ExerciseCfg,
    rng: &mut StdRng,
) -> ExerciseReport {
    let n_active = cfg.active_nodes.unwrap_or(net.len());
    assert!(n_active <= net.len());
    assert!(cfg.max_req_size >= 1 && cfg.max_req_size <= cfg.m);

    let mut quota = vec![cfg.rounds_per_node; n_active];
    let mut holds = vec![0usize; n_active];
    let mut completed = 0u64;
    let mut actions = 0u64;
    let mut max_conc = 0usize;

    #[derive(Clone, Copy)]
    enum Act {
        Deliver,
        Issue(NodeId),
        Hold(NodeId),
    }

    loop {
        let mut candidates: Vec<Act> = Vec::new();
        if net.in_flight() > 0 {
            // Weight delivery in proportion to in-flight traffic so queues
            // drain; one entry per message keeps selection uniform-ish.
            for _ in 0..net.in_flight().min(8) {
                candidates.push(Act::Deliver);
            }
        }
        for (i, &q) in quota.iter().enumerate().take(n_active) {
            if net.in_cs(i) {
                candidates.push(Act::Hold(i));
            } else if q > 0 && net.state(i) == ProcState::Idle {
                candidates.push(Act::Issue(i));
            }
        }

        if candidates.is_empty() {
            let waiting: Vec<NodeId> = (0..n_active)
                .filter(|&i| {
                    !net.in_cs(i) && net.state(i) != ProcState::Idle
                })
                .collect();
            if waiting.is_empty() {
                break; // all quotas exhausted, everything granted: done
            }
            let states: Vec<String> = (0..net.len())
                .map(|i| format!("n{}={}", i, net.state(i)))
                .collect();
            panic!(
                "DEADLOCK: nodes {waiting:?} waiting, no messages in flight, \
                 nobody in CS; states: {}",
                states.join(" ")
            );
        }

        match candidates[rng.gen_range(0..candidates.len())] {
            Act::Deliver => {
                net.deliver_one(rng);
            }
            Act::Issue(i) => {
                let size = rng.gen_range(1..=cfg.max_req_size);
                let mut set = ResourceSet::new();
                while set.len() < size {
                    set.insert(rng.gen_range(0..cfg.m));
                }
                quota[i] -= 1;
                holds[i] = cfg.hold_steps;
                net.request(i, set);
            }
            Act::Hold(i) => {
                if holds[i] > 0 {
                    holds[i] -= 1;
                } else {
                    net.release(i);
                    completed += 1;
                }
            }
        }
        max_conc = max_conc.max(net.monitor.concurrency());
        actions += 1;
        assert!(
            actions <= cfg.step_cap,
            "LIVENESS FAILURE: exceeded {} actions with {} CS completed \
             (of {}); in flight: {}",
            cfg.step_cap,
            completed,
            (cfg.rounds_per_node * n_active) as u64,
            net.in_flight()
        );
    }

    ExerciseReport {
        cs_completed: completed,
        actions,
        delivered: net.delivered(),
        max_concurrency: max_conc,
    }
}

/// Outcome of [`run_faulty_workload`].
#[derive(Clone, Debug)]
pub struct FaultyReport {
    /// Critical sections completed.
    pub cs_completed: u64,
    /// Nodes left waiting forever because the fault plan destroyed the
    /// liveness of their request (empty under a non-lossy plan).
    pub starved: Vec<NodeId>,
    /// Scheduler actions executed.
    pub actions: u64,
    /// Messages actually delivered to protocol handlers.
    pub delivered: u64,
    /// What the fault layer did.
    pub stats: FaultStats,
    /// What the reliable session layer did (all-zero when disabled).
    pub reliability: ReliabilityStats,
}

/// Drive a (possibly faulty) network with a random workload and check the
/// invariants that must survive an imperfect network:
///
/// * **safety** — continuously, via the [`SafetyMonitor`] (any exclusivity
///   violation panics);
/// * **conservation** — after quiescence every granted resource was
///   released: nobody is left in CS and the holder table is empty
///   ([`SafetyMonitor::assert_conservation`]);
/// * **fault-aware liveness** — under a *non-lossy* plan (clean, dup-only)
///   every request must complete, exactly like [`run_random_workload`];
///   under a lossy plan **without** the session layer starved nodes are
///   *reported*, not treated as failures — a dropped token legitimately
///   destroys liveness.  With [`VirtualNet::enable_reliability`] on and a
///   [recoverable](FaultPlan::is_recoverable) plan (every drop rate
///   `< 1.0`) the deadlock panic is **re-armed**: when the scheduler runs
///   out of actions with nodes still waiting it triggers
///   [`VirtualNet::retransmit_all`] (the clockless retransmission timer),
///   and only a retransmission-free stall — a genuine protocol deadlock —
///   panics.  Every request must then complete despite the losses.
///
/// The run quiesces when no action remains: all messages delivered or
/// dropped, every critical section released, and every remaining request
/// either completed or permanently starved.
///
/// # Panics
/// On any safety violation, on a granted-resource leak at quiescence, on
/// starvation under a non-lossy (or reliability-recovered) plan, and if
/// `cfg.step_cap` is exceeded.
pub fn run_faulty_workload<A: Allocator>(
    net: &mut VirtualNet<A>,
    cfg: &ExerciseCfg,
    rng: &mut StdRng,
) -> FaultyReport {
    // The session layer restores the reliable-channel model for any
    // recoverable plan: liveness is then owed again.
    let recovered =
        net.reliability_on() && net.fault_plan().map_or(true, FaultPlan::is_recoverable);
    let lossy = net.fault_plan().is_some_and(|p| p.is_lossy()) && !recovered;
    let n_active = cfg.active_nodes.unwrap_or(net.len());
    assert!(n_active <= net.len());
    assert!(cfg.max_req_size >= 1 && cfg.max_req_size <= cfg.m);

    let mut quota = vec![cfg.rounds_per_node; n_active];
    let mut holds = vec![0usize; n_active];
    let mut completed = 0u64;
    let mut actions = 0u64;
    let mut starved: Vec<NodeId> = Vec::new();

    #[derive(Clone, Copy)]
    enum Act {
        Deliver,
        Issue(NodeId),
        Hold(NodeId),
    }

    loop {
        let mut candidates: Vec<Act> = Vec::new();
        if net.in_flight() > 0 {
            for _ in 0..net.in_flight().min(8) {
                candidates.push(Act::Deliver);
            }
        }
        for (i, &q) in quota.iter().enumerate().take(n_active) {
            if net.in_cs(i) {
                candidates.push(Act::Hold(i));
            } else if q > 0 && net.state(i) == ProcState::Idle {
                candidates.push(Act::Issue(i));
            }
        }

        if candidates.is_empty() {
            let waiting: Vec<NodeId> = (0..n_active)
                .filter(|&i| !net.in_cs(i) && net.state(i) != ProcState::Idle)
                .collect();
            if waiting.is_empty() {
                break; // every request served, all quotas spent
            }
            if recovered && net.retransmit_all() > 0 {
                // The clockless retransmission timer: unacked session
                // frames go back on the wire and the scheduler resumes.
                // Counted as an action so `step_cap` still bounds a
                // pathological no-progress loop.
                actions += 1;
                assert!(
                    actions <= cfg.step_cap,
                    "LIVENESS FAILURE: {actions} actions (retransmitting) \
                     with {completed} CS completed"
                );
                continue;
            }
            if lossy {
                // Permanent starvation caused by message loss: an expected
                // liveness casualty, recorded and tolerated.
                starved = waiting;
                break;
            }
            let states: Vec<String> = (0..net.len())
                .map(|i| format!("n{}={}", i, net.state(i)))
                .collect();
            panic!(
                "DEADLOCK under a non-lossy fault plan: nodes {waiting:?} \
                 waiting, nothing in flight, nobody in CS; states: {} \
                 (reliability {}; rel {:?}; faults {:?})",
                states.join(" "),
                if net.reliability_on() { "on" } else { "off" },
                net.reliability_stats(),
                net.fault_stats(),
            );
        }

        match candidates[rng.gen_range(0..candidates.len())] {
            Act::Deliver => {
                net.deliver_one(rng);
            }
            Act::Issue(i) => {
                let size = rng.gen_range(1..=cfg.max_req_size);
                let mut set = ResourceSet::new();
                while set.len() < size {
                    set.insert(rng.gen_range(0..cfg.m));
                }
                quota[i] -= 1;
                holds[i] = cfg.hold_steps;
                net.request(i, set);
            }
            Act::Hold(i) => {
                if holds[i] > 0 {
                    holds[i] -= 1;
                } else {
                    net.release(i);
                    completed += 1;
                }
            }
        }
        actions += 1;
        assert!(
            actions <= cfg.step_cap,
            "LIVENESS FAILURE: exceeded {} actions with {completed} CS \
             completed; in flight: {}",
            cfg.step_cap,
            net.in_flight()
        );
    }

    // Quiescence invariants: no granted resource leaked.
    assert_eq!(
        net.monitor.concurrency(),
        0,
        "nodes left inside CS at quiescence"
    );
    assert_eq!(
        net.monitor.held_resources(),
        0,
        "resources left marked held at quiescence"
    );
    net.monitor.assert_conservation();
    if !lossy {
        assert_eq!(
            completed as usize,
            cfg.rounds_per_node * n_active,
            "a non-lossy (or reliability-recovered) plan must not cost a \
             single critical section"
        );
    }

    FaultyReport {
        cs_completed: completed,
        starved,
        actions,
        delivered: net.delivered(),
        stats: net.fault_stats(),
        reliability: net.reliability_stats(),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::WireMsg;
    use rand::SeedableRng;

    /// A trivially safe "protocol": a single-node system that grants itself.
    /// Exercises the harness plumbing.
    struct Solo {
        state: ProcState,
    }

    #[derive(Clone, Debug)]
    enum NoMsg {}
    impl WireMsg for NoMsg {
        fn kind(&self) -> &'static str {
            match *self {}
        }
    }

    impl Allocator for Solo {
        type Msg = NoMsg;
        fn on_init(&mut self, _ctx: &mut Ctx<NoMsg>) {}
        fn on_message(&mut self, _ctx: &mut Ctx<NoMsg>, _from: NodeId, msg: NoMsg) {
            match msg {}
        }
        fn request(&mut self, ctx: &mut Ctx<NoMsg>, _resources: ResourceSet) {
            self.state = ProcState::InCS;
            ctx.grant();
        }
        fn release(&mut self, _ctx: &mut Ctx<NoMsg>) {
            self.state = ProcState::Idle;
        }
        fn state(&self) -> ProcState {
            self.state
        }
        fn name(&self) -> &'static str {
            "solo"
        }
    }

    #[test]
    fn solo_workload_completes() {
        let mut net = VirtualNet::new(vec![Solo { state: ProcState::Idle }], 4);
        let mut rng = StdRng::seed_from_u64(7);
        let cfg = ExerciseCfg {
            rounds_per_node: 10,
            max_req_size: 2,
            m: 4,
            ..Default::default()
        };
        let rep = run_random_workload(&mut net, &cfg, &mut rng);
        assert_eq!(rep.cs_completed, 10);
        assert_eq!(rep.delivered, 0);
    }

    /// A minimal two-node token lock (m = 1) for exercising the fault
    /// harness with real message traffic: the token starts at node 0; a
    /// node without it asks the peer; the holder hands it over when idle
    /// (or right after its own release).
    struct TinyLock {
        me: NodeId,
        has_token: bool,
        peer_wants: bool,
        state: ProcState,
    }

    impl TinyLock {
        fn pair() -> Vec<TinyLock> {
            (0..2)
                .map(|me| TinyLock {
                    me,
                    has_token: me == 0,
                    peer_wants: false,
                    state: ProcState::Idle,
                })
                .collect()
        }
        fn peer(&self) -> NodeId {
            1 - self.me
        }
    }

    #[derive(Clone, Copy, Debug)]
    enum TinyMsg {
        Req,
        Tok,
    }
    impl WireMsg for TinyMsg {
        fn kind(&self) -> &'static str {
            match self {
                TinyMsg::Req => "Req",
                TinyMsg::Tok => "Tok",
            }
        }
    }

    impl Allocator for TinyLock {
        type Msg = TinyMsg;
        fn on_init(&mut self, _ctx: &mut Ctx<TinyMsg>) {}
        fn on_message(&mut self, ctx: &mut Ctx<TinyMsg>, _from: NodeId, msg: TinyMsg) {
            match msg {
                TinyMsg::Req => {
                    if self.has_token && self.state == ProcState::Idle {
                        self.has_token = false;
                        ctx.send(self.peer(), TinyMsg::Tok);
                    } else {
                        self.peer_wants = true;
                    }
                }
                TinyMsg::Tok => {
                    assert!(!self.has_token, "token duplicated");
                    self.has_token = true;
                    if self.state == ProcState::WaitCS {
                        self.state = ProcState::InCS;
                        ctx.grant();
                    }
                }
            }
        }
        fn request(&mut self, ctx: &mut Ctx<TinyMsg>, _resources: ResourceSet) {
            if self.has_token {
                self.state = ProcState::InCS;
                ctx.grant();
            } else {
                self.state = ProcState::WaitCS;
                ctx.send(self.peer(), TinyMsg::Req);
            }
        }
        fn release(&mut self, ctx: &mut Ctx<TinyMsg>) {
            self.state = ProcState::Idle;
            if self.peer_wants {
                self.peer_wants = false;
                self.has_token = false;
                ctx.send(self.peer(), TinyMsg::Tok);
            }
        }
        fn state(&self) -> ProcState {
            self.state
        }
        fn name(&self) -> &'static str {
            "tiny-lock"
        }
    }

    fn tiny_cfg(rounds: usize) -> ExerciseCfg {
        ExerciseCfg {
            rounds_per_node: rounds,
            max_req_size: 1,
            m: 1,
            hold_steps: 2,
            active_nodes: None,
            step_cap: 100_000,
        }
    }

    #[test]
    fn faulty_harness_clean_plan_completes_everything() {
        let mut net = VirtualNet::new(TinyLock::pair(), 1);
        net.install_faults(&crate::faults::FaultPlan::new(5));
        let mut rng = StdRng::seed_from_u64(3);
        let rep = run_faulty_workload(&mut net, &tiny_cfg(6), &mut rng);
        assert_eq!(rep.cs_completed, 12);
        assert!(rep.starved.is_empty());
        assert_eq!(rep.stats, FaultStats::default());
    }

    #[test]
    fn faulty_harness_without_any_plan_behaves_like_clean() {
        let mut net = VirtualNet::new(TinyLock::pair(), 1);
        let mut rng = StdRng::seed_from_u64(4);
        let rep = run_faulty_workload(&mut net, &tiny_cfg(6), &mut rng);
        assert_eq!(rep.cs_completed, 12);
    }

    #[test]
    fn dup_only_plan_is_absorbed_and_costs_nothing() {
        let mut net = VirtualNet::new(TinyLock::pair(), 1);
        net.install_faults(&crate::faults::FaultPlan::new(5).dup_rate(1.0));
        let mut rng = StdRng::seed_from_u64(7);
        let rep = run_faulty_workload(&mut net, &tiny_cfg(6), &mut rng);
        // Non-lossy: the harness itself asserts full completion; every
        // delivered frame was duplicated on the wire and absorbed.
        assert_eq!(rep.cs_completed, 12);
        assert!(rep.stats.duplicated > 0);
        assert_eq!(rep.stats.duplicated, rep.stats.deduped);
    }

    #[test]
    fn reliability_recovers_every_cs_under_heavy_loss() {
        let mut net = VirtualNet::new(TinyLock::pair(), 1);
        net.install_faults(&crate::faults::FaultPlan::new(5).drop_rate(0.4).dup_rate(0.2));
        net.enable_reliability(crate::reliable::Reliability::default());
        let mut rng = StdRng::seed_from_u64(11);
        // The harness itself asserts full completion: with the session
        // layer on, a 40% drop rate is recovered and liveness is owed.
        let rep = run_faulty_workload(&mut net, &tiny_cfg(6), &mut rng);
        assert_eq!(rep.cs_completed, 12);
        assert!(rep.starved.is_empty());
        assert!(rep.stats.dropped_link > 0, "the plan did drop frames");
        assert!(rep.reliability.retransmits > 0, "recovery took retransmissions");
        assert!(rep.reliability.acks_sent + rep.reliability.acks_piggybacked > 0);
    }

    #[test]
    fn reliability_on_clean_links_costs_no_retransmission() {
        let mut net = VirtualNet::new(TinyLock::pair(), 1);
        net.enable_reliability(crate::reliable::Reliability::default());
        let mut rng = StdRng::seed_from_u64(3);
        let rep = run_faulty_workload(&mut net, &tiny_cfg(6), &mut rng);
        assert_eq!(rep.cs_completed, 12);
        assert_eq!(rep.reliability.retransmits, 0);
        assert_eq!(rep.reliability.gap_dropped, 0);
        assert_eq!(rep.reliability.dup_dropped, 0);
        assert!(rep.reliability.data_sent > 0);
    }

    #[test]
    fn reliability_redelivers_wire_duplicates_and_dedups_them() {
        let mut net = VirtualNet::new(TinyLock::pair(), 1);
        net.install_faults(&crate::faults::FaultPlan::new(5).dup_rate(1.0));
        net.enable_reliability(crate::reliable::Reliability::default());
        let mut rng = StdRng::seed_from_u64(7);
        let rep = run_faulty_workload(&mut net, &tiny_cfg(6), &mut rng);
        assert_eq!(rep.cs_completed, 12);
        assert!(rep.stats.duplicated > 0);
        // Session-layer mode: the wire really carries the copies and the
        // dedup window — not the fault layer — absorbs them.
        assert_eq!(rep.stats.deduped, 0);
        assert!(rep.reliability.dup_dropped > 0);
    }

    #[test]
    fn total_loss_starves_the_tokenless_node_but_stays_safe() {
        let mut net = VirtualNet::new(TinyLock::pair(), 1);
        net.install_faults(&crate::faults::FaultPlan::new(5).drop_rate(1.0));
        let mut rng = StdRng::seed_from_u64(11);
        let rep = run_faulty_workload(&mut net, &tiny_cfg(4), &mut rng);
        // Node 0 holds the token and completes locally; node 1's requests
        // all vanish on the wire.
        assert_eq!(rep.cs_completed, 4);
        assert_eq!(rep.starved, vec![1]);
        assert!(rep.stats.dropped_link > 0);
    }

    #[test]
    fn drop_decisions_are_reproducible_across_runs() {
        let run = |seed: u64| {
            let mut net = VirtualNet::new(TinyLock::pair(), 1);
            net.install_faults(&crate::faults::FaultPlan::new(seed).drop_rate(0.3));
            let mut rng = StdRng::seed_from_u64(9);
            let rep = run_faulty_workload(&mut net, &tiny_cfg(5), &mut rng);
            (rep.cs_completed, rep.stats)
        };
        assert_eq!(run(21), run(21));
    }

    #[test]
    fn monitor_catches_double_grant() {
        let mut mon = SafetyMonitor::new(2, 3);
        mon.enter(0, ResourceSet::singleton(1));
        let boom = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
            mon.enter(1, ResourceSet::singleton(1));
        }));
        assert!(boom.is_err(), "expected safety panic");
    }

    #[test]
    fn monitor_tracks_concurrency() {
        let mut mon = SafetyMonitor::new(3, 6);
        mon.enter(0, ResourceSet::singleton(0));
        mon.enter(1, ResourceSet::singleton(1));
        assert_eq!(mon.concurrency(), 2);
        mon.exit(0);
        assert_eq!(mon.concurrency(), 1);
        assert!(mon.is_in_cs(1));
        assert!(!mon.is_in_cs(0));
    }
}
