//! Deterministic fault injection: the scenario description every delivery
//! substrate shares.
//!
//! A [`FaultPlan`] describes an imperfect network and imperfect nodes:
//!
//! * **per-link frame faults** — drop and duplicate probabilities, either a
//!   single default for every directed link or per-link overrides;
//! * **partitions** — a node group cut off from the rest for a time window
//!   with a scheduled heal (messages crossing the cut are lost, exactly
//!   like a switch failure without retransmission);
//! * **node outages** — per-node pause windows (the node freezes: inbound
//!   messages and its own timers are deferred to the restart instant —
//!   think GC pause or live migration) and crash-restart windows (inbound
//!   messages during the window are *lost*; the node resumes with its
//!   protocol state intact, modelling fail-recovery with durable state).
//!
//! **Determinism.** Frame fault decisions are *counter-hashed*, not drawn
//! from a shared RNG: the verdict for the `k`-th frame sent on directed
//! link `i → j` is a pure function of `(plan seed, i, j, k)`.  Two
//! consequences the tests rely on:
//!
//! 1. the same seed produces the same per-link drop/duplicate verdict
//!    sequence on every substrate (`Sim`, `VirtualNet`, the TCP shim),
//!    because all three deliver each link FIFO — the `k`-th pop *is* the
//!    `k`-th send;
//! 2. installing a plan perturbs no other randomness: the workload and
//!    latency RNG streams are untouched, so a **zero-rate plan is
//!    observationally identical to no plan at all**.
//!
//! **Duplicates are absorbed, not delivered twice.**  Every protocol in
//! this workspace assumes reliable exactly-once FIFO links (the paper's
//! model); a raw re-delivered token genuinely duplicates a resource and
//! violates safety — that is a *model* violation, not a protocol bug.  The
//! fault layer therefore emulates what TCP's sequence numbers do on a real
//! wire: a duplicated frame consumes bandwidth and is counted
//! ([`FaultStats::duplicated`] / [`FaultStats::deduped`]) but the protocol
//! handler sees the message exactly once.  Drops model loss *above* any
//! retransmission horizon (connection reset, switch reboot) and are
//! surfaced to the protocol as genuine loss: safety must survive them,
//! liveness degrades — which is exactly what the fault test matrix
//! asserts.

use mra_types::{NodeId, Time};

/// Probabilistic faults of one directed link.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct LinkFaults {
    /// Probability that a frame is dropped, in `[0, 1]`.
    pub drop: f64,
    /// Probability that a delivered frame is duplicated on the wire (the
    /// duplicate is absorbed by the receiver's dedup layer), in `[0, 1]`.
    pub dup: f64,
}

impl LinkFaults {
    /// A perfect link.
    pub const NONE: LinkFaults = LinkFaults { drop: 0.0, dup: 0.0 };

    fn validate(&self) {
        assert!(
            (0.0..=1.0).contains(&self.drop) && (0.0..=1.0).contains(&self.dup),
            "fault probabilities must be in [0, 1]: {self:?}"
        );
    }
}

/// A network partition: `group` vs everyone else, from `from` until the
/// scheduled heal at `until` (half-open window `[from, until)`).
#[derive(Clone, Debug)]
pub struct Partition {
    /// Nodes on one side of the cut.
    pub group: Vec<NodeId>,
    /// Start of the partition.
    pub from: Time,
    /// Scheduled heal: first instant the cut no longer applies.
    pub until: Time,
}

/// What a node outage does to the node.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum OutageKind {
    /// The node freezes: inbound messages and its own timers are deferred
    /// to the restart instant, nothing is lost.
    Pause,
    /// The node crashes and restarts with durable protocol state: inbound
    /// messages during the window are lost, its timers resume at restart.
    Crash,
}

/// One per-node outage window `[from, until)`.
#[derive(Clone, Debug)]
pub struct Outage {
    /// The affected node.
    pub node: NodeId,
    /// Pause or crash-restart semantics.
    pub kind: OutageKind,
    /// Start of the outage.
    pub from: Time,
    /// Restart instant.
    pub until: Time,
}

/// A complete, seeded fault scenario.  Built with the fluent methods and
/// installed on an engine (`Sim::set_fault_plan`,
/// `VirtualNet::install_faults`, `MeshConfig::faults`).
#[derive(Clone, Debug)]
pub struct FaultPlan {
    /// Seed of the counter-hash; all frame verdicts derive from it.
    pub seed: u64,
    /// Default faults applied to every directed link.
    pub link: LinkFaults,
    /// Per-link `(from, to, faults)` overrides (take precedence).
    pub overrides: Vec<(NodeId, NodeId, LinkFaults)>,
    /// Partition windows.
    pub partitions: Vec<Partition>,
    /// Node outage windows.
    pub outages: Vec<Outage>,
}

impl FaultPlan {
    /// A clean plan (no faults) with the given decision seed.
    pub fn new(seed: u64) -> Self {
        FaultPlan {
            seed,
            link: LinkFaults::NONE,
            overrides: Vec::new(),
            partitions: Vec::new(),
            outages: Vec::new(),
        }
    }

    /// Set the default per-link drop probability.
    pub fn drop_rate(mut self, p: f64) -> Self {
        self.link.drop = p;
        self.link.validate();
        self
    }

    /// Set the default per-link duplicate probability.
    pub fn dup_rate(mut self, p: f64) -> Self {
        self.link.dup = p;
        self.link.validate();
        self
    }

    /// Override the faults of one directed link.
    pub fn link_override(mut self, from: NodeId, to: NodeId, faults: LinkFaults) -> Self {
        faults.validate();
        self.overrides.push((from, to, faults));
        self
    }

    /// Partition `group` from the rest of the cluster during `[from, until)`.
    pub fn partition(mut self, group: Vec<NodeId>, from: Time, until: Time) -> Self {
        assert!(from < until, "empty partition window");
        self.partitions.push(Partition { group, from, until });
        self
    }

    /// Pause `node` (freeze, defer everything) during `[from, until)`.
    pub fn pause(mut self, node: NodeId, from: Time, until: Time) -> Self {
        assert!(from < until, "empty outage window");
        self.outages.push(Outage { node, kind: OutageKind::Pause, from, until });
        self
    }

    /// Crash-restart `node` (lose inbound messages) during `[from, until)`.
    pub fn crash(mut self, node: NodeId, from: Time, until: Time) -> Self {
        assert!(from < until, "empty outage window");
        self.outages.push(Outage { node, kind: OutageKind::Crash, from, until });
        self
    }

    /// True when the plan can *lose* messages (probabilistic drops,
    /// partitions, or crash windows).  Engines use this to relax liveness
    /// assertions: a lossy plan legitimately starves nodes, a non-lossy
    /// plan (clean, dup-only or pause-only) must not.
    pub fn is_lossy(&self) -> bool {
        self.link.drop > 0.0
            || self.overrides.iter().any(|(_, _, f)| f.drop > 0.0)
            || !self.partitions.is_empty()
            || self.outages.iter().any(|o| o.kind == OutageKind::Crash)
    }

    /// True when the reliable-delivery session layer
    /// ([`crate::reliable`]) can fully recover this plan's losses: every
    /// drop probability is `< 1.0`.  Partitions heal and outage windows
    /// end by construction (`from < until` is asserted), so only a
    /// total-loss link is unrecoverable — its retransmissions are dropped
    /// forever.  Engines running with reliability enabled re-arm their
    /// liveness/deadlock checks exactly when this holds.
    pub fn is_recoverable(&self) -> bool {
        self.link.drop < 1.0 && self.overrides.iter().all(|(_, _, f)| f.drop < 1.0)
    }

    /// True when the plan injects nothing at all.
    pub fn is_clean(&self) -> bool {
        self.link == LinkFaults::NONE
            && self.overrides.iter().all(|(_, _, f)| *f == LinkFaults::NONE)
            && self.partitions.is_empty()
            && self.outages.is_empty()
    }

    /// Resolved faults of the directed link `from → to`.
    pub fn link_faults(&self, from: NodeId, to: NodeId) -> LinkFaults {
        self.overrides
            .iter()
            .rev()
            .find(|(f, t, _)| *f == from && *t == to)
            .map(|(_, _, lf)| *lf)
            .unwrap_or(self.link)
    }

    /// The fault-plan seed from `MRA_FAULT_SEED`, or `default` when unset
    /// or unparsable.
    pub fn env_seed(default: u64) -> u64 {
        std::env::var("MRA_FAULT_SEED")
            .ok()
            .and_then(|v| v.trim().parse::<u64>().ok())
            .unwrap_or(default)
    }

    /// The loss rate from `MRA_LOSS` (clamped to `[0, 1]`), if set.
    pub fn env_loss() -> Option<f64> {
        std::env::var("MRA_LOSS")
            .ok()
            .and_then(|v| v.trim().parse::<f64>().ok())
            .map(|p| p.clamp(0.0, 1.0))
    }

    /// A plan from the environment: `Some` when `MRA_LOSS` is set, with the
    /// seed from `MRA_FAULT_SEED` (default `0xFA17`).
    pub fn from_env() -> Option<FaultPlan> {
        Self::env_loss().map(|p| FaultPlan::new(Self::env_seed(0xFA17)).drop_rate(p))
    }
}

/// Verdict for one frame on a link.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum FrameFate {
    /// Deliver normally.
    Deliver,
    /// Lose the frame.
    Drop,
    /// Deliver once; a duplicate copy was sent and absorbed by the dedup
    /// layer (counted, never handed to the protocol — see module docs).
    Duplicate,
}

/// Counters describing what a fault layer actually did during a run.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct FaultStats {
    /// Frames lost to the probabilistic per-link drop.
    pub dropped_link: u64,
    /// Frames lost crossing an active partition.
    pub dropped_partition: u64,
    /// Frames lost because the receiver was in a crash window.
    pub dropped_crash: u64,
    /// Duplicate frames put on the wire.
    pub duplicated: u64,
    /// Duplicate frames absorbed by the dedup layer.
    pub deduped: u64,
    /// Events (messages or timers) deferred past a pause/crash window.
    pub deferred: u64,
}

impl FaultStats {
    /// Total frames lost for any reason.
    pub fn dropped_total(&self) -> u64 {
        self.dropped_link + self.dropped_partition + self.dropped_crash
    }

    /// Fold another counter set into this one — used by sharded engines
    /// that keep one fault layer per shard and aggregate at the end.
    pub fn absorb(&mut self, other: &FaultStats) {
        self.dropped_link += other.dropped_link;
        self.dropped_partition += other.dropped_partition;
        self.dropped_crash += other.dropped_crash;
        self.duplicated += other.duplicated;
        self.deduped += other.deduped;
        self.deferred += other.deferred;
    }
}

/// splitmix64 finalizer: a statistically solid pure mix.
#[inline]
fn mix(mut z: u64) -> u64 {
    z = z.wrapping_add(0x9E37_79B9_7F4A_7C15);
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

/// Map a hash to a unit float in `[0, 1)`.
#[inline]
fn unit(h: u64) -> f64 {
    (h >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
}

const SALT_DROP: u64 = 0xD20_0001;
const SALT_DUP: u64 = 0xD0B_0002;

/// The verdict for the `k`-th frame on `link` under `seed` — the pure
/// decision function shared by every substrate.
#[inline]
pub fn frame_fate(seed: u64, link: u64, k: u64, faults: &LinkFaults) -> FrameFate {
    if faults.drop > 0.0 {
        let h = mix(seed ^ SALT_DROP ^ link.rotate_left(32) ^ k.wrapping_mul(0x9E37_79B9_7F4A_7C15));
        if unit(h) < faults.drop {
            return FrameFate::Drop;
        }
    }
    if faults.dup > 0.0 {
        let h = mix(seed ^ SALT_DUP ^ link.rotate_left(32) ^ k.wrapping_mul(0x9E37_79B9_7F4A_7C15));
        if unit(h) < faults.dup {
            return FrameFate::Duplicate;
        }
    }
    FrameFate::Deliver
}

/// Per-link fault filter for substrates that own one link at a time (the
/// TCP reader threads).  Carries its own frame counter.
#[derive(Clone, Debug)]
pub struct LinkFilter {
    seed: u64,
    link: u64,
    faults: LinkFaults,
    k: u64,
}

impl LinkFilter {
    /// Filter for the directed link `from → to` of an `n`-node system.
    pub fn new(plan: &FaultPlan, from: NodeId, to: NodeId, n: usize) -> Self {
        LinkFilter {
            seed: plan.seed,
            link: (from * n + to) as u64,
            faults: plan.link_faults(from, to),
            k: 0,
        }
    }

    /// Verdict for the next frame on this link.
    #[inline]
    pub fn next_fate(&mut self) -> FrameFate {
        let k = self.k;
        self.k += 1;
        frame_fate(self.seed, self.link, k, &self.faults)
    }

    /// Frames seen so far.
    pub fn frames(&self) -> u64 {
        self.k
    }
}

/// What an engine should do with a popped delivery.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum Admit {
    /// Hand the message to the protocol.
    Deliver,
    /// Deliver, *and* a duplicate copy follows on the wire.  Only surfaced
    /// by [`FaultState::admit_wire`] (session-layer mode, where the
    /// receiver's dedup window absorbs the copy); [`FaultState::admit`]
    /// folds it into [`Admit::Deliver`] and counts the absorption itself.
    Duplicate,
    /// The message is lost (already counted in the stats).
    Drop,
    /// The receiver is paused: re-schedule delivery at the given instant.
    Defer(Time),
}

/// Runtime fault state for engines that own *all* links (`Sim`,
/// `VirtualNet`): the plan resolved into dense per-link tables plus one
/// frame counter per link, and the running [`FaultStats`].
///
/// All allocation happens at construction; the per-frame decision path is
/// pure arithmetic over the pre-sized tables (the simulator's zero-alloc
/// guard runs with a plan installed).
#[derive(Clone, Debug)]
pub struct FaultState {
    plan: FaultPlan,
    n: usize,
    /// Resolved faults per directed link (`from * n + to`).
    links: Vec<LinkFaults>,
    /// Frame counter per directed link.
    counters: Vec<u64>,
    /// Partition windows with membership masks (`mask[node]`).
    partitions: Vec<(Vec<bool>, Time, Time)>,
    /// Outage windows per node.
    outages: Vec<Vec<(OutageKind, Time, Time)>>,
    /// What happened so far.
    pub stats: FaultStats,
}

impl FaultState {
    /// Instantiate `plan` for an `n`-node system.
    ///
    /// # Panics
    /// If the plan names a node `>= n`.
    pub fn new(plan: FaultPlan, n: usize) -> Self {
        for (f, t, _) in &plan.overrides {
            assert!(*f < n && *t < n, "link override ({f},{t}) outside 0..{n}");
        }
        let links = (0..n * n)
            .map(|l| plan.link_faults(l / n, l % n))
            .collect();
        let partitions = plan
            .partitions
            .iter()
            .map(|p| {
                let mut mask = vec![false; n];
                for &node in &p.group {
                    assert!(node < n, "partition node {node} outside 0..{n}");
                    mask[node] = true;
                }
                (mask, p.from, p.until)
            })
            .collect();
        let mut outages: Vec<Vec<(OutageKind, Time, Time)>> = vec![Vec::new(); n];
        for o in &plan.outages {
            assert!(o.node < n, "outage node {} outside 0..{n}", o.node);
            outages[o.node].push((o.kind, o.from, o.until));
        }
        FaultState {
            plan,
            n,
            links,
            counters: vec![0; n * n],
            partitions,
            outages,
            stats: FaultStats::default(),
        }
    }

    /// The installed plan.
    pub fn plan(&self) -> &FaultPlan {
        &self.plan
    }

    /// Is `node` inside an outage window at `at`?  Returns the kind and the
    /// restart instant.
    #[inline]
    pub fn outage(&self, node: NodeId, at: Time) -> Option<(OutageKind, Time)> {
        // Hot path: almost every node has no windows.
        let windows = &self.outages[node];
        if windows.is_empty() {
            return None;
        }
        windows
            .iter()
            .find(|(_, from, until)| at >= *from && at < *until)
            .map(|(kind, _, until)| (*kind, *until))
    }

    /// Does the link `from → to` cross an active partition at `at`?
    #[inline]
    pub fn partitioned(&self, from: NodeId, to: NodeId, at: Time) -> bool {
        self.partitions
            .iter()
            .any(|(mask, start, until)| {
                at >= *start && at < *until && mask[from] != mask[to]
            })
    }

    /// Probabilistic verdict for the next frame on `from → to` (bumps the
    /// link's frame counter and the drop/duplicated stats).  A
    /// [`FrameFate::Duplicate`] is counted as *duplicated on the wire*
    /// only; whoever absorbs the copy — this state's [`FaultState::admit`]
    /// in perfect-link mode, or the reliable session layer's dedup window —
    /// accounts for the absorption ([`FaultStats::deduped`] /
    /// `ReliabilityStats::dup_dropped`).
    #[inline]
    pub fn fate(&mut self, from: NodeId, to: NodeId) -> FrameFate {
        let link = from * self.n + to;
        let k = self.counters[link];
        self.counters[link] += 1;
        let fate = frame_fate(self.plan.seed, link as u64, k, &self.links[link]);
        match fate {
            FrameFate::Drop => self.stats.dropped_link += 1,
            FrameFate::Duplicate => self.stats.duplicated += 1,
            FrameFate::Deliver => {}
        }
        fate
    }

    /// Record a wire duplicate as absorbed by this fault layer (perfect-link
    /// mode, where no session layer exists to re-deliver it).
    #[inline]
    pub fn note_dedup(&mut self) {
        self.stats.deduped += 1;
    }

    /// Full admission decision for a message popped for delivery at `at`:
    /// outage handling first (pause defers, crash drops), then partitions,
    /// then the probabilistic per-link verdict.  All counting happens here;
    /// duplicate verdicts are absorbed (the paper's perfect-link model has
    /// no duplicates to show the protocol).
    #[inline]
    pub fn admit(&mut self, from: NodeId, to: NodeId, at: Time) -> Admit {
        match self.admit_wire(from, to, at) {
            Admit::Duplicate => {
                self.note_dedup();
                Admit::Deliver
            }
            other => other,
        }
    }

    /// Like [`FaultState::admit`], but surfaces duplicate verdicts as
    /// [`Admit::Duplicate`] so a session-layer engine can put the extra
    /// copy on the wire and let the receive-side dedup window absorb it —
    /// the *real* channel model instead of the emulated one.
    #[inline]
    pub fn admit_wire(&mut self, from: NodeId, to: NodeId, at: Time) -> Admit {
        if let Some((kind, until)) = self.outage(to, at) {
            match kind {
                OutageKind::Pause => {
                    self.stats.deferred += 1;
                    return Admit::Defer(until);
                }
                OutageKind::Crash => {
                    self.stats.dropped_crash += 1;
                    return Admit::Drop;
                }
            }
        }
        if self.partitioned(from, to, at) {
            self.stats.dropped_partition += 1;
            return Admit::Drop;
        }
        match self.fate(from, to) {
            FrameFate::Drop => Admit::Drop,
            FrameFate::Deliver => Admit::Deliver,
            FrameFate::Duplicate => Admit::Duplicate,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fate_is_deterministic_and_counter_indexed() {
        let faults = LinkFaults { drop: 0.3, dup: 0.2 };
        let a: Vec<FrameFate> = (0..200).map(|k| frame_fate(7, 5, k, &faults)).collect();
        let b: Vec<FrameFate> = (0..200).map(|k| frame_fate(7, 5, k, &faults)).collect();
        assert_eq!(a, b);
        let c: Vec<FrameFate> = (0..200).map(|k| frame_fate(8, 5, k, &faults)).collect();
        assert_ne!(a, c, "different seeds must give different verdicts");
        assert!(a.contains(&FrameFate::Drop));
        assert!(a.contains(&FrameFate::Duplicate));
        assert!(a.contains(&FrameFate::Deliver));
    }

    #[test]
    fn drop_frequency_tracks_probability() {
        let faults = LinkFaults { drop: 0.2, dup: 0.0 };
        let drops = (0..10_000)
            .filter(|&k| frame_fate(42, 3, k, &faults) == FrameFate::Drop)
            .count();
        assert!((1_700..2_300).contains(&drops), "got {drops} drops");
    }

    #[test]
    fn filter_matches_state_per_link() {
        let plan = FaultPlan::new(99).drop_rate(0.25).dup_rate(0.1);
        let n = 4;
        let mut state = FaultState::new(plan.clone(), n);
        let mut filter = LinkFilter::new(&plan, 1, 2, n);
        for _ in 0..500 {
            assert_eq!(state.fate(1, 2), filter.next_fate());
        }
        assert_eq!(filter.frames(), 500);
    }

    #[test]
    fn overrides_take_precedence() {
        let plan = FaultPlan::new(1)
            .drop_rate(0.0)
            .link_override(0, 1, LinkFaults { drop: 1.0, dup: 0.0 });
        assert_eq!(plan.link_faults(0, 1).drop, 1.0);
        assert_eq!(plan.link_faults(1, 0).drop, 0.0);
        let mut state = FaultState::new(plan, 2);
        assert_eq!(state.fate(0, 1), FrameFate::Drop);
        assert_eq!(state.fate(1, 0), FrameFate::Deliver);
    }

    #[test]
    fn partitions_cut_only_crossing_links_during_window() {
        let plan = FaultPlan::new(1).partition(
            vec![0, 1],
            Time::from_millis(10),
            Time::from_millis(20),
        );
        let state = FaultState::new(plan, 4);
        let mid = Time::from_millis(15);
        assert!(state.partitioned(0, 2, mid));
        assert!(state.partitioned(3, 1, mid));
        assert!(!state.partitioned(0, 1, mid), "intra-group link unaffected");
        assert!(!state.partitioned(2, 3, mid));
        // Before and after (heal) the window, nothing is cut.
        assert!(!state.partitioned(0, 2, Time::from_millis(9)));
        assert!(!state.partitioned(0, 2, Time::from_millis(20)));
    }

    #[test]
    fn outage_windows_and_admit_semantics() {
        let plan = FaultPlan::new(1)
            .pause(0, Time::from_millis(5), Time::from_millis(10))
            .crash(1, Time::from_millis(5), Time::from_millis(10));
        let mut state = FaultState::new(plan, 3);
        let mid = Time::from_millis(7);
        assert_eq!(
            state.outage(0, mid),
            Some((OutageKind::Pause, Time::from_millis(10)))
        );
        assert_eq!(state.outage(2, mid), None);
        assert_eq!(state.admit(2, 0, mid), Admit::Defer(Time::from_millis(10)));
        assert_eq!(state.admit(2, 1, mid), Admit::Drop);
        assert_eq!(state.admit(0, 2, mid), Admit::Deliver);
        assert_eq!(state.stats.deferred, 1);
        assert_eq!(state.stats.dropped_crash, 1);
        // After the restart instant both nodes deliver again.
        let after = Time::from_millis(10);
        assert_eq!(state.admit(2, 0, after), Admit::Deliver);
        assert_eq!(state.admit(2, 1, after), Admit::Deliver);
    }

    #[test]
    fn lossy_and_clean_classification() {
        assert!(FaultPlan::new(1).is_clean());
        assert!(!FaultPlan::new(1).is_lossy());
        assert!(FaultPlan::new(1).drop_rate(0.1).is_lossy());
        let dup_only = FaultPlan::new(1).dup_rate(0.5);
        assert!(!dup_only.is_lossy(), "dup-only plans lose nothing");
        assert!(!dup_only.is_clean());
        let pause_only = FaultPlan::new(1).pause(0, Time::ZERO, Time::from_secs(1));
        assert!(!pause_only.is_lossy(), "pause defers, never loses");
        assert!(FaultPlan::new(1)
            .crash(0, Time::ZERO, Time::from_secs(1))
            .is_lossy());
        assert!(FaultPlan::new(1)
            .partition(vec![0], Time::ZERO, Time::from_secs(1))
            .is_lossy());
    }

    #[test]
    #[should_panic(expected = "must be in [0, 1]")]
    fn probabilities_are_validated() {
        let _ = FaultPlan::new(1).drop_rate(1.5);
    }

    #[test]
    fn recoverable_classification() {
        assert!(FaultPlan::new(1).is_recoverable());
        assert!(FaultPlan::new(1).drop_rate(0.999).is_recoverable());
        assert!(!FaultPlan::new(1).drop_rate(1.0).is_recoverable());
        assert!(!FaultPlan::new(1)
            .link_override(0, 1, LinkFaults { drop: 1.0, dup: 0.0 })
            .is_recoverable());
        // Partitions and crashes are time-bounded: recoverable.
        assert!(FaultPlan::new(1)
            .partition(vec![0], Time::ZERO, Time::from_secs(1))
            .crash(1, Time::ZERO, Time::from_secs(1))
            .is_recoverable());
    }

    #[test]
    fn admit_absorbs_duplicates_admit_wire_surfaces_them() {
        let plan = FaultPlan::new(5).dup_rate(1.0);
        let at = Time::from_millis(1);
        let mut absorb = FaultState::new(plan.clone(), 2);
        assert_eq!(absorb.admit(0, 1, at), Admit::Deliver);
        assert_eq!(absorb.stats.duplicated, 1);
        assert_eq!(absorb.stats.deduped, 1);
        let mut wire = FaultState::new(plan, 2);
        assert_eq!(wire.admit_wire(0, 1, at), Admit::Duplicate);
        assert_eq!(wire.stats.duplicated, 1);
        assert_eq!(wire.stats.deduped, 0, "the session layer absorbs it");
    }
}
