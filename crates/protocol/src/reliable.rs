//! The reliable-delivery session layer: exactly-once FIFO channels over
//! lossy links.
//!
//! Every algorithm in this workspace is specified over **reliable FIFO
//! channels** (the paper's hypothesis 2).  PR 4's fault sweep demonstrated
//! what happens when that hypothesis is silently dropped: with no
//! retransmission, every protocol collapses past per-mille sustained frame
//! loss, and liveness is simply "not owed".  This module makes the channel
//! contract real — a per-ordered-pair session protocol that upgrades any
//! lossy-but-FIFO link back to exactly-once FIFO delivery:
//!
//! * **monotone sequence numbers** — the sender stamps the `k`-th frame on
//!   a directed link with `seq = k`;
//! * **cumulative acks** — the receiver tracks `expected`, the next
//!   in-order sequence number; the value `expected` acknowledges every
//!   frame with `seq < expected`.  Acks are piggybacked on reverse-direction
//!   data traffic and sent as standalone ack frames when no reverse data is
//!   flowing;
//! * **timer-driven retransmission** — while unacknowledged frames exist
//!   the sender arms a retransmit timer; on expiry it re-sends the whole
//!   unacked window (go-back-N: the underlying channel is FIFO, so the
//!   receiver only ever accepts `expected` and discards the rest) and backs
//!   off exponentially up to a cap;
//! * **receive-side dedup window** — frames with `seq < expected` are
//!   duplicates (a retransmission that raced the ack, or a wire-level
//!   duplicate): they are discarded *and re-acked*, so a lost ack cannot
//!   wedge the sender.  Frames with `seq > expected` are gap frames (an
//!   earlier frame was lost); discarding them preserves FIFO and the
//!   retransmit timer recovers the gap.
//!
//! The state containers come in two granularities: [`TxSession`] /
//! [`RxSession`] for substrates that own one link at a time (the TCP
//! transport keeps one pair per peer), and [`ReliableState`] for engines
//! that own all `n²` links of a run (`Sim`, `VirtualNet`).  All buffers are
//! pre-sized at construction ([`Reliability::window`]), so the steady-state
//! send/ack path performs no heap allocation beyond cloning the message
//! payload into the retransmit window — the simulator's zero-alloc guard
//! runs with reliability enabled over a lossy plan.
//!
//! With reliability **off** the links are the paper-faithful perfect
//! channels (nothing changes); with reliability **on** the same protocols
//! survive any fault plan that is [recoverable](
//! crate::faults::FaultPlan::is_recoverable) — every drop rate below 1.0 —
//! and the engines re-arm their deadlock detectors accordingly.

use crate::faults::FaultPlan;
use mra_types::{NodeId, Time};
use std::collections::VecDeque;

/// Retransmission never backs off beyond `rto << MAX_BACKOFF`.
const MAX_BACKOFF: u32 = 6;

/// Session-layer configuration.  `off` is represented by *not installing*
/// a `Reliability` at all (`Option<Reliability>` everywhere): the engines
/// then run the paper's perfect-link model untouched.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct Reliability {
    /// Initial retransmission timeout (doubles per expiry while a frame
    /// stays unacknowledged).
    pub rto: Time,
    /// Upper bound of the exponential backoff.
    pub rto_cap: Time,
    /// Pre-sized per-link retransmit window (frames).  The window grows on
    /// demand; the pre-size only decides when the first reallocation
    /// happens (the zero-alloc guard uses a generous one).
    pub window: usize,
}

impl Default for Reliability {
    /// 10 ms initial RTO (≫ the paper's γ = 0.6 ms LAN latency), capped at
    /// `10 ms << MAX_BACKOFF` = 640 ms, 64-frame window pre-size.
    fn default() -> Self {
        Reliability::with_rto(Time::from_millis(10))
    }
}

impl Reliability {
    /// A configuration with the given initial RTO and the default cap
    /// (`rto << MAX_BACKOFF`) and window pre-size.
    pub fn with_rto(rto: Time) -> Self {
        assert!(rto > Time::ZERO, "RTO must be positive");
        Reliability {
            rto,
            rto_cap: Time::from_nanos(
                (rto.as_nanos() as u128) // u128: the shift cannot overflow
                    .checked_shl(MAX_BACKOFF)
                    .map_or(u64::MAX, |v| v.min(u64::MAX as u128) as u64),
            ),
            window: 64,
        }
    }

    /// Is `MRA_RELIABLE` set to a truthy value (`1`, `true`, `yes`, `on`)?
    pub fn env_enabled() -> bool {
        std::env::var("MRA_RELIABLE")
            .map(|v| {
                matches!(
                    v.trim().to_ascii_lowercase().as_str(),
                    "1" | "true" | "yes" | "on"
                )
            })
            .unwrap_or(false)
    }

    /// The initial RTO from `MRA_RTO_MS` (fractional milliseconds), or
    /// `default` when unset, unparsable or non-positive.  Shared by
    /// [`Reliability::from_env`] and sweeps that enable the session layer
    /// explicitly but still honour the RTO knob.
    pub fn env_rto_or(default: Time) -> Time {
        std::env::var("MRA_RTO_MS")
            .ok()
            .and_then(|v| v.trim().parse::<f64>().ok())
            .filter(|ms| *ms > 0.0)
            .map(Time::from_millis_f64)
            .unwrap_or(default)
    }

    /// The session config from the environment: `Some` when `MRA_RELIABLE`
    /// is truthy, with the initial RTO overridden by `MRA_RTO_MS`.
    pub fn from_env() -> Option<Reliability> {
        if !Self::env_enabled() {
            return None;
        }
        Some(Reliability::with_rto(Self::env_rto_or(Time::from_millis(
            10,
        ))))
    }

    /// The retransmission delay after `backoff` consecutive expiries:
    /// `min(rto << backoff, rto_cap)`.
    pub fn delay(&self, backoff: u32) -> Time {
        let ns = (self.rto.as_nanos() as u128)
            .checked_shl(backoff.min(MAX_BACKOFF))
            .map_or(u128::MAX, |v| v);
        Time::from_nanos(ns.min(self.rto_cap.as_nanos() as u128) as u64)
    }
}

/// What the session layer did during a run.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct ReliabilityStats {
    /// Data frames sent for the first time.
    pub data_sent: u64,
    /// Data frames re-sent by a retransmit timer.
    pub retransmits: u64,
    /// Retransmit timer expiries that found unacked frames.
    pub rto_fires: u64,
    /// Standalone ack frames sent.
    pub acks_sent: u64,
    /// Acks piggybacked on reverse-direction data frames.
    pub acks_piggybacked: u64,
    /// Received data frames discarded as duplicates (`seq < expected`).
    pub dup_dropped: u64,
    /// Received data frames discarded as gaps (`seq > expected`).
    pub gap_dropped: u64,
}

impl ReliabilityStats {
    /// Frames the session layer put on the wire beyond first-transmission
    /// data: the retransmission overhead numerator.
    pub fn overhead_frames(&self) -> u64 {
        self.retransmits + self.acks_sent
    }

    /// Overhead in percent of first-transmission data frames (0 when no
    /// data flowed).
    pub fn overhead_pct(&self) -> f64 {
        if self.data_sent == 0 {
            return 0.0;
        }
        100.0 * self.overhead_frames() as f64 / self.data_sent as f64
    }

    /// Fold another counter set into this one — used by sharded engines
    /// that keep one session layer per shard and aggregate at the end.
    pub fn absorb(&mut self, other: &ReliabilityStats) {
        self.data_sent += other.data_sent;
        self.retransmits += other.retransmits;
        self.rto_fires += other.rto_fires;
        self.acks_sent += other.acks_sent;
        self.acks_piggybacked += other.acks_piggybacked;
        self.dup_dropped += other.dup_dropped;
        self.gap_dropped += other.gap_dropped;
    }
}

/// One frame held in the retransmit window.
#[derive(Clone, Debug)]
struct Held<M> {
    seq: u64,
    /// When the frame was (re)transmitted last — the RTO compares against
    /// the *oldest* held frame so a timer armed for frame `k` never
    /// spuriously re-sends a younger frame `k+1` (clockless engines pass
    /// [`Time::ZERO`]; they trigger retransmission explicitly instead).
    sent_at: Time,
    msg: M,
}

/// Verdict of a retransmit timer expiry ([`TxSession::on_rto`]).
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum RtoVerdict {
    /// Nothing unacknowledged: the timer dies (the next send re-arms it).
    Idle,
    /// The oldest unacked frame is younger than the timeout: nothing to
    /// re-send yet, re-arm at the contained instant (no backoff bump).
    Rearm(Time),
    /// The oldest unacked frame timed out: re-send the whole window
    /// (go-back-N; the receive window discards what it already has) — the
    /// contained count of frames — with the backoff bumped.
    Retransmit(usize),
}

/// Sender half of one directed link session.
#[derive(Clone, Debug)]
pub struct TxSession<M> {
    next_seq: u64,
    unacked: VecDeque<Held<M>>,
    backoff: u32,
}

impl<M: Clone> TxSession<M> {
    /// Fresh session with a pre-sized retransmit window.
    pub fn new(window: usize) -> Self {
        TxSession {
            next_seq: 0,
            unacked: VecDeque::with_capacity(window),
            backoff: 0,
        }
    }

    /// Stamp the next outgoing frame and retain a copy for retransmission.
    /// Returns the assigned sequence number.
    pub fn send(&mut self, msg: &M, now: Time) -> u64 {
        let seq = self.next_seq;
        self.next_seq += 1;
        self.unacked.push_back(Held { seq, sent_at: now, msg: msg.clone() });
        seq
    }

    /// Apply a cumulative ack (`upto` acknowledges every `seq < upto`).
    /// Returns true when at least one frame was newly acknowledged — the
    /// backoff resets on progress.
    pub fn ack(&mut self, upto: u64) -> bool {
        let mut progressed = false;
        while self.unacked.front().is_some_and(|h| h.seq < upto) {
            self.unacked.pop_front();
            progressed = true;
        }
        if progressed {
            self.backoff = 0;
        }
        progressed
    }

    /// Are frames awaiting acknowledgement?
    pub fn has_unacked(&self) -> bool {
        !self.unacked.is_empty()
    }

    /// The unacknowledged `(seq, msg)` pairs, oldest first.
    pub fn unacked(&self) -> impl Iterator<Item = (u64, &M)> {
        self.unacked.iter().map(|h| (h.seq, &h.msg))
    }

    /// A retransmit timer expired at `now` under `cfg`.  On
    /// [`RtoVerdict::Retransmit`] the whole window counts as re-sent at
    /// `now` (the frames' ages reset) and the backoff is bumped; the caller
    /// re-sends [`TxSession::unacked`] and re-arms at
    /// [`TxSession::rto_delay`].
    pub fn on_rto(&mut self, now: Time, cfg: &Reliability) -> RtoVerdict {
        let Some(oldest) = self.unacked.front() else {
            return RtoVerdict::Idle;
        };
        let due = oldest.sent_at + cfg.delay(self.backoff);
        if due > now {
            return RtoVerdict::Rearm(due);
        }
        self.backoff = (self.backoff + 1).min(MAX_BACKOFF);
        for h in self.unacked.iter_mut() {
            h.sent_at = now;
        }
        RtoVerdict::Retransmit(self.unacked.len())
    }

    /// The underlying link just came up.  Frames sent while the
    /// connection was still forming were parked locally, never on the
    /// wire, so their RTO clocks must restart from `now` (and the
    /// backoff with them) — otherwise the timer fires the instant a
    /// slow-forming link connects and "retransmits" frames whose first
    /// copy is still in the write queue.
    pub fn link_up(&mut self, now: Time) {
        self.backoff = 0;
        for h in self.unacked.iter_mut() {
            h.sent_at = now;
        }
    }

    /// Current retransmission delay under `cfg`.
    pub fn rto_delay(&self, cfg: &Reliability) -> Time {
        cfg.delay(self.backoff)
    }

    /// Data frames sent so far (first transmissions).
    pub fn sent(&self) -> u64 {
        self.next_seq
    }
}

/// Verdict of the receive-side dedup window for one data frame.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum RxVerdict {
    /// In order: hand the payload to the protocol exactly once.
    Deliver,
    /// `seq < expected`: a duplicate — discard, but re-ack (the ack that
    /// would have cleared it may have been lost).
    Stale,
    /// `seq > expected`: an earlier frame was lost — discard to preserve
    /// FIFO; the sender's timer retransmits the gap.
    Gap,
}

/// Receiver half of one directed link session.
#[derive(Clone, Copy, Debug, Default)]
pub struct RxSession {
    expected: u64,
}

impl RxSession {
    /// Classify an arriving sequence number, advancing the window on an
    /// in-order frame.
    pub fn accept(&mut self, seq: u64) -> RxVerdict {
        use std::cmp::Ordering::*;
        match seq.cmp(&self.expected) {
            Equal => {
                self.expected += 1;
                RxVerdict::Deliver
            }
            Less => RxVerdict::Stale,
            Greater => RxVerdict::Gap,
        }
    }

    /// The cumulative ack value: every `seq < cum()` has been delivered.
    pub fn cum(&self) -> u64 {
        self.expected
    }
}

/// [`RxSession`] plus the ack-owed flag, at per-pair granularity: the
/// transport-side analogue of the per-link `ack_owed` bookkeeping inside
/// [`ReliableState`].  Transports that own one session per peer (the TCP
/// ports) use this to *batch* acks — an owed ack rides piggybacked on the
/// next outbound data frame, or is flushed as one standalone ack frame
/// per servicing pass, instead of one ack write per received frame.
#[derive(Clone, Copy, Debug, Default)]
pub struct RxBatch {
    sess: RxSession,
    owed: bool,
}

impl RxBatch {
    /// Classify an arriving sequence number.  Every data frame — delivered,
    /// stale or gap — marks an ack owed: duplicates must be re-acked (the
    /// ack that would have cleared them may have been lost), and re-acking
    /// on a gap costs nothing since the flag batches.
    pub fn accept(&mut self, seq: u64) -> RxVerdict {
        self.owed = true;
        self.sess.accept(seq)
    }

    /// The cumulative ack value: every `seq < cum()` has been delivered.
    pub fn cum(&self) -> u64 {
        self.sess.cum()
    }

    /// Is a cumulative ack owed to the peer?
    pub fn ack_owed(&self) -> bool {
        self.owed
    }

    /// The piggyback ack for an outbound data frame.  Consumes the owed
    /// flag: the data frame carries the ack, so no standalone ack is due.
    pub fn piggyback(&mut self) -> u64 {
        self.owed = false;
        self.sess.cum()
    }

    /// Consume the owed flag and return the value to send as a standalone
    /// ack frame, or `None` when nothing is owed (e.g. a data frame just
    /// piggybacked it).  Call once per servicing pass, after all sends.
    pub fn take_owed(&mut self) -> Option<u64> {
        if self.owed {
            self.owed = false;
            Some(self.sess.cum())
        } else {
            None
        }
    }
}

/// A session-layer frame as it travels a link.  Engines whose links carry
/// typed messages (`VirtualNet`) enqueue these; the TCP transport encodes
/// the same three shapes as wire frames.
#[derive(Clone, Debug)]
pub enum Packet<M> {
    /// Reliability off: the raw protocol message, no session framing.
    Plain(M),
    /// A sequenced protocol message with a piggybacked cumulative ack.
    Data {
        /// Monotone per-link sequence number.
        seq: u64,
        /// Cumulative ack for the reverse direction.
        ack: u64,
        /// The protocol payload.
        msg: M,
    },
    /// A standalone cumulative ack for the reverse direction.
    Ack {
        /// Cumulative ack value.
        ack: u64,
    },
}

/// Receiver bookkeeping of one directed link inside [`ReliableState`].
#[derive(Clone, Debug, Default)]
struct LinkRx {
    sess: RxSession,
    /// An ack is owed to the sender and has not yet been piggybacked.
    ack_owed: bool,
}

/// Session state for engines that own **all** links of an `n`-node run
/// (`Sim`, `VirtualNet`): one [`TxSession`]/[`RxSession`] pair per directed
/// link (`from * n + to`), plus per-link timer-armed flags and the running
/// [`ReliabilityStats`].
///
/// Direction conventions (`L(a→b) = a * n + b`):
/// * a data frame on `L(a→b)` carries `seq` from `tx[L(a→b)]` and a
///   piggybacked `ack` describing `rx[L(b→a)]` (what `a` has received from
///   `b`);
/// * its receiver `b` feeds `seq` to `rx[L(a→b)]` and `ack` to
///   `tx[L(b→a)]`;
/// * a standalone ack from `b` to `a` acknowledges `L(a→b)` and is applied
///   to `tx[L(a→b)]`.
#[derive(Clone, Debug)]
pub struct ReliableState<M> {
    cfg: Reliability,
    n: usize,
    tx: Vec<TxSession<M>>,
    rx: Vec<LinkRx>,
    /// Is a retransmit timer event in flight for this tx link?  (Engines
    /// with an event heap keep exactly one timer per link.)
    armed: Vec<bool>,
    /// What happened so far.
    pub stats: ReliabilityStats,
}

impl<M: Clone> ReliableState<M> {
    /// Instantiate the session layer for an `n`-node system.
    pub fn new(cfg: Reliability, n: usize) -> Self {
        ReliableState {
            n,
            tx: (0..n * n).map(|_| TxSession::new(cfg.window)).collect(),
            rx: vec![LinkRx::default(); n * n],
            armed: vec![false; n * n],
            stats: ReliabilityStats::default(),
            cfg,
        }
    }

    /// The installed configuration.
    pub fn cfg(&self) -> &Reliability {
        &self.cfg
    }

    #[inline]
    fn link(&self, from: NodeId, to: NodeId) -> usize {
        debug_assert!(from < self.n && to < self.n);
        from * self.n + to
    }

    /// Stamp an outgoing protocol message on `from → to` at `now` (the
    /// frame age drives the retransmit timer; clockless engines pass
    /// [`Time::ZERO`]): assigns the sequence number, retains the retransmit
    /// copy and computes the piggybacked ack (clearing the owed-ack flag of
    /// the reverse link).  Returns `(seq, ack)`.
    pub fn on_send(&mut self, from: NodeId, to: NodeId, msg: &M, now: Time) -> (u64, u64) {
        let l = self.link(from, to);
        let seq = self.tx[l].send(msg, now);
        let rev = self.link(to, from);
        let r = &mut self.rx[rev];
        if r.ack_owed {
            r.ack_owed = false;
            self.stats.acks_piggybacked += 1;
        }
        self.stats.data_sent += 1;
        (seq, r.sess.cum())
    }

    /// Process an arriving data frame on `from → to`.  Applies the
    /// piggybacked ack, classifies the sequence number and marks an ack
    /// owed (for *every* data frame — duplicates must be re-acked).
    /// Returns true when the payload is to be delivered to the protocol.
    pub fn on_data(&mut self, from: NodeId, to: NodeId, seq: u64, ack: u64) -> bool {
        let rev = self.link(to, from);
        self.tx[rev].ack(ack);
        let l = self.link(from, to);
        let r = &mut self.rx[l];
        r.ack_owed = true;
        match r.sess.accept(seq) {
            RxVerdict::Deliver => true,
            RxVerdict::Stale => {
                self.stats.dup_dropped += 1;
                false
            }
            RxVerdict::Gap => {
                self.stats.gap_dropped += 1;
                false
            }
        }
    }

    /// Process a standalone ack sent by `from` to `to` (acknowledging data
    /// on `to → from`).
    pub fn on_ack(&mut self, from: NodeId, to: NodeId, ack: u64) {
        let l = self.link(to, from);
        self.tx[l].ack(ack);
    }

    /// If an ack is owed on the data link `from → to`, consume the flag and
    /// return the cumulative ack value the receiver (`to`) should send back
    /// to `from` as a standalone ack frame.  Engines call this after a
    /// dispatch: when the handler already replied with data, the piggyback
    /// in [`ReliableState::on_send`] cleared the flag and this returns
    /// `None`.
    pub fn pending_ack(&mut self, from: NodeId, to: NodeId) -> Option<u64> {
        let l = self.link(from, to);
        let r = &mut self.rx[l];
        if r.ack_owed {
            r.ack_owed = false;
            self.stats.acks_sent += 1;
            Some(r.sess.cum())
        } else {
            None
        }
    }

    /// The current piggyback ack value for data on `from → to` *without*
    /// consuming the owed flag (used when re-encoding retransmissions).
    pub fn ack_for(&self, from: NodeId, to: NodeId) -> u64 {
        self.rx[self.link(to, from)].sess.cum()
    }

    /// Should the engine arm a retransmit timer for `from → to` now?
    /// True exactly once per armed period: when unacked frames exist and no
    /// timer is in flight (the flag is cleared by [`ReliableState::on_rto`]).
    pub fn needs_arm(&mut self, from: NodeId, to: NodeId) -> bool {
        let l = self.link(from, to);
        if !self.armed[l] && self.tx[l].has_unacked() {
            self.armed[l] = true;
            true
        } else {
            false
        }
    }

    /// The delay until the next retransmission of `from → to` under the
    /// current backoff.
    pub fn rto_delay(&self, from: NodeId, to: NodeId) -> Time {
        self.tx[self.link(from, to)].rto_delay(&self.cfg)
    }

    /// A retransmit timer for `from → to` fired at `now`.  On
    /// [`RtoVerdict::Retransmit`] the timer stays armed (the engine
    /// re-sends [`ReliableState::unacked`] and schedules the next expiry at
    /// [`ReliableState::rto_delay`], which the call just backed off); on
    /// [`RtoVerdict::Rearm`] it stays armed without a backoff bump (the
    /// oldest frame is younger than the timeout — re-arm at the returned
    /// instant); on [`RtoVerdict::Idle`] it is disarmed.
    pub fn on_rto(&mut self, from: NodeId, to: NodeId, now: Time) -> RtoVerdict {
        let l = self.link(from, to);
        let verdict = self.tx[l].on_rto(now, &self.cfg);
        match verdict {
            RtoVerdict::Retransmit(k) => {
                self.stats.rto_fires += 1;
                self.stats.retransmits += k as u64;
                self.armed[l] = true;
            }
            RtoVerdict::Rearm(_) => self.armed[l] = true,
            RtoVerdict::Idle => self.armed[l] = false,
        }
        verdict
    }

    /// The unacknowledged `(seq, msg)` pairs of `from → to`, oldest first.
    pub fn unacked(&self, from: NodeId, to: NodeId) -> impl Iterator<Item = (u64, &M)> {
        self.tx[self.link(from, to)].unacked()
    }

    /// Any unacknowledged frame on any link?
    pub fn has_unacked_any(&self) -> bool {
        self.tx.iter().any(|t| t.has_unacked())
    }

    /// Re-emit every unacknowledged frame on every link through `emit`
    /// (clockless engines call this when the network would otherwise be
    /// stuck — the abstract "all timers fired at once").  Returns the
    /// number of frames re-emitted.
    pub fn retransmit_all(
        &mut self,
        mut emit: impl FnMut(NodeId, NodeId, Packet<M>),
    ) -> usize {
        let n = self.n;
        let mut count = 0usize;
        for l in 0..n * n {
            let k = self.tx[l].unacked.len();
            if k == 0 {
                continue;
            }
            let (from, to) = (l / n, l % n);
            let ack = self.rx[to * n + from].sess.cum();
            self.stats.rto_fires += 1;
            self.stats.retransmits += k as u64;
            for (seq, msg) in self.tx[l].unacked() {
                emit(from, to, Packet::Data { seq, ack, msg: msg.clone() });
            }
            count += k;
        }
        count
    }

    /// True when the installed fault `plan` is one this session layer can
    /// fully recover from (every drop rate `< 1.0`; partitions heal and
    /// outages end by construction).  `None` — no plan — is trivially
    /// recoverable.
    pub fn recovers(plan: Option<&FaultPlan>) -> bool {
        plan.map_or(true, FaultPlan::is_recoverable)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn rx_batch_owes_one_ack_per_servicing_pass() {
        let mut rx = RxBatch::default();
        assert!(!rx.ack_owed());
        assert_eq!(rx.take_owed(), None);

        // A burst of in-order frames owes exactly one cumulative ack.
        assert_eq!(rx.accept(0), RxVerdict::Deliver);
        assert_eq!(rx.accept(1), RxVerdict::Deliver);
        assert_eq!(rx.accept(2), RxVerdict::Deliver);
        assert!(rx.ack_owed());
        assert_eq!(rx.take_owed(), Some(3));
        assert_eq!(rx.take_owed(), None, "flag consumed");

        // A duplicate re-owes an ack (the clearing ack may have been lost).
        assert_eq!(rx.accept(1), RxVerdict::Stale);
        assert_eq!(rx.take_owed(), Some(3));

        // Piggybacking onto outbound data consumes the flag too: no
        // standalone ack follows a data frame that already carried it.
        assert_eq!(rx.accept(3), RxVerdict::Deliver);
        assert_eq!(rx.piggyback(), 4);
        assert_eq!(rx.take_owed(), None);

        // A gap frame still owes (batched, so it costs no extra frame).
        assert_eq!(rx.accept(9), RxVerdict::Gap);
        assert_eq!(rx.cum(), 4);
        assert_eq!(rx.take_owed(), Some(4));
    }

    #[test]
    fn tx_session_sequences_acks_and_backs_off() {
        let cfg = Reliability::with_rto(Time::from_millis(10));
        let t0 = Time::ZERO;
        let mut tx: TxSession<u32> = TxSession::new(8);
        assert_eq!(tx.send(&10, t0), 0);
        assert_eq!(tx.send(&11, t0), 1);
        assert_eq!(tx.send(&12, t0), 2);
        assert!(tx.has_unacked());
        // Cumulative ack clears a prefix.
        assert!(tx.ack(2));
        assert_eq!(tx.unacked().count(), 1);
        assert!(!tx.ack(2), "re-ack makes no progress");
        // Due RTOs bump the backoff; progress resets it.
        assert_eq!(tx.rto_delay(&cfg), Time::from_millis(10));
        assert_eq!(tx.on_rto(Time::from_millis(10), &cfg), RtoVerdict::Retransmit(1));
        assert_eq!(tx.rto_delay(&cfg), Time::from_millis(20));
        assert_eq!(tx.on_rto(Time::from_millis(30), &cfg), RtoVerdict::Retransmit(1));
        assert_eq!(tx.rto_delay(&cfg), Time::from_millis(40));
        assert!(tx.ack(3));
        assert!(!tx.has_unacked());
        assert_eq!(tx.rto_delay(&cfg), Time::from_millis(10), "backoff reset");
        assert_eq!(
            tx.on_rto(Time::from_millis(99), &cfg),
            RtoVerdict::Idle,
            "nothing left to retransmit"
        );
        assert_eq!(tx.sent(), 3);
    }

    #[test]
    fn young_frames_rearm_instead_of_retransmitting() {
        // A timer armed for frame A must not re-send frame B that was sent
        // just before the expiry — the perfect-link regression PR 5 fixes.
        let cfg = Reliability::with_rto(Time::from_millis(10));
        let mut tx: TxSession<u32> = TxSession::new(8);
        tx.send(&1, Time::ZERO);
        // Frame 0 acked quickly; frame 1 sent at t = 8 ms.
        assert!(tx.ack(1));
        tx.send(&2, Time::from_millis(8));
        // The timer armed at t = 0 fires at t = 10: frame 1 is only 2 ms
        // old — re-arm at its own deadline (18 ms), no backoff bump.
        assert_eq!(
            tx.on_rto(Time::from_millis(10), &cfg),
            RtoVerdict::Rearm(Time::from_millis(18))
        );
        assert_eq!(tx.rto_delay(&cfg), Time::from_millis(10));
        assert_eq!(
            tx.on_rto(Time::from_millis(18), &cfg),
            RtoVerdict::Retransmit(1)
        );
    }

    #[test]
    fn backoff_is_capped() {
        let cfg = Reliability::with_rto(Time::from_millis(10));
        let mut tx: TxSession<u32> = TxSession::new(4);
        tx.send(&1, Time::ZERO);
        for k in 0..40u64 {
            // Always due: retransmission stamps `sent_at = now`, so fire
            // exactly one cap-delay later each round.
            tx.on_rto(Time::from_secs(1) * k, &cfg);
        }
        assert_eq!(tx.rto_delay(&cfg), cfg.rto_cap);
        assert_eq!(cfg.rto_cap, Time::from_millis(640));
    }

    #[test]
    fn rx_session_delivers_exactly_once_in_order() {
        let mut rx = RxSession::default();
        assert_eq!(rx.accept(0), RxVerdict::Deliver);
        assert_eq!(rx.accept(0), RxVerdict::Stale, "retransmitted duplicate");
        assert_eq!(rx.accept(2), RxVerdict::Gap, "frame 1 was lost");
        assert_eq!(rx.accept(1), RxVerdict::Deliver);
        assert_eq!(rx.accept(2), RxVerdict::Deliver);
        assert_eq!(rx.cum(), 3);
    }

    #[test]
    fn state_piggybacks_and_emits_standalone_acks() {
        let mut st: ReliableState<u32> = ReliableState::new(Reliability::default(), 2);
        // 0 sends to 1; 1 receives and owes an ack.
        let (seq, ack) = st.on_send(0, 1, &7, Time::ZERO);
        assert_eq!((seq, ack), (0, 0));
        assert!(st.on_data(0, 1, seq, ack));
        // No reverse data: the ack surfaces as a standalone frame.
        assert_eq!(st.pending_ack(0, 1), Some(1));
        assert_eq!(st.pending_ack(0, 1), None, "flag consumed");
        st.on_ack(1, 0, 1);
        assert!(!st.has_unacked_any());
        assert_eq!(st.stats.acks_sent, 1);
        assert_eq!(st.stats.acks_piggybacked, 0);
    }

    #[test]
    fn reverse_data_consumes_the_owed_ack() {
        let mut st: ReliableState<u32> = ReliableState::new(Reliability::default(), 2);
        let (s0, a0) = st.on_send(0, 1, &7, Time::ZERO);
        assert!(st.on_data(0, 1, s0, a0));
        // 1 replies with data: the ack rides along.
        let (s1, a1) = st.on_send(1, 0, &8, Time::ZERO);
        assert_eq!((s1, a1), (0, 1), "piggyback carries cum ack 1");
        assert_eq!(st.pending_ack(0, 1), None, "consumed by the piggyback");
        assert!(st.on_data(1, 0, s1, a1));
        assert!(st.unacked(0, 1).next().is_none(), "0→1 frame acked");
        assert_eq!(st.stats.acks_piggybacked, 1);
    }

    #[test]
    fn duplicates_are_dropped_and_reacked() {
        let mut st: ReliableState<u32> = ReliableState::new(Reliability::default(), 2);
        let (seq, ack) = st.on_send(0, 1, &7, Time::ZERO);
        assert!(st.on_data(0, 1, seq, ack));
        let _ = st.pending_ack(0, 1);
        // The same frame again (wire duplicate or raced retransmission).
        assert!(!st.on_data(0, 1, seq, ack));
        assert_eq!(st.stats.dup_dropped, 1);
        assert_eq!(st.pending_ack(0, 1), Some(1), "duplicates are re-acked");
    }

    #[test]
    fn gaps_are_dropped_and_recovered_by_retransmission() {
        let mut st: ReliableState<u32> = ReliableState::new(Reliability::default(), 2);
        let (s0, _) = st.on_send(0, 1, &7, Time::ZERO);
        let (s1, a1) = st.on_send(0, 1, &8, Time::ZERO);
        assert_eq!((s0, s1), (0, 1));
        // Frame 0 lost on the wire; frame 1 arrives as a gap.
        assert!(!st.on_data(0, 1, s1, a1));
        assert_eq!(st.stats.gap_dropped, 1);
        // Timer path: both frames retransmit, in order.
        assert!(st.needs_arm(0, 1));
        assert!(!st.needs_arm(0, 1), "only one timer per link");
        assert_eq!(st.on_rto(0, 1, Time::from_secs(1)), RtoVerdict::Retransmit(2));
        let seqs: Vec<u64> = st.unacked(0, 1).map(|(s, _)| s).collect();
        assert_eq!(seqs, vec![0, 1]);
        // Receiver accepts 0 then 1, each exactly once.
        assert!(st.on_data(0, 1, 0, 0));
        assert!(st.on_data(0, 1, 1, 0));
        assert!(!st.on_data(0, 1, 1, 0));
    }

    #[test]
    fn retransmit_all_re_emits_every_unacked_frame() {
        let mut st: ReliableState<u32> = ReliableState::new(Reliability::default(), 3);
        st.on_send(0, 1, &1, Time::ZERO);
        st.on_send(0, 1, &2, Time::ZERO);
        st.on_send(2, 0, &3, Time::ZERO);
        let mut seen = Vec::new();
        let k = st.retransmit_all(|from, to, p| {
            if let Packet::Data { seq, msg, .. } = p {
                seen.push((from, to, seq, msg));
            }
        });
        assert_eq!(k, 3);
        assert_eq!(seen, vec![(0, 1, 0, 1), (0, 1, 1, 2), (2, 0, 0, 3)]);
        assert_eq!(st.stats.retransmits, 3);
    }

    #[test]
    fn delay_doubles_and_caps() {
        let cfg = Reliability::with_rto(Time::from_millis(5));
        assert_eq!(cfg.delay(0), Time::from_millis(5));
        assert_eq!(cfg.delay(3), Time::from_millis(40));
        assert_eq!(cfg.delay(63), cfg.rto_cap);
        assert_eq!(cfg.delay(200), cfg.rto_cap, "shift is clamped");
    }

    #[test]
    fn recovers_classifies_plans() {
        assert!(ReliableState::<u32>::recovers(None));
        assert!(ReliableState::<u32>::recovers(Some(
            &FaultPlan::new(1).drop_rate(0.99)
        )));
        assert!(!ReliableState::<u32>::recovers(Some(
            &FaultPlan::new(1).drop_rate(1.0)
        )));
        let total_link = FaultPlan::new(1)
            .link_override(0, 1, crate::faults::LinkFaults { drop: 1.0, dup: 0.0 });
        assert!(!ReliableState::<u32>::recovers(Some(&total_link)));
    }

    #[test]
    fn env_knobs() {
        // Serialized by being a single test: no other test reads these.
        std::env::remove_var("MRA_RELIABLE");
        assert!(Reliability::from_env().is_none());
        std::env::set_var("MRA_RELIABLE", "1");
        std::env::set_var("MRA_RTO_MS", "2.5");
        let r = Reliability::from_env().expect("enabled");
        assert_eq!(r.rto, Time::from_micros(2_500));
        std::env::set_var("MRA_RELIABLE", "off");
        assert!(Reliability::from_env().is_none());
        std::env::remove_var("MRA_RELIABLE");
        std::env::remove_var("MRA_RTO_MS");
    }
}
