//! The per-node application driver: the request / critical-section / think
//! lifecycle of the paper's experimental processes (§5.1).
//!
//! Each active node loops forever:
//!
//! 1. think for β (drawn from the workload),
//! 2. issue a request for a random resource set (the workload draws the set
//!    and the critical-section duration α together, since the paper couples
//!    CS length to request size),
//! 3. wait for the grant — the *waiting time* metric,
//! 4. hold the resources for α, release, go to 1.
//!
//! The driver is engine-agnostic: both the discrete-event simulator and the
//! threaded runtime embed it.

use mra_types::{ResourceSet, Time};
use rand::rngs::StdRng;

/// A request-generation model (implemented by `mra-workloads` for the
/// paper's parameters; simple fixed models live in tests).
///
/// The four optional hooks exist for *open-loop* workloads (the serving
/// layer in `mra-serve`): the engine reports its clock and the grant /
/// release edges, and the workload may claim an **intended arrival time**
/// for the request it just drew.  Closed-loop workloads (the paper's
/// model) ignore all four — the defaults are no-ops, and an absent
/// arrival makes the engine fall back to the issue instant, which is the
/// closed-loop definition of arrival.
pub trait Workload: Send {
    /// Draw the next think time (the paper's β).
    fn think_time(&mut self, rng: &mut StdRng) -> Time;

    /// Draw the next request: the resource set and the critical-section
    /// duration α (the paper couples α to the request size).
    fn next_request(&mut self, rng: &mut StdRng) -> (ResourceSet, Time);

    /// The engine clock, reported immediately before [`Self::think_time`]
    /// or [`Self::next_request`] runs.  Open-loop workloads advance their
    /// arrival process to this instant; the default discards it.
    fn set_now(&mut self, _now: Time) {}

    /// The intended arrival time of the request most recently drawn by
    /// [`Self::next_request`] — when it *would* have been issued had the
    /// node not been busy.  `None` (the default) means "arrived when
    /// issued": the engine then keys latency by the issue instant, which
    /// is exact for closed-loop workloads and is precisely the
    /// coordinated-omission bias for open-loop ones.
    fn intended_arrival(&self) -> Option<Time> {
        None
    }

    /// The request drawn by the last [`Self::next_request`] was granted.
    fn on_grant(&mut self, _now: Time) {}

    /// The corresponding critical section completed (resources released).
    fn on_release(&mut self, _now: Time) {}
}

/// Lifecycle state of one driven node.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum DriverState {
    /// Waiting out the think time before the next request.
    Thinking,
    /// Request issued, waiting for the grant.
    Waiting,
    /// Inside the critical section.
    InCs,
    /// Issuing stopped (measurement drain) — after the current cycle, park.
    Parked,
}

/// Driver bookkeeping for one node.
#[derive(Debug)]
pub struct Driver {
    state: DriverState,
    /// CS duration of the outstanding request.
    cs_len: Time,
    /// Resource set of the outstanding request.
    set: ResourceSet,
}

impl Driver {
    /// A fresh driver (thinking).
    pub fn new() -> Self {
        Driver {
            state: DriverState::Thinking,
            cs_len: Time::ZERO,
            set: ResourceSet::new(),
        }
    }

    /// Current lifecycle state.
    pub fn state(&self) -> DriverState {
        self.state
    }

    /// Called when the think timer fires: draw a request.  Returns the set
    /// to request (engine calls `Allocator::request`).
    pub fn issue<W: Workload>(&mut self, wl: &mut W, rng: &mut StdRng) -> ResourceSet {
        debug_assert_eq!(self.state, DriverState::Thinking);
        let (set, cs) = wl.next_request(rng);
        debug_assert!(!set.is_empty());
        self.state = DriverState::Waiting;
        self.set = set.clone();
        self.cs_len = cs;
        set
    }

    /// Called on grant.  Returns the CS duration to schedule the release.
    pub fn granted(&mut self) -> Time {
        debug_assert_eq!(self.state, DriverState::Waiting);
        self.state = DriverState::InCs;
        self.cs_len
    }

    /// Called when the CS timer fires (engine then calls
    /// `Allocator::release`).  Returns the resource set that was held.
    pub fn released(&mut self) -> ResourceSet {
        debug_assert_eq!(self.state, DriverState::InCs);
        self.state = DriverState::Thinking;
        std::mem::take(&mut self.set)
    }

    /// Stop issuing (drain phase).
    pub fn park(&mut self) {
        debug_assert_eq!(self.state, DriverState::Thinking);
        self.state = DriverState::Parked;
    }

    /// The outstanding request's resource set.
    pub fn current_set(&self) -> ResourceSet {
        self.set.clone()
    }
}

impl Default for Driver {
    fn default() -> Self {
        Self::new()
    }
}

/// A trivially simple workload for engine tests: fixed think time, fixed CS
/// length, uniformly random sets of exactly `size` resources out of `m`.
#[derive(Clone, Debug)]
pub struct FixedWorkload {
    /// Think time between CS cycles.
    pub think: Time,
    /// Critical-section duration.
    pub cs: Time,
    /// Resources in the system.
    pub m: usize,
    /// Request size.
    pub size: usize,
}

impl Workload for FixedWorkload {
    fn think_time(&mut self, _rng: &mut StdRng) -> Time {
        self.think
    }

    fn next_request(&mut self, rng: &mut StdRng) -> (ResourceSet, Time) {
        use rand::Rng;
        let mut set = ResourceSet::new();
        while set.len() < self.size {
            set.insert(rng.gen_range(0..self.m));
        }
        (set, self.cs)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::SeedableRng;

    #[test]
    fn lifecycle_roundtrip() {
        let mut d = Driver::new();
        let mut wl = FixedWorkload {
            think: Time::from_millis(5),
            cs: Time::from_millis(10),
            m: 6,
            size: 2,
        };
        let mut rng = StdRng::seed_from_u64(7);
        assert_eq!(d.state(), DriverState::Thinking);
        let set = d.issue(&mut wl, &mut rng);
        assert_eq!(set.len(), 2);
        assert_eq!(d.state(), DriverState::Waiting);
        assert_eq!(d.granted(), Time::from_millis(10));
        assert_eq!(d.state(), DriverState::InCs);
        let released = d.released();
        assert_eq!(released, set);
        assert_eq!(d.state(), DriverState::Thinking);
        d.park();
        assert_eq!(d.state(), DriverState::Parked);
    }

    #[test]
    fn fixed_workload_draws_exact_sizes() {
        let mut wl = FixedWorkload {
            think: Time::ZERO,
            cs: Time::from_millis(1),
            m: 10,
            size: 4,
        };
        let mut rng = StdRng::seed_from_u64(9);
        for _ in 0..50 {
            let (set, cs) = wl.next_request(&mut rng);
            assert_eq!(set.len(), 4);
            assert!(set.iter().all(|r| r < 10));
            assert_eq!(cs, Time::from_millis(1));
        }
    }
}
