//! ASCII Gantt rendering of simulation runs.
//!
//! The paper illustrates both its motivation (Fig. 1: global lock vs no
//! lock vs dynamic scheduling) and its use-rate metric (Fig. 4: the colored
//! area) with per-resource Gantt diagrams.  [`render_gantt`] reproduces
//! them from a [`RunResult`]: one row per resource, time binned across the
//! measurement window, each busy bin labelled with the holder's id.

use crate::metrics::RunResult;

/// Character for node `i` (digits, then letters, then `#`).
fn node_char(i: usize) -> char {
    match i {
        0..=9 => (b'0' + i as u8) as char,
        10..=35 => (b'a' + (i - 10) as u8) as char,
        _ => '#',
    }
}

/// Render a per-resource Gantt chart of the measurement window, `width`
/// characters wide.  `.` = idle; a node character = in use by that node.
///
/// The last line reports the use rate (the fraction of non-`.` area — the
/// paper's Fig. 4 definition).
pub fn render_gantt(result: &RunResult, width: usize) -> String {
    let (a, b) = result.window;
    let span = (b - a).as_nanos().max(1);
    let width = width.max(10);
    let mut grid: Vec<Vec<char>> = vec![vec!['.'; width]; result.m];

    for rec in &result.records {
        let (Some(g), Some(e)) = (rec.granted, rec.released) else {
            continue;
        };
        let s = g.max(a).min(b);
        let t = e.max(a).min(b);
        if t <= s {
            continue;
        }
        let c0 = ((s - a).as_nanos() as u128 * width as u128 / span as u128) as usize;
        // Round the right edge up so short intervals are not erased by
        // integer truncation.
        let c1 = (((t - a).as_nanos() as u128 * width as u128).div_ceil(span as u128)) as usize;
        let c0 = c0.min(width - 1);
        let c1 = c1.clamp(c0 + 1, width);
        for row in rec.set.iter() {
            for cell in &mut grid[row][c0..c1] {
                *cell = node_char(rec.node);
            }
        }
    }

    let mut out = String::new();
    out.push_str(&format!(
        "Gantt [{} .. {}] ({} resources × {} bins, algo {})\n",
        a,
        b,
        result.m,
        width,
        result.algo
    ));
    for (r, row) in grid.iter().enumerate() {
        out.push_str(&format!("r{r:>3} |"));
        out.extend(row.iter());
        out.push_str("|\n");
    }
    let filled: usize = grid
        .iter()
        .flat_map(|row| row.iter())
        .filter(|&&c| c != '.')
        .count();
    out.push_str(&format!(
        "use rate ≈ {:.1}% (measured {:.1}%)\n",
        100.0 * filled as f64 / (width * result.m.max(1)) as f64,
        100.0 * result.use_rate()
    ));
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::metrics::Collector;
    use mra_types::{ResourceSet, Time};

    fn t(ms: u64) -> Time {
        Time::from_millis(ms)
    }

    #[test]
    fn renders_busy_intervals() {
        let mut c = Collector::new(2, 2, (t(0), t(100)));
        c.on_issue(0, ResourceSet::singleton(0), t(0), t(0));
        c.on_grant(0, t(0));
        c.on_release(0, t(50));
        c.on_issue(1, ResourceSet::singleton(1), t(40), t(40));
        c.on_grant(1, t(50));
        c.on_release(1, t(100));
        let res = c.finish("test", 2, t(100));
        let g = render_gantt(&res, 20);
        let lines: Vec<&str> = g.lines().collect();
        assert!(lines[1].starts_with("r  0 |0000000000.........."), "{g}");
        assert!(lines[2].contains("..........1111111111"), "{g}");
        assert!(g.contains("use rate"));
    }

    #[test]
    fn node_chars_cover_many_nodes() {
        assert_eq!(node_char(0), '0');
        assert_eq!(node_char(9), '9');
        assert_eq!(node_char(10), 'a');
        assert_eq!(node_char(35), 'z');
        assert_eq!(node_char(99), '#');
    }

    #[test]
    fn empty_run_renders_idle_grid() {
        let c = Collector::new(1, 3, (t(0), t(10)));
        let res = c.finish("x", 1, t(10));
        let g = render_gantt(&res, 12);
        assert_eq!(g.matches("............").count(), 3);
    }
}
