//! Network latency models.
//!
//! The paper's testbed had γ ≈ 0.6 ms point-to-point latency on a flat
//! 10 GbE switch — [`LatencyModel::Constant`] reproduces that.  The other
//! models support the robustness and future-work experiments:
//! [`LatencyModel::Uniform`] adds jitter (FIFO ordering is enforced by the
//! engine regardless), and [`LatencyModel::Hierarchical`] models the
//! "hierarchical physical topology such as Clouds" of the paper's
//! conclusion — two or more clusters with cheap intra-cluster and expensive
//! inter-cluster links.

use mra_types::{NodeId, Time};
use rand::rngs::StdRng;
use rand::Rng;

/// How long a message from `src` to `dst` spends on the wire.
#[derive(Clone, Debug)]
pub enum LatencyModel {
    /// Every message takes exactly this long (the paper's γ).
    Constant(Time),
    /// Uniformly random in `[lo, hi]` per message.
    Uniform {
        /// Minimum latency.
        lo: Time,
        /// Maximum latency.
        hi: Time,
    },
    /// Cluster topology: `cluster[i]` is node `i`'s cluster; messages
    /// within a cluster take `intra`, across clusters `inter`.
    Hierarchical {
        /// Cluster index of each node.
        cluster: Vec<usize>,
        /// Intra-cluster latency.
        intra: Time,
        /// Inter-cluster latency.
        inter: Time,
    },
    /// Zero latency: used for the "in shared memory" scheduler, whose
    /// synchronization cost must be nil (paper §5.2).
    Zero,
}

impl LatencyModel {
    /// The paper's LAN: γ = 0.6 ms.
    pub fn paper_lan() -> Self {
        LatencyModel::Constant(Time::from_micros(600))
    }

    /// A two-cluster cloud with the given split point: nodes `< split` in
    /// cluster 0, the rest in cluster 1.
    pub fn two_clusters(n: usize, split: usize, intra: Time, inter: Time) -> Self {
        LatencyModel::Hierarchical {
            cluster: (0..n).map(|i| usize::from(i >= split)).collect(),
            intra,
            inter,
        }
    }

    /// A lower bound on the latency of **any** message under this model —
    /// the *lookahead* of the conservative parallel engine: an event
    /// executing at time `t` can only schedule remote events at `t +
    /// min_latency()` or later, so a window of that width can be processed
    /// without inter-shard synchronization.  `Zero` (and a degenerate
    /// `Uniform` with `lo == Time::ZERO`) yields zero lookahead, which
    /// forces the engine back to a single shard.
    #[inline]
    pub fn min_latency(&self) -> Time {
        match self {
            LatencyModel::Constant(t) => *t,
            LatencyModel::Uniform { lo, .. } => *lo,
            LatencyModel::Hierarchical { intra, inter, .. } => (*intra).min(*inter),
            LatencyModel::Zero => Time::ZERO,
        }
    }

    /// The latency of one `src → dst` message when this model needs no
    /// randomness: `Constant`, `Zero` and `Hierarchical` are pure functions
    /// of the endpoints, so engines can skip borrowing (and advancing) the
    /// network RNG entirely — the fast path for the paper's γ = const
    /// scenarios.  A degenerate `Uniform` with `lo == hi` is a constant in
    /// disguise and takes the same path.  Returns `None` only for genuinely
    /// jittered models.
    #[inline]
    pub fn sample_deterministic(&self, src: NodeId, dst: NodeId) -> Option<Time> {
        match self {
            LatencyModel::Constant(t) => Some(*t),
            LatencyModel::Zero => Some(Time::ZERO),
            LatencyModel::Hierarchical {
                cluster,
                intra,
                inter,
            } => Some(if cluster[src] == cluster[dst] { *intra } else { *inter }),
            LatencyModel::Uniform { lo, hi } if lo == hi => Some(*lo),
            LatencyModel::Uniform { .. } => None,
        }
    }

    /// Sample the latency for one message.  Deterministic models never
    /// touch `rng` (see [`Self::sample_deterministic`]), so the RNG stream
    /// — and therefore every downstream draw — is identical whichever
    /// entry point an engine uses.
    pub fn sample(&self, src: NodeId, dst: NodeId, rng: &mut StdRng) -> Time {
        if let Some(t) = self.sample_deterministic(src, dst) {
            return t;
        }
        match self {
            LatencyModel::Uniform { lo, hi } => {
                // `lo == hi` was already served by the deterministic fast
                // path above, so the span here is always positive.
                debug_assert!(lo < hi);
                let span = hi.as_nanos() - lo.as_nanos();
                Time::from_nanos(lo.as_nanos() + rng.gen_range(0..=span))
            }
            // Named so a new variant fails to compile here instead of
            // panicking at runtime: the author must decide which path
            // serves it.
            LatencyModel::Constant(_)
            | LatencyModel::Zero
            | LatencyModel::Hierarchical { .. } => {
                unreachable!("deterministic models are handled above")
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::SeedableRng;

    #[test]
    fn constant_is_constant() {
        let m = LatencyModel::paper_lan();
        let mut rng = StdRng::seed_from_u64(1);
        assert_eq!(m.sample(0, 1, &mut rng), Time::from_micros(600));
        assert_eq!(m.sample(3, 2, &mut rng), Time::from_micros(600));
    }

    #[test]
    fn uniform_within_bounds() {
        let lo = Time::from_micros(100);
        let hi = Time::from_micros(200);
        let m = LatencyModel::Uniform { lo, hi };
        let mut rng = StdRng::seed_from_u64(2);
        for _ in 0..100 {
            let t = m.sample(0, 1, &mut rng);
            assert!(t >= lo && t <= hi);
        }
    }

    #[test]
    fn hierarchical_distinguishes_clusters() {
        let m = LatencyModel::two_clusters(
            4,
            2,
            Time::from_micros(100),
            Time::from_millis(5),
        );
        let mut rng = StdRng::seed_from_u64(3);
        assert_eq!(m.sample(0, 1, &mut rng), Time::from_micros(100));
        assert_eq!(m.sample(2, 3, &mut rng), Time::from_micros(100));
        assert_eq!(m.sample(1, 2, &mut rng), Time::from_millis(5));
    }

    #[test]
    fn zero_is_free() {
        let mut rng = StdRng::seed_from_u64(4);
        assert_eq!(LatencyModel::Zero.sample(0, 5, &mut rng), Time::ZERO);
    }

    #[test]
    fn deterministic_models_agree_with_sample_and_skip_the_rng() {
        use rand::RngCore;
        let models = [
            LatencyModel::paper_lan(),
            LatencyModel::Zero,
            LatencyModel::two_clusters(4, 2, Time::from_micros(100), Time::from_millis(5)),
        ];
        for model in models {
            for (src, dst) in [(0, 1), (1, 2), (2, 3)] {
                let mut rng = StdRng::seed_from_u64(17);
                let untouched = rng.clone();
                let sampled = model.sample(src, dst, &mut rng);
                assert_eq!(model.sample_deterministic(src, dst), Some(sampled));
                // The fast path must leave the RNG stream exactly where it
                // was: same next draw as a clone that never sampled.
                assert_eq!(
                    rng.next_u64(),
                    untouched.clone().next_u64(),
                    "sample() advanced the RNG for a deterministic model"
                );
            }
        }
        let jitter = LatencyModel::Uniform {
            lo: Time::from_micros(10),
            hi: Time::from_micros(20),
        };
        assert_eq!(jitter.sample_deterministic(0, 1), None);
    }

    #[test]
    fn min_latency_bounds_every_sample() {
        let models = [
            LatencyModel::paper_lan(),
            LatencyModel::Zero,
            LatencyModel::Uniform {
                lo: Time::from_micros(100),
                hi: Time::from_micros(200),
            },
            LatencyModel::two_clusters(4, 2, Time::from_micros(100), Time::from_millis(5)),
        ];
        let mut rng = StdRng::seed_from_u64(7);
        for model in models {
            let lo = model.min_latency();
            for src in 0..4 {
                for dst in 0..4 {
                    for _ in 0..16 {
                        assert!(model.sample(src, dst, &mut rng) >= lo);
                    }
                }
            }
        }
        assert_eq!(LatencyModel::paper_lan().min_latency(), Time::from_micros(600));
        assert_eq!(LatencyModel::Zero.min_latency(), Time::ZERO);
    }

    #[test]
    fn degenerate_uniform_takes_the_deterministic_fast_path() {
        use rand::RngCore;
        let t = Time::from_micros(150);
        let m = LatencyModel::Uniform { lo: t, hi: t };
        assert_eq!(m.sample_deterministic(0, 1), Some(t));
        // `sample` agrees and consumes **no** RNG draws: the stream stays
        // exactly where a never-sampling clone's stream is.
        let mut rng = StdRng::seed_from_u64(23);
        let untouched = rng.clone();
        for (src, dst) in [(0, 1), (1, 2), (3, 0)] {
            assert_eq!(m.sample(src, dst, &mut rng), t);
        }
        assert_eq!(
            rng.next_u64(),
            untouched.clone().next_u64(),
            "lo == hi Uniform consumed RNG draws"
        );
        // A genuinely jittered model does advance the stream.
        let jitter = LatencyModel::Uniform {
            lo: t,
            hi: Time::from_micros(151),
        };
        let mut rng2 = StdRng::seed_from_u64(23);
        let before = rng2.clone();
        let _ = jitter.sample(0, 1, &mut rng2);
        assert_ne!(rng2.next_u64(), before.clone().next_u64());
    }
}
