//! Network latency models.
//!
//! The paper's testbed had γ ≈ 0.6 ms point-to-point latency on a flat
//! 10 GbE switch — [`LatencyModel::Constant`] reproduces that.  The other
//! models support the robustness and future-work experiments:
//! [`LatencyModel::Uniform`] adds jitter (FIFO ordering is enforced by the
//! engine regardless), and [`LatencyModel::Hierarchical`] models the
//! "hierarchical physical topology such as Clouds" of the paper's
//! conclusion — two or more clusters with cheap intra-cluster and expensive
//! inter-cluster links.

use mra_types::{NodeId, Time};
use rand::rngs::StdRng;
use rand::Rng;

/// How long a message from `src` to `dst` spends on the wire.
#[derive(Clone, Debug)]
pub enum LatencyModel {
    /// Every message takes exactly this long (the paper's γ).
    Constant(Time),
    /// Uniformly random in `[lo, hi]` per message.
    Uniform {
        /// Minimum latency.
        lo: Time,
        /// Maximum latency.
        hi: Time,
    },
    /// Cluster topology: `cluster[i]` is node `i`'s cluster; messages
    /// within a cluster take `intra`, across clusters `inter`.
    Hierarchical {
        /// Cluster index of each node.
        cluster: Vec<usize>,
        /// Intra-cluster latency.
        intra: Time,
        /// Inter-cluster latency.
        inter: Time,
    },
    /// Zero latency: used for the "in shared memory" scheduler, whose
    /// synchronization cost must be nil (paper §5.2).
    Zero,
}

impl LatencyModel {
    /// The paper's LAN: γ = 0.6 ms.
    pub fn paper_lan() -> Self {
        LatencyModel::Constant(Time::from_micros(600))
    }

    /// A two-cluster cloud with the given split point: nodes `< split` in
    /// cluster 0, the rest in cluster 1.
    pub fn two_clusters(n: usize, split: usize, intra: Time, inter: Time) -> Self {
        LatencyModel::Hierarchical {
            cluster: (0..n).map(|i| usize::from(i >= split)).collect(),
            intra,
            inter,
        }
    }

    /// Sample the latency for one message.
    pub fn sample(&self, src: NodeId, dst: NodeId, rng: &mut StdRng) -> Time {
        match self {
            LatencyModel::Constant(t) => *t,
            LatencyModel::Uniform { lo, hi } => {
                debug_assert!(lo <= hi);
                let span = hi.as_nanos() - lo.as_nanos();
                if span == 0 {
                    *lo
                } else {
                    Time::from_nanos(lo.as_nanos() + rng.gen_range(0..=span))
                }
            }
            LatencyModel::Hierarchical {
                cluster,
                intra,
                inter,
            } => {
                if cluster[src] == cluster[dst] {
                    *intra
                } else {
                    *inter
                }
            }
            LatencyModel::Zero => Time::ZERO,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::SeedableRng;

    #[test]
    fn constant_is_constant() {
        let m = LatencyModel::paper_lan();
        let mut rng = StdRng::seed_from_u64(1);
        assert_eq!(m.sample(0, 1, &mut rng), Time::from_micros(600));
        assert_eq!(m.sample(3, 2, &mut rng), Time::from_micros(600));
    }

    #[test]
    fn uniform_within_bounds() {
        let lo = Time::from_micros(100);
        let hi = Time::from_micros(200);
        let m = LatencyModel::Uniform { lo, hi };
        let mut rng = StdRng::seed_from_u64(2);
        for _ in 0..100 {
            let t = m.sample(0, 1, &mut rng);
            assert!(t >= lo && t <= hi);
        }
    }

    #[test]
    fn hierarchical_distinguishes_clusters() {
        let m = LatencyModel::two_clusters(
            4,
            2,
            Time::from_micros(100),
            Time::from_millis(5),
        );
        let mut rng = StdRng::seed_from_u64(3);
        assert_eq!(m.sample(0, 1, &mut rng), Time::from_micros(100));
        assert_eq!(m.sample(2, 3, &mut rng), Time::from_micros(100));
        assert_eq!(m.sample(1, 2, &mut rng), Time::from_millis(5));
    }

    #[test]
    fn zero_is_free() {
        let mut rng = StdRng::seed_from_u64(4);
        assert_eq!(LatencyModel::Zero.sample(0, 5, &mut rng), Time::ZERO);
    }
}
