//! Real-concurrency runtime: one OS thread per node, `std::sync::mpsc`
//! channels as links.
//!
//! The discrete-event simulator explores timing; this runtime validates
//! that the very same protocol state machines behave correctly under *real*
//! parallelism — true asynchrony, preemption and cross-thread message
//! passing — which is what the paper's C++/OpenMPI deployment faced.
//! Durations are wall-clock: keep them small in tests.
//!
//! The per-node event loop lives in [`crate::runtime`], shared with
//! `mra-net`'s TCP transport; this module contributes only the mpsc
//! [`NodePort`] backend.  Link latency is emulated by stamping each message
//! with a delivery deadline that the receiver waits out; channel order
//! preserves per-link FIFO.  The run is quota-based: every active node
//! completes `rounds` request/CS cycles, then keeps serving protocol
//! traffic until the last finisher broadcasts shutdown.

use crate::driver::Workload;
use crate::metrics::RunResult;
use crate::runtime::{drive_node, NodeCfg, NodePort, PortEvent, RunShared};
use mra_protocol::Allocator;
use mra_types::{NodeId, Time};
use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::mpsc::{self, RecvTimeoutError};
use std::sync::Arc;
use std::time::Instant;

/// Configuration of a threaded run.
#[derive(Clone, Debug)]
pub struct ThreadedConfig {
    /// Request/CS cycles per active node.
    pub rounds: usize,
    /// Emulated link latency (constant).
    pub latency: Time,
    /// Master seed for workload randomness.
    pub seed: u64,
    /// Only nodes `0..active` issue requests (`None` = all).
    pub active_nodes: Option<usize>,
}

enum Envelope<M> {
    Msg {
        from: NodeId,
        deliver_at: Instant,
        stamp: u64,
        msg: M,
    },
    Shutdown,
}

struct MpscShared<M> {
    senders: Vec<mpsc::Sender<Envelope<M>>>,
    /// Active nodes still short of their quota.
    remaining: AtomicUsize,
    latency: Time,
}

/// The mpsc channel backend of [`crate::runtime::NodePort`].
struct MpscPort<M> {
    me: NodeId,
    rx: mpsc::Receiver<Envelope<M>>,
    shared: Arc<MpscShared<M>>,
}

impl<M: Send> NodePort<M> for MpscPort<M> {
    fn send(&mut self, to: NodeId, msg: M, stamp: u64) {
        let deliver_at = Instant::now() + self.shared.latency.to_std();
        // A closed channel means the peer is past shutdown: drop silently.
        let _ = self.shared.senders[to].send(Envelope::Msg {
            from: self.me,
            deliver_at,
            stamp,
            msg,
        });
    }

    fn recv(&mut self) -> PortEvent<M> {
        match self.rx.recv() {
            Ok(Envelope::Msg { from, deliver_at, stamp, msg }) => {
                PortEvent::Msg { from, deliver_at, stamp, msg }
            }
            Ok(Envelope::Shutdown) | Err(_) => PortEvent::Shutdown,
        }
    }

    fn recv_deadline(&mut self, deadline: Instant) -> PortEvent<M> {
        let wait = deadline.saturating_duration_since(Instant::now());
        match self.rx.recv_timeout(wait) {
            Ok(Envelope::Msg { from, deliver_at, stamp, msg }) => {
                PortEvent::Msg { from, deliver_at, stamp, msg }
            }
            Ok(Envelope::Shutdown) => PortEvent::Shutdown,
            Err(RecvTimeoutError::Timeout) => PortEvent::TimedOut,
            Err(RecvTimeoutError::Disconnected) => PortEvent::Shutdown,
        }
    }

    fn quota_done(&mut self) -> bool {
        if self.shared.remaining.fetch_sub(1, Ordering::AcqRel) == 1 {
            // Last finisher: release everyone.
            for s in &self.shared.senders {
                let _ = s.send(Envelope::Shutdown);
            }
            return true;
        }
        false
    }
}

/// Run `protos` under real threads until every active node has completed
/// its round quota; returns the collected metrics.
///
/// # Panics
/// On any safety violation (monitored exactly like the simulator).
pub fn run_threaded<A, W>(
    protos: Vec<A>,
    workloads: Vec<W>,
    m: usize,
    cfg: ThreadedConfig,
) -> RunResult
where
    A: Allocator + Send + 'static,
    W: Workload + 'static,
{
    let n = protos.len();
    assert_eq!(n, workloads.len());
    let active = cfg.active_nodes.unwrap_or(n);
    assert!(active >= 1 && active <= n);

    let mut senders = Vec::with_capacity(n);
    let mut receivers = Vec::with_capacity(n);
    for _ in 0..n {
        let (tx, rx) = mpsc::channel::<Envelope<A::Msg>>();
        senders.push(tx);
        receivers.push(rx);
    }

    let mpsc_shared = Arc::new(MpscShared {
        senders,
        remaining: AtomicUsize::new(active),
        latency: cfg.latency,
    });
    let shared = Arc::new(RunShared::new(n, m));

    let algo = protos[0].name().to_string();
    let mut handles = Vec::with_capacity(n);
    for (i, ((proto, workload), rx)) in protos
        .into_iter()
        .zip(workloads)
        .zip(receivers)
        .enumerate()
    {
        let shared = Arc::clone(&shared);
        let port = MpscPort {
            me: i,
            rx,
            shared: Arc::clone(&mpsc_shared),
        };
        let node_cfg = NodeCfg {
            rounds: cfg.rounds,
            seed: cfg.seed,
            is_active: i < active,
        };
        handles.push(
            std::thread::Builder::new()
                .name(format!("mra-node-{i}"))
                .spawn(move || drive_node(i, n, proto, workload, port, &shared, node_cfg))
                .expect("spawn node thread"),
        );
    }
    for h in handles {
        h.join().expect("node thread panicked");
    }

    let end = shared.now();
    let shared = Arc::try_unwrap(shared)
        .unwrap_or_else(|_| panic!("thread leaked a Shared reference"));
    let obs = shared.finish_obs();
    let mut res = shared
        .collector
        .into_inner()
        .unwrap_or_else(|e| e.into_inner())
        .finish(&algo, n, end);
    res.obs = obs;
    res
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::driver::FixedWorkload;
    use mra_baselines::{BouabdallahLaforest, Central, GrantPolicy};
    use mra_core::LassConfig;

    fn quick_workloads(n: usize, m: usize, size: usize) -> Vec<FixedWorkload> {
        (0..n)
            .map(|_| FixedWorkload {
                think: Time::from_micros(200),
                cs: Time::from_micros(300),
                m,
                size,
            })
            .collect()
    }

    fn quick_cfg(seed: u64) -> ThreadedConfig {
        ThreadedConfig {
            rounds: 6,
            latency: Time::from_micros(50),
            seed,
            active_nodes: None,
        }
    }

    #[test]
    fn lass_runs_on_real_threads() {
        let cfg = LassConfig::with_loan(4, 8);
        let res = run_threaded(cfg.build_nodes(), quick_workloads(4, 8, 2), 8, quick_cfg(1));
        assert_eq!(res.cs_completed, 24);
        assert_eq!(res.censored, 0);
        assert!(res.wait_stats().count == 24);
    }

    #[test]
    fn bouabdallah_laforest_runs_on_real_threads() {
        let res = run_threaded(
            BouabdallahLaforest::build_nodes(4, 6),
            quick_workloads(4, 6, 2),
            6,
            quick_cfg(2),
        );
        assert_eq!(res.cs_completed, 24);
    }

    #[test]
    fn central_coordinator_runs_on_real_threads() {
        let mut cfg = quick_cfg(3);
        cfg.active_nodes = Some(3);
        let res = run_threaded(
            Central::build_nodes(3, GrantPolicy::Conservative),
            quick_workloads(4, 6, 2),
            6,
            cfg,
        );
        assert_eq!(res.cs_completed, 18);
    }
}
