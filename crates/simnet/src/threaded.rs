//! Real-concurrency runtime: one OS thread per node, `std::sync::mpsc`
//! channels as links.
//!
//! The discrete-event simulator explores timing; this runtime validates
//! that the very same protocol state machines behave correctly under *real*
//! parallelism — true asynchrony, preemption and cross-thread message
//! passing — which is what the paper's C++/OpenMPI deployment faced.
//! Durations are wall-clock: keep them small in tests.
//!
//! Each node thread owns its protocol instance and driver and services its
//! inbox.  Link latency is emulated by stamping each message with a
//! delivery deadline that the receiver waits out; channel order preserves
//! per-link FIFO.  The run is quota-based: every active node completes
//! `rounds` request/CS cycles, then keeps serving protocol traffic until
//! the last finisher broadcasts shutdown.

use crate::driver::{Driver, DriverState, Workload};
use crate::metrics::{Collector, RunResult};
use mra_protocol::testkit::SafetyMonitor;
use mra_protocol::{Allocator, Ctx, WireMsg};
use mra_types::{NodeId, Time};
use std::sync::mpsc::{self, RecvTimeoutError};
use std::sync::Mutex;
use rand::rngs::StdRng;
use rand::SeedableRng;
use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::Arc;
use std::time::Instant;

/// Configuration of a threaded run.
#[derive(Clone, Debug)]
pub struct ThreadedConfig {
    /// Request/CS cycles per active node.
    pub rounds: usize,
    /// Emulated link latency (constant).
    pub latency: Time,
    /// Master seed for workload randomness.
    pub seed: u64,
    /// Only nodes `0..active` issue requests (`None` = all).
    pub active_nodes: Option<usize>,
}

enum Envelope<M> {
    Msg {
        from: NodeId,
        deliver_at: Instant,
        msg: M,
    },
    Shutdown,
}

struct Shared<M> {
    senders: Vec<mpsc::Sender<Envelope<M>>>,
    monitor: Mutex<SafetyMonitor>,
    collector: Mutex<Collector>,
    /// Active nodes still short of their quota.
    remaining: AtomicUsize,
    epoch: Instant,
    latency: Time,
}

/// Lock preserving the old parking_lot semantics: a poisoned mutex (some
/// node thread already panicked) still yields its data, so the original
/// panic reaches the joiner instead of a PoisonError cascade.
fn lock<T>(m: &Mutex<T>) -> std::sync::MutexGuard<'_, T> {
    m.lock().unwrap_or_else(|e| e.into_inner())
}

impl<M> Shared<M> {
    fn now(&self) -> Time {
        Time::from_nanos(self.epoch.elapsed().as_nanos() as u64)
    }
}

/// Run `protos` under real threads until every active node has completed
/// its round quota; returns the collected metrics.
///
/// # Panics
/// On any safety violation (monitored exactly like the simulator).
pub fn run_threaded<A, W>(
    protos: Vec<A>,
    workloads: Vec<W>,
    m: usize,
    cfg: ThreadedConfig,
) -> RunResult
where
    A: Allocator + Send + 'static,
    W: Workload + 'static,
{
    let n = protos.len();
    assert_eq!(n, workloads.len());
    let active = cfg.active_nodes.unwrap_or(n);
    assert!(active >= 1 && active <= n);

    let mut senders = Vec::with_capacity(n);
    let mut receivers = Vec::with_capacity(n);
    for _ in 0..n {
        let (tx, rx) = mpsc::channel::<Envelope<A::Msg>>();
        senders.push(tx);
        receivers.push(rx);
    }

    let shared = Arc::new(Shared {
        senders,
        monitor: Mutex::new(SafetyMonitor::new(n, m)),
        // Window is clamped to the actual end time by `Collector::finish`.
        collector: Mutex::new(Collector::new(n, m, (Time::ZERO, Time::from_secs(3600)))),
        remaining: AtomicUsize::new(active),
        epoch: Instant::now(),
        latency: cfg.latency,
    });

    let algo = protos[0].name().to_string();
    let mut handles = Vec::with_capacity(n);
    for (i, ((proto, workload), rx)) in protos
        .into_iter()
        .zip(workloads)
        .zip(receivers)
        .enumerate()
    {
        let shared = Arc::clone(&shared);
        let cfg = cfg.clone();
        let is_active = i < active;
        handles.push(
            std::thread::Builder::new()
                .name(format!("mra-node-{i}"))
                .spawn(move || node_main(i, n, proto, workload, rx, shared, cfg, is_active))
                .expect("spawn node thread"),
        );
    }
    for h in handles {
        h.join().expect("node thread panicked");
    }

    let end = shared.now();
    let shared = Arc::try_unwrap(shared)
        .unwrap_or_else(|_| panic!("thread leaked a Shared reference"));
    shared
        .collector
        .into_inner()
        .unwrap_or_else(|e| e.into_inner())
        .finish(&algo, n, end)
}

#[allow(clippy::too_many_arguments)]
fn node_main<A, W>(
    me: NodeId,
    n: usize,
    mut proto: A,
    mut workload: W,
    rx: mpsc::Receiver<Envelope<A::Msg>>,
    shared: Arc<Shared<A::Msg>>,
    cfg: ThreadedConfig,
    is_active: bool,
) where
    A: Allocator,
    W: Workload,
{
    let mut ctx: Ctx<A::Msg> = Ctx::new(me, n);
    let mut driver = Driver::new();
    let mut rng =
        StdRng::seed_from_u64(cfg.seed ^ (me as u64).wrapping_mul(0x9E37_79B9_7F4A_7C15));

    ctx.set_now(shared.now());
    proto.on_init(&mut ctx);
    flush_and_grants(me, &mut proto, &mut ctx, &mut driver, &shared, &mut None);

    let mut rounds_left = if is_active { cfg.rounds } else { 0 };
    // The pending timer: think expiry or CS expiry, depending on state.
    let mut deadline: Option<Instant> = is_active
        .then(|| Instant::now() + workload.think_time(&mut rng).to_std());
    if !is_active {
        driver.park();
    }

    loop {
        let received = match deadline {
            Some(d) => {
                let wait = d.saturating_duration_since(Instant::now());
                match rx.recv_timeout(wait) {
                    Ok(env) => Some(env),
                    Err(RecvTimeoutError::Timeout) => None,
                    Err(RecvTimeoutError::Disconnected) => return,
                }
            }
            None => match rx.recv() {
                Ok(env) => Some(env),
                Err(_) => return,
            },
        };

        match received {
            Some(Envelope::Shutdown) => return,
            Some(Envelope::Msg {
                from,
                deliver_at,
                msg,
            }) => {
                let wait = deliver_at.saturating_duration_since(Instant::now());
                if !wait.is_zero() {
                    std::thread::sleep(wait);
                }
                ctx.set_now(shared.now());
                proto.on_message(&mut ctx, from, msg);
                flush_and_grants(me, &mut proto, &mut ctx, &mut driver, &shared, &mut deadline);
            }
            None => {
                // Timer fired.
                match driver.state() {
                    DriverState::Thinking => {
                        let set = driver.issue(&mut workload, &mut rng);
                        lock(&shared.collector).on_issue(me, set, shared.now());
                        deadline = None; // wait for the grant
                        ctx.set_now(shared.now());
                        proto.request(&mut ctx, set);
                        flush_and_grants(
                            me,
                            &mut proto,
                            &mut ctx,
                            &mut driver,
                            &shared,
                            &mut deadline,
                        );
                    }
                    DriverState::InCs => {
                        lock(&shared.collector).on_release(me, shared.now());
                        lock(&shared.monitor).exit(me);
                        driver.released();
                        ctx.set_now(shared.now());
                        proto.release(&mut ctx);
                        deadline = None;
                        flush_and_grants(
                            me,
                            &mut proto,
                            &mut ctx,
                            &mut driver,
                            &shared,
                            &mut deadline,
                        );
                        rounds_left -= 1;
                        if rounds_left == 0 {
                            driver.park();
                            if shared.remaining.fetch_sub(1, Ordering::AcqRel) == 1 {
                                // Last finisher: release everyone.
                                for s in &shared.senders {
                                    let _ = s.send(Envelope::Shutdown);
                                }
                            }
                        } else {
                            deadline = Some(
                                Instant::now() + workload.think_time(&mut rng).to_std(),
                            );
                        }
                    }
                    // Waiting/Parked never arm a timer.
                    other => unreachable!("timer in state {other:?}"),
                }
            }
        }
    }
}

/// Drain the outbox onto the channels and turn a grant edge into CS
/// bookkeeping (+ CS-end timer).
fn flush_and_grants<A: Allocator>(
    me: NodeId,
    _proto: &mut A,
    ctx: &mut Ctx<A::Msg>,
    driver: &mut Driver,
    shared: &Arc<Shared<A::Msg>>,
    deadline: &mut Option<Instant>,
) {
    let out = ctx.take_outbox();
    if !out.is_empty() {
        let deliver_at = Instant::now() + shared.latency.to_std();
        let mut collector = lock(&shared.collector);
        for (to, msg) in out {
            collector.on_message(msg.kind(), msg.weight());
            let _ = shared.senders[to].send(Envelope::Msg {
                from: me,
                deliver_at,
                msg,
            });
        }
    }
    if ctx.take_granted() {
        let set = driver.current_set();
        lock(&shared.monitor).enter(me, set);
        lock(&shared.collector).on_grant(me, shared.now());
        let cs = driver.granted();
        *deadline = Some(Instant::now() + cs.to_std());
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::driver::FixedWorkload;
    use mra_baselines::{BouabdallahLaforest, Central, GrantPolicy};
    use mra_core::LassConfig;

    fn quick_workloads(n: usize, m: usize, size: usize) -> Vec<FixedWorkload> {
        (0..n)
            .map(|_| FixedWorkload {
                think: Time::from_micros(200),
                cs: Time::from_micros(300),
                m,
                size,
            })
            .collect()
    }

    fn quick_cfg(seed: u64) -> ThreadedConfig {
        ThreadedConfig {
            rounds: 6,
            latency: Time::from_micros(50),
            seed,
            active_nodes: None,
        }
    }

    #[test]
    fn lass_runs_on_real_threads() {
        let cfg = LassConfig::with_loan(4, 8);
        let res = run_threaded(cfg.build_nodes(), quick_workloads(4, 8, 2), 8, quick_cfg(1));
        assert_eq!(res.cs_completed, 24);
        assert_eq!(res.censored, 0);
        assert!(res.wait_stats().count == 24);
    }

    #[test]
    fn bouabdallah_laforest_runs_on_real_threads() {
        let res = run_threaded(
            BouabdallahLaforest::build_nodes(4, 6),
            quick_workloads(4, 6, 2),
            6,
            quick_cfg(2),
        );
        assert_eq!(res.cs_completed, 24);
    }

    #[test]
    fn central_coordinator_runs_on_real_threads() {
        let mut cfg = quick_cfg(3);
        cfg.active_nodes = Some(3);
        let res = run_threaded(
            Central::build_nodes(3, GrantPolicy::Conservative),
            quick_workloads(4, 6, 2),
            6,
            cfg,
        );
        assert_eq!(res.cs_completed, 18);
    }
}
