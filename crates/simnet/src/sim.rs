//! The discrete-event simulation engine.
//!
//! A [`Sim`] owns one [`Allocator`] instance and one workload per node, a
//! virtual clock, and an event queue per *shard*.  Two event classes
//! exist: message deliveries (after a sampled link latency, FIFO per
//! directed link) and node timers (think-time expiry → issue a request;
//! CS expiry → release).  Everything is deterministic given the seed.
//!
//! # Sharded conservative execution
//!
//! With `SimConfig::shards = k > 1` the nodes are split round-robin across
//! `k` shards (node `i` lives on shard `i % k`), each owning its own event
//! queue, and the engine runs a *conservative windowed* parallel schedule:
//! the minimum link latency `L = LatencyModel::min_latency()` is the
//! **lookahead** — an event executing at time `t` can only schedule a
//! remote event at `t + L` or later — so after agreeing on the global
//! minimum timestamp `T`, every shard can process its events in
//! `[T, T + L)` without hearing from anyone.  Cross-shard events travel
//! through mailboxes exchanged between windows; no null messages are
//! needed because the window barrier itself carries the time guarantee.
//!
//! Determinism does not stop at "some legal schedule": the sharded engine
//! is **bit-identical** to the sequential one.  Every pushed event carries
//! a canonical ordering key `(at, ord)` where `ord` encodes the single
//! writer *lane* that produced it (a directed link, or a node's local
//! timer lane) and a per-lane push counter.  Per-node processing order —
//! and hence per-lane push sequences — is the same under any shard count,
//! so the keys, and therefore the heap order, the RNG draws and every
//! metric, coincide exactly.
//!
//! Safety is *monitored*, not assumed: every grant is checked against the
//! holders of every resource (a violation panics).  The single-shard path
//! checks online; sharded runs log compact enter/exit notes per shard and
//! replay them in global `(at, ord)` order at the end of the run, so each
//! simulated experiment still doubles as a large randomized protocol test.

use crate::driver::{Driver, DriverState, Workload};
use crate::latency::LatencyModel;
use crate::metrics::{Collector, RunResult};
use mra_obs::{EngineTracer, EventKind, ObsReport, TraceLog, TraceMode};
use mra_protocol::faults::{Admit, FaultPlan, FaultState, FaultStats};
use mra_protocol::reliable::{Reliability, ReliabilityStats, ReliableState, RtoVerdict};
use mra_protocol::testkit::SafetyMonitor;
use mra_protocol::{Allocator, Ctx, WireMsg};
use mra_types::{NodeId, ResourceSet, Time};
use rand::rngs::StdRng;
use rand::SeedableRng;
use std::collections::HashMap;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Condvar, Mutex, MutexGuard};
use std::time::Instant;

/// Simulation parameters.
#[derive(Clone, Debug)]
pub struct SimConfig {
    /// Link latency model (the paper's γ).
    pub latency: LatencyModel,
    /// Master seed; all per-node and network randomness derives from it.
    pub seed: u64,
    /// Warmup prefix excluded from the measurement window.
    pub warmup: Time,
    /// Length of the measurement window.
    pub measure: Time,
    /// Extra time after the window for in-flight requests to finish
    /// (issuing stops at the window end).
    pub drain: Time,
    /// Only nodes `0..active` issue requests (`None` = all).  Used by the
    /// coordinator-based central scheduler.
    pub active_nodes: Option<usize>,
    /// Hard cap on processed events per shard (runaway guard).
    pub max_events: u64,
    /// Worker shards for the conservative parallel engine (clamped to
    /// `[1, n]`; forced to 1 when the latency model has zero lookahead).
    /// The result is bit-identical for every value.
    pub shards: usize,
}

impl SimConfig {
    /// Reasonable defaults for tests: paper LAN latency, 100 ms warmup,
    /// 1 s window, 1 s drain, one shard.
    pub fn quick(seed: u64) -> Self {
        SimConfig {
            latency: LatencyModel::paper_lan(),
            seed,
            warmup: Time::from_millis(100),
            measure: Time::from_secs(1),
            drain: Time::from_secs(1),
            active_nodes: None,
            max_events: 200_000_000,
            shards: 1,
        }
    }

    /// Shard count from the `MRA_SIM_SHARDS` environment variable
    /// (default 1).  Values are sanitized to at least 1; `Sim::new` clamps
    /// to the node count.
    pub fn env_shards() -> usize {
        std::env::var("MRA_SIM_SHARDS")
            .ok()
            .and_then(|v| v.trim().parse::<usize>().ok())
            .filter(|&v| v >= 1)
            .unwrap_or(1)
    }
}

enum Ev<M> {
    /// Perfect-link delivery (reliability off).  `stamp` is the sender's
    /// Lamport stamp when tracing is armed (0 disarmed): riding inside the
    /// event is what carries causality across shard mailboxes, loss and
    /// duplication without any side channel.
    Deliver {
        from: NodeId,
        to: NodeId,
        stamp: u64,
        msg: M,
    },
    /// Session-layer data frame (reliability on): sequenced, carries a
    /// piggybacked cumulative ack for the reverse direction (and the
    /// sender's Lamport stamp, like [`Ev::Deliver`]).
    DeliverData {
        from: NodeId,
        to: NodeId,
        seq: u64,
        ack: u64,
        stamp: u64,
        msg: M,
    },
    /// Session-layer standalone cumulative ack.
    DeliverAck { from: NodeId, to: NodeId, ack: u64 },
    /// Retransmit timer of the directed link `from → to`.
    Rto { from: NodeId, to: NodeId },
    Think { node: NodeId },
    CsEnd { node: NodeId },
}

impl<M> Ev<M> {
    /// The node at which this event executes — and therefore the shard
    /// that owns it.  Deliveries and acks run at the receiver; timers
    /// (including retransmit timers) at the node that armed them.
    #[inline]
    fn executor(&self) -> NodeId {
        match *self {
            Ev::Deliver { to, .. }
            | Ev::DeliverData { to, .. }
            | Ev::DeliverAck { to, .. } => to,
            Ev::Rto { from, .. } => from,
            Ev::Think { node } | Ev::CsEnd { node } => node,
        }
    }
}

/// Node count cap: lane ids (`from * n + to` and `n * n + node`) must fit
/// in the upper 32 bits of an ordering key.
const LANE_MAX_NODES: usize = 65_534;

/// Per-lane state: the FIFO high-water mark of the wire lanes (never
/// deliver before an earlier message on the same directed link) and the
/// push counter that makes ordering keys unique.
#[derive(Clone, Copy, Default)]
struct LaneEnt {
    last: Time,
    ctr: u32,
}

/// One *lane* per single-writer push stream: `from * n + to` for frames on
/// the directed link `from → to` (written by the shard owning `from` for
/// data, by the shard owning the ack sender for acks), and `n * n + node`
/// for a node's local pushes — timers and fault deferrals (written by the
/// shard owning `node`).  Dense for paper-scale runs; a hash map above
/// [`LANE_DENSE_MAX_NODES`] nodes, where the `n² + n` dense table would
/// dwarf the live lane set (at 10 000 nodes: 100 M entries vs the few
/// links a node actually talks on).
enum LaneTable {
    Dense(Vec<LaneEnt>),
    Sparse(HashMap<u32, LaneEnt>),
}

/// Above this node count the lane table goes sparse.
const LANE_DENSE_MAX_NODES: usize = 512;

impl LaneTable {
    fn new(n: usize) -> Self {
        if n <= LANE_DENSE_MAX_NODES {
            LaneTable::Dense(vec![LaneEnt::default(); n * n + n])
        } else {
            LaneTable::Sparse(HashMap::new())
        }
    }

    #[inline]
    fn ent(&mut self, lane: u32) -> &mut LaneEnt {
        match self {
            LaneTable::Dense(v) => &mut v[lane as usize],
            LaneTable::Sparse(m) => m.entry(lane).or_default(),
        }
    }
}

/// Mint the canonical ordering key fragment for one push on `lane`:
/// `lane` in the high 32 bits, the bumped per-lane counter in the low 32.
/// Unique per lane forever, hence globally unique — and identical for any
/// shard count, because each lane has exactly one writer whose push
/// sequence does not depend on the execution layout.
#[inline]
fn mk_ord(lane: u32, e: &mut LaneEnt) -> u64 {
    let ord = (u64::from(lane) << 32) | u64::from(e.ctr);
    e.ctr = e.ctr.checked_add(1).expect("lane push counter overflow");
    ord
}

/// Compact heap entry: the canonical `(at, ord)` ordering key plus the
/// slab slot holding the event payload.  The heap sifts these small `Copy`
/// keys on every push/pop while the (potentially large) `Ev<M>` payloads
/// stay put in the slab.  `(at, ord)` is globally unique (see [`mk_ord`]),
/// so the derived lexicographic order never consults `slot` when comparing
/// distinct events.
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord)]
struct EvKey {
    at: Time,
    ord: u64,
    slot: u32,
}

/// The simulator's event queue: a 4-ary min-heap of packed [`EvKey`]s over
/// a free-list slab of event payloads.
///
/// 4-ary because sift-down dominates a discrete-event workload (every pop
/// sifts, pushes often stop early): halving the tree depth trades two
/// extra (adjacent, same-cache-line) comparisons per level for half the
/// memory moves, and the hole-based sift moves each key once instead of
/// swapping.  In steady state (constant event population) every push
/// reuses a freed slot, so the queue performs no heap allocation after
/// warmup.
struct EventQueue<M> {
    heap: Vec<EvKey>,
    slab: Vec<Option<Ev<M>>>,
    free: Vec<u32>,
}

impl<M> EventQueue<M> {
    fn new() -> Self {
        EventQueue {
            heap: Vec::new(),
            slab: Vec::new(),
            free: Vec::new(),
        }
    }

    fn push(&mut self, at: Time, ord: u64, ev: Ev<M>) {
        let slot = match self.free.pop() {
            Some(s) => {
                debug_assert!(self.slab[s as usize].is_none());
                self.slab[s as usize] = Some(ev);
                s
            }
            None => {
                assert!(self.slab.len() < u32::MAX as usize, "event slab overflow");
                self.slab.push(Some(ev));
                // The free list holds at most one entry per slab slot; keep
                // its capacity at that bound so popping without a matching
                // push (a fault-dropped event) never reallocates mid-run.
                let need = self.slab.len();
                if self.free.capacity() < need {
                    self.free.reserve_exact(need - self.free.len());
                }
                (self.slab.len() - 1) as u32
            }
        };
        let key = EvKey { at, ord, slot };
        // Sift up with a hole: parents shift down until `key` fits.
        let heap = &mut self.heap;
        heap.push(key);
        let mut i = heap.len() - 1;
        while i > 0 {
            let parent = (i - 1) >> 2;
            if heap[parent] <= key {
                break;
            }
            heap[i] = heap[parent];
            i = parent;
        }
        heap[i] = key;
    }

    fn pop(&mut self) -> Option<(Time, u64, Ev<M>)> {
        let heap = &mut self.heap;
        let top = *heap.first()?;
        let tail = heap.pop().expect("heap is non-empty");
        let n = heap.len();
        if n > 0 {
            // Sift the former tail down from the root with a hole: the
            // smallest child moves up until `tail` fits.  Keys are copied
            // into locals so the child scan reads each slot once.
            let mut i = 0;
            loop {
                let first_child = (i << 2) + 1;
                if first_child >= n {
                    break;
                }
                let last_child = (first_child + 4).min(n);
                let mut min = first_child;
                let mut min_key = heap[first_child];
                for (off, &k) in heap[first_child + 1..last_child].iter().enumerate() {
                    if k < min_key {
                        min = first_child + 1 + off;
                        min_key = k;
                    }
                }
                if tail <= min_key {
                    break;
                }
                heap[i] = min_key;
                i = min;
            }
            heap[i] = tail;
        }
        let slot = top.slot;
        let ev = self.slab[slot as usize].take().expect("slab slot vacant");
        self.free.push(slot);
        Some((top.at, top.ord, ev))
    }

    /// Timestamp of the earliest queued event.
    #[inline]
    fn peek_at(&self) -> Option<Time> {
        self.heap.first().map(|k| k.at)
    }

    /// Number of queued events (the tracer's queue-depth sample).
    #[inline]
    fn len(&self) -> usize {
        self.heap.len()
    }

    fn is_empty(&self) -> bool {
        self.heap.is_empty()
    }

    /// Pre-reserve heap, slab and free-list capacity for `extra` more
    /// in-flight events, so a later population peak does not reallocate
    /// (the zero-alloc guard pre-sizes for retransmission bursts).
    fn reserve(&mut self, extra: usize) {
        self.heap.reserve(extra);
        self.slab.reserve(extra);
        self.free.reserve(self.slab.capacity().saturating_sub(self.free.len()));
    }
}

struct SimNode<A: Allocator, W> {
    proto: A,
    ctx: Ctx<A::Msg>,
    driver: Driver,
    workload: W,
    rng: StdRng,
    /// Per-node network RNG (jittered latency draws by this node's sends):
    /// giving each sender its own stream keeps the draw sequence
    /// independent of global event interleaving, which is what makes the
    /// sharded schedule bit-identical to the sequential one.
    net_rng: StdRng,
}

/// A cross-shard event in flight between windows.
struct Mail<M> {
    at: Time,
    ord: u64,
    ev: Ev<M>,
}

/// The threaded driver's mailbox matrix: `boxes[src][dst]` carries mail
/// from shard `src` to shard `dst`, written strictly before the
/// end-of-window barrier and read strictly after it.
type Mailboxes<M> = Vec<Vec<Mutex<Vec<Mail<M>>>>>;

/// One CS enter/exit observation on a sharded run, replayed through a
/// [`SafetyMonitor`] in global `(at, ord)` order at the end.  `elems`
/// stores the granted set as a compact element list rather than a bitset:
/// at 100 k resources a bitset clone per grant would cost ~12 KB each.
struct CsNote {
    at: Time,
    ord: u64,
    /// Exit sorts before enter at identical `(at, ord)` (cannot happen
    /// today — one event never logs both — but the key is kept total).
    enter: bool,
    node: NodeId,
    elems: Vec<u32>,
}

/// One worker shard: the nodes `i ≡ id (mod k)`, their event queue, lanes,
/// clock and per-shard copies of every state the event handlers touch.
/// Fault link filters are indexed by receiver, session-layer endpoints by
/// their owning node, so under the executor mapping every access lands on
/// the shard-local copy and no cross-shard locking is ever needed.
struct Shard<A: Allocator, W: Workload> {
    id: usize,
    k: usize,
    n: usize,
    nodes: Vec<SimNode<A, W>>,
    queue: EventQueue<A::Msg>,
    lanes: LaneTable,
    now: Time,
    events: u64,
    horizon_cut: bool,
    faults: Option<FaultState>,
    reliable: Option<ReliableState<A::Msg>>,
    collector: Collector,
    /// Online safety monitor — single-shard runs only.
    monitor: Option<SafetyMonitor>,
    /// CS observations for the end-of-run replay — sharded runs only.
    cs_log: Vec<CsNote>,
    /// Outbound cross-shard events, one buffer per destination shard.
    mail_out: Vec<Vec<Mail<A::Msg>>>,
    /// Causal tracing + live metrics; disarmed by default (every hook is
    /// a single-branch no-op — the zero-alloc guard covers this state).
    tracer: EngineTracer,
    latency: LatencyModel,
    stop_issuing: Time,
    end_at: Time,
    max_events: u64,
    active: usize,
}

/// Route an event to its executor: push locally, or into the mail buffer
/// of the owning shard.
#[inline]
fn route<M>(
    me: usize,
    k: usize,
    queue: &mut EventQueue<M>,
    mail: &mut [Vec<Mail<M>>],
    at: Time,
    ord: u64,
    ev: Ev<M>,
) {
    let dst = ev.executor() % k;
    if dst == me {
        queue.push(at, ord, ev);
    } else {
        mail[dst].push(Mail { at, ord, ev });
    }
}

impl<A: Allocator, W: Workload> Shard<A, W> {
    /// Local slot of a node this shard owns.
    #[inline]
    fn local(&self, i: NodeId) -> usize {
        debug_assert_eq!(i % self.k, self.id, "node {i} not owned by shard {}", self.id);
        i / self.k
    }

    /// Mint an ordering key on the local timer lane of `node` (which this
    /// shard owns — local pushes never cross shards).
    #[inline]
    fn local_ord(&mut self, node: NodeId) -> u64 {
        let lane = (self.n * self.n + node) as u32;
        mk_ord(lane, self.lanes.ent(lane))
    }

    /// Initialize this shard's protocols and seed their think timers.
    fn init_nodes(&mut self) {
        for node in &mut self.nodes {
            node.ctx.set_now(Time::ZERO);
            node.proto.on_init(&mut node.ctx);
        }
        for j in 0..self.nodes.len() {
            let i = j * self.k + self.id;
            // Init-time sends run before any dispatch has set a trace key:
            // give each node's init outbox a synthetic per-node key.  It
            // cannot collide with real dispatch keys — those are
            // `lane << 32 | ctr`, and small plain values live on lane 0,
            // the 0 → 0 self-link no protocol ever sends on.  Crucially
            // these keys are tracer-only: no engine lane counter is minted
            // for them, so arming tracing cannot perturb the schedule.
            self.tracer.set_key(Time::ZERO, i as u64);
            self.schedule_outbox(i);
        }
        for j in 0..self.nodes.len() {
            let i = j * self.k + self.id;
            if i < self.active {
                let think = {
                    let SimNode { workload, rng, .. } = &mut self.nodes[j];
                    workload.set_now(Time::ZERO);
                    workload.think_time(rng)
                };
                let ord = self.local_ord(i);
                self.queue.push(think, ord, Ev::Think { node: i });
            }
        }
    }

    fn schedule_outbox(&mut self, from: NodeId) {
        // Disjoint field borrows: the outbox drains in place (its capacity
        // is the reused buffer) while the queue, lane table and mail
        // buffers are updated — no per-dispatch side buffer, no copies.
        let j = self.local(from);
        let SimNode { ctx, net_rng, .. } = &mut self.nodes[j];
        if !ctx.has_output() {
            // Common case: the handler replied with nothing (counter
            // updates, absorbed tokens).
            return;
        }
        let queue = &mut self.queue;
        let lanes = &mut self.lanes;
        let mail = &mut self.mail_out;
        let tracer = &mut self.tracer;
        let latency = &self.latency;
        let now = self.now;
        let n = self.n;
        let (me, k) = (self.id, self.k);
        match self.reliable.as_mut() {
            None => {
                for (to, msg) in ctx.drain_outbox() {
                    // `sample` fast-paths deterministic models (the paper's
                    // γ = const) without touching the RNG.
                    let lat = latency.sample(from, to, net_rng);
                    let stamp = tracer.on_send(from, to, msg.kind(), msg.weight() as u32, Some(lat));
                    let lane = (from * n + to) as u32;
                    let e = lanes.ent(lane);
                    // Reliable FIFO links: never deliver before an earlier
                    // message on the same link (1 ns separation keeps
                    // strict order even under jittered latency).  The
                    // `now + 1` floor makes delivery *strictly* after the
                    // send even under `LatencyModel::Zero`: the canonical
                    // trace key order `(at, ord)` then respects causality,
                    // which the per-lane `ord` counters alone cannot
                    // guarantee for same-instant cross-lane events.
                    let at = (now + lat)
                        .max(now + Time::from_nanos(1))
                        .max(e.last + Time::from_nanos(1));
                    e.last = at;
                    let ord = mk_ord(lane, e);
                    route(me, k, queue, mail, at, ord, Ev::Deliver { from, to, stamp, msg });
                }
            }
            Some(st) => {
                for (to, msg) in ctx.drain_outbox() {
                    // Session mode: stamp the frame, retain the retransmit
                    // copy, piggyback the cumulative ack, and make sure a
                    // retransmit timer is ticking for this link.
                    let (seq, ack) = st.on_send(from, to, &msg, now);
                    let lat = latency.sample(from, to, net_rng);
                    let stamp = tracer.on_send(from, to, msg.kind(), msg.weight() as u32, Some(lat));
                    let lane = (from * n + to) as u32;
                    let e = lanes.ent(lane);
                    // Same strictly-after-send floor as the unreliable arm.
                    let at = (now + lat)
                        .max(now + Time::from_nanos(1))
                        .max(e.last + Time::from_nanos(1));
                    e.last = at;
                    let ord = mk_ord(lane, e);
                    route(me, k, queue, mail, at, ord, Ev::DeliverData { from, to, seq, ack, stamp, msg });
                    if st.needs_arm(from, to) {
                        // The retransmit timer executes at `from` = here.
                        let tl = (n * n + from) as u32;
                        let tord = mk_ord(tl, lanes.ent(tl));
                        queue.push(now + st.rto_delay(from, to), tord, Ev::Rto { from, to });
                    }
                }
            }
        }
    }

    /// If `to` still owes `from` an ack for the data link `from → to`
    /// (no reply piggybacked it), put the standalone ack frame on the
    /// reverse wire.  No-op with reliability off.
    fn flush_pending_ack(&mut self, from: NodeId, to: NodeId) {
        let Some(st) = self.reliable.as_mut() else {
            return;
        };
        let Some(ack) = st.pending_ack(from, to) else {
            return;
        };
        let j = self.local(to);
        let lat = self.latency.sample(to, from, &mut self.nodes[j].net_rng);
        // Acks bypass the FIFO tiebreak on purpose: a cumulative ack is
        // order-insensitive (applying an older value after a newer one is
        // a no-op), and exempting it keeps data-frame timing — and thus
        // every protocol outcome under constant latency — identical to the
        // reliability-off schedule when no frame is ever lost.  The ack
        // still draws its key from the `to → from` wire lane (same writer:
        // this shard owns `to`), just without bumping the FIFO mark.
        let lane = (to * self.n + from) as u32;
        let ord = mk_ord(lane, self.lanes.ent(lane));
        let at = self.now + lat;
        route(
            self.id,
            self.k,
            &mut self.queue,
            &mut self.mail_out,
            at,
            ord,
            Ev::DeliverAck { from: to, to: from, ack },
        );
    }

    fn note_cs_enter(&mut self, node: NodeId, ord: u64, set: ResourceSet) {
        match self.monitor.as_mut() {
            Some(mon) => mon.enter(node, set),
            None => self.cs_log.push(CsNote {
                at: self.now,
                ord,
                enter: true,
                node,
                elems: set.iter().map(|r| r as u32).collect(),
            }),
        }
    }

    fn note_cs_exit(&mut self, node: NodeId, ord: u64) {
        match self.monitor.as_mut() {
            Some(mon) => mon.exit(node),
            None => self.cs_log.push(CsNote {
                at: self.now,
                ord,
                enter: false,
                node,
                elems: Vec::new(),
            }),
        }
    }

    fn post_dispatch(&mut self, i: NodeId, ord: u64) {
        self.schedule_outbox(i);
        let j = self.local(i);
        if self.nodes[j].ctx.take_granted() {
            let set = self.nodes[j].driver.current_set();
            let size = set.len() as u32;
            let now = self.now;
            self.note_cs_enter(i, ord, set);
            if let Some((wait, serve)) = self.collector.on_grant(i, now) {
                self.tracer.record_wait(wait);
                self.tracer.record_serve(serve);
            }
            self.nodes[j].workload.on_grant(now);
            self.tracer.on_cs(EventKind::CsEnter, i, size);
            let cs = self.nodes[j].driver.granted();
            let lord = self.local_ord(i);
            self.queue.push(now + cs, lord, Ev::CsEnd { node: i });
        }
    }

    /// Execute one event at its scheduled time.
    fn dispatch(&mut self, at: Time, ord: u64, ev: Ev<A::Msg>) {
        self.events += 1;
        assert!(
            self.events <= self.max_events,
            "simulation exceeded {} events — runaway protocol?",
            self.max_events
        );
        debug_assert!(at >= self.now, "time went backwards");
        self.now = at;
        self.tracer.on_dispatch(at, ord, self.queue.len());
        match ev {
            Ev::Deliver { from, to, stamp, msg } => {
                // Fault admission at event pop: the zero-alloc hot path is
                // preserved — decisions are pure hashes over pre-sized
                // tables, a deferral re-pushes into the free-list slab.
                let verdict = match self.faults.as_mut() {
                    Some(fs) => fs.admit(from, to, at),
                    None => Admit::Deliver,
                };
                match verdict {
                    Admit::Drop => {
                        self.tracer.on_fault(to, from, msg.kind(), stamp);
                        return;
                    }
                    Admit::Defer(until) => {
                        let when = until.max(at + Time::from_nanos(1));
                        let lord = self.local_ord(to);
                        self.queue.push(when, lord, Ev::Deliver { from, to, stamp, msg });
                        return;
                    }
                    // `admit` folds wire duplicates into Deliver; the
                    // variant only flows out of `admit_wire`.
                    Admit::Deliver | Admit::Duplicate => {}
                }
                self.tracer.on_recv(from, to, msg.kind(), msg.weight() as u32, stamp);
                self.collector.on_message(msg.kind(), msg.weight());
                let j = self.local(to);
                let node = &mut self.nodes[j];
                node.ctx.set_now(at);
                node.proto.on_message(&mut node.ctx, from, msg);
                self.post_dispatch(to, ord);
            }
            Ev::DeliverData { from, to, seq, ack, stamp, msg } => {
                // A wire duplicate is a one-off copy arriving right behind
                // the original; it is absorbed by the receive window
                // inline (it never re-enters the fault filter — a copy of
                // a copy would cascade at high dup rates).
                let verdict = match self.faults.as_mut() {
                    Some(fs) => fs.admit_wire(from, to, at),
                    None => Admit::Deliver,
                };
                let mut dup_copy = false;
                match verdict {
                    Admit::Drop => {
                        self.tracer.on_fault(to, from, msg.kind(), stamp);
                        return;
                    }
                    Admit::Defer(until) => {
                        let when = until.max(at + Time::from_nanos(1));
                        let lord = self.local_ord(to);
                        self.queue
                            .push(when, lord, Ev::DeliverData { from, to, seq, ack, stamp, msg });
                        return;
                    }
                    Admit::Duplicate => dup_copy = true,
                    Admit::Deliver => {}
                }
                let st = self
                    .reliable
                    .as_mut()
                    .expect("data frame without a session layer");
                let deliver = st.on_data(from, to, seq, ack);
                if dup_copy {
                    // Stale by construction: the original just ran.
                    st.on_data(from, to, seq, ack);
                }
                if deliver {
                    // Session dedup absorbs stale frames before this point,
                    // so exactly one recv is traced per accepted frame.
                    self.tracer.on_recv(from, to, msg.kind(), msg.weight() as u32, stamp);
                    self.collector.on_message(msg.kind(), msg.weight());
                    let j = self.local(to);
                    let node = &mut self.nodes[j];
                    node.ctx.set_now(at);
                    node.proto.on_message(&mut node.ctx, from, msg);
                    self.post_dispatch(to, ord);
                }
                // The handler's reply (if any) piggybacked the ack inside
                // `post_dispatch`; otherwise a standalone ack goes out now.
                self.flush_pending_ack(from, to);
            }
            Ev::DeliverAck { from, to, ack } => {
                let verdict = match self.faults.as_mut() {
                    Some(fs) => fs.admit_wire(from, to, at),
                    None => Admit::Deliver,
                };
                match verdict {
                    Admit::Drop => return,
                    Admit::Defer(until) => {
                        let when = until.max(at + Time::from_nanos(1));
                        let lord = self.local_ord(to);
                        self.queue.push(when, lord, Ev::DeliverAck { from, to, ack });
                        return;
                    }
                    // A duplicated ack is idempotent: apply once.
                    Admit::Deliver | Admit::Duplicate => {}
                }
                self.reliable
                    .as_mut()
                    .expect("ack frame without a session layer")
                    .on_ack(from, to, ack);
            }
            Ev::Rto { from, to } => {
                // The sender owns this timer: a frozen/crashed node's
                // timers resume at restart, like its Think/CsEnd timers.
                let deferred = match self.faults.as_mut() {
                    Some(fs) => fs.outage(from, at).map(|(_, until)| {
                        fs.stats.deferred += 1;
                        until
                    }),
                    None => None,
                };
                if let Some(until) = deferred {
                    let when = until.max(at + Time::from_nanos(1));
                    let lord = self.local_ord(from);
                    self.queue.push(when, lord, Ev::Rto { from, to });
                    return;
                }
                let st = self
                    .reliable
                    .as_mut()
                    .expect("rto without a session layer");
                match st.on_rto(from, to, at) {
                    // Everything acked in the meantime; the timer dies and
                    // the next send re-arms it.
                    RtoVerdict::Idle => return,
                    // The oldest unacked frame is younger than the timeout
                    // (the timer was armed for an already-acked frame):
                    // follow it without retransmitting or backing off.
                    RtoVerdict::Rearm(when) => {
                        let lord = self.local_ord(from);
                        self.queue.push(when, lord, Ev::Rto { from, to });
                        return;
                    }
                    RtoVerdict::Retransmit(_) => {}
                }
                // Re-send the whole unacked window (go-back-N) with fresh
                // latency samples, then re-arm with the backed-off delay.
                // Field-disjoint borrows: the session state is read while
                // the queue/lane table/RNG are written.
                let st = self.reliable.as_ref().expect("session layer vanished");
                let delay = st.rto_delay(from, to);
                let ack = st.ack_for(from, to);
                let j = from / self.k;
                let SimNode { net_rng, .. } = &mut self.nodes[j];
                let queue = &mut self.queue;
                let lanes = &mut self.lanes;
                let mail = &mut self.mail_out;
                let tracer = &mut self.tracer;
                let latency = &self.latency;
                let (me, k, n) = (self.id, self.k, self.n);
                let lane = (from * n + to) as u32;
                for (seq, msg) in st.unacked(from, to) {
                    let lat = latency.sample(from, to, net_rng);
                    // A retransmission is a later event than the original
                    // send: it mints a fresh Lamport stamp.
                    let stamp = tracer.on_retransmit(from, to, msg.kind(), msg.weight() as u32);
                    let e = lanes.ent(lane);
                    // Strictly after the RTO fire, like first transmissions
                    // are strictly after their send.
                    let when = (at + lat)
                        .max(at + Time::from_nanos(1))
                        .max(e.last + Time::from_nanos(1));
                    e.last = when;
                    let o = mk_ord(lane, e);
                    route(me, k, queue, mail, when, o, Ev::DeliverData {
                        from,
                        to,
                        seq,
                        ack,
                        stamp,
                        msg: msg.clone(),
                    });
                }
                let tl = (n * n + from) as u32;
                let tord = mk_ord(tl, lanes.ent(tl));
                queue.push(at + delay, tord, Ev::Rto { from, to });
            }
            Ev::Think { node: i } => {
                // A down node (paused or crashed) does not run its
                // application lifecycle; the timer resumes at restart.
                let deferred = match self.faults.as_mut() {
                    Some(fs) => fs.outage(i, at).map(|(_, until)| {
                        fs.stats.deferred += 1;
                        until
                    }),
                    None => None,
                };
                if let Some(until) = deferred {
                    let when = until.max(at + Time::from_nanos(1));
                    let lord = self.local_ord(i);
                    self.queue.push(when, lord, Ev::Think { node: i });
                    return;
                }
                let j = self.local(i);
                if at >= self.stop_issuing {
                    self.nodes[j].driver.park();
                    return;
                }
                let (set, arrival) = {
                    let SimNode {
                        driver,
                        workload,
                        rng,
                        ..
                    } = &mut self.nodes[j];
                    workload.set_now(at);
                    let set = driver.issue(workload, rng);
                    // An open-loop workload claims the request's intended
                    // arrival; closed-loop ones arrive when they issue.
                    (set, workload.intended_arrival().unwrap_or(at).min(at))
                };
                self.tracer.on_cs(EventKind::CsRequest, i, set.len() as u32);
                self.collector.on_issue(i, set.clone(), at, arrival);
                let node = &mut self.nodes[j];
                node.ctx.set_now(at);
                node.proto.request(&mut node.ctx, set);
                self.post_dispatch(i, ord);
            }
            Ev::CsEnd { node: i } => {
                let deferred = match self.faults.as_mut() {
                    Some(fs) => fs.outage(i, at).map(|(_, until)| {
                        // The frozen node holds its resources through the
                        // outage; it releases at restart.
                        fs.stats.deferred += 1;
                        until
                    }),
                    None => None,
                };
                if let Some(until) = deferred {
                    let when = until.max(at + Time::from_nanos(1));
                    let lord = self.local_ord(i);
                    self.queue.push(when, lord, Ev::CsEnd { node: i });
                    return;
                }
                self.collector.on_release(i, at);
                self.note_cs_exit(i, ord);
                self.tracer.on_cs(EventKind::CsExit, i, 0);
                let j = self.local(i);
                let node = &mut self.nodes[j];
                node.driver.released();
                node.ctx.set_now(at);
                node.proto.release(&mut node.ctx);
                self.post_dispatch(i, ord);
                let think = {
                    let SimNode { workload, rng, .. } = &mut self.nodes[j];
                    workload.on_release(at);
                    workload.set_now(at);
                    workload.think_time(rng)
                };
                let lord = self.local_ord(i);
                self.queue.push(at + think, lord, Ev::Think { node: i });
            }
        }
    }

    /// Sequential engine step: pop–check–dispatch.  Only valid when this
    /// shard is the whole simulation (`k == 1`).
    fn step_seq(&mut self) -> bool {
        let Some((at, ord, ev)) = self.queue.pop() else {
            return false;
        };
        if at > self.end_at {
            self.horizon_cut = true;
            return false;
        }
        self.dispatch(at, ord, ev);
        true
    }

    /// Process every local event strictly below `horizon` (and not past
    /// the drain cut-off).
    fn process_window(&mut self, horizon: Time) {
        while let Some(top) = self.queue.peek_at() {
            if top >= horizon {
                return;
            }
            if top > self.end_at {
                self.horizon_cut = true;
                return;
            }
            let (at, ord, ev) = self.queue.pop().expect("peeked event vanished");
            self.dispatch(at, ord, ev);
        }
    }

    /// Earliest local timestamp in nanoseconds (`u64::MAX` = empty), the
    /// value shards publish to agree on the next window.
    fn local_min(&self) -> u64 {
        self.queue.peek_at().map_or(u64::MAX, |t| t.as_nanos())
    }
}

/// A poison-tolerant mutex lock: a panicking sibling shard must not turn
/// every subsequent lock into a second, unrelated panic.
fn lock<T>(m: &Mutex<T>) -> MutexGuard<'_, T> {
    m.lock().unwrap_or_else(|e| e.into_inner())
}

/// A reusable barrier that can be *aborted*: when a shard worker panics it
/// aborts the barrier instead of leaving its siblings waiting forever, and
/// every waiter returns `false` so the workers unwind cleanly.
struct AbortBarrier {
    state: Mutex<BarrierState>,
    cv: Condvar,
    parties: usize,
}

struct BarrierState {
    count: usize,
    generation: u64,
    aborted: bool,
}

impl AbortBarrier {
    fn new(parties: usize) -> Self {
        AbortBarrier {
            state: Mutex::new(BarrierState {
                count: 0,
                generation: 0,
                aborted: false,
            }),
            cv: Condvar::new(),
            parties,
        }
    }

    /// Wait for all parties.  Returns `false` if the barrier was aborted.
    fn wait(&self) -> bool {
        let mut st = lock(&self.state);
        if st.aborted {
            return false;
        }
        let gen = st.generation;
        st.count += 1;
        if st.count == self.parties {
            st.count = 0;
            st.generation += 1;
            self.cv.notify_all();
            return true;
        }
        while st.generation == gen && !st.aborted {
            st = self.cv.wait(st).unwrap_or_else(|e| e.into_inner());
        }
        !st.aborted
    }

    fn abort(&self) {
        let mut st = lock(&self.state);
        st.aborted = true;
        self.cv.notify_all();
    }
}

/// The simulator.
pub struct Sim<A: Allocator, W: Workload> {
    shards: Vec<Shard<A, W>>,
    k: usize,
    n: usize,
    m: usize,
    /// The conservative lookahead: `latency.min_latency()`.
    lookahead: Time,
    end_at: Time,
    cfg: SimConfig,
    /// Set by [`Sim::init`]; guards against double initialization.
    initialized: bool,
}

impl<A: Allocator, W: Workload> Sim<A, W> {
    /// Build a simulation over one protocol instance and one workload per
    /// node.  `cfg.shards` picks the parallel layout (clamped to `[1, n]`;
    /// a zero-lookahead latency model forces one shard) — the results are
    /// bit-identical for every value.
    pub fn new(protos: Vec<A>, workloads: Vec<W>, m: usize, cfg: SimConfig) -> Self {
        let n = protos.len();
        assert_eq!(n, workloads.len());
        assert!(n >= 1, "a simulation needs at least one node");
        assert!(n <= LANE_MAX_NODES, "node count exceeds lane id space");
        let window = (cfg.warmup, cfg.warmup + cfg.measure);
        let stop_issuing = window.1;
        let end_at = window.1 + cfg.drain;
        let lookahead = cfg.latency.min_latency();
        let mut k = cfg.shards.clamp(1, n);
        if lookahead == Time::ZERO {
            // No lookahead means no window can ever be processed safely in
            // parallel; fall back to the sequential path silently (Zero
            // latency is the shared-memory scheduler's model).
            k = 1;
        }
        let active = cfg.active_nodes.unwrap_or(n);
        let mut per: Vec<Vec<SimNode<A, W>>> =
            (0..k).map(|_| Vec::with_capacity(n / k + 1)).collect();
        for (i, (proto, workload)) in protos.into_iter().zip(workloads).enumerate() {
            per[i % k].push(SimNode {
                proto,
                ctx: Ctx::new(i, n),
                driver: Driver::new(),
                workload,
                rng: StdRng::seed_from_u64(
                    cfg.seed ^ (i as u64).wrapping_mul(0x9E37_79B9_7F4A_7C15),
                ),
                net_rng: StdRng::seed_from_u64(
                    cfg.seed
                        ^ 0xDEAD_BEEF_CAFE_F00D
                        ^ (i as u64).wrapping_mul(0x9E37_79B9_7F4A_7C15),
                ),
            });
        }
        let shards = per
            .into_iter()
            .enumerate()
            .map(|(id, nodes)| Shard {
                id,
                k,
                n,
                nodes,
                queue: EventQueue::new(),
                lanes: LaneTable::new(n),
                now: Time::ZERO,
                events: 0,
                horizon_cut: false,
                faults: None,
                reliable: None,
                collector: Collector::new(n, m, window),
                monitor: if k == 1 {
                    Some(SafetyMonitor::new(n, m))
                } else {
                    None
                },
                cs_log: Vec::new(),
                mail_out: (0..k).map(|_| Vec::new()).collect(),
                tracer: EngineTracer::disarmed(),
                latency: cfg.latency.clone(),
                stop_issuing,
                end_at,
                max_events: cfg.max_events,
                active,
            })
            .collect();
        Sim {
            shards,
            k,
            n,
            m,
            lookahead,
            end_at,
            cfg,
            initialized: false,
        }
    }

    /// The effective shard count after clamping (1 on zero-lookahead
    /// latency models regardless of the configured value).
    pub fn shards(&self) -> usize {
        self.k
    }

    /// Install a [`FaultPlan`]: every subsequent event pop runs through its
    /// admission filter (drops, duplicate absorption, partitions, node
    /// outages — see [`mra_protocol::faults`]).  Fault decisions are
    /// counter-hashed from the plan's own seed, so installing a plan never
    /// perturbs the workload or latency RNG streams: a zero-rate plan is
    /// observationally identical to no plan.  On a sharded run each shard
    /// keeps its own filter state; every per-link counter is only ever
    /// touched by the link's receiving shard, so the decisions — like
    /// everything else — are independent of the layout.
    ///
    /// # Panics
    /// If called after [`Sim::init`].
    pub fn set_fault_plan(&mut self, plan: FaultPlan) {
        assert!(!self.initialized, "install the fault plan before init()");
        for s in &mut self.shards {
            s.faults = Some(FaultState::new(plan.clone(), self.n));
        }
    }

    /// Fault counters accumulated so far (zero when no plan is installed),
    /// aggregated over all shards.
    pub fn fault_stats(&self) -> FaultStats {
        let mut acc = FaultStats::default();
        for s in &self.shards {
            if let Some(f) = &s.faults {
                acc.absorb(&f.stats);
            }
        }
        acc
    }

    /// Enable the reliable-delivery session layer
    /// ([`mra_protocol::reliable`]): every protocol message is sequenced
    /// into a per-link session, receivers dedup and ack (piggybacked on
    /// reverse traffic, standalone otherwise), and retransmit timers —
    /// scheduled through the ordinary event heap — re-send unacked frames
    /// with capped exponential backoff.  Combined with a
    /// [recoverable](FaultPlan::is_recoverable) fault plan this restores
    /// the paper's exactly-once FIFO channel model, and the end-of-run
    /// deadlock check stays **armed** even though the plan is lossy.
    /// Session endpoints split cleanly across shards: the transmit side of
    /// a link lives at its sender, the receive side at its receiver.
    ///
    /// Off (the default) is the paper-faithful perfect-link mode: nothing
    /// about the simulation changes.
    ///
    /// # Panics
    /// If called after [`Sim::init`].
    pub fn set_reliability(&mut self, cfg: Reliability) {
        assert!(!self.initialized, "enable reliability before init()");
        for s in &mut self.shards {
            s.reliable = Some(ReliableState::new(cfg, self.n));
        }
    }

    /// Session-layer counters accumulated so far (zero when disabled),
    /// aggregated over all shards.
    pub fn reliability_stats(&self) -> ReliabilityStats {
        let mut acc = ReliabilityStats::default();
        for s in &self.shards {
            if let Some(r) = &s.reliable {
                acc.absorb(&r.stats);
            }
        }
        acc
    }

    /// Arm causal tracing + live metrics capture (see [`mra_obs`]).
    ///
    /// Each shard gets its own [`EngineTracer`]; at the end of the run the
    /// per-shard buffers merge in canonical `(at, ord, seq)` order — the
    /// exact key the event heaps order by — so the resulting trace (and
    /// its JSONL rendering) is **byte-identical for every shard count**,
    /// like everything else the engine produces.  Lamport stamps ride
    /// inside delivery events, so causality survives shard mailboxes,
    /// loss, duplication and retransmission with no side channel; each
    /// node's clock is only ever touched by the shard that owns the node.
    ///
    /// Arming never touches RNGs, lane counters or the schedule: a traced
    /// run executes the identical event sequence as an untraced one.  In
    /// `TraceMode::Ring` each *shard* keeps a ring of the given capacity
    /// and recording allocates nothing after this call; `Unbounded` keeps
    /// every event.  `TraceMode::Off` is a no-op.
    ///
    /// # Panics
    /// If called after [`Sim::init`].
    pub fn set_tracing(&mut self, mode: TraceMode) {
        assert!(!self.initialized, "arm tracing before init()");
        if mode == TraceMode::Off {
            return;
        }
        for s in &mut self.shards {
            s.tracer = EngineTracer::armed(self.n, mode);
        }
    }

    /// Pre-reserve event-queue capacity for `slots` more in-flight events
    /// on every shard.  Steady-state dispatch never allocates once the
    /// queues have grown to their peak population; this lets
    /// allocation-sensitive probes (the zero-alloc guard) put the peak —
    /// retransmission bursts included — inside pre-sized buffers up front.
    pub fn reserve_events(&mut self, slots: usize) {
        for s in &mut self.shards {
            s.queue.reserve(slots);
            for buf in &mut s.mail_out {
                buf.reserve(slots);
            }
        }
    }

    /// Initialize the protocols and seed the initial think timers.  Part of
    /// the stepping API; [`Sim::run`] calls it automatically when it was
    /// not already called.
    ///
    /// # Panics
    /// On a second call — protocols must not be initialized twice.
    pub fn init(&mut self) {
        assert!(!self.initialized, "Sim::init() called twice");
        self.initialized = true;
        for s in &mut self.shards {
            s.init_nodes();
        }
        // Init-time messages may cross shards (an elected node greeting
        // its peers); deliver them before anyone computes a window.
        self.exchange_mail();
    }

    /// Move every outbound cross-shard event into its destination queue.
    /// Buffers are taken, drained and put back, so their capacity — and
    /// the zero-alloc steady state — survives the exchange.
    fn exchange_mail(&mut self) {
        for src in 0..self.k {
            for dst in 0..self.k {
                if src == dst || self.shards[src].mail_out[dst].is_empty() {
                    continue;
                }
                let mut buf = std::mem::take(&mut self.shards[src].mail_out[dst]);
                let q = &mut self.shards[dst].queue;
                for mail in buf.drain(..) {
                    q.push(mail.at, mail.ord, mail.ev);
                }
                self.shards[src].mail_out[dst] = buf;
            }
        }
    }

    /// Process one event.  Returns `false` when the simulation is over:
    /// the queue ran dry, or the next event lies past the drain horizon
    /// (such events — e.g. a CS ending during the cut-off — are
    /// intentionally dropped).  Exposed so probes (tracing, allocation
    /// tests) can observe the loop mid-run; [`Sim::run`] is the normal
    /// entry point.
    ///
    /// # Panics
    /// On a sharded simulation — per-event stepping has no meaning across
    /// concurrent windows; use [`Sim::step_window`] there.
    pub fn step(&mut self) -> bool {
        assert_eq!(self.k, 1, "step() requires a single shard — use step_window()");
        self.shards[0].step_seq()
    }

    /// Process one conservative window across all shards **on the calling
    /// thread** (the cooperative driver): agree on the global minimum
    /// timestamp, let every shard process `[T, T + lookahead)`, then
    /// exchange cross-shard mail.  Returns `false` when the simulation is
    /// over.  Same schedule as the threaded driver inside [`Sim::run`] —
    /// exposed so probes (the zero-alloc guard) can observe the sharded
    /// loop without threads.
    ///
    /// # Panics
    /// On a single-shard simulation — use [`Sim::step`] there.
    pub fn step_window(&mut self) -> bool {
        assert!(self.k > 1, "step_window() requires shards > 1 — use step()");
        let t = self
            .shards
            .iter()
            .map(|s| s.local_min())
            .min()
            .expect("at least one shard");
        if t == u64::MAX || Time::from_nanos(t) > self.end_at {
            for s in &mut self.shards {
                if !s.queue.is_empty() {
                    s.horizon_cut = true;
                }
            }
            return false;
        }
        let horizon = Time::from_nanos(t) + self.lookahead;
        for s in &mut self.shards {
            s.process_window(horizon);
        }
        self.exchange_mail();
        true
    }

    /// Liveness check, stats aggregation, safety replay and metric merge.
    fn into_result(mut self, wall_ns: u64) -> RunResult {
        let algo = self.shards[0].nodes[0].proto.name().to_string();
        let active = self.cfg.active_nodes.unwrap_or(self.n);
        let horizon_cut = self.shards.iter().any(|s| s.horizon_cut);
        let queues_empty = self.shards.iter().all(|s| s.queue.is_empty());
        let now_max = self.shards.iter().map(|s| s.now).max().expect("k >= 1");
        // Sanity: a *naturally* exhausted event queue (no horizon cut) with
        // a node still waiting is a genuine deadlock — nothing can ever
        // unblock it.  A horizon cut is not: the unblocking event may have
        // been dropped.  Neither is a lossy fault plan *without* the
        // session layer: a dropped token legitimately starves its waiters
        // (the starvation shows up as `censored` requests instead).  With
        // reliability enabled the check is re-armed for every recoverable
        // plan (drop rates < 1.0): retransmission owes liveness again.
        let recovered = self.shards[0].reliable.is_some()
            && self.shards[0]
                .faults
                .as_ref()
                .map_or(true, |f| f.plan().is_recoverable());
        let lossy = self.shards[0]
            .faults
            .as_ref()
            .is_some_and(|f| f.plan().is_lossy())
            && !recovered;
        if !horizon_cut && queues_empty && !lossy {
            for s in &self.shards {
                for (j, node) in s.nodes.iter().enumerate() {
                    let i = j * s.k + s.id;
                    if i < active && node.driver.state() == DriverState::Waiting {
                        panic!(
                            "liveness failure: node {i} still waiting at {now_max} \
                             with no events left (algo {algo})"
                        );
                    }
                }
            }
        }
        let fault_stats = self.fault_stats();
        let rel_stats = self.reliability_stats();
        // Safety replay for sharded runs: the per-shard enter/exit logs
        // merge into the global event order — `(at, ord)` is the exact key
        // the heaps ordered by — and every grant is re-checked.
        if self.k > 1 {
            let total = self.shards.iter().map(|s| s.cs_log.len()).sum();
            let mut notes: Vec<CsNote> = Vec::with_capacity(total);
            for s in &mut self.shards {
                notes.append(&mut s.cs_log);
            }
            notes.sort_unstable_by_key(|nt| (nt.at, nt.ord, nt.enter));
            let mut mon = SafetyMonitor::new(self.n, self.m);
            for nt in &notes {
                if nt.enter {
                    mon.enter(nt.node, nt.elems.iter().map(|&r| r as usize).collect());
                } else {
                    mon.exit(nt.node);
                }
            }
        }
        let end = now_max.min(self.end_at);
        let shard_events: Vec<u64> = self.shards.iter().map(|s| s.events).collect();
        let events: u64 = shard_events.iter().sum();
        let k = self.k;
        let n = self.n;
        // Merge per-shard tracers: histograms fold (exact), trace buffers
        // concatenate and sort by the canonical `(at, ord, seq)` key — the
        // same global order the safety replay above uses — so the merged
        // trace is independent of the shard layout.
        let mut obs = ObsReport::default();
        let mut parts = Vec::new();
        let mut trace_dropped = 0u64;
        for s in &mut self.shards {
            let tracer = std::mem::take(&mut s.tracer);
            trace_dropped += tracer.absorb_into(&mut obs, &mut parts);
        }
        if obs.armed {
            obs.trace = Some(TraceLog::merge(parts, trace_dropped));
        }
        let mut it = self.shards.into_iter();
        let mut collector = it.next().expect("k >= 1").collector;
        for s in it {
            collector.absorb(s.collector);
        }
        let mut res = collector.finish(&algo, n, end);
        res.events_processed = events;
        res.wall_ns = wall_ns;
        res.faults = fault_stats;
        res.reliability = rel_stats;
        res.shards = k;
        res.shard_events = shard_events;
        res.obs = obs;
        res
    }
}

impl<A: Allocator + Send, W: Workload> Sim<A, W> {
    /// Run to completion and return the measured result.  Composes with
    /// the stepping API: a partially stepped simulation resumes instead of
    /// re-initializing.  Sharded simulations run one worker thread per
    /// shard (hence the `A: Send` bound; protocol states are plain data).
    ///
    /// Throughput accounting: `wall_ns` (and thus
    /// [`RunResult::events_per_sec`]) is only reported when `run` executed
    /// the *whole* simulation.  A resumed run cannot know how long the
    /// caller's stepping took, so pairing its partial wall time with the
    /// lifetime event count would inflate the rate — it reports 0
    /// ("not measured") instead.
    pub fn run(mut self) -> RunResult {
        let started = Instant::now();
        let whole_run = self.shards.iter().map(|s| s.events).sum::<u64>() == 0;
        if !self.initialized {
            self.init();
        }
        if self.k == 1 {
            let s = &mut self.shards[0];
            while s.step_seq() {}
        } else if std::thread::available_parallelism().map_or(1, |p| p.get()) > 1 {
            self.run_windowed();
        } else {
            // One hardware thread: workers could only time-share, turning
            // every barrier into a scheduling quantum.  Drive the identical
            // windowed schedule cooperatively — same windows, same events,
            // bit-identical result, no synchronization cost.
            while self.step_window() {}
        }
        let wall_ns = if whole_run {
            started.elapsed().as_nanos() as u64
        } else {
            0
        };
        self.into_result(wall_ns)
    }

    /// The threaded windowed driver: one worker per shard, two barriers
    /// per window (publish-mins, flush-mail), mailboxes under mutexes that
    /// are only ever touched on opposite sides of a barrier.
    fn run_windowed(&mut self) {
        let k = self.k;
        let lookahead = self.lookahead;
        let end_at = self.end_at;
        let mins: Vec<AtomicU64> = (0..k).map(|_| AtomicU64::new(u64::MAX)).collect();
        let mailboxes: Mailboxes<A::Msg> = (0..k)
            .map(|_| (0..k).map(|_| Mutex::new(Vec::new())).collect())
            .collect();
        let barrier = AbortBarrier::new(k);
        let mins = &mins;
        let mailboxes = &mailboxes;
        let barrier = &barrier;
        std::thread::scope(|scope| {
            let handles: Vec<_> = self
                .shards
                .iter_mut()
                .map(|shard| {
                    scope.spawn(move || {
                        let caught = std::panic::catch_unwind(std::panic::AssertUnwindSafe(
                            || drive_shard(shard, mins, mailboxes, barrier, lookahead, end_at),
                        ));
                        if let Err(payload) = caught {
                            // Wake the siblings parked on the barrier so
                            // the whole fleet unwinds instead of hanging.
                            barrier.abort();
                            std::panic::resume_unwind(payload);
                        }
                    })
                })
                .collect();
            for h in handles {
                if let Err(payload) = h.join() {
                    // Re-raise the first worker panic with its original
                    // payload (a safety/liveness message, not a generic
                    // "a scoped thread panicked").
                    std::panic::resume_unwind(payload);
                }
            }
        });
    }
}

/// The per-worker loop of the threaded driver.  All mailbox writes happen
/// strictly before the end-of-window barrier and all reads strictly after
/// it (likewise for the `mins` slots around the publish barrier), so the
/// mutexes are never contended — they exist to carry ownership, not to
/// serialize.
fn drive_shard<A: Allocator, W: Workload>(
    shard: &mut Shard<A, W>,
    mins: &[AtomicU64],
    mailboxes: &Mailboxes<A::Msg>,
    barrier: &AbortBarrier,
    lookahead: Time,
    end_at: Time,
) {
    let me = shard.id;
    loop {
        // Drain the mail the previous window flushed to this shard.
        for (src, boxes) in mailboxes.iter().enumerate() {
            if src == me {
                continue;
            }
            let mut inbox = lock(&boxes[me]);
            for mail in inbox.drain(..) {
                shard.queue.push(mail.at, mail.ord, mail.ev);
            }
        }
        // Publish my earliest timestamp; the barrier's lock ordering makes
        // the relaxed stores visible to every reader after it.
        mins[me].store(shard.local_min(), Ordering::Relaxed);
        if !barrier.wait() {
            return;
        }
        let t = mins
            .iter()
            .map(|a| a.load(Ordering::Relaxed))
            .min()
            .expect("k >= 1");
        if t == u64::MAX || Time::from_nanos(t) > end_at {
            // Uniform decision: every shard computed the same `t`, so all
            // of them return here without another barrier.
            if !shard.queue.is_empty() {
                shard.horizon_cut = true;
            }
            return;
        }
        shard.process_window(Time::from_nanos(t) + lookahead);
        for (dst, buf) in shard.mail_out.iter_mut().enumerate() {
            if dst == me || buf.is_empty() {
                continue;
            }
            let mut outbox = lock(&mailboxes[me][dst]);
            outbox.append(buf);
        }
        // End-of-window barrier: everyone has flushed (and finished
        // reading `mins` — the next store happens after this point), so
        // the next iteration's drains and publishes are race-free.
        if !barrier.wait() {
            return;
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::driver::FixedWorkload;
    use mra_baselines::{Central, GrantPolicy, Incremental};
    use mra_core::LassConfig;

    fn fixed(n: usize, m: usize, size: usize) -> Vec<FixedWorkload> {
        (0..n)
            .map(|_| FixedWorkload {
                think: Time::from_millis(5),
                cs: Time::from_millis(3),
                m,
                size,
            })
            .collect()
    }

    #[test]
    fn lass_simulation_completes_and_measures() {
        let cfg = LassConfig::with_loan(4, 8);
        let sim = Sim::new(cfg.build_nodes(), fixed(4, 8, 2), 8, SimConfig::quick(1));
        let res = sim.run();
        assert!(res.cs_completed > 20, "got {}", res.cs_completed);
        assert!(res.use_rate() > 0.0 && res.use_rate() <= 1.0);
        assert!(res.wait_stats().count > 0);
        assert_eq!(res.censored, 0);
        assert_eq!(res.shards, 1);
        assert_eq!(res.shard_events, vec![res.events_processed]);
    }

    #[test]
    fn incremental_simulation_completes() {
        let sim = Sim::new(
            Incremental::build_nodes(4, 8),
            fixed(4, 8, 2),
            8,
            SimConfig::quick(2),
        );
        let res = sim.run();
        assert!(res.cs_completed > 20);
        assert_eq!(res.algo, "incremental");
    }

    #[test]
    fn central_with_passive_coordinator() {
        let mut cfg = SimConfig::quick(3);
        cfg.latency = LatencyModel::Zero;
        cfg.active_nodes = Some(4);
        let sim = Sim::new(
            Central::build_nodes(4, GrantPolicy::Conservative),
            fixed(5, 8, 2),
            8,
            cfg,
        );
        let res = sim.run();
        assert!(res.cs_completed > 50, "zero latency is fast: {}", res.cs_completed);
    }

    #[test]
    fn deterministic_given_seed() {
        let run = |seed| {
            let cfg = LassConfig::with_loan(4, 6);
            let sim = Sim::new(cfg.build_nodes(), fixed(4, 6, 2), 6, SimConfig::quick(seed));
            let r = sim.run();
            (r.cs_completed, r.msgs_total, r.wait_stats().mean_ms)
        };
        assert_eq!(run(42), run(42));
        assert_ne!(run(42), run(43), "different seeds should differ");
    }

    #[test]
    fn messages_are_fifo_per_link() {
        // Statistical check via jittered latency: the engine must still
        // deliver FIFO (enforced by the lane table); the protocols would
        // panic / deadlock otherwise.  Run with heavy jitter and verify
        // completion.
        let mut cfg = SimConfig::quick(7);
        cfg.latency = LatencyModel::Uniform {
            lo: Time::from_micros(10),
            hi: Time::from_millis(5),
        };
        let lass = LassConfig::with_loan(4, 6);
        let res = Sim::new(lass.build_nodes(), fixed(4, 6, 2), 6, cfg).run();
        assert!(res.cs_completed > 10);
    }

    #[test]
    fn run_reports_event_throughput() {
        let cfg = LassConfig::with_loan(4, 8);
        let sim = Sim::new(cfg.build_nodes(), fixed(4, 8, 2), 8, SimConfig::quick(1));
        let res = sim.run();
        assert!(res.events_processed > 0);
        assert!(res.wall_ns > 0);
        assert!(res.events_per_sec() > 0.0);
        // Every delivered message is one event, so the count dominates.
        assert!(res.events_processed >= res.msgs_total);
    }

    #[test]
    fn stepping_api_matches_run() {
        let build = || {
            let cfg = LassConfig::with_loan(4, 6);
            Sim::new(cfg.build_nodes(), fixed(4, 6, 2), 6, SimConfig::quick(9))
        };
        let whole = build().run();
        let mut stepped = build();
        stepped.init();
        let mut steps = 0u64;
        while stepped.step() {
            steps += 1;
        }
        assert_eq!(steps, whole.events_processed);
    }

    #[test]
    fn run_resumes_a_stepped_simulation_without_reinit() {
        let build = || {
            let cfg = LassConfig::with_loan(4, 6);
            Sim::new(cfg.build_nodes(), fixed(4, 6, 2), 6, SimConfig::quick(13))
        };
        let whole = build().run();
        let mut hybrid = build();
        hybrid.init();
        for _ in 0..500 {
            assert!(hybrid.step());
        }
        let resumed = hybrid.run();
        assert_eq!(resumed.cs_completed, whole.cs_completed);
        assert_eq!(resumed.msgs_total, whole.msgs_total);
        assert_eq!(resumed.events_processed, whole.events_processed);
        // A resumed run must not report a throughput: its wall clock
        // covers only part of the event stream.
        assert_eq!(resumed.wall_ns, 0);
        assert_eq!(resumed.events_per_sec(), 0.0);
        assert!(whole.wall_ns > 0);
    }

    #[test]
    #[should_panic(expected = "init() called twice")]
    fn double_init_is_rejected() {
        let cfg = LassConfig::with_loan(2, 4);
        let mut sim = Sim::new(cfg.build_nodes(), fixed(2, 4, 1), 4, SimConfig::quick(1));
        sim.init();
        sim.init();
    }

    #[test]
    fn clean_and_dup_only_fault_plans_change_nothing_observable() {
        let run = |plan: Option<FaultPlan>| {
            let cfg = LassConfig::with_loan(4, 8);
            let mut sim = Sim::new(cfg.build_nodes(), fixed(4, 8, 2), 8, SimConfig::quick(17));
            if let Some(p) = plan {
                sim.set_fault_plan(p);
            }
            sim.run()
        };
        let bare = run(None);
        let clean = run(Some(FaultPlan::new(99)));
        let dup = run(Some(FaultPlan::new(99).dup_rate(0.5)));
        for other in [&clean, &dup] {
            assert_eq!(bare.cs_completed, other.cs_completed);
            assert_eq!(bare.msgs_total, other.msgs_total);
            assert_eq!(
                bare.wait_stats().mean_ms,
                other.wait_stats().mean_ms,
                "fault bookkeeping leaked into protocol timing"
            );
        }
        assert_eq!(clean.faults, FaultStats::default());
        assert!(dup.faults.duplicated > 0);
        assert_eq!(dup.faults.duplicated, dup.faults.deduped);
        assert_eq!(dup.faults.dropped_total(), 0);
    }

    #[test]
    fn lossy_plan_degrades_throughput_deterministically_and_safely() {
        let run = |loss: f64| {
            let cfg = LassConfig::with_loan(4, 8);
            let mut sim = Sim::new(cfg.build_nodes(), fixed(4, 8, 2), 8, SimConfig::quick(5));
            sim.set_fault_plan(FaultPlan::new(7).drop_rate(loss));
            sim.run()
        };
        let clean = run(0.0);
        let lossy = run(0.15);
        assert!(lossy.faults.dropped_link > 0);
        assert!(
            lossy.cs_completed < clean.cs_completed,
            "15% loss should cost critical sections: {} vs {}",
            lossy.cs_completed,
            clean.cs_completed
        );
        // Deterministic: the identical faulty run reproduces exactly.
        let again = run(0.15);
        assert_eq!(lossy.cs_completed, again.cs_completed);
        assert_eq!(lossy.msgs_total, again.msgs_total);
        assert_eq!(lossy.faults, again.faults);
    }

    #[test]
    fn pause_outage_defers_and_still_completes_everything() {
        let plan = FaultPlan::new(3).pause(
            1,
            Time::from_millis(200),
            Time::from_millis(400),
        );
        let cfg = LassConfig::with_loan(4, 8);
        let mut sim = Sim::new(cfg.build_nodes(), fixed(4, 8, 2), 8, SimConfig::quick(29));
        sim.set_fault_plan(plan);
        let res = sim.run();
        // Pause is non-lossy: the liveness check stays armed and passes;
        // the node was frozen for 200 ms of a 1 s window.
        assert!(res.faults.deferred > 0);
        assert!(res.cs_completed > 20);
        assert_eq!(res.faults.dropped_total(), 0);
    }

    #[test]
    fn crash_window_loses_inbound_messages() {
        let plan = FaultPlan::new(3).crash(
            0,
            Time::from_millis(200),
            Time::from_millis(300),
        );
        let cfg = LassConfig::with_loan(4, 8);
        let mut sim = Sim::new(cfg.build_nodes(), fixed(4, 8, 2), 8, SimConfig::quick(31));
        sim.set_fault_plan(plan);
        let res = sim.run();
        assert!(res.faults.dropped_crash > 0);
        assert!(res.cs_completed > 0);
    }

    #[test]
    fn partition_with_heal_degrades_but_does_not_panic() {
        // Nodes {0,1} cut off from {2,3} for half the window; crossing
        // messages are lost, so some requests starve (censored) — but
        // safety holds and the run completes.
        let plan = FaultPlan::new(11).partition(
            vec![0, 1],
            Time::from_millis(300),
            Time::from_millis(800),
        );
        let clean = {
            let cfg = LassConfig::with_loan(4, 8);
            Sim::new(cfg.build_nodes(), fixed(4, 8, 2), 8, SimConfig::quick(37)).run()
        };
        let cfg = LassConfig::with_loan(4, 8);
        let mut sim = Sim::new(cfg.build_nodes(), fixed(4, 8, 2), 8, SimConfig::quick(37));
        sim.set_fault_plan(plan);
        let cut = sim.run();
        assert!(cut.faults.dropped_partition > 0);
        assert!(cut.cs_completed < clean.cs_completed);
    }

    #[test]
    #[should_panic(expected = "before init()")]
    fn fault_plan_rejected_after_init() {
        let cfg = LassConfig::with_loan(2, 4);
        let mut sim = Sim::new(cfg.build_nodes(), fixed(2, 4, 1), 4, SimConfig::quick(1));
        sim.init();
        sim.set_fault_plan(FaultPlan::new(1));
    }

    #[test]
    fn reliability_recovers_heavy_loss_with_liveness_armed() {
        let run = |loss: f64, reliable: bool| {
            let cfg = LassConfig::with_loan(4, 8);
            let mut sim = Sim::new(cfg.build_nodes(), fixed(4, 8, 2), 8, SimConfig::quick(5));
            sim.set_fault_plan(FaultPlan::new(7).drop_rate(loss));
            if reliable {
                // A tight RTO (≈ 3 × the paper's γ RTT) keeps recovery
                // stalls comparable to the CS/think times of the workload.
                sim.set_reliability(Reliability::with_rto(Time::from_millis(2)));
            }
            sim.run()
        };
        let bare = run(0.2, false);
        let recovered = run(0.2, true);
        // 20% sustained loss collapses the bare protocol (every node's
        // request path eventually hits a fatal drop); the session layer
        // recovers every loss and multiplies throughput back.
        assert!(recovered.faults.dropped_link > 0);
        assert!(recovered.reliability.retransmits > 0);
        assert!(
            recovered.cs_completed > 3 * bare.cs_completed.max(1),
            "reliability did not recover throughput: {} vs bare {}",
            recovered.cs_completed,
            bare.cs_completed
        );
        // The liveness check ran armed (the plan is recoverable): reaching
        // here without a panic is the assertion; starved requests would
        // also show up as censored, which retransmission prevents.
        assert_eq!(recovered.censored, 0, "reliable run starved a request");
    }

    #[test]
    fn reliability_on_perfect_links_changes_no_protocol_outcome() {
        let run = |reliable: bool| {
            let cfg = LassConfig::with_loan(4, 8);
            let mut sim = Sim::new(cfg.build_nodes(), fixed(4, 8, 2), 8, SimConfig::quick(17));
            if reliable {
                sim.set_reliability(Reliability::default());
            }
            sim.run()
        };
        let off = run(false);
        let on = run(true);
        // Same protocol outcomes: no frame is ever lost, so no
        // retransmission and no reordering — the sessions are pure
        // bookkeeping plus ack traffic.
        assert_eq!(off.cs_completed, on.cs_completed);
        assert_eq!(off.msgs_total, on.msgs_total);
        assert_eq!(on.reliability.retransmits, 0);
        assert_eq!(on.reliability.gap_dropped, 0);
        assert_eq!(on.reliability.data_sent, on.msgs_total);
        assert!(on.reliability.acks_sent + on.reliability.acks_piggybacked > 0);
        assert_eq!(off.reliability, ReliabilityStats::default());
    }

    #[test]
    fn reliable_lossy_runs_are_deterministic() {
        let run = || {
            let cfg = LassConfig::with_loan(4, 8);
            let mut sim = Sim::new(cfg.build_nodes(), fixed(4, 8, 2), 8, SimConfig::quick(23));
            sim.set_fault_plan(FaultPlan::new(9).drop_rate(0.15).dup_rate(0.1));
            sim.set_reliability(Reliability::default());
            sim.run()
        };
        let a = run();
        let b = run();
        assert_eq!(a.cs_completed, b.cs_completed);
        assert_eq!(a.msgs_total, b.msgs_total);
        assert_eq!(a.faults, b.faults);
        assert_eq!(a.reliability, b.reliability);
        assert!(a.reliability.dup_dropped > 0, "dups were delivered and absorbed");
    }

    #[test]
    fn rto_env_knob_shapes_recovery() {
        // A shorter RTO recovers lost frames sooner: strictly more (or
        // equal) critical sections inside the same window.
        let run = |rto_ms: u64| {
            let cfg = LassConfig::with_loan(4, 8);
            let mut sim = Sim::new(cfg.build_nodes(), fixed(4, 8, 2), 8, SimConfig::quick(5));
            sim.set_fault_plan(FaultPlan::new(7).drop_rate(0.2));
            sim.set_reliability(Reliability::with_rto(Time::from_millis(rto_ms)));
            sim.run()
        };
        let fast = run(2);
        let slow = run(80);
        assert!(
            fast.cs_completed >= slow.cs_completed,
            "2 ms RTO ({}) should beat 80 ms ({})",
            fast.cs_completed,
            slow.cs_completed
        );
        assert!(fast.reliability.retransmits > 0);
    }

    #[test]
    #[should_panic(expected = "before init()")]
    fn reliability_rejected_after_init() {
        let cfg = LassConfig::with_loan(2, 4);
        let mut sim = Sim::new(cfg.build_nodes(), fixed(2, 4, 1), 4, SimConfig::quick(1));
        sim.init();
        sim.set_reliability(Reliability::default());
    }

    #[test]
    fn use_rate_scales_with_load() {
        // Longer think time ⇒ lower use rate.
        let busy = |think_ms: u64| {
            let cfg = LassConfig::with_loan(3, 6);
            let wl: Vec<FixedWorkload> = (0..3)
                .map(|_| FixedWorkload {
                    think: Time::from_millis(think_ms),
                    cs: Time::from_millis(5),
                    m: 6,
                    size: 2,
                })
                .collect();
            Sim::new(cfg.build_nodes(), wl, 6, SimConfig::quick(11)).run().use_rate()
        };
        assert!(busy(1) > busy(50));
    }

    // ---- sharded engine ----------------------------------------------

    /// Everything in a [`RunResult`] that must be identical across shard
    /// counts (all of it except the layout report itself).
    fn fingerprint(r: &RunResult) -> impl PartialEq + std::fmt::Debug {
        (
            (
                r.algo.clone(),
                r.n,
                r.m,
                r.window,
                r.cs_completed,
                r.censored,
                r.events_processed,
            ),
            (r.msgs_total, r.msg_weight, r.msg_by_kind.clone()),
            r.busy.clone(),
            r.records
                .iter()
                .map(|rec| (rec.node, rec.size, rec.issued, rec.granted, rec.released))
                .collect::<Vec<_>>(),
            (r.faults, r.reliability),
        )
    }

    fn run_sharded(shards: usize, faulty: bool, reliable: bool) -> RunResult {
        let cfg = LassConfig::with_loan(6, 12);
        let mut sim_cfg = SimConfig::quick(61);
        sim_cfg.shards = shards;
        let mut sim = Sim::new(cfg.build_nodes(), fixed(6, 12, 3), 12, sim_cfg);
        if faulty {
            sim.set_fault_plan(
                FaultPlan::new(13)
                    .drop_rate(0.1)
                    .dup_rate(0.05)
                    .pause(2, Time::from_millis(200), Time::from_millis(350)),
            );
        }
        if reliable {
            sim.set_reliability(Reliability::with_rto(Time::from_millis(2)));
        }
        sim.run()
    }

    #[test]
    fn sharded_run_is_bit_identical_to_sequential() {
        let seq = run_sharded(1, false, false);
        for k in [2, 3, 6] {
            let par = run_sharded(k, false, false);
            assert_eq!(par.shards, k);
            assert_eq!(par.shard_events.len(), k);
            assert_eq!(par.shard_events.iter().sum::<u64>(), par.events_processed);
            assert_eq!(fingerprint(&seq), fingerprint(&par), "k = {k}");
        }
    }

    #[test]
    fn sharded_run_is_bit_identical_under_faults_and_reliability() {
        let seq = run_sharded(1, true, true);
        assert!(seq.faults.dropped_link > 0);
        assert!(seq.reliability.retransmits > 0);
        for k in [2, 4] {
            let par = run_sharded(k, true, true);
            assert_eq!(fingerprint(&seq), fingerprint(&par), "k = {k}");
        }
    }

    #[test]
    fn sharded_run_is_bit_identical_under_jittered_latency() {
        let run = |shards: usize| {
            let cfg = LassConfig::with_loan(5, 10);
            let mut sim_cfg = SimConfig::quick(71);
            sim_cfg.shards = shards;
            sim_cfg.latency = LatencyModel::Uniform {
                lo: Time::from_micros(200),
                hi: Time::from_millis(2),
            };
            Sim::new(cfg.build_nodes(), fixed(5, 10, 2), 10, sim_cfg).run()
        };
        let seq = run(1);
        let par = run(4);
        assert_eq!(fingerprint(&seq), fingerprint(&par));
    }

    #[test]
    fn shard_count_clamps_to_nodes_and_lookahead() {
        // More shards than nodes: clamped to n.
        let cfg = LassConfig::with_loan(3, 6);
        let mut sc = SimConfig::quick(5);
        sc.shards = 64;
        let sim = Sim::new(cfg.build_nodes(), fixed(3, 6, 2), 6, sc);
        assert_eq!(sim.shards(), 3);
        // Zero-lookahead latency: forced sequential.
        let mut sc = SimConfig::quick(5);
        sc.shards = 4;
        sc.latency = LatencyModel::Zero;
        let cfg = LassConfig::with_loan(4, 6);
        let sim = Sim::new(cfg.build_nodes(), fixed(4, 6, 2), 6, sc);
        assert_eq!(sim.shards(), 1);
        let res = sim.run();
        assert_eq!(res.shards, 1);
        assert!(res.cs_completed > 0);
    }

    #[test]
    fn cooperative_windows_match_threaded_run() {
        let seq = run_sharded(1, false, false);
        let cfg = LassConfig::with_loan(6, 12);
        let mut sim_cfg = SimConfig::quick(61);
        sim_cfg.shards = 3;
        let mut sim = Sim::new(cfg.build_nodes(), fixed(6, 12, 3), 12, sim_cfg);
        sim.init();
        let mut windows = 0u64;
        while sim.step_window() {
            windows += 1;
        }
        assert!(windows > 10, "expected many conservative windows");
        let res = sim.run();
        assert_eq!(res.wall_ns, 0, "partially stepped runs report no throughput");
        assert_eq!(fingerprint(&seq), fingerprint(&res));
    }

    #[test]
    #[should_panic(expected = "requires a single shard")]
    fn step_rejected_on_sharded_sim() {
        let cfg = LassConfig::with_loan(4, 6);
        let mut sc = SimConfig::quick(5);
        sc.shards = 2;
        let mut sim = Sim::new(cfg.build_nodes(), fixed(4, 6, 2), 6, sc);
        sim.init();
        sim.step();
    }

    #[test]
    #[should_panic(expected = "requires shards > 1")]
    fn step_window_rejected_on_sequential_sim() {
        let cfg = LassConfig::with_loan(4, 6);
        let mut sim = Sim::new(cfg.build_nodes(), fixed(4, 6, 2), 6, SimConfig::quick(5));
        sim.init();
        sim.step_window();
    }

    #[test]
    fn env_shards_defaults_to_one() {
        // The variable is not set in the test environment.
        assert_eq!(SimConfig::env_shards(), 1);
    }
}
