//! The discrete-event simulation engine.
//!
//! A [`Sim`] owns one [`Allocator`] instance and one workload per node, a
//! virtual clock, and a single event queue.  Two event types exist:
//! message deliveries (after a sampled link latency, FIFO per directed
//! link) and node timers (think-time expiry → issue a request; CS expiry →
//! release).  Everything is deterministic given the seed: the heap breaks
//! ties by schedule order.
//!
//! Safety is *monitored*, not assumed: every grant is checked against the
//! holders of every resource (a violation panics), so each simulated
//! experiment doubles as a large randomized protocol test.

use crate::driver::{Driver, DriverState, Workload};
use crate::latency::LatencyModel;
use crate::metrics::{Collector, RunResult};
use mra_protocol::faults::{Admit, FaultPlan, FaultState, FaultStats};
use mra_protocol::reliable::{Reliability, ReliabilityStats, ReliableState, RtoVerdict};
use mra_protocol::testkit::SafetyMonitor;
use mra_protocol::{Allocator, Ctx, WireMsg};
use mra_types::{NodeId, Time};
use rand::rngs::StdRng;
use rand::SeedableRng;
use std::time::Instant;

/// Simulation parameters.
#[derive(Clone, Debug)]
pub struct SimConfig {
    /// Link latency model (the paper's γ).
    pub latency: LatencyModel,
    /// Master seed; all per-node and network randomness derives from it.
    pub seed: u64,
    /// Warmup prefix excluded from the measurement window.
    pub warmup: Time,
    /// Length of the measurement window.
    pub measure: Time,
    /// Extra time after the window for in-flight requests to finish
    /// (issuing stops at the window end).
    pub drain: Time,
    /// Only nodes `0..active` issue requests (`None` = all).  Used by the
    /// coordinator-based central scheduler.
    pub active_nodes: Option<usize>,
    /// Hard cap on processed events (runaway guard).
    pub max_events: u64,
}

impl SimConfig {
    /// Reasonable defaults for tests: paper LAN latency, 100 ms warmup,
    /// 1 s window, 1 s drain.
    pub fn quick(seed: u64) -> Self {
        SimConfig {
            latency: LatencyModel::paper_lan(),
            seed,
            warmup: Time::from_millis(100),
            measure: Time::from_secs(1),
            drain: Time::from_secs(1),
            active_nodes: None,
            max_events: 200_000_000,
        }
    }
}

enum Ev<M> {
    /// Perfect-link delivery (reliability off).
    Deliver { from: NodeId, to: NodeId, msg: M },
    /// Session-layer data frame (reliability on): sequenced, carries a
    /// piggybacked cumulative ack for the reverse direction.
    DeliverData {
        from: NodeId,
        to: NodeId,
        seq: u64,
        ack: u64,
        msg: M,
    },
    /// Session-layer standalone cumulative ack.
    DeliverAck { from: NodeId, to: NodeId, ack: u64 },
    /// Retransmit timer of the directed link `from → to`.
    Rto { from: NodeId, to: NodeId },
    Think { node: NodeId },
    CsEnd { node: NodeId },
}

/// Compact heap entry: the `(at, seq)` ordering key plus the slab slot
/// holding the event payload, packed into 16 bytes.  The heap sifts these
/// small `Copy` keys on every push/pop while the (potentially large)
/// `Ev<M>` payloads stay put in the slab — `Scheduled<M>` used to drag
/// whole protocol messages through every sift.
///
/// `ord = seq << SLOT_BITS | slot`: `seq` is unique per push, so the
/// derived lexicographic `(at, ord)` order equals the engine's `(at, seq)`
/// tie-breaking order and the slot bits never influence a comparison.
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord)]
struct EvKey {
    at: Time,
    ord: u64,
}

/// Slot index width inside [`EvKey::ord`]: up to 16 M in-flight events
/// (a 32×80 paper run peaks at a few thousand) and 2^40 total pushes
/// (`max_events` caps runs far below that).
const SLOT_BITS: u32 = 24;

impl EvKey {
    #[inline]
    fn new(at: Time, seq: u64, slot: u32) -> Self {
        // Hard assert: `max_events` is a user-settable config field, and a
        // silent wrap into the slot bits would corrupt the event order.
        assert!(seq < 1 << (64 - SLOT_BITS), "event seq overflow");
        EvKey {
            at,
            ord: (seq << SLOT_BITS) | u64::from(slot),
        }
    }

    #[inline]
    fn slot(self) -> u32 {
        (self.ord & ((1 << SLOT_BITS) - 1)) as u32
    }
}

/// The simulator's event queue: a 4-ary min-heap of packed [`EvKey`]s over
/// a free-list slab of event payloads.
///
/// 4-ary because sift-down dominates a discrete-event workload (every pop
/// sifts, pushes often stop early): halving the tree depth trades two
/// extra (adjacent, same-cache-line) comparisons per level for half the
/// memory moves, and the hole-based sift moves each 16-byte key once
/// instead of swapping.  In steady state (constant event population) every
/// push reuses a freed slot, so the queue performs no heap allocation
/// after warmup.
struct EventQueue<M> {
    heap: Vec<EvKey>,
    slab: Vec<Option<Ev<M>>>,
    free: Vec<u32>,
    /// Push counter; breaks `at` ties in schedule order (determinism).
    seq: u64,
}

impl<M> EventQueue<M> {
    fn new() -> Self {
        EventQueue {
            heap: Vec::new(),
            slab: Vec::new(),
            free: Vec::new(),
            seq: 0,
        }
    }

    fn push(&mut self, at: Time, ev: Ev<M>) {
        let seq = self.seq;
        self.seq += 1;
        let slot = match self.free.pop() {
            Some(s) => {
                debug_assert!(self.slab[s as usize].is_none());
                self.slab[s as usize] = Some(ev);
                s
            }
            None => {
                assert!(self.slab.len() < 1 << SLOT_BITS, "event slab overflow");
                self.slab.push(Some(ev));
                // The free list holds at most one entry per slab slot; keep
                // its capacity at that bound so popping without a matching
                // push (a fault-dropped event) never reallocates mid-run.
                let need = self.slab.len();
                if self.free.capacity() < need {
                    self.free.reserve_exact(need - self.free.len());
                }
                (self.slab.len() - 1) as u32
            }
        };
        let key = EvKey::new(at, seq, slot);
        // Sift up with a hole: parents shift down until `key` fits.
        let heap = &mut self.heap;
        heap.push(key);
        let mut i = heap.len() - 1;
        while i > 0 {
            let parent = (i - 1) >> 2;
            if heap[parent] <= key {
                break;
            }
            heap[i] = heap[parent];
            i = parent;
        }
        heap[i] = key;
    }

    fn pop(&mut self) -> Option<(Time, Ev<M>)> {
        let heap = &mut self.heap;
        let top = *heap.first()?;
        let tail = heap.pop().expect("heap is non-empty");
        let n = heap.len();
        if n > 0 {
            // Sift the former tail down from the root with a hole: the
            // smallest child moves up until `tail` fits.  Keys are copied
            // into locals so the child scan reads each slot once.
            let mut i = 0;
            loop {
                let first_child = (i << 2) + 1;
                if first_child >= n {
                    break;
                }
                let last_child = (first_child + 4).min(n);
                let mut min = first_child;
                let mut min_key = heap[first_child];
                for (off, &k) in heap[first_child + 1..last_child].iter().enumerate() {
                    if k < min_key {
                        min = first_child + 1 + off;
                        min_key = k;
                    }
                }
                if tail <= min_key {
                    break;
                }
                heap[i] = min_key;
                i = min;
            }
            heap[i] = tail;
        }
        let slot = top.slot();
        let ev = self.slab[slot as usize].take().expect("slab slot vacant");
        self.free.push(slot);
        Some((top.at, ev))
    }

    fn is_empty(&self) -> bool {
        self.heap.is_empty()
    }

    /// Pre-reserve heap, slab and free-list capacity for `extra` more
    /// in-flight events, so a later population peak does not reallocate
    /// (the zero-alloc guard pre-sizes for retransmission bursts).
    fn reserve(&mut self, extra: usize) {
        self.heap.reserve(extra);
        self.slab.reserve(extra);
        self.free.reserve(self.slab.capacity().saturating_sub(self.free.len()));
    }
}

struct SimNode<A: Allocator, W> {
    proto: A,
    ctx: Ctx<A::Msg>,
    driver: Driver,
    workload: W,
    rng: StdRng,
}

/// The simulator.
pub struct Sim<A: Allocator, W: Workload> {
    nodes: Vec<SimNode<A, W>>,
    queue: EventQueue<A::Msg>,
    now: Time,
    net_rng: StdRng,
    fifo_last: Vec<Time>,
    monitor: SafetyMonitor,
    collector: Collector,
    cfg: SimConfig,
    stop_issuing: Time,
    end_at: Time,
    n: usize,
    /// Events processed so far (exposed as `RunResult::events_processed`).
    events: u64,
    /// True once an event past `end_at` was popped (and dropped).
    horizon_cut: bool,
    /// Installed fault layer, if any (event-pop injection).
    faults: Option<FaultState>,
    /// Installed reliable-delivery session layer, if any.
    reliable: Option<ReliableState<A::Msg>>,
    /// Set by [`Sim::init`]; guards against double initialization.
    initialized: bool,
}

impl<A: Allocator, W: Workload> Sim<A, W> {
    /// Build a simulation over one protocol instance and one workload per
    /// node.
    pub fn new(protos: Vec<A>, workloads: Vec<W>, m: usize, cfg: SimConfig) -> Self {
        let n = protos.len();
        assert_eq!(n, workloads.len());
        let window = (cfg.warmup, cfg.warmup + cfg.measure);
        let stop_issuing = window.1;
        let end_at = window.1 + cfg.drain;
        let nodes: Vec<SimNode<A, W>> = protos
            .into_iter()
            .zip(workloads)
            .enumerate()
            .map(|(i, (proto, workload))| SimNode {
                proto,
                ctx: Ctx::new(i, n),
                driver: Driver::new(),
                workload,
                rng: StdRng::seed_from_u64(
                    cfg.seed ^ (i as u64).wrapping_mul(0x9E37_79B9_7F4A_7C15),
                ),
            })
            .collect();
        Sim {
            queue: EventQueue::new(),
            now: Time::ZERO,
            net_rng: StdRng::seed_from_u64(cfg.seed ^ 0xDEAD_BEEF_CAFE_F00D),
            fifo_last: vec![Time::ZERO; n * n],
            monitor: SafetyMonitor::new(n, m),
            collector: Collector::new(n, m, window),
            stop_issuing,
            end_at,
            n,
            nodes,
            cfg,
            events: 0,
            horizon_cut: false,
            faults: None,
            reliable: None,
            initialized: false,
        }
    }

    /// Install a [`FaultPlan`]: every subsequent event pop runs through its
    /// admission filter (drops, duplicate absorption, partitions, node
    /// outages — see [`mra_protocol::faults`]).  Fault decisions are
    /// counter-hashed from the plan's own seed, so installing a plan never
    /// perturbs the workload or latency RNG streams: a zero-rate plan is
    /// observationally identical to no plan.
    ///
    /// # Panics
    /// If called after [`Sim::init`].
    pub fn set_fault_plan(&mut self, plan: FaultPlan) {
        assert!(!self.initialized, "install the fault plan before init()");
        self.faults = Some(FaultState::new(plan, self.n));
    }

    /// Fault counters accumulated so far (zero when no plan is installed).
    pub fn fault_stats(&self) -> FaultStats {
        self.faults.as_ref().map(|f| f.stats).unwrap_or_default()
    }

    /// Enable the reliable-delivery session layer
    /// ([`mra_protocol::reliable`]): every protocol message is sequenced
    /// into a per-link session, receivers dedup and ack (piggybacked on
    /// reverse traffic, standalone otherwise), and retransmit timers —
    /// scheduled through the ordinary event heap — re-send unacked frames
    /// with capped exponential backoff.  Combined with a
    /// [recoverable](FaultPlan::is_recoverable) fault plan this restores
    /// the paper's exactly-once FIFO channel model, and the end-of-run
    /// deadlock check stays **armed** even though the plan is lossy.
    ///
    /// Off (the default) is the paper-faithful perfect-link mode: nothing
    /// about the simulation changes.
    ///
    /// # Panics
    /// If called after [`Sim::init`].
    pub fn set_reliability(&mut self, cfg: Reliability) {
        assert!(!self.initialized, "enable reliability before init()");
        self.reliable = Some(ReliableState::new(cfg, self.n));
    }

    /// Session-layer counters accumulated so far (zero when disabled).
    pub fn reliability_stats(&self) -> ReliabilityStats {
        self.reliable.as_ref().map(|r| r.stats).unwrap_or_default()
    }

    /// Pre-reserve event-queue capacity for `slots` more in-flight events.
    /// Steady-state dispatch never allocates once the queue has grown to
    /// its peak population; this lets allocation-sensitive probes (the
    /// zero-alloc guard) put the peak — retransmission bursts included —
    /// inside pre-sized buffers up front.
    pub fn reserve_events(&mut self, slots: usize) {
        self.queue.reserve(slots);
    }

    fn push(&mut self, at: Time, ev: Ev<A::Msg>) {
        self.queue.push(at, ev);
    }

    fn schedule_outbox(&mut self, from: NodeId) {
        // Disjoint field borrows: the outbox drains in place (its capacity
        // is the reused buffer) while the queue and FIFO table are updated
        // — no per-dispatch side buffer, no allocation, no copies.
        let node = &mut self.nodes[from];
        if !node.ctx.has_output() {
            // Common case: the handler replied with nothing (counter
            // updates, absorbed tokens).
            return;
        }
        let queue = &mut self.queue;
        let fifo_last = &mut self.fifo_last;
        let latency = &self.cfg.latency;
        let net_rng = &mut self.net_rng;
        let now = self.now;
        let n = self.n;
        match self.reliable.as_mut() {
            None => {
                for (to, msg) in node.ctx.drain_outbox() {
                    // `sample` fast-paths deterministic models (the paper's
                    // γ = const) without touching the RNG.
                    let lat = latency.sample(from, to, net_rng);
                    let link = from * n + to;
                    // Reliable FIFO links: never deliver before an earlier
                    // message on the same link (1 ns separation keeps
                    // strict order even under jittered latency).
                    let at = (now + lat).max(fifo_last[link] + Time::from_nanos(1));
                    fifo_last[link] = at;
                    queue.push(at, Ev::Deliver { from, to, msg });
                }
            }
            Some(st) => {
                for (to, msg) in node.ctx.drain_outbox() {
                    // Session mode: stamp the frame, retain the retransmit
                    // copy, piggyback the cumulative ack, and make sure a
                    // retransmit timer is ticking for this link.
                    let (seq, ack) = st.on_send(from, to, &msg, now);
                    let lat = latency.sample(from, to, net_rng);
                    let link = from * n + to;
                    let at = (now + lat).max(fifo_last[link] + Time::from_nanos(1));
                    fifo_last[link] = at;
                    queue.push(at, Ev::DeliverData { from, to, seq, ack, msg });
                    if st.needs_arm(from, to) {
                        queue.push(now + st.rto_delay(from, to), Ev::Rto { from, to });
                    }
                }
            }
        }
    }

    /// If `to` still owes `from` an ack for the data link `from → to`
    /// (no reply piggybacked it), put the standalone ack frame on the
    /// reverse wire.  No-op with reliability off.
    fn flush_pending_ack(&mut self, from: NodeId, to: NodeId) {
        let Some(st) = self.reliable.as_mut() else {
            return;
        };
        let Some(ack) = st.pending_ack(from, to) else {
            return;
        };
        let lat = self.cfg.latency.sample(to, from, &mut self.net_rng);
        // Acks bypass the FIFO tiebreak on purpose: a cumulative ack is
        // order-insensitive (applying an older value after a newer one is
        // a no-op), and exempting it keeps data-frame timing — and thus
        // every protocol outcome under constant latency — identical to the
        // reliability-off schedule when no frame is ever lost.
        self.queue
            .push(self.now + lat, Ev::DeliverAck { from: to, to: from, ack });
    }

    fn post_dispatch(&mut self, i: NodeId) {
        self.schedule_outbox(i);
        if self.nodes[i].ctx.take_granted() {
            let set = self.nodes[i].driver.current_set();
            self.monitor.enter(i, set);
            self.collector.on_grant(i, self.now);
            let cs = self.nodes[i].driver.granted();
            self.push(self.now + cs, Ev::CsEnd { node: i });
        }
    }

    /// Initialize the protocols and seed the initial think timers.  Part of
    /// the stepping API; [`Sim::run`] calls it automatically when it was
    /// not already called.
    ///
    /// # Panics
    /// On a second call — protocols must not be initialized twice.
    pub fn init(&mut self) {
        assert!(!self.initialized, "Sim::init() called twice");
        self.initialized = true;
        let active = self.cfg.active_nodes.unwrap_or(self.n);
        // Init protocols, then stagger initial think timers.
        for i in 0..self.n {
            let node = &mut self.nodes[i];
            node.ctx.set_now(Time::ZERO);
            node.proto.on_init(&mut node.ctx);
        }
        for i in 0..self.n {
            self.schedule_outbox(i);
        }
        for i in 0..active {
            let node = &mut self.nodes[i];
            let think = {
                let SimNode { workload, rng, .. } = node;
                workload.think_time(rng)
            };
            self.push(think, Ev::Think { node: i });
        }
    }

    /// Process one event.  Returns `false` when the simulation is over:
    /// the queue ran dry, or the next event lies past the drain horizon
    /// (such events — e.g. a CS ending during the cut-off — are
    /// intentionally dropped).  Exposed so probes (tracing, allocation
    /// tests) can observe the loop mid-run; [`Sim::run`] is the normal
    /// entry point.
    pub fn step(&mut self) -> bool {
        let Some((at, ev)) = self.queue.pop() else {
            return false;
        };
        if at > self.end_at {
            self.horizon_cut = true;
            return false;
        }
        self.events += 1;
        assert!(
            self.events <= self.cfg.max_events,
            "simulation exceeded {} events — runaway protocol?",
            self.cfg.max_events
        );
        debug_assert!(at >= self.now, "time went backwards");
        self.now = at;
        match ev {
            Ev::Deliver { from, to, msg } => {
                // Fault admission at event pop: the zero-alloc hot path is
                // preserved — decisions are pure hashes over pre-sized
                // tables, a deferral re-pushes into the free-list slab.
                if let Some(fs) = self.faults.as_mut() {
                    match fs.admit(from, to, at) {
                        Admit::Drop => return true,
                        Admit::Defer(until) => {
                            let when = until.max(at + Time::from_nanos(1));
                            self.queue.push(when, Ev::Deliver { from, to, msg });
                            return true;
                        }
                        // `admit` folds wire duplicates into Deliver; the
                        // variant only flows out of `admit_wire`.
                        Admit::Deliver | Admit::Duplicate => {}
                    }
                }
                self.collector.on_message(msg.kind(), msg.weight());
                let node = &mut self.nodes[to];
                node.ctx.set_now(self.now);
                node.proto.on_message(&mut node.ctx, from, msg);
                self.post_dispatch(to);
            }
            Ev::DeliverData { from, to, seq, ack, msg } => {
                // A wire duplicate is a one-off copy arriving right behind
                // the original; it is absorbed by the receive window
                // inline (it never re-enters the fault filter — a copy of
                // a copy would cascade at high dup rates).
                let mut dup_copy = false;
                if let Some(fs) = self.faults.as_mut() {
                    match fs.admit_wire(from, to, at) {
                        Admit::Drop => return true,
                        Admit::Defer(until) => {
                            let when = until.max(at + Time::from_nanos(1));
                            self.queue
                                .push(when, Ev::DeliverData { from, to, seq, ack, msg });
                            return true;
                        }
                        Admit::Duplicate => dup_copy = true,
                        Admit::Deliver => {}
                    }
                }
                let st = self
                    .reliable
                    .as_mut()
                    .expect("data frame without a session layer");
                let deliver = st.on_data(from, to, seq, ack);
                if dup_copy {
                    // Stale by construction: the original just ran.
                    st.on_data(from, to, seq, ack);
                }
                if deliver {
                    self.collector.on_message(msg.kind(), msg.weight());
                    let node = &mut self.nodes[to];
                    node.ctx.set_now(self.now);
                    node.proto.on_message(&mut node.ctx, from, msg);
                    self.post_dispatch(to);
                }
                // The handler's reply (if any) piggybacked the ack inside
                // `post_dispatch`; otherwise a standalone ack goes out now.
                self.flush_pending_ack(from, to);
            }
            Ev::DeliverAck { from, to, ack } => {
                if let Some(fs) = self.faults.as_mut() {
                    match fs.admit_wire(from, to, at) {
                        Admit::Drop => return true,
                        Admit::Defer(until) => {
                            let when = until.max(at + Time::from_nanos(1));
                            self.queue.push(when, Ev::DeliverAck { from, to, ack });
                            return true;
                        }
                        // A duplicated ack is idempotent: apply once.
                        Admit::Deliver | Admit::Duplicate => {}
                    }
                }
                self.reliable
                    .as_mut()
                    .expect("ack frame without a session layer")
                    .on_ack(from, to, ack);
            }
            Ev::Rto { from, to } => {
                // The sender owns this timer: a frozen/crashed node's
                // timers resume at restart, like its Think/CsEnd timers.
                if let Some(fs) = self.faults.as_mut() {
                    if let Some((_, until)) = fs.outage(from, at) {
                        fs.stats.deferred += 1;
                        let when = until.max(at + Time::from_nanos(1));
                        self.queue.push(when, Ev::Rto { from, to });
                        return true;
                    }
                }
                let st = self
                    .reliable
                    .as_mut()
                    .expect("rto without a session layer");
                match st.on_rto(from, to, at) {
                    // Everything acked in the meantime; the timer dies and
                    // the next send re-arms it.
                    RtoVerdict::Idle => return true,
                    // The oldest unacked frame is younger than the timeout
                    // (the timer was armed for an already-acked frame):
                    // follow it without retransmitting or backing off.
                    RtoVerdict::Rearm(when) => {
                        self.queue.push(when, Ev::Rto { from, to });
                        return true;
                    }
                    RtoVerdict::Retransmit(_) => {}
                }
                let delay = st.rto_delay(from, to);
                // Re-send the whole unacked window (go-back-N) with fresh
                // latency samples, then re-arm with the backed-off delay.
                // Field-disjoint borrows: the session state is read while
                // the queue/FIFO table/RNG are written.
                let st = self.reliable.as_ref().expect("session layer vanished");
                let queue = &mut self.queue;
                let fifo_last = &mut self.fifo_last;
                let latency = &self.cfg.latency;
                let net_rng = &mut self.net_rng;
                let n = self.n;
                let link = from * n + to;
                let ack = st.ack_for(from, to);
                for (seq, msg) in st.unacked(from, to) {
                    let lat = latency.sample(from, to, net_rng);
                    let when = (at + lat).max(fifo_last[link] + Time::from_nanos(1));
                    fifo_last[link] = when;
                    queue.push(when, Ev::DeliverData { from, to, seq, ack, msg: msg.clone() });
                }
                queue.push(at + delay, Ev::Rto { from, to });
            }
            Ev::Think { node: i } => {
                // A down node (paused or crashed) does not run its
                // application lifecycle; the timer resumes at restart.
                if let Some(fs) = self.faults.as_mut() {
                    if let Some((_, until)) = fs.outage(i, at) {
                        fs.stats.deferred += 1;
                        let when = until.max(at + Time::from_nanos(1));
                        self.queue.push(when, Ev::Think { node: i });
                        return true;
                    }
                }
                if self.now >= self.stop_issuing {
                    self.nodes[i].driver.park();
                    return true;
                }
                let set = {
                    let SimNode {
                        driver,
                        workload,
                        rng,
                        ..
                    } = &mut self.nodes[i];
                    driver.issue(workload, rng)
                };
                self.collector.on_issue(i, set, self.now);
                let node = &mut self.nodes[i];
                node.ctx.set_now(self.now);
                node.proto.request(&mut node.ctx, set);
                self.post_dispatch(i);
            }
            Ev::CsEnd { node: i } => {
                if let Some(fs) = self.faults.as_mut() {
                    if let Some((_, until)) = fs.outage(i, at) {
                        // The frozen node holds its resources through the
                        // outage; it releases at restart.
                        fs.stats.deferred += 1;
                        let when = until.max(at + Time::from_nanos(1));
                        self.queue.push(when, Ev::CsEnd { node: i });
                        return true;
                    }
                }
                self.collector.on_release(i, self.now);
                self.monitor.exit(i);
                let node = &mut self.nodes[i];
                node.driver.released();
                node.ctx.set_now(self.now);
                node.proto.release(&mut node.ctx);
                self.post_dispatch(i);
                let think = {
                    let SimNode { workload, rng, .. } = &mut self.nodes[i];
                    workload.think_time(rng)
                };
                self.push(self.now + think, Ev::Think { node: i });
            }
        }
        true
    }

    /// Run to completion and return the measured result.  Composes with
    /// the stepping API: a partially stepped simulation resumes instead of
    /// re-initializing.
    ///
    /// Throughput accounting: `wall_ns` (and thus
    /// [`RunResult::events_per_sec`]) is only reported when `run` executed
    /// the *whole* simulation.  A resumed run cannot know how long the
    /// caller's stepping took, so pairing its partial wall time with the
    /// lifetime event count would inflate the rate — it reports 0
    /// ("not measured") instead.
    pub fn run(mut self) -> RunResult {
        let started = Instant::now();
        let whole_run = self.events == 0;
        if !self.initialized {
            self.init();
        }
        while self.step() {}
        let wall_ns = if whole_run {
            started.elapsed().as_nanos() as u64
        } else {
            0
        };

        let algo = self.nodes[0].proto.name().to_string();
        let active = self.cfg.active_nodes.unwrap_or(self.n);
        // Sanity: a *naturally* exhausted event queue (no horizon cut) with
        // a node still waiting is a genuine deadlock — nothing can ever
        // unblock it.  A horizon cut is not: the unblocking event may have
        // been dropped.  Neither is a lossy fault plan *without* the
        // session layer: a dropped token legitimately starves its waiters
        // (the starvation shows up as `censored` requests instead).  With
        // reliability enabled the check is re-armed for every recoverable
        // plan (drop rates < 1.0): retransmission owes liveness again.
        let recovered = self.reliable.is_some()
            && self
                .faults
                .as_ref()
                .map_or(true, |f| f.plan().is_recoverable());
        let lossy =
            self.faults.as_ref().is_some_and(|f| f.plan().is_lossy()) && !recovered;
        if !self.horizon_cut && self.queue.is_empty() && !lossy {
            for i in 0..active {
                if self.nodes[i].driver.state() == DriverState::Waiting {
                    panic!(
                        "liveness failure: node {i} still waiting at {} with no \
                         events left (algo {algo})",
                        self.now
                    );
                }
            }
        }

        let fault_stats = self.fault_stats();
        let rel_stats = self.reliability_stats();
        let mut res = self.collector.finish(&algo, self.n, self.now.min(self.end_at));
        res.events_processed = self.events;
        res.wall_ns = wall_ns;
        res.faults = fault_stats;
        res.reliability = rel_stats;
        res
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::driver::FixedWorkload;
    use mra_baselines::{Central, GrantPolicy, Incremental};
    use mra_core::LassConfig;

    fn fixed(n: usize, m: usize, size: usize) -> Vec<FixedWorkload> {
        (0..n)
            .map(|_| FixedWorkload {
                think: Time::from_millis(5),
                cs: Time::from_millis(3),
                m,
                size,
            })
            .collect()
    }

    #[test]
    fn lass_simulation_completes_and_measures() {
        let cfg = LassConfig::with_loan(4, 8);
        let sim = Sim::new(cfg.build_nodes(), fixed(4, 8, 2), 8, SimConfig::quick(1));
        let res = sim.run();
        assert!(res.cs_completed > 20, "got {}", res.cs_completed);
        assert!(res.use_rate() > 0.0 && res.use_rate() <= 1.0);
        assert!(res.wait_stats().count > 0);
        assert_eq!(res.censored, 0);
    }

    #[test]
    fn incremental_simulation_completes() {
        let sim = Sim::new(
            Incremental::build_nodes(4, 8),
            fixed(4, 8, 2),
            8,
            SimConfig::quick(2),
        );
        let res = sim.run();
        assert!(res.cs_completed > 20);
        assert_eq!(res.algo, "incremental");
    }

    #[test]
    fn central_with_passive_coordinator() {
        let mut cfg = SimConfig::quick(3);
        cfg.latency = LatencyModel::Zero;
        cfg.active_nodes = Some(4);
        let sim = Sim::new(
            Central::build_nodes(4, GrantPolicy::Conservative),
            fixed(5, 8, 2),
            8,
            cfg,
        );
        let res = sim.run();
        assert!(res.cs_completed > 50, "zero latency is fast: {}", res.cs_completed);
    }

    #[test]
    fn deterministic_given_seed() {
        let run = |seed| {
            let cfg = LassConfig::with_loan(4, 6);
            let sim = Sim::new(cfg.build_nodes(), fixed(4, 6, 2), 6, SimConfig::quick(seed));
            let r = sim.run();
            (r.cs_completed, r.msgs_total, r.wait_stats().mean_ms)
        };
        assert_eq!(run(42), run(42));
        assert_ne!(run(42), run(43), "different seeds should differ");
    }

    #[test]
    fn messages_are_fifo_per_link() {
        // Statistical check via jittered latency: the engine must still
        // deliver FIFO (enforced by fifo_last); the protocols would panic /
        // deadlock otherwise.  Run with heavy jitter and verify completion.
        let mut cfg = SimConfig::quick(7);
        cfg.latency = LatencyModel::Uniform {
            lo: Time::from_micros(10),
            hi: Time::from_millis(5),
        };
        let lass = LassConfig::with_loan(4, 6);
        let res = Sim::new(lass.build_nodes(), fixed(4, 6, 2), 6, cfg).run();
        assert!(res.cs_completed > 10);
    }

    #[test]
    fn run_reports_event_throughput() {
        let cfg = LassConfig::with_loan(4, 8);
        let sim = Sim::new(cfg.build_nodes(), fixed(4, 8, 2), 8, SimConfig::quick(1));
        let res = sim.run();
        assert!(res.events_processed > 0);
        assert!(res.wall_ns > 0);
        assert!(res.events_per_sec() > 0.0);
        // Every delivered message is one event, so the count dominates.
        assert!(res.events_processed >= res.msgs_total);
    }

    #[test]
    fn stepping_api_matches_run() {
        let build = || {
            let cfg = LassConfig::with_loan(4, 6);
            Sim::new(cfg.build_nodes(), fixed(4, 6, 2), 6, SimConfig::quick(9))
        };
        let whole = build().run();
        let mut stepped = build();
        stepped.init();
        let mut steps = 0u64;
        while stepped.step() {
            steps += 1;
        }
        assert_eq!(steps, whole.events_processed);
    }

    #[test]
    fn run_resumes_a_stepped_simulation_without_reinit() {
        let build = || {
            let cfg = LassConfig::with_loan(4, 6);
            Sim::new(cfg.build_nodes(), fixed(4, 6, 2), 6, SimConfig::quick(13))
        };
        let whole = build().run();
        let mut hybrid = build();
        hybrid.init();
        for _ in 0..500 {
            assert!(hybrid.step());
        }
        let resumed = hybrid.run();
        assert_eq!(resumed.cs_completed, whole.cs_completed);
        assert_eq!(resumed.msgs_total, whole.msgs_total);
        assert_eq!(resumed.events_processed, whole.events_processed);
        // A resumed run must not report a throughput: its wall clock
        // covers only part of the event stream.
        assert_eq!(resumed.wall_ns, 0);
        assert_eq!(resumed.events_per_sec(), 0.0);
        assert!(whole.wall_ns > 0);
    }

    #[test]
    #[should_panic(expected = "init() called twice")]
    fn double_init_is_rejected() {
        let cfg = LassConfig::with_loan(2, 4);
        let mut sim = Sim::new(cfg.build_nodes(), fixed(2, 4, 1), 4, SimConfig::quick(1));
        sim.init();
        sim.init();
    }

    #[test]
    fn clean_and_dup_only_fault_plans_change_nothing_observable() {
        let run = |plan: Option<FaultPlan>| {
            let cfg = LassConfig::with_loan(4, 8);
            let mut sim = Sim::new(cfg.build_nodes(), fixed(4, 8, 2), 8, SimConfig::quick(17));
            if let Some(p) = plan {
                sim.set_fault_plan(p);
            }
            sim.run()
        };
        let bare = run(None);
        let clean = run(Some(FaultPlan::new(99)));
        let dup = run(Some(FaultPlan::new(99).dup_rate(0.5)));
        for other in [&clean, &dup] {
            assert_eq!(bare.cs_completed, other.cs_completed);
            assert_eq!(bare.msgs_total, other.msgs_total);
            assert_eq!(
                bare.wait_stats().mean_ms,
                other.wait_stats().mean_ms,
                "fault bookkeeping leaked into protocol timing"
            );
        }
        assert_eq!(clean.faults, FaultStats::default());
        assert!(dup.faults.duplicated > 0);
        assert_eq!(dup.faults.duplicated, dup.faults.deduped);
        assert_eq!(dup.faults.dropped_total(), 0);
    }

    #[test]
    fn lossy_plan_degrades_throughput_deterministically_and_safely() {
        let run = |loss: f64| {
            let cfg = LassConfig::with_loan(4, 8);
            let mut sim = Sim::new(cfg.build_nodes(), fixed(4, 8, 2), 8, SimConfig::quick(5));
            sim.set_fault_plan(FaultPlan::new(7).drop_rate(loss));
            sim.run()
        };
        let clean = run(0.0);
        let lossy = run(0.15);
        assert!(lossy.faults.dropped_link > 0);
        assert!(
            lossy.cs_completed < clean.cs_completed,
            "15% loss should cost critical sections: {} vs {}",
            lossy.cs_completed,
            clean.cs_completed
        );
        // Deterministic: the identical faulty run reproduces exactly.
        let again = run(0.15);
        assert_eq!(lossy.cs_completed, again.cs_completed);
        assert_eq!(lossy.msgs_total, again.msgs_total);
        assert_eq!(lossy.faults, again.faults);
    }

    #[test]
    fn pause_outage_defers_and_still_completes_everything() {
        let plan = FaultPlan::new(3).pause(
            1,
            Time::from_millis(200),
            Time::from_millis(400),
        );
        let cfg = LassConfig::with_loan(4, 8);
        let mut sim = Sim::new(cfg.build_nodes(), fixed(4, 8, 2), 8, SimConfig::quick(29));
        sim.set_fault_plan(plan);
        let res = sim.run();
        // Pause is non-lossy: the liveness check stays armed and passes;
        // the node was frozen for 200 ms of a 1 s window.
        assert!(res.faults.deferred > 0);
        assert!(res.cs_completed > 20);
        assert_eq!(res.faults.dropped_total(), 0);
    }

    #[test]
    fn crash_window_loses_inbound_messages() {
        let plan = FaultPlan::new(3).crash(
            0,
            Time::from_millis(200),
            Time::from_millis(300),
        );
        let cfg = LassConfig::with_loan(4, 8);
        let mut sim = Sim::new(cfg.build_nodes(), fixed(4, 8, 2), 8, SimConfig::quick(31));
        sim.set_fault_plan(plan);
        let res = sim.run();
        assert!(res.faults.dropped_crash > 0);
        assert!(res.cs_completed > 0);
    }

    #[test]
    fn partition_with_heal_degrades_but_does_not_panic() {
        // Nodes {0,1} cut off from {2,3} for half the window; crossing
        // messages are lost, so some requests starve (censored) — but
        // safety holds and the run completes.
        let plan = FaultPlan::new(11).partition(
            vec![0, 1],
            Time::from_millis(300),
            Time::from_millis(800),
        );
        let clean = {
            let cfg = LassConfig::with_loan(4, 8);
            Sim::new(cfg.build_nodes(), fixed(4, 8, 2), 8, SimConfig::quick(37)).run()
        };
        let cfg = LassConfig::with_loan(4, 8);
        let mut sim = Sim::new(cfg.build_nodes(), fixed(4, 8, 2), 8, SimConfig::quick(37));
        sim.set_fault_plan(plan);
        let cut = sim.run();
        assert!(cut.faults.dropped_partition > 0);
        assert!(cut.cs_completed < clean.cs_completed);
    }

    #[test]
    #[should_panic(expected = "before init()")]
    fn fault_plan_rejected_after_init() {
        let cfg = LassConfig::with_loan(2, 4);
        let mut sim = Sim::new(cfg.build_nodes(), fixed(2, 4, 1), 4, SimConfig::quick(1));
        sim.init();
        sim.set_fault_plan(FaultPlan::new(1));
    }

    #[test]
    fn reliability_recovers_heavy_loss_with_liveness_armed() {
        let run = |loss: f64, reliable: bool| {
            let cfg = LassConfig::with_loan(4, 8);
            let mut sim = Sim::new(cfg.build_nodes(), fixed(4, 8, 2), 8, SimConfig::quick(5));
            sim.set_fault_plan(FaultPlan::new(7).drop_rate(loss));
            if reliable {
                // A tight RTO (≈ 3 × the paper's γ RTT) keeps recovery
                // stalls comparable to the CS/think times of the workload.
                sim.set_reliability(Reliability::with_rto(Time::from_millis(2)));
            }
            sim.run()
        };
        let bare = run(0.2, false);
        let recovered = run(0.2, true);
        // 20% sustained loss collapses the bare protocol (every node's
        // request path eventually hits a fatal drop); the session layer
        // recovers every loss and multiplies throughput back.
        assert!(recovered.faults.dropped_link > 0);
        assert!(recovered.reliability.retransmits > 0);
        assert!(
            recovered.cs_completed > 3 * bare.cs_completed.max(1),
            "reliability did not recover throughput: {} vs bare {}",
            recovered.cs_completed,
            bare.cs_completed
        );
        // The liveness check ran armed (the plan is recoverable): reaching
        // here without a panic is the assertion; starved requests would
        // also show up as censored, which retransmission prevents.
        assert_eq!(recovered.censored, 0, "reliable run starved a request");
    }

    #[test]
    fn reliability_on_perfect_links_changes_no_protocol_outcome() {
        let run = |reliable: bool| {
            let cfg = LassConfig::with_loan(4, 8);
            let mut sim = Sim::new(cfg.build_nodes(), fixed(4, 8, 2), 8, SimConfig::quick(17));
            if reliable {
                sim.set_reliability(Reliability::default());
            }
            sim.run()
        };
        let off = run(false);
        let on = run(true);
        // Same protocol outcomes: no frame is ever lost, so no
        // retransmission and no reordering — the sessions are pure
        // bookkeeping plus ack traffic.
        assert_eq!(off.cs_completed, on.cs_completed);
        assert_eq!(off.msgs_total, on.msgs_total);
        assert_eq!(on.reliability.retransmits, 0);
        assert_eq!(on.reliability.gap_dropped, 0);
        assert_eq!(on.reliability.data_sent, on.msgs_total);
        assert!(on.reliability.acks_sent + on.reliability.acks_piggybacked > 0);
        assert_eq!(off.reliability, ReliabilityStats::default());
    }

    #[test]
    fn reliable_lossy_runs_are_deterministic() {
        let run = || {
            let cfg = LassConfig::with_loan(4, 8);
            let mut sim = Sim::new(cfg.build_nodes(), fixed(4, 8, 2), 8, SimConfig::quick(23));
            sim.set_fault_plan(FaultPlan::new(9).drop_rate(0.15).dup_rate(0.1));
            sim.set_reliability(Reliability::default());
            sim.run()
        };
        let a = run();
        let b = run();
        assert_eq!(a.cs_completed, b.cs_completed);
        assert_eq!(a.msgs_total, b.msgs_total);
        assert_eq!(a.faults, b.faults);
        assert_eq!(a.reliability, b.reliability);
        assert!(a.reliability.dup_dropped > 0, "dups were delivered and absorbed");
    }

    #[test]
    fn rto_env_knob_shapes_recovery() {
        // A shorter RTO recovers lost frames sooner: strictly more (or
        // equal) critical sections inside the same window.
        let run = |rto_ms: u64| {
            let cfg = LassConfig::with_loan(4, 8);
            let mut sim = Sim::new(cfg.build_nodes(), fixed(4, 8, 2), 8, SimConfig::quick(5));
            sim.set_fault_plan(FaultPlan::new(7).drop_rate(0.2));
            sim.set_reliability(Reliability::with_rto(Time::from_millis(rto_ms)));
            sim.run()
        };
        let fast = run(2);
        let slow = run(80);
        assert!(
            fast.cs_completed >= slow.cs_completed,
            "2 ms RTO ({}) should beat 80 ms ({})",
            fast.cs_completed,
            slow.cs_completed
        );
        assert!(fast.reliability.retransmits > 0);
    }

    #[test]
    #[should_panic(expected = "before init()")]
    fn reliability_rejected_after_init() {
        let cfg = LassConfig::with_loan(2, 4);
        let mut sim = Sim::new(cfg.build_nodes(), fixed(2, 4, 1), 4, SimConfig::quick(1));
        sim.init();
        sim.set_reliability(Reliability::default());
    }

    #[test]
    fn use_rate_scales_with_load() {
        // Longer think time ⇒ lower use rate.
        let busy = |think_ms: u64| {
            let cfg = LassConfig::with_loan(3, 6);
            let wl: Vec<FixedWorkload> = (0..3)
                .map(|_| FixedWorkload {
                    think: Time::from_millis(think_ms),
                    cs: Time::from_millis(5),
                    m: 6,
                    size: 2,
                })
                .collect();
            Sim::new(cfg.build_nodes(), wl, 6, SimConfig::quick(11)).run().use_rate()
        };
        assert!(busy(1) > busy(50));
    }
}
