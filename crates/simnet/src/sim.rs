//! The discrete-event simulation engine.
//!
//! A [`Sim`] owns one [`Allocator`] instance and one workload per node, a
//! virtual clock, and a single event queue.  Two event types exist:
//! message deliveries (after a sampled link latency, FIFO per directed
//! link) and node timers (think-time expiry → issue a request; CS expiry →
//! release).  Everything is deterministic given the seed: the heap breaks
//! ties by schedule order.
//!
//! Safety is *monitored*, not assumed: every grant is checked against the
//! holders of every resource (a violation panics), so each simulated
//! experiment doubles as a large randomized protocol test.

use crate::driver::{Driver, DriverState, Workload};
use crate::latency::LatencyModel;
use crate::metrics::{Collector, RunResult};
use mra_protocol::testkit::SafetyMonitor;
use mra_protocol::{Allocator, Ctx, WireMsg};
use mra_types::{NodeId, Time};
use rand::rngs::StdRng;
use rand::SeedableRng;
use std::cmp::Ordering;
use std::collections::BinaryHeap;

/// Simulation parameters.
#[derive(Clone, Debug)]
pub struct SimConfig {
    /// Link latency model (the paper's γ).
    pub latency: LatencyModel,
    /// Master seed; all per-node and network randomness derives from it.
    pub seed: u64,
    /// Warmup prefix excluded from the measurement window.
    pub warmup: Time,
    /// Length of the measurement window.
    pub measure: Time,
    /// Extra time after the window for in-flight requests to finish
    /// (issuing stops at the window end).
    pub drain: Time,
    /// Only nodes `0..active` issue requests (`None` = all).  Used by the
    /// coordinator-based central scheduler.
    pub active_nodes: Option<usize>,
    /// Hard cap on processed events (runaway guard).
    pub max_events: u64,
}

impl SimConfig {
    /// Reasonable defaults for tests: paper LAN latency, 100 ms warmup,
    /// 1 s window, 1 s drain.
    pub fn quick(seed: u64) -> Self {
        SimConfig {
            latency: LatencyModel::paper_lan(),
            seed,
            warmup: Time::from_millis(100),
            measure: Time::from_secs(1),
            drain: Time::from_secs(1),
            active_nodes: None,
            max_events: 200_000_000,
        }
    }
}

enum Ev<M> {
    Deliver { from: NodeId, to: NodeId, msg: M },
    Think { node: NodeId },
    CsEnd { node: NodeId },
}

struct Scheduled<M> {
    at: Time,
    seq: u64,
    ev: Ev<M>,
}

impl<M> PartialEq for Scheduled<M> {
    fn eq(&self, other: &Self) -> bool {
        self.at == other.at && self.seq == other.seq
    }
}
impl<M> Eq for Scheduled<M> {}
impl<M> PartialOrd for Scheduled<M> {
    fn partial_cmp(&self, other: &Self) -> Option<Ordering> {
        Some(self.cmp(other))
    }
}
impl<M> Ord for Scheduled<M> {
    fn cmp(&self, other: &Self) -> Ordering {
        // Reversed: BinaryHeap is a max-heap, we want the earliest event.
        (other.at, other.seq).cmp(&(self.at, self.seq))
    }
}

struct SimNode<A: Allocator, W> {
    proto: A,
    ctx: Ctx<A::Msg>,
    driver: Driver,
    workload: W,
    rng: StdRng,
}

/// The simulator.
pub struct Sim<A: Allocator, W: Workload> {
    nodes: Vec<SimNode<A, W>>,
    queue: BinaryHeap<Scheduled<A::Msg>>,
    now: Time,
    seq: u64,
    net_rng: StdRng,
    fifo_last: Vec<Time>,
    monitor: SafetyMonitor,
    collector: Collector,
    cfg: SimConfig,
    stop_issuing: Time,
    end_at: Time,
    n: usize,
}

impl<A: Allocator, W: Workload> Sim<A, W> {
    /// Build a simulation over one protocol instance and one workload per
    /// node.
    pub fn new(protos: Vec<A>, workloads: Vec<W>, m: usize, cfg: SimConfig) -> Self {
        let n = protos.len();
        assert_eq!(n, workloads.len());
        let window = (cfg.warmup, cfg.warmup + cfg.measure);
        let stop_issuing = window.1;
        let end_at = window.1 + cfg.drain;
        let nodes: Vec<SimNode<A, W>> = protos
            .into_iter()
            .zip(workloads)
            .enumerate()
            .map(|(i, (proto, workload))| SimNode {
                proto,
                ctx: Ctx::new(i, n),
                driver: Driver::new(),
                workload,
                rng: StdRng::seed_from_u64(
                    cfg.seed ^ (i as u64).wrapping_mul(0x9E37_79B9_7F4A_7C15),
                ),
            })
            .collect();
        Sim {
            queue: BinaryHeap::new(),
            now: Time::ZERO,
            seq: 0,
            net_rng: StdRng::seed_from_u64(cfg.seed ^ 0xDEAD_BEEF_CAFE_F00D),
            fifo_last: vec![Time::ZERO; n * n],
            monitor: SafetyMonitor::new(n, m),
            collector: Collector::new(n, m, window),
            stop_issuing,
            end_at,
            n,
            nodes,
            cfg,
        }
    }

    fn push(&mut self, at: Time, ev: Ev<A::Msg>) {
        let seq = self.seq;
        self.seq += 1;
        self.queue.push(Scheduled { at, seq, ev });
    }

    fn schedule_outbox(&mut self, from: NodeId) {
        let out = self.nodes[from].ctx.take_outbox();
        for (to, msg) in out {
            let lat = self.cfg.latency.sample(from, to, &mut self.net_rng);
            let link = from * self.n + to;
            // Reliable FIFO links: never deliver before an earlier message
            // on the same link (1 ns separation keeps strict order even
            // under jittered latency).
            let at = (self.now + lat).max(self.fifo_last[link] + Time::from_nanos(1));
            self.fifo_last[link] = at;
            self.push(at, Ev::Deliver { from, to, msg });
        }
    }

    fn post_dispatch(&mut self, i: NodeId) {
        self.schedule_outbox(i);
        if self.nodes[i].ctx.take_granted() {
            let set = self.nodes[i].driver.current_set();
            self.monitor.enter(i, set);
            self.collector.on_grant(i, self.now);
            let cs = self.nodes[i].driver.granted();
            self.push(self.now + cs, Ev::CsEnd { node: i });
        }
    }

    /// Run to completion and return the measured result.
    pub fn run(mut self) -> RunResult {
        let algo = self.nodes[0].proto.name().to_string();
        let active = self.cfg.active_nodes.unwrap_or(self.n);

        // Init protocols, then stagger initial think timers.
        for i in 0..self.n {
            let node = &mut self.nodes[i];
            node.ctx.set_now(Time::ZERO);
            node.proto.on_init(&mut node.ctx);
        }
        for i in 0..self.n {
            self.schedule_outbox(i);
        }
        for i in 0..active {
            let node = &mut self.nodes[i];
            let think = {
                let SimNode { workload, rng, .. } = node;
                workload.think_time(rng)
            };
            self.push(think, Ev::Think { node: i });
        }

        let mut events = 0u64;
        let mut horizon_cut = false;
        while let Some(sched) = self.queue.pop() {
            if sched.at > self.end_at {
                // Events beyond the horizon (e.g. a CS ending during the
                // drain cut-off) are intentionally dropped.
                horizon_cut = true;
                break;
            }
            events += 1;
            assert!(
                events <= self.cfg.max_events,
                "simulation exceeded {} events — runaway protocol?",
                self.cfg.max_events
            );
            debug_assert!(sched.at >= self.now, "time went backwards");
            self.now = sched.at;
            match sched.ev {
                Ev::Deliver { from, to, msg } => {
                    self.collector.on_message(msg.kind(), msg.weight());
                    let node = &mut self.nodes[to];
                    node.ctx.set_now(self.now);
                    node.proto.on_message(&mut node.ctx, from, msg);
                    self.post_dispatch(to);
                }
                Ev::Think { node: i } => {
                    if self.now >= self.stop_issuing {
                        self.nodes[i].driver.park();
                        continue;
                    }
                    let set = {
                        let SimNode {
                            driver,
                            workload,
                            rng,
                            ..
                        } = &mut self.nodes[i];
                        driver.issue(workload, rng)
                    };
                    self.collector.on_issue(i, set, self.now);
                    let node = &mut self.nodes[i];
                    node.ctx.set_now(self.now);
                    node.proto.request(&mut node.ctx, set);
                    self.post_dispatch(i);
                }
                Ev::CsEnd { node: i } => {
                    self.collector.on_release(i, self.now);
                    self.monitor.exit(i);
                    let node = &mut self.nodes[i];
                    node.driver.released();
                    node.ctx.set_now(self.now);
                    node.proto.release(&mut node.ctx);
                    self.post_dispatch(i);
                    let think = {
                        let SimNode { workload, rng, .. } = &mut self.nodes[i];
                        workload.think_time(rng)
                    };
                    self.push(self.now + think, Ev::Think { node: i });
                }
            }
        }

        // Sanity: a *naturally* exhausted event queue (no horizon cut) with
        // a node still waiting is a genuine deadlock — nothing can ever
        // unblock it.  A horizon cut is not: the unblocking event may have
        // been dropped.
        if !horizon_cut && self.queue.is_empty() {
            for i in 0..active {
                if self.nodes[i].driver.state() == DriverState::Waiting {
                    panic!(
                        "liveness failure: node {i} still waiting at {} with no \
                         events left (algo {algo})",
                        self.now
                    );
                }
            }
        }

        self.collector.finish(&algo, self.n, self.now.min(self.end_at))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::driver::FixedWorkload;
    use mra_baselines::{Central, GrantPolicy, Incremental};
    use mra_core::LassConfig;

    fn fixed(n: usize, m: usize, size: usize) -> Vec<FixedWorkload> {
        (0..n)
            .map(|_| FixedWorkload {
                think: Time::from_millis(5),
                cs: Time::from_millis(3),
                m,
                size,
            })
            .collect()
    }

    #[test]
    fn lass_simulation_completes_and_measures() {
        let cfg = LassConfig::with_loan(4, 8);
        let sim = Sim::new(cfg.build_nodes(), fixed(4, 8, 2), 8, SimConfig::quick(1));
        let res = sim.run();
        assert!(res.cs_completed > 20, "got {}", res.cs_completed);
        assert!(res.use_rate() > 0.0 && res.use_rate() <= 1.0);
        assert!(res.wait_stats().count > 0);
        assert_eq!(res.censored, 0);
    }

    #[test]
    fn incremental_simulation_completes() {
        let sim = Sim::new(
            Incremental::build_nodes(4, 8),
            fixed(4, 8, 2),
            8,
            SimConfig::quick(2),
        );
        let res = sim.run();
        assert!(res.cs_completed > 20);
        assert_eq!(res.algo, "incremental");
    }

    #[test]
    fn central_with_passive_coordinator() {
        let mut cfg = SimConfig::quick(3);
        cfg.latency = LatencyModel::Zero;
        cfg.active_nodes = Some(4);
        let sim = Sim::new(
            Central::build_nodes(4, GrantPolicy::Conservative),
            fixed(5, 8, 2),
            8,
            cfg,
        );
        let res = sim.run();
        assert!(res.cs_completed > 50, "zero latency is fast: {}", res.cs_completed);
    }

    #[test]
    fn deterministic_given_seed() {
        let run = |seed| {
            let cfg = LassConfig::with_loan(4, 6);
            let sim = Sim::new(cfg.build_nodes(), fixed(4, 6, 2), 6, SimConfig::quick(seed));
            let r = sim.run();
            (r.cs_completed, r.msgs_total, r.wait_stats().mean_ms)
        };
        assert_eq!(run(42), run(42));
        assert_ne!(run(42), run(43), "different seeds should differ");
    }

    #[test]
    fn messages_are_fifo_per_link() {
        // Statistical check via jittered latency: the engine must still
        // deliver FIFO (enforced by fifo_last); the protocols would panic /
        // deadlock otherwise.  Run with heavy jitter and verify completion.
        let mut cfg = SimConfig::quick(7);
        cfg.latency = LatencyModel::Uniform {
            lo: Time::from_micros(10),
            hi: Time::from_millis(5),
        };
        let lass = LassConfig::with_loan(4, 6);
        let res = Sim::new(lass.build_nodes(), fixed(4, 6, 2), 6, cfg).run();
        assert!(res.cs_completed > 10);
    }

    #[test]
    fn use_rate_scales_with_load() {
        // Longer think time ⇒ lower use rate.
        let busy = |think_ms: u64| {
            let cfg = LassConfig::with_loan(3, 6);
            let wl: Vec<FixedWorkload> = (0..3)
                .map(|_| FixedWorkload {
                    think: Time::from_millis(think_ms),
                    cs: Time::from_millis(5),
                    m: 6,
                    size: 2,
                })
                .collect();
            Sim::new(cfg.build_nodes(), wl, 6, SimConfig::quick(11)).run().use_rate()
        };
        assert!(busy(1) > busy(50));
    }
}
