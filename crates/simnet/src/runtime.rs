//! The substrate-independent real-time node loop.
//!
//! The threaded mpsc runtime ([`crate::threaded`]) and `mra-net`'s TCP
//! transport both drive the same per-node event loop: wait for either a
//! message or a workload timer, feed the protocol state machine, flush its
//! outbox, and account grants/releases against the shared
//! [`SafetyMonitor`] and [`Collector`].  This module owns that loop —
//! [`drive_node`] — and the [`NodePort`] abstraction the two substrates
//! implement, so wire-level and in-process runs differ *only* in how bytes
//! move between nodes.
//!
//! Lifecycle per active node: think → request → wait for grant → hold the
//! critical section → release, repeated `rounds` times.  After its quota a
//! node parks but keeps serving protocol traffic (forwarding requests,
//! relaying tokens) until the cluster-wide shutdown signal — coordinated by
//! the port, see [`NodePort::quota_done`] — reaches it.

use crate::driver::{Driver, DriverState, Workload};
use crate::metrics::Collector;
use mra_obs::{trace_mode_from_env, EngineTracer, EventKind, ObsReport, TraceMode};
use mra_protocol::testkit::SafetyMonitor;
use mra_protocol::{Allocator, Ctx, WireMsg};
use mra_types::{NodeId, Time};
use rand::rngs::StdRng;
use rand::SeedableRng;
use std::sync::{Mutex, MutexGuard};
use std::time::Instant;

/// Lock preserving parking_lot-like semantics: a poisoned mutex (some node
/// thread already panicked) still yields its data, so the original panic
/// reaches the joiner instead of a PoisonError cascade.
pub fn lock<T>(m: &Mutex<T>) -> MutexGuard<'_, T> {
    m.lock().unwrap_or_else(|e| e.into_inner())
}

/// One delivery from the port to the node loop.
pub enum PortEvent<M> {
    /// A protocol message from `from`, to be processed no earlier than
    /// `deliver_at` (ports emulating extra link latency set it in the
    /// future; the loop sleeps out the difference).
    Msg {
        /// Sending node.
        from: NodeId,
        /// Earliest processing instant.
        deliver_at: Instant,
        /// Lamport stamp minted by the sender's tracer (0 when tracing is
        /// disarmed or the transport cannot carry it — see
        /// [`NodePort::send`]).
        stamp: u64,
        /// The protocol message.
        msg: M,
    },
    /// No message arrived before the requested deadline.
    TimedOut,
    /// The cluster is shutting down (or the transport collapsed); the node
    /// loop exits.
    Shutdown,
}

/// A node's connection to the rest of the cluster.
///
/// Implementations: the mpsc channel mesh in [`crate::threaded`] and the
/// TCP mesh in `mra-net`.  Both must deliver messages FIFO per directed
/// link (the assumption every protocol in this workspace makes).
pub trait NodePort<M>: Send {
    /// Queue `msg` for delivery to `to`.  Send failures after shutdown are
    /// ignored — the run is already over.
    ///
    /// `stamp` is the sender-side Lamport stamp minted by the run's tracer
    /// (0 when disarmed).  In-process ports carry it to the receiver's
    /// [`PortEvent::Msg`]; wire transports whose frame format predates
    /// tracing may drop it and deliver 0 (the trace then still has
    /// per-node ordering and counters, just no cross-node edges).
    fn send(&mut self, to: NodeId, msg: M, stamp: u64);

    /// Block until the next event (never returns [`PortEvent::TimedOut`]).
    fn recv(&mut self) -> PortEvent<M>;

    /// Block until the next event or `deadline`, whichever comes first.
    fn recv_deadline(&mut self, deadline: Instant) -> PortEvent<M>;

    /// This node just completed its round quota.  The port coordinates the
    /// cluster-wide shutdown; a `true` return means this node was the last
    /// active finisher and must exit immediately (the shutdown signal it
    /// just broadcast will release everyone else).
    fn quota_done(&mut self) -> bool;
}

/// State shared by every node of one run: safety monitoring, metrics and
/// the common epoch that turns wall-clock instants into [`Time`] stamps.
#[derive(Debug)]
pub struct RunShared {
    /// Mutual-exclusion safety checker (panics on violation).
    pub monitor: Mutex<SafetyMonitor>,
    /// Metrics accumulator.
    pub collector: Mutex<Collector>,
    /// Causal tracer, `Some` only when armed via `MRA_TRACE` /
    /// `MRA_TRACE_FILE` (see [`mra_obs::trace_mode_from_env`]).  Disarmed
    /// runs pay exactly one `Option` check per hook site — the tracer
    /// itself is never constructed.  Real-time runs have no deterministic
    /// dispatch key, so every event is keyed `(shared.now(), 0)`; the
    /// per-record sequence number keeps the merged order stable.
    pub obs: Option<Mutex<EngineTracer>>,
    /// Wall-clock origin of the run.
    pub epoch: Instant,
}

impl RunShared {
    /// Fresh shared state for `n` nodes and `m` resources.  The collector
    /// window is open-ended (clamped to the actual end by
    /// [`Collector::finish`]).  Tracing arms from the environment
    /// ([`mra_obs::trace_mode_from_env`]) so both the mpsc and the TCP
    /// runtime pick it up from one place.
    pub fn new(n: usize, m: usize) -> Self {
        let obs = match trace_mode_from_env() {
            TraceMode::Off => None,
            mode => Some(Mutex::new(EngineTracer::armed(n, mode))),
        };
        RunShared {
            monitor: Mutex::new(SafetyMonitor::new(n, m)),
            collector: Mutex::new(Collector::new(n, m, (Time::ZERO, Time::from_secs(3600)))),
            obs,
            epoch: Instant::now(),
        }
    }

    /// Wall time elapsed since the run epoch.
    pub fn now(&self) -> Time {
        Time::from_nanos(self.epoch.elapsed().as_nanos() as u64)
    }

    /// Take the tracer out (after all node threads joined) and fold it
    /// into an [`ObsReport`].  Returns a disarmed default report when
    /// tracing was off.
    pub fn finish_obs(&self) -> ObsReport {
        match &self.obs {
            Some(m) => std::mem::take(&mut *lock(m)).finish(),
            None => ObsReport::default(),
        }
    }
}

/// Per-node run parameters.
#[derive(Clone, Copy, Debug)]
pub struct NodeCfg {
    /// Request/CS cycles this node must complete (ignored when passive).
    pub rounds: usize,
    /// Master seed; each node derives its own stream from it.
    pub seed: u64,
    /// Passive nodes never issue requests; they only serve protocol
    /// traffic (e.g. a central coordinator).
    pub is_active: bool,
}

/// Run one node to completion over `port`.
///
/// # Panics
/// On any safety violation (monitored exactly like the simulator) and on
/// protocol contract violations surfaced by the `Allocator` itself.
pub fn drive_node<A, W, P>(
    me: NodeId,
    n: usize,
    mut proto: A,
    mut workload: W,
    mut port: P,
    shared: &RunShared,
    cfg: NodeCfg,
) where
    A: Allocator,
    W: Workload,
    P: NodePort<A::Msg>,
{
    // The loop always runs a full request/CS cycle before decrementing, so
    // a zero quota on an active node would underflow instead of no-opping.
    assert!(
        !cfg.is_active || cfg.rounds >= 1,
        "active node {me} needs a round quota of at least 1"
    );
    let mut ctx: Ctx<A::Msg> = Ctx::new(me, n);
    let mut driver = Driver::new();
    let mut rng =
        StdRng::seed_from_u64(cfg.seed ^ (me as u64).wrapping_mul(0x9E37_79B9_7F4A_7C15));

    ctx.set_now(shared.now());
    proto.on_init(&mut ctx);
    flush_and_grants(me, &mut ctx, &mut driver, &mut workload, &mut port, shared, &mut None);

    let mut rounds_left = if cfg.is_active { cfg.rounds } else { 0 };
    // The pending timer: think expiry or CS expiry, depending on state.
    let mut deadline: Option<Instant> = cfg.is_active.then(|| {
        workload.set_now(shared.now());
        Instant::now() + workload.think_time(&mut rng).to_std()
    });
    if !cfg.is_active {
        driver.park();
    }

    loop {
        let event = match deadline {
            Some(d) => port.recv_deadline(d),
            None => port.recv(),
        };

        match event {
            PortEvent::Shutdown => return,
            PortEvent::Msg { from, deliver_at, stamp, msg } => {
                let wait = deliver_at.saturating_duration_since(Instant::now());
                if !wait.is_zero() {
                    std::thread::sleep(wait);
                }
                ctx.set_now(shared.now());
                if let Some(obs) = &shared.obs {
                    let mut t = lock(obs);
                    t.set_key(shared.now(), 0);
                    t.on_recv(from, me, msg.kind(), msg.weight() as u32, stamp);
                }
                proto.on_message(&mut ctx, from, msg);
                flush_and_grants(
                    me,
                    &mut ctx,
                    &mut driver,
                    &mut workload,
                    &mut port,
                    shared,
                    &mut deadline,
                );
            }
            PortEvent::TimedOut => {
                // Timer fired.
                match driver.state() {
                    DriverState::Thinking => {
                        let now = shared.now();
                        workload.set_now(now);
                        let set = driver.issue(&mut workload, &mut rng);
                        // Open-loop workloads claim the request's intended
                        // arrival; closed-loop ones arrive at issue.
                        let arrival = workload.intended_arrival().unwrap_or(now).min(now);
                        if let Some(obs) = &shared.obs {
                            let mut t = lock(obs);
                            t.set_key(now, 0);
                            t.on_cs(EventKind::CsRequest, me, set.len() as u32);
                        }
                        lock(&shared.collector).on_issue(me, set.clone(), now, arrival);
                        deadline = None; // wait for the grant
                        ctx.set_now(shared.now());
                        proto.request(&mut ctx, set);
                        flush_and_grants(
                            me,
                            &mut ctx,
                            &mut driver,
                            &mut workload,
                            &mut port,
                            shared,
                            &mut deadline,
                        );
                    }
                    DriverState::InCs => {
                        if let Some(obs) = &shared.obs {
                            let mut t = lock(obs);
                            t.set_key(shared.now(), 0);
                            t.on_cs(EventKind::CsExit, me, 0);
                        }
                        let now = shared.now();
                        lock(&shared.collector).on_release(me, now);
                        workload.on_release(now);
                        lock(&shared.monitor).exit(me);
                        driver.released();
                        ctx.set_now(shared.now());
                        proto.release(&mut ctx);
                        deadline = None;
                        flush_and_grants(
                            me,
                            &mut ctx,
                            &mut driver,
                            &mut workload,
                            &mut port,
                            shared,
                            &mut deadline,
                        );
                        rounds_left -= 1;
                        if rounds_left == 0 {
                            driver.park();
                            if port.quota_done() {
                                // Last finisher: shutdown broadcast, exit.
                                return;
                            }
                        } else {
                            workload.set_now(shared.now());
                            deadline = Some(
                                Instant::now() + workload.think_time(&mut rng).to_std(),
                            );
                        }
                    }
                    // Waiting/Parked never arm a timer.
                    other => unreachable!("timer in state {other:?}"),
                }
            }
        }
    }
}

/// Drain the outbox onto the port and turn a grant edge into CS
/// bookkeeping (+ CS-end timer).  The outbox drains in place (its
/// capacity is the reused buffer), under one collector lock per burst.
fn flush_and_grants<M: WireMsg, W: Workload, P: NodePort<M>>(
    me: NodeId,
    ctx: &mut Ctx<M>,
    driver: &mut Driver,
    workload: &mut W,
    port: &mut P,
    shared: &RunShared,
    deadline: &mut Option<Instant>,
) {
    if ctx.has_output() {
        let mut collector = lock(&shared.collector);
        // One tracer lock per outbox burst; every message in the burst
        // shares the key (now, 0), disambiguated by the tracer's seq.
        let mut obs = shared.obs.as_ref().map(|m| {
            let mut t = lock(m);
            t.set_key(shared.now(), 0);
            t
        });
        for (to, msg) in ctx.drain_outbox() {
            collector.on_message(msg.kind(), msg.weight());
            let stamp = match obs.as_deref_mut() {
                Some(t) => t.on_send(me, to, msg.kind(), msg.weight() as u32, None),
                None => 0,
            };
            port.send(to, msg, stamp);
        }
    }
    if ctx.take_granted() {
        let set = driver.current_set();
        let size = set.len() as u32;
        lock(&shared.monitor).enter(me, set);
        let now = shared.now();
        let waits = lock(&shared.collector).on_grant(me, now);
        workload.on_grant(now);
        if let Some(obs) = &shared.obs {
            let mut t = lock(obs);
            t.set_key(now, 0);
            if let Some((wait, serve)) = waits {
                t.record_wait(wait);
                t.record_serve(serve);
            }
            t.on_cs(EventKind::CsEnter, me, size);
        }
        let cs = driver.granted();
        *deadline = Some(Instant::now() + cs.to_std());
    }
}
