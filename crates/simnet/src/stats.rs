//! Small statistics helpers used by the metrics and the experiment
//! harnesses: sample mean, (sample) standard deviation, and percentiles by
//! linear interpolation.

/// Arithmetic mean; 0 for an empty slice.
pub fn mean(xs: &[f64]) -> f64 {
    if xs.is_empty() {
        return 0.0;
    }
    xs.iter().sum::<f64>() / xs.len() as f64
}

/// Sample standard deviation (n − 1 denominator); 0 for fewer than two
/// samples.  Two-pass formulation for numerical stability.
pub fn std_dev(xs: &[f64]) -> f64 {
    if xs.len() < 2 {
        return 0.0;
    }
    let m = mean(xs);
    let var = xs.iter().map(|x| (x - m) * (x - m)).sum::<f64>() / (xs.len() - 1) as f64;
    var.sqrt()
}

/// `q`-th percentile (`0 ≤ q ≤ 100`) with linear interpolation.
/// The input need not be sorted.
///
/// **Empty input:** a percentile of zero samples does not exist; the
/// result is defined as `NaN` (it used to be a silent `0.0`, which is a
/// plausible-looking lie in tables).  Renderers turn it into `"n/a"` via
/// [`crate::WaitStats::cell`]; it must never flow into arithmetic.
pub fn percentile(xs: &[f64], q: f64) -> f64 {
    if xs.is_empty() {
        return f64::NAN;
    }
    let mut v: Vec<f64> = xs.to_vec();
    v.sort_by(|a, b| a.total_cmp(b));
    percentile_sorted(&v, q)
}

/// Percentile of an already sorted slice.  `NaN` for an empty slice (see
/// [`percentile`]).
pub fn percentile_sorted(sorted: &[f64], q: f64) -> f64 {
    if sorted.is_empty() {
        return f64::NAN;
    }
    let q = q.clamp(0.0, 100.0);
    let pos = q / 100.0 * (sorted.len() - 1) as f64;
    let lo = pos.floor() as usize;
    let hi = pos.ceil() as usize;
    if lo == hi {
        sorted[lo]
    } else {
        let frac = pos - lo as f64;
        sorted[lo] * (1.0 - frac) + sorted[hi] * frac
    }
}

/// Median (50th percentile).  `NaN` for an empty slice (see
/// [`percentile`]).
pub fn median(xs: &[f64]) -> f64 {
    percentile(xs, 50.0)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn mean_basic() {
        assert_eq!(mean(&[]), 0.0);
        assert_eq!(mean(&[4.0]), 4.0);
        assert_eq!(mean(&[1.0, 2.0, 3.0]), 2.0);
    }

    #[test]
    fn std_dev_basic() {
        assert_eq!(std_dev(&[]), 0.0);
        assert_eq!(std_dev(&[5.0]), 0.0);
        // Known value: sample std of {2,4,4,4,5,5,7,9} with n-1 is ~2.138.
        let xs = [2.0, 4.0, 4.0, 4.0, 5.0, 5.0, 7.0, 9.0];
        assert!((std_dev(&xs) - 2.13809).abs() < 1e-4);
    }

    #[test]
    fn percentile_interpolates() {
        let xs = [1.0, 2.0, 3.0, 4.0];
        assert_eq!(percentile(&xs, 0.0), 1.0);
        assert_eq!(percentile(&xs, 100.0), 4.0);
        assert_eq!(percentile(&xs, 50.0), 2.5);
        assert_eq!(median(&xs), 2.5);
        assert_eq!(percentile(&xs, 25.0), 1.75);
    }

    #[test]
    fn percentile_unsorted_input() {
        let xs = [9.0, 1.0, 5.0];
        assert_eq!(median(&xs), 5.0);
    }

    #[test]
    fn percentile_clamps_q() {
        let xs = [1.0, 2.0];
        assert_eq!(percentile(&xs, -5.0), 1.0);
        assert_eq!(percentile(&xs, 400.0), 2.0);
    }

    #[test]
    fn empty_input_percentiles_are_nan_not_zero() {
        // A percentile of zero samples does not exist — reporting 0.0
        // looked like a legitimate measurement in tables and CSVs.
        assert!(percentile(&[], 50.0).is_nan());
        assert!(percentile_sorted(&[], 95.0).is_nan());
        assert!(median(&[]).is_nan());
        // Mean/std keep their documented 0 conventions.
        assert_eq!(mean(&[]), 0.0);
        assert_eq!(std_dev(&[]), 0.0);
    }
}
