//! Run metrics: per-request records, resource-use-rate accounting and
//! summary statistics (the paper's §5.2 and §5.3 metrics).

use crate::stats;
use mra_obs::ObsReport;
use mra_protocol::faults::FaultStats;
use mra_protocol::reliable::ReliabilityStats;
use mra_types::{NodeId, ResourceSet, Time};

/// Full life of one critical-section request.
#[derive(Clone, Debug)]
pub struct ReqRecord {
    /// Requesting node.
    pub node: NodeId,
    /// Requested resources.
    pub set: ResourceSet,
    /// Request size (`|set|` — the paper's `x`).
    pub size: usize,
    /// Intended arrival instant: when the request *entered the system*
    /// (an open-loop generator's scheduled arrival).  Equals `issued` for
    /// closed-loop workloads, and is never later than `issued`.
    pub arrival: Time,
    /// Issue instant (the CS request hit the protocol).
    pub issued: Time,
    /// Grant instant (CS entry), if reached before the run ended.
    pub granted: Option<Time>,
    /// Release instant, if reached before the run ended.
    pub released: Option<Time>,
}

impl ReqRecord {
    /// Waiting time (grant − issue), if granted — the paper's §5.3
    /// metric, measured from the protocol's point of view.
    pub fn wait(&self) -> Option<Time> {
        self.granted.map(|g| g - self.issued)
    }

    /// Serving latency (grant − intended arrival), if granted: what an
    /// open-loop client experiences, queueing delay before issue
    /// included.  Identical to [`ReqRecord::wait`] for closed-loop
    /// workloads, where arrival and issue coincide.
    pub fn serve_wait(&self) -> Option<Time> {
        self.granted.map(|g| g - self.arrival)
    }
}

/// Waiting-time statistics in milliseconds.
#[derive(Clone, Copy, Debug, Default)]
pub struct WaitStats {
    /// Number of samples.
    pub count: usize,
    /// Mean waiting time (ms).
    pub mean_ms: f64,
    /// Sample standard deviation (ms).
    pub std_ms: f64,
    /// Median (ms).
    pub median_ms: f64,
    /// 95th percentile (ms).
    pub p95_ms: f64,
    /// 99th percentile (ms).
    pub p99_ms: f64,
    /// 99.9th percentile (ms) — the tail-SLO figure.  Exact here (full
    /// sample vector); the live, fixed-memory variant is the log2
    /// histogram in [`mra_obs::LogHist`], reported via `RunResult::obs`.
    pub p999_ms: f64,
}

impl WaitStats {
    /// Compute from raw waits in milliseconds.  Takes the samples by value
    /// and sorts them **once**: median, p95, p99 and p999 then use the
    /// [`stats::percentile_sorted`] fast path instead of re-sorting a clone
    /// per percentile (this sits on the per-report hot path of every
    /// figure sweep and bench run).
    ///
    /// With zero samples the percentile fields are `NaN` (a percentile of
    /// nothing does not exist — see [`stats::percentile`], and
    /// [`mra_obs::LogHist::quantile`] for the same contract on the live
    /// histograms); render them with [`WaitStats::cell`], which writes
    /// `"n/a"` instead of leaking `NaN` into tables and CSVs.
    pub fn from_ms(mut ms: Vec<f64>) -> Self {
        ms.sort_by(|a, b| a.total_cmp(b));
        WaitStats {
            count: ms.len(),
            mean_ms: stats::mean(&ms),
            std_ms: stats::std_dev(&ms),
            median_ms: stats::percentile_sorted(&ms, 50.0),
            p95_ms: stats::percentile_sorted(&ms, 95.0),
            p99_ms: stats::percentile_sorted(&ms, 99.0),
            p999_ms: stats::percentile_sorted(&ms, 99.9),
        }
    }

    /// Format one statistic for a table or CSV cell with `prec` decimal
    /// places; non-finite values (the empty-sample `NaN` percentiles)
    /// render as `"n/a"`.
    pub fn cell(value: f64, prec: usize) -> String {
        if value.is_finite() {
            format!("{value:.prec$}")
        } else {
            "n/a".to_string()
        }
    }
}

/// Everything measured in one run.
#[derive(Clone, Debug)]
pub struct RunResult {
    /// Algorithm name (from `Allocator::name`).
    pub algo: String,
    /// Number of nodes (including a passive coordinator, if any).
    pub n: usize,
    /// Number of resources.
    pub m: usize,
    /// Measurement window.
    pub window: (Time, Time),
    /// All requests *issued inside the window*, sorted by
    /// `(issued, node)` — a canonical order independent of how (and on how
    /// many shards) the run executed.
    pub records: Vec<ReqRecord>,
    /// Per-resource busy time inside the window.
    pub busy: Vec<Time>,
    /// Total messages delivered (whole run).
    pub msgs_total: u64,
    /// Total message weight (approximate ints on the wire).
    pub msg_weight: u64,
    /// Message count by kind, in canonical (sorted-by-kind) order so the
    /// aggregation is independent of message arrival order.
    pub msg_by_kind: Vec<(&'static str, u64)>,
    /// Critical sections completed inside the window.
    pub cs_completed: u64,
    /// Requests issued in the window but never granted before the run end
    /// (censored: excluded from waiting-time stats, reported for honesty).
    pub censored: u64,
    /// Engine events processed over the whole run (simulator runs only;
    /// zero under the threaded/TCP runtimes, which have no event loop).
    pub events_processed: u64,
    /// Wall-clock nanoseconds the engine spent executing the run (again
    /// simulator-only).  Purely observational: it never feeds back into
    /// the simulation, so determinism is unaffected.
    pub wall_ns: u64,
    /// What the fault layer did during the run (all-zero when no
    /// [`FaultPlan`](mra_protocol::faults::FaultPlan) was installed, and
    /// under the threaded/TCP runtimes, whose per-link filters are not
    /// aggregated here).
    pub faults: FaultStats,
    /// What the reliable session layer did during the run (all-zero when
    /// reliability is off, and under the threaded/TCP runtimes, whose
    /// per-port sessions are not aggregated here).
    pub reliability: ReliabilityStats,
    /// How many shards the simulator engine ran on (1 for the sequential
    /// path and for the non-simulator runtimes).
    pub shards: usize,
    /// Events processed per shard (sums to `events_processed`; empty for
    /// the non-simulator runtimes).
    pub shard_events: Vec<u64>,
    /// Observability capture: live histograms and (when armed) the causal
    /// event trace.  Default (disarmed) unless tracing was enabled via
    /// `Sim::set_tracing` / `MRA_TRACE`.
    pub obs: ObsReport,
}

impl RunResult {
    /// The paper's **resource use rate**: fraction of resource-time in use
    /// during the window (Fig. 4's colored area), in `[0, 1]`.
    pub fn use_rate(&self) -> f64 {
        let (a, b) = self.window;
        let span = (b - a).as_secs_f64();
        if span <= 0.0 || self.m == 0 {
            return 0.0;
        }
        let total: f64 = self.busy.iter().map(|t| t.as_secs_f64()).sum();
        total / (span * self.m as f64)
    }

    /// Waiting-time statistics over all granted requests in the window.
    pub fn wait_stats(&self) -> WaitStats {
        let ms: Vec<f64> = self
            .records
            .iter()
            .filter_map(|r| r.wait())
            .map(|t| t.as_millis_f64())
            .collect();
        WaitStats::from_ms(ms)
    }

    /// Serving-latency statistics (intended arrival → grant) over all
    /// granted requests in the window: the open-loop client's view,
    /// queueing delay before issue included.  For closed-loop workloads
    /// this equals [`RunResult::wait_stats`]; under an open-loop
    /// generator the gap between the two *is* the coordinated-omission
    /// bias the issue-keyed metric hides.
    pub fn serve_stats(&self) -> WaitStats {
        let ms: Vec<f64> = self
            .records
            .iter()
            .filter_map(|r| r.serve_wait())
            .map(|t| t.as_millis_f64())
            .collect();
        WaitStats::from_ms(ms)
    }

    /// Waiting-time statistics restricted to request sizes in `lo..=hi`
    /// (the paper's Fig. 7 buckets).
    pub fn wait_stats_sized(&self, lo: usize, hi: usize) -> WaitStats {
        let ms: Vec<f64> = self
            .records
            .iter()
            .filter(|r| r.size >= lo && r.size <= hi)
            .filter_map(|r| r.wait())
            .map(|t| t.as_millis_f64())
            .collect();
        WaitStats::from_ms(ms)
    }

    /// Split `1..=phi` into `buckets` contiguous ranges and return
    /// `(lo, hi, stats)` per bucket — exactly how Fig. 7 groups request
    /// sizes (labels 1res, 17res, …, 80res for φ = 80 and 6 buckets).
    pub fn wait_buckets(&self, phi: usize, buckets: usize) -> Vec<(usize, usize, WaitStats)> {
        assert!(buckets >= 1 && phi >= 1);
        let width = (phi as f64 / buckets as f64).ceil() as usize;
        let mut out = Vec::new();
        let mut lo = 1usize;
        while lo <= phi {
            let hi = (lo + width - 1).min(phi);
            out.push((lo, hi, self.wait_stats_sized(lo, hi)));
            lo = hi + 1;
        }
        out
    }

    /// Simulator throughput in events per wall-clock second — the tracked
    /// engine-performance metric (`BENCH_engine.json`).  Zero when the run
    /// recorded no wall time (non-simulator engines).
    pub fn events_per_sec(&self) -> f64 {
        if self.wall_ns == 0 {
            return 0.0;
        }
        self.events_processed as f64 * 1e9 / self.wall_ns as f64
    }

    /// Messages per completed critical section (message complexity proxy).
    pub fn msgs_per_cs(&self) -> f64 {
        if self.cs_completed == 0 {
            return 0.0;
        }
        self.msgs_total as f64 / self.cs_completed as f64
    }

    /// Mean CS concurrency: average number of nodes simultaneously in CS
    /// (time-weighted, window-clipped).
    pub fn mean_concurrency(&self) -> f64 {
        let (a, b) = self.window;
        let span = (b - a).as_secs_f64();
        if span <= 0.0 {
            return 0.0;
        }
        let cs_time: f64 = self
            .records
            .iter()
            .filter_map(|r| {
                let g = r.granted?;
                let e = r.released.unwrap_or(b);
                let s = g.max(a).min(b);
                let t = e.max(a).min(b);
                Some((t.saturating_sub(s)).as_secs_f64())
            })
            .sum();
        cs_time / span
    }
}

/// Accumulates metrics while a run executes.
#[derive(Debug)]
pub struct Collector {
    window: (Time, Time),
    m: usize,
    outstanding: Vec<Option<ReqRecord>>,
    records: Vec<ReqRecord>,
    busy: Vec<Time>,
    msgs_total: u64,
    msg_weight: u64,
    msg_by_kind: Vec<(&'static str, u64)>,
    cs_completed: u64,
}

impl Collector {
    /// New collector for `n` nodes, `m` resources and the given window.
    pub fn new(n: usize, m: usize, window: (Time, Time)) -> Self {
        Collector {
            window,
            m,
            outstanding: (0..n).map(|_| None).collect(),
            records: Vec::new(),
            busy: vec![Time::ZERO; m],
            msgs_total: 0,
            msg_weight: 0,
            msg_by_kind: Vec::new(),
            cs_completed: 0,
        }
    }

    /// A request was issued.  `arrival` is its intended arrival instant —
    /// pass `now` for closed-loop workloads (arrival = issue); an
    /// open-loop serving path passes the generator's scheduled arrival,
    /// which is never later than `now`.
    pub fn on_issue(&mut self, node: NodeId, set: ResourceSet, now: Time, arrival: Time) {
        debug_assert!(self.outstanding[node].is_none());
        debug_assert!(arrival <= now, "arrival after issue");
        self.outstanding[node] = Some(ReqRecord {
            node,
            size: set.len(),
            set,
            arrival,
            issued: now,
            granted: None,
            released: None,
        });
    }

    /// The node entered its CS.  Returns `(issue → grant, arrival →
    /// grant)` when a matching outstanding request exists (the tracer
    /// feeds them to the live wait/serve histograms without recomputing).
    pub fn on_grant(&mut self, node: NodeId, now: Time) -> Option<(Time, Time)> {
        if let Some(rec) = self.outstanding[node].as_mut() {
            debug_assert!(rec.granted.is_none());
            rec.granted = Some(now);
            Some((now - rec.issued, now - rec.arrival))
        } else {
            None
        }
    }

    /// The node released; fold the record in.
    pub fn on_release(&mut self, node: NodeId, now: Time) {
        if let Some(mut rec) = self.outstanding[node].take() {
            rec.released = Some(now);
            self.fold(rec);
        }
    }

    /// A message was delivered.
    ///
    /// This runs once per simulated message, so the kind table is kept
    /// move-to-front with a pointer-compare fast path: message kinds are
    /// `&'static str` literals, so the leading entries almost always match
    /// by address alone (kinds arrive in long runs and few protocols have
    /// more than ~6 kinds).  Byte comparison is only the fallback for the
    /// rare case of equal literals at distinct addresses across codegen
    /// units.  The top *two* entries are hot without reshuffling —
    /// request/token-style protocols alternate between two kinds, and
    /// promoting on every alternation would swap per message — deeper hits
    /// move to the front.
    pub fn on_message(&mut self, kind: &'static str, weight: usize) {
        self.msgs_total += 1;
        self.msg_weight += weight as u64;
        let same = |k: &'static str| {
            (std::ptr::eq(k.as_ptr(), kind.as_ptr()) && k.len() == kind.len()) || k == kind
        };
        for (k, c) in self.msg_by_kind.iter_mut().take(2) {
            if same(k) {
                *c += 1;
                return;
            }
        }
        match self.msg_by_kind.iter().skip(2).position(|(k, _)| same(k)) {
            Some(i) => {
                self.msg_by_kind[i + 2].1 += 1;
                self.msg_by_kind.swap(0, i + 2);
            }
            None => {
                self.msg_by_kind.push((kind, 1));
                let last = self.msg_by_kind.len() - 1;
                self.msg_by_kind.swap(0, last);
            }
        }
    }

    /// Fold another shard's collector into this one.  Node ownership is
    /// disjoint across shards, so `outstanding` entries never collide;
    /// every aggregate is either a sum or a set union.  Record order is
    /// irrelevant here — [`Collector::finish`] sorts canonically.
    pub fn absorb(&mut self, other: Collector) {
        debug_assert_eq!(self.window, other.window);
        debug_assert_eq!(self.m, other.m);
        debug_assert_eq!(self.outstanding.len(), other.outstanding.len());
        for (mine, theirs) in self.outstanding.iter_mut().zip(other.outstanding) {
            if let Some(rec) = theirs {
                debug_assert!(mine.is_none(), "node owned by two shards");
                *mine = Some(rec);
            }
        }
        self.records.extend(other.records);
        for (mine, theirs) in self.busy.iter_mut().zip(other.busy) {
            *mine += theirs;
        }
        self.msgs_total += other.msgs_total;
        self.msg_weight += other.msg_weight;
        self.cs_completed += other.cs_completed;
        for (kind, count) in other.msg_by_kind {
            match self.msg_by_kind.iter_mut().find(|(k, _)| *k == kind) {
                Some((_, c)) => *c += count,
                None => self.msg_by_kind.push((kind, count)),
            }
        }
    }

    fn fold(&mut self, rec: ReqRecord) {
        let (a, b) = self.window;
        if let (Some(g), Some(e)) = (rec.granted, rec.released) {
            // Busy-time contribution clipped to the window.
            let s = g.max(a).min(b);
            let t = e.max(a).min(b);
            if t > s {
                for r in rec.set.iter() {
                    self.busy[r] += t - s;
                }
            }
            if rec.issued >= a && rec.issued < b {
                self.cs_completed += 1;
            }
        }
        if rec.issued >= a && rec.issued < b {
            self.records.push(rec);
        }
    }

    /// Close the run at `end`: outstanding requests are folded (granted
    /// ones contribute busy time up to the window end; ungranted ones are
    /// counted as censored).  The window is clamped to the actual end so
    /// open-ended runs (threaded runtime) get a correct use-rate
    /// denominator.
    pub fn finish(mut self, algo: &str, n: usize, end: Time) -> RunResult {
        if end < self.window.1 {
            self.window.1 = end.max(self.window.0);
        }
        let mut censored = 0u64;
        let outstanding = std::mem::take(&mut self.outstanding);
        for rec in outstanding.into_iter().flatten() {
            let (a, b) = self.window;
            if rec.granted.is_some() {
                let mut rec = rec;
                rec.released = Some(end.min(b).max(rec.granted.unwrap()));
                self.fold(rec);
            } else if rec.issued >= a && rec.issued < b {
                censored += 1;
            }
        }
        debug_assert_eq!(self.busy.len(), self.m);
        // Canonical kind order: move-to-front reshuffles the table by
        // arrival pattern, so sort once here to make the reported
        // aggregation independent of message order.
        self.msg_by_kind.sort_unstable_by(|a, b| a.0.cmp(b.0));
        // Canonical record order: records accumulate in *release* order —
        // and, on a sharded run, grouped by shard — so sort by
        // `(issued, node)` (unique: one outstanding request per node) to
        // make the output independent of the execution layout.
        self.records.sort_by_key(|r| (r.issued, r.node));
        RunResult {
            algo: algo.to_string(),
            n,
            m: self.m,
            window: self.window,
            records: self.records,
            busy: self.busy,
            msgs_total: self.msgs_total,
            msg_weight: self.msg_weight,
            msg_by_kind: self.msg_by_kind,
            cs_completed: self.cs_completed,
            censored,
            events_processed: 0,
            wall_ns: 0,
            faults: FaultStats::default(),
            reliability: ReliabilityStats::default(),
            shards: 1,
            shard_events: Vec::new(),
            obs: ObsReport::default(),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn t(ms: u64) -> Time {
        Time::from_millis(ms)
    }

    #[test]
    fn use_rate_counts_window_overlap_only() {
        let mut c = Collector::new(2, 2, (t(10), t(20)));
        // Node 0 uses resource 0 from 5 to 15: 5 ms inside the window.
        c.on_issue(0, ResourceSet::singleton(0), t(4), t(4));
        c.on_grant(0, t(5));
        c.on_release(0, t(15));
        // Node 1 uses resource 1 for the whole window and beyond.
        c.on_issue(1, ResourceSet::singleton(1), t(1), t(1));
        c.on_grant(1, t(2));
        c.on_release(1, t(30));
        let res = c.finish("x", 2, t(30));
        // busy = (5 + 10) ms over a 10 ms × 2 resources window = 75 %.
        assert!((res.use_rate() - 0.75).abs() < 1e-9);
        // Neither request was issued inside the window.
        assert_eq!(res.records.len(), 0);
        assert_eq!(res.cs_completed, 0);
    }

    #[test]
    fn waiting_time_stats() {
        let mut c = Collector::new(2, 1, (t(0), t(100)));
        c.on_issue(0, ResourceSet::singleton(0), t(10), t(10));
        c.on_grant(0, t(14));
        c.on_release(0, t(20));
        c.on_issue(1, ResourceSet::singleton(0), t(20), t(20));
        c.on_grant(1, t(28));
        c.on_release(1, t(30));
        let res = c.finish("x", 2, t(100));
        let w = res.wait_stats();
        assert_eq!(w.count, 2);
        assert!((w.mean_ms - 6.0).abs() < 1e-9); // (4 + 8) / 2
        // Tail percentiles are monotone and bounded by the max sample.
        assert!(w.p95_ms <= w.p99_ms && w.p99_ms <= w.p999_ms);
        assert!(w.p999_ms <= 8.0 + 1e-9);
        assert_eq!(res.cs_completed, 2);
        assert_eq!(res.censored, 0);
    }

    #[test]
    fn serve_stats_key_by_arrival_not_issue() {
        // A request that queued 6 ms before its CS could even be issued:
        // the issue-keyed wait sees 4 ms, the arrival-keyed serving
        // latency sees the full 10 ms — the coordinated-omission gap.
        let mut c = Collector::new(1, 1, (t(0), t(100)));
        c.on_issue(0, ResourceSet::singleton(0), t(16), t(10));
        let (wait, serve) = c.on_grant(0, t(20)).unwrap();
        assert_eq!(wait, t(4));
        assert_eq!(serve, t(10));
        c.on_release(0, t(25));
        let res = c.finish("x", 1, t(100));
        assert_eq!(res.records[0].wait(), Some(t(4)));
        assert_eq!(res.records[0].serve_wait(), Some(t(10)));
        assert!((res.wait_stats().mean_ms - 4.0).abs() < 1e-9);
        assert!((res.serve_stats().mean_ms - 10.0).abs() < 1e-9);
    }

    #[test]
    fn censored_requests_counted() {
        let mut c = Collector::new(1, 1, (t(0), t(100)));
        c.on_issue(0, ResourceSet::singleton(0), t(50), t(50));
        let res = c.finish("x", 1, t(100));
        assert_eq!(res.censored, 1);
        let w = res.wait_stats();
        assert_eq!(w.count, 0);
        // Empty-sample percentiles are NaN (rendered "n/a" by `cell`).
        assert!(w.p99_ms.is_nan() && w.p999_ms.is_nan());
        assert_eq!(WaitStats::cell(w.p999_ms, 2), "n/a");
    }

    #[test]
    fn in_cs_at_end_contributes_busy_time() {
        let mut c = Collector::new(1, 1, (t(0), t(100)));
        c.on_issue(0, ResourceSet::singleton(0), t(10), t(10));
        c.on_grant(0, t(10));
        // never released: run ends at 100
        let res = c.finish("x", 1, t(100));
        assert!((res.use_rate() - 0.9).abs() < 1e-9);
    }

    #[test]
    fn buckets_cover_range() {
        let c = Collector::new(1, 1, (t(0), t(10)));
        let res = c.finish("x", 1, t(10));
        let buckets = res.wait_buckets(80, 5);
        assert_eq!(buckets.len(), 5);
        assert_eq!(buckets[0].0, 1);
        assert_eq!(buckets.last().unwrap().1, 80);
        // contiguous
        for w in buckets.windows(2) {
            assert_eq!(w[0].1 + 1, w[1].0);
        }
    }

    #[test]
    fn message_accounting() {
        let mut c = Collector::new(1, 1, (t(0), t(10)));
        c.on_message("A", 2);
        c.on_message("A", 3);
        c.on_message("B", 1);
        let res = c.finish("x", 1, t(10));
        assert_eq!(res.msgs_total, 3);
        assert_eq!(res.msg_weight, 6);
        assert_eq!(res.msg_by_kind, vec![("A", 2), ("B", 1)]);
    }

    #[test]
    fn kind_aggregation_is_order_independent() {
        // Same multiset of messages in three different arrival orders (the
        // third alternates, defeating any move-to-front locality) must
        // produce the identical reported table.
        let orders: [&[&'static str]; 3] = [
            &["Req", "Req", "Tok", "Cnt", "Tok", "Req"],
            &["Cnt", "Tok", "Tok", "Req", "Req", "Req"],
            &["Tok", "Req", "Cnt", "Req", "Tok", "Req"],
        ];
        let mut results = orders.iter().map(|order| {
            let mut c = Collector::new(1, 1, (t(0), t(10)));
            for kind in *order {
                c.on_message(kind, 1);
            }
            c.finish("x", 1, t(10)).msg_by_kind
        });
        let first = results.next().unwrap();
        assert_eq!(first, vec![("Cnt", 1), ("Req", 3), ("Tok", 2)]);
        for other in results {
            assert_eq!(first, other);
        }
    }

    #[test]
    fn kind_table_survives_duplicate_literals_at_distinct_addresses() {
        // Simulate two &'static strs with equal bytes but (potentially)
        // different addresses: a leaked String cannot alias the literal.
        let leaked: &'static str = Box::leak(String::from("A").into_boxed_str());
        let mut c = Collector::new(1, 1, (t(0), t(10)));
        c.on_message("A", 1);
        c.on_message(leaked, 1);
        c.on_message("B", 1);
        c.on_message("A", 1);
        let res = c.finish("x", 1, t(10));
        assert_eq!(res.msg_by_kind, vec![("A", 3), ("B", 1)]);
    }

    #[test]
    fn absorb_merges_shard_collectors() {
        // One run split across two "shards" (node 0 / node 1) must finish
        // to the same result as the sequential collector seeing both.
        let build = |split: bool| {
            let mut a = Collector::new(2, 2, (t(0), t(100)));
            let mut b = Collector::new(2, 2, (t(0), t(100)));
            {
                let c = &mut a;
                c.on_issue(0, ResourceSet::singleton(0), t(10), t(10));
                c.on_grant(0, t(14));
                c.on_release(0, t(20));
                c.on_message("A", 2);
            }
            {
                let c = if split { &mut b } else { &mut a };
                c.on_issue(1, ResourceSet::singleton(1), t(5), t(5));
                c.on_grant(1, t(8));
                c.on_message("A", 2);
                c.on_message("B", 1);
                // Node 1 still in CS at the end: exercises `outstanding`.
            }
            if split {
                a.absorb(b);
            }
            a.finish("x", 2, t(100))
        };
        let seq = build(false);
        let merged = build(true);
        assert_eq!(seq.cs_completed, merged.cs_completed);
        assert_eq!(seq.msgs_total, merged.msgs_total);
        assert_eq!(seq.msg_by_kind, merged.msg_by_kind);
        assert_eq!(seq.busy, merged.busy);
        assert_eq!(seq.records.len(), merged.records.len());
        for (r, s) in seq.records.iter().zip(&merged.records) {
            assert_eq!((r.node, r.issued, r.granted, r.released), (s.node, s.issued, s.granted, s.released));
        }
        // Canonical order: node 1 issued first, so it sorts first.
        assert_eq!(merged.records[0].node, 1);
    }

    #[test]
    fn events_per_sec_requires_wall_time() {
        let c = Collector::new(1, 1, (t(0), t(10)));
        let mut res = c.finish("x", 1, t(10));
        assert_eq!(res.events_per_sec(), 0.0);
        res.events_processed = 2_000;
        res.wall_ns = 1_000_000; // 1 ms
        assert!((res.events_per_sec() - 2_000_000.0).abs() < 1e-6);
    }
}
