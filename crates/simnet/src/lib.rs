//! # mra-sim — deterministic discrete-event simulation of message-passing
//! allocation protocols
//!
//! The paper evaluated its algorithms on a 32-node cluster (C++/OpenMPI,
//! 10 GbE).  This crate substitutes that testbed with a **deterministic
//! discrete-event simulator**: protocols implementing
//! [`mra_protocol::Allocator`] run unmodified over simulated reliable FIFO
//! links with configurable latency (the paper's γ ≈ 0.6 ms), driven by a
//! workload model (the paper's α, β, ρ, φ — provided by `mra-workloads`),
//! while the engine records the two metrics of the paper's §5 — **resource
//! use rate** and **request waiting time** — plus message-complexity
//! metrics the paper discusses qualitatively.
//!
//! Modules:
//!
//! * [`sim`] — the event loop ([`sim::Sim`]), virtual clock and FIFO links;
//! * [`latency`] — latency models (constant, jittered, hierarchical
//!   two-cluster "cloud" topology for the paper's future-work experiment);
//! * [`driver`] — the per-node request/CS/think lifecycle
//!   ([`driver::Workload`] is implemented by `mra-workloads`);
//! * [`metrics`] — per-request records, use-rate accounting and summaries;
//! * [`stats`] — small numerically careful helpers (mean/std/percentiles);
//! * [`obs`] — causal tracing + live metrics (re-exported from
//!   [`mra_obs`]): [`Sim::set_tracing`] / `MRA_TRACE` arm it;
//! * [`trace`] — ASCII Gantt rendering of runs (the paper's Fig. 1 / 4);
//! * [`runtime`] — the substrate-independent real-time node loop shared by
//!   the threaded runtime and `mra-net`'s TCP transport;
//! * [`threaded`] — a real-concurrency runtime (one OS thread per node,
//!   std::sync::mpsc channels) running the very same protocol code, used to
//!   validate the protocols outside the simulator.

pub mod driver;
/// Deterministic fault injection (re-exported from
/// [`mra_protocol::faults`], where the model lives so the virtual test
/// network can share it): [`faults::FaultPlan`] describes per-link
/// drop/duplicate probabilities, partitions with scheduled heal and
/// per-node pause/crash-restart windows; [`Sim::set_fault_plan`]
/// threads it through the event loop.
pub mod faults {
    pub use mra_protocol::faults::*;
}
/// The reliable-delivery session layer (re-exported from
/// [`mra_protocol::reliable`], where the per-link session protocol lives
/// so all substrates share it): [`reliable::Reliability`] configures RTO
/// and backoff; [`Sim::set_reliability`] threads it through the event
/// loop, restoring exactly-once FIFO delivery under lossy fault plans.
pub mod reliable {
    pub use mra_protocol::reliable::*;
}
pub mod latency;
pub mod metrics;
/// Causal tracing, log2-bucketed live metrics and trace analysis
/// (re-exported from [`mra_obs`], where the layer lives so all four
/// substrates — and the `mra-trace` analyzer — share one event model):
/// [`Sim::set_tracing`] arms the simulator; the runtimes arm from the
/// `MRA_TRACE` / `MRA_TRACE_FILE` environment knobs.
pub mod obs {
    pub use mra_obs::*;
}
pub mod runtime;
pub mod sim;
pub mod stats;
pub mod threaded;
pub mod trace;

pub use driver::{FixedWorkload, Workload};
pub use faults::{FaultPlan, FaultStats};
pub use latency::LatencyModel;
pub use metrics::{ReqRecord, RunResult, WaitStats};
pub use reliable::{Reliability, ReliabilityStats};
pub use runtime::{drive_node, NodeCfg, NodePort, PortEvent, RunShared};
pub use sim::{Sim, SimConfig};
pub use threaded::{run_threaded, ThreadedConfig};
pub use trace::render_gantt;
