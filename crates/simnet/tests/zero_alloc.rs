//! Microbenchmark guard: the steady-state `Deliver` dispatch path of the
//! simulator must perform **zero heap allocations** after warmup.
//!
//! The probe wires [`EchoProbe`] (Copy messages, no internal state growth)
//! into the real [`Sim`] engine with zero active nodes, so every event
//! after `init()` is a `Deliver`.  A counting global allocator then
//! asserts that thousands of steady-state steps allocate nothing: the
//! event queue reuses its free-list slab, the outbox drains in place, and
//! the collector's move-to-front kind table stays put.
//!
//! The counter is thread-local so the other tests of this binary (and the
//! libtest harness itself) cannot pollute the measurement.

use mra_protocol::testkit::EchoProbe;
use mra_sim::{FixedWorkload, LatencyModel, Sim, SimConfig};
use mra_types::Time;
use std::alloc::{GlobalAlloc, Layout, System};
use std::cell::Cell;

thread_local! {
    static ALLOCS: Cell<u64> = const { Cell::new(0) };
}

struct CountingAlloc;

/// Count every allocating entry point on the current thread; `try_with`
/// keeps the allocator infallible during TLS construction/teardown.
unsafe impl GlobalAlloc for CountingAlloc {
    unsafe fn alloc(&self, layout: Layout) -> *mut u8 {
        let _ = ALLOCS.try_with(|c| c.set(c.get() + 1));
        System.alloc(layout)
    }
    unsafe fn alloc_zeroed(&self, layout: Layout) -> *mut u8 {
        let _ = ALLOCS.try_with(|c| c.set(c.get() + 1));
        System.alloc_zeroed(layout)
    }
    unsafe fn realloc(&self, ptr: *mut u8, layout: Layout, new_size: usize) -> *mut u8 {
        let _ = ALLOCS.try_with(|c| c.set(c.get() + 1));
        System.realloc(ptr, layout, new_size)
    }
    unsafe fn dealloc(&self, ptr: *mut u8, layout: Layout) {
        System.dealloc(ptr, layout)
    }
}

#[global_allocator]
static COUNTER: CountingAlloc = CountingAlloc;

fn allocs_on_this_thread() -> u64 {
    ALLOCS.with(|c| c.get())
}

#[test]
fn steady_state_deliver_dispatch_is_allocation_free() {
    let n = 4;
    // Several balls in flight exercise the slab free list beyond the
    // single-slot case.
    let protos: Vec<EchoProbe> = (0..n).map(|me| EchoProbe::new(me, 3)).collect();
    let workloads: Vec<FixedWorkload> = (0..n)
        .map(|_| FixedWorkload {
            think: Time::from_millis(1),
            cs: Time::from_millis(1),
            m: 4,
            size: 1,
        })
        .collect();
    let mut cfg = SimConfig::quick(3);
    cfg.latency = LatencyModel::paper_lan();
    // Horizon far enough out that the ping-pong never hits it.
    cfg.measure = Time::from_secs(3600);
    cfg.drain = Time::from_secs(3600);
    // No active nodes: no Think/CsEnd events, only message deliveries.
    cfg.active_nodes = Some(0);

    let mut sim = Sim::new(protos, workloads, 4, cfg);
    sim.init();

    // Warmup: grow every buffer (outbox, heap, slab, kind table) to its
    // steady-state footprint.
    for _ in 0..2_000 {
        assert!(sim.step(), "probe ran out of events during warmup");
    }

    let before = allocs_on_this_thread();
    for _ in 0..20_000 {
        assert!(sim.step(), "probe ran out of events during measurement");
    }
    let delta = allocs_on_this_thread() - before;
    assert_eq!(
        delta, 0,
        "steady-state Deliver dispatch allocated {delta} times over 20k events"
    );
}
