//! Microbenchmark guard: the steady-state `Deliver` dispatch path of the
//! simulator must perform **zero heap allocations** after warmup.
//!
//! The probe wires [`EchoProbe`] (Copy messages, no internal state growth)
//! into the real [`Sim`] engine with zero active nodes, so every event
//! after `init()` is a `Deliver`.  A counting global allocator then
//! asserts that thousands of steady-state steps allocate nothing: the
//! event queue reuses its free-list slab, the outbox drains in place, and
//! the collector's move-to-front kind table stays put.
//!
//! The counter is thread-local so the other tests of this binary (and the
//! libtest harness itself) cannot pollute the measurement.
//!
//! The observability hooks (`mra_obs::EngineTracer`) are **compiled into**
//! every path measured here: the disarmed tests certify that a disarmed
//! tracer is a single-branch no-op that touches no memory, and the
//! armed-ring test certifies the `MRA_TRACE=ring` production mode records
//! into its pre-sized ring with zero allocations after arming — the fixed
//! allocation bound that makes always-on tracing deployable.

use mra_protocol::testkit::EchoProbe;
use mra_sim::faults::FaultPlan;
use mra_sim::obs::TraceMode;
use mra_sim::reliable::Reliability;
use mra_sim::{FixedWorkload, LatencyModel, Sim, SimConfig};
use mra_types::Time;
use std::alloc::{GlobalAlloc, Layout, System};
use std::cell::Cell;

thread_local! {
    static ALLOCS: Cell<u64> = const { Cell::new(0) };
}

struct CountingAlloc;

/// Count every allocating entry point on the current thread; `try_with`
/// keeps the allocator infallible during TLS construction/teardown.
unsafe impl GlobalAlloc for CountingAlloc {
    unsafe fn alloc(&self, layout: Layout) -> *mut u8 {
        let _ = ALLOCS.try_with(|c| c.set(c.get() + 1));
        System.alloc(layout)
    }
    unsafe fn alloc_zeroed(&self, layout: Layout) -> *mut u8 {
        let _ = ALLOCS.try_with(|c| c.set(c.get() + 1));
        System.alloc_zeroed(layout)
    }
    unsafe fn realloc(&self, ptr: *mut u8, layout: Layout, new_size: usize) -> *mut u8 {
        let _ = ALLOCS.try_with(|c| c.set(c.get() + 1));
        System.realloc(ptr, layout, new_size)
    }
    unsafe fn dealloc(&self, ptr: *mut u8, layout: Layout) {
        System.dealloc(ptr, layout)
    }
}

#[global_allocator]
static COUNTER: CountingAlloc = CountingAlloc;

fn allocs_on_this_thread() -> u64 {
    ALLOCS.with(|c| c.get())
}

#[test]
fn steady_state_deliver_dispatch_is_allocation_free() {
    assert_zero_alloc_dispatch(None, None, 3, TraceMode::Off);
}

/// The armed `MRA_TRACE=ring` hot path must be allocation-free too: the
/// ring buffer, the per-node Lamport clocks and the log2 histograms are
/// all pre-sized when tracing is armed, so recording — including ring
/// overwrite once the buffer is full — performs zero allocations over 20k
/// steady-state events.  The ring is sized well below the warmup event
/// count so the measured window runs entirely in overwrite mode, the
/// worst (and steady-state) case.
#[test]
fn steady_state_dispatch_with_armed_ring_tracing_is_allocation_free() {
    assert_zero_alloc_dispatch(None, None, 3, TraceMode::Ring(2_048));
}

/// Same guard with a [`FaultPlan`] installed: the fault admission path
/// (outage scan, partition scan, two counter-hash verdicts per frame,
/// stats counters) must not allocate either.  The plan exercises every
/// branch shape: probabilistic drop + dup on all links, a partition window
/// and a pause window scheduled far beyond the measured horizon so their
/// checks run on every event without ever killing the echo traffic.
#[test]
fn steady_state_dispatch_with_fault_plan_is_allocation_free() {
    let far = Time::from_secs(3000);
    let later = Time::from_secs(3100);
    let plan = FaultPlan::new(0xFA17)
        // Small enough that of ~120 in-flight echo balls only a handful
        // die over the measured 20k events; dup verdicts are pure counting.
        .drop_rate(0.0005)
        .dup_rate(0.2)
        .partition(vec![0, 1], far, later)
        .pause(2, far, later);
    // Fan 40: node 0 seeds 40 balls per peer = 120 concurrent ping-pongs.
    assert_zero_alloc_dispatch(Some(plan), None, 40, TraceMode::Off);
}

/// Same guard with the reliable session layer enabled over a *lossy* plan:
/// the full recovery machinery is live in steady state — per-frame
/// sequencing into pre-sized per-link ring buffers, piggybacked and
/// standalone acks, duplicate absorption by the receive window, and
/// retransmit timers cycling through the event heap — and none of it may
/// allocate.  The window and event-slab headroom are pre-sized up front
/// (`Reliability::window`, `Sim::reserve_events`), exactly how a
/// production deployment would bound its memory.
#[test]
fn steady_state_dispatch_with_reliability_over_loss_is_allocation_free() {
    let plan = FaultPlan::new(0xFA17).drop_rate(0.0005).dup_rate(0.05);
    let mut rel = Reliability::with_rto(Time::from_millis(5));
    // Cover the worst-case unacked backlog of 120 in-flight balls per
    // direction plus retransmission races.
    rel.window = 512;
    // Ring tracing rides along here as well: retransmit and fault-verdict
    // records must be as allocation-free as plain sends and recvs.
    assert_zero_alloc_dispatch(Some(plan), Some(rel), 40, TraceMode::Ring(2_048));
}

/// The sharded engine's steady state must be allocation-free too: the
/// probe runs the full fault + reliability machinery on **4 shards**
/// (one node each, so every echo crosses shards) through the cooperative
/// [`Sim::step_window`] driver — same windowed schedule as the threaded
/// one, but on this thread, where the counter can see it.  Windows drain
/// and refill the cross-shard mail buffers every iteration; after warmup
/// those buffers, the per-shard heaps and slabs, and the session tables
/// must all have reached their peak footprint.
#[test]
fn steady_state_windowed_dispatch_on_4_shards_is_allocation_free() {
    let plan = FaultPlan::new(0xFA17).drop_rate(0.0005).dup_rate(0.05);
    let mut rel = Reliability::with_rto(Time::from_millis(5));
    rel.window = 512;
    let n = 4;
    let protos: Vec<EchoProbe> = (0..n).map(|me| EchoProbe::new(me, 40)).collect();
    let workloads: Vec<FixedWorkload> = (0..n)
        .map(|_| FixedWorkload {
            think: Time::from_millis(1),
            cs: Time::from_millis(1),
            m: 4,
            size: 1,
        })
        .collect();
    let mut cfg = SimConfig::quick(3);
    cfg.latency = LatencyModel::paper_lan();
    cfg.measure = Time::from_secs(3600);
    cfg.drain = Time::from_secs(3600);
    cfg.active_nodes = Some(0);
    cfg.shards = 4;

    let mut sim = Sim::new(protos, workloads, 4, cfg);
    assert_eq!(sim.shards(), 4, "probe must actually run sharded");
    sim.set_fault_plan(plan);
    sim.set_reliability(rel);
    sim.reserve_events(8_192);
    sim.init();

    for _ in 0..2_000 {
        assert!(sim.step_window(), "probe ran out of events during warmup");
    }

    let before = allocs_on_this_thread();
    for _ in 0..5_000 {
        assert!(sim.step_window(), "probe ran out of events during measurement");
    }
    let delta = allocs_on_this_thread() - before;
    assert_eq!(
        delta, 0,
        "steady-state windowed dispatch allocated {delta} times over 5k windows"
    );
}

fn assert_zero_alloc_dispatch(
    plan: Option<FaultPlan>,
    reliability: Option<Reliability>,
    fan: u64,
    trace: TraceMode,
) {
    let n = 4;
    // Several balls in flight exercise the slab free list beyond the
    // single-slot case.
    let protos: Vec<EchoProbe> = (0..n).map(|me| EchoProbe::new(me, fan)).collect();
    let workloads: Vec<FixedWorkload> = (0..n)
        .map(|_| FixedWorkload {
            think: Time::from_millis(1),
            cs: Time::from_millis(1),
            m: 4,
            size: 1,
        })
        .collect();
    let mut cfg = SimConfig::quick(3);
    cfg.latency = LatencyModel::paper_lan();
    // Horizon far enough out that the ping-pong never hits it.
    cfg.measure = Time::from_secs(3600);
    cfg.drain = Time::from_secs(3600);
    // No active nodes: no Think/CsEnd events, only message deliveries.
    cfg.active_nodes = Some(0);

    let mut sim = Sim::new(protos, workloads, 4, cfg);
    if let Some(p) = plan {
        sim.set_fault_plan(p);
    }
    if let Some(r) = reliability {
        sim.set_reliability(r);
        // Headroom for ack events and retransmission bursts: the event
        // population peak must land inside pre-sized buffers.
        sim.reserve_events(8_192);
    }
    sim.set_tracing(trace);
    sim.init();

    // Warmup: grow every buffer (outbox, heap, slab, kind table) to its
    // steady-state footprint.
    for _ in 0..4_000 {
        assert!(sim.step(), "probe ran out of events during warmup");
    }

    let before = allocs_on_this_thread();
    for _ in 0..20_000 {
        assert!(sim.step(), "probe ran out of events during measurement");
    }
    let delta = allocs_on_this_thread() - before;
    assert_eq!(
        delta, 0,
        "steady-state Deliver dispatch allocated {delta} times over 20k events"
    );
}
