//! Property-based tests of the discrete-event simulator itself: for
//! arbitrary latency models, workload parameters and seeds, runs are
//! deterministic, conserve requests, and never violate safety (monitored
//! inside the engine).

use mra_baselines::Incremental;
use mra_core::LassConfig;
use mra_sim::{FixedWorkload, LatencyModel, Sim, SimConfig};
use mra_types::Time;
use proptest::prelude::*;

fn workloads(n: usize, m: usize, size: usize, think_us: u64, cs_us: u64) -> Vec<FixedWorkload> {
    (0..n)
        .map(|_| FixedWorkload {
            think: Time::from_micros(think_us),
            cs: Time::from_micros(cs_us),
            m,
            size,
        })
        .collect()
}

fn latency_strategy() -> impl Strategy<Value = LatencyModel> {
    prop_oneof![
        Just(LatencyModel::Zero),
        (10u64..2000).prop_map(|us| LatencyModel::Constant(Time::from_micros(us))),
        (10u64..500, 500u64..3000).prop_map(|(lo, hi)| LatencyModel::Uniform {
            lo: Time::from_micros(lo),
            hi: Time::from_micros(hi),
        }),
    ]
}

fn quick_cfg(seed: u64, latency: LatencyModel) -> SimConfig {
    SimConfig {
        latency,
        seed,
        warmup: Time::from_millis(20),
        measure: Time::from_millis(300),
        drain: Time::from_millis(400),
        active_nodes: None,
        max_events: 50_000_000,
        shards: 1,
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    /// Whatever the latency model and parameters: the run completes, the
    /// metrics are internally consistent and safety held throughout.
    #[test]
    fn lass_runs_under_any_latency(
        seed in any::<u64>(),
        latency in latency_strategy(),
        n in 2usize..6,
        m in 2usize..10,
        size in 1usize..4,
        think_us in 100u64..3000,
        cs_us in 100u64..3000,
    ) {
        let size = size.min(m);
        let cfg = LassConfig::with_loan(n, m);
        let res = Sim::new(
            cfg.build_nodes(),
            workloads(n, m, size, think_us, cs_us),
            m,
            quick_cfg(seed, latency),
        )
        .run();
        prop_assert!(res.cs_completed > 0);
        let u = res.use_rate();
        prop_assert!((0.0..=1.0).contains(&u), "use rate {u}");
        // Every granted record has grant ≥ issue and release ≥ grant.
        for rec in &res.records {
            if let Some(g) = rec.granted {
                prop_assert!(g >= rec.issued);
                if let Some(e) = rec.released {
                    prop_assert!(e >= g);
                }
            }
        }
        // cs_completed counts exactly the granted+released in-window issues.
        let counted = res
            .records
            .iter()
            .filter(|r| r.granted.is_some() && r.released.is_some())
            .count() as u64;
        prop_assert!(res.cs_completed <= counted + res.censored + 64);
    }

    /// Determinism: identical seeds give byte-identical metrics, for any
    /// algorithm and latency.
    #[test]
    fn determinism_under_any_latency(seed in any::<u64>(), jitter in any::<bool>()) {
        let latency = if jitter {
            LatencyModel::Uniform {
                lo: Time::from_micros(50),
                hi: Time::from_millis(2),
            }
        } else {
            LatencyModel::paper_lan()
        };
        let go = || {
            let res = Sim::new(
                Incremental::build_nodes(4, 6),
                workloads(4, 6, 2, 500, 800),
                6,
                quick_cfg(seed, latency.clone()),
            )
            .run();
            (res.cs_completed, res.msgs_total, res.msg_weight)
        };
        prop_assert_eq!(go(), go());
    }

    /// The use rate can never exceed the workload ceiling
    /// n·size / m (at most n·size of m resources ever in use).
    #[test]
    fn use_rate_bounded_by_structure(seed in any::<u64>(), n in 2usize..5, m in 4usize..10) {
        let size = 2usize.min(m);
        let cfg = LassConfig::without_loan(n, m);
        let res = Sim::new(
            cfg.build_nodes(),
            workloads(n, m, size, 100, 2000),
            m,
            quick_cfg(seed, LatencyModel::Zero),
        )
        .run();
        let ceiling = (n * size) as f64 / m as f64;
        prop_assert!(
            res.use_rate() <= ceiling + 1e-9,
            "use rate {} above structural ceiling {}",
            res.use_rate(),
            ceiling
        );
    }
}
