//! Property-based tests of the mutual-exclusion substrates: mutual
//! exclusion, liveness and token conservation under arbitrary shapes and
//! interleavings, for all three algorithms.

use mra_mutex::{MutexAllocator, NaimiTrehel, Raymond, SingleMutex, SuzukiKasami};
use mra_protocol::testkit::{run_random_workload, ExerciseCfg, VirtualNet};
use proptest::prelude::*;
use rand::rngs::StdRng;
use rand::SeedableRng;

fn cfg(rounds: usize) -> ExerciseCfg {
    ExerciseCfg {
        rounds_per_node: rounds,
        max_req_size: 1,
        m: 1,
        hold_steps: 2,
        active_nodes: None,
        step_cap: 1_000_000,
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(32))]

    #[test]
    fn naimi_trehel_excludes(seed in any::<u64>(), n in 2usize..8, elected in 0usize..8) {
        let elected = elected % n;
        let nodes: Vec<_> = (0..n)
            .map(|i| {
                let mut nt = NaimiTrehel::new(i, elected);
                if i == elected {
                    nt.give_initial_token(());
                }
                MutexAllocator::new(nt, "nt")
            })
            .collect();
        let mut net = VirtualNet::new(nodes, 1);
        let mut rng = StdRng::seed_from_u64(seed);
        let rep = run_random_workload(&mut net, &cfg(4), &mut rng);
        prop_assert_eq!(rep.cs_completed as usize, 4 * n);
        prop_assert_eq!(rep.max_concurrency, 1);
        // Exactly one token survives.
        let holders = (0..n).filter(|&i| net.node(i).inner().holds_token()).count();
        prop_assert_eq!(holders, 1);
    }

    #[test]
    fn suzuki_kasami_excludes(seed in any::<u64>(), n in 2usize..8) {
        let nodes: Vec<_> = (0..n)
            .map(|i| MutexAllocator::new(SuzukiKasami::new(i, n, 0), "sk"))
            .collect();
        let mut net = VirtualNet::new(nodes, 1);
        let mut rng = StdRng::seed_from_u64(seed);
        let rep = run_random_workload(&mut net, &cfg(4), &mut rng);
        prop_assert_eq!(rep.cs_completed as usize, 4 * n);
        prop_assert_eq!(rep.max_concurrency, 1);
        let holders = (0..n).filter(|&i| net.node(i).inner().holds_token()).count();
        prop_assert_eq!(holders, 1);
    }

    #[test]
    fn raymond_excludes(seed in any::<u64>(), n in 2usize..8, root in 0usize..8) {
        let root = root % n;
        let nodes: Vec<_> = Raymond::build_star(n, root)
            .into_iter()
            .map(|r| MutexAllocator::new(r, "raymond"))
            .collect();
        let mut net = VirtualNet::new(nodes, 1);
        let mut rng = StdRng::seed_from_u64(seed);
        let rep = run_random_workload(&mut net, &cfg(4), &mut rng);
        prop_assert_eq!(rep.cs_completed as usize, 4 * n);
        prop_assert_eq!(rep.max_concurrency, 1);
        let holders = (0..n).filter(|&i| net.node(i).inner().holds_token()).count();
        prop_assert_eq!(holders, 1);
    }
}
