//! Raymond's tree-based mutual exclusion algorithm.
//!
//! Reference: K. Raymond, *A tree-based algorithm for distributed mutual
//! exclusion* (ACM TOCS 1989) — citation \[20\] of the paper.  Unlike
//! Naimi-Trehel's dynamic "last requester" tree, Raymond's algorithm keeps
//! a **static** spanning tree and routes both requests and the token along
//! its edges; each node keeps a FIFO queue of the neighbors (or itself)
//! whose requests it still has to serve.
//!
//! Included as an alternative substrate for the incremental baseline and
//! for substrate-comparison benchmarks: it trades Naimi-Trehel's amortized
//! O(log N) dynamic paths for bounded-degree static routing.

use crate::SingleMutex;
use mra_protocol::WireMsg;
use mra_types::NodeId;
use std::collections::VecDeque;
use std::fmt;

/// Wire messages of Raymond's algorithm.
#[derive(Clone)]
pub enum RayMsg {
    /// Ask the parent (token direction) for the token.
    Request,
    /// The token, moving one tree edge.
    Token,
}

impl fmt::Debug for RayMsg {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            RayMsg::Request => write!(f, "RayRequest"),
            RayMsg::Token => write!(f, "RayToken"),
        }
    }
}

impl WireMsg for RayMsg {
    fn kind(&self) -> &'static str {
        match self {
            RayMsg::Request => "Ray::Request",
            RayMsg::Token => "Ray::Token",
        }
    }
}

/// One node's state in one Raymond instance.
#[derive(Clone)]
pub struct Raymond {
    me: NodeId,
    /// Tree neighbor toward the token (`None` iff this node holds it).
    holder_dir: Option<NodeId>,
    /// FIFO of requesters to serve: tree neighbors, or `me` itself.
    queue: VecDeque<NodeId>,
    /// Has a Request already been sent toward the holder?
    asked: bool,
    /// True while this node is in its critical section.
    in_cs: bool,
    requesting: bool,
}

impl Raymond {
    /// Create node `me` whose parent on the (static) tree path toward the
    /// initial token holder is `parent` (`None` for the holder itself).
    ///
    /// For a star topology rooted at the elected node, pass
    /// `Some(elected)` on every other node.
    pub fn new(me: NodeId, parent: Option<NodeId>) -> Self {
        Raymond {
            me,
            holder_dir: parent,
            queue: VecDeque::new(),
            asked: false,
            in_cs: false,
            requesting: false,
        }
    }

    /// Build a star-shaped system of `n` nodes rooted at `elected`.
    pub fn build_star(n: usize, elected: NodeId) -> Vec<Raymond> {
        (0..n)
            .map(|i| Raymond::new(i, (i != elected).then_some(elected)))
            .collect()
    }

    fn forward_request(&mut self, out: &mut dyn FnMut(NodeId, RayMsg)) {
        if !self.asked && !self.queue.is_empty() {
            if let Some(dir) = self.holder_dir {
                out(dir, RayMsg::Request);
                self.asked = true;
            }
        }
    }

    /// Serve the queue head if we hold the token and are not using it.
    /// Returns true if `me` just acquired the CS.
    fn serve(&mut self, out: &mut dyn FnMut(NodeId, RayMsg)) -> bool {
        if self.holder_dir.is_some() || self.in_cs {
            return false;
        }
        match self.queue.pop_front() {
            None => false,
            Some(next) if next == self.me => {
                self.in_cs = true;
                true
            }
            Some(next) => {
                out(next, RayMsg::Token);
                self.holder_dir = Some(next);
                self.asked = false;
                // If we still have queued requesters, immediately chase
                // the token on their behalf.
                self.forward_request(out);
                false
            }
        }
    }
}

impl SingleMutex for Raymond {
    type Msg = RayMsg;

    fn request(&mut self, out: &mut dyn FnMut(NodeId, RayMsg)) -> bool {
        assert!(!self.requesting, "Raymond node {} requested twice", self.me);
        self.requesting = true;
        self.queue.push_back(self.me);
        self.forward_request(out);
        self.serve(out)
    }

    fn on_message(
        &mut self,
        from: NodeId,
        msg: RayMsg,
        out: &mut dyn FnMut(NodeId, RayMsg),
    ) -> bool {
        match msg {
            RayMsg::Request => {
                self.queue.push_back(from);
                self.forward_request(out);
                self.serve(out)
            }
            RayMsg::Token => {
                debug_assert_eq!(self.holder_dir, Some(from), "token from off-path");
                self.holder_dir = None;
                self.asked = false;
                self.serve(out)
            }
        }
    }

    fn release(&mut self, out: &mut dyn FnMut(NodeId, RayMsg)) {
        assert!(self.in_cs, "Raymond release outside CS");
        self.in_cs = false;
        self.requesting = false;
        self.serve(out);
    }

    fn holds_token(&self) -> bool {
        self.holder_dir.is_none()
    }

    fn is_requesting(&self) -> bool {
        self.requesting
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::MutexAllocator;
    use mra_protocol::testkit::{run_random_workload, ExerciseCfg, VirtualNet};
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn star_net(n: usize) -> VirtualNet<MutexAllocator<Raymond>> {
        let nodes = Raymond::build_star(n, 0)
            .into_iter()
            .map(|r| MutexAllocator::new(r, "raymond"))
            .collect();
        VirtualNet::new(nodes, 1)
    }

    #[test]
    fn root_acquires_immediately() {
        let mut nodes = Raymond::build_star(3, 0);
        let mut sunk: Vec<(NodeId, RayMsg)> = Vec::new();
        let got = SingleMutex::request(&mut nodes[0], &mut |to, m| sunk.push((to, m)));
        assert!(got);
        assert!(sunk.is_empty());
    }

    #[test]
    fn leaf_chases_token_through_root() {
        let mut nodes = Raymond::build_star(3, 0);
        let mut sunk: Vec<(NodeId, RayMsg)> = Vec::new();
        let got = SingleMutex::request(&mut nodes[1], &mut |to, m| sunk.push((to, m)));
        assert!(!got);
        assert_eq!(sunk.len(), 1);
        assert_eq!(sunk[0].0, 0);
        // Root serves: token flows to node 1.
        let mut reply: Vec<(NodeId, RayMsg)> = Vec::new();
        let got = nodes[0].on_message(1, sunk.pop().unwrap().1, &mut |to, m| reply.push((to, m)));
        assert!(!got);
        assert!(matches!(reply[0], (1, RayMsg::Token)));
        let mut empty: Vec<(NodeId, RayMsg)> = Vec::new();
        let got = nodes[1].on_message(0, reply.pop().unwrap().1, &mut |to, m| empty.push((to, m)));
        assert!(got, "leaf acquired");
        assert!(empty.is_empty());
    }

    #[test]
    fn random_runs_safe_and_live() {
        for seed in 0..10 {
            let mut net = star_net(6);
            let mut rng = StdRng::seed_from_u64(seed);
            let cfg = ExerciseCfg {
                rounds_per_node: 6,
                max_req_size: 1,
                m: 1,
                hold_steps: 2,
                active_nodes: None,
                step_cap: 500_000,
            };
            let rep = run_random_workload(&mut net, &cfg, &mut rng);
            assert_eq!(rep.cs_completed, 36, "seed {seed}");
            assert_eq!(rep.max_concurrency, 1);
        }
    }

    #[test]
    fn exactly_one_token_when_quiet() {
        let mut net = star_net(5);
        let mut rng = StdRng::seed_from_u64(77);
        let cfg = ExerciseCfg {
            rounds_per_node: 5,
            max_req_size: 1,
            m: 1,
            hold_steps: 1,
            active_nodes: None,
            step_cap: 500_000,
        };
        run_random_workload(&mut net, &cfg, &mut rng);
        let holders = (0..5)
            .filter(|&i| net.node(i).inner().holds_token())
            .count();
        assert_eq!(holders, 1);
    }
}
