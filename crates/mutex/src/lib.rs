//! Distributed single-resource mutual-exclusion substrates.
//!
//! The multi-resource baselines of the paper are built on classical mutual
//! exclusion algorithms:
//!
//! * [`naimi_trehel`] — the Naimi-Trehel token algorithm (O(log N) average
//!   message complexity, dynamic tree of "probable owner" pointers).  The
//!   **incremental** baseline runs `M` instances of it (one per resource)
//!   and **Bouabdallah–Laforest** uses one instance to circulate its control
//!   token (the paper's global lock).
//! * [`suzuki_kasami`] — the Suzuki-Kasami broadcast token algorithm
//!   (N − 1 requests + 1 token message per CS).  The Maddi baseline
//!   ("token based solutions to m resources allocation", SAC'97) is
//!   described by the paper as multiple instances of it.
//! * [`raymond`] — Raymond's static-tree token algorithm (paper citation
//!   \[20\]), provided as an alternative substrate for comparisons.
//!
//! Both are written *embedding-friendly*: handlers emit messages through a
//! caller-provided sink instead of owning a network handle, so a
//! multi-resource protocol can multiplex many instances over one message
//! type.  [`adapter::MutexAllocator`] lifts any [`SingleMutex`] into the
//! workspace-wide [`mra_protocol::Allocator`] interface for direct testing.

pub mod adapter;
pub mod naimi_trehel;
pub mod raymond;
pub mod suzuki_kasami;
pub mod wire;

pub use adapter::MutexAllocator;
pub use naimi_trehel::{NaimiTrehel, NtMsg};
pub use raymond::{RayMsg, Raymond};
pub use suzuki_kasami::{SkMsg, SkToken, SuzukiKasami};

use mra_types::NodeId;

/// A single-resource distributed mutual-exclusion protocol with an
/// embeddable, sink-based interface.
///
/// `out` receives `(destination, message)` pairs; handlers return `true`
/// when the caller has just acquired the token (and may enter its critical
/// section).
pub trait SingleMutex {
    /// Wire message type of this mutex protocol.
    type Msg;

    /// Ask for the critical section.  Returns `true` if the token is already
    /// held (immediate acquisition).
    fn request(&mut self, out: &mut dyn FnMut(NodeId, Self::Msg)) -> bool;

    /// Deliver a protocol message.  Returns `true` if this message completed
    /// an acquisition.
    fn on_message(
        &mut self,
        from: NodeId,
        msg: Self::Msg,
        out: &mut dyn FnMut(NodeId, Self::Msg),
    ) -> bool;

    /// Leave the critical section.
    fn release(&mut self, out: &mut dyn FnMut(NodeId, Self::Msg));

    /// Does this node currently hold the token?
    fn holds_token(&self) -> bool;

    /// Is this node waiting for the token?
    fn is_requesting(&self) -> bool;
}
