//! Binary wire codecs for the mutual-exclusion substrate messages.
//!
//! [`NtMsg`] is generic over its token payload, so its codec requires the
//! payload to be [`WireCodec`] too — embedders (Bouabdallah–Laforest's
//! control token, the incremental baseline's `()` payload) provide theirs
//! and get the tree traffic encoding for free.
//!
//! ```text
//! NtMsg<T>  := 0 origin:u32 | 1 T
//! SkToken   := ln:vec<u64> queue:vecdeque<u32>
//! SkMsg     := 0 origin:u32 seq:u64 | 1 SkToken
//! RayMsg    := 0 (Request) | 1 (Token)
//! ```

use crate::naimi_trehel::NtMsg;
use crate::raymond::RayMsg;
use crate::suzuki_kasami::{SkMsg, SkToken};
use mra_protocol::wire::{put_u64, put_usize, DecodeError, WireReader};
use mra_protocol::WireCodec;

impl<T: WireCodec> WireCodec for NtMsg<T> {
    fn encode(&self, out: &mut Vec<u8>) {
        match self {
            NtMsg::Request { origin } => {
                out.push(0);
                put_usize(out, *origin);
            }
            NtMsg::Token(t) => {
                out.push(1);
                t.encode(out);
            }
        }
    }

    fn decode(r: &mut WireReader<'_>) -> Result<Self, DecodeError> {
        match r.get_u8("NtMsg tag")? {
            0 => Ok(NtMsg::Request { origin: r.get_usize("NtMsg.origin")? }),
            1 => Ok(NtMsg::Token(T::decode(r)?)),
            tag => Err(DecodeError::BadTag { what: "NtMsg", tag }),
        }
    }
}

impl WireCodec for SkToken {
    fn encode(&self, out: &mut Vec<u8>) {
        self.ln.encode(out);
        self.queue.encode(out);
    }

    fn decode(r: &mut WireReader<'_>) -> Result<Self, DecodeError> {
        Ok(SkToken {
            ln: WireCodec::decode(r)?,
            queue: WireCodec::decode(r)?,
        })
    }
}

impl WireCodec for SkMsg {
    fn encode(&self, out: &mut Vec<u8>) {
        match self {
            SkMsg::Request { origin, seq } => {
                out.push(0);
                put_usize(out, *origin);
                put_u64(out, *seq);
            }
            SkMsg::Token(t) => {
                out.push(1);
                t.encode(out);
            }
        }
    }

    fn decode(r: &mut WireReader<'_>) -> Result<Self, DecodeError> {
        match r.get_u8("SkMsg tag")? {
            0 => Ok(SkMsg::Request {
                origin: r.get_usize("SkMsg.origin")?,
                seq: r.get_u64("SkMsg.seq")?,
            }),
            1 => Ok(SkMsg::Token(SkToken::decode(r)?)),
            tag => Err(DecodeError::BadTag { what: "SkMsg", tag }),
        }
    }
}

impl WireCodec for RayMsg {
    fn encode(&self, out: &mut Vec<u8>) {
        out.push(match self {
            RayMsg::Request => 0,
            RayMsg::Token => 1,
        });
    }

    fn decode(r: &mut WireReader<'_>) -> Result<Self, DecodeError> {
        match r.get_u8("RayMsg tag")? {
            0 => Ok(RayMsg::Request),
            1 => Ok(RayMsg::Token),
            tag => Err(DecodeError::BadTag { what: "RayMsg", tag }),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::collections::VecDeque;
    use std::fmt;

    fn roundtrip_bytes<T: WireCodec + fmt::Debug>(v: &T) {
        let bytes = v.to_bytes();
        let back = T::from_bytes(&bytes).unwrap();
        assert_eq!(back.to_bytes(), bytes);
        assert_eq!(format!("{back:?}"), format!("{v:?}"));
    }

    #[test]
    fn nt_roundtrips() {
        roundtrip_bytes(&NtMsg::<u64>::Request { origin: 5 });
        roundtrip_bytes(&NtMsg::Token(u64::MAX));
        roundtrip_bytes(&NtMsg::Token(()));
    }

    #[test]
    fn sk_roundtrips() {
        roundtrip_bytes(&SkMsg::Request { origin: 3, seq: u64::MAX });
        roundtrip_bytes(&SkMsg::Token(SkToken {
            ln: vec![0, u64::MAX, 7],
            queue: VecDeque::from([2usize, 0, 1]),
        }));
    }

    #[test]
    fn ray_roundtrips() {
        roundtrip_bytes(&RayMsg::Request);
        roundtrip_bytes(&RayMsg::Token);
        assert!(RayMsg::from_bytes(&[2]).is_err());
    }
}
