//! The Naimi-Trehel token-based mutual exclusion algorithm.
//!
//! Reference: M. Naimi, M. Trehel, *An improvement of the log(n) distributed
//! algorithm for mutual exclusion* (ICDCS 1987) — citation \[18\] of the
//! paper.  The paper's **incremental** baseline uses `M` instances of it and
//! **Bouabdallah–Laforest** uses one instance to manage its control token.
//!
//! The algorithm maintains two distributed structures:
//!
//! * a dynamic logical tree of `father` ("probable owner") pointers whose
//!   root is the last requester — requests are forwarded along `father`
//!   pointers and every forwarder re-points its `father` to the new
//!   requester, which keeps paths short (O(log N) amortized);
//! * a distributed queue of pending requests threaded through `next`
//!   pointers — the token travels along `next` on release.
//!
//! The token is generic over a payload `T` so that embedding protocols can
//! piggyback state on it (Bouabdallah–Laforest's control token carries the
//! per-resource vector).

use crate::SingleMutex;
use mra_protocol::WireMsg;
use mra_types::NodeId;
use std::fmt;

/// Wire messages of the Naimi-Trehel algorithm.
#[derive(Clone)]
pub enum NtMsg<T> {
    /// `Request { origin }`: forwarded along the `father` chain until it
    /// reaches the root (last requester or idle holder).
    Request {
        /// The node asking for the token.
        origin: NodeId,
    },
    /// The token itself, carrying the embedded payload.
    Token(T),
}

impl<T> fmt::Debug for NtMsg<T> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            NtMsg::Request { origin } => write!(f, "NtRequest(origin={origin})"),
            NtMsg::Token(_) => write!(f, "NtToken"),
        }
    }
}

impl<T: Clone + Send + 'static> WireMsg for NtMsg<T> {
    fn kind(&self) -> &'static str {
        match self {
            NtMsg::Request { .. } => "NT::Request",
            NtMsg::Token(_) => "NT::Token",
        }
    }
}

/// One node's state in one Naimi-Trehel instance.
#[derive(Clone)]
pub struct NaimiTrehel<T> {
    me: NodeId,
    /// Probable owner: `None` iff this node believes it is the tree root.
    father: Option<NodeId>,
    /// Successor in the distributed waiting queue.
    next: Option<NodeId>,
    /// True between `request` and `release`.
    requesting: bool,
    /// The token payload, when held.
    token: Option<T>,
}

impl<T> NaimiTrehel<T> {
    /// Create the instance for node `me`.  `elected` initially holds the
    /// token (and must call [`NaimiTrehel::give_initial_token`]); everyone
    /// else points their `father` at it.
    pub fn new(me: NodeId, elected: NodeId) -> Self {
        NaimiTrehel {
            me,
            father: if me == elected { None } else { Some(elected) },
            next: None,
            requesting: false,
            token: None,
        }
    }

    /// Install the initial token payload on the elected node.
    ///
    /// # Panics
    /// If called on a node whose `father` is set (not the elected root).
    pub fn give_initial_token(&mut self, payload: T) {
        assert!(self.father.is_none(), "initial token on a non-root node");
        assert!(self.token.is_none(), "token installed twice");
        self.token = Some(payload);
    }

    /// Read-only access to the held token payload.
    pub fn token(&self) -> Option<&T> {
        self.token.as_ref()
    }

    /// Mutable access to the held token payload (embedders update
    /// piggybacked state in place).
    pub fn token_mut(&mut self) -> Option<&mut T> {
        self.token.as_mut()
    }

    /// This node's current probable-owner pointer (test/diagnostic hook).
    pub fn father(&self) -> Option<NodeId> {
        self.father
    }

    /// Ask for the token.  Returns `true` if it is already here (this node
    /// was the idle root), in which case the caller is in its critical
    /// section immediately.
    pub fn request(&mut self, out: &mut dyn FnMut(NodeId, NtMsg<T>)) -> bool {
        assert!(!self.requesting, "NT node {} requested twice", self.me);
        self.requesting = true;
        match self.father {
            None => {
                debug_assert!(
                    self.token.is_some(),
                    "root without token cannot be idle (node {})",
                    self.me
                );
                true
            }
            Some(f) => {
                out(f, NtMsg::Request { origin: self.me });
                // We become a root-in-waiting: the last requester is the
                // root of the (new) tree.
                self.father = None;
                false
            }
        }
    }

    /// Deliver a message.  Returns `true` when the token has just arrived
    /// for our own pending request.
    pub fn on_message(
        &mut self,
        msg: NtMsg<T>,
        out: &mut dyn FnMut(NodeId, NtMsg<T>),
    ) -> bool {
        match msg {
            NtMsg::Request { origin } => {
                match self.father {
                    None => {
                        if self.requesting {
                            // We are the last requester: `origin` queues
                            // behind us.
                            debug_assert!(
                                self.next.is_none(),
                                "NT: second successor for node {}",
                                self.me
                            );
                            self.next = Some(origin);
                        } else {
                            // Idle holder: hand the token over directly.
                            let t = self
                                .token
                                .take()
                                .expect("idle NT root must hold the token");
                            out(origin, NtMsg::Token(t));
                        }
                    }
                    Some(f) => out(f, NtMsg::Request { origin }),
                }
                // In all cases the requester becomes the new probable owner.
                self.father = Some(origin);
                false
            }
            NtMsg::Token(t) => {
                debug_assert!(self.token.is_none(), "duplicate NT token");
                self.token = Some(t);
                // The token only travels toward requesters, so this node
                // must be waiting for it.
                debug_assert!(self.requesting, "NT token arrived unrequested");
                self.requesting
            }
        }
    }

    /// Leave the critical section: pass the token to the queued successor,
    /// if any; otherwise keep it (idle holder).
    pub fn release(&mut self, out: &mut dyn FnMut(NodeId, NtMsg<T>)) {
        assert!(self.requesting, "NT release without request");
        assert!(self.token.is_some(), "NT release without token");
        self.requesting = false;
        if let Some(nxt) = self.next.take() {
            let t = self.token.take().expect("checked above");
            out(nxt, NtMsg::Token(t));
        }
    }

    /// Does this node currently hold the token?
    pub fn holds_token(&self) -> bool {
        self.token.is_some()
    }

    /// Is this node waiting for (or using) the token?
    pub fn is_requesting(&self) -> bool {
        self.requesting
    }
}

impl<T: Clone + Send + 'static> SingleMutex for NaimiTrehel<T>
where
    T: Default,
{
    type Msg = NtMsg<T>;

    fn request(&mut self, out: &mut dyn FnMut(NodeId, NtMsg<T>)) -> bool {
        NaimiTrehel::request(self, out)
    }

    fn on_message(
        &mut self,
        _from: NodeId,
        msg: NtMsg<T>,
        out: &mut dyn FnMut(NodeId, NtMsg<T>),
    ) -> bool {
        NaimiTrehel::on_message(self, msg, out)
    }

    fn release(&mut self, out: &mut dyn FnMut(NodeId, NtMsg<T>)) {
        NaimiTrehel::release(self, out)
    }

    fn holds_token(&self) -> bool {
        NaimiTrehel::holds_token(self)
    }

    fn is_requesting(&self) -> bool {
        NaimiTrehel::is_requesting(self)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::collections::VecDeque;

    /// Tiny synchronous harness: delivers NT messages FIFO globally.
    struct Ring {
        nodes: Vec<NaimiTrehel<u32>>,
        queue: VecDeque<(NodeId, NtMsg<u32>)>,
        acquired: Vec<bool>,
    }

    impl Ring {
        fn new(n: usize) -> Self {
            let mut nodes: Vec<NaimiTrehel<u32>> =
                (0..n).map(|i| NaimiTrehel::new(i, 0)).collect();
            nodes[0].give_initial_token(42);
            Ring {
                nodes,
                queue: VecDeque::new(),
                acquired: vec![false; n],
            }
        }

        fn request(&mut self, i: NodeId) {
            let mut q = std::mem::take(&mut self.queue);
            let got = self.nodes[i].request(&mut |to, m| q.push_back((to, m)));
            self.queue = q;
            if got {
                self.acquired[i] = true;
            }
        }

        fn release(&mut self, i: NodeId) {
            let mut q = std::mem::take(&mut self.queue);
            self.nodes[i].release(&mut |to, m| q.push_back((to, m)));
            self.queue = q;
            self.acquired[i] = false;
        }

        fn pump(&mut self) {
            while let Some((to, msg)) = self.queue.pop_front() {
                let mut q = std::mem::take(&mut self.queue);
                let got = self.nodes[to].on_message(msg, &mut |t, m| q.push_back((t, m)));
                self.queue = q;
                if got {
                    self.acquired[to] = true;
                }
            }
        }

        fn holders(&self) -> Vec<NodeId> {
            (0..self.nodes.len())
                .filter(|&i| self.nodes[i].holds_token())
                .collect()
        }
    }

    #[test]
    fn initial_root_acquires_immediately() {
        let mut ring = Ring::new(3);
        ring.request(0);
        assert!(ring.acquired[0]);
        ring.release(0);
        assert_eq!(ring.holders(), vec![0]); // keeps token while idle
    }

    #[test]
    fn token_travels_to_requester() {
        let mut ring = Ring::new(3);
        ring.request(2);
        ring.pump();
        assert!(ring.acquired[2]);
        assert_eq!(ring.holders(), vec![2]);
        // Payload travelled with the token.
        assert_eq!(ring.nodes[2].token(), Some(&42));
    }

    #[test]
    fn queue_chains_through_next_pointers() {
        let mut ring = Ring::new(4);
        ring.request(0); // holder uses it
        ring.request(1);
        ring.pump();
        ring.request(2);
        ring.pump();
        ring.request(3);
        ring.pump();
        assert!(ring.acquired[0]);
        assert!(!ring.acquired[1] && !ring.acquired[2] && !ring.acquired[3]);
        ring.release(0);
        ring.pump();
        assert!(ring.acquired[1]);
        ring.release(1);
        ring.pump();
        assert!(ring.acquired[2]);
        ring.release(2);
        ring.pump();
        assert!(ring.acquired[3]);
        ring.release(3);
        ring.pump();
        assert_eq!(ring.holders(), vec![3]);
    }

    #[test]
    fn mutual_exclusion_over_many_rounds() {
        let n = 5;
        let mut ring = Ring::new(n);
        // Simple deterministic schedule: everyone requests, pump, the unique
        // acquirer releases; repeat.
        for round in 0..10 {
            for i in 0..n {
                if !ring.nodes[i].is_requesting() {
                    ring.request(i);
                }
            }
            ring.pump();
            let owners: Vec<_> = (0..n).filter(|&i| ring.acquired[i]).collect();
            assert_eq!(owners.len(), 1, "round {round}: owners = {owners:?}");
            ring.release(owners[0]);
            ring.pump();
            // After a release+pump someone else acquired (or nobody if all done).
        }
    }

    #[test]
    #[should_panic(expected = "requested twice")]
    fn double_request_panics() {
        let mut ring = Ring::new(2);
        ring.request(1);
        ring.request(1);
    }
}
