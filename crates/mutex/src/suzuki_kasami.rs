//! The Suzuki-Kasami broadcast token mutual exclusion algorithm.
//!
//! Reference: I. Suzuki, T. Kasami, *A distributed mutual exclusion
//! algorithm* (ACM TOCS 1985) — citation \[28\] of the paper.  The Maddi
//! baseline ("token based solutions to m resources allocation") is described
//! by the paper as multiple instances of this algorithm, so it is the
//! canonical representative of the broadcast family.
//!
//! Each request is broadcast to all other nodes with a per-node sequence
//! number `rn[i]`; the token carries `ln[i]`, the sequence number of the
//! last satisfied request of each node, plus a FIFO queue of nodes with
//! outstanding (`rn[i] == ln[i] + 1`) requests.

use crate::SingleMutex;
use mra_protocol::WireMsg;
use mra_types::NodeId;
use std::collections::VecDeque;
use std::fmt;

/// The unique token of one Suzuki-Kasami instance.
#[derive(Clone, Debug)]
pub struct SkToken {
    /// `ln[i]`: sequence number of node `i`'s most recently satisfied
    /// request.
    pub ln: Vec<u64>,
    /// FIFO queue of nodes with known outstanding requests.
    pub queue: VecDeque<NodeId>,
}

impl SkToken {
    /// Fresh token for an `n`-node system.
    pub fn new(n: usize) -> Self {
        SkToken {
            ln: vec![0; n],
            queue: VecDeque::new(),
        }
    }
}

/// Wire messages of the Suzuki-Kasami algorithm.
#[derive(Clone)]
pub enum SkMsg {
    /// Broadcast request: `origin`'s `seq`-th critical section.
    Request {
        /// Requesting node.
        origin: NodeId,
        /// Its request sequence number (`rn[origin]` after increment).
        seq: u64,
    },
    /// The token, sent point-to-point to the next holder.
    Token(SkToken),
}

impl fmt::Debug for SkMsg {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            SkMsg::Request { origin, seq } => write!(f, "SkRequest({origin},#{seq})"),
            SkMsg::Token(t) => write!(f, "SkToken(queue={:?})", t.queue),
        }
    }
}

impl WireMsg for SkMsg {
    fn kind(&self) -> &'static str {
        match self {
            SkMsg::Request { .. } => "SK::Request",
            SkMsg::Token(_) => "SK::Token",
        }
    }

    fn weight(&self) -> usize {
        match self {
            SkMsg::Request { .. } => 2,
            SkMsg::Token(t) => t.ln.len() + t.queue.len(),
        }
    }
}

/// One node's state in one Suzuki-Kasami instance.
#[derive(Clone)]
pub struct SuzukiKasami {
    me: NodeId,
    n: usize,
    /// `rn[i]`: highest request sequence number seen from node `i`.
    rn: Vec<u64>,
    token: Option<SkToken>,
    requesting: bool,
    in_cs: bool,
}

impl SuzukiKasami {
    /// Create the instance for node `me` of `n`; `elected` starts with the
    /// token.
    pub fn new(me: NodeId, n: usize, elected: NodeId) -> Self {
        SuzukiKasami {
            me,
            n,
            rn: vec![0; n],
            token: if me == elected {
                Some(SkToken::new(n))
            } else {
                None
            },
            requesting: false,
            in_cs: false,
        }
    }

    /// Broadcast a request (or enter immediately when holding the token).
    pub fn request(&mut self, out: &mut dyn FnMut(NodeId, SkMsg)) -> bool {
        assert!(!self.requesting, "SK node {} requested twice", self.me);
        self.requesting = true;
        self.rn[self.me] += 1;
        if self.token.is_some() {
            self.in_cs = true;
            return true;
        }
        let seq = self.rn[self.me];
        for i in 0..self.n {
            if i != self.me {
                out(
                    i,
                    SkMsg::Request {
                        origin: self.me,
                        seq,
                    },
                );
            }
        }
        false
    }

    /// Deliver a message; returns `true` on token acquisition.
    pub fn on_message(
        &mut self,
        msg: SkMsg,
        out: &mut dyn FnMut(NodeId, SkMsg),
    ) -> bool {
        match msg {
            SkMsg::Request { origin, seq } => {
                self.rn[origin] = self.rn[origin].max(seq);
                // An idle holder passes the token straight away.
                if !self.in_cs && !self.requesting {
                    if let Some(tok) = self.token.as_ref() {
                        if self.rn[origin] == tok.ln[origin] + 1 {
                            let tok = self.token.take().expect("checked above");
                            out(origin, SkMsg::Token(tok));
                        }
                    }
                }
                false
            }
            SkMsg::Token(tok) => {
                debug_assert!(self.token.is_none(), "duplicate SK token");
                debug_assert!(self.requesting, "SK token arrived unrequested");
                self.token = Some(tok);
                self.in_cs = true;
                true
            }
        }
    }

    /// Leave the critical section: update `ln`, enqueue newly outstanding
    /// requesters, and pass the token to the queue head, if any.
    pub fn release(&mut self, out: &mut dyn FnMut(NodeId, SkMsg)) {
        assert!(self.in_cs, "SK release outside CS");
        self.in_cs = false;
        self.requesting = false;
        let tok = self.token.as_mut().expect("in CS implies token");
        tok.ln[self.me] = self.rn[self.me];
        // Scan in a rotation starting after `me` for fairness.
        for off in 1..=self.n {
            let j = (self.me + off) % self.n;
            if self.rn[j] == tok.ln[j] + 1 && !tok.queue.contains(&j) {
                tok.queue.push_back(j);
            }
        }
        if let Some(next) = self.token.as_mut().expect("still held").queue.pop_front() {
            let tok = self.token.take().expect("still held");
            out(next, SkMsg::Token(tok));
        }
    }

    /// Does this node hold the token?
    pub fn holds_token(&self) -> bool {
        self.token.is_some()
    }

    /// Is this node waiting for (or using) the token?
    pub fn is_requesting(&self) -> bool {
        self.requesting
    }
}

impl SingleMutex for SuzukiKasami {
    type Msg = SkMsg;

    fn request(&mut self, out: &mut dyn FnMut(NodeId, SkMsg)) -> bool {
        SuzukiKasami::request(self, out)
    }

    fn on_message(
        &mut self,
        _from: NodeId,
        msg: SkMsg,
        out: &mut dyn FnMut(NodeId, SkMsg),
    ) -> bool {
        SuzukiKasami::on_message(self, msg, out)
    }

    fn release(&mut self, out: &mut dyn FnMut(NodeId, SkMsg)) {
        SuzukiKasami::release(self, out)
    }

    fn holds_token(&self) -> bool {
        SuzukiKasami::holds_token(self)
    }

    fn is_requesting(&self) -> bool {
        SuzukiKasami::is_requesting(self)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    struct Mesh {
        nodes: Vec<SuzukiKasami>,
        queue: std::collections::VecDeque<(NodeId, SkMsg)>,
        acquired: Vec<bool>,
    }

    impl Mesh {
        fn new(n: usize) -> Self {
            Mesh {
                nodes: (0..n).map(|i| SuzukiKasami::new(i, n, 0)).collect(),
                queue: Default::default(),
                acquired: vec![false; n],
            }
        }

        fn request(&mut self, i: NodeId) {
            let mut q = std::mem::take(&mut self.queue);
            if self.nodes[i].request(&mut |to, m| q.push_back((to, m))) {
                self.acquired[i] = true;
            }
            self.queue = q;
        }

        fn release(&mut self, i: NodeId) {
            let mut q = std::mem::take(&mut self.queue);
            self.nodes[i].release(&mut |to, m| q.push_back((to, m)));
            self.queue = q;
            self.acquired[i] = false;
        }

        fn pump(&mut self) {
            while let Some((to, msg)) = self.queue.pop_front() {
                let mut q = std::mem::take(&mut self.queue);
                if self.nodes[to].on_message(msg, &mut |t, m| q.push_back((t, m))) {
                    self.acquired[to] = true;
                }
                self.queue = q;
            }
        }
    }

    #[test]
    fn holder_enters_immediately() {
        let mut mesh = Mesh::new(3);
        mesh.request(0);
        assert!(mesh.acquired[0]);
    }

    #[test]
    fn token_moves_to_requester_from_idle_holder() {
        let mut mesh = Mesh::new(3);
        mesh.request(1);
        mesh.pump();
        assert!(mesh.acquired[1]);
        assert!(mesh.nodes[1].holds_token());
        assert!(!mesh.nodes[0].holds_token());
    }

    #[test]
    fn fifo_service_in_sequence_order() {
        let mut mesh = Mesh::new(4);
        mesh.request(0);
        mesh.request(1);
        mesh.request(2);
        mesh.request(3);
        mesh.pump();
        // Only the holder is in CS.
        assert_eq!(mesh.acquired, vec![true, false, false, false]);
        mesh.release(0);
        mesh.pump();
        // Rotation after node 0 serves node 1 first.
        assert!(mesh.acquired[1]);
        mesh.release(1);
        mesh.pump();
        assert!(mesh.acquired[2]);
        mesh.release(2);
        mesh.pump();
        assert!(mesh.acquired[3]);
        mesh.release(3);
        mesh.pump();
    }

    #[test]
    fn exclusion_holds_across_rounds() {
        let n = 5;
        let mut mesh = Mesh::new(n);
        for _ in 0..8 {
            for i in 0..n {
                if !mesh.nodes[i].is_requesting() {
                    mesh.request(i);
                }
            }
            mesh.pump();
            let owners: Vec<_> = (0..n).filter(|&i| mesh.acquired[i]).collect();
            assert_eq!(owners.len(), 1);
            mesh.release(owners[0]);
            mesh.pump();
        }
    }
}
